// Experiment support for the incremental-views claim: the per-update cost
// of keeping a receiver view current must be sublinear in instance size.
// Three benchmark families over the same growing drinkers instance and the
// same fixed-size committed delta:
//
//   BM_FromScratchViewUpdate — the paper-baseline path: apply the delta,
//     then recompute the receiver view by EncodeInstance + Evaluate.
//   BM_IncrementalViewUpdate — the ViewCache path: ApplyDelta (O(|delta|)
//     mirror maintenance) + a demand-driven Read that propagates the delta
//     rules through the view's plan.
//   BM_DeltaAbsorption — ApplyDelta alone: the eager half of the split,
//     which must stay flat as the instance grows.
//
// The acceptance criterion (EXPERIMENTS.md) compares the two update paths
// at the largest size: incremental must win by >= 5x.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <utility>

#include "algebraic/method_library.h"
#include "bench_obs.h"
#include "core/instance.h"
#include "core/instance_generator.h"
#include "incremental/view_cache.h"
#include "objrel/encoding.h"
#include "relational/builder.h"
#include "relational/evaluator.h"

namespace setrec {
namespace {

/// The receiver view under maintenance: drinkers frequenting a bar that
/// serves a beer they like — a two-level equi-join chain plus renames and
/// a projection, the shape a set-oriented UPDATE's receiver query takes.
ExprPtr HappyDrinkers() {
  return ra::Project(
      ra::SelectEq(
          ra::SelectEq(
              ra::Product(ra::JoinEq(ra::Rel("Df"), ra::Rel("Bas"), "f", "Ba"),
                          ra::Rename(ra::Rename(ra::Rel("Dl"), "D", "D2"), "l",
                                     "l2")),
              "D", "D2"),
          "s", "l2"),
      {"D"});
}

struct Workload {
  DrinkersSchema schema;
  Instance instance;
  ExprPtr view;
  // A fixed-size committed statement and its inverse: one new drinker who
  // frequents an existing bar and likes an existing beer. Alternating the
  // pair keeps the benchmark state steady across iterations while every
  // iteration still absorbs a real delta.
  InstanceDelta forward;
  InstanceDelta backward;

  Workload() : instance(nullptr) {}
};

Workload BuildWorkload(std::int64_t objects_per_class) {
  Workload w;
  w.schema = std::move(MakeDrinkersSchema()).value();
  InstanceGenerator gen(&w.schema.schema, 7);
  InstanceGenerator::Options options;
  options.min_objects_per_class =
      static_cast<std::uint32_t>(objects_per_class);
  options.max_objects_per_class =
      static_cast<std::uint32_t>(objects_per_class);
  // Edge count stays linear in the object count, so "bigger instance"
  // means bigger, not denser.
  options.edge_probability = 8.0 / static_cast<double>(objects_per_class);
  w.instance = gen.RandomInstance(options);
  w.view = HappyDrinkers();

  const ObjectId fresh(w.schema.drinker,
                       static_cast<std::uint32_t>(objects_per_class) + 1);
  w.forward.added_objects.push_back(fresh);
  w.forward.added_edges.push_back(
      Edge{fresh, w.schema.frequents, ObjectId(w.schema.bar, 0)});
  w.forward.added_edges.push_back(
      Edge{fresh, w.schema.likes, ObjectId(w.schema.beer, 0)});
  w.backward.removed_objects = w.forward.added_objects;
  w.backward.removed_edges = w.forward.added_edges;
  return w;
}

void BM_FromScratchViewUpdate(benchmark::State& state) {
  Workload w = BuildWorkload(state.range(0));
  bool fwd = true;
  for (auto _ : state) {
    const Status applied =
        ApplyDelta(w.instance, fwd ? w.forward : w.backward);
    if (!applied.ok()) {
      state.SkipWithError("delta application failed");
      return;
    }
    Result<Database> db = EncodeInstance(w.instance);
    if (!db.ok()) {
      state.SkipWithError("encoding failed");
      return;
    }
    Result<Relation> view = Evaluate(w.view, *db, benchobs::ObsContext());
    if (!view.ok()) {
      state.SkipWithError("evaluation failed");
      return;
    }
    benchmark::DoNotOptimize(view);
    fwd = !fwd;
  }
  state.counters["objects"] = static_cast<double>(w.instance.num_objects());
  state.counters["edges"] = static_cast<double>(w.instance.num_edges());
}
BENCHMARK(BM_FromScratchViewUpdate)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_IncrementalViewUpdate(benchmark::State& state) {
  Workload w = BuildWorkload(state.range(0));
  ViewCacheOptions options;
  options.metrics = benchobs::ObsMetrics();
  options.tracer = benchobs::ObsTracer();
  ViewCache cache(&w.schema.schema, options);
  if (!cache.Prime(w.instance).ok() ||
      !cache.Register("happy", w.view).ok() || !cache.Read("happy").ok()) {
    state.SkipWithError("cache setup failed");
    return;
  }
  bool fwd = true;
  for (auto _ : state) {
    const Status applied = cache.ApplyDelta(fwd ? w.forward : w.backward);
    if (!applied.ok()) {
      state.SkipWithError("delta absorption failed");
      return;
    }
    Result<std::shared_ptr<const Relation>> view = cache.Read("happy");
    if (!view.ok()) {
      state.SkipWithError("cached read failed");
      return;
    }
    benchmark::DoNotOptimize(view);
    fwd = !fwd;
  }
  state.counters["objects"] = static_cast<double>(w.instance.num_objects());
  state.counters["edges"] = static_cast<double>(w.instance.num_edges());
  state.counters["refreshes"] =
      static_cast<double>(cache.stats().refreshes);
  state.counters["fallbacks"] =
      static_cast<double>(cache.stats().fallbacks);
}
BENCHMARK(BM_IncrementalViewUpdate)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Unit(benchmark::kMicrosecond);

void BM_DeltaAbsorption(benchmark::State& state) {
  Workload w = BuildWorkload(state.range(0));
  ViewCache cache(&w.schema.schema);
  if (!cache.Prime(w.instance).ok()) {
    state.SkipWithError("prime failed");
    return;
  }
  bool fwd = true;
  for (auto _ : state) {
    const Status applied = cache.ApplyDelta(fwd ? w.forward : w.backward);
    if (!applied.ok()) {
      state.SkipWithError("delta absorption failed");
      return;
    }
    fwd = !fwd;
  }
  state.counters["objects"] = static_cast<double>(w.instance.num_objects());
}
BENCHMARK(BM_DeltaAbsorption)
    ->RangeMultiplier(2)
    ->Range(32, 512)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace setrec
