// Experiment E16 (performance side) — cost drivers of the Appendix A
// containment test: representative-set growth with the number of
// same-domain variables (restricted Bell numbers), the taming effect of
// non-equalities and of typing, and homomorphism-search cost on path/star
// patterns.

#include <benchmark/benchmark.h>

#include "bench_obs.h"
#include "conjunctive/containment.h"
#include "conjunctive/homomorphism.h"
#include "conjunctive/representative.h"
#include "conjunctive/translate.h"
#include "relational/builder.h"

namespace setrec {
namespace {

constexpr ClassId kP = 0;

Catalog GraphCatalog() {
  Catalog catalog;
  (void)catalog.AddRelation(
      "E",
      std::move(RelationScheme::Make({{"x", kP}, {"y", kP}})).value());
  (void)catalog.AddRelation(
      "V", std::move(RelationScheme::Make({{"v", kP}})).value());
  return catalog;
}

/// A chain query x0 →E x1 →E ... →E xk with all variables of one domain.
ConjunctiveQuery PathQuery(std::int64_t length, bool with_neq) {
  ConjunctiveQuery q;
  std::vector<VarId> vars;
  for (std::int64_t i = 0; i <= length; ++i) vars.push_back(q.NewVar(kP));
  for (std::int64_t i = 0; i < length; ++i) {
    q.AddConjunct("E", {vars[static_cast<std::size_t>(i)],
                        vars[static_cast<std::size_t>(i + 1)]});
  }
  if (with_neq) {
    for (std::size_t i = 0; i + 1 < vars.size(); ++i) {
      q.AddNonEquality(vars[i], vars[i + 1]);
    }
  }
  q.set_summary({vars[0]});
  return q;
}

void BM_RepresentativeValuations(benchmark::State& state) {
  ConjunctiveQuery q = PathQuery(state.range(0), /*with_neq=*/false);
  std::size_t count = 0;
  for (auto _ : state) {
    count = CountRepresentativeValuations(q);
    benchmark::DoNotOptimize(count);
  }
  state.counters["partitions"] = static_cast<double>(count);  // Bell(k+1)
}
BENCHMARK(BM_RepresentativeValuations)
    ->DenseRange(2, 8)
    ->Unit(benchmark::kMicrosecond);

void BM_RepresentativeValuationsWithNeq(benchmark::State& state) {
  ConjunctiveQuery q = PathQuery(state.range(0), /*with_neq=*/true);
  std::size_t count = 0;
  for (auto _ : state) {
    count = CountRepresentativeValuations(q);
    benchmark::DoNotOptimize(count);
  }
  state.counters["partitions"] = static_cast<double>(count);
}
BENCHMARK(BM_RepresentativeValuationsWithNeq)
    ->DenseRange(2, 8)
    ->Unit(benchmark::kMicrosecond);

/// Path-in-path containment: q_{k+1} ⊆ q_k (longer walks are walks).
void BM_PathContainment(benchmark::State& state) {
  Catalog catalog = GraphCatalog();
  DependencySet none;
  const std::int64_t k = state.range(0);
  PositiveQuery longer{std::move(RelationScheme::Make({{"x", kP}})).value(),
                       {PathQuery(k + 1, false)}};
  PositiveQuery shorter{std::move(RelationScheme::Make({{"x", kP}})).value(),
                        {PathQuery(k, false)}};
  for (auto _ : state) {
    Result<bool> contained = ContainedUnder(longer, shorter, none, catalog);
    if (!contained.ok() || !*contained) {
      state.SkipWithError("path containment should hold");
    }
    benchmark::DoNotOptimize(contained);
  }
}
BENCHMARK(BM_PathContainment)
    ->DenseRange(1, 5)
    ->Unit(benchmark::kMillisecond);

/// Union width: containment of a k-way union in itself (Sagiv–Yannakakis
/// disjunct-by-disjunct processing).
void BM_UnionSelfEquivalence(benchmark::State& state) {
  Catalog catalog = GraphCatalog();
  DependencySet none;
  const std::int64_t width = state.range(0);
  PositiveQuery q{std::move(RelationScheme::Make({{"x", kP}})).value(), {}};
  for (std::int64_t i = 0; i < width; ++i) {
    q.disjuncts.push_back(PathQuery(1 + (i % 3), i % 2 == 0));
  }
  for (auto _ : state) {
    Result<bool> eq = EquivalentUnder(q, q, none, catalog);
    if (!eq.ok() || !*eq) state.SkipWithError("self-equivalence must hold");
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_UnionSelfEquivalence)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Unit(benchmark::kMillisecond);

/// Klug counterexample search cost: q1 ⊄ q2 where the counterexample is the
/// collapsed (loop) valuation — found early by the backtracking order.
void BM_EarlyCounterexample(benchmark::State& state) {
  Catalog catalog = GraphCatalog();
  DependencySet none;
  ExprPtr q1e = ra::Project(ra::Rel("E"), {"x"});
  ExprPtr q2e = ra::Project(ra::SelectNeq(ra::Rel("E"), "x", "y"), {"x"});
  PositiveQuery q1 = std::move(TranslateToPositiveQuery(q1e, catalog)).value();
  PositiveQuery q2 = std::move(TranslateToPositiveQuery(q2e, catalog)).value();
  for (auto _ : state) {
    Result<ContainmentResult> r = CheckContainment(q1, q2, none, catalog, true,
                                               benchobs::ObsContext());
    if (!r.ok() || r->contained) state.SkipWithError("expected refutation");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EarlyCounterexample)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace setrec
