// Experiment E20 — the Section 6/7 efficiency claim: parallel application
// evaluates ONE relational algebra expression per updated property while
// sequential application evaluates one per receiver, so parallel wins by a
// factor that grows with |T|. By Theorem 6.5 the two compute the same
// result on key sets, so this is a pure performance comparison.
//
// Workload: the Section 7 payroll update (B') over |T| = 2^3 ... 2^9
// employees (every employee re-salaried through NewSal).

#include <benchmark/benchmark.h>

#include "algebraic/parallel.h"
#include "bench_obs.h"
#include "core/sequential.h"
#include "sql/table.h"

namespace setrec {
namespace {

struct Workload {
  PayrollSchema schema;
  Instance instance;
  std::unique_ptr<AlgebraicUpdateMethod> method;
  std::vector<Receiver> receivers;

  Workload() : instance(nullptr) {}
};

Workload BuildWorkload(std::int64_t n_employees) {
  Workload w;
  w.schema = std::move(MakePayrollSchema()).value();
  std::vector<EmployeeRow> employees;
  std::vector<NewSalRow> raises;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(n_employees);
       ++i) {
    employees.push_back(EmployeeRow{i, 1000 + (i % 16), std::nullopt});
  }
  for (std::uint32_t s = 0; s < 16; ++s) {
    raises.push_back(NewSalRow{1000 + s, 2000 + s});
  }
  w.instance = std::move(BuildPayrollInstance(w.schema, employees, {},
                                              raises))
                   .value();
  w.method = std::move(MakeSalaryFromNewSal(w.schema)).value();
  const auto salaries = std::move(ReadSalaries(w.schema, w.instance)).value();
  for (auto [id, salary] : salaries) {
    w.receivers.push_back(Receiver::Unchecked(
        {ObjectId(w.schema.emp, id), ObjectId(w.schema.val, salary)}));
  }
  return w;
}

void BM_SequentialApplication(benchmark::State& state) {
  Workload w = BuildWorkload(state.range(0));
  for (auto _ : state) {
    Result<Instance> out = ApplySequence(*w.method, w.instance, w.receivers,
                                         benchobs::ObsContext());
    if (!out.ok()) state.SkipWithError("sequential application failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.receivers.size()));
  state.counters["receivers"] =
      static_cast<double>(w.receivers.size());
}
BENCHMARK(BM_SequentialApplication)
    ->RangeMultiplier(2)
    ->Range(8, 2048)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelApplication(benchmark::State& state) {
  Workload w = BuildWorkload(state.range(0));
  for (auto _ : state) {
    Result<Instance> out = ParallelApply(*w.method, w.instance, w.receivers,
                                         benchobs::ObsContext());
    if (!out.ok()) state.SkipWithError("parallel application failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.receivers.size()));
  state.counters["receivers"] =
      static_cast<double>(w.receivers.size());
}
BENCHMARK(BM_ParallelApplication)
    ->RangeMultiplier(2)
    ->Range(8, 2048)
    ->Unit(benchmark::kMillisecond);

/// Sanity anchor for Proposition 6.3: at |T| = 1 the strategies do the same
/// work and give the same result.
void BM_SingletonParity(benchmark::State& state) {
  Workload w = BuildWorkload(8);
  std::vector<Receiver> one = {w.receivers[0]};
  Instance seq = std::move(ApplySequence(*w.method, w.instance, one)).value();
  Instance par = std::move(ParallelApply(*w.method, w.instance, one)).value();
  if (!(seq == par)) state.SkipWithError("Proposition 6.3 violated");
  for (auto _ : state) {
    Result<Instance> out =
        ParallelApply(*w.method, w.instance, one, benchobs::ObsContext());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SingletonParity)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setrec
