// Experiment E6-E8 support — the coloring layer's costs: the structural
// soundness criteria (linear sweeps), the exhaustive coloring enumeration
// used by the theory tests, witness-method application, and the empirical
// use-set validator (which re-applies the method once per restriction,
// resp. once per removable item).

#include <benchmark/benchmark.h>

#include "algebraic/method_library.h"
#include "coloring/inference.h"
#include "coloring/soundness.h"
#include "coloring/witness.h"
#include "core/instance_generator.h"

namespace setrec {
namespace {

void BM_SoundnessSweep(benchmark::State& state) {
  // All 512 colorings of the one-class/two-property schema, both criteria.
  PairSchema ps = std::move(MakePairSchema()).value();
  for (auto _ : state) {
    int sound = 0;
    for (ColorSet c_class : ColorSet::All()) {
      for (ColorSet c_a : ColorSet::All()) {
        for (ColorSet c_b : ColorSet::All()) {
          Coloring k(&ps.schema);
          k.Set(SchemaItem::Class(ps.c), c_class);
          k.Set(SchemaItem::Property(ps.a), c_a);
          k.Set(SchemaItem::Property(ps.b), c_b);
          sound += IsSoundColoring(k, UseAxiomatization::kInflationary);
          sound += IsSoundColoring(k, UseAxiomatization::kDeflationary);
        }
      }
    }
    benchmark::DoNotOptimize(sound);
  }
}
BENCHMARK(BM_SoundnessSweep)->Unit(benchmark::kMicrosecond);

void BM_WitnessApply(benchmark::State& state) {
  PairSchema ps = std::move(MakePairSchema()).value();
  Coloring k(&ps.schema);
  k.Set(SchemaItem::Class(ps.c), kUD);
  k.Set(SchemaItem::Property(ps.a), kUD);
  k.Set(SchemaItem::Property(ps.b), kUC);
  auto witness = std::move(MakeWitnessMethod(
                               &ps.schema, k,
                               UseAxiomatization::kInflationary))
                     .value();
  InstanceGenerator gen(&ps.schema, 3);
  InstanceGenerator::Options options;
  options.min_objects_per_class =
      static_cast<std::uint32_t>(state.range(0));
  options.max_objects_per_class =
      static_cast<std::uint32_t>(state.range(0));
  options.edge_probability = 0.2;
  Instance instance = gen.RandomInstance(options);
  auto receivers = gen.RandomReceiverSet(instance, witness->signature(), 1);
  if (receivers.empty()) {
    state.SkipWithError("no receivers");
    return;
  }
  for (auto _ : state) {
    Result<Instance> out = witness->Apply(instance, receivers[0]);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_WitnessApply)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Unit(benchmark::kMicrosecond);

void BM_ValidateUseSet_Inflationary(benchmark::State& state) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto method = std::move(MakeLikesServesBar(ds)).value();
  Coloring k = SyntacticColoring(*method);
  ColoringValidationOptions options;
  options.trials = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Result<bool> ok = ValidateUseSet(*method, ds.schema, k.UseSet(),
                                     UseAxiomatization::kInflationary,
                                     options);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ValidateUseSet_Inflationary)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Unit(benchmark::kMillisecond);

void BM_ObserveCreateDelete(benchmark::State& state) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto method = std::move(MakeFavoriteBar(ds)).value();
  ColoringValidationOptions options;
  options.trials = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Result<Coloring> observed =
        ObserveCreateDelete(*method, ds.schema, options);
    benchmark::DoNotOptimize(observed);
  }
}
BENCHMARK(BM_ObserveCreateDelete)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setrec
