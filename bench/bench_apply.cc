// Experiment E2/E20 support — core application throughput: single-receiver
// M(I, t) cost against instance size (dominated by the object-relational
// encoding plus expression evaluation) and sequential-application cost
// against receiver-set size; plus the combination semantics for contrast.

#include <benchmark/benchmark.h>

#include "algebraic/method_library.h"
#include "bench_obs.h"
#include "core/combination.h"
#include "core/instance_generator.h"
#include "core/sequential.h"

namespace setrec {
namespace {

struct Workload {
  DrinkersSchema schema;
  Instance instance;
  std::unique_ptr<AlgebraicUpdateMethod> add_bar;
  std::vector<Receiver> receivers;

  Workload() : instance(nullptr) {}
};

Workload BuildWorkload(std::int64_t objects_per_class,
                       std::size_t receiver_count) {
  Workload w;
  w.schema = std::move(MakeDrinkersSchema()).value();
  InstanceGenerator gen(&w.schema.schema, 7);
  InstanceGenerator::Options options;
  options.min_objects_per_class =
      static_cast<std::uint32_t>(objects_per_class);
  options.max_objects_per_class =
      static_cast<std::uint32_t>(objects_per_class);
  options.edge_probability = 4.0 / static_cast<double>(objects_per_class);
  w.instance = gen.RandomInstance(options);
  w.add_bar = std::move(MakeAddBar(w.schema)).value();
  w.receivers = gen.RandomKeySet(w.instance, w.add_bar->signature(),
                                 receiver_count);
  return w;
}

void BM_SingleApply(benchmark::State& state) {
  Workload w = BuildWorkload(state.range(0), 1);
  if (w.receivers.empty()) {
    state.SkipWithError("no receivers");
    return;
  }
  for (auto _ : state) {
    Result<Instance> out = w.add_bar->Apply(w.instance, w.receivers[0]);
    benchmark::DoNotOptimize(out);
  }
  state.counters["objects"] = static_cast<double>(w.instance.num_objects());
  state.counters["edges"] = static_cast<double>(w.instance.num_edges());
}
BENCHMARK(BM_SingleApply)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Unit(benchmark::kMicrosecond);

void BM_SequenceLength(benchmark::State& state) {
  Workload w = BuildWorkload(64, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Result<Instance> out = ApplySequence(*w.add_bar, w.instance, w.receivers,
                                         benchobs::ObsContext());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.receivers.size()));
}
BENCHMARK(BM_SequenceLength)
    ->RangeMultiplier(2)
    ->Range(1, 32)
    ->Unit(benchmark::kMillisecond);

void BM_ExhaustiveOrderTest(benchmark::State& state) {
  // Cost of Definition 3.1's |T|! ground-truth check — why Lemma 3.3 and
  // the static procedures matter.
  Workload w = BuildWorkload(8, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto outcome = OrderIndependentOn(*w.add_bar, w.instance, w.receivers,
                                      benchobs::ObsContext());
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ExhaustiveOrderTest)
    ->DenseRange(2, 5)
    ->Unit(benchmark::kMillisecond);

void BM_CombinationRefined(benchmark::State& state) {
  Workload w = BuildWorkload(64, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Result<Instance> out =
        ApplyCombinationRefined(*w.add_bar, w.instance, w.receivers);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_CombinationRefined)
    ->RangeMultiplier(2)
    ->Range(1, 32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setrec
