#include "bench_obs.h"

#include <benchmark/benchmark.h>

#include "obs/json_escape.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace setrec::benchobs {

namespace {

bool g_disabled = false;

Tracer& TracerStorage() {
  static Tracer tracer;
  return tracer;
}

MetricsRegistry& MetricsStorage() {
  static MetricsRegistry metrics;
  return metrics;
}

}  // namespace

Tracer* ObsTracer() { return g_disabled ? nullptr : &TracerStorage(); }

MetricsRegistry* ObsMetrics() {
  return g_disabled ? nullptr : &MetricsStorage();
}

ExecContext& ObsContext() {
  static ExecContext ctx;
  ctx.set_tracer(ObsTracer());
  ctx.set_metrics(ObsMetrics());
  return ctx;
}

ExecOptions ObsOptions() {
  ExecOptions options;
  options.ctx = &ObsContext();
  options.tracer = ObsTracer();
  options.metrics = ObsMetrics();
  return options;
}

namespace {

/// Renders the "stages" and "metrics" JSON members from the sinks (empty
/// objects under --no-obs, keeping the artifact schema uniform).
std::string RenderObsJson() {
  std::ostringstream out;
  out << "  \"stages\": {";
  if (!g_disabled) {
    bool first = true;
    for (const auto& [name, stats] : TracerStorage().StageTotals()) {
      if (!first) out << ",";
      first = false;
      out << "\n    " << JsonQuoted(name) << ": {\"count\": " << stats.count
          << ", \"total_ns\": " << stats.total_ns << "}";
    }
    if (!first) out << "\n  ";
  }
  out << "},\n";
  out << "  \"metrics\": {";
  if (!g_disabled) {
    const MetricsRegistry::Snapshot snap = MetricsStorage().TakeSnapshot();
    bool first = true;
    for (const auto& [name, value] : snap.counters) {
      if (!first) out << ",";
      first = false;
      out << "\n    " << JsonQuoted(name) << ": " << value;
    }
    for (const auto& [name, h] : snap.histograms) {
      if (!first) out << ",";
      first = false;
      out << "\n    " << JsonQuoted(name + "_count") << ": " << h.count
          << ",\n    " << JsonQuoted(name + "_sum") << ": " << h.sum;
    }
    if (!first) out << "\n  ";
  }
  out << "}\n";
  return out.str();
}

/// Splices the obs members into the benchmark JSON artifact, before its
/// closing brace — google benchmark wrote `{"context": ..., "benchmarks":
/// [...]}`; the result stays one valid top-level object.
void InjectIntoBenchJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) return;  // no artifact requested
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string body = buf.str();
  in.close();
  const std::size_t brace = body.rfind('}');
  if (brace == std::string::npos) return;
  std::string injected = body.substr(0, brace);
  // Trim trailing whitespace so the comma lands right after the last member.
  while (!injected.empty() &&
         (injected.back() == '\n' || injected.back() == ' ' ||
          injected.back() == '\t' || injected.back() == '\r')) {
    injected.pop_back();
  }
  injected += ",\n";
  injected += RenderObsJson();
  injected += "}\n";
  std::ofstream rewrite(path, std::ios::trunc);
  rewrite << injected;
}

void WriteTrace(const std::string& path) {
  if (g_disabled || path.empty()) return;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write trace file '%s'\n", path.c_str());
    return;
  }
  TracerStorage().WriteChromeTrace(out);
}

}  // namespace

}  // namespace setrec::benchobs

int main(int argc, char** argv) {
  std::string trace_out;
  std::string bench_out;
  std::vector<char*> keep;
  keep.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.substr(0, 12) == "--trace-out=") {
      trace_out = std::string(arg.substr(12));
      continue;
    }
    if (arg == "--no-obs") {
      setrec::benchobs::g_disabled = true;
      continue;
    }
    if (arg.substr(0, 16) == "--benchmark_out=") {
      bench_out = std::string(arg.substr(16));
    }
    keep.push_back(argv[i]);
  }
  keep.push_back(nullptr);
  int kept_argc = static_cast<int>(keep.size()) - 1;
  benchmark::Initialize(&kept_argc, keep.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, keep.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  setrec::benchobs::WriteTrace(trace_out);
  if (!bench_out.empty()) {
    setrec::benchobs::InjectIntoBenchJson(bench_out);
  }
  return 0;
}
