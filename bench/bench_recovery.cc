// Experiment E-REC — recovery cost: time for DurableStore::Open to rebuild
// the committed state from (a) a pure WAL replay of N commits, (b) a
// checkpoint plus a short replay tail, and the raw WAL scan cost those sit
// on. This quantifies the snapshot cadence trade-off: how much replay time a
// checkpoint buys at the price of writing the full instance.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>

#include "core/instance.h"
#include "core/schema.h"
#include "store/durable_store.h"
#include "store/wal.h"

namespace setrec {
namespace {

struct Workload {
  Schema schema;
  ClassId a = 0, b = 0;
  PropertyId f = 0;

  Workload() {
    a = schema.AddClass("A").value();
    b = schema.AddClass("B").value();
    f = schema.AddProperty("f", a, b).value();
  }

  /// One commit's mutation: add an A/B pair plus an edge, retire the
  /// previous A object — a steady-state workload whose deltas stay small.
  Status Step(Instance& inst, std::uint32_t k) const {
    SETREC_RETURN_IF_ERROR(inst.AddObject(ObjectId(a, k)));
    SETREC_RETURN_IF_ERROR(inst.AddObject(ObjectId(b, k % 17)));
    SETREC_RETURN_IF_ERROR(
        inst.AddEdge(ObjectId(a, k), f, ObjectId(b, k % 17)));
    if (k > 1) {
      SETREC_RETURN_IF_ERROR(inst.RemoveObject(ObjectId(a, k - 1)));
    }
    return Status::OK();
  }
};

/// Populates a fresh store directory with `commits` committed statements and
/// returns its path. `snapshot_every` = 0 keeps everything in the WAL.
std::string PrepareDir(const Workload& w, const std::string& tag,
                       std::uint32_t commits, std::uint64_t snapshot_every) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "setrec_bench_recovery" / tag;
  std::filesystem::remove_all(dir);
  DurableStoreOptions options;
  options.snapshot_every_n_commits = snapshot_every;
  auto store =
      std::move(DurableStore::Open(dir.string(), &w.schema, options)).value();
  for (std::uint32_t k = 1; k <= commits; ++k) {
    Status s = store->Mutate([&w, k](Instance& inst, ExecContext&) {
      return w.Step(inst, k);
    });
    if (!s.ok()) std::abort();
  }
  return dir.string();
}

void BM_RecoveryFullReplay(benchmark::State& state) {
  const Workload w;
  const auto commits = static_cast<std::uint32_t>(state.range(0));
  const std::string dir =
      PrepareDir(w, "replay" + std::to_string(commits), commits, 0);
  RecoveryReport report;
  for (auto _ : state) {
    auto store = DurableStore::Open(dir, &w.schema, {}, &report);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(state.iterations() * commits);
  state.counters["replayed_records"] =
      static_cast<double>(report.replayed_records);
  state.counters["wal_bytes"] = static_cast<double>(
      std::filesystem::file_size(std::filesystem::path(dir) / "wal.log"));
}
BENCHMARK(BM_RecoveryFullReplay)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_RecoveryFromCheckpoint(benchmark::State& state) {
  // Same workload, but a checkpoint every 32 commits: recovery loads the
  // newest snapshot and replays only the tail.
  const Workload w;
  const auto commits = static_cast<std::uint32_t>(state.range(0));
  const std::string dir =
      PrepareDir(w, "ckpt" + std::to_string(commits), commits, 32);
  RecoveryReport report;
  for (auto _ : state) {
    auto store = DurableStore::Open(dir, &w.schema, {}, &report);
    benchmark::DoNotOptimize(store);
  }
  state.SetItemsProcessed(state.iterations() * commits);
  state.counters["replayed_records"] =
      static_cast<double>(report.replayed_records);
  state.counters["snapshot_seq"] =
      static_cast<double>(report.snapshot_sequence);
}
BENCHMARK(BM_RecoveryFromCheckpoint)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_WalScan(benchmark::State& state) {
  // The raw log-scan floor under recovery: framing, CRC, and payload copy,
  // without parsing or applying the deltas.
  const Workload w;
  const auto commits = static_cast<std::uint32_t>(state.range(0));
  const std::string dir =
      PrepareDir(w, "scan" + std::to_string(commits), commits, 0);
  const std::string wal =
      (std::filesystem::path(dir) / "wal.log").string();
  for (auto _ : state) {
    Result<WalReplay> replay = ReadWal(wal);
    benchmark::DoNotOptimize(replay);
  }
  state.SetItemsProcessed(state.iterations() * commits);
}
BENCHMARK(BM_WalScan)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMicrosecond);

void BM_CommitLatency(benchmark::State& state) {
  // The write-side cost a durable commit adds: diff, print, append, fsync.
  const Workload w;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "setrec_bench_recovery" /
      "commit";
  std::filesystem::remove_all(dir);
  auto store =
      std::move(DurableStore::Open(dir.string(), &w.schema)).value();
  std::uint32_t k = 0;
  for (auto _ : state) {
    ++k;
    Status s = store->Mutate([&w, k](Instance& inst, ExecContext&) {
      return w.Step(inst, k);
    });
    if (!s.ok()) state.SkipWithError(s.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommitLatency)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace setrec
