// Experiment E16 (chase side) — the typed chase is polynomial for
// functional and *full* inclusion dependencies: fd steps strictly reduce
// variables, ind steps add conjuncts over existing variables only. These
// benches chart both rules' costs against query size.

#include <benchmark/benchmark.h>

#include "bench_obs.h"
#include "conjunctive/chase.h"

namespace setrec {
namespace {

constexpr ClassId kP = 0;

Catalog GraphCatalog() {
  Catalog catalog;
  (void)catalog.AddRelation(
      "E",
      std::move(RelationScheme::Make({{"x", kP}, {"y", kP}})).value());
  (void)catalog.AddRelation(
      "V", std::move(RelationScheme::Make({{"v", kP}})).value());
  return catalog;
}

/// A star of k atoms E(x, y_i): under E: x→y the chase collapses all y_i.
void BM_ChaseFdCollapse(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  Catalog catalog = GraphCatalog();
  DependencySet deps;
  deps.fds.push_back(FunctionalDependency{"E", {"x"}, "y"});

  ConjunctiveQuery q;
  VarId x = q.NewVar(kP);
  std::vector<VarId> ys;
  for (std::int64_t i = 0; i < k; ++i) {
    VarId y = q.NewVar(kP);
    q.AddConjunct("E", {x, y});
    ys.push_back(y);
  }
  q.set_summary({x});

  for (auto _ : state) {
    Result<ConjunctiveQuery> chased =
        ChaseQuery(q, deps, catalog, benchobs::ObsContext());
    if (!chased.ok() || chased->num_vars() != 2) {
      state.SkipWithError("fd chase should collapse to two variables");
    }
    benchmark::DoNotOptimize(chased);
  }
  state.counters["atoms"] = static_cast<double>(k);
}
BENCHMARK(BM_ChaseFdCollapse)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMicrosecond);

/// A path of k atoms under E[x] ⊆ V, E[y] ⊆ V: the ind rule adds one V atom
/// per variable and stops.
void BM_ChaseIndSaturation(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  Catalog catalog = GraphCatalog();
  DependencySet deps;
  deps.inds.push_back(InclusionDependency{"E", {"x"}, "V"});
  deps.inds.push_back(InclusionDependency{"E", {"y"}, "V"});

  ConjunctiveQuery q;
  std::vector<VarId> vars;
  for (std::int64_t i = 0; i <= k; ++i) vars.push_back(q.NewVar(kP));
  for (std::int64_t i = 0; i < k; ++i) {
    q.AddConjunct("E", {vars[static_cast<std::size_t>(i)],
                        vars[static_cast<std::size_t>(i + 1)]});
  }
  q.set_summary({vars[0]});

  for (auto _ : state) {
    Result<ConjunctiveQuery> chased =
        ChaseQuery(q, deps, catalog, benchobs::ObsContext());
    if (!chased.ok() ||
        chased->conjuncts().size() != static_cast<std::size_t>(2 * k + 1)) {
      state.SkipWithError("ind chase should add one V atom per variable");
    }
    benchmark::DoNotOptimize(chased);
  }
  state.counters["atoms"] = static_cast<double>(k);
}
BENCHMARK(BM_ChaseIndSaturation)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMicrosecond);

/// Combined: fd and ind interleave (collapse then saturate).
void BM_ChaseCombined(benchmark::State& state) {
  const std::int64_t k = state.range(0);
  Catalog catalog = GraphCatalog();
  DependencySet deps;
  deps.fds.push_back(FunctionalDependency{"E", {"x"}, "y"});
  deps.inds.push_back(InclusionDependency{"E", {"x"}, "V"});
  deps.inds.push_back(InclusionDependency{"E", {"y"}, "V"});

  ConjunctiveQuery q;
  VarId x = q.NewVar(kP);
  for (std::int64_t i = 0; i < k; ++i) {
    VarId y = q.NewVar(kP);
    q.AddConjunct("E", {x, y});
  }
  q.set_summary({x});
  for (auto _ : state) {
    Result<ConjunctiveQuery> chased =
        ChaseQuery(q, deps, catalog, benchobs::ObsContext());
    benchmark::DoNotOptimize(chased);
  }
}
BENCHMARK(BM_ChaseCombined)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace setrec
