// Experiment E13 — cost of the Theorem 5.12 decision procedure on the
// paper's named methods, split by order-independence kind. The dominant
// factors are the number of union branches the Theorem 5.6 reduction
// produces (products distribute over unions) and the representative-set
// size of each chased disjunct (restricted Bell numbers per domain).

#include <benchmark/benchmark.h>

#include "algebraic/method_library.h"
#include "algebraic/order_independence.h"
#include "bench_obs.h"
#include "conjunctive/containment.h"
#include "conjunctive/translate.h"

namespace setrec {
namespace {

template <typename MakeFn, typename SchemaT>
void RunDecision(benchmark::State& state, const SchemaT& schema, MakeFn make,
                 OrderIndependenceKind kind) {
  auto method = std::move(make(schema)).value();
  for (auto _ : state) {
    Result<bool> verdict =
        DecideOrderIndependence(*method, kind, benchobs::ObsOptions());
    if (!verdict.ok()) state.SkipWithError("decision failed");
    benchmark::DoNotOptimize(verdict);
  }
  // Report the reduction's union width as a counter.
  auto reductions =
      std::move(BuildOrderIndependenceReduction(*method, kind)).value();
  std::size_t disjuncts = 0;
  for (const auto& r : reductions) {
    disjuncts += std::move(TranslateToPositiveQuery(
                               r.e_tt, method->context().reduction_catalog))
                     .value()
                     .disjuncts.size();
  }
  state.counters["union_branches"] = static_cast<double>(disjuncts);
}

void BM_Decide_AddBar_Absolute(benchmark::State& state) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  RunDecision(state, ds, MakeAddBar, OrderIndependenceKind::kAbsolute);
}
BENCHMARK(BM_Decide_AddBar_Absolute)->Unit(benchmark::kMillisecond);

void BM_Decide_AddBar_KeyOrder(benchmark::State& state) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  RunDecision(state, ds, MakeAddBar, OrderIndependenceKind::kKeyOrder);
}
BENCHMARK(BM_Decide_AddBar_KeyOrder)->Unit(benchmark::kMillisecond);

void BM_Decide_FavoriteBar_Absolute(benchmark::State& state) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  RunDecision(state, ds, MakeFavoriteBar, OrderIndependenceKind::kAbsolute);
}
BENCHMARK(BM_Decide_FavoriteBar_Absolute)->Unit(benchmark::kMillisecond);

void BM_Decide_FavoriteBar_KeyOrder(benchmark::State& state) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  RunDecision(state, ds, MakeFavoriteBar, OrderIndependenceKind::kKeyOrder);
}
BENCHMARK(BM_Decide_FavoriteBar_KeyOrder)->Unit(benchmark::kMillisecond);

void BM_Decide_DeleteBar_Absolute(benchmark::State& state) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  RunDecision(state, ds, MakeDeleteBar, OrderIndependenceKind::kAbsolute);
}
BENCHMARK(BM_Decide_DeleteBar_Absolute)->Unit(benchmark::kMillisecond);

void BM_Decide_LikesServes_Absolute(benchmark::State& state) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  RunDecision(state, ds, MakeLikesServesBar,
              OrderIndependenceKind::kAbsolute);
}
BENCHMARK(BM_Decide_LikesServes_Absolute)->Unit(benchmark::kMillisecond);

void BM_Decide_CopyExtend_Absolute(benchmark::State& state) {
  PairSchema ps = std::move(MakePairSchema()).value();
  RunDecision(state, ps, MakeCopyExtendMethod,
              OrderIndependenceKind::kAbsolute);
}
BENCHMARK(BM_Decide_CopyExtend_Absolute)->Unit(benchmark::kMillisecond);

void BM_Decide_CopyExtend_KeyOrder(benchmark::State& state) {
  PairSchema ps = std::move(MakePairSchema()).value();
  RunDecision(state, ps, MakeCopyExtendMethod,
              OrderIndependenceKind::kKeyOrder);
}
BENCHMARK(BM_Decide_CopyExtend_KeyOrder)->Unit(benchmark::kMillisecond);

void BM_Decide_PayrollB_KeyOrder(benchmark::State& state) {
  PayrollSchema ps = std::move(MakePayrollSchema()).value();
  RunDecision(state, ps, MakeSalaryFromNewSal,
              OrderIndependenceKind::kKeyOrder);
}
BENCHMARK(BM_Decide_PayrollB_KeyOrder)->Unit(benchmark::kMillisecond);

void BM_Decide_PayrollC_KeyOrder(benchmark::State& state) {
  PayrollSchema ps = std::move(MakePayrollSchema()).value();
  RunDecision(state, ps, MakeSalaryFromManagersNewSal,
              OrderIndependenceKind::kKeyOrder);
}
BENCHMARK(BM_Decide_PayrollC_KeyOrder)->Unit(benchmark::kMillisecond);

/// Ablation: disjunct-subsumption pruning (SimplifyPositiveQuery) on the
/// heaviest named reduction. The Theorem 5.6 construction unions a "keep"
/// branch with a "fresh" branch per application, and many composed branches
/// subsume one another; pruning shrinks both the outer disjunct loop and
/// the inner membership disjunctions.
void RunEquivalenceAblation(benchmark::State& state, bool simplify) {
  PairSchema ps = std::move(MakePairSchema()).value();
  auto method = std::move(MakeCopyExtendMethod(ps)).value();
  auto reductions = std::move(BuildOrderIndependenceReduction(
                                  *method, OrderIndependenceKind::kKeyOrder))
                        .value();
  const MethodContext& ctx = method->context();
  std::vector<std::pair<PositiveQuery, PositiveQuery>> pairs;
  for (const auto& r : reductions) {
    pairs.emplace_back(
        std::move(TranslateToPositiveQuery(r.e_tt, ctx.reduction_catalog))
            .value(),
        std::move(TranslateToPositiveQuery(r.e_ts, ctx.reduction_catalog))
            .value());
  }
  for (auto _ : state) {
    for (const auto& [q1, q2] : pairs) {
      Result<ContainmentResult> a =
          CheckContainment(q1, q2, ctx.reduction_deps, ctx.reduction_catalog,
                           simplify, benchobs::ObsContext());
      Result<ContainmentResult> b =
          CheckContainment(q2, q1, ctx.reduction_deps, ctx.reduction_catalog,
                           simplify, benchobs::ObsContext());
      if (!a.ok() || !b.ok() || !a->contained || !b->contained) {
        state.SkipWithError("key-order equivalence expected");
      }
      benchmark::DoNotOptimize(a);
      benchmark::DoNotOptimize(b);
    }
  }
}

void BM_Ablation_WithPruning(benchmark::State& state) {
  RunEquivalenceAblation(state, /*simplify=*/true);
}
BENCHMARK(BM_Ablation_WithPruning)->Unit(benchmark::kMillisecond);

void BM_Ablation_WithoutPruning(benchmark::State& state) {
  RunEquivalenceAblation(state, /*simplify=*/false);
}
BENCHMARK(BM_Ablation_WithoutPruning)->Unit(benchmark::kMillisecond);

/// The Proposition 5.8 syntactic check, for contrast: linear in the
/// expression size — the price of being only sufficient.
void BM_Prop58_SyntacticCheck(benchmark::State& state) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto method = std::move(MakeAddBar(ds)).value();
  for (auto _ : state) {
    bool ok = SatisfiesUpdateIsolationCondition(*method);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_Prop58_SyntacticCheck);

}  // namespace
}  // namespace setrec
