#ifndef SETREC_BENCH_BENCH_OBS_H_
#define SETREC_BENCH_BENCH_OBS_H_

#include "core/exec_context.h"
#include "core/exec_options.h"
#include "obs/metrics.h"
#include "obs/trace.h"

// Shared observability harness for the benchmarks. bench_obs.cc provides
// main(): it strips the harness flags, runs the google-benchmark suite,
// then exports what the process-wide sinks collected —
//
//   --trace-out=PATH   write a chrome://tracing JSON of every span
//   --no-obs           detach the sinks (null-sink fast path; used by the
//                      overhead acceptance check)
//
// and post-processes the --benchmark_out file, injecting a "stages" block
// (per-span-name count/total_ns) and a "metrics" block (engine counters)
// into the BENCH_*.json artifact, so per-stage timings travel with the
// numbers they explain.

namespace setrec::benchobs {

/// Process-wide sinks; null when --no-obs was passed.
Tracer* ObsTracer();
MetricsRegistry* ObsMetrics();

/// A process-wide permissive ExecContext with the sinks attached (detached
/// under --no-obs). Pass to any governed entry point to trace it.
ExecContext& ObsContext();

/// ExecOptions carrying ObsContext() and the sinks.
ExecOptions ObsOptions();

}  // namespace setrec::benchobs

#endif  // SETREC_BENCH_BENCH_OBS_H_
