// Experiment E-SERVICE — closed-loop multi-tenant service latency: N
// concurrent clients (1..16) drive a mixed read/write workload against a
// two-tenant server over the in-process transport, each client issuing its
// next request only after the previous one completed (closed loop, so
// measured latency includes admission queueing and any shed-and-retry
// round trips). Reported per client count:
//
//   p50_us / p99_us / p999_us — end-to-end request latency percentiles,
//     measured at the client across every operation (retries included);
//   shed / retries            — load-shedding responses the server issued
//     and retry round trips the clients absorbed, the backpressure story
//     behind the tail;
//   failures                  — operations that exhausted their retry
//     budget (0 in a healthy run: the suggested-backoff + retry schedule
//     must absorb the burst, not drop work).
//
// The server's admission gates are deliberately tight (max_concurrency 2,
// max_queue 2 per tenant) so the 8- and 16-client rows actually exercise
// shedding; the `net.*` counters land in the artifact's "metrics" block via
// the shared bench sinks.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_obs.h"
#include "core/schema.h"
#include "net/client.h"
#include "net/replica.h"
#include "net/server.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace setrec {
namespace {

constexpr std::uint32_t kOpsPerClient = 64;

/// A fresh two-tenant server in a private temp directory, wired to the
/// process-wide bench sinks so net.* counters travel with the artifact.
struct ServiceBench {
  Schema schema;
  ClassId a = 0, b = 0;
  std::unique_ptr<Server> server;

  explicit ServiceBench(const std::string& tag) {
    a = schema.AddClass("A").value();
    b = schema.AddClass("B").value();
    schema.AddProperty("f", a, b).value();
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "setrec_bench_service" / tag;
    std::filesystem::remove_all(dir);
    ServerOptions options;
    options.data_dir = dir.string();
    options.schema = &schema;
    options.suggested_backoff_ms = 1;
    options.own_pool_workers = 8;
    options.metrics = benchobs::ObsMetrics();
    options.tracer = benchobs::ObsTracer();
    std::vector<TenantConfig> tenants;
    for (const char* name : {"t0", "t1"}) {
      TenantConfig tenant;
      tenant.name = name;
      tenant.max_concurrency = 2;
      tenant.max_queue = 2;
      tenants.push_back(tenant);
    }
    server = std::move(Server::Create(options, tenants)).value();
  }
};

Client::Options ClientFor(ServiceBench& bench, const std::string& tenant) {
  Client::Options options;
  options.tenant = tenant;
  options.dial = [server = bench.server.get()]() -> Result<ConnectionPtr> {
    auto [client_end, server_end] = CreateInProcessPair();
    server->Serve(std::move(server_end));
    return std::move(client_end);
  };
  options.retry.max_attempts = 8;
  options.retry.base_delay = std::chrono::microseconds(200);
  options.retry.max_delay = std::chrono::milliseconds(2);
  options.metrics = benchobs::ObsMetrics();
  return options;
}

/// Worst per-tenant service-side quantile (microseconds) across the two
/// tenants' delta and query latency histograms — the labeled instruments
/// the server feeds per request (Dispatch). The process-wide registry
/// accumulates across rows, so these are cumulative-so-far tails; the row
/// at client count N reflects every request up to and including its run.
double WorstTenantQuantileUs(MetricsRegistry* metrics, double q) {
  if (metrics == nullptr) return 0.0;
  std::uint64_t worst = 0;
  for (const char* tenant : {"t0", "t1"}) {
    for (const char* op : {"tenant.delta_ns", "tenant.query_ns"}) {
      Histogram& h = metrics->HistogramLabeled(op, "tenant", tenant);
      if (h.count() != 0) worst = std::max(worst, h.Quantile(q));
    }
  }
  return static_cast<double>(worst) / 1000.0;
}

/// Spins up a follower for tenant t0, tails it to the leader's tip
/// (bounded rounds) and returns the remaining lag in records — 0 in a
/// healthy run: the replication feed must drain after the burst. The
/// follower publishes its tenant.replication.* gauges into the shared
/// registry, so they travel in the artifact's "metrics" block too.
double FollowerLagAfterCatchUp(ServiceBench& bench) {
  FollowerReplica::Options options;
  options.tenant = "t0";
  options.schema = &bench.schema;
  options.metrics = benchobs::ObsMetrics();
  options.dial = [server = bench.server.get()]() -> Result<ConnectionPtr> {
    auto [client_end, server_end] = CreateInProcessPair();
    server->Serve(std::move(server_end));
    return std::move(client_end);
  };
  Result<std::unique_ptr<FollowerReplica>> replica =
      FollowerReplica::Create(std::move(options));
  if (!replica.ok()) return -1.0;  // schema-visible failure marker
  std::uint64_t applied = 0, leader = 0;
  for (int round = 0; round < 64; ++round) {
    if (!(*replica)->TailOnce().ok()) break;
    (void)(*replica)->Read(&applied, &leader);
    if (applied == leader) break;
  }
  return static_cast<double>(leader - applied);
}

double PercentileUs(const std::vector<std::int64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ns.size() - 1) + 0.5);
  return static_cast<double>(
             sorted_ns[std::min(rank, sorted_ns.size() - 1)]) /
         1000.0;
}

/// Closed-loop mixed workload: every fourth operation is a write (a delta
/// adding a globally fresh A object), the rest read the A relation back.
void BM_ServiceClosedLoop(benchmark::State& state) {
  const auto clients = static_cast<std::uint32_t>(state.range(0));
  ServiceBench bench("clients" + std::to_string(clients));
  MetricsRegistry* metrics = benchobs::ObsMetrics();
  const std::uint64_t shed_before =
      metrics == nullptr ? 0 : metrics->CounterNamed("net.shed").value();
  const std::uint64_t retries_before =
      metrics == nullptr ? 0
                         : metrics->CounterNamed("net.client.retries").value();

  std::vector<std::int64_t> latencies_ns;
  std::uint64_t failures = 0;
  std::uint32_t round = 0;
  for (auto _ : state) {
    ++round;
    std::vector<std::vector<std::int64_t>> per_client(clients);
    std::vector<std::uint64_t> per_client_failures(clients, 0);
    std::vector<std::thread> pool;
    pool.reserve(clients);
    for (std::uint32_t c = 0; c < clients; ++c) {
      pool.emplace_back([&bench, &per_client, &per_client_failures, c,
                         round] {
        Client client(ClientFor(bench, c % 2 == 0 ? "t0" : "t1"));
        per_client[c].reserve(kOpsPerClient);
        for (std::uint32_t i = 0; i < kOpsPerClient; ++i) {
          const std::uint32_t fresh =
              (round * 1000u + c) * 1000u + i;  // globally unique object
          const auto start = std::chrono::steady_clock::now();
          Result<Response> reply =
              i % 4 == 0
                  ? client.ApplyDelta("delta { add object A(" +
                                      std::to_string(fresh) + "); }")
                  : client.Query("A");
          const auto elapsed = std::chrono::steady_clock::now() - start;
          per_client[c].push_back(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count());
          if (!reply.ok() || reply->code != StatusCode::kOk) {
            ++per_client_failures[c];
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
    for (std::uint32_t c = 0; c < clients; ++c) {
      latencies_ns.insert(latencies_ns.end(), per_client[c].begin(),
                          per_client[c].end());
      failures += per_client_failures[c];
    }
  }
  state.SetItemsProcessed(state.iterations() * clients * kOpsPerClient);

  std::sort(latencies_ns.begin(), latencies_ns.end());
  state.counters["p50_us"] = PercentileUs(latencies_ns, 0.50);
  state.counters["p99_us"] = PercentileUs(latencies_ns, 0.99);
  state.counters["p999_us"] = PercentileUs(latencies_ns, 0.999);
  state.counters["failures"] = static_cast<double>(failures);
  state.counters["shed"] =
      metrics == nullptr
          ? 0.0
          : static_cast<double>(metrics->CounterNamed("net.shed").value() -
                                shed_before);
  state.counters["retries"] =
      metrics == nullptr
          ? 0.0
          : static_cast<double>(
                metrics->CounterNamed("net.client.retries").value() -
                retries_before);
  // Server-side per-tenant tails (from the labeled latency histograms) and
  // the follower's replication lag after draining the feed — the artifact
  // schema (tools/check_bench_schema.py) gates on all four.
  state.counters["tenant_p50_us"] = WorstTenantQuantileUs(metrics, 0.50);
  state.counters["tenant_p99_us"] = WorstTenantQuantileUs(metrics, 0.99);
  state.counters["tenant_p999_us"] = WorstTenantQuantileUs(metrics, 0.999);
  state.counters["replication_lag"] = FollowerLagAfterCatchUp(bench);
}
BENCHMARK(BM_ServiceClosedLoop)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setrec
