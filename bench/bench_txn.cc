// Experiment E-TXN — transaction throughput: commit rate and abort rate of
// the concurrent transaction layer at 1..8 client threads, for (a) a
// certified-commutative workload (add_bar over per-worker drinkers, admitted
// lock-free via the Theorem 5.12 certificate) and (b) a deliberately
// conflicting MVCC mix where every transaction writes the same (drinker,
// property) slot, so first-committer-wins aborts, retries and possibly the
// serial-mode degradation all show up in the counters.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algebraic/method_library.h"
#include "core/instance.h"
#include "store/durable_store.h"
#include "txn/commutativity_cache.h"
#include "txn/txn_manager.h"

namespace setrec {
namespace {

constexpr std::uint32_t kMaxWorkers = 8;
constexpr std::uint32_t kBars = 1u << 14;
constexpr std::uint32_t kTxnsPerWorker = 16;

/// A seeded drinkers store in a fresh temp directory: one drinker per
/// potential worker plus a shared pool of bar objects large enough that a
/// bounded-iteration run never wraps into duplicate (empty-delta) edges.
struct TxnBench {
  DrinkersSchema ds;
  std::unique_ptr<AlgebraicUpdateMethod> add_bar;
  std::unique_ptr<DurableStore> store;
  CommutativityCache cache;
  std::unique_ptr<TxnManager> mgr;
  std::atomic<std::uint32_t> next_bar{0};

  explicit TxnBench(const std::string& tag) {
    ds = std::move(MakeDrinkersSchema()).value();
    add_bar = std::move(MakeAddBar(ds)).value();
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() / "setrec_bench_txn" / tag;
    std::filesystem::remove_all(dir);
    store = std::move(DurableStore::Open(dir.string(), &ds.schema)).value();
    Status seeded = store->Mutate([this](Instance& inst, ExecContext&) {
      for (std::uint32_t d = 0; d < kMaxWorkers; ++d) {
        SETREC_RETURN_IF_ERROR(inst.AddObject(ObjectId(ds.drinker, d)));
      }
      for (std::uint32_t b = 0; b < kBars; ++b) {
        SETREC_RETURN_IF_ERROR(inst.AddObject(ObjectId(ds.bar, b)));
      }
      return Status::OK();
    });
    if (!seeded.ok()) std::abort();
    TxnOptions topt;
    topt.retry.base_delay = std::chrono::nanoseconds(0);
    mgr = std::make_unique<TxnManager>(store.get(), &cache, topt);
  }
};

void ReportStats(benchmark::State& state, const TxnManager::Stats& stats) {
  const double attempts =
      static_cast<double>(stats.commits + stats.aborts);
  state.counters["commits"] = static_cast<double>(stats.commits);
  state.counters["aborts"] = static_cast<double>(stats.aborts);
  state.counters["conflicts"] = static_cast<double>(stats.conflicts);
  state.counters["retries"] = static_cast<double>(stats.retries);
  state.counters["group_commits"] = static_cast<double>(stats.group_commits);
  state.counters["degrades"] = static_cast<double>(stats.degrades);
  state.counters["abort_rate"] =
      attempts == 0 ? 0.0 : static_cast<double>(stats.aborts) / attempts;
  state.counters["commit_rate"] = benchmark::Counter(
      static_cast<double>(stats.commits), benchmark::Counter::kIsRate);
}

/// Certified-commutative admission: worker t applies add_bar to its own
/// drinker with a globally fresh bar, so every transaction rides the O(1)
/// certificate check and the group-commit pipeline with zero conflicts.
void BM_TxnCertifiedCommits(benchmark::State& state) {
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  TxnBench bench("certified" + std::to_string(workers));
  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint32_t t = 0; t < workers; ++t) {
      pool.emplace_back([&bench, t] {
        for (std::uint32_t i = 0; i < kTxnsPerWorker; ++i) {
          const std::uint32_t b =
              bench.next_bar.fetch_add(1, std::memory_order_relaxed) % kBars;
          Receiver r = Receiver::Unchecked(
              {ObjectId(bench.ds.drinker, t), ObjectId(bench.ds.bar, b)});
          Status s = bench.mgr->Apply(*bench.add_bar, {std::move(r)});
          if (!s.ok()) std::abort();
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  state.SetItemsProcessed(state.iterations() * workers * kTxnsPerWorker);
  ReportStats(state, bench.mgr->stats());
}
BENCHMARK(BM_TxnCertifiedCommits)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(20)
    ->Unit(benchmark::kMillisecond);

/// The adversarial mix: every transaction mutates drinker 0's frequents
/// slot, so concurrent attempts always overlap under first-committer-wins.
/// Aborts, retries and serial-mode degradation are the product under test —
/// the abort_rate / degrades counters say what the storm cost.
void BM_TxnConflictingCommits(benchmark::State& state) {
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  TxnBench bench("conflicting" + std::to_string(workers));
  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::uint32_t t = 0; t < workers; ++t) {
      pool.emplace_back([&bench] {
        for (std::uint32_t i = 0; i < kTxnsPerWorker; ++i) {
          const std::uint32_t b =
              bench.next_bar.fetch_add(1, std::memory_order_relaxed) % kBars;
          Status s = bench.mgr->Mutate(
              [&bench, b](Instance& inst, ExecContext&) {
                return inst.AddEdge(ObjectId(bench.ds.drinker, 0),
                                    bench.ds.frequents,
                                    ObjectId(bench.ds.bar, b));
              });
          // kRetryExhausted is a legal outcome of a storm; anything else
          // fatal would invalidate the measurement.
          if (!s.ok() && s.code() != StatusCode::kRetryExhausted) {
            std::abort();
          }
        }
      });
    }
    for (std::thread& t : pool) t.join();
  }
  state.SetItemsProcessed(state.iterations() * workers * kTxnsPerWorker);
  ReportStats(state, bench.mgr->stats());
}
BENCHMARK(BM_TxnConflictingCommits)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setrec
