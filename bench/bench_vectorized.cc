// Backend comparison on join shapes, |R| = 2^6..2^14: the tuple-at-a-time
// interpreter versus the compiled vectorized backend through one-shot
// Evaluate (transpose + compile + batch execution) versus pure bytecode
// re-execution (program and input transpose cached in a persistent engine,
// result memo cleared per iteration).
//
// Three families with different cost centers:
//  - SelJoin:     σ_{a=c}(σ_{b=b2}(R×S)) — both conditions fuse into join
//                 keys, the output is a handful of rows, so hashing and
//                 probing |R| tuples is the whole cost (eval-heavy).
//  - ProjectJoin: π_a of a 2x-fan-out join — the columnar dedup does the
//                 work, the output is |R| single-column rows (eval-heavy).
//  - WideJoin:    the same join materializing all 2|R| four-column rows —
//                 output tuple construction dominates either backend, the
//                 honest bound on what batching can buy.
// The schema gate (tools/check_bench_schema.py) pins the acceptance
// property: vectorized beats the interpreter at the two largest sizes of
// both eval-heavy families.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <utility>

#include "bench_obs.h"
#include "core/exec_backend.h"
#include "relational/builder.h"
#include "relational/evaluator.h"
#include "relational/relation.h"
#include "relational/vectorized/engine.h"

namespace setrec {
namespace {

constexpr ClassId kP = 0;

ObjectId P(std::uint64_t i) {
  return ObjectId(kP, static_cast<std::uint32_t>(i));
}

/// R(a, b) and S(b2, c), |R| = |S| = n. Joining on b = b2 gives every key
/// two matches per side (2n output pairs); the extra a = c key then keeps
/// only the ~2 rows where 2k or 2k+1 equals n-2k or n-2k-1.
Database JoinWorkload(std::int64_t rows) {
  Database db;
  const auto n = static_cast<std::uint64_t>(rows);
  RelationScheme r_scheme =
      std::move(RelationScheme::Make({{"a", kP}, {"b", kP}})).value();
  RelationScheme s_scheme =
      std::move(RelationScheme::Make({{"b2", kP}, {"c", kP}})).value();
  Relation r(r_scheme);
  Relation s(s_scheme);
  r.Reserve(n);
  s.Reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    r.InsertValidated(Tuple{P(i), P(i / 2)});
    s.InsertValidated(Tuple{P(i / 2), P(n - i)});
  }
  db.Put("R", std::move(r));
  db.Put("S", std::move(s));
  return db;
}

ExprPtr SelJoinQuery() {
  return ra::SelectEq(
      ra::SelectEq(ra::Product(ra::Rel("R"), ra::Rel("S")), "b", "b2"), "a",
      "c");
}

ExprPtr WideJoinQuery() {
  return ra::SelectNeq(
      ra::SelectEq(ra::Product(ra::Rel("R"), ra::Rel("S")), "b", "b2"), "a",
      "c");
}

ExprPtr ProjectJoinQuery() { return ra::Project(WideJoinQuery(), {"a"}); }

void RunBackend(benchmark::State& state, const ExprPtr& expr,
                ExecBackend backend) {
  Database db = JoinWorkload(state.range(0));
  ExecOptions options = benchobs::ObsOptions();
  options.backend = backend;
  std::uint64_t rows = 0;
  for (auto _ : state) {
    Result<Relation> out = Evaluate(expr, db, options);
    if (!out.ok()) {
      state.SkipWithError(out.status().message().c_str());
      return;
    }
    rows = out.value().size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

/// Pure batch execution: one persistent engine keeps the compiled program
/// and the transposed base relations; clearing the result memo per
/// iteration re-runs the bytecode without re-compiling or re-transposing.
void RunBytecode(benchmark::State& state, const ExprPtr& expr) {
  Database db = JoinWorkload(state.range(0));
  vectorized::Engine engine(&db, &benchobs::ObsContext());
  std::uint64_t rows = 0;
  for (auto _ : state) {
    engine.ClearResultMemo();
    auto out = engine.Execute(expr, nullptr);
    if (!out.ok()) {
      state.SkipWithError(out.status().message().c_str());
      return;
    }
    rows = out.value()->size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_SelJoinInterpreter(benchmark::State& state) {
  RunBackend(state, SelJoinQuery(), ExecBackend::kInterpreter);
}
BENCHMARK(BM_SelJoinInterpreter)
    ->RangeMultiplier(2)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

void BM_SelJoinVectorized(benchmark::State& state) {
  RunBackend(state, SelJoinQuery(), ExecBackend::kVectorized);
}
BENCHMARK(BM_SelJoinVectorized)
    ->RangeMultiplier(2)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

void BM_SelJoinBytecode(benchmark::State& state) {
  RunBytecode(state, SelJoinQuery());
}
BENCHMARK(BM_SelJoinBytecode)
    ->RangeMultiplier(2)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

void BM_ProjectJoinInterpreter(benchmark::State& state) {
  RunBackend(state, ProjectJoinQuery(), ExecBackend::kInterpreter);
}
BENCHMARK(BM_ProjectJoinInterpreter)
    ->RangeMultiplier(2)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

void BM_ProjectJoinVectorized(benchmark::State& state) {
  RunBackend(state, ProjectJoinQuery(), ExecBackend::kVectorized);
}
BENCHMARK(BM_ProjectJoinVectorized)
    ->RangeMultiplier(2)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

void BM_ProjectJoinBytecode(benchmark::State& state) {
  RunBytecode(state, ProjectJoinQuery());
}
BENCHMARK(BM_ProjectJoinBytecode)
    ->RangeMultiplier(2)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

void BM_WideJoinInterpreter(benchmark::State& state) {
  RunBackend(state, WideJoinQuery(), ExecBackend::kInterpreter);
}
BENCHMARK(BM_WideJoinInterpreter)
    ->RangeMultiplier(2)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

void BM_WideJoinVectorized(benchmark::State& state) {
  RunBackend(state, WideJoinQuery(), ExecBackend::kVectorized);
}
BENCHMARK(BM_WideJoinVectorized)
    ->RangeMultiplier(2)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

void BM_WideJoinBytecode(benchmark::State& state) {
  RunBytecode(state, WideJoinQuery());
}
BENCHMARK(BM_WideJoinBytecode)
    ->RangeMultiplier(2)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace setrec
