// Experiment E21 — multi-core scaling of parallel application. Three
// curves over the Section 7 payroll workload, |T| = 2^3 ... 2^12:
//
//   * Sequential        — ApplySequence: one E evaluation per receiver.
//   * Parallel/1 shard  — the classic M_par path: one rec relation, one
//                         par(E) evaluation per statement, single thread.
//   * Parallel/N shards — the sharded runtime on a persistent ThreadPool
//                         of DefaultWorkerCount() workers.
//
// Determinism makes this a pure performance comparison: the three compute
// bit-identical results (see parallel_runtime_test). The pool lives
// outside the timing loop, so the N-shard curve prices partitioning,
// forked budget accounting and the merge — not thread startup. Read the
// absolute numbers against the host: on a single-core machine the N-shard
// curve can only show the overhead floor, never a speedup (EXPERIMENTS.md
// records which hardware produced the committed artifact).

#include <benchmark/benchmark.h>

#include "algebraic/parallel.h"
#include "bench_obs.h"
#include "core/sequential.h"
#include "core/thread_pool.h"
#include "sql/table.h"

namespace setrec {
namespace {

struct Workload {
  PayrollSchema schema;
  Instance instance;
  std::unique_ptr<AlgebraicUpdateMethod> method;
  std::vector<Receiver> receivers;

  Workload() : instance(nullptr) {}
};

Workload BuildWorkload(std::int64_t n_employees) {
  Workload w;
  w.schema = std::move(MakePayrollSchema()).value();
  std::vector<EmployeeRow> employees;
  std::vector<NewSalRow> raises;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(n_employees);
       ++i) {
    employees.push_back(EmployeeRow{i, 1000 + (i % 16), std::nullopt});
  }
  for (std::uint32_t s = 0; s < 16; ++s) {
    raises.push_back(NewSalRow{1000 + s, 2000 + s});
  }
  w.instance = std::move(BuildPayrollInstance(w.schema, employees, {},
                                              raises))
                   .value();
  w.method = std::move(MakeSalaryFromNewSal(w.schema)).value();
  const auto salaries = std::move(ReadSalaries(w.schema, w.instance)).value();
  for (auto [id, salary] : salaries) {
    w.receivers.push_back(Receiver::Unchecked(
        {ObjectId(w.schema.emp, id), ObjectId(w.schema.val, salary)}));
  }
  return w;
}

void BM_Sequential(benchmark::State& state) {
  Workload w = BuildWorkload(state.range(0));
  for (auto _ : state) {
    Result<Instance> out = ApplySequence(*w.method, w.instance, w.receivers,
                                         benchobs::ObsContext());
    if (!out.ok()) state.SkipWithError("sequential application failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.receivers.size()));
}

void BM_ParallelOneShard(benchmark::State& state) {
  Workload w = BuildWorkload(state.range(0));
  for (auto _ : state) {
    Result<Instance> out =
        ParallelApply(*w.method, w.instance, w.receivers,
                      ParallelOptions{1, nullptr}, benchobs::ObsContext());
    if (!out.ok()) state.SkipWithError("parallel application failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.receivers.size()));
}

void BM_ParallelSharded(benchmark::State& state) {
  Workload w = BuildWorkload(state.range(0));
  ThreadPool pool(ThreadPool::DefaultWorkerCount());
  // The unified ExecOptions entry point — the traced quickstart path.
  ExecOptions options = benchobs::ObsOptions();
  options.num_workers = pool.num_workers();
  options.pool = &pool;
  for (auto _ : state) {
    Result<Instance> out =
        ParallelApply(*w.method, w.instance, w.receivers, options);
    if (!out.ok()) state.SkipWithError("sharded application failed");
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(w.receivers.size()));
  state.counters["workers"] =
      static_cast<double>(pool.num_workers());
}

BENCHMARK(BM_Sequential)->RangeMultiplier(2)->Range(8, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelOneShard)->RangeMultiplier(2)->Range(8, 4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelSharded)->RangeMultiplier(2)->Range(8, 4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace setrec
