// Tests for the Theorem 5.12 decision procedure, the Proposition 5.8
// syntactic condition, and the Corollary 5.7 randomized refuter, checked
// against the paper's classification of its named methods and against
// exhaustive semantic ground truth on random instances.

#include <gtest/gtest.h>

#include "algebraic/method_library.h"
#include "algebraic/order_independence.h"
#include "core/sequential.h"
#include "relational/builder.h"

namespace setrec {
namespace {

TEST(Prop58Test, SyntacticConditionMatchesExample59) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  // favorite_bar (f := arg1) does not access Df: condition holds.
  auto favorite = std::move(MakeFavoriteBar(ds)).value();
  EXPECT_TRUE(SatisfiesUpdateIsolationCondition(*favorite));
  // add_bar accesses and modifies Df: condition fails (yet the method is
  // order independent — the condition is only sufficient, Example 5.9).
  auto add_bar = std::move(MakeAddBar(ds)).value();
  EXPECT_FALSE(SatisfiesUpdateIsolationCondition(*add_bar));
  // delete_bar likewise reads Df.
  auto delete_bar = std::move(MakeDeleteBar(ds)).value();
  EXPECT_FALSE(SatisfiesUpdateIsolationCondition(*delete_bar));
}

TEST(DecisionTest, AddBarIsOrderIndependent) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto add_bar = std::move(MakeAddBar(ds)).value();
  EXPECT_TRUE(std::move(DecideOrderIndependence(
                            *add_bar, OrderIndependenceKind::kAbsolute))
                  .value());
  EXPECT_TRUE(std::move(DecideOrderIndependence(
                            *add_bar, OrderIndependenceKind::kKeyOrder))
                  .value());
}

TEST(DecisionTest, FavoriteBarIsKeyOrderIndependentOnly) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto favorite = std::move(MakeFavoriteBar(ds)).value();
  EXPECT_FALSE(std::move(DecideOrderIndependence(
                             *favorite, OrderIndependenceKind::kAbsolute))
                   .value());
  EXPECT_TRUE(std::move(DecideOrderIndependence(
                            *favorite, OrderIndependenceKind::kKeyOrder))
                  .value());
}

TEST(DecisionTest, DeleteBarIsOrderIndependent) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto delete_bar = std::move(MakeDeleteBar(ds)).value();
  EXPECT_TRUE(std::move(DecideOrderIndependence(
                            *delete_bar, OrderIndependenceKind::kAbsolute))
                  .value());
}

TEST(DecisionTest, LikesServesIsOrderIndependent) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto method = std::move(MakeLikesServesBar(ds)).value();
  EXPECT_TRUE(std::move(DecideOrderIndependence(
                            *method, OrderIndependenceKind::kAbsolute))
                  .value());
}

TEST(DecisionTest, RejectsNonPositiveMethods) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  ExprPtr complement =
      ra::Diff(ra::Rename(ra::Rel("Ba"), "Ba", "f"),
               ra::Project(ra::JoinEq(ra::Rel("self"), ra::Rel("Df"), "self",
                                      "D"),
                           {"f"}));
  auto method = std::move(AlgebraicUpdateMethod::Make(
                              &ds.schema, MethodSignature({ds.drinker}),
                              "complement",
                              {UpdateStatement{ds.frequents, complement}}))
                    .value();
  EXPECT_EQ(
      DecideOrderIndependence(*method, OrderIndependenceKind::kAbsolute)
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST(RefuterTest, FindsWitnessForFavoriteBar) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto favorite = std::move(MakeFavoriteBar(ds)).value();
  InstanceGenerator::Options options;
  options.max_objects_per_class = 3;
  auto witness = std::move(SearchOrderDependenceWitness(
                               *favorite, ds.schema, 7, 4, options))
                     .value();
  ASSERT_TRUE(witness.has_value());
  // The two orders genuinely disagree on the found witness.
  std::vector<Receiver> ab = {witness->first, witness->second};
  std::vector<Receiver> ba = {witness->second, witness->first};
  Instance iab =
      std::move(ApplySequence(*favorite, witness->instance, ab)).value();
  Instance iba =
      std::move(ApplySequence(*favorite, witness->instance, ba)).value();
  EXPECT_FALSE(iab == iba);
  // But never with distinct receiving objects (key pairs commute).
  auto key_witness = std::move(SearchOrderDependenceWitness(
                                   *favorite, ds.schema, 7, 4, options,
                                   /*key_pairs_only=*/true))
                         .value();
  EXPECT_FALSE(key_witness.has_value());
}

TEST(RefuterTest, FindsNoWitnessForAddBar) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto add_bar = std::move(MakeAddBar(ds)).value();
  InstanceGenerator::Options options;
  options.max_objects_per_class = 3;
  auto witness = std::move(SearchOrderDependenceWitness(*add_bar, ds.schema,
                                                        11, 4, options))
                     .value();
  EXPECT_FALSE(witness.has_value());
}

TEST(RefuterTest, ConditionalDeleteIsOrderDependent) {
  // Proposition 5.14's first method: order dependent in general. The first
  // deletion can push #Ca below the guard threshold, changing what the
  // second receiver does.
  PairSchema ps = std::move(MakePairSchema()).value();
  auto method = std::move(MakeConditionalDeleteMethod(ps)).value();
  ASSERT_TRUE(method->IsPositiveMethod());

  // Deterministic witness: Ca = {(c1,x), (c2,y)}, receivers (c1,x) and
  // (c2,z) with z ∉ a(c2).
  Instance instance(&ps.schema);
  const ObjectId c1(ps.c, 0), c2(ps.c, 1), x(ps.c, 2), y(ps.c, 3), z(ps.c, 4);
  for (ObjectId o : {c1, c2, x, y, z}) {
    ASSERT_TRUE(instance.AddObject(o).ok());
  }
  ASSERT_TRUE(instance.AddEdge(c1, ps.a, x).ok());
  ASSERT_TRUE(instance.AddEdge(c2, ps.a, y).ok());
  std::vector<Receiver> pair = {Receiver::Unchecked({c1, x}),
                                Receiver::Unchecked({c2, z})};
  auto outcome =
      std::move(OrderIndependentOn(*method, instance, pair)).value();
  EXPECT_FALSE(outcome.order_independent);

  // The randomized refuter finds some witness too (sparser edges make the
  // #Ca = 2 boundary likely).
  InstanceGenerator::Options options;
  options.min_objects_per_class = 3;
  options.max_objects_per_class = 4;
  options.edge_probability = 0.15;
  auto witness = std::move(SearchOrderDependenceWitness(*method, ps.schema,
                                                        3, 20, options))
                     .value();
  EXPECT_TRUE(witness.has_value());
}

TEST(DecisionTest, ClearAndAllBarsAreOrderIndependent) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto clear = std::move(MakeClearBars(ds)).value();
  auto all = std::move(MakeAllBars(ds)).value();
  // clear_bars reads Df syntactically (inside the unsatisfiable selection),
  // so Prop 5.8 is too coarse for it; the decision procedure is not.
  EXPECT_FALSE(SatisfiesUpdateIsolationCondition(*clear));
  EXPECT_TRUE(SatisfiesUpdateIsolationCondition(*all));
  for (const AlgebraicUpdateMethod* m : {clear.get(), all.get()}) {
    EXPECT_TRUE(std::move(DecideOrderIndependence(
                              *m, OrderIndependenceKind::kAbsolute))
                    .value())
        << m->name();
  }
  // Behaviour: clear empties the row, all fills it.
  Instance instance(&ds.schema);
  const ObjectId d(ds.drinker, 0);
  const ObjectId b0(ds.bar, 0), b1(ds.bar, 1);
  ASSERT_TRUE(instance.AddObject(d).ok());
  ASSERT_TRUE(instance.AddObject(b0).ok());
  ASSERT_TRUE(instance.AddObject(b1).ok());
  ASSERT_TRUE(instance.AddEdge(d, ds.frequents, b0).ok());
  Receiver r = Receiver::Unchecked({d});
  Instance cleared = std::move(clear->Apply(instance, r)).value();
  EXPECT_TRUE(cleared.Targets(d, ds.frequents).empty());
  Instance filled = std::move(all->Apply(instance, r)).value();
  EXPECT_EQ(filled.Targets(d, ds.frequents),
            (std::vector<ObjectId>{b0, b1}));
}

/// Cross-validation sweep: the decision procedure's verdict must agree with
/// exhaustive pairwise semantics on sampled instances — a verdict of
/// "independent" means no witness may exist; a verdict of "dependent" means
/// the refuter (given enough trials) finds one for these small methods.
struct NamedMethodCase {
  const char* name;
  bool absolute;
  bool key_order;
};

class DecisionGroundTruthTest
    : public ::testing::TestWithParam<NamedMethodCase> {};

TEST_P(DecisionGroundTruthTest, MatchesRandomizedSemantics) {
  const NamedMethodCase& c = GetParam();
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  std::unique_ptr<AlgebraicUpdateMethod> method;
  if (std::string(c.name) == "add_bar") {
    method = std::move(MakeAddBar(ds)).value();
  } else if (std::string(c.name) == "favorite_bar") {
    method = std::move(MakeFavoriteBar(ds)).value();
  } else if (std::string(c.name) == "delete_bar") {
    method = std::move(MakeDeleteBar(ds)).value();
  } else {
    method = std::move(MakeLikesServesBar(ds)).value();
  }
  EXPECT_EQ(std::move(DecideOrderIndependence(
                          *method, OrderIndependenceKind::kAbsolute))
                .value(),
            c.absolute);
  EXPECT_EQ(std::move(DecideOrderIndependence(
                          *method, OrderIndependenceKind::kKeyOrder))
                .value(),
            c.key_order);
  InstanceGenerator::Options options;
  options.max_objects_per_class = 3;
  auto witness = std::move(SearchOrderDependenceWitness(*method, ds.schema,
                                                        13, 3, options))
                     .value();
  EXPECT_EQ(witness.has_value(), !c.absolute);
  auto key_witness = std::move(SearchOrderDependenceWitness(
                                   *method, ds.schema, 13, 3, options,
                                   /*key_pairs_only=*/true))
                         .value();
  EXPECT_EQ(key_witness.has_value(), !c.key_order);
}

INSTANTIATE_TEST_SUITE_P(
    NamedMethods, DecisionGroundTruthTest,
    ::testing::Values(NamedMethodCase{"add_bar", true, true},
                      NamedMethodCase{"favorite_bar", false, true},
                      NamedMethodCase{"delete_bar", true, true},
                      NamedMethodCase{"likes_serves", true, true}),
    [](const ::testing::TestParamInfo<NamedMethodCase>& param_info) {
      return std::string(param_info.param.name);
    });

}  // namespace
}  // namespace setrec
