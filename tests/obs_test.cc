// Tests for the observability layer (src/obs/) and the unified ExecOptions
// surface: span recording and parentage across Fork() fan-outs, metric
// counters under concurrency (the TSan target), determinism of the
// worker-count-invariant instruments across 1/2/8 workers, the ExecScope
// attach/detach contract, the commit-hook veto path of the ExecOptions SQL
// overloads, and the memoized Relation::SortedTuples view.

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "algebraic/method_library.h"
#include "algebraic/parallel.h"
#include "core/exec_options.h"
#include "core/instance_generator.h"
#include "core/sequential.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/builder.h"
#include "relational/relation.h"
#include "sql/engine.h"
#include "sql/table.h"

namespace setrec {
namespace {

// -- Spans and the tracer ----------------------------------------------------

TEST(TraceSpanTest, NullTracerSpanIsInert) {
  TraceSpan none;
  EXPECT_FALSE(none.active());
  TraceSpan null_tracer(nullptr, "ignored");
  EXPECT_FALSE(null_tracer.active());
  null_tracer.End();  // idempotent no-op
  EXPECT_EQ(null_tracer.id(), 0u);
}

TEST(TracerTest, RecordsNestedSpansWithParentage) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "outer");
    EXPECT_EQ(tracer.CurrentSpanId(), outer.id());
    {
      TraceSpan inner(&tracer, "inner");
      EXPECT_EQ(tracer.CurrentSpanId(), inner.id());
    }
    EXPECT_EQ(tracer.CurrentSpanId(), outer.id());
  }
  EXPECT_EQ(tracer.CurrentSpanId(), 0u);

  const std::vector<SpanEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(tracer.total_spans(), 2u);
  EXPECT_EQ(tracer.dropped_events(), 0u);
  // Events are ordered by start time: outer starts first.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_EQ(events[0].parent, 0u);
  EXPECT_EQ(events[1].parent, events[0].id);
  EXPECT_LE(events[1].dur_ns, events[0].dur_ns);
}

TEST(TracerTest, ParentHintRootsForkedThreads) {
  // A worker thread has no open span of its own; its first span must attach
  // under the span that forked it, via the hint Fork() captured.
  Tracer tracer;
  std::uint64_t fanout_id = 0;
  {
    TraceSpan fanout(&tracer, "fanout");
    fanout_id = fanout.id();
    ExecContext parent;
    parent.set_tracer(&tracer);
    ExecContext child = parent.Fork();
    EXPECT_EQ(child.trace_parent(), fanout_id);
    std::thread worker([&child] {
      TraceSpan shard = StartSpan(child, "shard");
      (void)shard;
    });
    worker.join();
  }
  for (const SpanEvent& e : tracer.Events()) {
    if (std::string_view(e.name) == "shard") {
      EXPECT_EQ(e.parent, fanout_id);
      return;
    }
  }
  FAIL() << "shard span not recorded";
}

TEST(TracerTest, StageTotalsAggregateAcrossSpans) {
  Tracer tracer;
  for (int i = 0; i < 3; ++i) {
    TraceSpan s(&tracer, "stage-a");
  }
  { TraceSpan s(&tracer, "stage-b"); }
  const auto totals = tracer.StageTotals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals.at("stage-a").count, 3u);
  EXPECT_EQ(totals.at("stage-b").count, 1u);
}

TEST(TracerTest, TreeSignatureDedupsIdenticalSiblings) {
  // 1 shard span vs 3 structurally identical ones: same signature — that is
  // the worker-count invariance the determinism tests lean on.
  const auto build = [](int shards) {
    auto tracer = std::make_unique<Tracer>();
    TraceSpan apply(tracer.get(), "apply");
    for (int i = 0; i < shards; ++i) {
      TraceSpan shard(tracer.get(), "shard");
      TraceSpan eval(tracer.get(), "eval");
    }
    return tracer;
  };
  const auto one = build(1);
  const auto three = build(3);
  EXPECT_EQ(one->TreeSignature(), three->TreeSignature());
  EXPECT_NE(one->TreeSignature(), "");
  // A structurally different tree signs differently.
  Tracer other;
  { TraceSpan apply(&other, "apply"); }
  EXPECT_NE(other.TreeSignature(), one->TreeSignature());
}

TEST(TracerTest, ChromeTraceAndSummaryAreWellFormed) {
  Tracer tracer;
  {
    TraceSpan outer(&tracer, "outer");
    TraceSpan inner(&tracer, "inner");
  }
  std::ostringstream chrome;
  tracer.WriteChromeTrace(chrome);
  const std::string json = chrome.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"inner\""), std::string::npos);

  std::ostringstream summary;
  tracer.WriteSummary(summary);
  EXPECT_NE(summary.str().find("outer"), std::string::npos);
  EXPECT_NE(summary.str().find("inner"), std::string::npos);
}

// -- Metrics -----------------------------------------------------------------

TEST(MetricsTest, ConcurrentCounterUpdatesAreExact) {
  // The TSan target: engine counters and named instruments hammered from
  // many threads must race-free and lose nothing.
  MetricsRegistry registry;
  Counter& named = registry.CounterNamed("test.concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &named] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.engine.eval_rows.Add(1);
        registry.engine.shard_merge_ns.Observe(static_cast<std::uint64_t>(i));
        named.Add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(registry.engine.eval_rows.value(), expected);
  EXPECT_EQ(registry.engine.shard_merge_ns.count(), expected);
  EXPECT_EQ(named.value(), expected);
}

TEST(MetricsTest, NamedInstrumentsAreStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.CounterNamed("x");
  Counter& b = registry.CounterNamed("x");
  EXPECT_EQ(&a, &b);
  a.Add(2);
  EXPECT_EQ(b.value(), 2u);
  Gauge& g = registry.GaugeNamed("depth");
  g.Set(-3);
  EXPECT_EQ(registry.GaugeNamed("depth").value(), -3);
}

TEST(MetricsTest, SnapshotAndTextCoverEngineInstruments) {
  MetricsRegistry registry;
  registry.engine.chase_rounds.Add(5);
  registry.engine.commit_ns.Observe(1000);
  const MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  ASSERT_TRUE(snap.counters.contains("chase.rounds"));
  EXPECT_EQ(snap.counters.at("chase.rounds"), 5u);
  ASSERT_TRUE(snap.histograms.contains("store.commit_ns"));
  EXPECT_EQ(snap.histograms.at("store.commit_ns").count, 1u);
  EXPECT_EQ(snap.histograms.at("store.commit_ns").sum, 1000u);

  std::ostringstream text;
  registry.WriteText(text);
  EXPECT_NE(text.str().find("chase.rounds 5"), std::string::npos);
}

TEST(MetricsTest, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 0u);
  EXPECT_EQ(Histogram::BucketOf(2), 1u);
  EXPECT_EQ(Histogram::BucketOf(3), 1u);
  EXPECT_EQ(Histogram::BucketOf(4), 2u);
  EXPECT_EQ(Histogram::BucketOf(1024), 10u);
  Histogram h;
  h.Observe(4);
  h.Observe(5);
  EXPECT_EQ(h.bucket(2), 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.sum(), 9u);
}

// -- ExecOptions / ExecScope -------------------------------------------------

TEST(ExecOptionsTest, ScopeAttachesSinksToBorrowedContextAndDetaches) {
  Tracer tracer;
  MetricsRegistry metrics;
  ExecContext ctx;
  ExecOptions options;
  options.ctx = &ctx;
  options.tracer = &tracer;
  options.metrics = &metrics;
  {
    ExecScope scope(options);
    EXPECT_EQ(&scope.ctx(), &ctx);
    EXPECT_EQ(ctx.tracer(), &tracer);
    EXPECT_EQ(ctx.metrics(), &metrics);
  }
  // The borrowed context is returned exactly as it came.
  EXPECT_EQ(ctx.tracer(), nullptr);
  EXPECT_EQ(ctx.metrics(), nullptr);
}

TEST(ExecOptionsTest, ScopeKeepsAnExistingAttachment) {
  Tracer own;
  Tracer offered;
  ExecContext ctx;
  ctx.set_tracer(&own);
  ExecOptions options;
  options.ctx = &ctx;
  options.tracer = &offered;
  {
    ExecScope scope(options);
    EXPECT_EQ(ctx.tracer(), &own);  // the context's attachment wins
  }
  EXPECT_EQ(ctx.tracer(), &own);  // and is not detached on exit
}

TEST(ExecOptionsTest, ScopeMaterializesAFreshContextWhenNoneGiven) {
  Tracer tracer;
  ExecOptions options;
  options.tracer = &tracer;
  ExecScope scope(options);
  EXPECT_EQ(scope.ctx().tracer(), &tracer);
  EXPECT_FALSE(scope.ctx().limited());
}

// -- Payroll workload helpers ------------------------------------------------

struct PayrollWorkload {
  PayrollSchema schema;
  Instance instance;
  std::unique_ptr<AlgebraicUpdateMethod> method;
  std::vector<Receiver> receivers;

  PayrollWorkload() : instance(nullptr) {}
};

PayrollWorkload BuildPayroll(std::uint32_t n_employees) {
  PayrollWorkload w;
  w.schema = std::move(MakePayrollSchema()).value();
  std::vector<EmployeeRow> employees;
  std::vector<NewSalRow> raises;
  for (std::uint32_t i = 0; i < n_employees; ++i) {
    employees.push_back(EmployeeRow{i, 1000 + (i % 8), std::nullopt});
  }
  for (std::uint32_t s = 0; s < 8; ++s) {
    raises.push_back(NewSalRow{1000 + s, 2000 + s});
  }
  w.instance =
      std::move(BuildPayrollInstance(w.schema, employees, {}, raises)).value();
  w.method = std::move(MakeSalaryFromNewSal(w.schema)).value();
  const auto salaries = std::move(ReadSalaries(w.schema, w.instance)).value();
  for (auto [id, salary] : salaries) {
    w.receivers.push_back(Receiver::Unchecked(
        {ObjectId(w.schema.emp, id), ObjectId(w.schema.val, salary)}));
  }
  return w;
}

struct ObservedRun {
  Instance out;
  std::uint64_t eval_rows = 0;
  std::uint64_t apply_edges = 0;
  std::string tree_signature;

  ObservedRun() : out(nullptr) {}
};

ObservedRun RunParallelObserved(const PayrollWorkload& w,
                                std::size_t num_workers) {
  Tracer tracer;
  MetricsRegistry metrics;
  ExecContext ctx;
  ExecOptions options;
  options.ctx = &ctx;
  options.tracer = &tracer;
  options.metrics = &metrics;
  options.num_workers = num_workers;
  ObservedRun run;
  run.out = std::move(ParallelApply(*w.method, w.instance, w.receivers,
                                    options))
                .value();
  run.eval_rows = metrics.engine.eval_rows.value();
  run.apply_edges = metrics.engine.apply_edges.value();
  run.tree_signature = tracer.TreeSignature();
  return run;
}

// -- Determinism of the observed quantities across worker counts -------------

TEST(ObsDeterminismTest, PayrollInvariantsAcross128Workers) {
  const PayrollWorkload w = BuildPayroll(48);
  ASSERT_FALSE(w.receivers.empty());
  const ObservedRun one = RunParallelObserved(w, 1);
  const ObservedRun two = RunParallelObserved(w, 2);
  const ObservedRun eight = RunParallelObserved(w, 8);
  // Same answer (par(E) decomposes along the self slices) ...
  EXPECT_TRUE(two.out == one.out);
  EXPECT_TRUE(eight.out == one.out);
  // ... same worker-count-invariant counters (rows flowing through the
  // probes and edges applied at the merge do not depend on sharding) ...
  EXPECT_EQ(two.eval_rows, one.eval_rows);
  EXPECT_EQ(eight.eval_rows, one.eval_rows);
  EXPECT_EQ(two.apply_edges, one.apply_edges);
  EXPECT_EQ(eight.apply_edges, one.apply_edges);
  EXPECT_GT(one.apply_edges, 0u);
  // ... and the same span tree modulo timestamps and sibling multiplicity.
  EXPECT_EQ(two.tree_signature, one.tree_signature);
  EXPECT_EQ(eight.tree_signature, one.tree_signature);
}

TEST(ObsDeterminismTest, RandomCorpusInvariantsAcrossWorkerCounts) {
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
    InstanceGenerator gen(&ds.schema, seed);
    InstanceGenerator::Options gopt;
    gopt.min_objects_per_class = 12;
    gopt.max_objects_per_class = 12;
    gopt.edge_probability = 0.3;
    const Instance instance = gen.RandomInstance(gopt);
    const auto add_bar = std::move(MakeAddBar(ds)).value();
    const std::vector<Receiver> receivers =
        gen.RandomKeySet(instance, add_bar->signature(), 6);
    if (receivers.empty()) continue;

    ObservedRun runs[2];
    const std::size_t workers[2] = {1, 4};
    for (int i = 0; i < 2; ++i) {
      Tracer tracer;
      MetricsRegistry metrics;
      ExecContext ctx;
      ExecOptions options;
      options.ctx = &ctx;
      options.tracer = &tracer;
      options.metrics = &metrics;
      options.num_workers = workers[i];
      runs[i].out =
          std::move(ParallelApply(*add_bar, instance, receivers, options))
              .value();
      runs[i].eval_rows = metrics.engine.eval_rows.value();
      runs[i].apply_edges = metrics.engine.apply_edges.value();
      runs[i].tree_signature = tracer.TreeSignature();
    }
    EXPECT_TRUE(runs[1].out == runs[0].out) << "seed " << seed;
    EXPECT_EQ(runs[1].eval_rows, runs[0].eval_rows) << "seed " << seed;
    EXPECT_EQ(runs[1].apply_edges, runs[0].apply_edges) << "seed " << seed;
    EXPECT_EQ(runs[1].tree_signature, runs[0].tree_signature)
        << "seed " << seed;
  }
}

TEST(ObsDeterminismTest, SequentialApplyReportsReceiversAndSpans) {
  const PayrollWorkload w = BuildPayroll(16);
  Tracer tracer;
  MetricsRegistry metrics;
  ExecContext ctx;
  ctx.set_tracer(&tracer);
  ctx.set_metrics(&metrics);
  ASSERT_TRUE(ApplySequence(*w.method, w.instance, w.receivers, ctx).ok());
  EXPECT_EQ(metrics.engine.sequential_receivers.value(), w.receivers.size());
  const auto totals = tracer.StageTotals();
  ASSERT_TRUE(totals.contains("sequential/apply"));
  EXPECT_EQ(totals.at("sequential/apply").count, 1u);
}

// -- ExecOptions overloads of the SQL statements -----------------------------

TEST(ExecOptionsTest, SqlUpdateHonorsCommitHookVeto) {
  PayrollSchema ps = std::move(MakePayrollSchema()).value();
  std::vector<EmployeeRow> employees = {
      {1, 100, std::nullopt}, {2, 200, std::nullopt}, {3, 100, std::nullopt}};
  std::vector<NewSalRow> raises = {{100, 150}, {200, 250}};
  const Instance original =
      std::move(BuildPayrollInstance(ps, employees, {}, raises)).value();
  const ExprPtr query = ra::Project(
      ra::JoinEq(ra::Rel("EmpSalary"),
                 ra::Project(ra::JoinEq(ra::Rel("NSOld"),
                                        ra::Rename(ra::Rel("NSNew"), "NS",
                                                   "NS2"),
                                        "NS", "NS2"),
                             {"Old", "New"}),
                 "Salary", "Old"),
      {"Emp", "New"});

  // Veto: the statement must report the hook's error and leave the instance
  // bit-identical, after the hook saw a genuinely mutated `after`.
  Instance vetoed = original;
  bool hook_ran = false;
  ExecOptions veto;
  veto.commit_hook = [&](const Instance& before, const Instance& after) {
    hook_ran = true;
    EXPECT_TRUE(before == original);
    EXPECT_FALSE(after == before);
    return Status::Internal("veto");
  };
  Status s = SetOrientedUpdateInPlace(vetoed, ps.salary, query, veto);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_TRUE(hook_ran);
  EXPECT_TRUE(vetoed == original);

  // Approve (default hook) with sinks attached: commits and reports spans.
  Instance committed = original;
  Tracer tracer;
  ExecOptions ok_options;
  ok_options.tracer = &tracer;
  ASSERT_TRUE(
      SetOrientedUpdateInPlace(committed, ps.salary, query, ok_options).ok());
  EXPECT_FALSE(committed == original);
  EXPECT_TRUE(tracer.StageTotals().contains("sql/set-update"));
}

TEST(ExecOptionsTest, SqlDeleteOverloadTracesAndDeletes) {
  PayrollSchema ps = std::move(MakePayrollSchema()).value();
  std::vector<EmployeeRow> employees = {
      {1, 100, std::nullopt}, {2, 200, std::nullopt}, {3, 100, std::nullopt}};
  const Instance original =
      std::move(BuildPayrollInstance(ps, employees, {{100, 300}}, {})).value();
  Instance instance = original;
  Tracer tracer;
  MetricsRegistry metrics;
  ExecOptions options;
  options.tracer = &tracer;
  options.metrics = &metrics;
  ASSERT_TRUE(
      SetOrientedDeleteInPlace(instance, ps.emp, SalaryInFire(ps), options)
          .ok());
  EXPECT_FALSE(instance == original);  // salary 100 is in Fire
  EXPECT_TRUE(tracer.StageTotals().contains("sql/set-delete"));
}

// -- Memoized sorted view ----------------------------------------------------

Relation SmallRelation(ClassId cls, std::initializer_list<std::uint32_t> ids) {
  RelationScheme scheme =
      std::move(RelationScheme::Make({{"A", cls}})).value();
  Relation rel(std::move(scheme));
  for (std::uint32_t id : ids) {
    EXPECT_TRUE(rel.Insert(Tuple({ObjectId(cls, id)})).ok());
  }
  return rel;
}

TEST(RelationMemoTest, SortedTuplesIsStableAndInvalidatedByMutation) {
  const ClassId cls(1);
  Relation rel = SmallRelation(cls, {3, 1, 2});
  const std::vector<const Tuple*> first = rel.SortedTuples();
  ASSERT_EQ(first.size(), 3u);
  // Memoized: a second call returns the identical pointer vector.
  EXPECT_EQ(rel.SortedTuples(), first);
  // Sorted ascending.
  EXPECT_TRUE(*first[0] < *first[1]);
  EXPECT_TRUE(*first[1] < *first[2]);

  // Mutation invalidates: the new tuple shows up, still sorted.
  ASSERT_TRUE(rel.Insert(Tuple({ObjectId(cls, 0)})).ok());
  const std::vector<const Tuple*> after = rel.SortedTuples();
  ASSERT_EQ(after.size(), 4u);
  EXPECT_TRUE(*after[0] < *after[1]);
  EXPECT_EQ(after[0]->at(0).index(), 0u);
}

TEST(RelationMemoTest, CopiesDoNotShareTheCachedView) {
  const ClassId cls(1);
  Relation rel = SmallRelation(cls, {2, 1});
  const std::vector<const Tuple*> original_view = rel.SortedTuples();
  Relation copy = rel;  // must not inherit pointers into rel's tuple set
  const std::vector<const Tuple*> copy_view = copy.SortedTuples();
  ASSERT_EQ(copy_view.size(), 2u);
  for (const Tuple* t : copy_view) {
    EXPECT_TRUE(copy.Contains(*t));
    // The copy's view points into the copy, not into the source.
    EXPECT_NE(t, original_view[0]);
    EXPECT_NE(t, original_view[1]);
  }
  // Mutating the source leaves the copy's view untouched.
  ASSERT_TRUE(rel.Insert(Tuple({ObjectId(cls, 9)})).ok());
  EXPECT_EQ(copy.SortedTuples().size(), 2u);
}

TEST(RelationMemoTest, ConcurrentSortedTuplesReadsAreSafe) {
  // Parallel shards call SortedTuples() on shared read-only base relations;
  // the memoization must be race-free (exercised under TSan via the
  // `parallel` label).
  const ClassId cls(1);
  Relation rel = SmallRelation(cls, {5, 3, 8, 1, 9, 2});
  std::vector<std::thread> threads;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&rel, &ok] {
      for (int i = 0; i < 200; ++i) {
        const std::vector<const Tuple*> view = rel.SortedTuples();
        if (view.size() != 6 || !(*view[0] < *view[5])) {
          ok.store(false);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(ok.load());
}

}  // namespace
}  // namespace setrec
