// Theorems 4.14 and 4.23: a sound coloring guarantees order independence
// of all its methods iff it is simple. If-direction: witnesses of simple
// sound colorings are uniformly inflationary/deflationary (Propositions
// 4.10/4.19) and pass randomized order-independence testing. Only-if
// direction: the six counterexample families are order dependent on the
// paper's demonstration instances.

#include <gtest/gtest.h>

#include "algebraic/method_library.h"
#include "algebraic/order_independence.h"
#include "coloring/counterexamples.h"
#include "coloring/inference.h"
#include "coloring/soundness.h"
#include "coloring/witness.h"
#include "core/sequential.h"

namespace setrec {
namespace {

class SimpleWitnessTest : public ::testing::TestWithParam<UseAxiomatization> {
};

TEST_P(SimpleWitnessTest, SimpleSoundColoringsYieldOrderIndependentMethods) {
  const UseAxiomatization ax = GetParam();
  const bool inflationary = ax == UseAxiomatization::kInflationary;
  PairSchema ps = std::move(MakePairSchema()).value();
  InstanceGenerator::Options gen_options;
  gen_options.min_objects_per_class = 0;
  gen_options.max_objects_per_class = 7;
  gen_options.edge_probability = 0.3;

  int tested = 0;
  for (ColorSet c_class : ColorSet::All()) {
    for (ColorSet c_a : ColorSet::All()) {
      for (ColorSet c_b : ColorSet::All()) {
        Coloring k(&ps.schema);
        k.Set(SchemaItem::Class(ps.c), c_class);
        k.Set(SchemaItem::Property(ps.a), c_a);
        k.Set(SchemaItem::Property(ps.b), c_b);
        if (!k.IsSimple() || !IsSoundColoring(k, ax)) continue;
        EXPECT_TRUE(SoundColoringGuaranteesOrderIndependence(k));
        auto witness_or = MakeWitnessMethod(&ps.schema, k, ax);
        if (!witness_or.ok()) continue;  // deflationary corner
        auto witness = std::move(witness_or).value();
        ++tested;

        // Theorem 4.14/4.23 if-direction, empirically: no order-dependence
        // witness on random instances.
        auto dependence = std::move(SearchOrderDependenceWitness(
                                        *witness, ps.schema, 17, 3,
                                        gen_options))
                              .value();
        EXPECT_FALSE(dependence.has_value()) << k.ToString();

        // Propositions 4.10/4.19: uniform behaviour.
        InstanceGenerator gen(&ps.schema, 29);
        for (int i = 0; i < 4; ++i) {
          Instance instance = gen.RandomInstance(gen_options);
          auto receivers =
              gen.RandomReceiverSet(instance, witness->signature(), 1);
          if (receivers.empty()) continue;
          Result<Instance> out = witness->Apply(instance, receivers[0]);
          if (!out.ok()) continue;  // divergence guard hit
          if (inflationary) {
            EXPECT_TRUE(instance.IsSubInstanceOf(*out)) << k.ToString();
          } else {
            EXPECT_TRUE(out->IsSubInstanceOf(instance)) << k.ToString();
          }
        }
      }
    }
  }
  EXPECT_GT(tested, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Axiomatizations, SimpleWitnessTest,
    ::testing::Values(UseAxiomatization::kInflationary,
                      UseAxiomatization::kDeflationary),
    [](const ::testing::TestParamInfo<UseAxiomatization>& param_info) {
      return param_info.param == UseAxiomatization::kInflationary
                 ? "inflationary"
                 : "deflationary";
    });

/// Only-if direction: each of the six counterexample families is order
/// dependent on its demonstration pair (I, T) from the proof of Theorem
/// 4.14.
class CounterexampleTest
    : public ::testing::TestWithParam<CounterexampleCase> {};

TEST_P(CounterexampleTest, DemonstrationSetRefutesOrderIndependence) {
  PairSchema ps = std::move(MakePairSchema()).value();
  const CounterexampleCase which = GetParam();
  const bool node_case = which == CounterexampleCase::kNodeUD ||
                         which == CounterexampleCase::kNodeUCD ||
                         which == CounterexampleCase::kNodeUC;
  SchemaItem item = node_case ? SchemaItem::Class(ps.c)
                              : SchemaItem::Property(ps.a);
  Counterexample ce =
      std::move(MakeCounterexample(&ps.schema, which, item)).value();
  auto outcome = std::move(OrderIndependentOn(*ce.method, ce.instance,
                                              ce.receivers))
                     .value();
  EXPECT_FALSE(outcome.order_independent);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CounterexampleTest,
    ::testing::Values(CounterexampleCase::kNodeUD,
                      CounterexampleCase::kNodeUCD,
                      CounterexampleCase::kNodeUC,
                      CounterexampleCase::kEdgeUD,
                      CounterexampleCase::kEdgeUCD,
                      CounterexampleCase::kEdgeUC),
    [](const ::testing::TestParamInfo<CounterexampleCase>& param_info) {
      switch (param_info.param) {
        case CounterexampleCase::kNodeUD:
          return std::string("node_ud");
        case CounterexampleCase::kNodeUCD:
          return std::string("node_ucd");
        case CounterexampleCase::kNodeUC:
          return std::string("node_uc");
        case CounterexampleCase::kEdgeUD:
          return std::string("edge_ud");
        case CounterexampleCase::kEdgeUCD:
          return std::string("edge_ucd");
        case CounterexampleCase::kEdgeUC:
          return std::string("edge_uc");
      }
      return std::string("unknown");
    });

TEST(CounterexampleTest, RejectsMismatchedItems) {
  PairSchema ps = std::move(MakePairSchema()).value();
  EXPECT_FALSE(MakeCounterexample(&ps.schema, CounterexampleCase::kNodeUD,
                                  SchemaItem::Property(ps.a))
                   .ok());
  EXPECT_FALSE(MakeCounterexample(&ps.schema, CounterexampleCase::kEdgeUC,
                                  SchemaItem::Class(ps.c))
                   .ok());
}

TEST(SyntacticColoringTest, Example415ColoringIsRecovered) {
  // The Example 4.15 method's syntactic coloring matches the paper's
  // minimal coloring: {u} on D, Ba, Be, l, s; {c,d} on f syntactically
  // (replacement could delete), and its *use* part coincides.
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto method = std::move(MakeLikesServesBar(ds)).value();
  Coloring k = SyntacticColoring(*method);
  EXPECT_EQ(k.GetClass(ds.drinker), kU);
  EXPECT_EQ(k.GetClass(ds.bar), kU);
  EXPECT_EQ(k.GetClass(ds.beer), kU);
  EXPECT_EQ(k.GetProperty(ds.likes), kU);
  EXPECT_EQ(k.GetProperty(ds.serves), kU);
  // f: syntactically {u,c,d} — it is both read (the keep-branch) and
  // replaced. The paper's sharper analysis (Example 4.15) shows the method
  // never actually deletes f-edges, so the *minimal* coloring has just {c};
  // the syntactic one is a sound over-approximation.
  EXPECT_TRUE(kC.IsSubsetOf(k.GetProperty(ds.frequents)));

  // The observed behaviour confirms no deletions happen.
  ColoringValidationOptions options;
  options.trials = 12;
  Coloring observed =
      std::move(ObserveCreateDelete(*method, ds.schema, options)).value();
  EXPECT_FALSE(observed.GetProperty(ds.frequents).Has(Color::kDelete));
  EXPECT_TRUE(observed.DeleteSet().empty());
}

TEST(SyntacticColoringTest, FavoriteBarColoringIsNotSimple) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto favorite = std::move(MakeFavoriteBar(ds)).value();
  Coloring k = SyntacticColoring(*favorite);
  // f gets {c,d}: not simple, so Theorem 4.14 does not certify order
  // independence — and indeed favorite_bar is order dependent.
  EXPECT_FALSE(k.IsSimple());
  EXPECT_EQ(k.GetProperty(ds.frequents), kCD);
}

}  // namespace
}  // namespace setrec
