// Unit tests for the core object-database model: schemas, instances,
// partial instances and the G operator, restrictions, receivers and key
// sets — Definitions 2.1-2.6, 4.1-4.5 and Figure 1.

#include <gtest/gtest.h>

#include "core/instance.h"
#include "core/instance_generator.h"
#include "core/item_set.h"
#include "core/partial_instance.h"
#include "core/printer.h"
#include "core/receiver.h"
#include "core/schema.h"

namespace setrec {
namespace {

class UllmanSchemaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    drinker_ = schema_.AddClass("Drinker").value();
    bar_ = schema_.AddClass("Bar").value();
    beer_ = schema_.AddClass("Beer").value();
    frequents_ = schema_.AddProperty("frequents", drinker_, bar_).value();
    likes_ = schema_.AddProperty("likes", drinker_, beer_).value();
    serves_ = schema_.AddProperty("serves", bar_, beer_).value();
  }

  Schema schema_;
  ClassId drinker_ = 0, bar_ = 0, beer_ = 0;
  PropertyId frequents_ = 0, likes_ = 0, serves_ = 0;
};

TEST_F(UllmanSchemaTest, BasicAccessors) {
  EXPECT_EQ(schema_.num_classes(), 3u);
  EXPECT_EQ(schema_.num_properties(), 3u);
  EXPECT_EQ(schema_.class_name(drinker_), "Drinker");
  EXPECT_EQ(schema_.property(serves_).name, "serves");
  EXPECT_EQ(schema_.property(serves_).source, bar_);
  EXPECT_EQ(schema_.property(serves_).target, beer_);
  EXPECT_TRUE(schema_.FindClass("Bar").ok());
  EXPECT_FALSE(schema_.FindClass("Pub").ok());
  EXPECT_TRUE(schema_.FindProperty("likes").ok());
  EXPECT_FALSE(schema_.FindProperty("dislikes").ok());
}

TEST_F(UllmanSchemaTest, RejectsDuplicateAndCollidingNames) {
  EXPECT_EQ(schema_.AddClass("Drinker").status().code(),
            StatusCode::kAlreadyExists);
  // Class and property namespaces are disjoint (Definition 2.1 preamble).
  EXPECT_EQ(schema_.AddClass("likes").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(schema_.AddProperty("Drinker", drinker_, bar_).status().code(),
            StatusCode::kAlreadyExists);
  // Every edge carries a distinct label.
  EXPECT_EQ(schema_.AddProperty("serves", drinker_, bar_).status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(UllmanSchemaTest, IncidentProperties) {
  EXPECT_EQ(schema_.IncidentProperties(drinker_),
            (std::vector<PropertyId>{frequents_, likes_}));
  EXPECT_EQ(schema_.IncidentProperties(bar_),
            (std::vector<PropertyId>{frequents_, serves_}));
  EXPECT_EQ(schema_.IncidentProperties(beer_),
            (std::vector<PropertyId>{likes_, serves_}));
}

TEST_F(UllmanSchemaTest, InstanceTypingIsEnforced) {
  Instance instance(&schema_);
  const ObjectId mary(drinker_, 0);
  const ObjectId cheers(bar_, 0);
  const ObjectId duff(beer_, 0);
  ASSERT_TRUE(instance.AddObject(mary).ok());
  ASSERT_TRUE(instance.AddObject(cheers).ok());
  ASSERT_TRUE(instance.AddObject(duff).ok());

  EXPECT_TRUE(instance.AddEdge(mary, frequents_, cheers).ok());
  // Wrong classes for the property.
  EXPECT_EQ(instance.AddEdge(mary, serves_, duff).code(),
            StatusCode::kInvalidArgument);
  // Endpoint missing: instances are proper graphs (Definition 2.2).
  EXPECT_EQ(instance.AddEdge(mary, likes_, ObjectId(beer_, 7)).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(UllmanSchemaTest, RemoveObjectCascadesToIncidentEdges) {
  Instance instance(&schema_);
  const ObjectId mary(drinker_, 0);
  const ObjectId cheers(bar_, 0);
  const ObjectId duff(beer_, 0);
  ASSERT_TRUE(instance.AddObject(mary).ok());
  ASSERT_TRUE(instance.AddObject(cheers).ok());
  ASSERT_TRUE(instance.AddObject(duff).ok());
  ASSERT_TRUE(instance.AddEdge(mary, frequents_, cheers).ok());
  ASSERT_TRUE(instance.AddEdge(cheers, serves_, duff).ok());

  ASSERT_TRUE(instance.RemoveObject(cheers).ok());
  EXPECT_FALSE(instance.HasObject(cheers));
  EXPECT_EQ(instance.num_edges(), 0u);
  EXPECT_EQ(instance.num_objects(), 2u);
}

TEST_F(UllmanSchemaTest, InstanceEqualityIsStructural) {
  Instance a(&schema_);
  Instance b(&schema_);
  const ObjectId mary(drinker_, 0);
  ASSERT_TRUE(a.AddObject(mary).ok());
  ASSERT_TRUE(b.AddObject(mary).ok());
  EXPECT_EQ(a, b);
  // Adding and removing leaves no structural trace.
  const ObjectId cheers(bar_, 0);
  ASSERT_TRUE(a.AddObject(cheers).ok());
  ASSERT_TRUE(a.AddEdge(mary, frequents_, cheers).ok());
  ASSERT_TRUE(a.RemoveEdge(mary, frequents_, cheers).ok());
  ASSERT_TRUE(a.RemoveObject(cheers).ok());
  EXPECT_EQ(a, b);
}

/// Reconstructs Figure 1 and checks its shape through the printer.
TEST_F(UllmanSchemaTest, FigureOneInstance) {
  Instance instance(&schema_);
  const ObjectId mary(drinker_, 0), john(drinker_, 1);
  const ObjectId cheers(bar_, 0), old_tavern(bar_, 1);
  const ObjectId jupiler(beer_, 0), bud(beer_, 1), duvel(beer_, 2);
  for (ObjectId o : {mary, john}) ASSERT_TRUE(instance.AddObject(o).ok());
  for (ObjectId o : {cheers, old_tavern}) {
    ASSERT_TRUE(instance.AddObject(o).ok());
  }
  for (ObjectId o : {jupiler, bud, duvel}) {
    ASSERT_TRUE(instance.AddObject(o).ok());
  }
  ASSERT_TRUE(instance.AddEdge(mary, likes_, jupiler).ok());
  ASSERT_TRUE(instance.AddEdge(mary, frequents_, cheers).ok());
  ASSERT_TRUE(instance.AddEdge(john, likes_, duvel).ok());
  ASSERT_TRUE(instance.AddEdge(john, frequents_, old_tavern).ok());
  ASSERT_TRUE(instance.AddEdge(cheers, serves_, jupiler).ok());
  ASSERT_TRUE(instance.AddEdge(cheers, serves_, bud).ok());
  ASSERT_TRUE(instance.AddEdge(old_tavern, serves_, bud).ok());
  ASSERT_TRUE(instance.AddEdge(old_tavern, serves_, jupiler).ok());
  ASSERT_TRUE(instance.AddEdge(old_tavern, serves_, duvel).ok());

  EXPECT_EQ(instance.num_objects(), 7u);
  EXPECT_EQ(instance.num_edges(), 9u);
  EXPECT_EQ(instance.Targets(old_tavern, serves_).size(), 3u);
  const std::string rendered = InstanceToString(instance);
  EXPECT_NE(rendered.find("Drinker_0 --frequents--> Bar_0"),
            std::string::npos);
  EXPECT_NE(rendered.find("Bar_1 --serves--> Beer_2"), std::string::npos);
}

TEST_F(UllmanSchemaTest, PartialInstanceUnionDifferenceAndG) {
  Instance instance(&schema_);
  const ObjectId mary(drinker_, 0);
  const ObjectId cheers(bar_, 0);
  ASSERT_TRUE(instance.AddObject(mary).ok());
  ASSERT_TRUE(instance.AddObject(cheers).ok());
  ASSERT_TRUE(instance.AddEdge(mary, frequents_, cheers).ok());

  PartialInstance all = PartialInstance::FromInstance(instance);
  EXPECT_EQ(all.num_items(), 3u);

  // Remove the bar: the frequents edge dangles; G trims it.
  PartialInstance just_bar(&schema_);
  ASSERT_TRUE(just_bar.AddObject(cheers).ok());
  PartialInstance dangling = all.Difference(just_bar);
  EXPECT_EQ(dangling.num_items(), 2u);
  EXPECT_TRUE(dangling.HasEdge(mary, frequents_, cheers));
  Instance trimmed = dangling.G();
  EXPECT_TRUE(trimmed.HasObject(mary));
  EXPECT_FALSE(trimmed.HasObject(cheers));
  EXPECT_EQ(trimmed.num_edges(), 0u);

  // Union restores the instance.
  EXPECT_EQ(dangling.Union(just_bar).G(), instance);
  // Intersection with itself is the identity.
  EXPECT_EQ(all.Intersection(all), all);
}

TEST_F(UllmanSchemaTest, RestrictionDropsUncoloredItems) {
  Instance instance(&schema_);
  const ObjectId mary(drinker_, 0);
  const ObjectId cheers(bar_, 0);
  const ObjectId duff(beer_, 0);
  ASSERT_TRUE(instance.AddObject(mary).ok());
  ASSERT_TRUE(instance.AddObject(cheers).ok());
  ASSERT_TRUE(instance.AddObject(duff).ok());
  ASSERT_TRUE(instance.AddEdge(mary, frequents_, cheers).ok());
  ASSERT_TRUE(instance.AddEdge(cheers, serves_, duff).ok());

  SchemaItemSet items;
  items.InsertClass(drinker_);
  items.InsertClass(bar_);
  items.InsertProperty(frequents_);
  ASSERT_TRUE(items.IsEdgeClosed(schema_));
  PartialInstance restricted = PartialInstance::Restrict(instance, items);
  EXPECT_TRUE(restricted.HasObject(mary));
  EXPECT_TRUE(restricted.HasObject(cheers));
  EXPECT_FALSE(restricted.HasObject(duff));
  EXPECT_TRUE(restricted.HasEdge(mary, frequents_, cheers));
  EXPECT_FALSE(restricted.HasEdge(cheers, serves_, duff));

  // A property set without its endpoints is not edge-closed; closing fixes
  // it (needed for Definition 4.7's conditions on X).
  SchemaItemSet open;
  open.InsertProperty(serves_);
  EXPECT_FALSE(open.IsEdgeClosed(schema_));
  open.CloseUnderIncidentClasses(schema_);
  EXPECT_TRUE(open.IsEdgeClosed(schema_));
  EXPECT_TRUE(open.ContainsClass(bar_));
  EXPECT_TRUE(open.ContainsClass(beer_));
}

TEST_F(UllmanSchemaTest, ReceiverValidation) {
  Instance instance(&schema_);
  const ObjectId mary(drinker_, 0);
  const ObjectId cheers(bar_, 0);
  ASSERT_TRUE(instance.AddObject(mary).ok());
  ASSERT_TRUE(instance.AddObject(cheers).ok());

  MethodSignature signature({drinker_, bar_});
  EXPECT_TRUE(Receiver::Make(signature, {mary, cheers}, instance).ok());
  // Wrong class order.
  EXPECT_FALSE(Receiver::Make(signature, {cheers, mary}, instance).ok());
  // Absent object.
  EXPECT_EQ(
      Receiver::Make(signature, {mary, ObjectId(bar_, 9)}, instance)
          .status()
          .code(),
      StatusCode::kFailedPrecondition);
  // Wrong arity.
  EXPECT_FALSE(Receiver::Make(signature, {mary}, instance).ok());
}

TEST_F(UllmanSchemaTest, KeySetDetection) {
  const ObjectId d0(drinker_, 0), d1(drinker_, 1);
  const ObjectId b0(bar_, 0), b1(bar_, 1);
  std::vector<Receiver> key_set = {Receiver::Unchecked({d0, b0}),
                                   Receiver::Unchecked({d1, b0})};
  EXPECT_TRUE(IsKeySet(key_set));
  std::vector<Receiver> not_key = {Receiver::Unchecked({d0, b0}),
                                   Receiver::Unchecked({d0, b1})};
  EXPECT_FALSE(IsKeySet(not_key));
  // A duplicated receiver does not break the key property (T is a set).
  std::vector<Receiver> dup = {Receiver::Unchecked({d0, b0}),
                               Receiver::Unchecked({d0, b0})};
  EXPECT_TRUE(IsKeySet(dup));
}

TEST_F(UllmanSchemaTest, PrinterRendersReceiversAndObjects) {
  EXPECT_EQ(ObjectName(schema_, ObjectId(bar_, 2)), "Bar_2");
  Receiver r = Receiver::Unchecked({ObjectId(drinker_, 0), ObjectId(bar_, 2)});
  EXPECT_EQ(ReceiverToString(schema_, r), "[Drinker_0, Bar_2]");
  EXPECT_NE(SchemaToString(schema_).find("Drinker --frequents--> Bar"),
            std::string::npos);
}

TEST_F(UllmanSchemaTest, GeneratorIsDeterministicAndTyped) {
  InstanceGenerator::Options options;
  options.min_objects_per_class = 2;
  options.max_objects_per_class = 3;
  options.edge_probability = 0.5;
  InstanceGenerator g1(&schema_, 42), g2(&schema_, 42), g3(&schema_, 43);
  Instance a = g1.RandomInstance(options);
  Instance b = g2.RandomInstance(options);
  Instance c = g3.RandomInstance(options);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  for (ClassId cls : {drinker_, bar_, beer_}) {
    EXPECT_GE(a.objects(cls).size(), 2u);
    EXPECT_LE(a.objects(cls).size(), 3u);
  }

  // AllReceivers is the Cartesian product of class populations.
  MethodSignature signature({drinker_, bar_});
  std::vector<Receiver> all = InstanceGenerator::AllReceivers(a, signature);
  EXPECT_EQ(all.size(),
            a.objects(drinker_).size() * a.objects(bar_).size());

  // Key sets are key sets.
  std::vector<Receiver> keys = g1.RandomKeySet(a, signature, 3);
  EXPECT_TRUE(IsKeySet(keys));
  EXPECT_LE(keys.size(), 3u);
}

}  // namespace
}  // namespace setrec
