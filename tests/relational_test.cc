// Tests for the relational algebra engine: typed relations, the evaluator
// for all eight operators, scheme inference, positivity (Definition 5.2),
// dependencies, and classical algebraic identities as randomized properties.

#include <gtest/gtest.h>

#include "core/instance_generator.h"
#include "relational/builder.h"
#include "relational/dependencies.h"
#include "relational/evaluator.h"
#include "relational/expression.h"
#include "relational/relation.h"

namespace setrec {
namespace {

// Two domains: class 0 ("P") and class 1 ("Q").
constexpr ClassId kP = 0;
constexpr ClassId kQ = 1;

ObjectId P(std::uint32_t i) { return ObjectId(kP, i); }
ObjectId Q(std::uint32_t i) { return ObjectId(kQ, i); }

RelationScheme MakeScheme(std::vector<Attribute> attrs) {
  return std::move(RelationScheme::Make(std::move(attrs))).value();
}

class AlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation r(MakeScheme({{"x", kP}, {"y", kQ}}));
    ASSERT_TRUE(r.Insert(Tuple{P(0), Q(0)}).ok());
    ASSERT_TRUE(r.Insert(Tuple{P(0), Q(1)}).ok());
    ASSERT_TRUE(r.Insert(Tuple{P(1), Q(1)}).ok());
    db_.Put("R", std::move(r));

    Relation s(MakeScheme({{"y2", kQ}, {"z", kP}}));
    ASSERT_TRUE(s.Insert(Tuple{Q(1), P(0)}).ok());
    ASSERT_TRUE(s.Insert(Tuple{Q(2), P(1)}).ok());
    db_.Put("S", std::move(s));

    Relation u(MakeScheme({{"x", kP}, {"y", kQ}}));
    ASSERT_TRUE(u.Insert(Tuple{P(1), Q(1)}).ok());
    ASSERT_TRUE(u.Insert(Tuple{P(2), Q(2)}).ok());
    db_.Put("U", std::move(u));
  }

  Database db_;
};

TEST_F(AlgebraTest, RelationInsertEnforcesTyping) {
  Relation r(MakeScheme({{"x", kP}}));
  EXPECT_TRUE(r.Insert(Tuple{P(5)}).ok());
  EXPECT_EQ(r.Insert(Tuple{Q(5)}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.Insert(Tuple{P(1), P(2)}).code(), StatusCode::kInvalidArgument);
  // Duplicate insertion is a no-op.
  EXPECT_TRUE(r.Insert(Tuple{P(5)}).ok());
  EXPECT_EQ(r.size(), 1u);
}

TEST_F(AlgebraTest, UnionAndDifference) {
  Relation u = std::move(Evaluate(ra::Union(ra::Rel("R"), ra::Rel("U")), db_))
                   .value();
  EXPECT_EQ(u.size(), 4u);
  Relation d = std::move(Evaluate(ra::Diff(ra::Rel("R"), ra::Rel("U")), db_))
                   .value();
  EXPECT_EQ(d.size(), 2u);
  EXPECT_TRUE(d.Contains(Tuple{P(0), Q(0)}));
  EXPECT_TRUE(d.Contains(Tuple{P(0), Q(1)}));
  // Scheme mismatch is an error.
  EXPECT_FALSE(Evaluate(ra::Union(ra::Rel("R"), ra::Rel("S")), db_).ok());
}

TEST_F(AlgebraTest, ProductAndJoins) {
  Relation p = std::move(Evaluate(ra::Product(ra::Rel("R"), ra::Rel("S")),
                                  db_))
                   .value();
  EXPECT_EQ(p.size(), 6u);
  EXPECT_EQ(p.scheme().arity(), 4u);
  // Theta-join on y = y2.
  Relation j = std::move(Evaluate(ra::JoinEq(ra::Rel("R"), ra::Rel("S"), "y",
                                             "y2"),
                                  db_))
                   .value();
  EXPECT_EQ(j.size(), 2u);  // (P0,Q1)&(Q1,P0), (P1,Q1)&(Q1,P0)
  // Product with a name collision is rejected.
  EXPECT_FALSE(Evaluate(ra::Product(ra::Rel("R"), ra::Rel("R")), db_).ok());
  // Renaming resolves it.
  ExprPtr rr = ra::Product(
      ra::Rel("R"), ra::Rename(ra::Rename(ra::Rel("R"), "x", "x2"), "y", "y2"));
  EXPECT_EQ(std::move(Evaluate(rr, db_)).value().size(), 9u);
}

TEST_F(AlgebraTest, SelectionsRespectDomains) {
  // x and z share domain P.
  ExprPtr cross = ra::Product(ra::Rel("R"), ra::Rel("S"));
  Relation eq =
      std::move(Evaluate(ra::SelectEq(cross, "x", "z"), db_)).value();
  EXPECT_EQ(eq.size(), 3u);
  Relation neq =
      std::move(Evaluate(ra::SelectNeq(cross, "x", "z"), db_)).value();
  EXPECT_EQ(neq.size(), 3u);
  // Comparing attributes of different domains is a type error.
  EXPECT_FALSE(Evaluate(ra::SelectEq(cross, "x", "y"), db_).ok());
}

TEST_F(AlgebraTest, ProjectionAndGuards) {
  Relation xs = std::move(Evaluate(ra::Project(ra::Rel("R"), {"x"}), db_))
                    .value();
  EXPECT_EQ(xs.size(), 2u);
  // Reordering projection.
  Relation yx = std::move(Evaluate(ra::Project(ra::Rel("R"), {"y", "x"}), db_))
                    .value();
  EXPECT_EQ(yx.scheme().attribute(0).name, "y");
  // π_∅: the nullary guard, {()} iff non-empty.
  Relation guard = std::move(Evaluate(ra::Guard(ra::Rel("R")), db_)).value();
  EXPECT_EQ(guard.size(), 1u);
  EXPECT_EQ(guard.scheme().arity(), 0u);
  Relation empty_guard =
      std::move(Evaluate(ra::Guard(ra::Diff(ra::Rel("R"), ra::Rel("R"))),
                         db_))
          .value();
  EXPECT_TRUE(empty_guard.empty());
  // Guard as a multiplier conditions a relation.
  Relation conditioned = std::move(Evaluate(
                                       ra::Product(ra::Rel("S"),
                                                   ra::Guard(ra::Rel("R"))),
                                       db_))
                             .value();
  EXPECT_EQ(conditioned.size(), 2u);
}

TEST_F(AlgebraTest, RenameValidation) {
  EXPECT_FALSE(Evaluate(ra::Rename(ra::Rel("R"), "nope", "w"), db_).ok());
  EXPECT_FALSE(Evaluate(ra::Rename(ra::Rel("R"), "x", "y"), db_).ok());
  Relation renamed =
      std::move(Evaluate(ra::Rename(ra::Rel("R"), "x", "w"), db_)).value();
  EXPECT_EQ(renamed.scheme().attribute(0).name, "w");
  EXPECT_EQ(renamed.scheme().attribute(0).domain, kP);
}

TEST_F(AlgebraTest, InferSchemeAgreesWithEvaluation) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation("R", MakeScheme({{"x", kP}, {"y", kQ}}))
                  .ok());
  ASSERT_TRUE(catalog
                  .AddRelation("S", MakeScheme({{"y2", kQ}, {"z", kP}}))
                  .ok());
  ExprPtr e = ra::Project(
      ra::JoinEq(ra::Rel("R"), ra::Rel("S"), "y", "y2"), {"x", "z"});
  RelationScheme inferred = std::move(InferScheme(*e, catalog)).value();
  Relation evaluated = std::move(Evaluate(e, db_)).value();
  EXPECT_EQ(inferred, evaluated.scheme());
  // Unknown relation.
  EXPECT_FALSE(InferScheme(*ra::Rel("nope"), catalog).ok());
}

TEST_F(AlgebraTest, PositivityAndReferencedRelations) {
  ExprPtr pos = ra::Union(
      ra::Project(ra::JoinNeq(ra::Rel("R"), ra::Rel("S"), "x", "z"), {"x"}),
      ra::Project(ra::Rel("R"), {"x"}));
  EXPECT_TRUE(IsPositive(*pos));
  ExprPtr neg = ra::Diff(ra::Project(ra::Rel("R"), {"x"}),
                         ra::Project(ra::Rel("U"), {"x"}));
  EXPECT_FALSE(IsPositive(*neg));
  EXPECT_EQ(ReferencedRelations(*pos), (std::vector<std::string>{"R", "S"}));
}

TEST_F(AlgebraTest, SubstituteRelationSharesUntouchedSubtrees) {
  ExprPtr left = ra::Project(ra::Rel("R"), {"x"});
  ExprPtr right = ra::Project(ra::Rel("U"), {"x"});
  ExprPtr u = ra::Union(left, right);
  ExprPtr substituted =
      SubstituteRelation(u, "U", ra::Rename(ra::Rel("R"), "y", "w"));
  // Left subtree is shared, right replaced.
  EXPECT_EQ(substituted->left().get(), left.get());
  EXPECT_NE(substituted->right().get(), right.get());
  Relation result = std::move(Evaluate(substituted, db_)).value();
  EXPECT_EQ(result.size(), 2u);
  // No-op substitution returns the identical node.
  EXPECT_EQ(SubstituteRelation(u, "Z", left).get(), u.get());
}

TEST_F(AlgebraTest, EvaluatorMemoizesSharedNodes) {
  ExprPtr shared = ra::Product(ra::Rel("R"), ra::Rel("S"));
  ExprPtr twice = ra::Union(ra::Project(shared, {"x"}),
                            ra::Project(shared, {"x"}));
  Relation result = std::move(Evaluate(twice, db_)).value();
  EXPECT_EQ(result.size(), 2u);
}

TEST_F(AlgebraTest, ExprToStringRoundsTheSyntax) {
  ExprPtr e = ra::Project(
      ra::SelectNeq(ra::Product(ra::Rel("R"), ra::Rel("S")), "x", "z"),
      {"x"});
  EXPECT_EQ(ExprToString(*e), "π[x](σ[x≠z]((R × S)))");
}

TEST_F(AlgebraTest, DependencySatisfaction) {
  // R: x -> y fails (P0 maps to Q0 and Q1); U: x -> y holds.
  FunctionalDependency fd_r{"R", {"x"}, "y"};
  FunctionalDependency fd_u{"U", {"x"}, "y"};
  EXPECT_FALSE(std::move(Satisfies(db_, fd_r)).value());
  EXPECT_TRUE(std::move(Satisfies(db_, fd_u)).value());
  // Empty-LHS FD: at most one tuple overall.
  FunctionalDependency singleton{"R", {}, "x"};
  EXPECT_FALSE(std::move(Satisfies(db_, singleton)).value());

  // Full IND: U[x y] ⊆ R fails on (P2,Q2); U ⊆ R∪U holds — test via R.
  InclusionDependency ind{"U", {"x", "y"}, "R"};
  EXPECT_FALSE(std::move(Satisfies(db_, ind)).value());
  InclusionDependency refl{"R", {"x", "y"}, "R"};
  EXPECT_TRUE(std::move(Satisfies(db_, refl)).value());

  // Disjointness over unary relations.
  Relation a(MakeScheme({{"v", kP}}));
  ASSERT_TRUE(a.Insert(Tuple{P(0)}).ok());
  Relation b(MakeScheme({{"w", kP}}));
  ASSERT_TRUE(b.Insert(Tuple{P(1)}).ok());
  Database db2;
  db2.Put("A", std::move(a));
  db2.Put("B", std::move(b));
  EXPECT_TRUE(
      std::move(Satisfies(db2, DisjointnessDependency{"A", "B"})).value());
  Relation b2(MakeScheme({{"w", kP}}));
  ASSERT_TRUE(b2.Insert(Tuple{P(0)}).ok());
  db2.Put("B", std::move(b2));
  EXPECT_FALSE(
      std::move(Satisfies(db2, DisjointnessDependency{"A", "B"})).value());
}

/// Differential test for the evaluator's join fusion: selection chains over
/// a product must agree with the unfused reference (product first, filters
/// applied one at a time), across mixes of cross-side equalities (join
/// keys), same-side conditions (local filters) and cross non-equalities
/// (residual filters).
class JoinFusionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JoinFusionTest, FusedChainMatchesUnfusedReference) {
  SplitMix64 rng(GetParam() * 104729);
  Database db;
  auto random_relation = [&](std::vector<Attribute> attrs) {
    Relation r(MakeScheme(std::move(attrs)));
    const std::size_t n = 2 + rng.UniformInt(8);
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<ObjectId> values;
      for (std::size_t k = 0; k < r.scheme().arity(); ++k) {
        values.push_back(
            ObjectId(r.scheme().attribute(k).domain,
                     static_cast<std::uint32_t>(rng.UniformInt(3))));
      }
      EXPECT_TRUE(r.Insert(Tuple(std::move(values))).ok());
    }
    return r;
  };
  db.Put("L", random_relation({{"a", kP}, {"b", kP}, {"c", kQ}}));
  db.Put("R2", random_relation({{"d", kP}, {"e", kP}, {"f", kQ}}));

  // A random chain of 1-4 selections over L × R2.
  const char* kAttrsP[] = {"a", "b", "d", "e"};
  const char* kAttrsQ[] = {"c", "f"};
  ExprPtr chain = ra::Product(ra::Rel("L"), ra::Rel("R2"));
  std::vector<std::pair<std::string, std::string>> conds;
  std::vector<bool> equals;
  const std::size_t n_conds = 1 + rng.UniformInt(4);
  for (std::size_t i = 0; i < n_conds; ++i) {
    std::string a, b;
    if (rng.UniformInt(4) == 0) {
      a = kAttrsQ[rng.UniformInt(2)];
      b = kAttrsQ[rng.UniformInt(2)];
    } else {
      a = kAttrsP[rng.UniformInt(4)];
      b = kAttrsP[rng.UniformInt(4)];
    }
    const bool eq = rng.UniformInt(2) == 0;
    chain = eq ? ra::SelectEq(chain, a, b) : ra::SelectNeq(chain, a, b);
    conds.emplace_back(a, b);
    equals.push_back(eq);
  }
  Relation fused = std::move(Evaluate(chain, db)).value();

  // Reference: materialize the product, then filter tuple by tuple.
  Relation product =
      std::move(Evaluate(ra::Product(ra::Rel("L"), ra::Rel("R2")), db))
          .value();
  Relation reference(fused.scheme());
  for (const Tuple& t : product) {
    bool keep = true;
    for (std::size_t i = 0; i < conds.size(); ++i) {
      const std::size_t ia =
          std::move(product.scheme().IndexOf(conds[i].first)).value();
      const std::size_t ib =
          std::move(product.scheme().IndexOf(conds[i].second)).value();
      if ((t.at(ia) == t.at(ib)) != equals[i]) {
        keep = false;
        break;
      }
    }
    if (keep) {
      ASSERT_TRUE(reference.Insert(t).ok());
    }
  }
  EXPECT_EQ(fused, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinFusionTest,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST_F(AlgebraTest, GuardShortCircuitKeepsSchemes) {
  // E × π_∅(∅): empty guard; the result must still carry E's scheme even
  // though the data path is skipped.
  ExprPtr empty_guard = ra::Guard(ra::Diff(ra::Rel("R"), ra::Rel("R")));
  Relation left_guarded =
      std::move(Evaluate(ra::Product(empty_guard, ra::Rel("S")), db_))
          .value();
  EXPECT_TRUE(left_guarded.empty());
  EXPECT_EQ(left_guarded.scheme().attribute(0).name, "y2");
  Relation right_guarded =
      std::move(Evaluate(ra::Product(ra::Rel("S"), empty_guard), db_))
          .value();
  EXPECT_TRUE(right_guarded.empty());
  EXPECT_EQ(right_guarded.scheme().attribute(0).name, "y2");
  // Non-empty guard: identical to the plain relation.
  Relation passed =
      std::move(Evaluate(ra::Product(ra::Rel("S"), ra::Guard(ra::Rel("R"))),
                         db_))
          .value();
  EXPECT_EQ(passed.size(), 2u);
}

/// Randomized algebraic identities: distributivity of selection over union,
/// projection-pushing through union, and De Morgan-ish difference laws.
class AlgebraPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlgebraPropertyTest, ClassicalIdentitiesHold) {
  SplitMix64 rng(GetParam());
  Database db;
  auto random_relation = [&]() {
    Relation r(MakeScheme({{"x", kP}, {"y", kP}}));
    const std::size_t n = 1 + rng.UniformInt(6);
    for (std::size_t i = 0; i < n; ++i) {
      Status s = r.Insert(Tuple{P(static_cast<std::uint32_t>(rng.UniformInt(3))),
                                P(static_cast<std::uint32_t>(rng.UniformInt(3)))});
      EXPECT_TRUE(s.ok());
    }
    return r;
  };
  db.Put("A", random_relation());
  db.Put("B", random_relation());

  auto eval = [&](const ExprPtr& e) {
    return std::move(Evaluate(e, db)).value();
  };
  ExprPtr a = ra::Rel("A"), b = ra::Rel("B");
  // σ(A ∪ B) = σ(A) ∪ σ(B).
  EXPECT_EQ(eval(ra::SelectEq(ra::Union(a, b), "x", "y")),
            eval(ra::Union(ra::SelectEq(a, "x", "y"),
                           ra::SelectEq(b, "x", "y"))));
  // σ(A − B) = σ(A) − σ(B).
  EXPECT_EQ(eval(ra::SelectNeq(ra::Diff(a, b), "x", "y")),
            eval(ra::Diff(ra::SelectNeq(a, "x", "y"),
                          ra::SelectNeq(b, "x", "y"))));
  // π(A ∪ B) = π(A) ∪ π(B).
  EXPECT_EQ(eval(ra::Project(ra::Union(a, b), {"x"})),
            eval(ra::Union(ra::Project(a, {"x"}), ra::Project(b, {"x"}))));
  // A − (A − B) = A ∩ B = join-free intersection via double difference.
  EXPECT_EQ(eval(ra::Diff(a, ra::Diff(a, b))), eval(ra::Diff(b, ra::Diff(b, a))));
  // Union is commutative and idempotent.
  EXPECT_EQ(eval(ra::Union(a, b)), eval(ra::Union(b, a)));
  EXPECT_EQ(eval(ra::Union(a, a)), eval(a));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace setrec
