// Tests for the soundness criteria (Propositions 4.13 and 4.22), the
// witness constructions behind their if-directions, the duality of the two
// axiomatizations of "use" (Example 4.17), and Example 4.21's coloring that
// separates them.

#include <gtest/gtest.h>

#include "algebraic/method_library.h"
#include "coloring/inference.h"
#include "coloring/soundness.h"
#include "coloring/witness.h"

namespace setrec {
namespace {

class SoundnessFixture : public ::testing::Test {
 protected:
  void SetUp() override { ds_ = std::move(MakeDrinkersSchema()).value(); }

  Coloring Base() {
    Coloring k(&ds_.schema);
    k.Set(SchemaItem::Class(ds_.drinker), kU);
    return k;
  }

  DrinkersSchema ds_;
};

TEST_F(SoundnessFixture, InflationaryCriterionConditions) {
  // Condition 4: some node must be u.
  Coloring empty(&ds_.schema);
  EXPECT_FALSE(IsSoundColoring(empty, UseAxiomatization::kInflationary));

  // Condition 1 (nodes): d without u.
  Coloring k1 = Base();
  k1.Set(SchemaItem::Class(ds_.bar), kD);
  EXPECT_FALSE(IsSoundColoring(k1, UseAxiomatization::kInflationary));
  k1.Set(SchemaItem::Class(ds_.bar), kUD);
  // Now condition 3 kicks in: Bar is d; incident edges frequents/serves are
  // neither d nor u, so the other endpoints (Drinker, Beer) must be u.
  EXPECT_FALSE(IsSoundColoring(k1, UseAxiomatization::kInflationary));
  k1.Set(SchemaItem::Class(ds_.beer), kU);
  EXPECT_TRUE(IsSoundColoring(k1, UseAxiomatization::kInflationary));

  // Condition 1 (edges): d-edge needs u or a d-endpoint.
  Coloring k2 = Base();
  k2.Set(SchemaItem::Property(ds_.frequents), kD);
  EXPECT_FALSE(IsSoundColoring(k2, UseAxiomatization::kInflationary));
  k2.Set(SchemaItem::Property(ds_.frequents), kUD);
  // Condition 5 now: u-edge needs u-endpoints (Bar is not u).
  EXPECT_FALSE(IsSoundColoring(k2, UseAxiomatization::kInflationary));
  k2.Set(SchemaItem::Class(ds_.bar), kU);
  EXPECT_TRUE(IsSoundColoring(k2, UseAxiomatization::kInflationary));

  // Condition 2: c-edge needs endpoints u or c.
  Coloring k3 = Base();
  k3.Set(SchemaItem::Property(ds_.serves), kC);
  EXPECT_FALSE(IsSoundColoring(k3, UseAxiomatization::kInflationary));
  k3.Set(SchemaItem::Class(ds_.bar), kC);
  k3.Set(SchemaItem::Class(ds_.beer), kU);
  EXPECT_TRUE(IsSoundColoring(k3, UseAxiomatization::kInflationary));
}

TEST_F(SoundnessFixture, DeflationaryCriterionConditions) {
  // Dual condition 1: c-node needs u.
  Coloring k1 = Base();
  k1.Set(SchemaItem::Class(ds_.bar), kC);
  EXPECT_FALSE(IsSoundColoring(k1, UseAxiomatization::kDeflationary));
  k1.Set(SchemaItem::Class(ds_.bar), kUC);
  EXPECT_TRUE(IsSoundColoring(k1, UseAxiomatization::kDeflationary));

  // Under the deflationary axiomatization a bare d-node with quiet edges
  // needs its neighbours u (condition 2)...
  Coloring k2 = Base();
  k2.Set(SchemaItem::Class(ds_.bar), kD);
  EXPECT_FALSE(IsSoundColoring(k2, UseAxiomatization::kDeflationary));
  // ...but marking the incident edges c or u discharges it.
  k2.Set(SchemaItem::Property(ds_.frequents), kUC);
  k2.Set(SchemaItem::Property(ds_.serves), kUC);
  // u-edges force u-endpoints (condition 4).
  k2.Set(SchemaItem::Class(ds_.bar), kUD);
  k2.Set(SchemaItem::Class(ds_.beer), kU);
  EXPECT_TRUE(IsSoundColoring(k2, UseAxiomatization::kDeflationary));

  // Lemma 4.11 vs Lemma 4.20 duality: node {d} alone is unsound
  // inflationary but fine deflationary (given condition 2 holds); node {c}
  // alone is the mirror image.
  Coloring node_d = Base();
  node_d.Set(SchemaItem::Class(ds_.beer), kD);
  node_d.Set(SchemaItem::Property(ds_.likes), kUC);
  node_d.Set(SchemaItem::Property(ds_.serves), kUC);
  node_d.Set(SchemaItem::Class(ds_.bar), kU);
  node_d.Set(SchemaItem::Class(ds_.beer), kUD);
  // (beer u needed for the u-edges)
  node_d.Set(SchemaItem::Class(ds_.beer), kUD);
  EXPECT_TRUE(IsSoundColoring(node_d, UseAxiomatization::kDeflationary));

  Coloring node_c = Base();
  node_c.Set(SchemaItem::Class(ds_.beer), kC);
  EXPECT_TRUE(IsSoundColoring(node_c, UseAxiomatization::kInflationary));
  EXPECT_FALSE(IsSoundColoring(node_c, UseAxiomatization::kDeflationary));
}

TEST_F(SoundnessFixture, Example421SeparatesTheCriteria) {
  // Schema A --e--> B; κ(A) = {u,c}, κ(e) = {c}, κ(B) = ∅: unsound under
  // the inflationary criterion (condition 2), sound under the deflationary
  // one.
  Schema schema;
  ClassId a = std::move(schema.AddClass("A")).value();
  ClassId b = std::move(schema.AddClass("B")).value();
  PropertyId e = std::move(schema.AddProperty("e", a, b)).value();
  Coloring k(&schema);
  k.Set(SchemaItem::Class(a), kUC);
  k.Set(SchemaItem::Property(e), kC);
  EXPECT_FALSE(IsSoundColoring(k, UseAxiomatization::kInflationary));
  EXPECT_TRUE(IsSoundColoring(k, UseAxiomatization::kDeflationary));

  // The deflationary witness realizes it: when the designated A-object is
  // absent it is added together with e-edges to all present B-objects.
  auto witness = std::move(MakeWitnessMethod(
                               &schema, k, UseAxiomatization::kDeflationary))
                     .value();
  Instance instance(&schema);
  const ObjectId receiver_obj(a, 5);
  const ObjectId b0(b, 0), b1(b, 1);
  ASSERT_TRUE(instance.AddObject(receiver_obj).ok());
  ASSERT_TRUE(instance.AddObject(b0).ok());
  ASSERT_TRUE(instance.AddObject(b1).ok());
  Receiver t = Receiver::Unchecked({receiver_obj});
  Instance out = std::move(witness->Apply(instance, t)).value();
  const ObjectId created(a, 0);  // o_c^A
  EXPECT_TRUE(out.HasObject(created));
  EXPECT_TRUE(out.HasEdge(created, e, b0));
  EXPECT_TRUE(out.HasEdge(created, e, b1));
  // Idempotent once present (the presence test is the "use" of A).
  Instance again = std::move(witness->Apply(out, t)).value();
  EXPECT_EQ(again, out);
}

TEST_F(SoundnessFixture, Example417DualityOfUse) {
  // Method 1: delete all beers. Inflationary use must include Beer;
  // deflationary use need not.
  auto delete_beers = MakeMethod(
      MethodSignature({ds_.drinker}), "delete_beers",
      [this](const Instance& in, const Receiver&) -> Result<Instance> {
        Instance next = in;
        std::vector<ObjectId> beers(in.objects(ds_.beer).begin(),
                                    in.objects(ds_.beer).end());
        for (ObjectId o : beers) SETREC_RETURN_IF_ERROR(next.RemoveObject(o));
        return next;
      });
  SchemaItemSet without_beer;
  without_beer.InsertClass(ds_.drinker);
  ColoringValidationOptions options;
  options.trials = 10;
  EXPECT_FALSE(std::move(ValidateUseSet(*delete_beers, ds_.schema,
                                        without_beer,
                                        UseAxiomatization::kInflationary,
                                        options))
                   .value());
  EXPECT_TRUE(std::move(ValidateUseSet(*delete_beers, ds_.schema,
                                       without_beer,
                                       UseAxiomatization::kDeflationary,
                                       options))
                  .value());

  // Method 2: add a fixed beer. The mirror image.
  auto add_beer = MakeMethod(
      MethodSignature({ds_.drinker}), "add_fixed_beer",
      [this](const Instance& in, const Receiver&) -> Result<Instance> {
        Instance next = in;
        SETREC_RETURN_IF_ERROR(next.AddObject(ObjectId(ds_.beer, 0)));
        return next;
      });
  EXPECT_TRUE(std::move(ValidateUseSet(*add_beer, ds_.schema, without_beer,
                                       UseAxiomatization::kInflationary,
                                       options))
                  .value());
  EXPECT_FALSE(std::move(ValidateUseSet(*add_beer, ds_.schema, without_beer,
                                        UseAxiomatization::kDeflationary,
                                        options))
                   .value());
}

TEST_F(SoundnessFixture, WitnessRequiresSoundColoring) {
  Coloring unsound(&ds_.schema);  // nothing colored u
  EXPECT_EQ(MakeWitnessMethod(&ds_.schema, unsound,
                              UseAxiomatization::kInflationary)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SoundnessFixture, WitnessDivergesWithoutDesignatedUItem) {
  // κ = {u} on Drinker and Bar only: the generic pass guards on o_u.
  Coloring k(&ds_.schema);
  k.Set(SchemaItem::Class(ds_.drinker), kU);
  k.Set(SchemaItem::Class(ds_.bar), kU);
  auto witness = std::move(MakeWitnessMethod(
                               &ds_.schema, k,
                               UseAxiomatization::kInflationary))
                     .value();
  Instance instance(&ds_.schema);
  const ObjectId d(ds_.drinker, 2);  // o_u^Drinker — present
  ASSERT_TRUE(instance.AddObject(d).ok());
  Receiver t = Receiver::Unchecked({d});
  // Bar's designated u-object ObjectId(bar, 2) is absent: diverges.
  EXPECT_EQ(witness->Apply(instance, t).status().code(),
            StatusCode::kDiverges);
  ASSERT_TRUE(instance.AddObject(ObjectId(ds_.bar, 2)).ok());
  Instance out = std::move(witness->Apply(instance, t)).value();
  EXPECT_EQ(out, instance);  // pure-u colorings change nothing
}

/// Exhaustive sweep over all 512 colorings of the one-class/two-property
/// schema: whenever the criterion declares a coloring sound, the witness
/// construction must produce a method consistent with it (observed
/// creations/deletions covered, signature u, use-set axiom satisfied on
/// samples).
class WitnessSweepTest
    : public ::testing::TestWithParam<UseAxiomatization> {};

TEST_P(WitnessSweepTest, EverySoundColoringHasAConsistentWitness) {
  const UseAxiomatization ax = GetParam();
  PairSchema ps = std::move(MakePairSchema()).value();
  ColoringValidationOptions options;
  options.trials = 5;
  options.generator.min_objects_per_class = 0;
  options.generator.max_objects_per_class = 8;
  options.generator.edge_probability = 0.3;
  options.max_receivers_per_instance = 2;

  int sound_count = 0, built = 0;
  for (ColorSet c_class : ColorSet::All()) {
    for (ColorSet c_a : ColorSet::All()) {
      for (ColorSet c_b : ColorSet::All()) {
        Coloring k(&ps.schema);
        k.Set(SchemaItem::Class(ps.c), c_class);
        k.Set(SchemaItem::Property(ps.a), c_a);
        k.Set(SchemaItem::Property(ps.b), c_b);
        if (!IsSoundColoring(k, ax)) continue;
        ++sound_count;
        auto witness_or = MakeWitnessMethod(&ps.schema, k, ax);
        if (!witness_or.ok() &&
            witness_or.status().code() == StatusCode::kUnimplemented) {
          continue;  // the documented deflationary corner
        }
        ASSERT_TRUE(witness_or.ok()) << k.ToString();
        ++built;
        auto validation =
            std::move(ValidateColoringClaim(*std::move(witness_or).value(),
                                            ps.schema, k, ax, options))
                .value();
        EXPECT_TRUE(validation.consistent)
            << k.ToString() << " axiomatization "
            << UniformBehaviourOfSimpleColorings(ax) << ":\n  "
            << (validation.issues.empty() ? "" : validation.issues[0]);
      }
    }
  }
  EXPECT_GT(sound_count, 0);
  EXPECT_GT(built, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Axiomatizations, WitnessSweepTest,
    ::testing::Values(UseAxiomatization::kInflationary,
                      UseAxiomatization::kDeflationary),
    [](const ::testing::TestParamInfo<UseAxiomatization>& param_info) {
      return param_info.param == UseAxiomatization::kInflationary
                 ? "inflationary"
                 : "deflationary";
    });

/// Theorem 4.8's lattice argument needs the "full" coloring to satisfy the
/// conditions for every method: any witness must also validate against the
/// all-colors coloring (a coloring of the method, though far from minimal).
TEST_F(SoundnessFixture, FullColoringIsAColoringOfEveryWitness) {
  PairSchema ps = std::move(MakePairSchema()).value();
  Coloring k(&ps.schema);
  k.Set(SchemaItem::Class(ps.c), kUD);
  k.Set(SchemaItem::Property(ps.a), kUD);
  k.Set(SchemaItem::Property(ps.b), kUC);
  ASSERT_TRUE(IsSoundColoring(k, UseAxiomatization::kInflationary));
  auto witness = std::move(MakeWitnessMethod(
                               &ps.schema, k,
                               UseAxiomatization::kInflationary))
                     .value();
  ColoringValidationOptions options;
  options.trials = 8;
  options.generator.max_objects_per_class = 6;
  auto full_claim =
      std::move(ValidateColoringClaim(*witness, ps.schema,
                                      Coloring::Full(&ps.schema),
                                      UseAxiomatization::kInflationary,
                                      options))
          .value();
  EXPECT_TRUE(full_claim.consistent)
      << (full_claim.issues.empty() ? "" : full_claim.issues[0]);
}

/// The same witness validation over the three-class drinkers schema, where
/// edges connect *different* classes (the PairSchema sweep only exercises
/// self-loops): 8^6 colorings is too many to enumerate, so a seeded random
/// sample is validated instead.
class WitnessDrinkersSweepTest
    : public ::testing::TestWithParam<UseAxiomatization> {};

TEST_P(WitnessDrinkersSweepTest, SampledSoundColoringsHaveWitnesses) {
  const UseAxiomatization ax = GetParam();
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  SplitMix64 rng(ax == UseAxiomatization::kInflationary ? 101 : 202);
  ColoringValidationOptions options;
  options.trials = 4;
  options.generator.min_objects_per_class = 0;
  options.generator.max_objects_per_class = 8;
  options.generator.edge_probability = 0.3;
  options.max_receivers_per_instance = 2;

  const std::vector<ColorSet> all = ColorSet::All();
  int validated = 0;
  for (int sample = 0; sample < 300; ++sample) {
    Coloring k(&ds.schema);
    for (SchemaItem item : ds.schema.AllItems()) {
      k.Set(item, all[rng.UniformInt(all.size())]);
    }
    if (!IsSoundColoring(k, ax)) continue;
    auto witness_or = MakeWitnessMethod(&ds.schema, k, ax);
    if (!witness_or.ok() &&
        witness_or.status().code() == StatusCode::kUnimplemented) {
      continue;
    }
    ASSERT_TRUE(witness_or.ok()) << k.ToString();
    auto validation =
        std::move(ValidateColoringClaim(*std::move(witness_or).value(),
                                        ds.schema, k, ax, options))
            .value();
    EXPECT_TRUE(validation.consistent)
        << k.ToString() << ":\n  "
        << (validation.issues.empty() ? "" : validation.issues[0]);
    ++validated;
  }
  EXPECT_GT(validated, 10);
}

INSTANTIATE_TEST_SUITE_P(
    Axiomatizations, WitnessDrinkersSweepTest,
    ::testing::Values(UseAxiomatization::kInflationary,
                      UseAxiomatization::kDeflationary),
    [](const ::testing::TestParamInfo<UseAxiomatization>& param_info) {
      return param_info.param == UseAxiomatization::kInflationary
                 ? "inflationary"
                 : "deflationary";
    });

}  // namespace
}  // namespace setrec
