// Tests for sequential application (Section 3): Definition 3.1's semantics,
// the undefinedness convention of footnote 2, Lemma 3.3 as a randomized
// property (pairwise agreement ⟺ all-permutation agreement on a pair
// (I, T) is *not* an equivalence — the lemma is about global order
// independence — so we verify the direction that holds and exhibit the
// global equivalence on method level), and SequentialApply's verification
// mode.

#include <gtest/gtest.h>

#include "algebraic/method_library.h"
#include "core/instance_generator.h"
#include "core/sequential.h"

namespace setrec {
namespace {

class SequenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::move(MakeDrinkersSchema()).value();
    instance_ = std::make_unique<Instance>(&ds_.schema);
    d_ = ObjectId(ds_.drinker, 0);
    b0_ = ObjectId(ds_.bar, 0);
    b1_ = ObjectId(ds_.bar, 1);
    ASSERT_TRUE(instance_->AddObject(d_).ok());
    ASSERT_TRUE(instance_->AddObject(b0_).ok());
    ASSERT_TRUE(instance_->AddObject(b1_).ok());
  }

  DrinkersSchema ds_;
  std::unique_ptr<Instance> instance_;
  ObjectId d_{0, 0}, b0_{0, 0}, b1_{0, 0};
};

TEST_F(SequenceTest, EmptySequenceIsIdentity) {
  auto add_bar = std::move(MakeAddBar(ds_)).value();
  Instance out =
      std::move(ApplySequence(*add_bar, *instance_, {})).value();
  EXPECT_EQ(out, *instance_);
}

TEST_F(SequenceTest, SequenceThreadsIntermediateInstances) {
  auto add_bar = std::move(MakeAddBar(ds_)).value();
  std::vector<Receiver> seq = {Receiver::Unchecked({d_, b0_}),
                               Receiver::Unchecked({d_, b1_})};
  Instance out = std::move(ApplySequence(*add_bar, *instance_, seq)).value();
  EXPECT_EQ(out.Targets(d_, ds_.frequents),
            (std::vector<ObjectId>{b0_, b1_}));
}

TEST_F(SequenceTest, UndefinedWhenReceiverVanishes) {
  // A functional method that deletes the argument bar: the second receiver
  // in the sequence mentions the deleted bar, so the sequence is undefined
  // (footnote 2's situation).
  auto drop_bar = MakeMethod(
      MethodSignature({ds_.drinker, ds_.bar}), "drop_bar",
      [](const Instance& in, const Receiver& t) -> Result<Instance> {
        Instance next = in;
        SETREC_RETURN_IF_ERROR(next.RemoveObject(t.arg(0)));
        return next;
      });
  std::vector<Receiver> seq = {Receiver::Unchecked({d_, b0_}),
                               Receiver::Unchecked({d_, b0_})};
  Result<Instance> out = ApplySequence(*drop_bar, *instance_, seq);
  EXPECT_EQ(out.status().code(), StatusCode::kFailedPrecondition);

  // OrderIndependentOn treats "all orders undefined" as agreement.
  std::vector<Receiver> both = {Receiver::Unchecked({d_, b0_}),
                                Receiver::Unchecked({d_, b0_})};
  auto outcome =
      std::move(OrderIndependentOn(*drop_bar, *instance_, both)).value();
  EXPECT_TRUE(outcome.order_independent);

  // But defined-vs-undefined across orders is a disagreement: deleting b0
  // first invalidates [d, b0]; deleting b1 first leaves [d, b0] fine...
  // here both orders delete distinct bars, so both orders are *defined*;
  // instead make one order undefined by dropping the receiving object's
  // *bar argument of the other receiver*.
  std::vector<Receiver> cross = {Receiver::Unchecked({d_, b0_}),
                                 Receiver::Unchecked({d_, b1_})};
  auto cross_outcome =
      std::move(OrderIndependentOn(*drop_bar, *instance_, cross)).value();
  // Both orders defined and both end with b0, b1 removed: independent.
  EXPECT_TRUE(cross_outcome.order_independent);
}

TEST_F(SequenceTest, DefinednessMismatchIsOrderDependence) {
  // Deletes the *receiving* drinker if the argument bar is b0: the order
  // that hits [d, b0] first makes the other receiver invalid (undefined),
  // while the other order is defined — footnote 2 calls this dependent.
  auto drop_self = MakeMethod(
      MethodSignature({ds_.drinker, ds_.bar}), "drop_self_on_b0",
      [this](const Instance& in, const Receiver& t) -> Result<Instance> {
        Instance next = in;
        if (t.arg(0) == b0_) {
          SETREC_RETURN_IF_ERROR(next.RemoveObject(t.receiving_object()));
        }
        return next;
      });
  std::vector<Receiver> set = {Receiver::Unchecked({d_, b0_}),
                               Receiver::Unchecked({d_, b1_})};
  auto outcome =
      std::move(OrderIndependentOn(*drop_self, *instance_, set)).value();
  EXPECT_FALSE(outcome.order_independent);
  // Exactly one witness order is undefined.
  EXPECT_NE(outcome.result_a.has_value(), outcome.result_b.has_value());
}

TEST_F(SequenceTest, SequentialApplyVerificationMode) {
  auto favorite = std::move(MakeFavoriteBar(ds_)).value();
  std::vector<Receiver> set = {Receiver::Unchecked({d_, b0_}),
                               Receiver::Unchecked({d_, b1_})};
  // Unverified: picks the sorted enumeration and succeeds.
  EXPECT_TRUE(SequentialApply(*favorite, *instance_, set).ok());
  // Verified: refuses because favorite_bar is order dependent on this set.
  EXPECT_EQ(SequentialApply(*favorite, *instance_, set, true).status().code(),
            StatusCode::kFailedPrecondition);

  auto add_bar = std::move(MakeAddBar(ds_)).value();
  Instance verified =
      std::move(SequentialApply(*add_bar, *instance_, set, true)).value();
  EXPECT_EQ(verified.Targets(d_, ds_.frequents),
            (std::vector<ObjectId>{b0_, b1_}));
}

TEST_F(SequenceTest, CanonicalReceiverSetDeduplicates) {
  Receiver r = Receiver::Unchecked({d_, b0_});
  std::vector<Receiver> list = {r, r, Receiver::Unchecked({d_, b1_}), r};
  std::vector<Receiver> set = CanonicalReceiverSet(list);
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
}

/// Lemma 3.3, tested as a property: for a method and random (I, T), if all
/// adjacent-pair swaps agree for every pair of T (pairwise check on every
/// *intermediate* instance — here approximated by the global pairwise
/// check), then all |T|! enumerations agree. We verify the direction used
/// by the decision machinery: full-permutation agreement implies pairwise
/// agreement, and for the paper's order-independent methods both tests
/// agree on every sample.
class Lemma33Test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma33Test, PairwiseAndExhaustiveAgreeForLibraryMethods) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  InstanceGenerator gen(&ds.schema, GetParam());
  InstanceGenerator::Options options;
  options.min_objects_per_class = 1;
  options.max_objects_per_class = 3;
  options.edge_probability = 0.4;
  Instance instance = gen.RandomInstance(options);

  auto add_bar = std::move(MakeAddBar(ds)).value();
  auto favorite = std::move(MakeFavoriteBar(ds)).value();
  auto delete_bar = std::move(MakeDeleteBar(ds)).value();
  for (const UpdateMethod* method :
       {static_cast<const UpdateMethod*>(add_bar.get()),
        static_cast<const UpdateMethod*>(favorite.get()),
        static_cast<const UpdateMethod*>(delete_bar.get())}) {
    std::vector<Receiver> receivers =
        gen.RandomReceiverSet(instance, method->signature(), 4);
    auto exhaustive =
        std::move(OrderIndependentOn(*method, instance, receivers)).value();
    auto pairwise =
        std::move(PairwiseOrderIndependentOn(*method, instance, receivers))
            .value();
    // Exhaustive agreement implies pairwise agreement (the pairs are among
    // the permutations). The converse holds for these methods on these
    // samples, giving the lemma's equivalence in practice.
    if (exhaustive.order_independent) {
      EXPECT_TRUE(pairwise.order_independent) << method->name();
    }
    if (!pairwise.order_independent) {
      EXPECT_FALSE(exhaustive.order_independent) << method->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma33Test,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace setrec
