// Tests for parallel application (Section 6): the par(E) rewriting
// (Definition 6.1), M_par (Definition 6.2), the singleton coincidence
// (Proposition 6.3), the transitive-closure separation (Example 6.4), the
// key-set coincidence theorem (Theorem 6.5) as a randomized property, and
// the parity gadget (footnote 8).

#include <gtest/gtest.h>

#include <algorithm>

#include "algebraic/method_library.h"
#include "algebraic/parallel.h"
#include "relational/builder.h"
#include "relational/evaluator.h"
#include "core/instance_generator.h"
#include "core/sequential.h"

namespace setrec {
namespace {

TEST(ParTransformTest, RewritesLeavesAndOperators) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto add_bar = std::move(MakeAddBar(ds)).value();
  const MethodContext& ctx = add_bar->context();
  ExprPtr par = std::move(ParTransform(add_bar->statements()[0].expression,
                                       ctx))
                    .value();
  // The rewritten expression references rec instead of self/arg1 and keeps
  // self in its result scheme.
  std::vector<std::string> rels = ReferencedRelations(*par);
  EXPECT_TRUE(std::find(rels.begin(), rels.end(), "rec") != rels.end());
  EXPECT_TRUE(std::find(rels.begin(), rels.end(), "self") == rels.end());
  EXPECT_TRUE(std::find(rels.begin(), rels.end(), "arg1") == rels.end());

  Catalog par_catalog = std::move(ParCatalog(ctx)).value();
  RelationScheme scheme = std::move(InferScheme(*par, par_catalog)).value();
  ASSERT_EQ(scheme.arity(), 2u);
  EXPECT_EQ(scheme.attribute(0).name, "self");
  EXPECT_EQ(scheme.attribute(0).domain, ds.drinker);
  EXPECT_EQ(scheme.attribute(1).domain, ds.bar);

  // Renaming the reserved attribute self is rejected.
  ExprPtr bad = ra::Rename(Expr::Relation("self"), "self", "elsewhere");
  EXPECT_EQ(ParTransform(bad, ctx).status().code(),
            StatusCode::kInvalidArgument);
}

/// Proposition 6.3: M_par(I, {t}) = M(I, t), as a randomized property over
/// the library methods.
class SingletonCoincidenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SingletonCoincidenceTest, ParallelOnSingletonEqualsDirect) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  InstanceGenerator gen(&ds.schema, GetParam());
  InstanceGenerator::Options options;
  options.min_objects_per_class = 1;
  options.max_objects_per_class = 4;
  options.edge_probability = 0.4;
  Instance instance = gen.RandomInstance(options);

  std::vector<std::unique_ptr<AlgebraicUpdateMethod>> methods;
  methods.push_back(std::move(MakeAddBar(ds)).value());
  methods.push_back(std::move(MakeFavoriteBar(ds)).value());
  methods.push_back(std::move(MakeDeleteBar(ds)).value());
  methods.push_back(std::move(MakeLikesServesBar(ds)).value());
  for (const auto& method : methods) {
    std::vector<Receiver> one =
        gen.RandomReceiverSet(instance, method->signature(), 1);
    if (one.empty()) continue;
    Instance direct = std::move(method->Apply(instance, one[0])).value();
    Instance parallel =
        std::move(ParallelApply(*method, instance, one)).value();
    EXPECT_EQ(direct, parallel) << method->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingletonCoincidenceTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Example64Test, SequentialComputesTransitiveClosureParallelDoesNot) {
  TcSchema tc = std::move(MakeTcSchema()).value();
  auto method = std::move(MakeTransitiveClosureMethod(tc)).value();

  // A 4-path 0 → 1 → 2 → 3 in e, no tc edges.
  Instance instance(&tc.schema);
  constexpr std::uint32_t kN = 4;
  for (std::uint32_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(instance.AddObject(ObjectId(tc.c, i)).ok());
  }
  for (std::uint32_t i = 0; i + 1 < kN; ++i) {
    ASSERT_TRUE(
        instance.AddEdge(ObjectId(tc.c, i), tc.e, ObjectId(tc.c, i + 1)).ok());
  }
  std::vector<Receiver> all = InstanceGenerator::AllReceivers(
      instance, MethodSignature({tc.c, tc.c}));
  ASSERT_EQ(all.size(), kN * kN);

  // Parallel: every e-edge is duplicated as a tc-edge, nothing more.
  Instance parallel =
      std::move(ParallelApply(*method, instance, all)).value();
  EXPECT_EQ(parallel.edges(tc.tc).size(), kN - 1);
  for (const auto& [src, dst] : instance.edges(tc.e)) {
    EXPECT_TRUE(parallel.HasEdge(src, tc.tc, dst));
  }

  // Sequential: iterating the applications computes the transitive closure
  // (one pass over C × C receivers repeated until fixpoint; on a path,
  // n passes certainly suffice).
  Instance sequential = instance;
  for (std::uint32_t round = 0; round < kN; ++round) {
    sequential =
        std::move(ApplySequence(*method, sequential, all)).value();
  }
  std::size_t expected_tc = 0;
  for (std::uint32_t i = 0; i < kN; ++i) {
    for (std::uint32_t j = i + 1; j < kN; ++j) {
      EXPECT_TRUE(
          sequential.HasEdge(ObjectId(tc.c, i), tc.tc, ObjectId(tc.c, j)))
          << i << "→" << j;
      ++expected_tc;
    }
  }
  EXPECT_EQ(sequential.edges(tc.tc).size(), expected_tc);
}

/// Theorem 6.5: on key sets, sequential and parallel application coincide
/// for key-order independent methods — randomized over instances and key
/// sets for all library methods that are key-order independent.
class Theorem65Test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem65Test, SequentialEqualsParallelOnKeySets) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  InstanceGenerator gen(&ds.schema, GetParam());
  InstanceGenerator::Options options;
  options.min_objects_per_class = 2;
  options.max_objects_per_class = 4;
  options.edge_probability = 0.4;
  Instance instance = gen.RandomInstance(options);

  std::vector<std::unique_ptr<AlgebraicUpdateMethod>> methods;
  methods.push_back(std::move(MakeAddBar(ds)).value());
  methods.push_back(std::move(MakeFavoriteBar(ds)).value());
  methods.push_back(std::move(MakeDeleteBar(ds)).value());
  methods.push_back(std::move(MakeLikesServesBar(ds)).value());
  for (const auto& method : methods) {
    std::vector<Receiver> keys =
        gen.RandomKeySet(instance, method->signature(), 3);
    ASSERT_TRUE(IsKeySet(keys));
    Instance sequential =
        std::move(ApplySequence(*method, instance, keys)).value();
    Instance parallel =
        std::move(ParallelApply(*method, instance, keys)).value();
    EXPECT_EQ(sequential, parallel) << method->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem65Test,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(Theorem65Test, FailsOnNonKeySetsForFavoriteBar) {
  // The theorem's key-set hypothesis is necessary: favorite_bar on a
  // non-key set gives different sequential and parallel results (parallel
  // assigns *all* argument bars at once).
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto favorite = std::move(MakeFavoriteBar(ds)).value();
  Instance instance(&ds.schema);
  const ObjectId d(ds.drinker, 0);
  const ObjectId b0(ds.bar, 0), b1(ds.bar, 1);
  ASSERT_TRUE(instance.AddObject(d).ok());
  ASSERT_TRUE(instance.AddObject(b0).ok());
  ASSERT_TRUE(instance.AddObject(b1).ok());
  std::vector<Receiver> non_key = {Receiver::Unchecked({d, b0}),
                                   Receiver::Unchecked({d, b1})};
  Instance parallel =
      std::move(ParallelApply(*favorite, instance, non_key)).value();
  // Parallel semantics: d points to both bars.
  EXPECT_EQ(parallel.Targets(d, ds.frequents),
            (std::vector<ObjectId>{b0, b1}));
  // Sequential (either order) leaves exactly one bar.
  Instance sequential =
      std::move(ApplySequence(*favorite, instance, non_key)).value();
  EXPECT_EQ(sequential.Targets(d, ds.frequents).size(), 1u);
}

/// Lemma 6.7 directly: on key sets, par(E)(I, T) = ∪_{t∈T} {t(self)} ×
/// E(I, t) — the per-receiver evaluations glued together by the self
/// column. (Stronger than the Theorem 6.5 end-to-end check: it pins the
/// *relation* par(E) computes, not just the final instance.)
class Lemma67Test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma67Test, ParExpressionEqualsUnionOfPerReceiverResults) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  InstanceGenerator gen(&ds.schema, GetParam());
  InstanceGenerator::Options options;
  options.min_objects_per_class = 2;
  options.max_objects_per_class = 4;
  options.edge_probability = 0.4;
  Instance instance = gen.RandomInstance(options);

  std::vector<std::unique_ptr<AlgebraicUpdateMethod>> methods;
  methods.push_back(std::move(MakeAddBar(ds)).value());
  methods.push_back(std::move(MakeDeleteBar(ds)).value());
  for (const auto& method : methods) {
    const MethodContext& ctx = method->context();
    std::vector<Receiver> keys =
        gen.RandomKeySet(instance, method->signature(), 3);
    if (keys.empty()) continue;
    const UpdateStatement& statement = method->statements()[0];

    // Left side: evaluate par(E) against the instance plus rec = keys.
    Database db = std::move(EncodeInstance(instance)).value();
    RelationScheme rec_scheme =
        std::move(RecScheme(ctx.signature)).value();
    Relation rec(rec_scheme);
    for (const Receiver& t : keys) {
      std::vector<ObjectId> values;
      for (std::size_t i = 0; i < t.size(); ++i) {
        values.push_back(t.object_at(i));
      }
      ASSERT_TRUE(rec.Insert(Tuple(std::move(values))).ok());
    }
    db.Put(kRecRelation, std::move(rec));
    ExprPtr par_expr =
        std::move(ParTransform(statement.expression, ctx)).value();
    Relation lhs = std::move(Evaluate(par_expr, db)).value();

    // Right side: ∪_t {t(self)} × E(I, t), computed per receiver.
    std::set<std::pair<ObjectId, ObjectId>> rhs;
    for (const Receiver& t : keys) {
      Database per = std::move(EncodeInstance(instance)).value();
      ASSERT_TRUE(
          InstallReceiverRelations(per, ctx, t, /*primed=*/false).ok());
      Relation value =
          std::move(Evaluate(statement.expression, per)).value();
      for (const Tuple& v : value) {
        rhs.emplace(t.receiving_object(), v.at(0));
      }
    }

    ASSERT_EQ(lhs.scheme().arity(), 2u) << method->name();
    std::size_t self_idx =
        std::move(lhs.scheme().IndexOf("self")).value();
    std::set<std::pair<ObjectId, ObjectId>> lhs_pairs;
    for (const Tuple& t : lhs) {
      lhs_pairs.emplace(t.at(self_idx), t.at(1 - self_idx));
    }
    EXPECT_EQ(lhs_pairs, rhs) << method->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma67Test,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(ParityTest, SequentialApplicationExpressesParity) {
  // Footnote 8: greedy matching via sequential application leaves an
  // unmatched object iff |C| is odd — a query the relational algebra
  // (hence one-shot parallel application) cannot express.
  PairSchema ps = std::move(MakePairSchema()).value();
  auto method = std::move(MakeParityMethod(ps)).value();
  EXPECT_FALSE(method->IsPositiveMethod());

  for (std::uint32_t n = 1; n <= 5; ++n) {
    Instance instance(&ps.schema);
    for (std::uint32_t i = 0; i < n; ++i) {
      ASSERT_TRUE(instance.AddObject(ObjectId(ps.c, i)).ok());
    }
    std::vector<Receiver> all = InstanceGenerator::AllReceivers(
        instance, MethodSignature({ps.c, ps.c}));

    // Run several enumerations; the final instances may differ (the method
    // is order dependent) but the parity readout is invariant.
    std::vector<std::vector<Receiver>> orders;
    orders.push_back(all);
    orders.emplace_back(all.rbegin(), all.rend());
    std::vector<Receiver> shuffled = all;
    SplitMix64 rng(99 + n);
    for (std::size_t i = 0; i + 1 < shuffled.size(); ++i) {
      std::size_t j = i + rng.UniformInt(shuffled.size() - i);
      std::swap(shuffled[i], shuffled[j]);
    }
    orders.push_back(std::move(shuffled));

    for (const auto& order : orders) {
      Instance done = std::move(ApplySequence(*method, instance, order))
                          .value();
      std::set<ObjectId> matched;
      for (const auto& [src, dst] : done.edges(ps.a)) {
        matched.insert(src);
        matched.insert(dst);
      }
      const std::size_t unmatched = n - matched.size();
      EXPECT_EQ(unmatched, n % 2) << "n=" << n;
      // Matching edges pair distinct objects and form a matching.
      EXPECT_EQ(done.edges(ps.a).size(), n / 2);
    }
  }
}

}  // namespace
}  // namespace setrec
