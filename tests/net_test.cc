// Tests for the network service (net/): the checksummed frame codec, the
// hardened message codec, the multi-tenant blocking-I/O server with
// admission control, the retrying client, WAL-shipping replication with
// snapshot resync, and read failover. The acceptance core mirrors the
// store's recovery matrix: every network fault mode (drop, duplicate,
// truncate, delay, disconnect) injected at each of the first frames of a
// conversation must leave the service consistent — a governed retry either
// completes the call or surfaces a typed, retryable error, and never
// executes a deduplicated statement twice on one session.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/fault_injection.h"
#include "core/instance.h"
#include "core/schema.h"
#include "core/status.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/message.h"
#include "net/replica.h"
#include "net/server.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "store/durable_store.h"
#include "text/printer.h"

namespace setrec {
namespace {

using std::chrono::milliseconds;

std::string MakeTempDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "setrec_net_test" /
      (std::string(info->test_suite_name()) + "." + info->name() + "." + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// -- Transport ---------------------------------------------------------------

TEST(TransportTest, PairDeliversBytesInOrderAndEofOnClose) {
  auto [left, right] = CreateInProcessPair();
  ASSERT_TRUE(left->Send("hello ").ok());
  ASSERT_TRUE(left->Send("world").ok());
  std::string got;
  while (got.size() < 11) {
    Result<std::size_t> n = right->Recv(64, milliseconds(200), &got);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_GT(*n, 0u);
  }
  EXPECT_EQ(got, "hello world");
  left->Close();
  Result<std::size_t> eof = right->Recv(64, milliseconds(200), &got);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);  // clean EOF
}

TEST(TransportTest, RecvTimesOutAndCrossThreadCloseWakesIt) {
  auto [left, right] = CreateInProcessPair();
  std::string out;
  EXPECT_EQ(right->Recv(8, milliseconds(10), &out).status().code(),
            StatusCode::kDeadlineExceeded);

  std::thread closer([&conn = *right] {
    std::this_thread::sleep_for(milliseconds(20));
    conn.Close();
  });
  // A long blocking read must wake when the connection is closed from a
  // different thread — the drain path depends on this.
  const Status woken =
      right->Recv(8, milliseconds(10'000), &out).status();
  closer.join();
  EXPECT_EQ(woken.code(), StatusCode::kFailedPrecondition);
  (void)left;
}

// -- Frame codec -------------------------------------------------------------

/// Sends `frame` through a fresh pair and returns its raw wire bytes.
std::string WireBytes(const Frame& frame) {
  auto [a, b] = CreateInProcessPair();
  FramedConnection sender(std::move(a));
  EXPECT_TRUE(sender.SendFrame(frame).ok());
  std::string bytes;
  while (true) {
    Result<std::size_t> n = b->Recv(1 << 16, milliseconds(10), &bytes);
    if (!n.ok() || *n == 0) break;
  }
  return bytes;
}

Frame PingFrame() {
  Frame f;
  f.type = FrameType::kRequest;
  f.request_id = 42;
  f.payload = "op ping\nbody 0\n";
  return f;
}

TEST(FrameTest, RoundTripsTypeIdAndPayload) {
  auto [a, b] = CreateInProcessPair();
  FramedConnection left(std::move(a));
  FramedConnection right(std::move(b));
  Frame f;
  f.type = FrameType::kWalRecord;
  f.request_id = 7;
  f.payload = std::string("\x00\x01\xff payload", 11);
  ASSERT_TRUE(left.SendFrame(f).ok());
  Result<Frame> got = right.RecvFrame(milliseconds(200));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->type, FrameType::kWalRecord);
  EXPECT_EQ(got->request_id, 7u);
  EXPECT_EQ(got->payload, f.payload);
}

TEST(FrameTest, EveryTruncationOfAFrameIsCorruptionNeverAHangOrCrash) {
  const std::string bytes = WireBytes(PingFrame());
  ASSERT_GT(bytes.size(), 24u);
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    auto [a, b] = CreateInProcessPair();
    ASSERT_TRUE(a->Send(bytes.substr(0, cut)).ok());
    a->Close();  // the rest of the frame never arrives
    FramedConnection receiver(std::move(b));
    const Status status = receiver.RecvFrame(milliseconds(200)).status();
    EXPECT_EQ(status.code(), StatusCode::kCorruptedLog) << "cut " << cut;
  }
}

TEST(FrameTest, EverySingleByteFlipIsDetected) {
  const std::string bytes = WireBytes(PingFrame());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] ^= 0x01;
    auto [a, b] = CreateInProcessPair();
    ASSERT_TRUE(a->Send(flipped).ok());
    a->Close();
    FramedConnection receiver(std::move(b));
    Result<Frame> got = receiver.RecvFrame(milliseconds(200));
    // A flip in the length field may manifest as a short read (mid-frame
    // close) instead of a CRC mismatch, but it must never decode cleanly.
    EXPECT_FALSE(got.ok()) << "flip at byte " << i;
    EXPECT_EQ(got.status().code(), StatusCode::kCorruptedLog)
        << "flip at byte " << i;
  }
}

TEST(FrameTest, OversizedLengthAndForeignMagicAreRejectedEagerly) {
  auto [a, b] = CreateInProcessPair();
  // A foreign protocol speaking first.
  ASSERT_TRUE(a->Send("GET / HTTP/1.1\r\n\r\n").ok());
  FramedConnection receiver(std::move(b));
  EXPECT_EQ(receiver.RecvFrame(milliseconds(200)).status().code(),
            StatusCode::kCorruptedLog);

  // A length field far past the cap must be rejected from the header alone
  // (no allocation, no waiting for 4 GiB that never comes).
  std::string huge = WireBytes(PingFrame());
  huge[4] = '\xff';
  huge[5] = '\xff';
  huge[6] = '\xff';
  huge[7] = '\x7f';
  auto [c, d] = CreateInProcessPair();
  ASSERT_TRUE(c->Send(huge).ok());
  FramedConnection receiver2(std::move(d));
  EXPECT_EQ(receiver2.RecvFrame(milliseconds(200)).status().code(),
            StatusCode::kCorruptedLog);
}

// -- Message codec -----------------------------------------------------------

TEST(MessageTest, RequestRoundTripsAllFields) {
  Request request;
  request.op = "update";
  request.tenant = "acme";
  request.deadline_ms = 250;
  request.params["property"] = "f";
  request.params["from"] = "17";
  request.body = "product(A, B)\nwith raw \x01 bytes";
  Result<Request> back = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->op, "update");
  EXPECT_EQ(back->tenant, "acme");
  EXPECT_EQ(back->deadline_ms, 250u);
  EXPECT_EQ(back->params, request.params);
  EXPECT_EQ(back->body, request.body);  // bodies travel verbatim
}

TEST(MessageTest, ResponseRoundTripsAllFields) {
  Response response;
  response.code = StatusCode::kResourceExhausted;
  response.message = "tenant saturated";
  response.retry_after_ms = 12;
  response.applied_sequence = 9;
  response.leader_sequence = 11;
  response.body = "A(1) B(2)\n";
  Result<Response> back = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(back->message, "tenant saturated");
  EXPECT_EQ(back->retry_after_ms, 12u);
  EXPECT_EQ(back->applied_sequence, 9u);
  EXPECT_EQ(back->leader_sequence, 11u);
  EXPECT_EQ(back->body, "A(1) B(2)\n");
}

TEST(MessageTest, HeaderValuesCannotSmuggleLineBreaks) {
  Request request;
  request.op = "ping";
  request.tenant = "evil\nop shutdown";  // header-injection attempt
  Result<Request> back = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->tenant, "evil?op shutdown");
}

TEST(MessageTest, EveryTruncationAndFlipOfAMessageIsTypedNeverACrash) {
  Request request;
  request.op = "update";
  request.tenant = "acme";
  request.deadline_ms = 99;
  request.params["property"] = "f";
  request.body = "join[self = A](A, Af)";
  const std::string bytes = EncodeRequest(request);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const Status status =
        DecodeRequest(std::string_view(bytes).substr(0, cut)).status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << "cut " << cut;
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] ^= 0x04;
    (void)DecodeRequest(flipped);  // must not crash; outcome may be either
  }
  EXPECT_EQ(DecodeRequest("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeResponse("body 0\n").status().code(),
            StatusCode::kInvalidArgument);  // missing code
  EXPECT_EQ(DecodeRequest("op ping\nbody 5\nab").status().code(),
            StatusCode::kInvalidArgument);  // body length lies
}

// -- Service fixture ---------------------------------------------------------

class NetServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = schema_.AddClass("A").value();
    b_ = schema_.AddClass("B").value();
    f_ = schema_.AddProperty("f", a_, b_).value();
  }

  TenantConfig Tenant(const std::string& name) const {
    TenantConfig config;
    config.name = name;
    return config;
  }

  std::unique_ptr<Server> MakeServer(const std::string& dir,
                                     std::vector<TenantConfig> tenants,
                                     ServerOptions options = {}) {
    options.data_dir = dir;
    options.schema = &schema_;
    Result<std::unique_ptr<Server>> server =
        Server::Create(std::move(options), std::move(tenants));
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  /// A dialer that opens an in-process session on `server` per call.
  static Dialer DialerFor(Server* server) {
    return [server]() -> Result<ConnectionPtr> {
      auto [client_end, server_end] = CreateInProcessPair();
      server->Serve(std::move(server_end));
      return std::move(client_end);
    };
  }

  Client::Options ClientOptions(Server* server, const std::string& tenant,
                                std::uint32_t max_attempts = 5) const {
    Client::Options options;
    options.tenant = tenant;
    options.dial = DialerFor(server);
    options.retry.max_attempts = max_attempts;
    options.recv_timeout = milliseconds(200);
    return options;
  }

  /// Asserts the call succeeded end to end and returns the response.
  Response MustOk(Result<Response> result) {
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return Response{};
    EXPECT_EQ(result->code, StatusCode::kOk) << result->message;
    return *std::move(result);
  }

  Schema schema_;
  ClassId a_ = 0, b_ = 0;
  PropertyId f_ = 0;
};

// -- End-to-end request/response ---------------------------------------------

TEST_F(NetServiceTest, PingUpdateDeltaQueryExplainEndToEnd) {
  auto server = MakeServer(MakeTempDir("srv"), {Tenant("acme")});
  Client client(ClientOptions(server.get(), "acme"));

  Response pong = MustOk(client.Ping());
  EXPECT_EQ(pong.applied_sequence, 0u);

  MustOk(client.ApplyDelta(
      "delta { add object A(1); add object A(2); add object B(5); }"));
  Response updated = MustOk(client.Update("f", "product(A, B)"));
  EXPECT_EQ(updated.applied_sequence, 2u);

  Response rows = MustOk(client.Query("Af"));
  EXPECT_EQ(rows.body, "A(1) B(5)\nA(2) B(5)\n");
  EXPECT_EQ(rows.applied_sequence, 2u);
  EXPECT_EQ(rows.leader_sequence, 2u);

  Response plan = MustOk(client.Explain("project[A](join[self = A]("
                                        "rename[A -> self](A), Af))"));
  EXPECT_FALSE(plan.body.empty());
  EXPECT_NE(plan.body.find("Project"), std::string::npos);

  // The server state is the durable store's state.
  DurableStore* store = server->store("acme");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->last_sequence(), 2u);

  // Semantic errors come back typed, not as transport failures.
  Result<Response> bad = client.Query("union(A)");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->code, StatusCode::kInvalidArgument);
  Result<Response> unknown_rel = client.Query("Nope");
  ASSERT_TRUE(unknown_rel.ok());
  EXPECT_NE(unknown_rel->code, StatusCode::kOk);
}

TEST_F(NetServiceTest, TenantsAreIsolatedStores) {
  auto server = MakeServer(MakeTempDir("srv"),
                           {Tenant("alpha"), Tenant("beta")});
  Client alpha(ClientOptions(server.get(), "alpha"));
  Client beta(ClientOptions(server.get(), "beta"));

  MustOk(alpha.ApplyDelta("delta { add object A(1); }"));
  MustOk(beta.ApplyDelta("delta { add object A(2); add object A(3); }"));

  EXPECT_EQ(MustOk(alpha.Query("A")).body, "A(1)\n");
  EXPECT_EQ(MustOk(beta.Query("A")).body, "A(2)\nA(3)\n");
  EXPECT_EQ(server->store("alpha")->last_sequence(), 1u);
  EXPECT_EQ(server->store("beta")->last_sequence(), 1u);

  Result<Response> missing = alpha.Call([] {
    Request r;
    r.op = "ping";
    r.tenant = "nobody";
    return r;
  }());
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->code, StatusCode::kNotFound);
}

TEST_F(NetServiceTest, RequestDeadlineBoundsTheAdmissionQueueWait) {
  // A tenant that can never admit anything: every request waits in the
  // queue until its own deadline expires. This isolates the deadline
  // plumbing from timing flakiness — no execution is involved at all.
  TenantConfig never = Tenant("never");
  never.max_concurrency = 0;
  auto server = MakeServer(MakeTempDir("srv"), {never});
  Client client(ClientOptions(server.get(), "never", /*max_attempts=*/1));

  Request request;
  request.op = "update";
  request.deadline_ms = 30;
  request.params["property"] = "f";
  request.body = "Af";
  const auto started = std::chrono::steady_clock::now();
  Result<Response> response = client.Call(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kDeadlineExceeded);
  EXPECT_GE(std::chrono::steady_clock::now() - started, milliseconds(25));
}

TEST_F(NetServiceTest, RequestDeadlineCutsOffAnExpensiveQueryMidExecution) {
  auto server = MakeServer(MakeTempDir("srv"), {Tenant("acme")});
  Client client(ClientOptions(server.get(), "acme", /*max_attempts=*/1));

  // 400 x 400 product: enough materialization work that a 1 ms budget
  // trips the ExecContext clock long before the result is complete.
  std::string delta = "delta {\n";
  for (int i = 1; i <= 400; ++i) {
    delta += "  add object A(" + std::to_string(i) + ");\n";
    delta += "  add object B(" + std::to_string(i) + ");\n";
  }
  delta += "}";
  MustOk(client.ApplyDelta(delta));

  Request request;
  request.op = "query";
  request.deadline_ms = 1;
  request.body = "product(A, B)";
  Result<Response> response = client.Call(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kDeadlineExceeded)
      << response->message;
}

// -- Admission control -------------------------------------------------------

TEST_F(NetServiceTest, SaturatedTenantShedsWithRetryableBackoffHint) {
  TenantConfig tiny = Tenant("tiny");
  tiny.max_concurrency = 0;  // never admits
  tiny.max_queue = 0;        // never queues: every arrival is shed
  ServerOptions options;
  options.suggested_backoff_ms = 3;
  MetricsRegistry metrics;
  options.metrics = &metrics;
  auto server = MakeServer(MakeTempDir("srv"), {tiny}, std::move(options));

  Client::Options client_options =
      ClientOptions(server.get(), "tiny", /*max_attempts=*/3);
  client_options.metrics = &metrics;
  Client client(std::move(client_options));
  Result<Response> response = client.Update("f", "Af");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kResourceExhausted);
  EXPECT_GE(response->retry_after_ms, 3u);  // the server's explicit hint
  // The client consumed its whole retry budget honoring the hint.
  EXPECT_EQ(client.last_call_retries(), 2u);
  EXPECT_EQ(metrics.CounterNamed("net.shed").value(), 3u);
  EXPECT_EQ(metrics.CounterNamed("net.client.retries").value(), 2u);

  // Reads on a *different* tenant of the same server are unaffected:
  // back-pressure is per tenant, not per server.
}

TEST_F(NetServiceTest, QueuedRequestsAdmitInTurnUnderConcurrencyOne) {
  TenantConfig one = Tenant("one");
  one.max_concurrency = 1;
  one.max_queue = 32;
  one.default_deadline = milliseconds(5000);
  ServerOptions options;
  options.own_pool_workers = 8;
  auto server = MakeServer(MakeTempDir("srv"), {one}, std::move(options));

  // Eight threads each commit four disjoint deltas through the width-one
  // admission gate. Everything must eventually commit; nothing may be lost
  // or doubled.
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      Client client(ClientOptions(server.get(), "one", /*max_attempts=*/8));
      for (int i = 0; i < 4; ++i) {
        const int id = t * 100 + i;
        Result<Response> r = client.ApplyDelta(
            "delta { add object A(" + std::to_string(id) + "); }");
        if (!r.ok() || r->code != StatusCode::kOk) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server->store("one")->last_sequence(), 32u);
  std::uint64_t sequence = 0;
  const Instance state = server->store("one")->SnapshotState(&sequence);
  EXPECT_EQ(sequence, 32u);
  std::size_t objects = 0;
  for (std::uint32_t t = 0; t < 8; ++t) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      objects += state.HasObject(ObjectId(a_, t * 100 + i)) ? 1u : 0u;
    }
  }
  EXPECT_EQ(objects, 32u);
}

// -- Session dedup and protocol errors ---------------------------------------

TEST_F(NetServiceTest, ReplayedRequestIdReturnsCachedResponseWithoutRerun) {
  auto server = MakeServer(MakeTempDir("srv"), {Tenant("acme")});
  auto [client_end, server_end] = CreateInProcessPair();
  server->Serve(std::move(server_end));
  FramedConnection conn(std::move(client_end));

  Request update;
  update.op = "delta";
  update.tenant = "acme";
  update.body = "delta { add object A(7); }";
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.request_id = 10;
  frame.payload = EncodeRequest(update);

  ASSERT_TRUE(conn.SendFrame(frame).ok());
  Result<Frame> first = conn.RecvFrame(milliseconds(500));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<Response> decoded = DecodeResponse(first->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kOk);
  EXPECT_EQ(server->store("acme")->last_sequence(), 1u);

  // The client "lost" the response and retries the same id: the session
  // resends its cached response and the store does NOT commit again.
  ASSERT_TRUE(conn.SendFrame(frame).ok());
  Result<Frame> replay = conn.RecvFrame(milliseconds(500));
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->payload, first->payload);
  EXPECT_EQ(server->store("acme")->last_sequence(), 1u);

  // A regressing id is a protocol violation: typed error, session closed.
  frame.request_id = 3;
  ASSERT_TRUE(conn.SendFrame(frame).ok());
  Result<Frame> violation = conn.RecvFrame(milliseconds(500));
  ASSERT_TRUE(violation.ok()) << violation.status().ToString();
  Result<Response> verdict = DecodeResponse(violation->payload);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->code, StatusCode::kInvalidArgument);
  EXPECT_EQ(server->store("acme")->last_sequence(), 1u);
}

// -- Fault matrix ------------------------------------------------------------

TEST_F(NetServiceTest, ClientSurvivesEveryFaultModeAtEachEarlyFrame) {
  // Fault mode x frame ordinal: inject each network fault at each of the
  // first frames of the client's conversation and require the governed
  // retry loop to finish the call anyway. Queries are repeated after each
  // storm on a *clean* client to prove the server survived undamaged.
  const std::string dir = MakeTempDir("srv");
  auto server = MakeServer(dir, {Tenant("acme")});
  {
    Client seed(ClientOptions(server.get(), "acme"));
    MustOk(seed.ApplyDelta(
        "delta { add object A(1); add object B(5); }"));
    MustOk(seed.Update("f", "product(A, B)"));
  }
  const std::string baseline = "A(1) B(5)\n";

  struct Mode {
    const char* name;
    FaultInjector (*make)(std::uint64_t nth);
  };
  const Mode kModes[] = {
      {"drop", [](std::uint64_t n) { return FaultInjector::DropFrameAt(n); }},
      {"duplicate",
       [](std::uint64_t n) { return FaultInjector::DuplicateFrameAt(n); }},
      {"truncate",
       [](std::uint64_t n) { return FaultInjector::TruncateFrameAt(n, 9); }},
      {"delay",
       [](std::uint64_t n) { return FaultInjector::DelayFrameAt(n, 5); }},
      {"disconnect",
       [](std::uint64_t n) { return FaultInjector::DisconnectAt(n); }},
  };

  for (const Mode& mode : kModes) {
    // A clean round trip is two net ops (one send probe, one recv probe),
    // so two back-to-back calls cover ordinals 1..4 densely.
    for (std::uint64_t nth = 1; nth <= 4; ++nth) {
      FaultInjector injector = mode.make(nth);
      Client::Options options = ClientOptions(server.get(), "acme",
                                              /*max_attempts=*/6);
      options.injector = &injector;
      Client client(std::move(options));
      for (int call = 0; call < 2; ++call) {
        Result<Response> response = client.Query("Af");
        ASSERT_TRUE(response.ok())
            << mode.name << " at op " << nth << " call " << call << ": "
            << response.status().ToString();
        EXPECT_EQ(response->code, StatusCode::kOk)
            << mode.name << " at op " << nth << ": " << response->message;
        EXPECT_EQ(response->body, baseline)
            << mode.name << " at op " << nth;
      }
      EXPECT_GE(injector.net_faults_fired(), 1u)
          << mode.name << " at op " << nth << " never fired";
    }
    // The server must still be pristine for a clean client.
    Client clean(ClientOptions(server.get(), "acme"));
    EXPECT_EQ(MustOk(clean.Query("Af")).body, baseline) << mode.name;
  }
  // No fault mode may have smuggled in an extra commit: the dedup and
  // idempotence story, checked at the WAL.
  EXPECT_EQ(server->store("acme")->last_sequence(), 2u);
}

TEST_F(NetServiceTest, ServerSideFaultsCannotCorruptTenantState) {
  // The server's own endpoints inject faults this time (shared injector
  // across all sessions); writes keep retrying until acknowledged, and the
  // acknowledged state must survive.
  const std::string dir = MakeTempDir("srv");
  FaultInjector injector = FaultInjector::DropFrameAt(2);
  ServerOptions options;
  options.injector = &injector;
  auto server = MakeServer(dir, {Tenant("acme")}, std::move(options));

  Client client(ClientOptions(server.get(), "acme", /*max_attempts=*/6));
  Result<Response> response =
      client.ApplyDelta("delta { add object A(3); }");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kOk) << response->message;
  EXPECT_EQ(server->store("acme")->last_sequence(), 1u);
  EXPECT_TRUE(
      server->store("acme")->SnapshotState().HasObject(ObjectId(a_, 3)));
}

// -- Graceful drain ----------------------------------------------------------

TEST_F(NetServiceTest, DrainSaysGoodbyeAndRefusesNewSessions) {
  ServerOptions options;
  options.recv_timeout = milliseconds(10);  // fast drain detection
  auto server = MakeServer(MakeTempDir("srv"), {Tenant("acme")},
                           std::move(options));
  Client client(ClientOptions(server.get(), "acme"));
  MustOk(client.Ping());  // session established and idle

  server->Drain();
  EXPECT_EQ(server->active_sessions(), 0u);
  EXPECT_TRUE(server->draining());

  // The old session was told goodbye; a new dial gets a closed connection.
  Client late(ClientOptions(server.get(), "acme", /*max_attempts=*/2));
  Result<Response> refused = late.Ping();
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);

  server->Drain();  // idempotent
}

// -- Replication -------------------------------------------------------------

class ReplicationTest : public NetServiceTest {
 protected:
  FollowerReplica::Options ReplicaOptions(Server* leader,
                                          const std::string& tenant) {
    FollowerReplica::Options options;
    options.tenant = tenant;
    options.dial = DialerFor(leader);
    options.schema = &schema_;
    options.recv_timeout = milliseconds(500);
    return options;
  }

  /// Pulls until the follower reports no lag (bounded rounds).
  void CatchUp(FollowerReplica& replica) {
    for (int round = 0; round < 32; ++round) {
      ASSERT_TRUE(replica.TailOnce().ok());
      std::uint64_t applied = 0, leader = 0;
      (void)replica.Read(&applied, &leader);
      if (applied == leader) return;
    }
    FAIL() << "replica never caught up";
  }
};

TEST_F(ReplicationTest, FollowerConvergesToBitIdenticalState) {
  auto leader = MakeServer(MakeTempDir("leader"), {Tenant("acme")});
  Client client(ClientOptions(leader.get(), "acme"));
  MustOk(client.ApplyDelta(
      "delta { add object A(1); add object A(2); add object B(9); }"));
  MustOk(client.Update("f", "product(A, B)"));
  MustOk(client.ApplyDelta("delta { del object A(2); }"));

  auto replica = std::move(FollowerReplica::Create(
                               ReplicaOptions(leader.get(), "acme")))
                     .value();
  CatchUp(*replica);

  std::uint64_t applied = 0, leader_seq = 0;
  const Instance follower_state = replica->Read(&applied, &leader_seq);
  EXPECT_EQ(applied, 3u);
  EXPECT_EQ(leader_seq, 3u);
  EXPECT_TRUE(replica->healthy());
  EXPECT_EQ(replica->resyncs(), 0u);
  // Bit-identical: the replication stream is the WAL, and the WAL replay
  // path is the recovery path.
  EXPECT_EQ(InstanceToText(follower_state),
            InstanceToText(leader->store("acme")->SnapshotState()));

  // Incremental: more commits, another round, still identical.
  MustOk(client.ApplyDelta("delta { add object A(4); }"));
  CatchUp(*replica);
  EXPECT_EQ(InstanceToText(replica->Read(nullptr, nullptr)),
            InstanceToText(leader->store("acme")->SnapshotState()));
}

TEST_F(ReplicationTest, TruncatedLeaderHistoryForcesSnapshotResync) {
  // Checkpoints truncate the leader's WAL, so a follower starting from
  // sequence 1 cannot pull the early records — it must detect the gap and
  // resync from the snapshot instead of serving a divergent state.
  TenantConfig tenant = Tenant("acme");
  tenant.store_options.snapshot_every_n_commits = 2;
  auto leader = MakeServer(MakeTempDir("leader"), {tenant});
  Client client(ClientOptions(leader.get(), "acme"));
  for (int i = 1; i <= 4; ++i) {
    MustOk(client.ApplyDelta("delta { add object A(" + std::to_string(i) +
                             "); }"));
  }

  auto replica = std::move(FollowerReplica::Create(
                               ReplicaOptions(leader.get(), "acme")))
                     .value();
  CatchUp(*replica);
  EXPECT_EQ(replica->resyncs(), 1u);
  EXPECT_EQ(replica->applied_sequence(), 4u);
  EXPECT_EQ(InstanceToText(replica->Read(nullptr, nullptr)),
            InstanceToText(leader->store("acme")->SnapshotState()));

  // After the resync, tailing resumes incrementally — no further resyncs.
  MustOk(client.ApplyDelta("delta { add object A(9); }"));
  CatchUp(*replica);
  EXPECT_EQ(replica->resyncs(), 1u);
  EXPECT_EQ(replica->applied_sequence(), 5u);
}

TEST_F(ReplicationTest, LeaderCrashAtEveryCommitProbeThenReopenAndRetail) {
  // The replication analogue of the store's recovery matrix: a leader that
  // dies mid-commit (at each exec/storage probe ordinal) is reopened, and
  // the follower re-tails. The follower must land exactly on the leader's
  // recovered state — the committed prefix — at every ordinal.
  for (std::uint64_t nth = 1; nth <= 8; ++nth) {
    const std::string dir = MakeTempDir("leader" + std::to_string(nth));
    bool acked = false;
    {
      auto healthy = MakeServer(dir, {Tenant("acme")});
      Client seed(ClientOptions(healthy.get(), "acme"));
      MustOk(seed.ApplyDelta("delta { add object A(1); }"));
    }
    {
      // Observe-only while the server opens (recovery replay fires exec
      // probes of its own); armed just before the wounded commit.
      FaultInjector injector;
      TenantConfig tenant = Tenant("acme");
      tenant.store_options.injector = &injector;
      auto wounded = MakeServer(dir, {tenant});
      injector = FaultInjector::FireAtNthProbe(nth);
      Client client(ClientOptions(wounded.get(), "acme",
                                  /*max_attempts=*/1));
      Result<Response> response =
          client.ApplyDelta("delta { add object A(2); }");
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      acked = response->code == StatusCode::kOk;
      wounded->Drain();
    }
    // Reopen (recovery) and re-tail.
    auto reopened = MakeServer(dir, {Tenant("acme")});
    const Instance recovered = reopened->store("acme")->SnapshotState();
    if (acked) {
      EXPECT_TRUE(recovered.HasObject(ObjectId(a_, 2))) << "probe " << nth;
    }
    EXPECT_TRUE(recovered.HasObject(ObjectId(a_, 1))) << "probe " << nth;

    auto replica = std::move(FollowerReplica::Create(
                                 ReplicaOptions(reopened.get(), "acme")))
                       .value();
    CatchUp(*replica);
    EXPECT_EQ(InstanceToText(replica->Read(nullptr, nullptr)),
              InstanceToText(recovered))
        << "probe " << nth;
  }
}

TEST_F(ReplicationTest, ReplicaBackedTenantServesReadsAndRefusesWrites) {
  auto leader = MakeServer(MakeTempDir("leader"), {Tenant("acme")});
  Client leader_client(ClientOptions(leader.get(), "acme"));
  MustOk(leader_client.ApplyDelta(
      "delta { add object A(1); add object B(2); }"));
  MustOk(leader_client.Update("f", "product(A, B)"));

  auto replica = std::move(FollowerReplica::Create(
                               ReplicaOptions(leader.get(), "acme")))
                     .value();
  CatchUp(*replica);

  auto follower = MakeServer(MakeTempDir("follower"), {});
  ASSERT_TRUE(follower->ServeReplica("acme", replica.get()).ok());
  Client follower_client(ClientOptions(follower.get(), "acme"));

  Response rows = MustOk(follower_client.Query("Af"));
  EXPECT_EQ(rows.body, "A(1) B(2)\n");
  EXPECT_EQ(rows.applied_sequence, 2u);
  EXPECT_EQ(rows.leader_sequence, 2u);
  // EXPLAIN works at the follower too — plans need only the catalog.
  EXPECT_FALSE(MustOk(follower_client.Explain("Af")).body.empty());

  Result<Response> write = follower_client.ApplyDelta(
      "delta { add object A(5); }");
  ASSERT_TRUE(write.ok());
  EXPECT_EQ(write->code, StatusCode::kFailedPrecondition);
  Result<Response> pull = follower_client.Call([] {
    Request r;
    r.op = "pull";
    return r;
  }());
  ASSERT_TRUE(pull.ok());
  EXPECT_EQ(pull->code, StatusCode::kFailedPrecondition);
}

TEST_F(ReplicationTest, FailoverClientScreensStaleFollowersAndDeadOnes) {
  auto leader = MakeServer(MakeTempDir("leader"), {Tenant("acme")});
  Client leader_seed(ClientOptions(leader.get(), "acme"));
  MustOk(leader_seed.ApplyDelta(
      "delta { add object A(1); add object A(2); }"));

  FollowerReplica::Options replica_options =
      ReplicaOptions(leader.get(), "acme");
  replica_options.pull_batch = 1;  // so the follower can be behind knowingly
  auto replica =
      std::move(FollowerReplica::Create(std::move(replica_options))).value();
  CatchUp(*replica);

  auto follower = MakeServer(MakeTempDir("follower"), {});
  ASSERT_TRUE(follower->ServeReplica("acme", replica.get()).ok());

  Client via_follower(ClientOptions(follower.get(), "acme",
                                    /*max_attempts=*/1));
  Client via_leader(ClientOptions(leader.get(), "acme", /*max_attempts=*/1));
  FailoverReadClient failover(
      {{&via_follower, /*is_leader=*/false}, {&via_leader, true}},
      /*max_lag=*/0);

  // Fresh follower: reads are served there.
  Response fresh = std::move(failover.Query("A")).value();
  EXPECT_EQ(fresh.body, "A(1)\nA(2)\n");
  EXPECT_EQ(failover.stale_rejections(), 0u);

  // Leader advances by 2; one pull round applies 1 record (batch = 1), so
  // the follower KNOWS it is 1 behind — the failover client must reject it
  // and fall back to the leader for the authoritative answer.
  MustOk(leader_seed.ApplyDelta("delta { add object A(3); }"));
  MustOk(leader_seed.ApplyDelta("delta { add object A(4); }"));
  ASSERT_TRUE(replica->TailOnce().ok());
  EXPECT_LT(replica->applied_sequence(), replica->leader_sequence());
  Response authoritative = std::move(failover.Query("A")).value();
  EXPECT_EQ(authoritative.body, "A(1)\nA(2)\nA(3)\nA(4)\n");
  EXPECT_EQ(failover.stale_rejections(), 1u);

  // A drained (dead) follower: counted dead, leader still answers.
  CatchUp(*replica);
  follower->Drain();
  Response survived = std::move(failover.Query("A")).value();
  EXPECT_EQ(survived.body, "A(1)\nA(2)\nA(3)\nA(4)\n");
  EXPECT_GE(failover.dead_targets_seen(), 1u);
}

// -- TCP smoke ---------------------------------------------------------------

TEST_F(NetServiceTest, TcpTransportServesTheSameProtocol) {
  Result<std::unique_ptr<TcpListener>> listener = TcpListener::Listen(0);
  if (!listener.ok()) {
    GTEST_SKIP() << "sockets unavailable: " << listener.status().ToString();
  }
  auto server = MakeServer(MakeTempDir("srv"), {Tenant("acme")});
  std::atomic<bool> stop{false};
  std::thread acceptor([&] {
    while (!stop.load()) {
      Result<ConnectionPtr> conn = (*listener)->Accept(milliseconds(50));
      if (conn.ok()) server->Serve(std::move(conn).value());
    }
  });

  const std::uint16_t port = (*listener)->port();
  Client::Options options;
  options.tenant = "acme";
  options.dial = [port]() { return TcpDial(port, milliseconds(1000)); };
  options.recv_timeout = milliseconds(1000);
  options.retry.max_attempts = 3;
  {
    Client client(std::move(options));
    Response pong = MustOk(client.Ping());
    EXPECT_EQ(pong.applied_sequence, 0u);
    MustOk(client.ApplyDelta(
        "delta { add object A(1); add object B(2); }"));
    MustOk(client.Update("f", "product(A, B)"));
    EXPECT_EQ(MustOk(client.Query("Af")).body, "A(1) B(2)\n");
  }
  stop.store(true);
  acceptor.join();
  EXPECT_EQ(server->store("acme")->last_sequence(), 2u);
}

// -- Observability -----------------------------------------------------------

TEST_F(NetServiceTest, ServiceEmitsNetMetricsAndStatsOp) {
  MetricsRegistry metrics;
  ServerOptions options;
  options.metrics = &metrics;
  auto server = MakeServer(MakeTempDir("srv"), {Tenant("acme")},
                           std::move(options));
  Client::Options client_options = ClientOptions(server.get(), "acme");
  client_options.metrics = &metrics;
  Client client(std::move(client_options));

  MustOk(client.ApplyDelta("delta { add object A(1); }"));
  MustOk(client.Query("A"));
  Response stats = MustOk(client.Call([] {
    Request r;
    r.op = "stats";
    return r;
  }()));

  EXPECT_GE(metrics.CounterNamed("net.requests").value(), 3u);
  EXPECT_GE(metrics.CounterNamed("net.frames_sent").value(), 3u);
  EXPECT_GE(metrics.CounterNamed("net.bytes_recv").value(), 1u);
  EXPECT_GE(metrics.HistogramNamed("net.request_ns").count(), 3u);
  EXPECT_NE(stats.body.find("net.requests"), std::string::npos);
}

}  // namespace
}  // namespace setrec
