// Tests for the network service (net/): the checksummed frame codec, the
// hardened message codec, the multi-tenant blocking-I/O server with
// admission control, the retrying client, WAL-shipping replication with
// snapshot resync, and read failover. The acceptance core mirrors the
// store's recovery matrix: every network fault mode (drop, duplicate,
// truncate, delay, disconnect) injected at each of the first frames of a
// conversation must leave the service consistent — a governed retry either
// completes the call or surfaces a typed, retryable error, and never
// executes a deduplicated statement twice on one session.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/fault_injection.h"
#include "core/instance.h"
#include "core/schema.h"
#include "core/status.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/message.h"
#include "net/replica.h"
#include "net/server.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/durable_store.h"
#include "text/printer.h"

namespace setrec {
namespace {

using std::chrono::milliseconds;

std::string MakeTempDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "setrec_net_test" /
      (std::string(info->test_suite_name()) + "." + info->name() + "." + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// -- Transport ---------------------------------------------------------------

TEST(TransportTest, PairDeliversBytesInOrderAndEofOnClose) {
  auto [left, right] = CreateInProcessPair();
  ASSERT_TRUE(left->Send("hello ").ok());
  ASSERT_TRUE(left->Send("world").ok());
  std::string got;
  while (got.size() < 11) {
    Result<std::size_t> n = right->Recv(64, milliseconds(200), &got);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_GT(*n, 0u);
  }
  EXPECT_EQ(got, "hello world");
  left->Close();
  Result<std::size_t> eof = right->Recv(64, milliseconds(200), &got);
  ASSERT_TRUE(eof.ok());
  EXPECT_EQ(*eof, 0u);  // clean EOF
}

TEST(TransportTest, RecvTimesOutAndCrossThreadCloseWakesIt) {
  auto [left, right] = CreateInProcessPair();
  std::string out;
  EXPECT_EQ(right->Recv(8, milliseconds(10), &out).status().code(),
            StatusCode::kDeadlineExceeded);

  std::thread closer([&conn = *right] {
    std::this_thread::sleep_for(milliseconds(20));
    conn.Close();
  });
  // A long blocking read must wake when the connection is closed from a
  // different thread — the drain path depends on this.
  const Status woken =
      right->Recv(8, milliseconds(10'000), &out).status();
  closer.join();
  EXPECT_EQ(woken.code(), StatusCode::kFailedPrecondition);
  (void)left;
}

// -- Frame codec -------------------------------------------------------------

/// Sends `frame` through a fresh pair and returns its raw wire bytes.
std::string WireBytes(const Frame& frame) {
  auto [a, b] = CreateInProcessPair();
  FramedConnection sender(std::move(a));
  EXPECT_TRUE(sender.SendFrame(frame).ok());
  std::string bytes;
  while (true) {
    Result<std::size_t> n = b->Recv(1 << 16, milliseconds(10), &bytes);
    if (!n.ok() || *n == 0) break;
  }
  return bytes;
}

Frame PingFrame() {
  Frame f;
  f.type = FrameType::kRequest;
  f.request_id = 42;
  f.payload = "op ping\nbody 0\n";
  return f;
}

TEST(FrameTest, RoundTripsTypeIdAndPayload) {
  auto [a, b] = CreateInProcessPair();
  FramedConnection left(std::move(a));
  FramedConnection right(std::move(b));
  Frame f;
  f.type = FrameType::kWalRecord;
  f.request_id = 7;
  f.payload = std::string("\x00\x01\xff payload", 11);
  ASSERT_TRUE(left.SendFrame(f).ok());
  Result<Frame> got = right.RecvFrame(milliseconds(200));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->type, FrameType::kWalRecord);
  EXPECT_EQ(got->request_id, 7u);
  EXPECT_EQ(got->payload, f.payload);
}

TEST(FrameTest, EveryTruncationOfAFrameIsCorruptionNeverAHangOrCrash) {
  const std::string bytes = WireBytes(PingFrame());
  ASSERT_GT(bytes.size(), 24u);
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    auto [a, b] = CreateInProcessPair();
    ASSERT_TRUE(a->Send(bytes.substr(0, cut)).ok());
    a->Close();  // the rest of the frame never arrives
    FramedConnection receiver(std::move(b));
    const Status status = receiver.RecvFrame(milliseconds(200)).status();
    EXPECT_EQ(status.code(), StatusCode::kCorruptedLog) << "cut " << cut;
  }
}

TEST(FrameTest, EverySingleByteFlipIsDetected) {
  const std::string bytes = WireBytes(PingFrame());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] ^= 0x01;
    auto [a, b] = CreateInProcessPair();
    ASSERT_TRUE(a->Send(flipped).ok());
    a->Close();
    FramedConnection receiver(std::move(b));
    Result<Frame> got = receiver.RecvFrame(milliseconds(200));
    // A flip in the length field may manifest as a short read (mid-frame
    // close) instead of a CRC mismatch, but it must never decode cleanly.
    EXPECT_FALSE(got.ok()) << "flip at byte " << i;
    EXPECT_EQ(got.status().code(), StatusCode::kCorruptedLog)
        << "flip at byte " << i;
  }
}

TEST(FrameTest, TraceContextRoundTripsInTheFrameHeader) {
  auto [a, b] = CreateInProcessPair();
  FramedConnection left(std::move(a));
  FramedConnection right(std::move(b));
  Frame f = PingFrame();
  f.trace_id = 0x0123456789abcdefull;
  f.trace_parent = 0xfedcba9876543210ull;
  f.sampled = true;
  ASSERT_TRUE(left.SendFrame(f).ok());
  Result<Frame> got = right.RecvFrame(milliseconds(200));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->trace_id, f.trace_id);
  EXPECT_EQ(got->trace_parent, f.trace_parent);
  EXPECT_TRUE(got->sampled);
  // The trace block is stripped before the payload is handed up.
  EXPECT_EQ(got->payload, f.payload);
}

TEST(FrameTest, UntracedFramesAreByteIdenticalToThePreTraceFormat) {
  // An untraced frame must carry zero extra bytes — the trace block is
  // flag-gated, so a fleet mixing traced and untraced clients interops.
  const std::string plain = WireBytes(PingFrame());
  EXPECT_EQ(plain.size(), 24u + PingFrame().payload.size());

  Frame traced = PingFrame();
  traced.trace_id = 7;
  traced.trace_parent = 9;
  traced.sampled = true;
  EXPECT_EQ(WireBytes(traced).size(), plain.size() + kTraceBlockBytes);
}

TEST(FrameTest, EverySingleByteFlipOfATracedFrameIsDetected) {
  // The CRC covers the trace block and the flags bit that announces it: no
  // flip may silently re-parent a span (satellite of the fault sweep).
  Frame traced = PingFrame();
  traced.trace_id = 0x1122334455667788ull;
  traced.trace_parent = 0x99aabbccddeeff00ull;
  traced.sampled = true;
  const std::string bytes = WireBytes(traced);
  ASSERT_EQ(bytes.size(), 24u + kTraceBlockBytes + traced.payload.size());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] ^= 0x01;
    auto [a, b] = CreateInProcessPair();
    ASSERT_TRUE(a->Send(flipped).ok());
    a->Close();
    FramedConnection receiver(std::move(b));
    Result<Frame> got = receiver.RecvFrame(milliseconds(200));
    EXPECT_FALSE(got.ok()) << "flip at byte " << i;
    EXPECT_EQ(got.status().code(), StatusCode::kCorruptedLog)
        << "flip at byte " << i;
  }
}

TEST(FrameTest, OversizedLengthAndForeignMagicAreRejectedEagerly) {
  auto [a, b] = CreateInProcessPair();
  // A foreign protocol speaking first.
  ASSERT_TRUE(a->Send("GET / HTTP/1.1\r\n\r\n").ok());
  FramedConnection receiver(std::move(b));
  EXPECT_EQ(receiver.RecvFrame(milliseconds(200)).status().code(),
            StatusCode::kCorruptedLog);

  // A length field far past the cap must be rejected from the header alone
  // (no allocation, no waiting for 4 GiB that never comes).
  std::string huge = WireBytes(PingFrame());
  huge[4] = '\xff';
  huge[5] = '\xff';
  huge[6] = '\xff';
  huge[7] = '\x7f';
  auto [c, d] = CreateInProcessPair();
  ASSERT_TRUE(c->Send(huge).ok());
  FramedConnection receiver2(std::move(d));
  EXPECT_EQ(receiver2.RecvFrame(milliseconds(200)).status().code(),
            StatusCode::kCorruptedLog);
}

// -- Message codec -----------------------------------------------------------

TEST(MessageTest, RequestRoundTripsAllFields) {
  Request request;
  request.op = "update";
  request.tenant = "acme";
  request.deadline_ms = 250;
  request.params["property"] = "f";
  request.params["from"] = "17";
  request.body = "product(A, B)\nwith raw \x01 bytes";
  Result<Request> back = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->op, "update");
  EXPECT_EQ(back->tenant, "acme");
  EXPECT_EQ(back->deadline_ms, 250u);
  EXPECT_EQ(back->params, request.params);
  EXPECT_EQ(back->body, request.body);  // bodies travel verbatim
}

TEST(MessageTest, ResponseRoundTripsAllFields) {
  Response response;
  response.code = StatusCode::kResourceExhausted;
  response.message = "tenant saturated";
  response.retry_after_ms = 12;
  response.applied_sequence = 9;
  response.leader_sequence = 11;
  response.body = "A(1) B(2)\n";
  Result<Response> back = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(back->message, "tenant saturated");
  EXPECT_EQ(back->retry_after_ms, 12u);
  EXPECT_EQ(back->applied_sequence, 9u);
  EXPECT_EQ(back->leader_sequence, 11u);
  EXPECT_EQ(back->body, "A(1) B(2)\n");
}

TEST(MessageTest, HeaderValuesCannotSmuggleLineBreaks) {
  Request request;
  request.op = "ping";
  request.tenant = "evil\nop shutdown";  // header-injection attempt
  Result<Request> back = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->tenant, "evil?op shutdown");
}

TEST(MessageTest, EveryTruncationAndFlipOfAMessageIsTypedNeverACrash) {
  Request request;
  request.op = "update";
  request.tenant = "acme";
  request.deadline_ms = 99;
  request.params["property"] = "f";
  request.body = "join[self = A](A, Af)";
  const std::string bytes = EncodeRequest(request);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const Status status =
        DecodeRequest(std::string_view(bytes).substr(0, cut)).status();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << "cut " << cut;
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string flipped = bytes;
    flipped[i] ^= 0x04;
    (void)DecodeRequest(flipped);  // must not crash; outcome may be either
  }
  EXPECT_EQ(DecodeRequest("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(DecodeResponse("body 0\n").status().code(),
            StatusCode::kInvalidArgument);  // missing code
  EXPECT_EQ(DecodeRequest("op ping\nbody 5\nab").status().code(),
            StatusCode::kInvalidArgument);  // body length lies
}

// -- Service fixture ---------------------------------------------------------

class NetServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = schema_.AddClass("A").value();
    b_ = schema_.AddClass("B").value();
    f_ = schema_.AddProperty("f", a_, b_).value();
  }

  TenantConfig Tenant(const std::string& name) const {
    TenantConfig config;
    config.name = name;
    return config;
  }

  std::unique_ptr<Server> MakeServer(const std::string& dir,
                                     std::vector<TenantConfig> tenants,
                                     ServerOptions options = {}) {
    options.data_dir = dir;
    options.schema = &schema_;
    Result<std::unique_ptr<Server>> server =
        Server::Create(std::move(options), std::move(tenants));
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return std::move(server).value();
  }

  /// A dialer that opens an in-process session on `server` per call.
  static Dialer DialerFor(Server* server) {
    return [server]() -> Result<ConnectionPtr> {
      auto [client_end, server_end] = CreateInProcessPair();
      server->Serve(std::move(server_end));
      return std::move(client_end);
    };
  }

  Client::Options ClientOptions(Server* server, const std::string& tenant,
                                std::uint32_t max_attempts = 5) const {
    Client::Options options;
    options.tenant = tenant;
    options.dial = DialerFor(server);
    options.retry.max_attempts = max_attempts;
    options.recv_timeout = milliseconds(200);
    return options;
  }

  /// Asserts the call succeeded end to end and returns the response.
  Response MustOk(Result<Response> result) {
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return Response{};
    EXPECT_EQ(result->code, StatusCode::kOk) << result->message;
    return *std::move(result);
  }

  Schema schema_;
  ClassId a_ = 0, b_ = 0;
  PropertyId f_ = 0;
};

// -- End-to-end request/response ---------------------------------------------

TEST_F(NetServiceTest, PingUpdateDeltaQueryExplainEndToEnd) {
  auto server = MakeServer(MakeTempDir("srv"), {Tenant("acme")});
  Client client(ClientOptions(server.get(), "acme"));

  Response pong = MustOk(client.Ping());
  EXPECT_EQ(pong.applied_sequence, 0u);

  MustOk(client.ApplyDelta(
      "delta { add object A(1); add object A(2); add object B(5); }"));
  Response updated = MustOk(client.Update("f", "product(A, B)"));
  EXPECT_EQ(updated.applied_sequence, 2u);

  Response rows = MustOk(client.Query("Af"));
  EXPECT_EQ(rows.body, "A(1) B(5)\nA(2) B(5)\n");
  EXPECT_EQ(rows.applied_sequence, 2u);
  EXPECT_EQ(rows.leader_sequence, 2u);

  Response plan = MustOk(client.Explain("project[A](join[self = A]("
                                        "rename[A -> self](A), Af))"));
  EXPECT_FALSE(plan.body.empty());
  EXPECT_NE(plan.body.find("Project"), std::string::npos);

  // The server state is the durable store's state.
  DurableStore* store = server->store("acme");
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->last_sequence(), 2u);

  // Semantic errors come back typed, not as transport failures.
  Result<Response> bad = client.Query("union(A)");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->code, StatusCode::kInvalidArgument);
  Result<Response> unknown_rel = client.Query("Nope");
  ASSERT_TRUE(unknown_rel.ok());
  EXPECT_NE(unknown_rel->code, StatusCode::kOk);
}

TEST_F(NetServiceTest, TenantsAreIsolatedStores) {
  auto server = MakeServer(MakeTempDir("srv"),
                           {Tenant("alpha"), Tenant("beta")});
  Client alpha(ClientOptions(server.get(), "alpha"));
  Client beta(ClientOptions(server.get(), "beta"));

  MustOk(alpha.ApplyDelta("delta { add object A(1); }"));
  MustOk(beta.ApplyDelta("delta { add object A(2); add object A(3); }"));

  EXPECT_EQ(MustOk(alpha.Query("A")).body, "A(1)\n");
  EXPECT_EQ(MustOk(beta.Query("A")).body, "A(2)\nA(3)\n");
  EXPECT_EQ(server->store("alpha")->last_sequence(), 1u);
  EXPECT_EQ(server->store("beta")->last_sequence(), 1u);

  Result<Response> missing = alpha.Call([] {
    Request r;
    r.op = "ping";
    r.tenant = "nobody";
    return r;
  }());
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->code, StatusCode::kNotFound);
}

TEST_F(NetServiceTest, RequestDeadlineBoundsTheAdmissionQueueWait) {
  // A tenant that can never admit anything: every request waits in the
  // queue until its own deadline expires. This isolates the deadline
  // plumbing from timing flakiness — no execution is involved at all.
  TenantConfig never = Tenant("never");
  never.max_concurrency = 0;
  auto server = MakeServer(MakeTempDir("srv"), {never});
  Client client(ClientOptions(server.get(), "never", /*max_attempts=*/1));

  Request request;
  request.op = "update";
  request.deadline_ms = 30;
  request.params["property"] = "f";
  request.body = "Af";
  const auto started = std::chrono::steady_clock::now();
  Result<Response> response = client.Call(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kDeadlineExceeded);
  EXPECT_GE(std::chrono::steady_clock::now() - started, milliseconds(25));
}

TEST_F(NetServiceTest, RequestDeadlineCutsOffAnExpensiveQueryMidExecution) {
  auto server = MakeServer(MakeTempDir("srv"), {Tenant("acme")});
  Client client(ClientOptions(server.get(), "acme", /*max_attempts=*/1));

  // 400 x 400 product: enough materialization work that a 1 ms budget
  // trips the ExecContext clock long before the result is complete.
  std::string delta = "delta {\n";
  for (int i = 1; i <= 400; ++i) {
    delta += "  add object A(" + std::to_string(i) + ");\n";
    delta += "  add object B(" + std::to_string(i) + ");\n";
  }
  delta += "}";
  MustOk(client.ApplyDelta(delta));

  Request request;
  request.op = "query";
  request.deadline_ms = 1;
  request.body = "product(A, B)";
  Result<Response> response = client.Call(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kDeadlineExceeded)
      << response->message;
}

// -- Admission control -------------------------------------------------------

TEST_F(NetServiceTest, SaturatedTenantShedsWithRetryableBackoffHint) {
  TenantConfig tiny = Tenant("tiny");
  tiny.max_concurrency = 0;  // never admits
  tiny.max_queue = 0;        // never queues: every arrival is shed
  ServerOptions options;
  options.suggested_backoff_ms = 3;
  MetricsRegistry metrics;
  options.metrics = &metrics;
  auto server = MakeServer(MakeTempDir("srv"), {tiny}, std::move(options));

  Client::Options client_options =
      ClientOptions(server.get(), "tiny", /*max_attempts=*/3);
  client_options.metrics = &metrics;
  Client client(std::move(client_options));
  Result<Response> response = client.Update("f", "Af");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kResourceExhausted);
  EXPECT_GE(response->retry_after_ms, 3u);  // the server's explicit hint
  // The client consumed its whole retry budget honoring the hint.
  EXPECT_EQ(client.last_call_retries(), 2u);
  EXPECT_EQ(metrics.CounterNamed("net.shed").value(), 3u);
  EXPECT_EQ(metrics.CounterNamed("net.client.retries").value(), 2u);

  // Reads on a *different* tenant of the same server are unaffected:
  // back-pressure is per tenant, not per server.
}

TEST_F(NetServiceTest, QueuedRequestsAdmitInTurnUnderConcurrencyOne) {
  TenantConfig one = Tenant("one");
  one.max_concurrency = 1;
  one.max_queue = 32;
  one.default_deadline = milliseconds(5000);
  ServerOptions options;
  options.own_pool_workers = 8;
  auto server = MakeServer(MakeTempDir("srv"), {one}, std::move(options));

  // Eight threads each commit four disjoint deltas through the width-one
  // admission gate. Everything must eventually commit; nothing may be lost
  // or doubled.
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&, t] {
      Client client(ClientOptions(server.get(), "one", /*max_attempts=*/8));
      for (int i = 0; i < 4; ++i) {
        const int id = t * 100 + i;
        Result<Response> r = client.ApplyDelta(
            "delta { add object A(" + std::to_string(id) + "); }");
        if (!r.ok() || r->code != StatusCode::kOk) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server->store("one")->last_sequence(), 32u);
  std::uint64_t sequence = 0;
  const Instance state = server->store("one")->SnapshotState(&sequence);
  EXPECT_EQ(sequence, 32u);
  std::size_t objects = 0;
  for (std::uint32_t t = 0; t < 8; ++t) {
    for (std::uint32_t i = 0; i < 4; ++i) {
      objects += state.HasObject(ObjectId(a_, t * 100 + i)) ? 1u : 0u;
    }
  }
  EXPECT_EQ(objects, 32u);
}

// -- Session dedup and protocol errors ---------------------------------------

TEST_F(NetServiceTest, ReplayedRequestIdReturnsCachedResponseWithoutRerun) {
  auto server = MakeServer(MakeTempDir("srv"), {Tenant("acme")});
  auto [client_end, server_end] = CreateInProcessPair();
  server->Serve(std::move(server_end));
  FramedConnection conn(std::move(client_end));

  Request update;
  update.op = "delta";
  update.tenant = "acme";
  update.body = "delta { add object A(7); }";
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.request_id = 10;
  frame.payload = EncodeRequest(update);

  ASSERT_TRUE(conn.SendFrame(frame).ok());
  Result<Frame> first = conn.RecvFrame(milliseconds(500));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Result<Response> decoded = DecodeResponse(first->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kOk);
  EXPECT_EQ(server->store("acme")->last_sequence(), 1u);

  // The client "lost" the response and retries the same id: the session
  // resends its cached response and the store does NOT commit again.
  ASSERT_TRUE(conn.SendFrame(frame).ok());
  Result<Frame> replay = conn.RecvFrame(milliseconds(500));
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->payload, first->payload);
  EXPECT_EQ(server->store("acme")->last_sequence(), 1u);

  // A regressing id is a protocol violation: typed error, session closed.
  frame.request_id = 3;
  ASSERT_TRUE(conn.SendFrame(frame).ok());
  Result<Frame> violation = conn.RecvFrame(milliseconds(500));
  ASSERT_TRUE(violation.ok()) << violation.status().ToString();
  Result<Response> verdict = DecodeResponse(violation->payload);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(verdict->code, StatusCode::kInvalidArgument);
  EXPECT_EQ(server->store("acme")->last_sequence(), 1u);
}

// -- Fault matrix ------------------------------------------------------------

TEST_F(NetServiceTest, ClientSurvivesEveryFaultModeAtEachEarlyFrame) {
  // Fault mode x frame ordinal: inject each network fault at each of the
  // first frames of the client's conversation and require the governed
  // retry loop to finish the call anyway. Queries are repeated after each
  // storm on a *clean* client to prove the server survived undamaged.
  const std::string dir = MakeTempDir("srv");
  auto server = MakeServer(dir, {Tenant("acme")});
  {
    Client seed(ClientOptions(server.get(), "acme"));
    MustOk(seed.ApplyDelta(
        "delta { add object A(1); add object B(5); }"));
    MustOk(seed.Update("f", "product(A, B)"));
  }
  const std::string baseline = "A(1) B(5)\n";

  struct Mode {
    const char* name;
    FaultInjector (*make)(std::uint64_t nth);
  };
  const Mode kModes[] = {
      {"drop", [](std::uint64_t n) { return FaultInjector::DropFrameAt(n); }},
      {"duplicate",
       [](std::uint64_t n) { return FaultInjector::DuplicateFrameAt(n); }},
      {"truncate",
       [](std::uint64_t n) { return FaultInjector::TruncateFrameAt(n, 9); }},
      {"delay",
       [](std::uint64_t n) { return FaultInjector::DelayFrameAt(n, 5); }},
      {"disconnect",
       [](std::uint64_t n) { return FaultInjector::DisconnectAt(n); }},
  };

  for (const Mode& mode : kModes) {
    // A clean round trip is two net ops (one send probe, one recv probe),
    // so two back-to-back calls cover ordinals 1..4 densely.
    for (std::uint64_t nth = 1; nth <= 4; ++nth) {
      FaultInjector injector = mode.make(nth);
      Client::Options options = ClientOptions(server.get(), "acme",
                                              /*max_attempts=*/6);
      options.injector = &injector;
      Client client(std::move(options));
      for (int call = 0; call < 2; ++call) {
        Result<Response> response = client.Query("Af");
        ASSERT_TRUE(response.ok())
            << mode.name << " at op " << nth << " call " << call << ": "
            << response.status().ToString();
        EXPECT_EQ(response->code, StatusCode::kOk)
            << mode.name << " at op " << nth << ": " << response->message;
        EXPECT_EQ(response->body, baseline)
            << mode.name << " at op " << nth;
      }
      EXPECT_GE(injector.net_faults_fired(), 1u)
          << mode.name << " at op " << nth << " never fired";
    }
    // The server must still be pristine for a clean client.
    Client clean(ClientOptions(server.get(), "acme"));
    EXPECT_EQ(MustOk(clean.Query("Af")).body, baseline) << mode.name;
  }
  // No fault mode may have smuggled in an extra commit: the dedup and
  // idempotence story, checked at the WAL.
  EXPECT_EQ(server->store("acme")->last_sequence(), 2u);
}

TEST_F(NetServiceTest, ServerSideFaultsCannotCorruptTenantState) {
  // The server's own endpoints inject faults this time (shared injector
  // across all sessions); writes keep retrying until acknowledged, and the
  // acknowledged state must survive.
  const std::string dir = MakeTempDir("srv");
  FaultInjector injector = FaultInjector::DropFrameAt(2);
  ServerOptions options;
  options.injector = &injector;
  auto server = MakeServer(dir, {Tenant("acme")}, std::move(options));

  Client client(ClientOptions(server.get(), "acme", /*max_attempts=*/6));
  Result<Response> response =
      client.ApplyDelta("delta { add object A(3); }");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->code, StatusCode::kOk) << response->message;
  EXPECT_EQ(server->store("acme")->last_sequence(), 1u);
  EXPECT_TRUE(
      server->store("acme")->SnapshotState().HasObject(ObjectId(a_, 3)));
}

// -- Graceful drain ----------------------------------------------------------

TEST_F(NetServiceTest, DrainSaysGoodbyeAndRefusesNewSessions) {
  ServerOptions options;
  options.recv_timeout = milliseconds(10);  // fast drain detection
  auto server = MakeServer(MakeTempDir("srv"), {Tenant("acme")},
                           std::move(options));
  Client client(ClientOptions(server.get(), "acme"));
  MustOk(client.Ping());  // session established and idle

  server->Drain();
  EXPECT_EQ(server->active_sessions(), 0u);
  EXPECT_TRUE(server->draining());

  // The old session was told goodbye; a new dial gets a closed connection.
  Client late(ClientOptions(server.get(), "acme", /*max_attempts=*/2));
  Result<Response> refused = late.Ping();
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);

  server->Drain();  // idempotent
}

// -- Replication -------------------------------------------------------------

class ReplicationTest : public NetServiceTest {
 protected:
  FollowerReplica::Options ReplicaOptions(Server* leader,
                                          const std::string& tenant) {
    FollowerReplica::Options options;
    options.tenant = tenant;
    options.dial = DialerFor(leader);
    options.schema = &schema_;
    options.recv_timeout = milliseconds(500);
    return options;
  }

  /// Pulls until the follower reports no lag (bounded rounds).
  void CatchUp(FollowerReplica& replica) {
    for (int round = 0; round < 32; ++round) {
      ASSERT_TRUE(replica.TailOnce().ok());
      std::uint64_t applied = 0, leader = 0;
      (void)replica.Read(&applied, &leader);
      if (applied == leader) return;
    }
    FAIL() << "replica never caught up";
  }
};

TEST_F(ReplicationTest, FollowerConvergesToBitIdenticalState) {
  auto leader = MakeServer(MakeTempDir("leader"), {Tenant("acme")});
  Client client(ClientOptions(leader.get(), "acme"));
  MustOk(client.ApplyDelta(
      "delta { add object A(1); add object A(2); add object B(9); }"));
  MustOk(client.Update("f", "product(A, B)"));
  MustOk(client.ApplyDelta("delta { del object A(2); }"));

  auto replica = std::move(FollowerReplica::Create(
                               ReplicaOptions(leader.get(), "acme")))
                     .value();
  CatchUp(*replica);

  std::uint64_t applied = 0, leader_seq = 0;
  const Instance follower_state = replica->Read(&applied, &leader_seq);
  EXPECT_EQ(applied, 3u);
  EXPECT_EQ(leader_seq, 3u);
  EXPECT_TRUE(replica->healthy());
  EXPECT_EQ(replica->resyncs(), 0u);
  // Bit-identical: the replication stream is the WAL, and the WAL replay
  // path is the recovery path.
  EXPECT_EQ(InstanceToText(follower_state),
            InstanceToText(leader->store("acme")->SnapshotState()));

  // Incremental: more commits, another round, still identical.
  MustOk(client.ApplyDelta("delta { add object A(4); }"));
  CatchUp(*replica);
  EXPECT_EQ(InstanceToText(replica->Read(nullptr, nullptr)),
            InstanceToText(leader->store("acme")->SnapshotState()));
}

TEST_F(ReplicationTest, TruncatedLeaderHistoryForcesSnapshotResync) {
  // Checkpoints truncate the leader's WAL, so a follower starting from
  // sequence 1 cannot pull the early records — it must detect the gap and
  // resync from the snapshot instead of serving a divergent state.
  TenantConfig tenant = Tenant("acme");
  tenant.store_options.snapshot_every_n_commits = 2;
  auto leader = MakeServer(MakeTempDir("leader"), {tenant});
  Client client(ClientOptions(leader.get(), "acme"));
  for (int i = 1; i <= 4; ++i) {
    MustOk(client.ApplyDelta("delta { add object A(" + std::to_string(i) +
                             "); }"));
  }

  auto replica = std::move(FollowerReplica::Create(
                               ReplicaOptions(leader.get(), "acme")))
                     .value();
  CatchUp(*replica);
  EXPECT_EQ(replica->resyncs(), 1u);
  EXPECT_EQ(replica->applied_sequence(), 4u);
  EXPECT_EQ(InstanceToText(replica->Read(nullptr, nullptr)),
            InstanceToText(leader->store("acme")->SnapshotState()));

  // After the resync, tailing resumes incrementally — no further resyncs.
  MustOk(client.ApplyDelta("delta { add object A(9); }"));
  CatchUp(*replica);
  EXPECT_EQ(replica->resyncs(), 1u);
  EXPECT_EQ(replica->applied_sequence(), 5u);
}

TEST_F(ReplicationTest, LeaderCrashAtEveryCommitProbeThenReopenAndRetail) {
  // The replication analogue of the store's recovery matrix: a leader that
  // dies mid-commit (at each exec/storage probe ordinal) is reopened, and
  // the follower re-tails. The follower must land exactly on the leader's
  // recovered state — the committed prefix — at every ordinal.
  for (std::uint64_t nth = 1; nth <= 8; ++nth) {
    const std::string dir = MakeTempDir("leader" + std::to_string(nth));
    bool acked = false;
    {
      auto healthy = MakeServer(dir, {Tenant("acme")});
      Client seed(ClientOptions(healthy.get(), "acme"));
      MustOk(seed.ApplyDelta("delta { add object A(1); }"));
    }
    {
      // Observe-only while the server opens (recovery replay fires exec
      // probes of its own); armed just before the wounded commit.
      FaultInjector injector;
      TenantConfig tenant = Tenant("acme");
      tenant.store_options.injector = &injector;
      auto wounded = MakeServer(dir, {tenant});
      injector = FaultInjector::FireAtNthProbe(nth);
      Client client(ClientOptions(wounded.get(), "acme",
                                  /*max_attempts=*/1));
      Result<Response> response =
          client.ApplyDelta("delta { add object A(2); }");
      ASSERT_TRUE(response.ok()) << response.status().ToString();
      acked = response->code == StatusCode::kOk;
      wounded->Drain();
    }
    // Reopen (recovery) and re-tail.
    auto reopened = MakeServer(dir, {Tenant("acme")});
    const Instance recovered = reopened->store("acme")->SnapshotState();
    if (acked) {
      EXPECT_TRUE(recovered.HasObject(ObjectId(a_, 2))) << "probe " << nth;
    }
    EXPECT_TRUE(recovered.HasObject(ObjectId(a_, 1))) << "probe " << nth;

    auto replica = std::move(FollowerReplica::Create(
                                 ReplicaOptions(reopened.get(), "acme")))
                       .value();
    CatchUp(*replica);
    EXPECT_EQ(InstanceToText(replica->Read(nullptr, nullptr)),
              InstanceToText(recovered))
        << "probe " << nth;
  }
}

TEST_F(ReplicationTest, ReplicaBackedTenantServesReadsAndRefusesWrites) {
  auto leader = MakeServer(MakeTempDir("leader"), {Tenant("acme")});
  Client leader_client(ClientOptions(leader.get(), "acme"));
  MustOk(leader_client.ApplyDelta(
      "delta { add object A(1); add object B(2); }"));
  MustOk(leader_client.Update("f", "product(A, B)"));

  auto replica = std::move(FollowerReplica::Create(
                               ReplicaOptions(leader.get(), "acme")))
                     .value();
  CatchUp(*replica);

  auto follower = MakeServer(MakeTempDir("follower"), {});
  ASSERT_TRUE(follower->ServeReplica("acme", replica.get()).ok());
  Client follower_client(ClientOptions(follower.get(), "acme"));

  Response rows = MustOk(follower_client.Query("Af"));
  EXPECT_EQ(rows.body, "A(1) B(2)\n");
  EXPECT_EQ(rows.applied_sequence, 2u);
  EXPECT_EQ(rows.leader_sequence, 2u);
  // EXPLAIN works at the follower too — plans need only the catalog.
  EXPECT_FALSE(MustOk(follower_client.Explain("Af")).body.empty());

  Result<Response> write = follower_client.ApplyDelta(
      "delta { add object A(5); }");
  ASSERT_TRUE(write.ok());
  EXPECT_EQ(write->code, StatusCode::kFailedPrecondition);
  Result<Response> pull = follower_client.Call([] {
    Request r;
    r.op = "pull";
    return r;
  }());
  ASSERT_TRUE(pull.ok());
  EXPECT_EQ(pull->code, StatusCode::kFailedPrecondition);
}

TEST_F(ReplicationTest, FailoverClientScreensStaleFollowersAndDeadOnes) {
  auto leader = MakeServer(MakeTempDir("leader"), {Tenant("acme")});
  Client leader_seed(ClientOptions(leader.get(), "acme"));
  MustOk(leader_seed.ApplyDelta(
      "delta { add object A(1); add object A(2); }"));

  FollowerReplica::Options replica_options =
      ReplicaOptions(leader.get(), "acme");
  replica_options.pull_batch = 1;  // so the follower can be behind knowingly
  auto replica =
      std::move(FollowerReplica::Create(std::move(replica_options))).value();
  CatchUp(*replica);

  auto follower = MakeServer(MakeTempDir("follower"), {});
  ASSERT_TRUE(follower->ServeReplica("acme", replica.get()).ok());

  Client via_follower(ClientOptions(follower.get(), "acme",
                                    /*max_attempts=*/1));
  Client via_leader(ClientOptions(leader.get(), "acme", /*max_attempts=*/1));
  FailoverReadClient failover(
      {{&via_follower, /*is_leader=*/false}, {&via_leader, true}},
      /*max_lag=*/0);

  // Fresh follower: reads are served there.
  Response fresh = std::move(failover.Query("A")).value();
  EXPECT_EQ(fresh.body, "A(1)\nA(2)\n");
  EXPECT_EQ(failover.stale_rejections(), 0u);

  // Leader advances by 2; one pull round applies 1 record (batch = 1), so
  // the follower KNOWS it is 1 behind — the failover client must reject it
  // and fall back to the leader for the authoritative answer.
  MustOk(leader_seed.ApplyDelta("delta { add object A(3); }"));
  MustOk(leader_seed.ApplyDelta("delta { add object A(4); }"));
  ASSERT_TRUE(replica->TailOnce().ok());
  EXPECT_LT(replica->applied_sequence(), replica->leader_sequence());
  Response authoritative = std::move(failover.Query("A")).value();
  EXPECT_EQ(authoritative.body, "A(1)\nA(2)\nA(3)\nA(4)\n");
  EXPECT_EQ(failover.stale_rejections(), 1u);

  // A drained (dead) follower: counted dead, leader still answers.
  CatchUp(*replica);
  follower->Drain();
  Response survived = std::move(failover.Query("A")).value();
  EXPECT_EQ(survived.body, "A(1)\nA(2)\nA(3)\nA(4)\n");
  EXPECT_GE(failover.dead_targets_seen(), 1u);
}

// -- TCP smoke ---------------------------------------------------------------

TEST_F(NetServiceTest, TcpTransportServesTheSameProtocol) {
  Result<std::unique_ptr<TcpListener>> listener = TcpListener::Listen(0);
  if (!listener.ok()) {
    GTEST_SKIP() << "sockets unavailable: " << listener.status().ToString();
  }
  auto server = MakeServer(MakeTempDir("srv"), {Tenant("acme")});
  std::atomic<bool> stop{false};
  std::thread acceptor([&] {
    while (!stop.load()) {
      Result<ConnectionPtr> conn = (*listener)->Accept(milliseconds(50));
      if (conn.ok()) server->Serve(std::move(conn).value());
    }
  });

  const std::uint16_t port = (*listener)->port();
  Client::Options options;
  options.tenant = "acme";
  options.dial = [port]() { return TcpDial(port, milliseconds(1000)); };
  options.recv_timeout = milliseconds(1000);
  options.retry.max_attempts = 3;
  {
    Client client(std::move(options));
    Response pong = MustOk(client.Ping());
    EXPECT_EQ(pong.applied_sequence, 0u);
    MustOk(client.ApplyDelta(
        "delta { add object A(1); add object B(2); }"));
    MustOk(client.Update("f", "product(A, B)"));
    EXPECT_EQ(MustOk(client.Query("Af")).body, "A(1) B(2)\n");
  }
  stop.store(true);
  acceptor.join();
  EXPECT_EQ(server->store("acme")->last_sequence(), 2u);
}

// -- Observability -----------------------------------------------------------

TEST_F(NetServiceTest, ServiceEmitsNetMetricsAndStatsOp) {
  MetricsRegistry metrics;
  ServerOptions options;
  options.metrics = &metrics;
  auto server = MakeServer(MakeTempDir("srv"), {Tenant("acme")},
                           std::move(options));
  Client::Options client_options = ClientOptions(server.get(), "acme");
  client_options.metrics = &metrics;
  Client client(std::move(client_options));

  MustOk(client.ApplyDelta("delta { add object A(1); }"));
  MustOk(client.Query("A"));
  Response stats = MustOk(client.Call([] {
    Request r;
    r.op = "stats";
    return r;
  }()));

  EXPECT_GE(metrics.CounterNamed("net.requests").value(), 3u);
  EXPECT_GE(metrics.CounterNamed("net.frames_sent").value(), 3u);
  EXPECT_GE(metrics.CounterNamed("net.bytes_recv").value(), 1u);
  EXPECT_GE(metrics.HistogramNamed("net.request_ns").count(), 3u);
  EXPECT_NE(stats.body.find("net.requests"), std::string::npos);
}

// -- Distributed tracing and per-tenant telemetry ----------------------------

TEST_F(ReplicationTest, OneWriteYieldsOneTraceFamilyAcrossClientLeaderAndFollower) {
  // The tentpole acceptance check: a single traced write produces ONE
  // family — client call, server request handling, admission, execution,
  // durable commit and fsync, and the follower's asynchronous replay — all
  // under the client-minted trace id, with remote-parent edges stitching
  // the process boundaries.
  Tracer tracer;
  MetricsRegistry metrics;
  ServerOptions options;
  options.tracer = &tracer;
  options.metrics = &metrics;
  auto leader = MakeServer(MakeTempDir("leader"), {Tenant("acme")},
                           std::move(options));

  Client::Options client_options = ClientOptions(leader.get(), "acme");
  client_options.tracer = &tracer;
  Client client(std::move(client_options));
  MustOk(client.ApplyDelta("delta { add object A(1); add object B(5); }"));
  const std::uint64_t delta_trace = client.last_trace_id();
  MustOk(client.Update("f", "product(A, B)"));
  const std::uint64_t trace_id = client.last_trace_id();
  ASSERT_NE(trace_id, 0u);
  EXPECT_NE(trace_id, delta_trace);  // one family per call

  FollowerReplica::Options replica_options =
      ReplicaOptions(leader.get(), "acme");
  replica_options.tracer = &tracer;
  replica_options.metrics = &metrics;
  auto replica =
      std::move(FollowerReplica::Create(std::move(replica_options))).value();
  CatchUp(*replica);

  std::set<std::string> names;
  std::uint64_t call_span = 0;
  std::uint64_t request_span = 0, request_remote = 0;
  std::uint64_t replay_remote = 0;
  for (const SpanEvent& e : tracer.Events()) {
    if (e.trace_id != trace_id) continue;
    names.insert(e.name);
    const std::string_view name(e.name);
    if (name == "net/call") call_span = e.id;
    if (name == "net/request") {
      request_span = e.id;
      request_remote = e.remote_parent;
    }
    if (name == "net/replay") replay_remote = e.remote_parent;
  }
  for (const char* expected :
       {"net/call", "net/request", "net/admission", "net/execute",
        "store/commit", "wal/fsync", "net/replay"}) {
    EXPECT_EQ(names.count(expected), 1u) << expected;
  }
  // The remote edges stitch the hops together: the server's request span
  // continues the client's call span, and the follower's replay span
  // continues the leader-side request span the commit recorded.
  EXPECT_NE(call_span, 0u);
  EXPECT_EQ(request_remote, call_span);
  EXPECT_EQ(replay_remote, request_span);

  // The chrome export carries the family id tools/trace_merge.py groups on.
  std::ostringstream chrome;
  tracer.WriteChromeTrace(chrome);
  EXPECT_NE(chrome.str().find("net/replay"), std::string::npos);
  EXPECT_NE(chrome.str().find("\"trace_id\""), std::string::npos);

  // Both ends published per-tenant replication gauges, and the follower is
  // caught up — zero lag on each side.
  std::ostringstream text;
  metrics.WriteText(text);
  const std::string exported = text.str();
  EXPECT_NE(exported.find("tenant.replication.lag{tenant=\"acme\"} 0"),
            std::string::npos);
  EXPECT_NE(
      exported.find("tenant.replication.follower_lag{tenant=\"acme\"} 0"),
      std::string::npos);
  EXPECT_NE(exported.find("tenant.replication.ms_since_apply{tenant=\"acme\"}"),
            std::string::npos);
}

TEST_F(NetServiceTest, StatsOpExportsPerTenantTailsQueueAndActiveGauges) {
  MetricsRegistry metrics;
  ServerOptions options;
  options.metrics = &metrics;
  auto server =
      MakeServer(MakeTempDir("srv"), {Tenant("acme")}, std::move(options));
  Client client(ClientOptions(server.get(), "acme"));
  MustOk(client.ApplyDelta("delta { add object A(1); add object B(2); }"));
  MustOk(client.Update("f", "product(A, B)"));
  MustOk(client.Query("Af"));

  Response stats = MustOk(client.Call([] {
    Request r;
    r.op = "stats";
    return r;
  }()));
  for (const char* needle : {
           "tenant.update_ns_p50{tenant=\"acme\"}",
           "tenant.update_ns_p99{tenant=\"acme\"}",
           "tenant.update_ns_p999{tenant=\"acme\"}",
           "tenant.delta_ns_count{tenant=\"acme\"}",
           "tenant.query_ns_p999{tenant=\"acme\"}",
           "tenant.queue_wait_ns_count{tenant=\"acme\"}",
           "tenant.queue_depth{tenant=\"acme\"}",
           "tenant.active{tenant=\"acme\"}",
       }) {
    EXPECT_NE(stats.body.find(needle), std::string::npos) << needle;
  }
  // Each op fed its own histogram exactly once; every admission fed the
  // queue-wait histogram; nothing is in flight once the calls returned.
  EXPECT_EQ(
      metrics.HistogramLabeled("tenant.update_ns", "tenant", "acme").count(),
      1u);
  EXPECT_EQ(
      metrics.HistogramLabeled("tenant.delta_ns", "tenant", "acme").count(),
      1u);
  EXPECT_EQ(
      metrics.HistogramLabeled("tenant.query_ns", "tenant", "acme").count(),
      1u);
  EXPECT_EQ(
      metrics.HistogramLabeled("tenant.queue_wait_ns", "tenant", "acme")
          .count(),
      3u);
  EXPECT_EQ(metrics.GaugeLabeled("tenant.active", "tenant", "acme").value(),
            0);
  EXPECT_EQ(
      metrics.GaugeLabeled("tenant.queue_depth", "tenant", "acme").value(),
      0);

  // format=prometheus serves the scrape exposition through the same op.
  Response prom = MustOk(client.Call([] {
    Request r;
    r.op = "stats";
    r.params["format"] = "prometheus";
    return r;
  }()));
  for (const char* needle : {
           "# TYPE setrec_tenant_update_ns summary",
           "setrec_tenant_update_ns{tenant=\"acme\",quantile=\"0.5\"}",
           "setrec_tenant_update_ns{tenant=\"acme\",quantile=\"0.999\"}",
           "setrec_tenant_update_ns_count{tenant=\"acme\"}",
           "# TYPE setrec_tenant_queue_depth gauge",
       }) {
    EXPECT_NE(prom.body.find(needle), std::string::npos) << needle;
  }
}

TEST_F(NetServiceTest, ShedsAndDeadlineMissesCountPerTenant) {
  TenantConfig tiny = Tenant("tiny");
  tiny.max_concurrency = 0;
  tiny.max_queue = 0;  // every arrival is shed
  MetricsRegistry metrics;
  ServerOptions options;
  options.metrics = &metrics;
  auto server = MakeServer(MakeTempDir("srv"), {tiny}, std::move(options));
  Client client(ClientOptions(server.get(), "tiny", /*max_attempts=*/3));
  Result<Response> shed = client.Update("f", "Af");
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ(shed->code, StatusCode::kResourceExhausted);
  EXPECT_EQ(metrics.CounterLabeled("tenant.shed", "tenant", "tiny").value(),
            3u);

  // A queue-capable but never-admitting tenant turns waits into per-tenant
  // deadline misses.
  TenantConfig never = Tenant("never");
  never.max_concurrency = 0;
  never.max_queue = 8;
  MetricsRegistry never_metrics;
  ServerOptions never_options;
  never_options.metrics = &never_metrics;
  auto never_server =
      MakeServer(MakeTempDir("srv2"), {never}, std::move(never_options));
  Client never_client(
      ClientOptions(never_server.get(), "never", /*max_attempts=*/1));
  Request request;
  request.op = "query";
  request.deadline_ms = 20;
  request.body = "A";
  Result<Response> missed = never_client.Call(std::move(request));
  ASSERT_TRUE(missed.ok());
  EXPECT_EQ(missed->code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(
      never_metrics.CounterLabeled("tenant.deadline_miss", "tenant", "never")
          .value(),
      1u);
  EXPECT_GE(
      never_metrics.HistogramLabeled("tenant.queue_wait_ns", "tenant", "never")
          .count(),
      1u);
}

TEST_F(NetServiceTest, SlowRequestsAreCapturedWithPlanSpansAndFlightSlice) {
  Tracer tracer;
  MetricsRegistry metrics;
  TenantConfig slow = Tenant("acme");
  slow.slow_request_threshold = std::chrono::nanoseconds(1);  // all are slow
  const std::string dir = MakeTempDir("srv");
  ServerOptions options;
  options.tracer = &tracer;
  options.metrics = &metrics;
  auto server = MakeServer(dir, {slow}, std::move(options));
  Client::Options client_options = ClientOptions(server.get(), "acme");
  client_options.tracer = &tracer;
  Client client(std::move(client_options));
  MustOk(client.ApplyDelta("delta { add object A(1); add object B(2); }"));
  MustOk(client.Update("f", "product(A, B)"));
  const std::uint64_t update_trace = client.last_trace_id();
  MustOk(client.Query("Af"));

  const std::filesystem::path path =
      std::filesystem::path(dir) / "acme" / "slowlog.jsonl";
  ASSERT_TRUE(std::filesystem::exists(path));
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);  // delta, update, query all exceeded 1 ns
  for (const std::string& entry : lines) {
    ASSERT_FALSE(entry.empty());
    EXPECT_EQ(entry.front(), '{');
    EXPECT_EQ(entry.back(), '}');
  }
  EXPECT_NE(lines[1].find("\"op\":\"update\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"op\":\"query\""), std::string::npos);
  EXPECT_NE(
      lines[1].find("\"trace_id\":" + std::to_string(update_trace)),
      std::string::npos);
  // The update and query entries re-ran EXPLAIN ANALYZE; the capture is
  // the paper trail a latency investigation starts from.
  EXPECT_NE(lines[1].find("\"plan\":{"), std::string::npos);
  EXPECT_NE(lines[1].find("\"analyzed\":true"), std::string::npos);
  EXPECT_NE(lines[2].find("\"plan\":{"), std::string::npos);
  EXPECT_NE(lines[2].find("\"analyzed\":true"), std::string::npos);
  // The span slice names the server-side stages of this request's family
  // (the request span itself is still open at capture time).
  EXPECT_NE(lines[1].find("\"spans\":[{"), std::string::npos);
  EXPECT_NE(lines[1].find("net/execute"), std::string::npos);
  EXPECT_NE(lines[1].find("wal/fsync"), std::string::npos);
  EXPECT_NE(lines[1].find("\"flight\":["), std::string::npos);
  EXPECT_EQ(
      metrics.CounterLabeled("tenant.slow_requests", "tenant", "acme").value(),
      3u);
}

TEST_F(NetServiceTest, SpanParentageIsBitStableAcrossEveryFrameFaultMode) {
  // A traced update's family tree — with identical sibling subtrees
  // deduplicated (Tracer::TreeSignatureForTrace) — must be byte-identical
  // whether the conversation ran clean or a frame was dropped, duplicated,
  // truncated, delayed, or the connection cut: a governed retry may
  // re-execute the idempotent statement, but it may never cross-wire,
  // orphan, or re-parent a span.
  TenantConfig tenant = Tenant("acme");
  tenant.incremental_views = false;  // cache hits would reshape re-runs
  Tracer tracer;
  ServerOptions options;
  options.tracer = &tracer;
  auto server = MakeServer(MakeTempDir("srv"), {tenant}, std::move(options));
  {
    Client seed(ClientOptions(server.get(), "acme"));
    MustOk(seed.ApplyDelta("delta { add object A(1); add object B(5); }"));
    // Warm the statement untraced: the first run of the update commits a
    // real delta (with a wal/fsync child); every run after it is a no-op
    // re-application with no WAL record. The baseline must be the steady
    // re-run shape — exactly what a faulted retry re-executes.
    MustOk(seed.Update("f", "product(A, B)"));
  }

  std::string baseline;
  {
    Client::Options clean = ClientOptions(server.get(), "acme");
    clean.tracer = &tracer;
    Client client(std::move(clean));
    MustOk(client.Update("f", "product(A, B)"));
    baseline = tracer.TreeSignatureForTrace(client.last_trace_id());
  }
  ASSERT_NE(baseline.find("net/request"), std::string::npos);
  ASSERT_NE(baseline.find("net/execute"), std::string::npos);

  struct Mode {
    const char* name;
    FaultInjector (*make)(std::uint64_t nth);
  };
  const Mode kModes[] = {
      {"drop", [](std::uint64_t n) { return FaultInjector::DropFrameAt(n); }},
      {"duplicate",
       [](std::uint64_t n) { return FaultInjector::DuplicateFrameAt(n); }},
      {"truncate",
       [](std::uint64_t n) { return FaultInjector::TruncateFrameAt(n, 9); }},
      {"delay",
       [](std::uint64_t n) { return FaultInjector::DelayFrameAt(n, 5); }},
      {"disconnect",
       [](std::uint64_t n) { return FaultInjector::DisconnectAt(n); }},
  };
  for (const Mode& mode : kModes) {
    for (std::uint64_t nth = 1; nth <= 4; ++nth) {
      FaultInjector injector = mode.make(nth);
      Client::Options faulty =
          ClientOptions(server.get(), "acme", /*max_attempts=*/6);
      faulty.injector = &injector;
      faulty.tracer = &tracer;
      Client client(std::move(faulty));
      for (int call = 0; call < 2; ++call) {
        MustOk(client.Update("f", "product(A, B)"));
        EXPECT_EQ(tracer.TreeSignatureForTrace(client.last_trace_id()),
                  baseline)
            << mode.name << " at op " << nth << " call " << call;
      }
    }
  }
}

TEST_F(NetServiceTest, ConcurrentTracedClientsKeepDistinctUncrossedFamilies) {
  TenantConfig tenant = Tenant("acme");
  tenant.incremental_views = false;
  tenant.max_concurrency = 2;  // real interleaving plus queueing
  Tracer tracer;
  ServerOptions options;
  options.tracer = &tracer;
  options.own_pool_workers = 8;
  auto server = MakeServer(MakeTempDir("srv"), {tenant}, std::move(options));
  {
    Client seed(ClientOptions(server.get(), "acme"));
    MustOk(seed.ApplyDelta("delta { add object A(1); add object B(5); }"));
    // Warm the statement so every traced call below is a no-op
    // re-application — all twelve families must then pin one shape.
    MustOk(seed.Update("f", "product(A, B)"));
  }

  constexpr int kThreads = 4, kCalls = 3;
  std::vector<std::uint64_t> ids(
      static_cast<std::size_t>(kThreads * kCalls), 0);
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Client::Options traced =
          ClientOptions(server.get(), "acme", /*max_attempts=*/8);
      traced.tracer = &tracer;
      Client client(std::move(traced));
      for (int i = 0; i < kCalls; ++i) {
        Result<Response> r = client.Update("f", "product(A, B)");
        if (!r.ok() || r->code != StatusCode::kOk) failures.fetch_add(1);
        ids[static_cast<std::size_t>(t * kCalls + i)] = client.last_trace_id();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);

  // Every call minted a distinct, nonzero family id...
  const std::set<std::uint64_t> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), ids.size());
  EXPECT_EQ(distinct.count(0), 0u);

  // ...and no family absorbed another's spans: each holds exactly one
  // client call span and pins the same tree as every other — concurrency
  // cannot reshape or cross-wire parentage.
  std::map<std::uint64_t, int> calls_per_family;
  for (const SpanEvent& e : tracer.Events()) {
    if (std::string_view(e.name) == "net/call") {
      calls_per_family[e.trace_id] += 1;
    }
  }
  const std::string pinned = tracer.TreeSignatureForTrace(ids[0]);
  ASSERT_FALSE(pinned.empty());
  for (std::uint64_t id : ids) {
    EXPECT_EQ(calls_per_family[id], 1) << "trace " << id;
    EXPECT_EQ(tracer.TreeSignatureForTrace(id), pinned) << "trace " << id;
  }
}

}  // namespace
}  // namespace setrec
