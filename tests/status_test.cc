// Tests for the Status/Result error-handling vocabulary: code/name/ToString
// round trips (including the resource-governance codes), retryability
// classification, Result<T> move semantics, and the single-evaluation
// guarantee of SETREC_ASSIGN_OR_RETURN.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/status.h"

namespace setrec {
namespace {

TEST(StatusTest, FactoriesProduceTheirCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const std::vector<Case> cases = {
      {Status::OK(), StatusCode::kOk, "OK"},
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::FailedPrecondition("m"), StatusCode::kFailedPrecondition,
       "FailedPrecondition"},
      {Status::NotFound("m"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("m"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::Diverges("m"), StatusCode::kDiverges, "Diverges"},
      {Status::Unimplemented("m"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::Internal("m"), StatusCode::kInternal, "Internal"},
      {Status::ResourceExhausted("m"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
      {Status::DeadlineExceeded("m"), StatusCode::kDeadlineExceeded,
       "DeadlineExceeded"},
      {Status::Cancelled("m"), StatusCode::kCancelled, "Cancelled"},
      {Status::TxnConflict("m"), StatusCode::kTxnConflict, "TxnConflict"},
      {Status::RetryExhausted("m"), StatusCode::kRetryExhausted,
       "RetryExhausted"},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_STREQ(StatusCodeName(c.status.code()), c.name);
    if (c.status.ok()) {
      EXPECT_EQ(c.status.ToString(), "OK");
      EXPECT_TRUE(c.status.message().empty());
    } else {
      EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": m");
      EXPECT_EQ(c.status.message(), "m");
    }
  }
}

TEST(StatusTest, OnlyBudgetDeadlineAndConflictAreRetryable) {
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsRetryable());
  // A first-committer-wins conflict can succeed on a fresh snapshot.
  EXPECT_TRUE(Status::TxnConflict("x").IsRetryable());
  // Cancellation is deliberate; auto-retry would defeat it.
  EXPECT_FALSE(Status::Cancelled("x").IsRetryable());
  // ... and kRetryExhausted IS the report that retrying stopped helping.
  EXPECT_FALSE(Status::RetryExhausted("x").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::InvalidArgument("x").IsRetryable());
  EXPECT_FALSE(Status::Internal("x").IsRetryable());
  EXPECT_FALSE(Status::Diverges("x").IsRetryable());
}

TEST(StatusTest, GovernanceErrorsAreTheThreeNewCodes) {
  EXPECT_TRUE(IsGovernanceError(Status::ResourceExhausted("x")));
  EXPECT_TRUE(IsGovernanceError(Status::DeadlineExceeded("x")));
  EXPECT_TRUE(IsGovernanceError(Status::Cancelled("x")));
  EXPECT_FALSE(IsGovernanceError(Status::OK()));
  EXPECT_FALSE(IsGovernanceError(Status::FailedPrecondition("x")));
  EXPECT_FALSE(IsGovernanceError(Status::Internal("x")));
  // The transaction codes report scheduling outcomes, not resource
  // governance: a conflict retry must not be mistaken for a budget bump.
  EXPECT_FALSE(IsGovernanceError(Status::TxnConflict("x")));
  EXPECT_FALSE(IsGovernanceError(Status::RetryExhausted("x")));
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(ResultTest, HoldsMoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(42));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 42);
  // Rvalue unwrap moves the payload out.
  std::unique_ptr<int> owned = std::move(r).value();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 42);
}

TEST(ResultTest, ErrorCarriesTheStatus) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(ResultTest, MovingTheValueOutDoesNotCopy) {
  std::vector<int> big(1000, 7);
  const int* data = big.data();
  Result<std::vector<int>> r(std::move(big));
  std::vector<int> out = std::move(r).value();
  // The buffer travelled through the Result unchanged (no reallocation).
  EXPECT_EQ(out.data(), data);
  EXPECT_EQ(out.size(), 1000u);
}

// -- SETREC_ASSIGN_OR_RETURN -------------------------------------------------

int g_evaluations = 0;

Result<int> CountingSource(bool fail) {
  ++g_evaluations;
  if (fail) return Status::ResourceExhausted("budget");
  return g_evaluations;
}

Status AssignOnce(bool fail, int* out) {
  SETREC_ASSIGN_OR_RETURN(int value, CountingSource(fail));
  *out = value;
  return Status::OK();
}

TEST(AssignOrReturnTest, EvaluatesTheExpressionExactlyOnce) {
  g_evaluations = 0;
  int out = 0;
  ASSERT_TRUE(AssignOnce(/*fail=*/false, &out).ok());
  EXPECT_EQ(g_evaluations, 1);
  EXPECT_EQ(out, 1);
}

TEST(AssignOrReturnTest, PropagatesErrorsWithoutAssigning) {
  g_evaluations = 0;
  int out = -1;
  Status s = AssignOnce(/*fail=*/true, &out);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(g_evaluations, 1);
  EXPECT_EQ(out, -1);  // lhs untouched on the error path
}

TEST(AssignOrReturnTest, WorksWithMoveOnlyPayloads) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(9);
  };
  auto use = [&]() -> Status {
    SETREC_ASSIGN_OR_RETURN(std::unique_ptr<int> p, make());
    return p && *p == 9 ? Status::OK() : Status::Internal("wrong payload");
  };
  EXPECT_TRUE(use().ok());
}

}  // namespace
}  // namespace setrec
