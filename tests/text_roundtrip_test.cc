// Robustness property tests for the text front-end, complementing
// text_test.cc: print→parse→print fixed points for every printer, a curated
// corpus of near-miss malformed inputs that must produce parse errors (never
// crashes), and deterministic mutation/truncation fuzzing of VALID texts —
// the inputs most likely to reach deep parser states before failing.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algebraic/method_library.h"
#include "core/instance_generator.h"
#include "text/parser.h"
#include "text/printer.h"

namespace setrec {
namespace {

constexpr const char kDrinkersText[] = R"(
schema {
  class D; class Ba; class Be;
  property f : D -> Ba;
  property l : D -> Be;
  property s : Ba -> Be;
}
)";

constexpr const char kInstanceText[] = R"(
instance {
  object D(1); object D(2);
  object Ba(1); object Ba(2); object Ba(3);
  object Be(7);
  edge D(1) f Ba(1);
  edge D(1) f Ba(2);
  edge D(2) l Be(7);
  edge Ba(3) s Be(7);
}
)";

// -- Fixed points ------------------------------------------------------------

TEST(PrintParseFixedPointTest, Schema) {
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  const std::string text = SchemaToText(*schema);
  auto round = std::move(ParseSchema(text)).value();
  EXPECT_EQ(SchemaToText(*round), text);
}

TEST(PrintParseFixedPointTest, Instance) {
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  Instance instance =
      std::move(ParseInstance(kInstanceText, schema.get())).value();
  const std::string text = InstanceToText(instance);
  Instance round = std::move(ParseInstance(text, schema.get())).value();
  EXPECT_EQ(round, instance);
  EXPECT_EQ(InstanceToText(round), text);
}

TEST(PrintParseFixedPointTest, EveryLibraryMethodIncludingNonPositive) {
  // text_test covers the positive drinkers methods; here the whole library,
  // including the non-positive parity gadget (difference operators must
  // survive the trip too).
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  PairSchema pair = std::move(MakePairSchema()).value();
  PayrollSchema pay = std::move(MakePayrollSchema()).value();
  struct Entry {
    const Schema* schema;
    std::unique_ptr<AlgebraicUpdateMethod> method;
  };
  std::vector<Entry> entries;
  entries.push_back({&ds.schema, std::move(MakeClearBars(ds)).value()});
  entries.push_back({&ds.schema, std::move(MakeAllBars(ds)).value()});
  entries.push_back(
      {&pair.schema, std::move(MakeConditionalDeleteMethod(pair)).value()});
  entries.push_back(
      {&pair.schema, std::move(MakeCopyExtendMethod(pair)).value()});
  entries.push_back({&pair.schema, std::move(MakeParityMethod(pair)).value()});
  entries.push_back(
      {&pay.schema, std::move(MakeSalaryFromNewSal(pay)).value()});
  entries.push_back(
      {&pay.schema, std::move(MakeSalaryFromManagersNewSal(pay)).value()});
  for (const Entry& e : entries) {
    const std::string text = MethodToText(*e.method);
    auto round = std::move(ParseMethod(text, e.schema)).value();
    EXPECT_EQ(MethodToText(*round), text) << e.method->name();
  }
}

// -- Curated malformed inputs ------------------------------------------------

TEST(MalformedInputTest, SchemaNearMisses) {
  const std::vector<std::string> inputs = {
      "",
      "schema",
      "schema {",
      "schema { class }",
      "schema { class D",
      "schema { class D; class D; }",
      "schema { property f : D -> Ba; }",   // undeclared classes
      "schema { class D; property : D -> D; }",
      "schema { class D; property f : D <- D; }",
      "schema { class D; property f : D -> D }",  // missing semicolon
      "schema { class D; } trailing",
  };
  for (const std::string& input : inputs) {
    Result<std::unique_ptr<Schema>> r = ParseSchema(input);
    EXPECT_FALSE(r.ok()) << "accepted: " << input;
  }
}

TEST(MalformedInputTest, InstanceNearMisses) {
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  const std::vector<std::string> inputs = {
      "instance",
      "instance {",
      "instance { object }",
      "instance { object D; }",         // missing key
      "instance { object D(); }",
      "instance { object D(x); }",      // non-numeric key
      "instance { object Nope(1); }",   // unknown class
      "instance { edge D(1) f Ba(1); }",  // dangling endpoints
      "instance { object D(1); object Be(1); edge D(1) f Be(1); }",  // type
      "instance { object D(1) object D(2); }",  // missing semicolon
  };
  for (const std::string& input : inputs) {
    Result<Instance> r = ParseInstance(input, schema.get());
    EXPECT_FALSE(r.ok()) << "accepted: " << input;
  }
}

TEST(MalformedInputTest, ExpressionNearMisses) {
  const std::vector<std::string> inputs = {
      "",
      "union(",
      "union(Df)",
      "union(Df, Dl, Bas)",
      "project(Df)",              // missing attribute list
      "project[f(Df)",
      "rename[a -> ](Df)",
      "rename[a](Df)",
      "select[a = ](Df)",
      "select[a < b](Df)",        // unsupported comparator
      "join[a = b](Df)",          // join needs two children
      "diff(Df, Dl) extra",
      "(((((Df",
  };
  for (const std::string& input : inputs) {
    Result<ExprPtr> r = ParseExpression(input);
    EXPECT_FALSE(r.ok()) << "accepted: " << input;
  }
}

TEST(MalformedInputTest, MethodNearMisses) {
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  const std::vector<std::string> inputs = {
      "method",
      "method m",
      "method m [] { }",                       // empty signature
      "method m [Nope] { }",                   // unknown class
      "method m [D] { f := ; }",
      "method m [D] { f = arg1; }",            // wrong assignment token
      "method m [D] { nope := rename[arg1 -> nope](arg1); }",
      "method m [D] { s := rename[arg1 -> s](arg1); }",  // not a D property
      "method m [D] { f := rename[arg1 -> f](arg1) }",   // missing semicolon
      "method m [D] { f := rename[arg9 -> f](arg9); }",  // out-of-range arg
  };
  for (const std::string& input : inputs) {
    Result<std::unique_ptr<AlgebraicUpdateMethod>> r =
        ParseMethod(input, schema.get());
    EXPECT_FALSE(r.ok()) << "accepted: " << input;
  }
}

// -- Mutation fuzzing of valid texts -----------------------------------------

/// Deterministically corrupts `text`: flips one character, or truncates at a
/// random point, or duplicates a random chunk — the classic "almost valid"
/// shapes that exercise deep parser states.
std::string Corrupt(const std::string& text, SplitMix64& rng) {
  if (text.empty()) return text;
  std::string out = text;
  switch (rng.UniformInt(3)) {
    case 0: {  // flip
      const std::size_t i = rng.UniformInt(out.size());
      out[i] = static_cast<char>("(){};:=->$9aZ "[rng.UniformInt(14)]);
      return out;
    }
    case 1:  // truncate
      return out.substr(0, rng.UniformInt(out.size()));
    default: {  // duplicate a chunk in place
      const std::size_t i = rng.UniformInt(out.size());
      const std::size_t len = 1 + rng.UniformInt(8);
      return out.insert(i, out.substr(i, len));
    }
  }
}

class MutationFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MutationFuzzTest, CorruptedValidTextsNeverCrashAnyParser) {
  SplitMix64 rng(GetParam() * 0x9e3779b9ULL + 1);
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  const std::vector<std::string> seeds = {
      kDrinkersText,
      kInstanceText,
      "union(project[f](join[self = D](self, Df)), rename[arg1 -> f](arg1))",
      MethodToText(*std::move(MakeAddBar(ds)).value()),
      MethodToText(*std::move(MakeDeleteBar(ds)).value()),
  };
  for (int round = 0; round < 40; ++round) {
    std::string input = seeds[rng.UniformInt(seeds.size())];
    const int corruptions = 1 + static_cast<int>(rng.UniformInt(3));
    for (int c = 0; c < corruptions; ++c) input = Corrupt(input, rng);
    // Every parser must return — error or value — and an accepted
    // expression must still round trip through the printer.
    Result<std::unique_ptr<Schema>> s = ParseSchema(input);
    Result<Instance> inst = ParseInstance(input, schema.get());
    Result<std::unique_ptr<AlgebraicUpdateMethod>> m =
        ParseMethod(input, &ds.schema);
    Result<ExprPtr> e = ParseExpression(input);
    if (e.ok()) {
      ExprPtr again = std::move(ParseExpression(ExprToText(**e))).value();
      EXPECT_EQ(ExprToText(**e), ExprToText(*again));
    }
    if (s.ok()) {
      auto again = std::move(ParseSchema(SchemaToText(**s))).value();
      EXPECT_EQ(SchemaToText(**s), SchemaToText(*again));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// -- Exhaustive prefix truncation --------------------------------------------
// Recovery replay (store/durable_store.cc) feeds WAL payloads to the parsers
// and leans on this contract: EVERY prefix of a valid text yields either a
// value or a typed error — never a crash, hang, or exception.

constexpr const char kDeltaText[] = R"(
delta {
  del edge D(1) f Ba(2);
  del object Ba(2);
  add object Ba(3);
  add edge D(1) f Ba(3);
}
)";

TEST(PrefixTruncationTest, EveryPrefixOfEveryCorpusTextReturnsTyped) {
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  const std::vector<std::string> corpus = {
      kDrinkersText,
      kInstanceText,
      kDeltaText,
      "union(project[f](join[self = D](self, Df)), rename[arg1 -> f](arg1))",
      MethodToText(*std::move(MakeAddBar(ds)).value()),
  };
  for (const std::string& text : corpus) {
    for (std::size_t len = 0; len <= text.size(); ++len) {
      const std::string prefix = text.substr(0, len);
      // Run EVERY parser over every prefix (not just the matching one):
      // recovery cannot know what a corrupt payload was meant to be.
      const Status statuses[] = {
          ParseSchema(prefix).status(),
          ParseInstance(prefix, schema.get()).status(),
          ParseDelta(prefix, schema.get()).status(),
          ParseExpression(prefix).status(),
          ParseMethod(prefix, &ds.schema).status(),
      };
      for (const Status& s : statuses) {
        if (!s.ok()) {
          // A truncated identifier may also surface as "unknown class/
          // property" (kNotFound); what must never appear is a crash or an
          // untyped internal error.
          EXPECT_TRUE(s.code() == StatusCode::kInvalidArgument ||
                      s.code() == StatusCode::kNotFound)
              << "prefix len " << len << " of: " << text << "\n"
              << s.ToString();
        }
      }
    }
  }
}

TEST(ParserHardeningTest, IntegerOverflowIsATypedErrorNotAnException) {
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  for (const char* input :
       {"instance { object D(99999999999999999999); }",
        "instance { object D(4294967296); }",
        "delta { add object D(18446744073709551617); }"}) {
    Result<Instance> inst = ParseInstance(input, schema.get());
    Result<InstanceDelta> delta = ParseDelta(input, schema.get());
    EXPECT_FALSE(inst.ok()) << input;
    EXPECT_FALSE(delta.ok()) << input;
  }
  // Max uint32 itself is representable.
  EXPECT_TRUE(ParseInstance("instance { object D(4294967295); }",
                            schema.get())
                  .ok());
}

TEST(ParserHardeningTest, DeepNestingDegradesToATypedError) {
  // 5000 nested unions would overflow the recursive-descent stack without
  // the depth limit; with it, parsing returns InvalidArgument.
  std::string text;
  for (int i = 0; i < 5000; ++i) text += "union(";
  text += "R, R";
  for (int i = 0; i < 5000; ++i) text += ")";
  Result<ExprPtr> r = ParseExpression(text);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("depth"), std::string::npos);
}

// -- Delta print/parse round trip --------------------------------------------

TEST(DeltaRoundTripTest, DiffApplyPrintParseAreExact) {
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  Instance before =
      std::move(ParseInstance(kInstanceText, schema.get())).value();
  Instance after = before;
  // A representative mutation: cascade-removing an object, dropping an edge,
  // adding an object and an edge.
  ASSERT_TRUE(after.RemoveObject(
                       ObjectId(schema->FindClass("Ba").value(), 1))
                  .ok());
  ASSERT_TRUE(
      after.AddObject(ObjectId(schema->FindClass("Be").value(), 9)).ok());
  ASSERT_TRUE(after
                  .AddEdge(ObjectId(schema->FindClass("D").value(), 2),
                           schema->FindProperty("l").value(),
                           ObjectId(schema->FindClass("Be").value(), 9))
                  .ok());

  const InstanceDelta delta = DiffInstances(before, after);
  EXPECT_FALSE(delta.empty());

  // Apply reproduces `after` exactly.
  Instance replay = before;
  ASSERT_TRUE(ApplyDelta(replay, delta).ok());
  EXPECT_EQ(replay, after);

  // Text round trip is exact, and the reparsed delta replays identically.
  const std::string text = DeltaToText(delta, *schema);
  InstanceDelta round = std::move(ParseDelta(text, schema.get())).value();
  EXPECT_EQ(round, delta);
  Instance replay2 = before;
  ASSERT_TRUE(ApplyDelta(replay2, round).ok());
  EXPECT_EQ(replay2, after);

  // Identity diff is empty and prints an empty block.
  EXPECT_TRUE(DiffInstances(after, after).empty());
}

TEST(DeltaRoundTripTest, DeltaNearMissesAreRejected) {
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  for (const char* input : {
           "delta { put object D(1); }",       // unknown verb
           "delta { add D(1); }",              // missing item kind
           "delta { add object Nope(1); }",    // unknown class
           "delta { add edge D(1) nope Ba(1); }",  // unknown property
           "delta { add object D(1) }",        // missing semicolon
           "delta { add object D(1); } trailing",
           "instance { object D(1); }",        // wrong block keyword
       }) {
    EXPECT_FALSE(ParseDelta(input, schema.get()).ok()) << input;
  }
}

}  // namespace
}  // namespace setrec
