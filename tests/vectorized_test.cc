// Differential tests for the compiled vectorized batch backend
// (relational/vectorized/): the interpreter is the oracle, and every
// observable — results, error status codes, logical engine counters,
// per-node EXPLAIN ANALYZE statistics — must be bit-identical across
// ExecBackend::kInterpreter, kVectorized (first execution: compile + run)
// and "bytecode" (re-execution of an already-compiled program with the
// result memo cleared). The acceptance property rides the same 16-seed
// drinkers corpus the parallel runtime pins: identical instances at 1/2/8
// workers under either backend.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algebraic/method_library.h"
#include "algebraic/parallel.h"
#include "core/instance_generator.h"
#include "core/thread_pool.h"
#include "obs/explain.h"
#include "relational/builder.h"
#include "relational/evaluator.h"
#include "relational/relation.h"
#include "relational/vectorized/engine.h"
#include "text/printer.h"

namespace setrec {
namespace {

constexpr ClassId kP = 0;

ObjectId P(std::uint32_t i) { return ObjectId(kP, i); }

RelationScheme MakeScheme(std::vector<Attribute> attrs) {
  return std::move(RelationScheme::Make(std::move(attrs))).value();
}

/// One governed run and its logical counters, collected into a fresh
/// registry so runs never share counter state.
struct CountedRun {
  Result<Relation> result;
  std::map<std::string, std::uint64_t> counters;
};

CountedRun RunCounted(const ExprPtr& expr, const Database& db,
                      ExecBackend backend) {
  MetricsRegistry metrics;
  ExecOptions options;
  options.metrics = &metrics;
  options.backend = backend;
  CountedRun run{Evaluate(expr, db, options), {}};
  run.counters = LogicalCounters(metrics);
  return run;
}

// ---------------------------------------------------------------------------
// 16-seed corpus: parallel apply, interpreter vs vectorized, 1/2/8 workers
// ---------------------------------------------------------------------------

class VectorizedCorpusTest : public ::testing::TestWithParam<std::uint64_t> {};

/// The acceptance property: for every drinkers method and random receiver
/// set, the instance produced under kVectorized at 1, 2 and 8 workers is
/// bit-identical (operator== and the canonical text form) to the
/// single-worker interpreter run, and the logical counter map matches
/// exactly.
TEST_P(VectorizedCorpusTest, BackendsAgreeAtEveryWorkerCount) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  InstanceGenerator gen(&ds.schema, GetParam());
  InstanceGenerator::Options options;
  options.min_objects_per_class = 3;
  options.max_objects_per_class = 8;
  options.edge_probability = 0.4;
  Instance instance = gen.RandomInstance(options);

  std::vector<std::unique_ptr<AlgebraicUpdateMethod>> methods;
  methods.push_back(std::move(MakeAddBar(ds)).value());
  methods.push_back(std::move(MakeFavoriteBar(ds)).value());
  methods.push_back(std::move(MakeDeleteBar(ds)).value());
  methods.push_back(std::move(MakeLikesServesBar(ds)).value());

  ThreadPool pool(8);
  for (const auto& method : methods) {
    std::vector<Receiver> receivers =
        gen.RandomReceiverSet(instance, method->signature(), 12);
    if (receivers.empty()) continue;

    auto run = [&](ExecBackend backend, std::size_t workers,
                   std::map<std::string, std::uint64_t>* counters) {
      MetricsRegistry metrics;
      ExecOptions opts;
      opts.metrics = &metrics;
      opts.num_workers = workers;
      if (workers > 1) opts.pool = &pool;
      opts.backend = backend;
      Instance out =
          std::move(ParallelApply(*method, instance, receivers, opts)).value();
      *counters = LogicalCounters(metrics);
      return out;
    };

    std::map<std::string, std::uint64_t> base_counters;
    Instance base = run(ExecBackend::kInterpreter, 1, &base_counters);
    const std::string base_text = InstanceToText(base);

    for (std::size_t workers : {std::size_t{1}, std::size_t{2},
                                std::size_t{8}}) {
      std::map<std::string, std::uint64_t> counters;
      Instance vec = run(ExecBackend::kVectorized, workers, &counters);
      EXPECT_TRUE(vec == base)
          << method->name() << " diverged at " << workers << " workers";
      EXPECT_EQ(InstanceToText(vec), base_text) << method->name();
      EXPECT_EQ(counters, base_counters)
          << method->name() << " counters drifted at " << workers
          << " workers";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedCorpusTest,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---------------------------------------------------------------------------
// Randomized expression fuzz: interpreter vs vectorized vs bytecode
// ---------------------------------------------------------------------------

/// Scheme-aware random expression generator over a fixed catalog:
///   A(x, y)  B(x, y)  C(z, w)     (every attribute in class P)
/// Produces mostly well-typed expressions exercising all eight operators —
/// unions/differences within a scheme family, σ-chains over products (the
/// fused hash-join path), projections, renames, π_∅ guards and DAG-shaped
/// sharing — with an occasional deliberate type error so status-code parity
/// is fuzzed too.
class ExprGen {
 public:
  explicit ExprGen(std::uint64_t seed) : rng_(seed) {}

  /// Scheme (x, y).
  ExprPtr GenXY(int depth) {
    if (depth <= 0) return rng_.UniformInt(2) == 0 ? ra::Rel("A")
                                                   : ra::Rel("B");
    switch (rng_.UniformInt(6)) {
      case 0:
        return ra::Union(GenXY(depth - 1), GenXY(depth - 1));
      case 1:
        return ra::Diff(GenXY(depth - 1), GenXY(depth - 1));
      case 2:
        return ra::SelectEq(GenXY(depth - 1), "x", "y");
      case 3:
        return ra::SelectNeq(GenXY(depth - 1), "x", "y");
      case 4:
        // Guarded: ∅ unless the guard side is non-empty.
        return ra::Product(ra::Guard(GenZW(depth - 1)), GenXY(depth - 1));
      default: {
        // DAG: the same node used as guard and payload (one memo hit).
        ExprPtr shared = GenXY(depth - 1);
        return ra::Product(ra::Guard(shared), shared);
      }
    }
  }

  /// Scheme (z, w).
  ExprPtr GenZW(int depth) {
    if (depth <= 0 || rng_.UniformInt(3) == 0) return ra::Rel("C");
    return ra::Rename(ra::Rename(GenXY(depth - 1), "x", "z"), "y", "w");
  }

  /// Top-level shape: join chains, projections, or an occasional
  /// deliberately ill-typed union.
  ExprPtr GenTop(int depth) {
    switch (rng_.UniformInt(8)) {
      case 0:
        return GenXY(depth);
      case 1:
        return GenZW(depth);
      case 2:  // ill-typed on purpose: scheme mismatch
        return ra::Union(GenXY(depth - 1), GenZW(depth - 1));
      case 3: {
        ExprPtr chain = Chain(depth);
        std::vector<std::string> attrs;
        for (const char* a : {"x", "y", "z", "w"}) {
          if (rng_.UniformInt(2) == 0) attrs.push_back(a);
        }
        if (attrs.empty()) attrs.push_back("x");
        return ra::Project(chain, std::move(attrs));
      }
      default:
        return Chain(depth);
    }
  }

 private:
  /// A σ-chain over A-family × C-family — the shape the evaluator fuses
  /// into a hash join. Conditions mix cross-side equalities (join keys),
  /// per-side filters and cross-side inequalities (residuals).
  ExprPtr Chain(int depth) {
    ExprPtr e = ra::Product(GenXY(depth - 1), GenZW(depth - 1));
    const char* attrs[] = {"x", "y", "z", "w"};
    const std::size_t conditions = 1 + rng_.UniformInt(3);
    for (std::size_t i = 0; i < conditions; ++i) {
      const char* a = attrs[rng_.UniformInt(4)];
      const char* b = attrs[rng_.UniformInt(4)];
      if (std::string(a) == b) b = a == std::string("x") ? "z" : "x";
      e = rng_.UniformInt(2) == 0 ? ra::SelectEq(std::move(e), a, b)
                                  : ra::SelectNeq(std::move(e), a, b);
    }
    return e;
  }

  SplitMix64 rng_;
};

Database RandomDatabase(std::uint64_t seed) {
  SplitMix64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
  Database db;
  auto fill = [&](Relation& r) {
    const std::size_t n = rng.UniformInt(8);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(
          r.Insert(Tuple{P(static_cast<std::uint32_t>(rng.UniformInt(4))),
                         P(static_cast<std::uint32_t>(rng.UniformInt(4)))})
              .ok());
    }
  };
  Relation a(MakeScheme({{"x", kP}, {"y", kP}}));
  Relation b(MakeScheme({{"x", kP}, {"y", kP}}));
  Relation c(MakeScheme({{"z", kP}, {"w", kP}}));
  fill(a);
  fill(b);
  fill(c);
  db.Put("A", std::move(a));
  db.Put("B", std::move(b));
  db.Put("C", std::move(c));
  return db;
}

class VectorizedFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

/// Random expressions through all three execution modes. Status codes must
/// always agree; on success the relation, its canonical text rows, and the
/// logical counter map must be identical.
TEST_P(VectorizedFuzzTest, RandomExpressionsAgreeAcrossBackends) {
  Database db = RandomDatabase(GetParam());
  ExprGen gen(GetParam());
  for (int i = 0; i < 40; ++i) {
    ExprPtr expr = gen.GenTop(3);

    CountedRun interp = RunCounted(expr, db, ExecBackend::kInterpreter);
    CountedRun vec = RunCounted(expr, db, ExecBackend::kVectorized);

    ASSERT_EQ(interp.result.status().code(), vec.result.status().code())
        << "iteration " << i << ": interpreter said '"
        << interp.result.status().message() << "', vectorized said '"
        << vec.result.status().message() << "'";
    if (!interp.result.ok()) continue;
    EXPECT_TRUE(interp.result.value() == vec.result.value())
        << "iteration " << i;
    EXPECT_EQ(interp.counters, vec.counters) << "iteration " << i;

    // Bytecode mode: the program is already compiled; clearing the result
    // memo forces a pure re-execution that must reproduce everything,
    // including per-node stats on a fresh sink.
    MetricsRegistry metrics;
    ExecContext ctx;
    ctx.set_metrics(&metrics);
    vectorized::Engine engine(&db, &ctx);
    std::unordered_map<const Expr*, EvalNodeStats> first_stats;
    auto first = engine.Execute(expr, &first_stats);
    ASSERT_TRUE(first.ok()) << first.status().message();
    engine.ClearResultMemo();
    std::unordered_map<const Expr*, EvalNodeStats> replay_stats;
    auto replay = engine.Execute(expr, &replay_stats);
    ASSERT_TRUE(replay.ok()) << replay.status().message();
    EXPECT_TRUE(*replay.value() == interp.result.value())
        << "iteration " << i;
    ASSERT_EQ(first_stats.size(), replay_stats.size());
    for (const auto& [node, stats] : first_stats) {
      const auto it = replay_stats.find(node);
      ASSERT_NE(it, replay_stats.end());
      EXPECT_EQ(stats.rows, it->second.rows);
      EXPECT_EQ(stats.build_rows, it->second.build_rows);
      EXPECT_EQ(stats.probe_rows, it->second.probe_rows);
      EXPECT_EQ(stats.cache_hits, it->second.cache_hits);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorizedFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE backend annotation
// ---------------------------------------------------------------------------

Database PayrollishDatabase() {
  Database db;
  Relation emp(MakeScheme({{"e", kP}, {"d", kP}}));
  Relation dept(MakeScheme({{"d2", kP}, {"m", kP}}));
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(emp.Insert(Tuple{P(i), P(i % 3)}).ok());
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(dept.Insert(Tuple{P(i), P(i + 1)}).ok());
  }
  db.Put("Emp", std::move(emp));
  db.Put("Dept", std::move(dept));
  return db;
}

ExprPtr PayrollJoin() {
  return ra::Project(
      ra::JoinEq(ra::Rel("Emp"), ra::Rel("Dept"), "d", "d2"), {"e", "m"});
}

/// Pins the ANALYZE rendering: every analyzed operator line carries a
/// `backend=` annotation between the memo-hit count and the wall time, and
/// the JSON form carries a "backend" key. The fused σ-chain reports
/// `bytecode`, its inputs `vectorized`.
TEST(VectorizedExplainTest, AnalyzeAnnotatesVectorizedBackends) {
  Database db = PayrollishDatabase();
  ExecOptions options;
  options.backend = ExecBackend::kVectorized;
  ExplainPlan plan =
      std::move(ExplainExpressionAnalyze(PayrollJoin(), db, options)).value();

  const std::string text = plan.ToText();
  EXPECT_NE(text.find(" backend=bytecode time="), std::string::npos) << text;
  EXPECT_NE(text.find(" backend=vectorized time="), std::string::npos)
      << text;
  EXPECT_EQ(text.find(" backend=interpreter"), std::string::npos) << text;

  const std::string json = plan.ToJson();
  EXPECT_NE(json.find("\"backend\":\"bytecode\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"backend\":\"vectorized\""), std::string::npos)
      << json;
}

TEST(VectorizedExplainTest, AnalyzeAnnotatesInterpreterBackend) {
  Database db = PayrollishDatabase();
  ExecOptions options;
  options.backend = ExecBackend::kInterpreter;
  ExplainPlan plan =
      std::move(ExplainExpressionAnalyze(PayrollJoin(), db, options)).value();
  const std::string text = plan.ToText();
  EXPECT_NE(text.find(" backend=interpreter time="), std::string::npos)
      << text;
  EXPECT_EQ(text.find("backend=vectorized"), std::string::npos) << text;
  EXPECT_EQ(text.find("backend=bytecode"), std::string::npos) << text;
}

TEST(VectorizedExplainTest, PlainExplainCarriesNoBackend) {
  Database db = PayrollishDatabase();
  Catalog catalog;
  for (const std::string& name : db.Names()) {
    ASSERT_TRUE(
        catalog.AddRelation(name, std::move(db.Find(name)).value()->scheme())
            .ok());
  }
  ExplainPlan plan =
      std::move(ExplainExpression(PayrollJoin(), catalog)).value();
  EXPECT_EQ(plan.ToText().find("backend="), std::string::npos);
}

/// kAuto is a cost decision: tiny inputs stay on the interpreter, inputs at
/// or above Evaluator::kAutoVectorizeInputRows flip the whole evaluation to
/// the compiled backend.
TEST(VectorizedExplainTest, AutoBackendLatchesOnInputSize) {
  Database small = PayrollishDatabase();
  ExplainPlan plan =
      std::move(ExplainExpressionAnalyze(PayrollJoin(), small, {})).value();
  EXPECT_NE(plan.ToText().find(" backend=interpreter"), std::string::npos);

  Database big;
  Relation emp(MakeScheme({{"e", kP}, {"d", kP}}));
  const auto rows =
      static_cast<std::uint32_t>(Evaluator::kAutoVectorizeInputRows);
  for (std::uint32_t i = 0; i < rows; ++i) {
    ASSERT_TRUE(emp.Insert(Tuple{P(i), P(i % 16)}).ok());
  }
  Relation dept(MakeScheme({{"d2", kP}, {"m", kP}}));
  for (std::uint32_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(dept.Insert(Tuple{P(i), P(i + 1)}).ok());
  }
  big.Put("Emp", std::move(emp));
  big.Put("Dept", std::move(dept));
  ExplainPlan big_plan =
      std::move(ExplainExpressionAnalyze(PayrollJoin(), big, {})).value();
  EXPECT_NE(big_plan.ToText().find(" backend=bytecode"), std::string::npos)
      << big_plan.ToText();
  EXPECT_EQ(big_plan.ToText().find(" backend=interpreter"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Sorted-view memo invalidation
// ---------------------------------------------------------------------------

/// The bulk-insert contract: one sorted-cache invalidation per
/// InsertValidatedBatch call, versus one per tuple on the single-tuple path.
TEST(RelationBatchInsertTest, BatchInvalidatesSortedCacheOncePerBatch) {
  const RelationScheme scheme = MakeScheme({{"x", kP}});

  Relation single(scheme);
  for (std::uint32_t i = 0; i < 10; ++i) single.InsertValidated(Tuple{P(i)});
  EXPECT_EQ(single.sorted_cache_invalidations(), 10u);

  Relation bulk(scheme);
  std::vector<Tuple> batch;
  for (std::uint32_t i = 0; i < 10; ++i) batch.push_back(Tuple{P(i)});
  bulk.InsertValidatedBatch(batch);
  EXPECT_EQ(bulk.sorted_cache_invalidations(), 1u);
  EXPECT_TRUE(batch.empty());
  EXPECT_TRUE(single == bulk);

  // The memo still invalidates: a sorted view taken before a second batch
  // must not leak into the view taken after it.
  EXPECT_EQ(bulk.SortedTuples().size(), 10u);
  std::vector<Tuple> more;
  for (std::uint32_t i = 10; i < 14; ++i) more.push_back(Tuple{P(i)});
  bulk.InsertValidatedBatch(more);
  EXPECT_EQ(bulk.sorted_cache_invalidations(), 2u);
  EXPECT_EQ(bulk.SortedTuples().size(), 14u);

  // An empty batch is a no-op, not an invalidation.
  std::vector<Tuple> empty;
  bulk.InsertValidatedBatch(empty);
  EXPECT_EQ(bulk.sorted_cache_invalidations(), 2u);
}

}  // namespace
}  // namespace setrec
