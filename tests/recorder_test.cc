// Tests for the flight recorder (bounded per-thread rings, merged JSONL
// dumps, redaction) and for the JSON funnel every exporter shares: a
// fuzz-style sweep of JsonEscape over hostile payloads, and the pinned
// Prometheus exposition format of MetricsRegistry::WritePrometheus.

#include "obs/recorder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_escape.h"
#include "obs/metrics.h"

namespace setrec {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

/// Validates that `line` is one JSON object: balanced braces outside
/// strings, legal escapes inside strings, and no raw control characters
/// anywhere. This is the "parseable" contract of every JSONL writer here —
/// a tiny scanner instead of a JSON library, which the tree does not have.
void ExpectParseableJsonObject(const std::string& line) {
  ASSERT_FALSE(line.empty());
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(line[i]);
    ASSERT_GE(c, 0x20u) << "raw control character at byte " << i << " of: "
                        << line;
    if (in_string) {
      if (c == '\\') {
        ASSERT_LT(i + 1, line.size()) << "dangling escape: " << line;
        const char e = line[++i];
        if (e == 'u') {
          ASSERT_LT(i + 4, line.size()) << "short \\u escape: " << line;
          for (int h = 0; h < 4; ++h) {
            ASSERT_TRUE(std::isxdigit(static_cast<unsigned char>(line[++i])))
                << "bad \\u escape in: " << line;
          }
        } else {
          ASSERT_TRUE(e == '"' || e == '\\' || e == '/' || e == 'b' ||
                      e == 'f' || e == 'n' || e == 'r' || e == 't')
              << "illegal escape \\" << e << " in: " << line;
        }
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      ASSERT_GE(depth, 0) << "unbalanced braces: " << line;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string: " << line;
  EXPECT_EQ(depth, 0) << "unbalanced braces: " << line;
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, DumpEmitsHeaderThenOneLinePerEvent) {
  FlightRecorder recorder;
  recorder.Record(FlightRecorder::EventKind::kNote, "test/alpha", 1, 2);
  recorder.Record(FlightRecorder::EventKind::kStatus, "test/beta", 3, 0,
                  "something failed");
  recorder.Record(FlightRecorder::EventKind::kMetric, "test/gamma", 42);

  std::ostringstream out;
  recorder.Dump(out);
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 4u);
  for (const std::string& line : lines) ExpectParseableJsonObject(line);
  EXPECT_NE(lines[0].find("\"type\":\"flight\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"reason\":\"on-demand\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"events\":3"), std::string::npos);
  EXPECT_NE(lines[0].find("\"overwritten\":0"), std::string::npos);
  EXPECT_NE(lines[1].find("test/alpha"), std::string::npos);
  EXPECT_NE(lines[2].find("test/beta"), std::string::npos);
  EXPECT_NE(lines[3].find("test/gamma"), std::string::npos);
}

TEST(FlightRecorderTest, RingOverwritesTheOldestPastTheCap) {
  FlightRecorder recorder;
  const std::size_t extra = 100;
  for (std::size_t i = 0; i < FlightRecorder::kEventsPerThread + extra; ++i) {
    recorder.Record(FlightRecorder::EventKind::kNote, "test/tick", i);
  }
  EXPECT_EQ(recorder.total_events(),
            FlightRecorder::kEventsPerThread + extra);
  EXPECT_EQ(recorder.overwritten_events(), extra);

  std::ostringstream out;
  recorder.Dump(out);
  const std::vector<std::string> lines = Lines(out.str());
  // Header + exactly the retained window.
  ASSERT_EQ(lines.size(), 1 + FlightRecorder::kEventsPerThread);
  EXPECT_NE(lines[0].find("\"overwritten\":100"), std::string::npos);
  // The oldest retained event is number `extra` (0-based): the first
  // `extra` were overwritten in place.
  EXPECT_NE(lines[1].find("\"a\":" + std::to_string(extra)),
            std::string::npos)
      << lines[1];
}

TEST(FlightRecorderTest, RedactionReplacesDetailsByHashAndLength) {
  FlightRecorder recorder;
  recorder.Record(FlightRecorder::EventKind::kStatus, "test/fail", 1, 0,
                  "secret-relation Emp is missing");

  std::ostringstream redacted;
  recorder.Dump(redacted);  // redact_details defaults to true
  EXPECT_EQ(redacted.str().find("secret-relation"), std::string::npos);
  EXPECT_NE(redacted.str().find("detail_hash"), std::string::npos);
  EXPECT_NE(redacted.str().find("\"detail_len\":30"), std::string::npos);

  FlightRecorder::DumpOptions options;
  options.redact_details = false;
  options.reason = "test wants plaintext";
  std::ostringstream plain;
  recorder.Dump(plain, options);
  EXPECT_NE(plain.str().find("secret-relation Emp is missing"),
            std::string::npos);
  EXPECT_NE(plain.str().find("\"reason\":\"test wants plaintext\""),
            std::string::npos);
}

TEST(FlightRecorderTest, DetailsAreTruncatedInline) {
  FlightRecorder recorder;
  const std::string longer(FlightRecorder::kDetailBytes + 40, 'x');
  recorder.Record(FlightRecorder::EventKind::kNote, "test/long", 0, 0,
                  longer);
  FlightRecorder::DumpOptions options;
  options.redact_details = false;
  std::ostringstream out;
  recorder.Dump(out, options);
  const std::string expected(FlightRecorder::kDetailBytes - 1, 'x');
  EXPECT_NE(out.str().find("\"detail\":\"" + expected + "\""),
            std::string::npos);
  EXPECT_EQ(out.str().find(longer), std::string::npos);
}

TEST(FlightRecorderTest, DumpToFileWritesTheSameJsonl) {
  FlightRecorder recorder;
  recorder.Record(FlightRecorder::EventKind::kNote, "test/file", 7);
  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "flight-test.jsonl")
          .string();
  ASSERT_TRUE(recorder.DumpToFile(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const std::vector<std::string> lines = Lines(content.str());
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) ExpectParseableJsonObject(line);
  EXPECT_NE(lines[1].find("test/file"), std::string::npos);
  std::filesystem::remove(path);

  EXPECT_FALSE(recorder.DumpToFile("/nonexistent-dir/nope/flight.jsonl"));
}

TEST(FlightRecorderTest, ConcurrentRecordingAndDumpingIsSafe) {
  FlightRecorder recorder;
  constexpr std::uint64_t kThreads = 4;
  constexpr std::uint64_t kEventsEach = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder] {
      for (std::uint64_t i = 0; i < kEventsEach; ++i) {
        recorder.Record(FlightRecorder::EventKind::kMetric, "test/worker", i,
                        0, "payload");
      }
    });
  }
  // Dump concurrently with the writers: a best-effort snapshot, but every
  // line must still be well-formed.
  std::ostringstream mid;
  recorder.Dump(mid);
  for (std::thread& t : threads) t.join();

  for (const std::string& line : Lines(mid.str())) {
    ExpectParseableJsonObject(line);
  }
  EXPECT_EQ(recorder.total_events(), kThreads * kEventsEach);
  std::ostringstream done;
  recorder.Dump(done);
  // Four rings, none past the cap: every event is retained.
  EXPECT_EQ(Lines(done.str()).size(), 1 + kThreads * kEventsEach);
}

// ---------------------------------------------------------------------------
// JsonEscape — the one shared escaper, fuzzed
// ---------------------------------------------------------------------------

TEST(JsonEscapeTest, GoldenEscapes) {
  EXPECT_EQ(JsonQuoted("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuoted("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuoted("back\\slash"), "\"back\\\\slash\"");
  EXPECT_EQ(JsonQuoted("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(JsonQuoted("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(JsonQuoted(std::string_view("\x01\x1f", 2)),
            "\"\\u0001\\u001f\"");
  EXPECT_EQ(JsonQuoted("\b\f\r"), "\"\\b\\f\\r\"");
  // UTF-8 passes through raw.
  EXPECT_EQ(JsonQuoted("σ⊆π"), "\"σ⊆π\"");
}

TEST(JsonEscapeTest, FuzzedPayloadsStayParseable) {
  // A deterministic LCG driving byte soup — control characters, quotes,
  // backslashes, high bytes — through the whole pipeline: JsonQuoted
  // output must scan as a legal JSON string, and a flight dump carrying
  // the payload as a detail must stay line-parseable.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<unsigned char>(state >> 33);
  };
  FlightRecorder recorder;
  for (int round = 0; round < 200; ++round) {
    std::string payload;
    const std::size_t len = next() % 120;
    for (std::size_t i = 0; i < len; ++i) {
      // Bias toward the dangerous bytes.
      const unsigned char roll = next();
      if (roll % 4 == 0) {
        payload.push_back("\"\\\n\r\t\b\f\x00\x1f/"[roll % 10]);
      } else {
        payload.push_back(static_cast<char>(next()));
      }
    }
    const std::string quoted = JsonQuoted(payload);
    const std::string object = "{\"v\":" + quoted + "}";
    ExpectParseableJsonObject(object);
    recorder.Record(FlightRecorder::EventKind::kNote, "fuzz/payload",
                    static_cast<std::uint64_t>(round), 0, payload);
  }
  FlightRecorder::DumpOptions options;
  options.redact_details = false;
  std::ostringstream out;
  recorder.Dump(out, options);
  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 201u);
  for (const std::string& line : lines) ExpectParseableJsonObject(line);
}

// ---------------------------------------------------------------------------
// MetricsRegistry::WritePrometheus — exposition format pinned
// ---------------------------------------------------------------------------

TEST(WritePrometheusTest, FormatIsPinned) {
  MetricsRegistry metrics;
  metrics.engine.eval_rows.Add(5);
  metrics.engine.commit_ns.Observe(3);
  metrics.engine.commit_ns.Observe(5);
  metrics.CounterNamed("custom.thing").Add(2);
  metrics.GaugeNamed("pool.size").Set(-3);

  std::ostringstream out;
  metrics.WritePrometheus(out);
  const std::string text = out.str();

  // Engine counters: `setrec_` prefix, '.' mapped to '_', TYPE line first.
  EXPECT_NE(text.find("# TYPE setrec_evaluator_rows counter\n"
                      "setrec_evaluator_rows 5\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE setrec_evaluator_join_probes counter\n"
                      "setrec_evaluator_join_probes 0\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE setrec_custom_thing counter\n"
                      "setrec_custom_thing 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE setrec_pool_size gauge\n"
                      "setrec_pool_size -3\n"),
            std::string::npos);
  // Histograms export as summaries: quantile lines estimated from the pow2
  // buckets (see Histogram::Quantile — {3,5} pins p50=2, p99=p999=5),
  // then _count and _sum.
  EXPECT_NE(
      text.find("# TYPE setrec_store_commit_ns summary\n"
                "setrec_store_commit_ns{quantile=\"0.5\"} 2\n"
                "setrec_store_commit_ns{quantile=\"0.99\"} 5\n"
                "setrec_store_commit_ns{quantile=\"0.999\"} 5\n"
                "setrec_store_commit_ns_count 2\n"
                "setrec_store_commit_ns_sum 8\n"),
      std::string::npos)
      << text;

  // Every line is either a comment or `name[{labels}] value` with a legal
  // Prometheus metric name (labels, when present, carry the quantile).
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    const std::size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      EXPECT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    EXPECT_EQ(name.rfind("setrec_", 0), 0u) << line;
    for (const char c : name) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_')
          << "illegal metric-name byte in: " << line;
    }
  }
}

// Labeled series: user-controlled label values are escaped at series
// creation, one TYPE line covers all series of a name, and the quantile
// label merges into existing braces.
TEST(WritePrometheusTest, LabeledSeriesRenderEscapedAndGrouped) {
  MetricsRegistry metrics;
  metrics.CounterLabeled("tenant.shed", "tenant", "acme").Add(1);
  metrics.CounterLabeled("tenant.shed", "tenant", "zeta").Add(2);
  metrics.HistogramLabeled("tenant.query_ns", "tenant", "a\\b\"c\nd")
      .Observe(3);

  std::ostringstream out;
  metrics.WritePrometheus(out);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE setrec_tenant_shed counter\n"
                      "setrec_tenant_shed{tenant=\"acme\"} 1\n"
                      "setrec_tenant_shed{tenant=\"zeta\"} 2\n"),
            std::string::npos)
      << text;
  // One TYPE line for the pair above — not one per series.
  std::size_t type_lines = 0;
  for (std::size_t at = text.find("# TYPE setrec_tenant_shed ");
       at != std::string::npos;
       at = text.find("# TYPE setrec_tenant_shed ", at + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  // The dangerous tenant id renders with `\`, `"`, newline escaped, and the
  // quantile label lands inside the same braces.
  EXPECT_NE(text.find("setrec_tenant_query_ns"
                      "{tenant=\"a\\\\b\\\"c\\nd\",quantile=\"0.5\"} 2\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("setrec_tenant_query_ns_count"
                      "{tenant=\"a\\\\b\\\"c\\nd\"} 1\n"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace setrec
