// Differential validation of the Theorem 5.12 decision procedure: a corpus
// of randomly composed positive single-statement methods over the drinkers
// schema is classified statically, and every verdict is cross-checked
// against exhaustive pairwise semantics on sampled instances —
//   "independent"  ⇒ the refuter must find no witness (soundness), and
//   "dependent"    ⇒ the refuter must find one (the methods are small and
//                     the witness space is dense, so sampling suffices).

#include <gtest/gtest.h>

#include "algebraic/method_library.h"
#include "algebraic/order_independence.h"
#include "core/instance_generator.h"
#include "relational/builder.h"

namespace setrec {
namespace {

/// Generates a random positive unary expression of domain Ba (output
/// attribute "f") over the drinkers method context [D, Ba], from a small
/// grammar of leaves and combinators that covers reads of own rows, other
/// rows, class relations and guards.
class ExpressionGenerator {
 public:
  explicit ExpressionGenerator(std::uint64_t seed) : rng_(seed) {}

  ExprPtr Generate(int depth) {
    if (depth <= 0 || rng_.UniformInt(3) == 0) return Leaf();
    switch (rng_.UniformInt(3)) {
      case 0:
        return ra::Union(Generate(depth - 1), Generate(depth - 1));
      case 1:
        // Conditioning on a guard over some relation.
        return ra::Product(Generate(depth - 1), ra::Guard(GuardSource()));
      default:
        // "except the argument bar": π_f(σ_{f≠arg1}(e × arg1)).
        return ra::Project(
            ra::SelectNeq(ra::Product(Generate(depth - 1), ra::Rel("arg1")),
                          "f", "arg1"),
            {"f"});
    }
  }

 private:
  ExprPtr Leaf() {
    switch (rng_.UniformInt(4)) {
      case 0:
        return ra::Rename(ra::Rel("arg1"), "arg1", "f");
      case 1:
        return ra::Rename(ra::Rel("Ba"), "Ba", "f");  // every bar
      case 2:
        // The receiving drinker's own bars.
        return ra::Project(
            ra::JoinEq(ra::Rel("self"), ra::Rel("Df"), "self", "D"), {"f"});
      default:
        return ra::Project(ra::Rel("Df"), {"f"});  // anyone's bars
    }
  }

  ExprPtr GuardSource() {
    switch (rng_.UniformInt(4)) {
      case 0:
        return ra::Rel("Dl");
      case 1:
        return ra::Rel("Bas");
      case 2:
        return ra::Rel("Df");
      default:
        return ra::Rel("Be");
    }
  }

  SplitMix64 rng_;
};

class DecisionCrossValidation
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecisionCrossValidation, VerdictMatchesSampledSemantics) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  ExpressionGenerator gen(GetParam() * 7919);
  ExprPtr e = gen.Generate(2);
  auto method_or = AlgebraicUpdateMethod::Make(
      &ds.schema, MethodSignature({ds.drinker, ds.bar}), "random",
      {UpdateStatement{ds.frequents, e}});
  ASSERT_TRUE(method_or.ok()) << ExprToString(*e);
  auto method = std::move(method_or).value();
  ASSERT_TRUE(method->IsPositiveMethod());

  const bool absolute = std::move(DecideOrderIndependence(
                                      *method,
                                      OrderIndependenceKind::kAbsolute))
                            .value();
  const bool key_order = std::move(DecideOrderIndependence(
                                       *method,
                                       OrderIndependenceKind::kKeyOrder))
                             .value();
  // Absolute implies key-order (key sets are sets).
  if (absolute) {
    EXPECT_TRUE(key_order) << ExprToString(*e);
  }

  InstanceGenerator::Options options;
  options.min_objects_per_class = 0;
  options.max_objects_per_class = 3;
  options.edge_probability = 0.45;
  auto witness = std::move(SearchOrderDependenceWitness(*method, ds.schema,
                                                        GetParam(), 30,
                                                        options))
                     .value();
  EXPECT_EQ(witness.has_value(), !absolute) << ExprToString(*e);

  auto key_witness = std::move(SearchOrderDependenceWitness(
                                   *method, ds.schema, GetParam(), 30,
                                   options,
                                   /*key_pairs_only=*/true))
                         .value();
  EXPECT_EQ(key_witness.has_value(), !key_order) << ExprToString(*e);
}

INSTANTIATE_TEST_SUITE_P(Corpus, DecisionCrossValidation,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace setrec
