// Tests for the telemetry primitives underneath the network service's
// observability: pow2-histogram quantile estimation, Prometheus label-value
// escaping (golden + fuzz), labeled-series rendering, trace-context scoping
// and cross-process family inheritance, family-filtered tree signatures,
// the bounded slow-request log, and ExecOptions trace-id attachment.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/exec_options.h"
#include "net/slowlog.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace setrec {
namespace {

std::string TempPath(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "setrec_telemetry_test";
  std::filesystem::create_directories(dir);
  const std::filesystem::path path =
      dir / (std::string(info->test_suite_name()) + "." + info->name() + "." +
             tag);
  std::filesystem::remove(path);
  return path.string();
}

// -- Histogram quantiles ------------------------------------------------------

TEST(HistogramQuantileTest, PinsPow2BucketEstimates) {
  Histogram empty;
  EXPECT_EQ(empty.Quantile(0.5), 0u);

  // {3, 5}: 3 lands in bucket [2,3] (midpoint 2), 5 in [4,7] (midpoint 5).
  // These are the exact values the stats op and WritePrometheus export.
  Histogram h;
  h.Observe(3);
  h.Observe(5);
  EXPECT_EQ(h.Quantile(0.5), 2u);
  EXPECT_EQ(h.Quantile(0.99), 5u);
  EXPECT_EQ(h.Quantile(0.999), 5u);
  EXPECT_EQ(h.Quantile(1.0), 5u);

  // Bucket 0 (zeros and ones) answers 1.
  Histogram zeros;
  zeros.Observe(0);
  EXPECT_EQ(zeros.Quantile(0.5), 1u);

  // A large sample answers its bucket's midpoint: 1e6 is in [2^19, 2^20-1].
  Histogram big;
  big.Observe(1'000'000);
  EXPECT_EQ(big.Quantile(0.5), 786431u);

  // The tail quantile walks to the top sample's bucket.
  Histogram spread;
  for (int i = 0; i < 99; ++i) spread.Observe(3);
  spread.Observe(1'000'000);
  EXPECT_EQ(spread.Quantile(0.5), 2u);
  EXPECT_EQ(spread.Quantile(0.999), 786431u);
}

// -- Label-value escaping -----------------------------------------------------

TEST(EscapeLabelValueTest, GoldenValuesArePinned) {
  EXPECT_EQ(EscapeLabelValue(""), "");
  EXPECT_EQ(EscapeLabelValue("plain-tenant_1"), "plain-tenant_1");
  EXPECT_EQ(EscapeLabelValue("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
  EXPECT_EQ(EscapeLabelValue("\\"), "\\\\");
  EXPECT_EQ(EscapeLabelValue("\""), "\\\"");
  EXPECT_EQ(EscapeLabelValue("\n"), "\\n");
}

TEST(EscapeLabelValueTest, FuzzedValuesStayWellFormedAndDistinct) {
  // Deterministic LCG fuzz biased toward the dangerous bytes. Escaping must
  // be injective (distinct tenant ids must never collapse into one series)
  // and must never leave a raw newline or an unescaped quote in the output
  // — either would let a tenant id forge exposition lines.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  const auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(state >> 33);
  };
  const char kDangerous[] = {'\\', '"', '\n', '{', '}', ','};
  std::set<std::string> raw;
  for (int round = 0; round < 1024; ++round) {
    std::string value;
    const std::uint32_t len = next() % 12;
    for (std::uint32_t i = 0; i < len; ++i) {
      if (next() % 2 == 0) {
        value.push_back(kDangerous[next() % sizeof(kDangerous)]);
      } else {
        value.push_back(static_cast<char>('a' + next() % 26));
      }
    }
    raw.insert(value);
  }
  std::set<std::string> escaped;
  for (const std::string& value : raw) {
    const std::string out = EscapeLabelValue(value);
    EXPECT_EQ(out.find('\n'), std::string::npos) << "raw newline survived";
    // Every quote must sit behind an odd run of backslashes.
    std::size_t backslashes = 0;
    for (char c : out) {
      if (c == '\\') {
        ++backslashes;
      } else {
        if (c == '"') {
          EXPECT_EQ(backslashes % 2, 1u) << "unescaped quote";
        }
        backslashes = 0;
      }
    }
    // A trailing escape would swallow the closing quote of the series key.
    EXPECT_EQ(backslashes % 2, 0u) << "dangling backslash";
    escaped.insert(out);
  }
  EXPECT_EQ(escaped.size(), raw.size()) << "escaping collapsed two values";
}

// -- Labeled series -----------------------------------------------------------

TEST(MetricsRegistryTest, LabeledSeriesRenderInWriteTextAndStayDistinct) {
  MetricsRegistry metrics;
  metrics.CounterLabeled("tenant.shed", "tenant", "acme").Add(2);
  metrics.GaugeLabeled("tenant.active", "tenant", "acme").Set(1);
  Histogram& h =
      metrics.HistogramLabeled("tenant.update_ns", "tenant", "acme");
  h.Observe(3);
  h.Observe(5);

  std::ostringstream out;
  metrics.WriteText(out);
  const std::string text = out.str();
  for (const char* needle : {
           "tenant.shed{tenant=\"acme\"} 2",
           "tenant.active{tenant=\"acme\"} 1",
           "tenant.update_ns_count{tenant=\"acme\"} 2",
           "tenant.update_ns_sum{tenant=\"acme\"} 8",
           "tenant.update_ns_p50{tenant=\"acme\"} 2",
           "tenant.update_ns_p99{tenant=\"acme\"} 5",
           "tenant.update_ns_p999{tenant=\"acme\"} 5",
       }) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }

  // Same name, different label value: a distinct instrument, not a shared
  // one — and the lookup is stable (same reference on re-resolution).
  metrics.CounterLabeled("tenant.shed", "tenant", "zeta").Add(7);
  EXPECT_EQ(metrics.CounterLabeled("tenant.shed", "tenant", "acme").value(),
            2u);
  EXPECT_EQ(&metrics.CounterLabeled("tenant.shed", "tenant", "acme"),
            &metrics.CounterLabeled("tenant.shed", "tenant", "acme"));

  // Snapshots key labeled series by their rendered name.
  const MetricsRegistry::Snapshot snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("tenant.shed{tenant=\"zeta\"}"), 7u);
  EXPECT_EQ(snap.histograms.at("tenant.update_ns{tenant=\"acme\"}").p99, 5u);
}

// -- Trace-context scoping ----------------------------------------------------

TEST(TraceContextTest, InstalledContextWinsAndBoundarySpanRecordsRemoteParent) {
  Tracer tracer;
  {
    ScopedTraceContext scope(&tracer, TraceContext{42, 7, true});
    EXPECT_EQ(tracer.CurrentTraceId(), 42u);
    TraceSpan outer(&tracer, "outer");
    TraceSpan inner(&tracer, "inner");
  }
  EXPECT_EQ(tracer.CurrentTraceId(), 0u);  // context restored
  {
    TraceSpan after(&tracer, "after");
  }

  std::map<std::string, SpanEvent> by_name;
  for (const SpanEvent& e : tracer.Events()) by_name[e.name] = e;
  EXPECT_EQ(by_name["outer"].trace_id, 42u);
  // Only the boundary span joining the remote family records the sender's
  // span id; nested spans inherit the family but not the remote edge.
  EXPECT_EQ(by_name["outer"].remote_parent, 7u);
  EXPECT_EQ(by_name["inner"].trace_id, 42u);
  EXPECT_EQ(by_name["inner"].remote_parent, 0u);
  EXPECT_EQ(by_name["inner"].parent, by_name["outer"].id);
  EXPECT_EQ(by_name["after"].trace_id, 0u);
}

TEST(TraceContextTest, InstalledContextOverridesTheEnclosingSpansFamily) {
  // The replica-replay pattern: a traced record is applied inside a
  // long-lived untraced span (net/pull). The installed context must pull
  // the replay span into the record's family while local parentage (the
  // thread's span stack) is preserved.
  Tracer tracer;
  std::uint64_t session_id = 0;
  {
    TraceSpan session(&tracer, "session");
    session_id = session.id();
    ScopedTraceContext scope(&tracer, TraceContext{99, 5, true});
    TraceSpan replay(&tracer, "replay");
    EXPECT_EQ(replay.trace_id(), 99u);
  }
  for (const SpanEvent& e : tracer.Events()) {
    if (std::string_view(e.name) != "replay") continue;
    EXPECT_EQ(e.trace_id, 99u);
    EXPECT_EQ(e.remote_parent, 5u);
    EXPECT_EQ(e.parent, session_id);
  }
}

TEST(TraceContextTest, InactiveContextsAndNullTracersAreInert) {
  Tracer tracer;
  {
    // sampled=false: travels as untraced.
    ScopedTraceContext scope(&tracer, TraceContext{13, 1, false});
    EXPECT_EQ(tracer.CurrentTraceId(), 0u);
    TraceSpan span(&tracer, "unsampled");
  }
  for (const SpanEvent& e : tracer.Events()) {
    EXPECT_EQ(e.trace_id, 0u);
  }
  // Null-tracer guards compile to nothing and must not crash.
  ScopedTraceContext null_scope(nullptr, TraceContext{1, 1, true});
  TraceSpan null_span(nullptr, "inert");
  EXPECT_FALSE(null_span.active());
}

TEST(TraceContextTest, TreeSignatureForTraceFiltersFamiliesAndDedupsRetries) {
  Tracer tracer;
  const auto run_request = [&tracer](std::uint64_t trace) {
    ScopedTraceContext scope(&tracer, TraceContext{trace, 0, true});
    TraceSpan request(&tracer, "request");
    TraceSpan execute(&tracer, "execute");
  };
  run_request(1);
  run_request(1);  // an idempotent retry duplicates the whole subtree
  run_request(2);
  {
    ScopedTraceContext scope(&tracer, TraceContext{2, 0, true});
    TraceSpan other(&tracer, "other");
  }

  // Family 1's signature is identical to a single clean run on a fresh
  // tracer: the duplicated retry subtree dedups away.
  Tracer fresh;
  {
    ScopedTraceContext scope(&fresh, TraceContext{1, 0, true});
    TraceSpan request(&fresh, "request");
    TraceSpan execute(&fresh, "execute");
  }
  const std::string family1 = tracer.TreeSignatureForTrace(1);
  EXPECT_EQ(family1, fresh.TreeSignatureForTrace(1));
  EXPECT_NE(family1.find("request"), std::string::npos);
  EXPECT_NE(family1.find("execute"), std::string::npos);
  EXPECT_EQ(family1.find("other"), std::string::npos);

  // Family 2 carries its extra root; family 3 does not exist.
  const std::string family2 = tracer.TreeSignatureForTrace(2);
  EXPECT_NE(family2, family1);
  EXPECT_NE(family2.find("other"), std::string::npos);
  EXPECT_TRUE(tracer.TreeSignatureForTrace(3).empty());
}

// -- Slow-request log ---------------------------------------------------------

TEST(SlowRequestLogTest, WrapsAtTheByteBudgetAndDropsOversizeEntries) {
  const std::string path = TempPath("slowlog");
  SlowRequestLog log(path, 64);
  const std::string entry(20, 'x');  // 21 bytes each with the newline
  ASSERT_TRUE(log.Append(entry).ok());
  ASSERT_TRUE(log.Append(entry).ok());
  ASSERT_TRUE(log.Append(entry).ok());  // 63 bytes: still inside the budget
  EXPECT_EQ(log.entries(), 3u);
  EXPECT_EQ(log.wraps(), 0u);
  EXPECT_EQ(std::filesystem::file_size(path), 63u);

  // The fourth entry would exceed the budget: the file wraps (truncates)
  // first, so the newest capture is always present and the cap holds.
  ASSERT_TRUE(log.Append(entry).ok());
  EXPECT_EQ(log.wraps(), 1u);
  EXPECT_EQ(log.entries(), 4u);
  EXPECT_EQ(std::filesystem::file_size(path), 21u);

  // An entry that alone exceeds the whole budget is dropped, never
  // partially written.
  const std::string oversize(100, 'y');
  EXPECT_EQ(log.Append(oversize).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_EQ(std::filesystem::file_size(path), 21u);
}

TEST(SlowRequestLogTest, ResumesAnExistingFilesBudgetAcrossReopen) {
  const std::string path = TempPath("slowlog");
  {
    SlowRequestLog log(path, 64);
    ASSERT_TRUE(log.Append(std::string(20, 'a')).ok());
    ASSERT_TRUE(log.Append(std::string(20, 'b')).ok());
  }
  // A reopened log knows the 42 bytes already on disk: two more 21-byte
  // entries fit only by wrapping once.
  SlowRequestLog reopened(path, 64);
  ASSERT_TRUE(reopened.Append(std::string(20, 'c')).ok());  // 63 bytes
  ASSERT_TRUE(reopened.Append(std::string(20, 'd')).ok());  // wraps
  EXPECT_EQ(reopened.wraps(), 1u);
  EXPECT_EQ(std::filesystem::file_size(path), 21u);
}

// -- ExecOptions trace-id attachment ------------------------------------------

TEST(ExecScopeTest, AttachesAndRestoresTheOptionsTraceId) {
  ExecContext ctx;
  ExecOptions options;
  options.ctx = &ctx;
  options.trace_id = 77;
  {
    ExecScope scope(options);
    EXPECT_EQ(scope.ctx().trace_id(), 77u);
  }
  EXPECT_EQ(ctx.trace_id(), 0u);  // borrowed contexts come back untouched

  // A context already carrying a family wins over the options.
  ctx.set_trace_id(5);
  {
    ExecScope scope(options);
    EXPECT_EQ(scope.ctx().trace_id(), 5u);
  }
  EXPECT_EQ(ctx.trace_id(), 5u);
}

}  // namespace
}  // namespace setrec
