// Tests for cooperative resource governance (core/exec_context.h): step
// budgets, wall-clock deadlines, row and memory caps, cancellation — and
// their end-to-end effect on the worst-case-exponential kernels: the chase,
// the Klug containment test, the permutation oracle, and the Theorem 5.12
// decision procedure (which must degrade to a sound kUnknown).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "algebraic/method_library.h"
#include "algebraic/order_independence.h"
#include "conjunctive/chase.h"
#include "conjunctive/containment.h"
#include "core/exec_context.h"
#include "core/sequential.h"
#include "text/parser.h"

namespace setrec {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

constexpr ClassId kP = 0;

RelationScheme MakeScheme(std::vector<Attribute> attrs) {
  return std::move(RelationScheme::Make(std::move(attrs))).value();
}

Catalog GraphCatalog() {
  Catalog catalog;
  EXPECT_TRUE(
      catalog.AddRelation("E", MakeScheme({{"x", kP}, {"y", kP}})).ok());
  return catalog;
}

TEST(ExecContextTest, PermissiveContextNeverTrips) {
  ExecContext ctx;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ctx.CheckPoint("test/loop").ok());
  }
  EXPECT_EQ(ctx.steps(), 1000u);
  EXPECT_FALSE(ctx.limited());
}

TEST(ExecContextTest, StepBudgetTripsDeterministically) {
  ExecContext ctx(ExecContext::StepBudget(5));
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ctx.CheckPoint("test/loop").ok());
  }
  Status s = ctx.CheckPoint("test/loop");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(s.message().find("test/loop"), std::string::npos);
  EXPECT_TRUE(ctx.has_step_budget());
  EXPECT_TRUE(ctx.limited());
}

TEST(ExecContextTest, DeadlineTripsWithinBoundedTime) {
  ExecContext ctx(ExecContext::Deadline(milliseconds(5)));
  EXPECT_TRUE(ctx.has_deadline());
  const auto start = steady_clock::now();
  Status s = Status::OK();
  // A runaway loop: only the deadline can stop it.
  for (std::uint64_t i = 0; i < (1u << 30) && s.ok(); ++i) {
    s = ctx.CheckPoint("test/spin");
  }
  const auto elapsed = steady_clock::now() - start;
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(ExecContextTest, RowBudgetTrips) {
  ExecContext::Limits limits;
  limits.max_rows = 10;
  ExecContext ctx(limits);
  ASSERT_TRUE(ctx.ChargeRows(10, "test/rows").ok());
  Status s = ctx.ChargeRows(1, "test/rows");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.rows(), 11u);
}

TEST(ExecContextTest, MemoryHighWaterTracksChargeAndRelease) {
  ExecContext::Limits limits;
  limits.max_memory_bytes = 100;
  ExecContext ctx(limits);
  ASSERT_TRUE(ctx.ChargeMemory(60, "test/mem").ok());
  ctx.ReleaseMemory(60);
  ASSERT_TRUE(ctx.ChargeMemory(80, "test/mem").ok());
  EXPECT_EQ(ctx.memory_in_use(), 80u);
  EXPECT_EQ(ctx.memory_high_water(), 80u);
  Status s = ctx.ChargeMemory(30, "test/mem");
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(ExecContextTest, CancellationInternalAndExternal) {
  ExecContext ctx;
  ASSERT_TRUE(ctx.CheckPoint("test/pre").ok());
  ctx.RequestCancel();
  EXPECT_EQ(ctx.CheckPoint("test/post").code(), StatusCode::kCancelled);

  std::atomic<bool> flag{false};
  ExecContext bound;
  bound.BindCancelFlag(&flag);
  ASSERT_TRUE(bound.CheckPoint("test/pre").ok());
  flag.store(true);
  EXPECT_EQ(bound.CheckPoint("test/post").code(), StatusCode::kCancelled);
}

// -- Governed kernels --------------------------------------------------------

TEST(GovernedKernelsTest, ChaseStopsOnStepBudget) {
  // A dense query whose fd rule has many pairs to scan: q over E(x, y_i)
  // with E: x→y merges all the y's one pair per round.
  ConjunctiveQuery q;
  VarId x = q.NewVar(kP);
  for (int i = 0; i < 16; ++i) {
    q.AddConjunct("E", {x, q.NewVar(kP)});
  }
  q.set_summary({x});
  DependencySet deps;
  deps.fds.push_back(FunctionalDependency{"E", {"x"}, "y"});

  ExecContext ctx(ExecContext::StepBudget(3));
  Result<ConjunctiveQuery> chased = ChaseQuery(q, deps, GraphCatalog(), ctx);
  ASSERT_FALSE(chased.ok());
  EXPECT_EQ(chased.status().code(), StatusCode::kResourceExhausted);

  // The same input finishes under a permissive context.
  EXPECT_TRUE(ChaseQuery(q, deps, GraphCatalog()).ok());
}

/// A chain query with `n` same-domain variables: the representative-set
/// enumeration behind CheckContainment is Bell(n)-sized — adversarial input
/// for the containment kernel.
PositiveQuery ChainQuery(int n) {
  ConjunctiveQuery q;
  std::vector<VarId> vars;
  for (int i = 0; i < n; ++i) vars.push_back(q.NewVar(kP));
  for (int i = 0; i + 1 < n; ++i) {
    q.AddConjunct("E", {vars[static_cast<std::size_t>(i)],
                        vars[static_cast<std::size_t>(i) + 1]});
  }
  q.set_summary({vars[0]});
  return PositiveQuery{MakeScheme({{"v", kP}}), {std::move(q)}};
}

TEST(GovernedKernelsTest, ContainmentStopsOnStepBudget) {
  PositiveQuery q = ChainQuery(12);
  ExecContext ctx(ExecContext::StepBudget(1000));
  Result<ContainmentResult> r =
      CheckContainment(q, q, DependencySet{}, GraphCatalog(),
                       /*simplify=*/false, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(GovernedKernelsTest, ContainmentStopsOnDeadline) {
  // Bell(12) ≈ 4.2M representative partitions: far beyond a 5ms deadline,
  // so the call must come back with kDeadlineExceeded — and promptly.
  PositiveQuery q = ChainQuery(12);
  ExecContext ctx(ExecContext::Deadline(milliseconds(5)));
  const auto start = steady_clock::now();
  Result<ContainmentResult> r =
      CheckContainment(q, q, DependencySet{}, GraphCatalog(),
                       /*simplify=*/false, ctx);
  const auto elapsed = steady_clock::now() - start;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(GovernedKernelsTest, ContainmentStopsOnCancellation) {
  PositiveQuery q = ChainQuery(12);
  ExecContext ctx;
  ctx.RequestCancel();
  Result<ContainmentResult> r =
      CheckContainment(q, q, DependencySet{}, GraphCatalog(),
                       /*simplify=*/false, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

// -- The permutation oracle (satellite: uniform oversized-set handling) ------

class DrinkersOracle : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::move(MakeDrinkersSchema()).value();
    method_ = std::move(MakeFavoriteBar(ds_)).value();
    instance_ = std::move(ParseInstance(R"(
      instance {
        object D(1);
        object Ba(1); object Ba(2); object Ba(3); object Ba(4);
        object Ba(5); object Ba(6); object Ba(7); object Ba(8);
      }
    )",
                                        &ds_.schema))
                    .value();
    for (std::uint32_t i = 1; i <= 8; ++i) {
      receivers_.push_back(Receiver::Unchecked(
          {ObjectId(ds_.drinker, 1), ObjectId(ds_.bar, i)}));
    }
  }

  DrinkersSchema ds_;
  std::unique_ptr<AlgebraicUpdateMethod> method_;
  Instance instance_{nullptr};
  std::vector<Receiver> receivers_;
};

TEST_F(DrinkersOracle, OversizedSetFailsUpFrontWithoutALimit) {
  // 8 receivers > the default guard of 7: with a permissive context the
  // |T|! enumeration is refused up front — uniformly as kResourceExhausted,
  // not as an argument error.
  Result<OrderIndependenceOutcome> r =
      OrderIndependentOn(*method_, instance_, receivers_);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("step budget or deadline"),
            std::string::npos);
}

TEST_F(DrinkersOracle, OversizedSetIsAttemptedUnderABudget) {
  // With a step budget the guard steps aside and the budget governs the
  // attempt instead; favorite_bar disagrees on the very first two orders,
  // so even a modest budget suffices to find the witness.
  ExecContext ctx(ExecContext::StepBudget(100000));
  Result<OrderIndependenceOutcome> r =
      OrderIndependentOn(*method_, instance_, receivers_, ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->order_independent);
}

TEST_F(DrinkersOracle, TinyBudgetStopsThePermutationOracle) {
  ExecContext ctx(ExecContext::StepBudget(2));
  Result<OrderIndependenceOutcome> r =
      OrderIndependentOn(*method_, instance_, receivers_, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

// -- Three-valued decision (sound degradation) -------------------------------

TEST(BoundedDecisionTest, DecidesWhenTheBudgetSuffices) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto add_bar = std::move(MakeAddBar(ds)).value();
  ExecContext permissive;
  EXPECT_EQ(std::move(DecideOrderIndependenceBounded(
                          *add_bar, OrderIndependenceKind::kAbsolute,
                          permissive))
                .value(),
            OrderIndependenceVerdict::kIndependent);

  auto favorite = std::move(MakeFavoriteBar(ds)).value();
  ExecContext permissive2;
  EXPECT_EQ(std::move(DecideOrderIndependenceBounded(
                          *favorite, OrderIndependenceKind::kAbsolute,
                          permissive2))
                .value(),
            OrderIndependenceVerdict::kDependent);
}

TEST(BoundedDecisionTest, ExhaustedBudgetIsUnknownNotAVerdict) {
  // add_bar IS order independent, but a starved decision run must not claim
  // so: it degrades to kUnknown (sound: treat as potentially dependent).
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto add_bar = std::move(MakeAddBar(ds)).value();
  ExecContext ctx(ExecContext::StepBudget(50));
  EXPECT_EQ(std::move(DecideOrderIndependenceBounded(
                          *add_bar, OrderIndependenceKind::kAbsolute, ctx))
                .value(),
            OrderIndependenceVerdict::kUnknown);
}

TEST(BoundedDecisionTest, CancellationIsNotFoldedIntoUnknown) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto add_bar = std::move(MakeAddBar(ds)).value();
  ExecContext ctx;
  ctx.RequestCancel();
  Result<OrderIndependenceVerdict> r = DecideOrderIndependenceBounded(
      *add_bar, OrderIndependenceKind::kAbsolute, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(BoundedDecisionTest, NonPositiveMethodsStillErrorNotUnknown) {
  // The InvalidArgument for non-positive methods is a property of the
  // input, not of the budget: it must not degrade to kUnknown.
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto negative = std::move(ParseMethod(R"(
    method drop_all [D, Ba] {
      f := diff(project[f](join[self = D](self, Df)),
                rename[arg1 -> f](arg1));
    }
  )",
                                        &ds.schema))
                      .value();
  ExecContext ctx(ExecContext::StepBudget(50));
  Result<OrderIndependenceVerdict> r = DecideOrderIndependenceBounded(
      *negative, OrderIndependenceKind::kAbsolute, ctx);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace setrec
