// Tests for the text front-end: parsing of schemas, instances, expressions
// and methods, error positions, and exact round trips with the printers —
// including a randomized expression round-trip property.

#include <gtest/gtest.h>

#include "algebraic/method_library.h"
#include "algebraic/order_independence.h"
#include "core/instance_generator.h"
#include "relational/builder.h"
#include "text/parser.h"
#include "text/printer.h"

namespace setrec {
namespace {

constexpr const char kDrinkersText[] = R"(
schema {
  class D; class Ba; class Be;
  property f : D -> Ba;
  property l : D -> Be;   // likes
  property s : Ba -> Be;  // serves
}
)";

TEST(ParseSchemaTest, ParsesClassesAndProperties) {
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  EXPECT_EQ(schema->num_classes(), 3u);
  EXPECT_EQ(schema->num_properties(), 3u);
  ClassId d = std::move(schema->FindClass("D")).value();
  PropertyId f = std::move(schema->FindProperty("f")).value();
  EXPECT_EQ(schema->property(f).source, d);
}

TEST(ParseSchemaTest, ErrorsCarryPositions) {
  Result<std::unique_ptr<Schema>> r = ParseSchema("schema { klass D; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("1:10"), std::string::npos)
      << r.status().message();
  // Unknown class in a property.
  r = ParseSchema("schema { class D;\nproperty f : D -> Nope; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("Nope"), std::string::npos);
  // Stray character.
  r = ParseSchema("schema { class D; $ }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unexpected character"),
            std::string::npos);
}

TEST(ParseInstanceTest, BuildsFigureTwo) {
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  auto instance = std::move(ParseInstance(R"(
    instance {
      object D(1);
      object Ba(1); object Ba(2); object Ba(3);
      edge D(1) f Ba(1);
      edge D(1) f Ba(2);
    }
  )",
                                          schema.get()))
                      .value();
  EXPECT_EQ(instance.num_objects(), 4u);
  EXPECT_EQ(instance.num_edges(), 2u);
  ClassId d = std::move(schema->FindClass("D")).value();
  PropertyId f = std::move(schema->FindProperty("f")).value();
  EXPECT_EQ(instance.Targets(ObjectId(d, 1), f).size(), 2u);

  // Dangling edges are rejected with the library's usual semantics.
  auto bad = ParseInstance("instance { edge D(9) f Ba(9); }", schema.get());
  EXPECT_EQ(bad.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ParseExpressionTest, AllOperators) {
  ExprPtr e = std::move(ParseExpression(
                  "union(project[f](join[self = D](self, Df)),"
                  " rename[arg1 -> f](arg1))"))
                  .value();
  EXPECT_EQ(e->op(), Expr::Op::kUnion);
  EXPECT_EQ(ExprToString(*e),
            "(π[f](σ[self=D]((self × Df))) ∪ ρ[arg1→f](arg1))");

  ExprPtr guard = std::move(ParseExpression("project[](Df)")).value();
  EXPECT_EQ(guard->op(), Expr::Op::kProject);
  EXPECT_TRUE(guard->projection().empty());

  ExprPtr neq = std::move(ParseExpression(
                    "select[f != arg1](product(Df, arg1))"))
                    .value();
  EXPECT_EQ(neq->op(), Expr::Op::kSelectNeq);

  ExprPtr diff = std::move(ParseExpression("diff(Ba, Ba)")).value();
  EXPECT_EQ(diff->op(), Expr::Op::kDifference);

  // Primed relation names (used by the Theorem 5.6 reduction) lex fine.
  ExprPtr primed = std::move(ParseExpression("join[self = self'](self, self')"))
                       .value();
  EXPECT_EQ(primed->op(), Expr::Op::kSelectEq);

  EXPECT_FALSE(ParseExpression("union(Df)").ok());
  EXPECT_FALSE(ParseExpression("select[a < b](Df)").ok());
}

TEST(ParseMethodTest, ParsesAddBarAndValidates) {
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  auto method = std::move(ParseMethod(R"(
    method add_bar [D, Ba] {
      f := union(project[f](join[self = D](self, Df)),
                 rename[arg1 -> f](arg1));
    }
  )",
                                      schema.get()))
                    .value();
  EXPECT_EQ(method->name(), "add_bar");
  EXPECT_TRUE(method->IsPositiveMethod());
  // The parsed method is the library's add_bar: same decision verdicts.
  EXPECT_TRUE(std::move(DecideOrderIndependence(
                            *method, OrderIndependenceKind::kAbsolute))
                  .value());

  // Validation failures surface (serves is not a Drinker property).
  auto bad = ParseMethod("method m [D] { s := rename[arg1 -> s](arg1); }",
                         schema.get());
  EXPECT_FALSE(bad.ok());
  // Empty signature.
  EXPECT_FALSE(ParseMethod("method m [] { }", schema.get()).ok());
}

TEST(RoundTripTest, SchemaAndInstance) {
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  auto reparsed = std::move(ParseSchema(SchemaToText(*schema))).value();
  EXPECT_EQ(SchemaToText(*schema), SchemaToText(*reparsed));

  InstanceGenerator gen(schema.get(), 5);
  InstanceGenerator::Options options;
  options.max_objects_per_class = 4;
  options.edge_probability = 0.5;
  Instance instance = gen.RandomInstance(options);
  Instance round =
      std::move(ParseInstance(InstanceToText(instance), schema.get()))
          .value();
  EXPECT_EQ(instance, round);
}

TEST(RoundTripTest, LibraryMethods) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  std::vector<std::unique_ptr<AlgebraicUpdateMethod>> methods;
  methods.push_back(std::move(MakeAddBar(ds)).value());
  methods.push_back(std::move(MakeFavoriteBar(ds)).value());
  methods.push_back(std::move(MakeDeleteBar(ds)).value());
  methods.push_back(std::move(MakeLikesServesBar(ds)).value());
  for (const auto& method : methods) {
    const std::string text = MethodToText(*method);
    auto round = std::move(ParseMethod(text, &ds.schema)).value();
    EXPECT_EQ(MethodToText(*round), text) << method->name();
    // Semantics preserved: same behaviour on a random instance.
    InstanceGenerator gen(&ds.schema, 17);
    InstanceGenerator::Options options;
    options.min_objects_per_class = 1;
    options.max_objects_per_class = 3;
    options.edge_probability = 0.5;
    Instance instance = gen.RandomInstance(options);
    auto receivers =
        gen.RandomReceiverSet(instance, method->signature(), 2);
    for (const Receiver& t : receivers) {
      EXPECT_EQ(std::move(method->Apply(instance, t)).value(),
                std::move(round->Apply(instance, t)).value())
          << method->name();
    }
  }
}

/// Randomized expression round trip: print-then-parse is the structural
/// identity (compared via the canonical pretty printer).
class ExprRoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExprRoundTripTest, PrintParseIsIdentity) {
  SplitMix64 rng(GetParam() * 31337);
  std::function<ExprPtr(int)> random_expr = [&](int depth) -> ExprPtr {
    if (depth <= 0) {
      const char* names[] = {"Df", "Dl", "Bas", "self", "arg1"};
      return ra::Rel(names[rng.UniformInt(5)]);
    }
    switch (rng.UniformInt(6)) {
      case 0:
        return ra::Union(random_expr(depth - 1), random_expr(depth - 1));
      case 1:
        return ra::Diff(random_expr(depth - 1), random_expr(depth - 1));
      case 2:
        return ra::Product(random_expr(depth - 1), random_expr(depth - 1));
      case 3:
        return rng.UniformInt(2) == 0
                   ? ra::SelectEq(random_expr(depth - 1), "x", "y")
                   : ra::SelectNeq(random_expr(depth - 1), "x", "y");
      case 4:
        return ra::Project(random_expr(depth - 1),
                           rng.UniformInt(2) == 0
                               ? std::vector<std::string>{}
                               : std::vector<std::string>{"x", "y"});
      default:
        return ra::Rename(random_expr(depth - 1), "x", "w");
    }
  };
  ExprPtr e = random_expr(3);
  ExprPtr round = std::move(ParseExpression(ExprToText(*e))).value();
  EXPECT_EQ(ExprToString(*e), ExprToString(*round));
  EXPECT_EQ(ExprToText(*e), ExprToText(*round));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprRoundTripTest,
                         ::testing::Range<std::uint64_t>(1, 21));

/// Robustness fuzzing: random garbage must produce parse errors, never
/// crashes or ok-results-by-accident that violate invariants.
class ParserFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzzTest, RandomInputNeverCrashes) {
  SplitMix64 rng(GetParam() * 7817);
  const std::string charset =
      "abcXYZ0189 (){}[];,:=!->/\n\t$#schema class property union";
  auto schema = std::move(ParseSchema(kDrinkersText)).value();
  for (int round = 0; round < 50; ++round) {
    std::string input;
    const std::size_t len = rng.UniformInt(60);
    for (std::size_t i = 0; i < len; ++i) {
      input.push_back(charset[rng.UniformInt(charset.size())]);
    }
    // All four parsers must return (error or value), never crash.
    Result<std::unique_ptr<Schema>> s = ParseSchema(input);
    Result<ExprPtr> e = ParseExpression(input);
    Result<Instance> inst = ParseInstance(input, schema.get());
    Result<std::unique_ptr<AlgebraicUpdateMethod>> m =
        ParseMethod(input, schema.get());
    // If an expression parses, the printer round trip must hold.
    if (e.ok()) {
      ExprPtr round2 = std::move(ParseExpression(ExprToText(**e))).value();
      EXPECT_EQ(ExprToText(**e), ExprToText(*round2));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace setrec
