// Proposition 5.14: for query-order independence, the Lemma 3.3 pair
// reduction fails in both directions. We reproduce both counterexamples
// exactly as the paper constructs them.

#include <gtest/gtest.h>

#include "algebraic/method_library.h"
#include "algebraic/order_independence.h"
#include "core/instance_generator.h"
#include "core/sequential.h"
#include "relational/builder.h"

namespace setrec {
namespace {

/// Fixture building the single-class schema with properties a, b.
class Prop514Test : public ::testing::Test {
 protected:
  void SetUp() override { ps_ = std::move(MakePairSchema()).value(); }

  ObjectId C(std::uint32_t i) const { return ObjectId(ps_.c, i); }

  PairSchema ps_;
};

TEST_F(Prop514Test, GuardAtLeastCounts) {
  Instance instance(&ps_.schema);
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(instance.AddObject(C(i)).ok());
  }
  auto count_guard = [&](int n) {
    ExprPtr g = std::move(GuardAtLeastTuples("Ca", "C", "a", n)).value();
    auto receivers_or = ReceiversFromQuery(
        ra::Product(Expr::Relation("Cb"), g), instance,
        MethodSignature({ps_.c, ps_.c}));
    return std::move(receivers_or).value().size();
  };
  // One b-edge so Cb is non-empty; grow Ca and watch the guards flip.
  ASSERT_TRUE(instance.AddEdge(C(0), ps_.b, C(1)).ok());
  EXPECT_EQ(count_guard(2), 0u);
  EXPECT_EQ(count_guard(3), 0u);
  ASSERT_TRUE(instance.AddEdge(C(0), ps_.a, C(1)).ok());
  EXPECT_EQ(count_guard(2), 0u);
  ASSERT_TRUE(instance.AddEdge(C(1), ps_.a, C(2)).ok());
  EXPECT_EQ(count_guard(2), 1u);
  EXPECT_EQ(count_guard(3), 0u);
  ASSERT_TRUE(instance.AddEdge(C(2), ps_.a, C(3)).ok());
  EXPECT_EQ(count_guard(3), 1u);
}

/// The if-direction fails: M is order independent on every two-element
/// subset of Q(I), yet not Q-order independent.
TEST_F(Prop514Test, IfDirectionCounterexample) {
  auto method = std::move(MakeConditionalDeleteMethod(ps_)).value();
  ExprPtr query = std::move(MakeProp514Query(ps_)).value();

  // The paper's instance: Ca = {(c1,α1),(c2,α2),(c3,α)} and
  // Cb = {(c1,α1),(c2,α2),(c3,β)} with α ≠ β.
  Instance instance(&ps_.schema);
  const ObjectId c1 = C(0), c2 = C(1), c3 = C(2);
  const ObjectId alpha1 = C(3), alpha2 = C(4), alpha = C(5), beta = C(6);
  for (ObjectId o : {c1, c2, c3, alpha1, alpha2, alpha, beta}) {
    ASSERT_TRUE(instance.AddObject(o).ok());
  }
  ASSERT_TRUE(instance.AddEdge(c1, ps_.a, alpha1).ok());
  ASSERT_TRUE(instance.AddEdge(c2, ps_.a, alpha2).ok());
  ASSERT_TRUE(instance.AddEdge(c3, ps_.a, alpha).ok());
  ASSERT_TRUE(instance.AddEdge(c1, ps_.b, alpha1).ok());
  ASSERT_TRUE(instance.AddEdge(c2, ps_.b, alpha2).ok());
  ASSERT_TRUE(instance.AddEdge(c3, ps_.b, beta).ok());

  std::vector<Receiver> q_receivers =
      std::move(ReceiversFromQuery(query, instance,
                                   MethodSignature({ps_.c, ps_.c})))
          .value();
  ASSERT_EQ(q_receivers.size(), 3u);  // the three Cb pairs (#Ca = 3)

  // Every two-element subset of Q(I) is order independent...
  for (std::size_t i = 0; i < q_receivers.size(); ++i) {
    for (std::size_t j = i + 1; j < q_receivers.size(); ++j) {
      std::vector<Receiver> pair = {q_receivers[i], q_receivers[j]};
      auto outcome =
          std::move(OrderIndependentOn(*method, instance, pair)).value();
      EXPECT_TRUE(outcome.order_independent) << i << "," << j;
    }
  }
  // ...but the full three-element Q(I) is not.
  auto full =
      std::move(OrderIndependentOn(*method, instance, q_receivers)).value();
  EXPECT_FALSE(full.order_independent);
}

/// The only-if direction fails: M is Q-order independent for Q = C×C×C,
/// yet some pair of receivers from Q(I) disagrees.
TEST_F(Prop514Test, OnlyIfDirectionCounterexample) {
  auto method = std::move(MakeCopyExtendMethod(ps_)).value();
  ASSERT_TRUE(method->IsPositiveMethod());

  // The paper's instance: two objects, no edges.
  Instance instance(&ps_.schema);
  const ObjectId o1 = C(0), o2 = C(1);
  ASSERT_TRUE(instance.AddObject(o1).ok());
  ASSERT_TRUE(instance.AddObject(o2).ok());

  // The disagreeing pair t1 = (o1,o1,o1), t2 = (o1,o2,o1).
  Receiver t1 = Receiver::Unchecked({o1, o1, o1});
  Receiver t2 = Receiver::Unchecked({o1, o2, o1});
  std::vector<Receiver> ab = {t1, t2}, ba = {t2, t1};
  Instance iab = std::move(ApplySequence(*method, instance, ab)).value();
  Instance iba = std::move(ApplySequence(*method, instance, ba)).value();
  EXPECT_EQ(iab.Targets(o1, ps_.a), (std::vector<ObjectId>{o1}));
  EXPECT_EQ(iba.Targets(o1, ps_.a), (std::vector<ObjectId>{o2}));
  EXPECT_FALSE(iab == iba);

  // Yet the *full* receiver set Q(I) = C×C×C is order independent: every
  // enumeration ends with every object linked to all objects by a and b.
  std::vector<Receiver> all = InstanceGenerator::AllReceivers(
      instance, MethodSignature({ps_.c, ps_.c, ps_.c}));
  ASSERT_EQ(all.size(), 8u);
  // 8! = 40320 permutations is too many; sample prefixes of the
  // lexicographic enumeration plus reversed and rotated orders.
  Instance reference =
      std::move(ApplySequence(*method, instance, all)).value();
  std::vector<Receiver> reversed(all.rbegin(), all.rend());
  EXPECT_EQ(std::move(ApplySequence(*method, instance, reversed)).value(),
            reference);
  for (std::size_t rot = 1; rot < all.size(); ++rot) {
    std::vector<Receiver> rotated(all.begin() + static_cast<std::ptrdiff_t>(rot),
                                  all.end());
    rotated.insert(rotated.end(), all.begin(),
                   all.begin() + static_cast<std::ptrdiff_t>(rot));
    EXPECT_EQ(std::move(ApplySequence(*method, instance, rotated)).value(),
              reference);
  }
  // The expected final state: both o1 and o2 have {o1, o2} as a- and
  // b-targets (every object ends with all other objects, Prop 5.14).
  for (ObjectId o : {o1, o2}) {
    EXPECT_EQ(reference.Targets(o, ps_.a), (std::vector<ObjectId>{o1, o2}));
    EXPECT_EQ(reference.Targets(o, ps_.b), (std::vector<ObjectId>{o1, o2}));
  }
}

TEST(QueryOrderRefuterTest, FindsAndMissesWitnessesAsExpected) {
  // Q = D × Ba (all receiver pairs). favorite_bar is not Q-order
  // independent (same drinker, different bars); add_bar is.
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  ExprPtr q = ra::Product(Expr::Relation("D"), Expr::Relation("Ba"));
  InstanceGenerator::Options options;
  options.min_objects_per_class = 1;
  options.max_objects_per_class = 2;
  options.edge_probability = 0.4;

  auto favorite = std::move(MakeFavoriteBar(ds)).value();
  auto witness = std::move(SearchQueryOrderDependenceWitness(
                               *favorite, q, ds.schema, 5, 10, options))
                     .value();
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(witness->outcome.order_independent);

  auto add_bar = std::move(MakeAddBar(ds)).value();
  auto none = std::move(SearchQueryOrderDependenceWitness(
                            *add_bar, q, ds.schema, 5, 10, options))
                  .value();
  EXPECT_FALSE(none.has_value());
}

TEST_F(Prop514Test, QueryOrderRefuterFindsTheProp514Witness) {
  // The paper's M₁/Q pair: the refuter must eventually hit an instance
  // where the full Q(I) has disagreeing enumerations, even though every
  // *pair* from Q(I) agrees.
  auto method = std::move(MakeConditionalDeleteMethod(ps_)).value();
  ExprPtr query = std::move(MakeProp514Query(ps_)).value();
  InstanceGenerator::Options options;
  options.min_objects_per_class = 5;
  options.max_objects_per_class = 8;
  options.edge_probability = 0.12;
  auto witness = std::move(SearchQueryOrderDependenceWitness(
                               *method, query, ps_.schema, 14, 60, options))
                     .value();
  ASSERT_TRUE(witness.has_value());
  EXPECT_FALSE(witness->outcome.order_independent);
}

TEST_F(Prop514Test, CopyExtendDecisionVerdicts) {
  // copy_extend is key-order independent (distinct receiving objects touch
  // disjoint rows and read only their own), but not absolutely so.
  auto method = std::move(MakeCopyExtendMethod(ps_)).value();
  EXPECT_FALSE(std::move(DecideOrderIndependence(
                             *method, OrderIndependenceKind::kAbsolute))
                   .value());
  EXPECT_TRUE(std::move(DecideOrderIndependence(
                            *method, OrderIndependenceKind::kKeyOrder))
                  .value());
}

}  // namespace
}  // namespace setrec
