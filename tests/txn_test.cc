// Tests for the concurrent transaction layer (txn/): commutativity-certified
// admission backed by the Theorem 5.12 decision procedure, the MVCC fallback
// with first-committer-wins validation, bounded-backoff retries, group
// commit into the durable store's WAL, and degradation to serial admission
// under conflict storms. The acceptance core is twofold: any interleaving of
// certified-commutative transactions must yield a bit-identical final
// instance at 1/2/8 workers, and every injected crash point in the group
// commit path must recover to a committed prefix with a parseable
// flight-recorder dump on each terminal failure.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algebraic/method_library.h"
#include "core/exec_options.h"
#include "core/fault_injection.h"
#include "core/instance.h"
#include "core/instance_generator.h"
#include "core/sequential.h"
#include "core/status.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "relational/builder.h"
#include "sql/table.h"
#include "store/durable_store.h"
#include "text/printer.h"
#include "txn/commutativity_cache.h"
#include "txn/txn_manager.h"

namespace setrec {
namespace {

// -- Filesystem helpers (same contract as store_test) ------------------------

std::string MakeTempDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "setrec_txn_test" /
      (std::string(info->test_suite_name()) + "." + info->name() + "." + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string TxnFlightFile(const std::string& dir) {
  return (std::filesystem::path(dir) / "flight-txn.jsonl").string();
}

std::string CommitFlightFile(const std::string& dir) {
  return (std::filesystem::path(dir) / "flight-commit.jsonl").string();
}

/// Asserts that `path` names a parseable flight-recorder dump.
void AssertFlightDump(const std::string& path) {
  ASSERT_FALSE(path.empty()) << "no flight dump was referenced";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "flight dump missing: " << path;
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << path;
    EXPECT_EQ(line.front(), '{') << path << ": " << line;
    EXPECT_EQ(line.back(), '}') << path << ": " << line;
    for (const char c : line) {
      ASSERT_GE(static_cast<unsigned char>(c), 0x20u)
          << "raw control character in flight dump " << path;
    }
    if (lines == 0) {
      EXPECT_EQ(line.rfind("{\"type\":\"flight\",\"reason\":\"", 0), 0u)
          << path << " does not start with the flight header: " << line;
    }
    ++lines;
  }
  EXPECT_GE(lines, 2u) << path << " holds no events";
}

Instance ApplyRef(const AlgebraicUpdateMethod& method, const Instance& in,
                  const std::vector<Receiver>& receivers) {
  ExecOptions opts;
  return std::move(SequentialApply(method, in, receivers, opts)).value();
}

// -- CommutativityCache -------------------------------------------------------

class CommutativityCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { ds_ = std::move(MakeDrinkersSchema()).value(); }

  DrinkersSchema ds_;
};

TEST_F(CommutativityCacheTest, SelfPairsAreCertifiedByTheOracle) {
  auto add_bar = std::move(MakeAddBar(ds_)).value();
  auto favorite = std::move(MakeFavoriteBar(ds_)).value();
  CommutativityCache cache;

  // add_bar is absolutely order independent (Example 5.5): certified.
  EXPECT_TRUE(cache.Commutes(*add_bar, *add_bar));
  auto cert = cache.CertificateFor("add_bar");
  ASSERT_NE(cert, nullptr);
  EXPECT_TRUE(cert->order_independent);
  EXPECT_EQ(cert->kind, OrderIndependenceKind::kAbsolute);
  EXPECT_EQ(cert->method_name, "add_bar");
  EXPECT_FALSE(cert->tests.empty());

  // favorite_bar is key-order independent only (Example 3.2): transactions
  // over arbitrary receiver sets do not commute, and the retained
  // certificate documents the refusal.
  EXPECT_FALSE(cache.Commutes(*favorite, *favorite));
  auto fcert = cache.CertificateFor("favorite_bar");
  ASSERT_NE(fcert, nullptr);
  EXPECT_FALSE(fcert->order_independent);
}

TEST_F(CommutativityCacheTest, VerdictsAndCertificatesAreReusedAcrossTxns) {
  auto add_bar = std::move(MakeAddBar(ds_)).value();
  CommutativityCache cache;

  EXPECT_TRUE(cache.Commutes(*add_bar, *add_bar));
  const auto first = cache.stats();
  EXPECT_EQ(first.misses, 1u);
  EXPECT_EQ(first.hits, 0u);
  const auto cert = cache.CertificateFor("add_bar");
  ASSERT_NE(cert, nullptr);

  // A second transaction asking the same question is an O(1) hit sharing
  // the same certificate object — the oracle never reruns.
  EXPECT_TRUE(cache.Commutes(*add_bar, *add_bar));
  const auto second = cache.stats();
  EXPECT_EQ(second.misses, 1u);
  EXPECT_EQ(second.hits, 1u);
  EXPECT_EQ(cache.CertificateFor("add_bar").get(), cert.get());
}

TEST_F(CommutativityCacheTest, CrossPairsUseTheSyntacticIsolationCondition) {
  auto add_bar = std::move(MakeAddBar(ds_)).value();      // writes + reads Df
  auto clear_bars = std::move(MakeClearBars(ds_)).value();  // writes Df
  // all_beers [D]: l := ρ_{Be→l}(Be) — writes Dl, reads only the class
  // relation Be. Disjoint from everything touching f.
  auto all_beers =
      std::move(AlgebraicUpdateMethod::Make(
                    &ds_.schema, MethodSignature({ds_.drinker}), "all_beers",
                    {UpdateStatement{ds_.likes,
                                     ra::Rename(ra::Rel("Be"), "Be", "l")}}))
          .value();
  // beers_from_bars [D]: l := ρ_{s→l}(π_s(π_f(self ⋈ Df) ⋈ Bas)) — *reads*
  // Df (everything served at my bars) while writing Dl, so it must not
  // overlap a writer of Df.
  auto beers_from_bars =
      std::move(AlgebraicUpdateMethod::Make(
                    &ds_.schema, MethodSignature({ds_.drinker}),
                    "beers_from_bars",
                    {UpdateStatement{
                        ds_.likes,
                        ra::Rename(
                            ra::Project(
                                ra::JoinEq(
                                    ra::Project(ra::JoinEq(ra::Rel("self"),
                                                           ra::Rel("Df"),
                                                           "self", "D"),
                                                {"f"}),
                                    ra::Rel("Bas"), "f", "Ba"),
                                {"s"}),
                            "s", "l")}}))
          .value();
  CommutativityCache cache;

  // Disjoint writes, no cross reads: commutes.
  EXPECT_TRUE(cache.Commutes(*add_bar, *all_beers));
  // Both write Df: never.
  EXPECT_FALSE(cache.Commutes(*add_bar, *clear_bars));
  // beers_from_bars reads Df, which clear_bars writes: never (in either
  // argument order — the cache key is canonical).
  EXPECT_FALSE(cache.Commutes(*beers_from_bars, *clear_bars));
  EXPECT_FALSE(cache.Commutes(*clear_bars, *beers_from_bars));
  // The symmetric query was a cache hit, not a re-decision.
  EXPECT_GE(cache.stats().hits, 1u);
  // Cross-pair verdicts retain no certificate.
  EXPECT_EQ(cache.CertificateFor("all_beers"), nullptr);
}

TEST_F(CommutativityCacheTest, InvalidateOrphansVerdictsOnRedefinition) {
  auto add_bar = std::move(MakeAddBar(ds_)).value();
  CommutativityCache cache;

  EXPECT_TRUE(cache.Commutes(*add_bar, *add_bar));
  ASSERT_NE(cache.CertificateFor("add_bar"), nullptr);

  // Redefining "add_bar" bumps its epoch: the cached verdict and its
  // certificate are no longer reachable, and the next query re-decides.
  cache.Invalidate("add_bar");
  EXPECT_EQ(cache.CertificateFor("add_bar"), nullptr);
  const auto before = cache.stats();
  EXPECT_TRUE(cache.Commutes(*add_bar, *add_bar));
  EXPECT_EQ(cache.stats().misses, before.misses + 1);
  EXPECT_NE(cache.CertificateFor("add_bar"), nullptr);
}

TEST_F(CommutativityCacheTest, ConcurrentPopulationAgreesAndIsRaceFree) {
  auto add_bar = std::move(MakeAddBar(ds_)).value();
  auto clear_bars = std::move(MakeClearBars(ds_)).value();
  auto favorite = std::move(MakeFavoriteBar(ds_)).value();
  CommutativityCache cache;

  // 8 threads hammer the same three questions from a cold cache: racing
  // first-misses must converge on one verdict per pair (the oracle is
  // deterministic) without a data race (TSan covers this suite).
  constexpr int kThreads = 8;
  constexpr int kRounds = 25;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        EXPECT_TRUE(cache.Commutes(*add_bar, *add_bar));
        EXPECT_FALSE(cache.Commutes(*add_bar, *clear_bars));
        EXPECT_FALSE(cache.Commutes(*favorite, *favorite));
      }
    });
  }
  for (std::thread& t : pool) t.join();

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * kRounds * 3);
  // Every thread saw a populated cache after its first round.
  EXPECT_GE(stats.hits,
            static_cast<std::uint64_t>(kThreads) * 3 * (kRounds - 1));
  ASSERT_NE(cache.CertificateFor("add_bar"), nullptr);
}

// -- Interleaving invariance (acceptance) -------------------------------------

/// For every seed: K certified-commutative add_bar transactions over a random
/// instance, run at 1, 2 and 8 client threads, must produce an instance
/// bit-identical to the serial reference — operator== AND the canonical text
/// rendering — and the same state must survive recovery.
class TxnInterleavingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TxnInterleavingTest, CommutativeTxnsAreBitIdenticalAtAnyParallelism) {
  const std::uint64_t seed = GetParam();
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto add_bar = std::move(MakeAddBar(ds)).value();

  InstanceGenerator gen(&ds.schema, seed);
  InstanceGenerator::Options gopt;
  gopt.min_objects_per_class = 2;
  gopt.max_objects_per_class = 4;
  const Instance initial = gen.RandomInstance(gopt);
  constexpr std::size_t kTxns = 12;
  std::vector<std::vector<Receiver>> txns;
  txns.reserve(kTxns);
  for (std::size_t i = 0; i < kTxns; ++i) {
    txns.push_back(gen.RandomReceiverSet(initial, add_bar->signature(), 3));
  }

  // The serial reference: transactions applied one after another in index
  // order. Absolute order independence promises every other serialization
  // agrees.
  Instance reference = initial;
  for (const std::vector<Receiver>& t : txns) {
    reference = ApplyRef(*add_bar, reference, t);
  }

  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const std::string dir = MakeTempDir("w" + std::to_string(workers));
    auto store = std::move(DurableStore::Open(dir, &ds.schema)).value();
    ASSERT_TRUE(store
                    ->Mutate([&initial](Instance& inst, ExecContext&) {
                      inst = initial;
                      return Status::OK();
                    })
                    .ok());
    CommutativityCache cache;
    TxnManager mgr(store.get(), &cache);

    std::atomic<std::size_t> next{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < kTxns;
             i = next.fetch_add(1)) {
          if (!mgr.Apply(*add_bar, txns[i]).ok()) failures.fetch_add(1);
        }
      });
    }
    for (std::thread& t : pool) t.join();
    EXPECT_EQ(failures.load(), 0) << workers << " workers";

    const Instance live = store->SnapshotState();
    EXPECT_TRUE(live == reference) << workers << " workers, seed " << seed;
    EXPECT_EQ(InstanceToText(live), InstanceToText(reference))
        << workers << " workers, seed " << seed;

    // Every transaction was admitted on the certified-commutative path.
    const TxnManager::Stats stats = mgr.stats();
    EXPECT_EQ(stats.commits, kTxns);
    EXPECT_EQ(stats.commutative_admissions, kTxns);
    EXPECT_EQ(stats.mvcc_admissions, 0u);
    EXPECT_EQ(stats.conflicts, 0u);
    EXPECT_GE(stats.group_commits, 1u);

    // Durability: a reopen replays to the same bit-identical state.
    store.reset();
    auto reopened = std::move(DurableStore::Open(dir, &ds.schema)).value();
    EXPECT_TRUE(reopened->instance() == reference)
        << workers << " workers, seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnInterleavingTest,
                         ::testing::Range<std::uint64_t>(1, 17));

// -- Payroll workload at 1/2/8 workers ----------------------------------------

/// The Section 7 raise as disjoint-key MVCC transactions: one transaction per
/// employee, racing at 1/2/8 workers. Key-order independence of the salary
/// statement (Proposition 5.8) plus disjoint write footprints make every
/// interleaving land on the same final payroll.
TEST(TxnPayrollTest, DisjointKeyRaisesCommitIdenticallyAtAnyParallelism) {
  PayrollSchema ps = std::move(MakePayrollSchema()).value();
  auto raise = std::move(MakeSalaryFromNewSal(ps)).value();
  std::vector<EmployeeRow> employees = {
      {1, 100, std::nullopt}, {2, 200, std::nullopt}, {3, 100, std::nullopt},
      {4, 200, std::nullopt}, {5, 100, std::nullopt}, {6, 200, std::nullopt}};
  std::vector<NewSalRow> raises = {{100, 150}, {200, 250}};
  const Instance db =
      std::move(BuildPayrollInstance(ps, employees, {}, raises)).value();

  // The key set {[e, salary(e)]} — one receiver per employee.
  auto receivers = std::move(ReceiversFromQuery(ra::Rel("EmpSalary"), db,
                                                raise->signature()))
                       .value();
  ASSERT_EQ(receivers.size(), employees.size());

  Instance reference = db;
  for (const Receiver& r : receivers) {
    reference = ApplyRef(*raise, reference, {r});
  }

  for (const std::size_t workers :
       {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const std::string dir = MakeTempDir("w" + std::to_string(workers));
    auto store = std::move(DurableStore::Open(dir, &ps.schema)).value();
    ASSERT_TRUE(store
                    ->Mutate([&db](Instance& inst, ExecContext&) {
                      inst = db;
                      return Status::OK();
                    })
                    .ok());
    CommutativityCache cache;
    TxnManager mgr(store.get(), &cache);

    std::atomic<std::size_t> next{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> pool;
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < receivers.size();
             i = next.fetch_add(1)) {
          if (!mgr.Apply(*raise, {receivers[i]}).ok()) failures.fetch_add(1);
        }
      });
    }
    for (std::thread& t : pool) t.join();
    EXPECT_EQ(failures.load(), 0);

    const Instance live = store->SnapshotState();
    EXPECT_TRUE(live == reference) << workers << " workers";
    EXPECT_EQ(InstanceToText(live), InstanceToText(reference));
    auto salaries = std::move(ReadSalaries(ps, live)).value();
    ASSERT_EQ(salaries.size(), employees.size());
    for (const auto& [id, salary] : salaries) {
      EXPECT_EQ(salary, id % 2 == 1 ? 150u : 250u) << "employee " << id;
    }

    // The salary statement is key-order but not absolutely order
    // independent, so every transaction took the MVCC path; disjoint
    // employee keys mean none of them ever conflicted.
    const TxnManager::Stats stats = mgr.stats();
    EXPECT_EQ(stats.commits, receivers.size());
    EXPECT_EQ(stats.mvcc_admissions, receivers.size());
    EXPECT_EQ(stats.commutative_admissions, 0u);
    EXPECT_EQ(stats.conflicts, 0u);

    store.reset();
    auto reopened = std::move(DurableStore::Open(dir, &ps.schema)).value();
    EXPECT_TRUE(reopened->instance() == reference) << workers << " workers";
  }
}

// -- MVCC: conflicts, retries, exhaustion -------------------------------------

class TxnMvccTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::move(MakeDrinkersSchema()).value();
    dir_ = MakeTempDir("store");
    DurableStoreOptions sopt;
    sopt.recorder = &recorder_;
    store_ = std::move(DurableStore::Open(dir_, &ds_.schema, sopt)).value();
    ASSERT_TRUE(store_
                    ->Mutate([this](Instance& inst, ExecContext&) {
                      SETREC_RETURN_IF_ERROR(
                          inst.AddObject(ObjectId(ds_.drinker, 0)));
                      for (std::uint32_t b = 0; b < 10; ++b) {
                        SETREC_RETURN_IF_ERROR(
                            inst.AddObject(ObjectId(ds_.bar, b)));
                      }
                      return Status::OK();
                    })
                    .ok());
  }

  TxnOptions ManagerOptions(std::uint32_t max_attempts) {
    TxnOptions options;
    options.retry.max_attempts = max_attempts;
    options.retry.base_delay = std::chrono::nanoseconds(0);
    options.recorder = &recorder_;
    options.metrics = &metrics_;
    return options;
  }

  /// A Mutate transaction writing f(d0) += {bar(mine)} whose body lets a
  /// rival transaction commit f(d0) += {bar(first_rival + attempt)} first —
  /// a guaranteed first-committer-wins conflict on the (d0, f) slot.
  /// `rivals` bounds how many attempts get sabotaged.
  Status ConflictedTxn(TxnManager& mgr, std::uint32_t mine,
                       std::uint32_t first_rival, std::uint32_t rivals,
                       std::atomic<std::uint32_t>* attempts) {
    return mgr.Mutate([&mgr, this, mine, first_rival, rivals, attempts](
                          Instance& inst, ExecContext&) -> Status {
      const std::uint32_t attempt = attempts->fetch_add(1);
      if (attempt < rivals) {
        Status rival = mgr.Mutate(
            [this, first_rival, attempt](Instance& ri, ExecContext&) {
              return ri.AddEdge(ObjectId(ds_.drinker, 0), ds_.frequents,
                                ObjectId(ds_.bar, first_rival + attempt));
            });
        EXPECT_TRUE(rival.ok()) << rival.ToString();
      }
      return inst.AddEdge(ObjectId(ds_.drinker, 0), ds_.frequents,
                          ObjectId(ds_.bar, mine));
    });
  }

  DrinkersSchema ds_;
  std::string dir_;
  FlightRecorder recorder_;
  MetricsRegistry metrics_;
  std::unique_ptr<DurableStore> store_;
};

TEST_F(TxnMvccTest, FirstCommitterWinsConflictAbortsAndRetriesToSuccess) {
  CommutativityCache cache;
  TxnManager mgr(store_.get(), &cache, ManagerOptions(/*max_attempts=*/3));

  std::atomic<std::uint32_t> attempts{0};
  Status s = ConflictedTxn(mgr, /*mine=*/0, /*first_rival=*/1, /*rivals=*/1,
                           &attempts);
  ASSERT_TRUE(s.ok()) << s.ToString();
  // Attempt 1 lost first-committer-wins to the rival; attempt 2 ran on a
  // fresh snapshot and sailed through.
  EXPECT_EQ(attempts.load(), 2u);
  const TxnManager::Stats stats = mgr.stats();
  EXPECT_EQ(stats.conflicts, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.commits, 2u);  // the rival and the retried transaction
  EXPECT_EQ(stats.aborts, 0u);
  EXPECT_EQ(metrics_.CounterNamed("txn.conflicts").value(), 1u);

  // Both writes survived: snapshot isolation lost no update.
  const Instance live = store_->SnapshotState();
  EXPECT_TRUE(live.HasEdge(ObjectId(ds_.drinker, 0), ds_.frequents,
                           ObjectId(ds_.bar, 0)));
  EXPECT_TRUE(live.HasEdge(ObjectId(ds_.drinker, 0), ds_.frequents,
                           ObjectId(ds_.bar, 1)));
}

TEST_F(TxnMvccTest, ExhaustedRetriesReportRetryExhaustedAndDumpFlight) {
  CommutativityCache cache;
  TxnManager mgr(store_.get(), &cache, ManagerOptions(/*max_attempts=*/2));

  // Every attempt is sabotaged: the schedule runs dry while the failure is
  // still retryable, so the terminal status is kRetryExhausted.
  std::atomic<std::uint32_t> attempts{0};
  Status s = ConflictedTxn(mgr, /*mine=*/0, /*first_rival=*/1, /*rivals=*/9,
                           &attempts);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kRetryExhausted);
  EXPECT_NE(s.message().find("gave up after 2 attempts"), std::string::npos)
      << s.ToString();
  EXPECT_FALSE(s.IsRetryable());  // terminal: callers must not loop
  EXPECT_EQ(attempts.load(), 2u);

  const TxnManager::Stats stats = mgr.stats();
  EXPECT_EQ(stats.conflicts, 2u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.aborts, 1u);
  EXPECT_EQ(stats.commits, 2u);  // the two rivals

  // The terminal abort dumped a parseable flight recording.
  AssertFlightDump(TxnFlightFile(dir_));
  // The abandoned write really is absent; the rivals' writes are present.
  const Instance live = store_->SnapshotState();
  EXPECT_FALSE(live.HasEdge(ObjectId(ds_.drinker, 0), ds_.frequents,
                            ObjectId(ds_.bar, 0)));
  EXPECT_TRUE(live.HasEdge(ObjectId(ds_.drinker, 0), ds_.frequents,
                           ObjectId(ds_.bar, 1)));
}

TEST_F(TxnMvccTest, ReadOnlyTransactionsCommitWithoutARecord) {
  CommutativityCache cache;
  TxnManager mgr(store_.get(), &cache, ManagerOptions(1));
  const std::uint64_t seq_before = store_->last_sequence();

  ASSERT_TRUE(mgr.Mutate([](Instance& inst, ExecContext&) {
                   // Look, don't touch.
                   return inst.num_objects() > 0 ? Status::OK()
                                                 : Status::Internal("empty");
                 }).ok());
  EXPECT_EQ(mgr.stats().commits, 1u);
  // An empty delta never reaches the WAL.
  EXPECT_EQ(store_->last_sequence(), seq_before);
}

// -- Degradation state machine ------------------------------------------------

TEST_F(TxnMvccTest, ConflictStormDegradesToSerialModeAndReopens) {
  CommutativityCache cache;
  TxnOptions topt = ManagerOptions(/*max_attempts=*/1);
  topt.conflict_window = 4;
  topt.degrade_threshold = 0.5;
  topt.reopen_threshold = 0.25;
  TxnManager mgr(store_.get(), &cache, topt);
  EXPECT_FALSE(mgr.serial_mode());
  EXPECT_EQ(metrics_.GaugeNamed("txn.serial_mode").value(), 0);

  // Two conflicted transactions (each paired with its rival's success) fill
  // the window at exactly the degrade threshold.
  for (std::uint32_t i = 0; i < 2; ++i) {
    std::atomic<std::uint32_t> attempts{0};
    Status s = ConflictedTxn(mgr, /*mine=*/5 + i, /*first_rival=*/1 + i,
                             /*rivals=*/1, &attempts);
    EXPECT_EQ(s.code(), StatusCode::kRetryExhausted) << s.ToString();
  }
  EXPECT_TRUE(mgr.serial_mode());
  EXPECT_EQ(mgr.stats().degrades, 1u);
  EXPECT_EQ(metrics_.GaugeNamed("txn.serial_mode").value(), 1);

  // Serial admission still commits — degraded, not dead — and the conflict
  // share decays until the engine re-opens concurrent admission.
  for (std::uint32_t i = 0; i < 8 && mgr.serial_mode(); ++i) {
    ASSERT_TRUE(mgr.Mutate([this, i](Instance& inst, ExecContext&) {
                     return inst.AddObject(ObjectId(ds_.drinker, 100 + i));
                   }).ok());
  }
  EXPECT_FALSE(mgr.serial_mode());
  EXPECT_EQ(mgr.stats().reopens, 1u);
  EXPECT_EQ(metrics_.GaugeNamed("txn.serial_mode").value(), 0);
}

// -- Group commit & mixed concurrency -----------------------------------------

TEST(TxnGroupCommitTest, ConcurrentDisjointTransactionsAllCommitDurably) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  const std::string dir = MakeTempDir("store");
  MetricsRegistry metrics;
  auto store = std::move(DurableStore::Open(dir, &ds.schema)).value();
  CommutativityCache cache;
  TxnOptions topt;
  topt.metrics = &metrics;
  topt.retry.base_delay = std::chrono::nanoseconds(0);
  TxnManager mgr(store.get(), &cache, topt);

  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint32_t kPerThread = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  for (std::uint32_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        const std::uint32_t idx = t * kPerThread + i;
        Status s = mgr.Mutate([&ds, idx](Instance& inst, ExecContext&) {
          return inst.AddObject(ObjectId(ds.drinker, idx));
        });
        if (!s.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  ASSERT_EQ(failures.load(), 0);

  constexpr std::uint64_t kTxns = kThreads * kPerThread;
  const TxnManager::Stats stats = mgr.stats();
  EXPECT_EQ(stats.commits, kTxns);
  EXPECT_EQ(stats.conflicts, 0u);  // disjoint objects never collide
  // Every commit flushed through a batch; batching can only merge, never
  // drop or duplicate.
  EXPECT_GE(stats.group_commits, 1u);
  EXPECT_LE(stats.group_commits, kTxns);
  EXPECT_EQ(metrics.CounterNamed("txn.commits").value(), kTxns);
  EXPECT_EQ(metrics.HistogramNamed("txn.group_size").sum(), kTxns);
  EXPECT_EQ(metrics.HistogramNamed("txn.group_size").count(),
            stats.group_commits);

  EXPECT_EQ(store->SnapshotState().num_objects(), kTxns);
  EXPECT_EQ(store->last_sequence(), kTxns);  // one WAL record per commit
  const Instance live = store->SnapshotState();
  store.reset();
  auto reopened = std::move(DurableStore::Open(dir, &ds.schema)).value();
  EXPECT_TRUE(reopened->instance() == live);
}

/// Certified-commutative Apply() transactions racing MVCC mutations on a
/// shared slot: conflicts, retries and (possibly) a degrade/reopen cycle are
/// all legal here — what must hold is that every transaction eventually
/// commits and the final instance is the deterministic union of all writes.
/// Run under TSan by `./ci chaos`.
TEST(TxnStressTest, CommutativeAndMvccTransactionsInterleaveSafely) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto add_bar = std::move(MakeAddBar(ds)).value();
  const std::string dir = MakeTempDir("store");
  auto store = std::move(DurableStore::Open(dir, &ds.schema)).value();

  constexpr std::uint32_t kDrinkers = 4;
  constexpr std::uint32_t kBars = 4;
  constexpr std::uint32_t kBeers = 2;
  const auto build_objects = [&](Instance& inst) -> Status {
    for (std::uint32_t d = 0; d < kDrinkers; ++d) {
      SETREC_RETURN_IF_ERROR(inst.AddObject(ObjectId(ds.drinker, d)));
    }
    for (std::uint32_t b = 0; b < kBars; ++b) {
      SETREC_RETURN_IF_ERROR(inst.AddObject(ObjectId(ds.bar, b)));
    }
    for (std::uint32_t b = 0; b < kBeers; ++b) {
      SETREC_RETURN_IF_ERROR(inst.AddObject(ObjectId(ds.beer, b)));
    }
    return Status::OK();
  };
  ASSERT_TRUE(store
                  ->Mutate([&](Instance& inst, ExecContext&) {
                    return build_objects(inst);
                  })
                  .ok());

  CommutativityCache cache;
  TxnOptions topt;
  topt.retry.max_attempts = 16;
  topt.retry.base_delay = std::chrono::nanoseconds(0);
  TxnManager mgr(store.get(), &cache, topt);

  std::atomic<int> failures{0};
  std::vector<std::thread> pool;
  // 4 commutative writers: add_bar over (d, b) receiver pairs.
  for (std::uint32_t t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      for (std::uint32_t b = 0; b < kBars; ++b) {
        Receiver r = Receiver::Unchecked(
            {ObjectId(ds.drinker, t), ObjectId(ds.bar, b)});
        if (!mgr.Apply(*add_bar, {std::move(r)}).ok()) failures.fetch_add(1);
      }
    });
  }
  // 4 MVCC writers hammering the same (d0, l) slot — conflict storm fodder.
  for (std::uint32_t t = 0; t < 4; ++t) {
    pool.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < 4; ++i) {
        Status s = mgr.Mutate([&ds, t, i](Instance& inst, ExecContext&) {
          return inst.AddEdge(ObjectId(ds.drinker, 0), ds.likes,
                              ObjectId(ds.beer, (t + i) % kBeers));
        });
        if (!s.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  ASSERT_EQ(failures.load(), 0);

  // The deterministic union of every write, regardless of interleaving.
  Instance expected(&ds.schema);
  ASSERT_TRUE(build_objects(expected).ok());
  for (std::uint32_t d = 0; d < 4; ++d) {
    for (std::uint32_t b = 0; b < kBars; ++b) {
      ASSERT_TRUE(expected
                      .AddEdge(ObjectId(ds.drinker, d), ds.frequents,
                               ObjectId(ds.bar, b))
                      .ok());
    }
  }
  for (std::uint32_t be = 0; be < kBeers; ++be) {
    ASSERT_TRUE(expected
                    .AddEdge(ObjectId(ds.drinker, 0), ds.likes,
                             ObjectId(ds.beer, be))
                    .ok());
  }
  EXPECT_TRUE(store->SnapshotState() == expected);
  EXPECT_EQ(mgr.stats().commits, 32u);

  const Instance live = store->SnapshotState();
  store.reset();
  auto reopened = std::move(DurableStore::Open(dir, &ds.schema)).value();
  EXPECT_TRUE(reopened->instance() == live);
}

// -- Admission routing --------------------------------------------------------

TEST(TxnAdmissionTest, KeyOrderOnlyMethodsAreRoutedToMvcc) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto favorite = std::move(MakeFavoriteBar(ds)).value();
  const std::string dir = MakeTempDir("store");
  auto store = std::move(DurableStore::Open(dir, &ds.schema)).value();
  ASSERT_TRUE(store
                  ->Mutate([&](Instance& inst, ExecContext&) {
                    SETREC_RETURN_IF_ERROR(
                        inst.AddObject(ObjectId(ds.drinker, 0)));
                    return inst.AddObject(ObjectId(ds.bar, 0));
                  })
                  .ok());
  CommutativityCache cache;
  TxnManager mgr(store.get(), &cache);

  Receiver r =
      Receiver::Unchecked({ObjectId(ds.drinker, 0), ObjectId(ds.bar, 0)});
  ASSERT_TRUE(mgr.Apply(*favorite, {std::move(r)}).ok());
  // favorite_bar is last-writer-wins: absolute certification fails, so the
  // transaction must have gone through snapshot isolation.
  const TxnManager::Stats stats = mgr.stats();
  EXPECT_EQ(stats.mvcc_admissions, 1u);
  EXPECT_EQ(stats.commutative_admissions, 0u);
  EXPECT_TRUE(store->SnapshotState().HasEdge(
      ObjectId(ds.drinker, 0), ds.frequents, ObjectId(ds.bar, 0)));
}

TEST(TxnAdmissionTest, SetOrientedUpdateRunsUnderSnapshotIsolation) {
  PayrollSchema ps = std::move(MakePayrollSchema()).value();
  std::vector<EmployeeRow> employees = {
      {1, 100, std::nullopt}, {2, 200, std::nullopt}, {3, 100, std::nullopt}};
  std::vector<NewSalRow> raises = {{100, 150}, {200, 250}};
  const Instance db =
      std::move(BuildPayrollInstance(ps, employees, {}, raises)).value();
  // "select EmpId, New from Employee, NewSal where Salary = Old".
  const ExprPtr query = ra::Project(
      ra::JoinEq(ra::Rel("EmpSalary"),
                 ra::Project(ra::JoinEq(ra::Rel("NSOld"),
                                        ra::Rename(ra::Rel("NSNew"), "NS",
                                                   "NS2"),
                                        "NS", "NS2"),
                             {"Old", "New"}),
                 "Salary", "Old"),
      {"Emp", "New"});

  const std::string dir = MakeTempDir("store");
  auto store = std::move(DurableStore::Open(dir, &ps.schema)).value();
  ASSERT_TRUE(store
                  ->Mutate([&db](Instance& inst, ExecContext&) {
                    inst = db;
                    return Status::OK();
                  })
                  .ok());
  CommutativityCache cache;
  TxnManager mgr(store.get(), &cache);

  ASSERT_TRUE(mgr.Update(ps.salary, query).ok());
  EXPECT_EQ(mgr.stats().mvcc_admissions, 1u);
  EXPECT_EQ(mgr.stats().commutative_admissions, 0u);

  auto salaries = std::move(ReadSalaries(ps, store->SnapshotState())).value();
  ASSERT_EQ(salaries.size(), 3u);
  EXPECT_EQ(salaries[0], (std::pair<std::uint32_t, std::uint32_t>{1, 150}));
  EXPECT_EQ(salaries[1], (std::pair<std::uint32_t, std::uint32_t>{2, 250}));
  EXPECT_EQ(salaries[2], (std::pair<std::uint32_t, std::uint32_t>{3, 150}));

  const Instance live = store->SnapshotState();
  store.reset();
  auto reopened = std::move(DurableStore::Open(dir, &ps.schema)).value();
  EXPECT_TRUE(reopened->instance() == live);
}

// -- The crash matrix over group commit (acceptance) --------------------------

/// Shared scaffolding: a seeded drinkers store and three add_bar
/// transactions with precomputed expected states_[0..3] — states_[k] is the
/// instance after k committed transactions, each of which appends exactly
/// one WAL record through the group-commit path.
class TxnCrashMatrixTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kTxns = 3;

  void SetUp() override {
    ds_ = std::move(MakeDrinkersSchema()).value();
    add_bar_ = std::move(MakeAddBar(ds_)).value();

    Instance initial(&ds_.schema);
    for (std::uint32_t d = 0; d < 3; ++d) {
      ASSERT_TRUE(initial.AddObject(ObjectId(ds_.drinker, d)).ok());
    }
    for (std::uint32_t b = 0; b < 3; ++b) {
      ASSERT_TRUE(initial.AddObject(ObjectId(ds_.bar, b)).ok());
    }
    states_.push_back(initial);
    for (std::uint32_t k = 0; k < kTxns; ++k) {
      std::vector<Receiver> receivers;
      for (std::uint32_t b = 0; b < 2; ++b) {
        receivers.push_back(Receiver::Unchecked(
            {ObjectId(ds_.drinker, k), ObjectId(ds_.bar, b)}));
      }
      txns_.push_back(receivers);
      states_.push_back(ApplyRef(*add_bar_, states_.back(), receivers));
      ASSERT_FALSE(states_[k + 1] == states_[k]) << "txn " << k << " no-op";
    }
  }

  /// The WAL record size (16-byte header + payload) transaction k appends.
  std::size_t RecordSize(std::size_t k) const {
    return 16 + DeltaToText(DiffInstances(states_[k], states_[k + 1]),
                            ds_.schema)
                    .size();
  }

  /// Opens a store under `injector`, seeds states_[0], then pushes all
  /// transactions through a TxnManager, recording each result.
  struct RunResult {
    std::vector<Status> results;
    bool broken = false;
  };
  RunResult Run(const std::string& dir, FaultInjector* injector,
                FlightRecorder* recorder) {
    DurableStoreOptions sopt;
    sopt.injector = injector;
    sopt.recorder = recorder;
    auto store = std::move(DurableStore::Open(dir, &ds_.schema, sopt)).value();
    EXPECT_TRUE(store
                    ->Mutate([this](Instance& inst, ExecContext&) {
                      inst = states_[0];
                      return Status::OK();
                    })
                    .ok());
    CommutativityCache cache;
    TxnOptions topt;
    topt.recorder = recorder;
    TxnManager mgr(store.get(), &cache, topt);
    RunResult run;
    for (std::size_t i = 0; i < kTxns; ++i) {
      run.results.push_back(mgr.Apply(*add_bar_, txns_[i]));
    }
    run.broken = store->broken();
    return run;
  }

  Instance Recover(const std::string& dir, RecoveryReport* report) {
    auto store =
        std::move(DurableStore::Open(dir, &ds_.schema, {}, report)).value();
    return store->instance();
  }

  DrinkersSchema ds_;
  std::unique_ptr<AlgebraicUpdateMethod> add_bar_;
  std::vector<std::vector<Receiver>> txns_;
  std::vector<Instance> states_;
};

/// Storage faults at every commit of the sequence: the WAL append of
/// transaction k torn at offset 0, mid-record and full-record, and its fsync
/// partially applied. Every scenario must (a) fail transaction k terminally
/// with a flight dump, (b) poison the store, and (c) recover to a committed
/// prefix — states_[k] normally, states_[k+1] in the fully-durable-but-
/// unacknowledged corner. Never a hybrid.
TEST_F(TxnCrashMatrixTest, StorageFaultAtEveryCommitRecoversACommittedPrefix) {
  // The seed commit consumes storage ops 1 (append) and 2 (sync);
  // transaction k's group commit consumes ops 3+2k and 4+2k.
  for (std::size_t k = 0; k < kTxns; ++k) {
    const std::uint64_t append_op = 3 + 2 * k;
    const std::size_t record = RecordSize(k);
    struct Case {
      std::string tag;
      FaultInjector injector;
      std::size_t expected_state;
    };
    std::vector<Case> cases;
    for (const std::size_t offset : {std::size_t{0}, record / 2, record}) {
      cases.push_back({"torn" + std::to_string(k) + "o" +
                           std::to_string(offset),
                       FaultInjector::TornWriteAt(append_op, offset),
                       // A tear at the full record size leaves the commit
                       // durable but unacknowledged: recovery surfaces it —
                       // still a statement boundary, never a hybrid.
                       offset == record ? k + 1 : k});
    }
    cases.push_back({"fsync" + std::to_string(k),
                     FaultInjector::PartialFsyncAt(append_op + 1), k});

    for (Case& c : cases) {
      const std::string dir = MakeTempDir(c.tag);
      FlightRecorder recorder;
      RunResult run = Run(dir, &c.injector, &recorder);

      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_TRUE(run.results[i].ok()) << c.tag << " txn " << i;
      }
      for (std::size_t i = k; i < kTxns; ++i) {
        // The faulted transaction and everything after it fail terminally
        // (the store is poisoned until reopened) — never retried into a
        // half-committed state.
        EXPECT_EQ(run.results[i].code(), StatusCode::kFailedPrecondition)
            << c.tag << " txn " << i << ": " << run.results[i].ToString();
      }
      EXPECT_TRUE(run.broken) << c.tag;

      // Both terminal-failure dumps are parseable: the transaction layer's
      // and the store's own commit dump.
      AssertFlightDump(TxnFlightFile(dir));
      AssertFlightDump(CommitFlightFile(dir));

      RecoveryReport report;
      const Instance recovered = Recover(dir, &report);
      EXPECT_TRUE(recovered == states_[c.expected_state])
          << c.tag << ": recovery left a state that is not the expected "
          << "committed prefix";
      // The recovered prefix covers every acknowledged transaction.
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_TRUE(states_[i + 1].IsSubInstanceOf(recovered))
            << c.tag << ": acked commit " << i << " lost";
      }
    }
  }
}

/// Exec faults: the first transaction killed at EVERY cooperative probe its
/// group-commit statement traverses. The abort must be clean (store usable,
/// pre-transaction state intact, flight dump written) and the same
/// transaction must succeed immediately afterwards.
TEST_F(TxnCrashMatrixTest, CrashAtEveryExecProbeAbortsCleanlyAndRecovers) {
  // Observe run: count the probes between seeding and the end of txn 0.
  std::uint64_t probes_before = 0, probes_after = 0;
  {
    const std::string dir = MakeTempDir("observe");
    FaultInjector observer;
    DurableStoreOptions sopt;
    sopt.injector = &observer;
    auto store = std::move(DurableStore::Open(dir, &ds_.schema, sopt)).value();
    ASSERT_TRUE(store
                    ->Mutate([this](Instance& inst, ExecContext&) {
                      inst = states_[0];
                      return Status::OK();
                    })
                    .ok());
    CommutativityCache cache;
    TxnManager mgr(store.get(), &cache);
    probes_before = observer.probes_seen();
    ASSERT_TRUE(mgr.Apply(*add_bar_, txns_[0]).ok());
    probes_after = observer.probes_seen();
  }
  ASSERT_GT(probes_after, probes_before);

  for (std::uint64_t n = probes_before + 1; n <= probes_after; ++n) {
    const std::string dir = MakeTempDir("probe" + std::to_string(n));
    FaultInjector inj = FaultInjector::FireAtNthProbe(n);
    FlightRecorder recorder;
    DurableStoreOptions sopt;
    sopt.injector = &inj;
    sopt.recorder = &recorder;
    auto store = std::move(DurableStore::Open(dir, &ds_.schema, sopt)).value();
    ASSERT_TRUE(store
                    ->Mutate([this](Instance& inst, ExecContext&) {
                      inst = states_[0];
                      return Status::OK();
                    })
                    .ok())
        << "probe " << n;
    CommutativityCache cache;
    TxnOptions topt;
    topt.recorder = &recorder;
    TxnManager mgr(store.get(), &cache, topt);

    Status s = mgr.Apply(*add_bar_, txns_[0]);
    ASSERT_FALSE(s.ok()) << "probe " << n;
    EXPECT_EQ(s.code(), StatusCode::kInternal) << "probe " << n;
    // An exec fault is not a storage fault: the store stays usable and the
    // pre-transaction state is intact.
    EXPECT_FALSE(store->broken()) << "probe " << n;
    EXPECT_TRUE(store->SnapshotState() == states_[0])
        << "partial mutation survived a fault at probe " << n;
    EXPECT_EQ(mgr.stats().aborts, 1u) << "probe " << n;
    AssertFlightDump(TxnFlightFile(dir));

    // The probe counter has moved past n: the same transaction now commits.
    ASSERT_TRUE(mgr.Apply(*add_bar_, txns_[0]).ok()) << "probe " << n;
    EXPECT_TRUE(store->SnapshotState() == states_[1]) << "probe " << n;
    store.reset();

    RecoveryReport report;
    const Instance recovered = Recover(dir, &report);
    EXPECT_TRUE(recovered == states_[1])
        << "recovery leaked a torn hybrid at probe " << n;
  }
}

}  // namespace
}  // namespace setrec
