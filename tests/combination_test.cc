// The "coarser grained" combination semantics from the end of Section 1:
// the Abiteboul–Vianu union combination and the refined operator
// ∩i Di ∪ ∪i (Di − D).

#include <gtest/gtest.h>

#include "algebraic/method_library.h"
#include "core/combination.h"
#include "core/instance_generator.h"
#include "core/sequential.h"

namespace setrec {
namespace {

class CombinationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::move(MakeDrinkersSchema()).value();
    instance_ = std::make_unique<Instance>(&ds_.schema);
    d_ = ObjectId(ds_.drinker, 0);
    b0_ = ObjectId(ds_.bar, 0);
    b1_ = ObjectId(ds_.bar, 1);
    b2_ = ObjectId(ds_.bar, 2);
    ASSERT_TRUE(instance_->AddObject(d_).ok());
    for (ObjectId b : {b0_, b1_, b2_}) {
      ASSERT_TRUE(instance_->AddObject(b).ok());
    }
    ASSERT_TRUE(instance_->AddEdge(d_, ds_.frequents, b0_).ok());
  }

  DrinkersSchema ds_;
  std::unique_ptr<Instance> instance_;
  ObjectId d_{0, 0}, b0_{0, 0}, b1_{0, 0}, b2_{0, 0};
};

TEST_F(CombinationTest, EmptyReceiverSetIsIdentity) {
  auto add_bar = std::move(MakeAddBar(ds_)).value();
  EXPECT_EQ(std::move(ApplyCombinationUnion(*add_bar, *instance_, {}))
                .value(),
            *instance_);
  EXPECT_EQ(std::move(ApplyCombinationRefined(*add_bar, *instance_, {}))
                .value(),
            *instance_);
}

TEST_F(CombinationTest, UnionCombinationCollectsAllAdditions) {
  auto add_bar = std::move(MakeAddBar(ds_)).value();
  std::vector<Receiver> receivers = {Receiver::Unchecked({d_, b1_}),
                                     Receiver::Unchecked({d_, b2_})};
  Instance combined =
      std::move(ApplyCombinationUnion(*add_bar, *instance_, receivers))
          .value();
  EXPECT_EQ(combined.Targets(d_, ds_.frequents),
            (std::vector<ObjectId>{b0_, b1_, b2_}));
  // For the inflationary add_bar, union combination equals sequential
  // application.
  Instance sequential =
      std::move(ApplySequence(*add_bar, *instance_, receivers)).value();
  EXPECT_EQ(combined, sequential);
}

TEST_F(CombinationTest, UnionCombinationLosesDeletions) {
  // For favorite_bar the union combination keeps everything every branch
  // kept: D1 = {b1}, D2 = {b2}, so the union holds both new bars — and the
  // old bar b0 is restored by neither... D1 lacks b0 and D2 lacks b0, so
  // b0 disappears; but b1 ∈ D1 and b2 ∈ D2 both survive, unlike any
  // sequential outcome.
  auto favorite = std::move(MakeFavoriteBar(ds_)).value();
  std::vector<Receiver> receivers = {Receiver::Unchecked({d_, b1_}),
                                     Receiver::Unchecked({d_, b2_})};
  Instance combined =
      std::move(ApplyCombinationUnion(*favorite, *instance_, receivers))
          .value();
  EXPECT_EQ(combined.Targets(d_, ds_.frequents),
            (std::vector<ObjectId>{b1_, b2_}));
}

TEST_F(CombinationTest, RefinedCombinationAgreesOnDeletes) {
  // delete_bar: D1 deletes b0, D2 deletes nothing (b1 not frequented).
  // Refined: (D1 ∩ D2) ∪ (D1 − D) ∪ (D2 − D): the deletion of b0 sticks
  // (b0-edge ∉ D1), and nothing is spuriously added — matching the
  // sequential result. Plain union would resurrect the deleted edge.
  auto delete_bar = std::move(MakeDeleteBar(ds_)).value();
  std::vector<Receiver> receivers = {Receiver::Unchecked({d_, b0_}),
                                     Receiver::Unchecked({d_, b1_})};
  Instance refined =
      std::move(ApplyCombinationRefined(*delete_bar, *instance_, receivers))
          .value();
  Instance sequential =
      std::move(ApplySequence(*delete_bar, *instance_, receivers)).value();
  EXPECT_EQ(refined, sequential);
  EXPECT_TRUE(refined.Targets(d_, ds_.frequents).empty());

  Instance unioned =
      std::move(ApplyCombinationUnion(*delete_bar, *instance_, receivers))
          .value();
  EXPECT_EQ(unioned.Targets(d_, ds_.frequents),
            (std::vector<ObjectId>{b0_}));
}

/// On key sets, the refined combination coincides with sequential
/// application for the key-order independent library methods (they modify
/// disjoint rows, so intersections and additions recombine exactly).
class RefinedCombinationProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RefinedCombinationProperty, MatchesSequentialOnKeySets) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  InstanceGenerator gen(&ds.schema, GetParam());
  InstanceGenerator::Options options;
  options.min_objects_per_class = 2;
  options.max_objects_per_class = 4;
  options.edge_probability = 0.4;
  Instance instance = gen.RandomInstance(options);

  std::vector<std::unique_ptr<AlgebraicUpdateMethod>> methods;
  methods.push_back(std::move(MakeAddBar(ds)).value());
  methods.push_back(std::move(MakeFavoriteBar(ds)).value());
  methods.push_back(std::move(MakeDeleteBar(ds)).value());
  for (const auto& method : methods) {
    std::vector<Receiver> keys =
        gen.RandomKeySet(instance, method->signature(), 3);
    Instance sequential =
        std::move(ApplySequence(*method, instance, keys)).value();
    Instance refined =
        std::move(ApplyCombinationRefined(*method, instance, keys)).value();
    EXPECT_EQ(sequential, refined) << method->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinedCombinationProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace setrec
