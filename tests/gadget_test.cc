// Tests for the Section 5 reduction gadgets: the Lemma 5.3 binary-relation
// representation and the Theorem 5.6 equivalence-to-order-independence
// gadget (whose non-positivity is exactly Corollary 5.7's undecidability
// frontier).

#include <gtest/gtest.h>

#include "algebraic/gadgets.h"
#include "algebraic/method_library.h"
#include "algebraic/order_independence.h"
#include "core/sequential.h"
#include "objrel/encoding.h"
#include "relational/builder.h"
#include "relational/evaluator.h"

namespace setrec {
namespace {

TEST(Lemma53Test, BinaryRelationRoundTrips) {
  BinaryRelationRepresentation rep =
      std::move(MakeBinaryRelationSchema()).value();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs = {
      {0, 1}, {1, 1}, {2, 0}};
  Instance instance = std::move(RepresentBinaryRelation(rep, pairs)).value();
  EXPECT_EQ(instance.objects(rep.tuple_class).size(), pairs.size());

  Database db = std::move(EncodeInstance(instance)).value();
  Relation recovered =
      std::move(Evaluate(RecoverBinaryRelation(rep), db)).value();
  ASSERT_EQ(recovered.size(), pairs.size());
  for (const auto& [a, b] : pairs) {
    EXPECT_TRUE(recovered.Contains(Tuple{ObjectId(rep.domain_class, a),
                                         ObjectId(rep.domain_class, b)}));
  }
}

TEST(Lemma53Test, EmptyRelationRepresentsEmptyInstance) {
  BinaryRelationRepresentation rep =
      std::move(MakeBinaryRelationSchema()).value();
  Instance instance = std::move(RepresentBinaryRelation(rep, {})).value();
  EXPECT_EQ(instance.num_objects(), 0u);
  Database db = std::move(EncodeInstance(instance)).value();
  Relation recovered =
      std::move(Evaluate(RecoverBinaryRelation(rep), db)).value();
  EXPECT_TRUE(recovered.empty());
}

class GadgetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Base schema: one class P with property e : P → P.
    ClassId p = std::move(base_.AddClass("P")).value();
    PropertyId e = std::move(base_.AddProperty("e", p, p)).value();
    p_ = p;
    e_ = e;
  }

  Schema base_;
  ClassId p_ = 0;
  PropertyId e_ = 0;
};

TEST_F(GadgetTest, InequivalentExpressionsGiveOrderDependence) {
  // e1 = ∅-test on Pe; e2 = test on P itself. On an instance with P-objects
  // but no e-edges they disagree about emptiness.
  EquivalenceGadget gadget =
      std::move(MakeEquivalenceGadget(base_, ra::Rel("Pe"), ra::Rel("P")))
          .value();
  EXPECT_FALSE(gadget.method->IsPositiveMethod());  // Corollary 5.7
  EXPECT_EQ(DecideOrderIndependence(*gadget.method,
                                    OrderIndependenceKind::kAbsolute)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  Instance base_instance(gadget.schema.get());
  ASSERT_TRUE(base_instance.AddObject(ObjectId(p_, 0)).ok());  // no e-edges

  GadgetDemonstration demo =
      std::move(MakeGadgetDemonstration(gadget, base_instance)).value();
  std::vector<Receiver> receivers = {demo.first, demo.second};
  auto outcome = std::move(OrderIndependentOn(*gadget.method, demo.instance,
                                              receivers))
                     .value();
  EXPECT_FALSE(outcome.order_independent);

  // The disagreement is exactly the proof's: one order leaves a gb-edge at
  // the first receiver, the other does not.
  ASSERT_TRUE(outcome.result_a.has_value());
  ASSERT_TRUE(outcome.result_b.has_value());
  const ObjectId o = demo.first.receiving_object();
  const bool a_has = !outcome.result_a->Targets(o, gadget.gb).empty();
  const bool b_has = !outcome.result_b->Targets(o, gadget.gb).empty();
  EXPECT_NE(a_has, b_has);
}

TEST_F(GadgetTest, EquivalentExpressionsGiveOrderIndependence) {
  // Syntactically different but equivalent: Pe vs Pe ∪ Pe.
  ExprPtr pe = ra::Rel("Pe");
  EquivalenceGadget gadget =
      std::move(MakeEquivalenceGadget(base_, pe, ra::Union(pe, pe))).value();

  // With and without e-edges, every demonstration pair agrees.
  for (bool with_edge : {false, true}) {
    Instance base_instance(gadget.schema.get());
    ASSERT_TRUE(base_instance.AddObject(ObjectId(p_, 0)).ok());
    if (with_edge) {
      ASSERT_TRUE(
          base_instance.AddEdge(ObjectId(p_, 0), e_, ObjectId(p_, 0)).ok());
    }
    GadgetDemonstration demo =
        std::move(MakeGadgetDemonstration(gadget, base_instance)).value();
    std::vector<Receiver> receivers = {demo.first, demo.second};
    auto outcome = std::move(OrderIndependentOn(*gadget.method,
                                                demo.instance, receivers))
                       .value();
    EXPECT_TRUE(outcome.order_independent) << "with_edge=" << with_edge;
  }

  // And the randomized refuter over the whole gadget schema finds nothing.
  InstanceGenerator::Options options;
  options.min_objects_per_class = 1;
  options.max_objects_per_class = 3;
  options.edge_probability = 0.5;
  auto witness = std::move(SearchOrderDependenceWitness(
                               *gadget.method, *gadget.schema, 21, 6,
                               options))
                     .value();
  EXPECT_FALSE(witness.has_value());
}

TEST_F(GadgetTest, RejectsInstancesWithGadgetObjects) {
  EquivalenceGadget gadget =
      std::move(MakeEquivalenceGadget(base_, ra::Rel("P"), ra::Rel("P")))
          .value();
  Instance bad(gadget.schema.get());
  ASSERT_TRUE(bad.AddObject(ObjectId(gadget.gadget_class, 0)).ok());
  EXPECT_EQ(MakeGadgetDemonstration(gadget, bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DecisionReportTest, ReportsUnionWidthsAndPruning) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto add_bar = std::move(MakeAddBar(ds)).value();
  DecisionReport report =
      std::move(DecideOrderIndependenceDetailed(
                    *add_bar, OrderIndependenceKind::kAbsolute))
          .value();
  EXPECT_TRUE(report.order_independent);
  ASSERT_EQ(report.properties.size(), 1u);
  const auto& d = report.properties[0];
  EXPECT_EQ(d.property, ds.frequents);
  EXPECT_TRUE(d.equivalent);
  EXPECT_GT(d.raw_disjuncts_tt, 0u);
  EXPECT_LE(d.pruned_disjuncts_tt, d.raw_disjuncts_tt);
  EXPECT_LE(d.pruned_disjuncts_ts, d.raw_disjuncts_ts);

  auto favorite = std::move(MakeFavoriteBar(ds)).value();
  DecisionReport fav = std::move(DecideOrderIndependenceDetailed(
                                     *favorite,
                                     OrderIndependenceKind::kAbsolute))
                           .value();
  EXPECT_FALSE(fav.order_independent);
  ASSERT_EQ(fav.properties.size(), 1u);
  EXPECT_FALSE(fav.properties[0].equivalent);
}

}  // namespace
}  // namespace setrec
