// Tests for algebraic update methods (Section 5): application semantics
// (Definition 5.4), the paper's named methods (Examples 2.7, 4.15, 5.5,
// 5.11) against Figures 2-5, validation rules and positivity.

#include <gtest/gtest.h>

#include "algebraic/method_library.h"
#include "algebraic/order_independence.h"
#include "core/sequential.h"
#include "relational/builder.h"

namespace setrec {
namespace {

class DrinkersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = std::move(MakeDrinkersSchema()).value();
    figure2_ = std::make_unique<Instance>(&ds_.schema);
    drinker1_ = ObjectId(ds_.drinker, 1);
    bar1_ = ObjectId(ds_.bar, 1);
    bar2_ = ObjectId(ds_.bar, 2);
    bar3_ = ObjectId(ds_.bar, 3);
    ASSERT_TRUE(figure2_->AddObject(drinker1_).ok());
    for (ObjectId b : {bar1_, bar2_, bar3_}) {
      ASSERT_TRUE(figure2_->AddObject(b).ok());
    }
    ASSERT_TRUE(figure2_->AddEdge(drinker1_, ds_.frequents, bar1_).ok());
    ASSERT_TRUE(figure2_->AddEdge(drinker1_, ds_.frequents, bar2_).ok());
  }

  std::vector<ObjectId> Frequented(const Instance& i) const {
    return i.Targets(drinker1_, ds_.frequents);
  }

  DrinkersSchema ds_;
  std::unique_ptr<Instance> figure2_;
  ObjectId drinker1_{0, 0}, bar1_{0, 0}, bar2_{0, 0}, bar3_{0, 0};
};

TEST_F(DrinkersTest, AddBarMatchesFigure3) {
  auto add_bar = std::move(MakeAddBar(ds_)).value();
  Receiver r = Receiver::Unchecked({drinker1_, bar3_});
  Instance figure3 = std::move(add_bar->Apply(*figure2_, r)).value();
  EXPECT_EQ(Frequented(figure3), (std::vector<ObjectId>{bar1_, bar2_, bar3_}));
  // Nothing else changed.
  EXPECT_EQ(figure3.num_objects(), figure2_->num_objects());
  EXPECT_EQ(figure3.num_edges(), figure2_->num_edges() + 1);
}

TEST_F(DrinkersTest, FavoriteBarMatchesFigure4) {
  auto favorite = std::move(MakeFavoriteBar(ds_)).value();
  Receiver r = Receiver::Unchecked({drinker1_, bar1_});
  Instance figure4 = std::move(favorite->Apply(*figure2_, r)).value();
  EXPECT_EQ(Frequented(figure4), (std::vector<ObjectId>{bar1_}));
}

TEST_F(DrinkersTest, FavoriteBarSequenceMatchesFigure5) {
  auto favorite = std::move(MakeFavoriteBar(ds_)).value();
  std::vector<Receiver> order = {Receiver::Unchecked({drinker1_, bar1_}),
                                 Receiver::Unchecked({drinker1_, bar3_})};
  Instance figure5 = std::move(ApplySequence(*favorite, *figure2_, order))
                         .value();
  EXPECT_EQ(Frequented(figure5), (std::vector<ObjectId>{bar3_}));
  // The reverse order ends at bar1 (Example 3.2): order dependent.
  std::vector<Receiver> reversed = {order[1], order[0]};
  Instance other = std::move(ApplySequence(*favorite, *figure2_, reversed))
                       .value();
  EXPECT_EQ(Frequented(other), (std::vector<ObjectId>{bar1_}));
  EXPECT_FALSE(figure5 == other);
}

TEST_F(DrinkersTest, ExhaustiveOrderIndependenceOnFigure2) {
  auto add_bar = std::move(MakeAddBar(ds_)).value();
  auto favorite = std::move(MakeFavoriteBar(ds_)).value();
  std::vector<Receiver> receivers = {Receiver::Unchecked({drinker1_, bar1_}),
                                     Receiver::Unchecked({drinker1_, bar3_})};
  auto add_outcome =
      std::move(OrderIndependentOn(*add_bar, *figure2_, receivers)).value();
  EXPECT_TRUE(add_outcome.order_independent);
  ASSERT_TRUE(add_outcome.result.has_value());
  auto fav_outcome =
      std::move(OrderIndependentOn(*favorite, *figure2_, receivers)).value();
  EXPECT_FALSE(fav_outcome.order_independent);
  ASSERT_TRUE(fav_outcome.result_a.has_value());
  ASSERT_TRUE(fav_outcome.result_b.has_value());
  EXPECT_FALSE(*fav_outcome.result_a == *fav_outcome.result_b);
}

TEST_F(DrinkersTest, DeleteBarRemovesOnlyTheArgument) {
  auto delete_bar = std::move(MakeDeleteBar(ds_)).value();
  EXPECT_TRUE(delete_bar->IsPositiveMethod());  // Example 5.11's point
  Receiver r = Receiver::Unchecked({drinker1_, bar1_});
  Instance after = std::move(delete_bar->Apply(*figure2_, r)).value();
  EXPECT_EQ(Frequented(after), (std::vector<ObjectId>{bar2_}));
  // Deleting a bar not frequented is a no-op.
  Receiver r3 = Receiver::Unchecked({drinker1_, bar3_});
  Instance same = std::move(delete_bar->Apply(*figure2_, r3)).value();
  EXPECT_EQ(same, *figure2_);
}

TEST_F(DrinkersTest, LikesServesAddsBarsServingLikedBeers) {
  // Example 4.15: extend Figure 2 with beers; Bar_3 serves a liked beer.
  Instance instance = *figure2_;
  const ObjectId duvel(ds_.beer, 0), bud(ds_.beer, 1);
  ASSERT_TRUE(instance.AddObject(duvel).ok());
  ASSERT_TRUE(instance.AddObject(bud).ok());
  ASSERT_TRUE(instance.AddEdge(drinker1_, ds_.likes, duvel).ok());
  ASSERT_TRUE(instance.AddEdge(bar3_, ds_.serves, duvel).ok());
  ASSERT_TRUE(instance.AddEdge(bar2_, ds_.serves, bud).ok());

  auto method = std::move(MakeLikesServesBar(ds_)).value();
  Receiver r = Receiver::Unchecked({drinker1_});
  Instance after = std::move(method->Apply(instance, r)).value();
  EXPECT_EQ(Frequented(after), (std::vector<ObjectId>{bar1_, bar2_, bar3_}));
  // Inflationary (its minimal coloring is simple, Proposition 4.10).
  EXPECT_TRUE(instance.IsSubInstanceOf(after));
}

TEST_F(DrinkersTest, ApplyRejectsInvalidReceivers) {
  auto favorite = std::move(MakeFavoriteBar(ds_)).value();
  Receiver missing = Receiver::Unchecked({drinker1_, ObjectId(ds_.bar, 9)});
  EXPECT_EQ(favorite->Apply(*figure2_, missing).status().code(),
            StatusCode::kFailedPrecondition);
  Receiver wrong_arity = Receiver::Unchecked({drinker1_});
  EXPECT_FALSE(favorite->Apply(*figure2_, wrong_arity).ok());
}

TEST_F(DrinkersTest, MakeValidatesStatements) {
  // serves is not a property of the receiving class Drinker.
  auto bad = AlgebraicUpdateMethod::Make(
      &ds_.schema, MethodSignature({ds_.drinker, ds_.bar}), "bad",
      {UpdateStatement{ds_.serves, Expr::Relation("arg1")}});
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // Two statements on the same property (Definition 5.4(4)).
  auto dup = AlgebraicUpdateMethod::Make(
      &ds_.schema, MethodSignature({ds_.drinker, ds_.bar}), "dup",
      {UpdateStatement{ds_.frequents, Expr::Relation("arg1")},
       UpdateStatement{ds_.frequents, Expr::Relation("arg1")}});
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);

  // Wrong domain: assigning beers to frequents.
  auto wrong = AlgebraicUpdateMethod::Make(
      &ds_.schema, MethodSignature({ds_.drinker, ds_.beer}), "wrong",
      {UpdateStatement{ds_.frequents, Expr::Relation("arg1")}});
  EXPECT_EQ(wrong.status().code(), StatusCode::kInvalidArgument);

  // Non-unary expression.
  auto wide = AlgebraicUpdateMethod::Make(
      &ds_.schema, MethodSignature({ds_.drinker, ds_.bar}), "wide",
      {UpdateStatement{ds_.frequents, Expr::Relation("Df")}});
  EXPECT_EQ(wide.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DrinkersTest, PositivityDetection) {
  EXPECT_TRUE(std::move(MakeAddBar(ds_)).value()->IsPositiveMethod());
  EXPECT_TRUE(std::move(MakeFavoriteBar(ds_)).value()->IsPositiveMethod());
  // A difference-using method is not positive.
  ExprPtr all_bars = ra::Rename(ra::Rel("Ba"), "Ba", "f");
  ExprPtr current = ra::Project(
      ra::JoinEq(ra::Rel("self"), ra::Rel("Df"), "self", "D"), {"f"});
  auto complement = AlgebraicUpdateMethod::Make(
      &ds_.schema, MethodSignature({ds_.drinker}), "complement",
      {UpdateStatement{ds_.frequents, ra::Diff(all_bars, current)}});
  ASSERT_TRUE(complement.ok());
  EXPECT_FALSE((*complement)->IsPositiveMethod());
}

TEST_F(DrinkersTest, MethodToStringMentionsStatements) {
  auto add_bar = std::move(MakeAddBar(ds_)).value();
  const std::string s = add_bar->ToString();
  EXPECT_NE(s.find("add_bar"), std::string::npos);
  EXPECT_NE(s.find("f :="), std::string::npos);
}

TEST(MethodLibraryTest, TransitiveClosureStepMatchesExample64) {
  TcSchema tc = std::move(MakeTcSchema()).value();
  auto method = std::move(MakeTransitiveClosureMethod(tc)).value();
  // Path 0 -> 1 -> 2 in e; receiver (0, anything) derives 0's tc edges from
  // e plus one step through existing tc.
  Instance instance(&tc.schema);
  const ObjectId n0(tc.c, 0), n1(tc.c, 1), n2(tc.c, 2);
  for (ObjectId o : {n0, n1, n2}) ASSERT_TRUE(instance.AddObject(o).ok());
  ASSERT_TRUE(instance.AddEdge(n0, tc.e, n1).ok());
  ASSERT_TRUE(instance.AddEdge(n1, tc.e, n2).ok());

  Receiver r0 = Receiver::Unchecked({n0, n0});
  Instance once = std::move(method->Apply(instance, r0)).value();
  EXPECT_EQ(once.Targets(n0, tc.tc), (std::vector<ObjectId>{n1}));

  // After receiver 1 seeds tc(1) = {2}, re-applying at 0 adds the 2-step.
  Receiver r1 = Receiver::Unchecked({n1, n1});
  Instance twice = std::move(method->Apply(once, r1)).value();
  Instance thrice = std::move(method->Apply(twice, r0)).value();
  EXPECT_EQ(thrice.Targets(n0, tc.tc), (std::vector<ObjectId>{n1, n2}));
}

TEST(MethodLibraryTest, ReceiversFromQueryChecksSchemes) {
  PairSchema ps = std::move(MakePairSchema()).value();
  Instance instance(&ps.schema);
  const ObjectId n0(ps.c, 0), n1(ps.c, 1);
  ASSERT_TRUE(instance.AddObject(n0).ok());
  ASSERT_TRUE(instance.AddObject(n1).ok());
  ASSERT_TRUE(instance.AddEdge(n0, ps.b, n1).ok());

  MethodSignature sig({ps.c, ps.c});
  auto receivers =
      ReceiversFromQuery(Expr::Relation("Cb"), instance, sig);
  ASSERT_TRUE(receivers.ok());
  ASSERT_EQ(receivers->size(), 1u);
  EXPECT_EQ((*receivers)[0].receiving_object(), n0);
  EXPECT_EQ((*receivers)[0].arg(0), n1);

  // Arity mismatch.
  MethodSignature wide({ps.c, ps.c, ps.c});
  EXPECT_FALSE(ReceiversFromQuery(Expr::Relation("Cb"), instance, wide).ok());
}

}  // namespace
}  // namespace setrec
