// Tests for the incremental view-maintenance subsystem (incremental/): the
// delta-driven materialized receiver views with demand-driven invalidation.
// The acceptance core is differential: every ViewCache read must be
// bit-identical to from-scratch Evaluate(expr, EncodeInstance(instance)) —
// the oracle — over a 16-seed corpus of randomized delta trains, at every
// worker count, and the crash matrix must prove the cache never serves a
// view ahead of what the durable store acknowledged.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "algebraic/method_library.h"
#include "algebraic/parallel.h"
#include "core/exec_context.h"
#include "core/exec_options.h"
#include "core/fault_injection.h"
#include "core/ids.h"
#include "core/instance.h"
#include "core/instance_generator.h"
#include "core/receiver.h"
#include "core/schema.h"
#include "core/sequential.h"
#include "core/status.h"
#include "incremental/view_cache.h"
#include "objrel/encoding.h"
#include "relational/builder.h"
#include "relational/evaluator.h"
#include "relational/expression.h"
#include "relational/relation.h"
#include "sql/engine.h"
#include "store/durable_store.h"
#include "text/printer.h"

namespace setrec {
namespace {

// -- Helpers -----------------------------------------------------------------

/// The differential-testing oracle: from-scratch evaluation over the
/// relational encoding of the current instance.
Relation Oracle(const ExprPtr& expr, const Instance& instance) {
  Database db = std::move(EncodeInstance(instance)).value();
  return std::move(Evaluate(expr, db)).value();
}

/// A fresh, empty directory unique to the running test (and `tag`).
std::string MakeTempDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "setrec_incremental_test" /
      (std::string(info->test_suite_name()) + "." + info->name() + "." + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// Applies `ops` random schema-respecting mutations (add/remove object,
/// add/remove edge) to `instance` and returns the canonical delta. Removals
/// cascade through RemoveObject, so the delta is closed the way
/// DiffInstances produces it — exactly what ApplyDelta requires.
InstanceDelta MutateRandomly(Instance& instance, const Schema& schema,
                             SplitMix64& rng, std::size_t ops) {
  const Instance before = instance;
  for (std::size_t i = 0; i < ops; ++i) {
    switch (rng.UniformInt(4)) {
      case 0: {
        const ClassId c =
            static_cast<ClassId>(rng.UniformInt(schema.num_classes()));
        const ObjectId fresh(c, static_cast<std::uint32_t>(rng.UniformInt(32)));
        (void)(instance.AddObject(fresh));
        break;
      }
      case 1: {
        const ClassId c =
            static_cast<ClassId>(rng.UniformInt(schema.num_classes()));
        const auto& objs = instance.objects(c);
        if (objs.empty()) break;
        auto it = objs.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(
                             rng.UniformInt(objs.size())));
        (void)(instance.RemoveObject(*it));
        break;
      }
      case 2: {
        const PropertyId p =
            static_cast<PropertyId>(rng.UniformInt(schema.num_properties()));
        const Schema::PropertyDef& def = schema.property(p);
        const auto& src = instance.objects(def.source);
        const auto& dst = instance.objects(def.target);
        if (src.empty() || dst.empty()) break;
        auto sit = src.begin();
        std::advance(sit, static_cast<std::ptrdiff_t>(
                              rng.UniformInt(src.size())));
        auto dit = dst.begin();
        std::advance(dit, static_cast<std::ptrdiff_t>(
                              rng.UniformInt(dst.size())));
        (void)(instance.AddEdge(*sit, p, *dit));
        break;
      }
      default: {
        const PropertyId p =
            static_cast<PropertyId>(rng.UniformInt(schema.num_properties()));
        const auto& edges = instance.edges(p);
        if (edges.empty()) break;
        auto it = edges.begin();
        std::advance(it, static_cast<std::ptrdiff_t>(
                             rng.UniformInt(edges.size())));
        (void)(instance.RemoveEdge(it->first, p, it->second));
        break;
      }
    }
  }
  return DiffInstances(before, instance);
}

struct NamedView {
  std::string name;
  ExprPtr expr;
};

/// One view per operator family over the drinkers encoding (relations D,
/// Ba, Be, Df, Dl, Bas): base, union, difference, project-with-support,
/// equi-join chain with rename, and a residual (≠) join.
std::vector<NamedView> MakeTestViews() {
  std::vector<NamedView> v;
  // Base relation behind the identity wrapper.
  v.push_back({"frequents", ra::Rel("Df")});
  // Union of two projections onto one scheme: drinkers with any edge.
  v.push_back({"reaches", ra::Union(ra::Project(ra::Rel("Df"), {"D"}),
                                    ra::Project(ra::Rel("Dl"), {"D"}))});
  // Difference: drinkers frequenting a bar but liking no beer.
  v.push_back({"f_not_l", ra::Diff(ra::Project(ra::Rel("Df"), {"D"}),
                                   ra::Project(ra::Rel("Dl"), {"D"}))});
  // Projection with support counts: drinkers frequenting >= 1 bar.
  v.push_back({"patrons", ra::Project(ra::Rel("Df"), {"D"})});
  // Drinkers frequenting a bar that serves a beer they like: a two-level
  // equi-join chain (sigma-fused products) plus renames and a projection.
  v.push_back(
      {"happy",
       ra::Project(
           ra::SelectEq(
               ra::SelectEq(
                   ra::Product(
                       ra::JoinEq(ra::Rel("Df"), ra::Rel("Bas"), "f", "Ba"),
                       ra::Rename(ra::Rename(ra::Rel("Dl"), "D", "D2"), "l",
                                  "l2")),
                   "D", "D2"),
               "s", "l2"),
           {"D"})});
  // Residual-condition join (no equi key): drinker pairs frequenting
  // different bars.
  v.push_back(
      {"rivals",
       ra::Project(
           ra::SelectNeq(
               ra::Product(ra::Rel("Df"),
                           ra::Rename(ra::Rename(ra::Rel("Df"), "D", "E"),
                                      "f", "g")),
               "f", "g"),
           {"D", "E"})});
  return v;
}

/// A DurableStore statement adding one edge, honoring the statement
/// contract: commit exactly once on success, restore the pre-state on veto.
DurableStore::Statement AddEdgeStatement(Edge e) {
  return [e](Instance& instance, ExecContext&,
             const CommitHook& commit) -> Status {
    const Instance before = instance;
    SETREC_RETURN_IF_ERROR(instance.AddEdge(e));
    if (commit) {
      const Status hooked = commit(before, instance);
      if (!hooked.ok()) {
        instance = before;
        return hooked;
      }
    }
    return Status::OK();
  };
}

// -- Fixture -----------------------------------------------------------------

class ViewCacheTest : public ::testing::Test {
 protected:
  void SetUp() override { ds_ = std::move(MakeDrinkersSchema()).value(); }

  Instance Generate(std::uint64_t seed, std::uint32_t objects_per_class = 8,
                    double edge_probability = 0.35) {
    InstanceGenerator gen(&ds_.schema, seed);
    InstanceGenerator::Options options;
    options.min_objects_per_class = objects_per_class;
    options.max_objects_per_class = objects_per_class;
    options.edge_probability = edge_probability;
    return gen.RandomInstance(options);
  }

  /// A tiny hand-built instance: drinkers d0..d2, one bar, one beer, with
  /// f: d0->b0, l: d1->e0, s: b0->e0. One bar makes "D x Ba" a key set.
  Instance TinyInstance() const {
    Instance inst(&ds_.schema);
    for (std::uint32_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(inst.AddObject(ObjectId(ds_.drinker, i)).ok());
    }
    EXPECT_TRUE(inst.AddObject(ObjectId(ds_.bar, 0)).ok());
    EXPECT_TRUE(inst.AddObject(ObjectId(ds_.beer, 0)).ok());
    EXPECT_TRUE(inst.AddEdge(ObjectId(ds_.drinker, 0), ds_.frequents,
                             ObjectId(ds_.bar, 0))
                    .ok());
    EXPECT_TRUE(inst.AddEdge(ObjectId(ds_.drinker, 1), ds_.likes,
                             ObjectId(ds_.beer, 0))
                    .ok());
    EXPECT_TRUE(
        inst.AddEdge(ObjectId(ds_.bar, 0), ds_.serves, ObjectId(ds_.beer, 0))
            .ok());
    return inst;
  }

  DrinkersSchema ds_;
};

// -- Cold reads and the oracle ----------------------------------------------

TEST_F(ViewCacheTest, ColdReadsMatchFromScratchEvaluation) {
  const Instance instance = Generate(1);
  ViewCache cache(&ds_.schema);
  ASSERT_TRUE(cache.Prime(instance).ok());
  EXPECT_TRUE(cache.primed());

  const std::vector<NamedView> views = MakeTestViews();
  for (const NamedView& v : views) {
    ASSERT_TRUE(cache.Register(v.name, v.expr).ok()) << v.name;
  }
  for (const NamedView& v : views) {
    auto read = cache.Read(v.name);
    ASSERT_TRUE(read.ok()) << v.name;
    EXPECT_TRUE(**read == Oracle(v.expr, instance))
        << "cold read of " << v.name << " diverges from the oracle";
  }
  EXPECT_EQ(cache.stats().rebuilds, views.size());

  // A second round of reads with nothing pending is all hits.
  for (const NamedView& v : views) {
    ASSERT_TRUE(cache.Read(v.name).ok()) << v.name;
  }
  EXPECT_EQ(cache.stats().hits, views.size());
}

// -- The 16-seed corpus of randomized delta trains ---------------------------

TEST_F(ViewCacheTest, SixteenSeedDeltaTrainsMatchTheOracleAtEveryStep) {
  const std::vector<NamedView> views = MakeTestViews();
  std::uint64_t total_refreshes = 0;
  std::uint64_t total_delta_rows = 0;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Instance instance = Generate(seed);
    ViewCache cache(&ds_.schema);
    ASSERT_TRUE(cache.Prime(instance).ok()) << "seed " << seed;
    for (const NamedView& v : views) {
      ASSERT_TRUE(cache.Register(v.name, v.expr).ok()) << v.name;
    }
    SplitMix64 rng(seed * 7919 + 1);
    for (int step = 0; step < 8; ++step) {
      // Two deltas between reads, so refresh must coalesce the pending
      // suffix, not just absorb single entries.
      for (int d = 0; d < 2; ++d) {
        const InstanceDelta delta =
            MutateRandomly(instance, ds_.schema, rng, 5);
        ASSERT_TRUE(cache.ApplyDelta(delta).ok())
            << "seed " << seed << " step " << step;
      }
      for (const NamedView& v : views) {
        auto read = cache.Read(v.name);
        ASSERT_TRUE(read.ok()) << v.name;
        EXPECT_TRUE(**read == Oracle(v.expr, instance))
            << "seed " << seed << " step " << step << " view " << v.name
            << " diverges from the oracle";
      }
    }
    total_refreshes += cache.stats().refreshes;
    total_delta_rows += cache.stats().delta_rows;
  }
  // The corpus must actually exercise delta propagation, not coast on
  // rebuilds and hits.
  EXPECT_GT(total_refreshes, 0u);
  EXPECT_GT(total_delta_rows, 0u);
}

// -- Method-driven trains at every worker count ------------------------------

TEST_F(ViewCacheTest, MethodTrainsAreBitIdenticalAcrossWorkerCounts) {
  const std::vector<NamedView> views = MakeTestViews();
  const auto add_bar = std::move(MakeAddBar(ds_)).value();
  const auto likes_serves = std::move(MakeLikesServesBar(ds_)).value();

  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Instance start = Generate(seed, 8, 0.3);
    std::vector<std::string> finals;
    std::vector<Instance> final_instances;
    for (const std::size_t workers : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      Instance current = start;
      ViewCache cache(&ds_.schema);
      ASSERT_TRUE(cache.Prime(current).ok());
      for (const NamedView& v : views) {
        ASSERT_TRUE(cache.Register(v.name, v.expr).ok()) << v.name;
      }
      // Same generator seed per run: the receiver draws replay identically
      // because the instance states they draw from are identical.
      InstanceGenerator gen(&ds_.schema, seed + 101);
      for (int round = 0; round < 3; ++round) {
        ExecOptions options;
        options.num_workers = workers;
        options.view_cache = &cache;
        const std::vector<Receiver> add_recv =
            gen.RandomKeySet(current, add_bar->signature(), 6);
        Result<Instance> applied = round == 0
                ? SequentialApply(*add_bar, current, add_recv, options)
                : ParallelApply(*add_bar, current, add_recv, options);
        ASSERT_TRUE(applied.ok()) << "seed " << seed << " round " << round;
        current = std::move(applied).value();

        const std::vector<Receiver> ls_recv =
            gen.RandomKeySet(current, likes_serves->signature(), 6);
        Result<Instance> applied2 =
            ParallelApply(*likes_serves, current, ls_recv, options);
        ASSERT_TRUE(applied2.ok()) << "seed " << seed << " round " << round;
        current = std::move(applied2).value();

        for (const NamedView& v : views) {
          auto read = cache.Read(v.name);
          ASSERT_TRUE(read.ok()) << v.name;
          EXPECT_TRUE(**read == Oracle(v.expr, current))
              << "seed " << seed << " workers " << workers << " round "
              << round << " view " << v.name;
        }
      }
      finals.push_back(InstanceToText(current));
      final_instances.push_back(current);
    }
    // Worker count must not change the final instance: equal as graphs and
    // byte-identical in the canonical text form.
    for (std::size_t i = 1; i < finals.size(); ++i) {
      EXPECT_TRUE(final_instances[0] == final_instances[i])
          << "seed " << seed << ": worker-count run " << i << " diverged";
      EXPECT_EQ(finals[0], finals[i]) << "seed " << seed;
    }
  }
}

// -- Publication discipline --------------------------------------------------

TEST_F(ViewCacheTest, RefeedingAPublishedDeltaIsAHarmlessNoOp) {
  Instance instance = Generate(3);
  ViewCache cache(&ds_.schema);
  ASSERT_TRUE(cache.Prime(instance).ok());
  ASSERT_TRUE(cache.Register("frequents", ra::Rel("Df")).ok());

  SplitMix64 rng(42);
  InstanceDelta delta;
  do {
    delta = MutateRandomly(instance, ds_.schema, rng, 4);
  } while (delta.empty());
  ASSERT_TRUE(cache.ApplyDelta(delta).ok());
  const std::uint64_t epoch_after_first = cache.epoch();

  // Stacked commit paths (store hook + txn layer) may publish the same
  // delta twice; normalization must cancel the second feed exactly.
  ASSERT_TRUE(cache.ApplyDelta(delta).ok());
  EXPECT_EQ(cache.epoch(), epoch_after_first);

  auto read = cache.Read("frequents");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(**read == Oracle(ra::Rel("Df"), instance));
}

TEST_F(ViewCacheTest, ApiEdgesFailCleanly) {
  ViewCache cache(&ds_.schema);
  ASSERT_TRUE(cache.Register("frequents", ra::Rel("Df")).ok());

  // Reads and delta feeds before Prime have no base state to work from.
  EXPECT_EQ(cache.Read("frequents").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(cache.ApplyDelta(InstanceDelta{}).code(),
            StatusCode::kFailedPrecondition);

  const Instance instance = Generate(5);
  ASSERT_TRUE(cache.Prime(instance).ok());
  const std::uint64_t epoch = cache.epoch();

  // Empty deltas are absorbed without an epoch bump.
  EXPECT_TRUE(cache.ApplyDelta(InstanceDelta{}).ok());
  EXPECT_EQ(cache.epoch(), epoch);

  // Unknown relations fail at registration, leaving callers their
  // from-scratch fallback.
  EXPECT_FALSE(cache.Register("bad", ra::Rel("Nope")).ok());
  EXPECT_EQ(cache.Read("unregistered").status().code(), StatusCode::kNotFound);

  // Same name: idempotent for the same expression, refused for another.
  EXPECT_TRUE(cache.Register("frequents", ra::Rel("Df")).ok());
  EXPECT_EQ(cache.Register("frequents", ra::Rel("Dl")).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ViewCacheTest, OverBudgetRefreshFallsBackToFullRebuild) {
  Instance instance = Generate(7);
  ViewCacheOptions options;
  options.max_delta_rows_per_refresh = 1;
  ViewCache cache(&ds_.schema, options);
  ASSERT_TRUE(cache.Prime(instance).ok());
  const ExprPtr expr = ra::Union(ra::Project(ra::Rel("Df"), {"D"}),
                                 ra::Project(ra::Rel("Dl"), {"D"}));
  ASSERT_TRUE(cache.Register("reaches", expr).ok());
  ASSERT_TRUE(cache.Read("reaches").ok());
  ASSERT_EQ(cache.stats().rebuilds, 1u);

  // A delta wider than the budget must abandon propagation mid-flight and
  // rematerialize — and the read still answers from fresh state. Three new
  // drinkers frequenting an existing bar is three Df rows against a
  // one-row budget.
  InstanceDelta delta;
  for (std::uint32_t i = 20; i < 23; ++i) {
    delta.added_objects.push_back(ObjectId(ds_.drinker, i));
    delta.added_edges.push_back(Edge{ObjectId(ds_.drinker, i), ds_.frequents,
                                     ObjectId(ds_.bar, 0)});
  }
  ASSERT_TRUE(cache.ApplyDelta(delta).ok());
  ASSERT_TRUE(ApplyDelta(instance, delta).ok());
  auto read = cache.Read("reaches");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(**read == Oracle(expr, instance));
  EXPECT_EQ(cache.stats().fallbacks, 1u);
  EXPECT_EQ(cache.stats().rebuilds, 2u);
  EXPECT_EQ(cache.stats().refreshes, 0u);
}

TEST_F(ViewCacheTest, InvalidationIsDemandDrivenAndSkipsUntouchedViews) {
  const Instance instance = TinyInstance();
  ViewCache cache(&ds_.schema);
  ASSERT_TRUE(cache.Prime(instance).ok());
  ASSERT_TRUE(cache.Register("serves", ra::Rel("Bas")).ok());
  ASSERT_TRUE(cache.Read("serves").ok());

  // A delta to an unrelated relation (class D) must not even mark the view
  // stale; the next read is a pure hit.
  InstanceDelta unrelated;
  unrelated.added_objects.push_back(ObjectId(ds_.drinker, 9));
  ASSERT_TRUE(cache.ApplyDelta(unrelated).ok());
  EXPECT_EQ(cache.stats().invalidations, 0u);
  ASSERT_TRUE(cache.Read("serves").ok());
  EXPECT_EQ(cache.stats().hits, 1u);

  // A delta touching Bas marks the view stale but does no node work until
  // the next read demands it.
  InstanceDelta relevant;
  relevant.added_objects.push_back(ObjectId(ds_.bar, 1));
  relevant.added_edges.push_back(
      Edge{ObjectId(ds_.bar, 1), ds_.serves, ObjectId(ds_.beer, 0)});
  ASSERT_TRUE(cache.ApplyDelta(relevant).ok());
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.stats().refreshes, 0u);

  Instance after = instance;
  ASSERT_TRUE(after.AddObject(ObjectId(ds_.bar, 1)).ok());
  ASSERT_TRUE(after
                  .AddEdge(ObjectId(ds_.bar, 1), ds_.serves,
                           ObjectId(ds_.beer, 0))
                  .ok());
  auto read = cache.Read("serves");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(**read == Oracle(ra::Rel("Bas"), after));
  EXPECT_EQ(cache.stats().refreshes, 1u);
}

TEST_F(ViewCacheTest, QueryEvictsTheLeastRecentlyReadViewAtCapacity) {
  const Instance instance = TinyInstance();
  ViewCacheOptions options;
  options.max_views = 2;
  ViewCache cache(&ds_.schema, options);
  ASSERT_TRUE(cache.Prime(instance).ok());

  ASSERT_TRUE(cache.Query(ra::Rel("D")).ok());
  ASSERT_TRUE(cache.Query(ra::Rel("Ba")).ok());
  // Explicit registrations are pinned by intent: at capacity they refuse
  // rather than evict.
  EXPECT_EQ(cache.Register("pinned", ra::Rel("Be")).code(),
            StatusCode::kResourceExhausted);
  // Ad-hoc queries make room by dropping the least recently read view.
  ASSERT_TRUE(cache.Query(ra::Rel("Be")).ok());
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().registered_views, 2u);
  const std::vector<std::string> names = cache.ViewNames();
  EXPECT_EQ(names.size(), 2u);
  for (const std::string& name : names) {
    EXPECT_NE(name, ExprToString(*ra::Rel("D")))
        << "the oldest view survived the eviction";
  }
}

// -- Governance --------------------------------------------------------------

TEST_F(ViewCacheTest, GovernedReadStopsEarlyAndTheViewRecovers) {
  // Big enough that the rivals self-join blows a 50-step budget in the
  // rebuild loops.
  const Instance instance = Generate(11, 20, 0.5);
  ViewCache cache(&ds_.schema);
  ASSERT_TRUE(cache.Prime(instance).ok());
  const ExprPtr rivals = MakeTestViews().back().expr;
  ASSERT_TRUE(cache.Register("rivals", rivals).ok());

  ExecContext tight(ExecContext::StepBudget(50));
  const Status stopped = cache.Read("rivals", &tight).status();
  ASSERT_FALSE(stopped.ok());
  EXPECT_EQ(stopped.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(IsGovernanceError(stopped));

  // The interrupted rebuild left no torn state behind: an ungoverned read
  // rematerializes and matches the oracle.
  auto read = cache.Read("rivals");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(**read == Oracle(rivals, instance));

  // A governed read with room to spare succeeds under the same machinery.
  ExecContext roomy(ExecContext::StepBudget(1u << 24));
  EXPECT_TRUE(cache.Read("rivals", &roomy).ok());
}

// -- Fail-closed -------------------------------------------------------------

TEST_F(ViewCacheTest, InvalidDeltaFailsClosedUntilReprime) {
  const Instance instance = Generate(13);
  ViewCache cache(&ds_.schema);
  ASSERT_TRUE(cache.Prime(instance).ok());
  ASSERT_TRUE(cache.Register("frequents", ra::Rel("Df")).ok());
  ASSERT_TRUE(cache.Read("frequents").ok());

  // A delta the cache cannot absorb means the publisher's state has moved
  // past anything the mirror can represent: serving reads would silently
  // diverge, so the cache must refuse until re-primed.
  InstanceDelta bad;
  bad.added_objects.push_back(ObjectId(99, 0));
  EXPECT_EQ(cache.ApplyDelta(bad).code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(cache.primed());
  EXPECT_EQ(cache.Read("frequents").status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(cache.Prime(instance).ok());
  auto read = cache.Read("frequents");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(**read == Oracle(ra::Rel("Df"), instance));
}

// -- The SQL engine's receiver-view path -------------------------------------

TEST_F(ViewCacheTest, SetOrientedUpdateThroughTheCacheMatchesThePlainPath) {
  const Instance start = TinyInstance();
  const ExprPtr query = ra::Product(ra::Rel("D"), ra::Rel("Ba"));

  // Plain path: no cache anywhere.
  Instance plain = start;
  ExecContext plain_ctx;
  ASSERT_TRUE(SetOrientedUpdateInPlace(plain, ds_.frequents, query, plain_ctx,
                                       CommitHook{})
                  .ok());

  // Cached path: the receiver set comes out of the view cache and the
  // commit publishes its delta back into it.
  Instance cached = start;
  ViewCache cache(&ds_.schema);
  ASSERT_TRUE(cache.Prime(cached).ok());
  ASSERT_TRUE(cache.Register("frequents", ra::Rel("Df")).ok());
  ExecOptions options;
  options.view_cache = &cache;
  ASSERT_TRUE(
      SetOrientedUpdateInPlace(cached, ds_.frequents, query, options).ok());

  EXPECT_TRUE(plain == cached);
  // The ad-hoc receiver view is now registered alongside the pinned one.
  EXPECT_GE(cache.stats().registered_views, 2u);
  // The published commit delta reaches dependent views.
  auto read = cache.Read("frequents");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(**read == Oracle(ra::Rel("Df"), cached));

  // A second identical update serves its receiver set from the cache (a
  // hit or an incremental refresh — never another cold rebuild of it).
  const std::uint64_t rebuilds_before = cache.stats().rebuilds;
  ASSERT_TRUE(
      SetOrientedUpdateInPlace(cached, ds_.frequents, query, options).ok());
  EXPECT_EQ(cache.stats().rebuilds, rebuilds_before);
  EXPECT_TRUE(plain == cached);  // idempotent update, still in lockstep

  // ReceiversFromView agrees with the from-scratch phase one.
  const auto assign =
      std::move(MakeAssignArgMethod(&ds_.schema, ds_.frequents)).value();
  ExecContext ctx;
  const auto from_query = std::move(
      ReceiversFromQuery(query, cached, assign->signature(), ctx)).value();
  const auto from_view = std::move(
      ReceiversFromView(cache, query, assign->signature())).value();
  EXPECT_EQ(from_query, from_view);
}

TEST_F(ViewCacheTest, SetOrientedDeletePublishesThroughTheCommitHook) {
  Instance instance = TinyInstance();
  ViewCache cache(&ds_.schema);
  ASSERT_TRUE(cache.Prime(instance).ok());
  ASSERT_TRUE(cache.Register("frequents", ra::Rel("Df")).ok());
  ASSERT_TRUE(cache.Read("frequents").ok());

  // Delete every bar: the cascade removes the f- and s-edges too, and the
  // cache must see the whole closed delta through the wrapped hook.
  ExecOptions options;
  options.view_cache = &cache;
  const RowPredicate all = [](const Instance&, ObjectId) -> Result<bool> {
    return true;
  };
  ASSERT_TRUE(SetOrientedDeleteInPlace(instance, ds_.bar, all, options).ok());
  EXPECT_TRUE(instance.objects(ds_.bar).empty());

  auto read = cache.Read("frequents");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ((*read)->size(), 0u);
  EXPECT_TRUE(**read == Oracle(ra::Rel("Df"), instance));
}

// -- The crash-during-commit matrix ------------------------------------------

class DurableCacheTest : public ViewCacheTest {
 protected:
  /// Registers the standard views and returns the ones the store tests
  /// read back.
  void RegisterViews(ViewCache& cache) {
    for (const NamedView& v : MakeTestViews()) {
      ASSERT_TRUE(cache.Register(v.name, v.expr).ok()) << v.name;
    }
  }

  void ExpectViewsMatch(ViewCache& cache, const Instance& instance,
                        const std::string& label) {
    for (const NamedView& v : MakeTestViews()) {
      auto read = cache.Read(v.name);
      ASSERT_TRUE(read.ok()) << label << ": " << v.name;
      EXPECT_TRUE(**read == Oracle(v.expr, instance))
          << label << ": view " << v.name
          << " is not in lockstep with the durable state";
    }
  }

  Status Seed(DurableStore& store) const {
    const Instance db = TinyInstance();
    return store.Mutate([&db](Instance& inst, ExecContext&) {
      inst = db;
      return Status::OK();
    });
  }
};

TEST_F(DurableCacheTest, CommitsPublishAfterFsyncAndReopenReprimes) {
  const std::string dir = MakeTempDir("clean");
  ViewCache cache(&ds_.schema);
  RegisterViews(cache);
  DurableStoreOptions options;
  options.view_cache = &cache;
  Instance committed(&ds_.schema);
  {
    auto store =
        std::move(DurableStore::Open(dir, &ds_.schema, options)).value();
    ASSERT_TRUE(Seed(*store).ok());
    ExpectViewsMatch(cache, store->instance(), "after seed");
    // Every drinker starts frequenting the one bar.
    ASSERT_TRUE(store
                    ->Update(ds_.frequents,
                             ra::Product(ra::Rel("D"), ra::Rel("Ba")))
                    .ok());
    committed = store->SnapshotState();
    ExpectViewsMatch(cache, committed, "after update");
  }
  // Reopening with the same cache re-primes it from the recovered state.
  auto reopened =
      std::move(DurableStore::Open(dir, &ds_.schema, options)).value();
  EXPECT_TRUE(reopened->instance() == committed);
  ExpectViewsMatch(cache, reopened->instance(), "after recovery");
}

TEST_F(DurableCacheTest, TornCommitNeverReachesTheCache) {
  // Seed = storage ops 1 (append) and 2 (sync); the update's append is op 3.
  const std::string dir = MakeTempDir("torn");
  ViewCache cache(&ds_.schema);
  RegisterViews(cache);
  FaultInjector inj = FaultInjector::TornWriteAt(3, 5);
  DurableStoreOptions options;
  options.view_cache = &cache;
  options.injector = &inj;
  Instance seeded(&ds_.schema);
  {
    auto store =
        std::move(DurableStore::Open(dir, &ds_.schema, options)).value();
    ASSERT_TRUE(Seed(*store).ok());
    seeded = store->SnapshotState();
    const Status s = store->Update(ds_.frequents,
                                   ra::Product(ra::Rel("D"), ra::Rel("Ba")));
    ASSERT_FALSE(s.ok());
    EXPECT_TRUE(store->broken());
    EXPECT_TRUE(store->instance() == seeded);
    // The never-ahead invariant: the unacknowledged commit is invisible
    // through every view.
    ExpectViewsMatch(cache, seeded, "after torn commit");
  }
  DurableStoreOptions clean;
  clean.view_cache = &cache;
  auto reopened =
      std::move(DurableStore::Open(dir, &ds_.schema, clean)).value();
  EXPECT_TRUE(reopened->instance() == seeded);
  ExpectViewsMatch(cache, reopened->instance(), "after recovery");
  // The statement still works after recovery, and the cache follows.
  ASSERT_TRUE(reopened
                  ->Update(ds_.frequents,
                           ra::Product(ra::Rel("D"), ra::Rel("Ba")))
                  .ok());
  ExpectViewsMatch(cache, reopened->instance(), "after retry");
}

TEST_F(DurableCacheTest, PartialFsyncNeverReachesTheCache) {
  // The update's append is op 3 and succeeds; its covering fsync (op 4)
  // fails — publication must not have happened in between.
  const std::string dir = MakeTempDir("fsync");
  ViewCache cache(&ds_.schema);
  RegisterViews(cache);
  FaultInjector inj = FaultInjector::PartialFsyncAt(4);
  DurableStoreOptions options;
  options.view_cache = &cache;
  options.injector = &inj;
  Instance seeded(&ds_.schema);
  {
    auto store =
        std::move(DurableStore::Open(dir, &ds_.schema, options)).value();
    ASSERT_TRUE(Seed(*store).ok());
    seeded = store->SnapshotState();
    ASSERT_FALSE(store
                     ->Update(ds_.frequents,
                              ra::Product(ra::Rel("D"), ra::Rel("Ba")))
                     .ok());
    EXPECT_TRUE(store->broken());
    ExpectViewsMatch(cache, seeded, "after failed fsync");
  }
  DurableStoreOptions clean;
  clean.view_cache = &cache;
  auto reopened =
      std::move(DurableStore::Open(dir, &ds_.schema, clean)).value();
  EXPECT_TRUE(reopened->instance() == seeded);
  ExpectViewsMatch(cache, reopened->instance(), "after recovery");
}

TEST_F(DurableCacheTest, BatchFaultRollsBackWithNothingPublished) {
  const std::string dir = MakeTempDir("batch");
  ViewCache cache(&ds_.schema);
  RegisterViews(cache);
  // Seed consumes ops 1-2; the batch appends at 3 and 4 — tear the second.
  FaultInjector inj = FaultInjector::TornWriteAt(4, 3);
  DurableStoreOptions options;
  options.view_cache = &cache;
  options.injector = &inj;
  auto store =
      std::move(DurableStore::Open(dir, &ds_.schema, options)).value();
  ASSERT_TRUE(Seed(*store).ok());
  const Instance seeded = store->SnapshotState();

  const std::vector<DurableStore::Statement> statements = {
      AddEdgeStatement(Edge{ObjectId(ds_.drinker, 1), ds_.frequents,
                            ObjectId(ds_.bar, 0)}),
      AddEdgeStatement(Edge{ObjectId(ds_.drinker, 2), ds_.frequents,
                            ObjectId(ds_.bar, 0)}),
  };
  ASSERT_FALSE(store->CommitBatch(statements).ok());
  EXPECT_TRUE(store->instance() == seeded);
  // Neither statement's staged delta leaked into the cache — not even the
  // first, whose append succeeded before the tear.
  ExpectViewsMatch(cache, seeded, "after torn batch");
}

TEST_F(DurableCacheTest, SuccessfulBatchPublishesEveryStagedDelta) {
  const std::string dir = MakeTempDir("batchok");
  ViewCache cache(&ds_.schema);
  RegisterViews(cache);
  DurableStoreOptions options;
  options.view_cache = &cache;
  auto store =
      std::move(DurableStore::Open(dir, &ds_.schema, options)).value();
  ASSERT_TRUE(Seed(*store).ok());

  const std::vector<DurableStore::Statement> statements = {
      AddEdgeStatement(Edge{ObjectId(ds_.drinker, 1), ds_.frequents,
                            ObjectId(ds_.bar, 0)}),
      AddEdgeStatement(Edge{ObjectId(ds_.drinker, 2), ds_.frequents,
                            ObjectId(ds_.bar, 0)}),
  };
  ASSERT_TRUE(store->CommitBatch(statements).ok());
  ExpectViewsMatch(cache, store->instance(), "after batch");
}

// -- Concurrency -------------------------------------------------------------

TEST_F(ViewCacheTest, ConcurrentReadsDuringDeltaFeedsStayWellFormed) {
  Instance instance = Generate(17);
  ViewCache cache(&ds_.schema);
  ASSERT_TRUE(cache.Prime(instance).ok());
  ASSERT_TRUE(cache.Register("frequents", ra::Rel("Df")).ok());
  ASSERT_TRUE(cache.Register("patrons",
                             ra::Project(ra::Rel("Df"), {"D"})).ok());

  std::atomic<bool> done{false};
  std::thread writer([&] {
    SplitMix64 rng(23);
    for (int i = 0; i < 60; ++i) {
      const InstanceDelta delta = MutateRandomly(instance, ds_.schema, rng, 3);
      ASSERT_TRUE(cache.ApplyDelta(delta).ok());
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      while (!done.load()) {
        auto read = cache.Read(r % 2 == 0 ? "frequents" : "patrons");
        ASSERT_TRUE(read.ok());
        // Copy-on-write: the snapshot stays valid and internally
        // consistent while refreshes proceed underneath it.
        for (const Tuple* t : (*read)->SortedTuples()) {
          ASSERT_EQ(t->arity(), (*read)->scheme().arity());
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();

  auto read = cache.Read("frequents");
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(**read == Oracle(ra::Rel("Df"), instance));
}

}  // namespace
}  // namespace setrec
