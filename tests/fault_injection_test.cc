// Tests for the deterministic fault-injection harness (core/fault_injection.h)
// and the all-or-nothing guarantee it proves: a fault injected at ANY probe
// point of a set-oriented SQL statement unwinds cleanly and leaves the
// instance bit-identical to its pre-statement snapshot, and a fault at any
// probe of the containment kernel propagates as a typed error, never a crash
// or a partial result.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "conjunctive/chase.h"
#include "conjunctive/containment.h"
#include "core/exec_context.h"
#include "core/fault_injection.h"
#include "relational/builder.h"
#include "sql/engine.h"
#include "sql/table.h"

namespace setrec {
namespace {

// -- The injector itself -----------------------------------------------------

TEST(FaultInjectorTest, ObserveOnlyNeverFires) {
  FaultInjector inj;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(inj.Probe("test/point").ok());
  }
  EXPECT_EQ(inj.probes_seen(), 100u);
  EXPECT_EQ(inj.faults_fired(), 0u);
}

TEST(FaultInjectorTest, FiresExactlyAtTheNthProbe) {
  FaultInjector inj =
      FaultInjector::FireAtNthProbe(3, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(inj.Probe("a").ok());
  EXPECT_TRUE(inj.Probe("b").ok());
  Status s = inj.Probe("c");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  // The message pinpoints the firing site.
  EXPECT_NE(s.message().find("c"), std::string::npos);
  EXPECT_TRUE(inj.Probe("d").ok());  // fires once, not from then on
  EXPECT_EQ(inj.probes_seen(), 4u);
  EXPECT_EQ(inj.faults_fired(), 1u);
}

TEST(FaultInjectorTest, ZeroNeverFires) {
  FaultInjector inj = FaultInjector::FireAtNthProbe(0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(inj.Probe("p").ok());
  }
  EXPECT_EQ(inj.faults_fired(), 0u);
}

TEST(FaultInjectorTest, ResetKeepsTheConfiguration) {
  FaultInjector inj = FaultInjector::FireAtNthProbe(2);
  EXPECT_TRUE(inj.Probe("p").ok());
  EXPECT_EQ(inj.Probe("p").code(), StatusCode::kInternal);
  inj.Reset();
  EXPECT_EQ(inj.probes_seen(), 0u);
  EXPECT_EQ(inj.faults_fired(), 0u);
  // Same trigger after the reset: fires at the 2nd probe again.
  EXPECT_TRUE(inj.Probe("p").ok());
  EXPECT_EQ(inj.Probe("p").code(), StatusCode::kInternal);
}

TEST(FaultInjectorTest, SeededModeIsReproducible) {
  auto fire_pattern = [](std::uint64_t seed) {
    FaultInjector inj = FaultInjector::FireWithProbability(seed, 0.5);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(!inj.Probe("p").ok());
    }
    return fired;
  };
  std::vector<bool> a = fire_pattern(42);
  EXPECT_EQ(a, fire_pattern(42));
  // p = 0.5 over 200 probes: some fire, some do not.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultInjectorTest, RecordingEnumeratesProbeNames) {
  FaultInjector inj;
  inj.set_recording(true);
  EXPECT_TRUE(inj.Probe("first").ok());
  EXPECT_TRUE(inj.Probe("second").ok());
  EXPECT_EQ(inj.recorded_probes(),
            (std::vector<std::string>{"first", "second"}));
  inj.Reset();
  EXPECT_TRUE(inj.recorded_probes().empty());
}

TEST(FaultInjectorTest, StorageProbeFiresOnlyAtTheNthStorageOp) {
  FaultInjector inj = FaultInjector::TornWriteAt(3, 42);
  EXPECT_EQ(inj.StorageProbe("wal/append").kind, StorageFaultKind::kNone);
  EXPECT_EQ(inj.StorageProbe("wal/sync").kind, StorageFaultKind::kNone);
  const StorageFaultPlan plan = inj.StorageProbe("wal/append");
  EXPECT_EQ(plan.kind, StorageFaultKind::kTornWrite);
  EXPECT_EQ(plan.byte_offset, 42u);
  EXPECT_EQ(inj.StorageProbe("wal/append").kind, StorageFaultKind::kNone);
  EXPECT_EQ(inj.storage_ops_seen(), 4u);
  EXPECT_EQ(inj.storage_faults_fired(), 1u);
  // Storage ops and exec probes are counted on separate axes: a storage
  // configuration never fires on the exec-probe path and vice versa.
  EXPECT_TRUE(inj.Probe("exec/point").ok());
  EXPECT_EQ(inj.probes_seen(), 1u);
  EXPECT_EQ(inj.faults_fired(), 0u);
}

TEST(FaultInjectorTest, CountersAreExactUnderConcurrentProbes) {
  // A shared injector is hammered from several threads (as a foreground
  // commit path and a background checkpoint thread would); the atomic
  // counters must not lose increments, and count-triggered mode must fire
  // exactly once no matter which thread hits the trigger ordinal.
  constexpr int kThreads = 4;
  constexpr int kProbesPerThread = 5000;
  FaultInjector inj = FaultInjector::FireAtNthProbe(kThreads * 1000);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kProbesPerThread; ++i) {
        if (!inj.Probe("mt/point").ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
        inj.StorageProbe("mt/storage");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(inj.probes_seen(),
            static_cast<std::uint64_t>(kThreads) * kProbesPerThread);
  EXPECT_EQ(inj.storage_ops_seen(),
            static_cast<std::uint64_t>(kThreads) * kProbesPerThread);
  EXPECT_EQ(failures.load(), 1);
  EXPECT_EQ(inj.faults_fired(), 1u);
}

// -- All-or-nothing SQL statements under injected faults ---------------------

class PayrollFaults : public ::testing::Test {
 protected:
  void SetUp() override { ps_ = std::move(MakePayrollSchema()).value(); }

  /// The Section 7 receiver query "select EmpId, New from Employee, NewSal
  /// where Salary = Old" — a key set over the fixture data below.
  ExprPtr SalaryUpdateQuery() const {
    return ra::Project(
        ra::JoinEq(ra::Rel("EmpSalary"),
                   ra::Project(ra::JoinEq(ra::Rel("NSOld"),
                                          ra::Rename(ra::Rel("NSNew"), "NS",
                                                     "NS2"),
                                          "NS", "NS2"),
                               {"Old", "New"}),
                   "Salary", "Old"),
        {"Emp", "New"});
  }

  Instance BuildDb() const {
    std::vector<EmployeeRow> employees = {
        {1, 100, std::nullopt}, {2, 200, std::nullopt}, {3, 100, std::nullopt}};
    std::vector<NewSalRow> raises = {{100, 150}, {200, 250}};
    return std::move(BuildPayrollInstance(ps_, employees, {{100, 300}}, raises))
        .value();
  }

  PayrollSchema ps_;
};

TEST_F(PayrollFaults, SetOrientedUpdateRollsBackAtEveryProbePoint) {
  const Instance original = BuildDb();
  const ExprPtr query = SalaryUpdateQuery();

  // Dry run with an observe-only recording injector: learn how many probes
  // the statement traverses and that the clean run actually mutates.
  Instance clean = original;
  FaultInjector observer;
  observer.set_recording(true);
  ExecContext observe_ctx;
  observe_ctx.set_fault_injector(&observer);
  ASSERT_TRUE(
      SetOrientedUpdateInPlace(clean, ps_.salary, query, observe_ctx).ok());
  EXPECT_FALSE(clean == original);
  const std::uint64_t n_probes = observer.probes_seen();
  ASSERT_GT(n_probes, 0u);
  // The apply loop's probe points are among the recorded ones.
  const auto& names = observer.recorded_probes();
  EXPECT_NE(std::find(names.begin(), names.end(), "sql/update/receiver"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "sql/update/edge"),
            names.end());

  // Now fire a fault at EVERY one of those probes, under two failure codes:
  // an arbitrary internal error and a governance trip. In every case the
  // statement must fail with exactly the injected code and the instance must
  // be bit-identical to the pre-statement snapshot.
  for (StatusCode code :
       {StatusCode::kInternal, StatusCode::kDeadlineExceeded}) {
    for (std::uint64_t k = 1; k <= n_probes; ++k) {
      Instance attempt = original;
      FaultInjector inj = FaultInjector::FireAtNthProbe(k, code);
      ExecContext ctx;
      ctx.set_fault_injector(&inj);
      Status s = SetOrientedUpdateInPlace(attempt, ps_.salary, query, ctx);
      ASSERT_FALSE(s.ok()) << "probe " << k;
      EXPECT_EQ(s.code(), code) << "probe " << k;
      EXPECT_TRUE(attempt == original)
          << "partial mutation survived a fault at probe " << k;
    }
  }
}

TEST_F(PayrollFaults, SetOrientedDeleteRollsBackAtEveryProbePoint) {
  const Instance original = BuildDb();
  const RowPredicate pred = SalaryInFire(ps_);

  Instance clean = original;
  FaultInjector observer;
  ExecContext observe_ctx;
  observe_ctx.set_fault_injector(&observer);
  ASSERT_TRUE(
      SetOrientedDeleteInPlace(clean, ps_.emp, pred, observe_ctx).ok());
  EXPECT_FALSE(clean == original);  // salary 100 is in Fire: rows deleted
  const std::uint64_t n_probes = observer.probes_seen();
  ASSERT_GT(n_probes, 0u);

  for (StatusCode code :
       {StatusCode::kInternal, StatusCode::kResourceExhausted}) {
    for (std::uint64_t k = 1; k <= n_probes; ++k) {
      Instance attempt = original;
      FaultInjector inj = FaultInjector::FireAtNthProbe(k, code);
      ExecContext ctx;
      ctx.set_fault_injector(&inj);
      Status s = SetOrientedDeleteInPlace(attempt, ps_.emp, pred, ctx);
      ASSERT_FALSE(s.ok()) << "probe " << k;
      EXPECT_EQ(s.code(), code) << "probe " << k;
      EXPECT_TRUE(attempt == original)
          << "partial mutation survived a fault at probe " << k;
    }
  }
}

// -- Clean unwinding of the read-only kernels --------------------------------

TEST(ContainmentFaultsTest, FaultAtEveryProbeUnwindsAsATypedError) {
  // A small chain query: enough structure to traverse the chase, the
  // representative-valuation enumeration, and the homomorphism membership
  // search, but few enough probes to exhaustively fault each one.
  constexpr ClassId kP = 0;
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddRelation("E", std::move(RelationScheme::Make(
                                                  {{"x", kP}, {"y", kP}}))
                                        .value())
                  .ok());
  ConjunctiveQuery q;
  VarId a = q.NewVar(kP), b = q.NewVar(kP), c = q.NewVar(kP),
        d = q.NewVar(kP);
  q.AddConjunct("E", {a, b});
  q.AddConjunct("E", {b, c});
  q.AddConjunct("E", {c, d});
  q.set_summary({a});
  PositiveQuery pq{std::move(RelationScheme::Make({{"v", kP}})).value(), {q}};

  FaultInjector observer;
  observer.set_recording(true);
  ExecContext observe_ctx;
  observe_ctx.set_fault_injector(&observer);
  Result<ContainmentResult> clean =
      CheckContainment(pq, pq, DependencySet{}, catalog, /*simplify=*/false,
                       observe_ctx);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->contained);  // q ⊆ q
  const std::uint64_t n_probes = observer.probes_seen();
  ASSERT_GT(n_probes, 0u);
  const auto& names = observer.recorded_probes();
  EXPECT_NE(std::find(names.begin(), names.end(), "chase/round"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "representative/valuation"),
            names.end());

  for (std::uint64_t k = 1; k <= n_probes; ++k) {
    FaultInjector inj = FaultInjector::FireAtNthProbe(k);
    ExecContext ctx;
    ctx.set_fault_injector(&inj);
    Result<ContainmentResult> r = CheckContainment(
        pq, pq, DependencySet{}, catalog, /*simplify=*/false, ctx);
    ASSERT_FALSE(r.ok()) << "probe " << k;
    EXPECT_EQ(r.status().code(), StatusCode::kInternal) << "probe " << k;
  }
}

}  // namespace
}  // namespace setrec
