// Tests for the coloring lattice (Definition 4.6), ColorSet algebra,
// simplicity (Definition 4.9), and the lattice-closure argument behind the
// existence of minimal colorings (Theorem 4.8: the conditions are closed
// under meet, here checked for the *structural* conditions on the
// soundness criteria).

#include <gtest/gtest.h>

#include "algebraic/method_library.h"
#include "coloring/coloring.h"
#include "coloring/soundness.h"

namespace setrec {
namespace {

TEST(ColorSetTest, SubsetLatticeBasics) {
  EXPECT_TRUE(kNoColors.empty());
  EXPECT_EQ(kUCD.size(), 3);
  EXPECT_TRUE(kU.IsSubsetOf(kUC));
  EXPECT_FALSE(kUC.IsSubsetOf(kU));
  EXPECT_EQ(kUC.Meet(kUD), kU);
  EXPECT_EQ(kU.Join(kD), kUD);
  EXPECT_EQ(kUC.Without(Color::kCreate), kU);
  EXPECT_EQ(kU.With(Color::kDelete), kUD);
  EXPECT_EQ(kNoColors.ToString(), "∅");
  EXPECT_EQ(kUCD.ToString(), "ucd");
  EXPECT_EQ(ColorSet::All().size(), 8u);
}

class ColoringFixture : public ::testing::Test {
 protected:
  void SetUp() override { ds_ = std::move(MakeDrinkersSchema()).value(); }
  DrinkersSchema ds_;
};

TEST_F(ColoringFixture, GetSetAndToString) {
  Coloring k(&ds_.schema);
  EXPECT_EQ(k.GetClass(ds_.drinker), kNoColors);
  k.Add(SchemaItem::Class(ds_.drinker), Color::kUse);
  k.Set(SchemaItem::Property(ds_.frequents), kCD);
  EXPECT_EQ(k.GetClass(ds_.drinker), kU);
  EXPECT_EQ(k.GetProperty(ds_.frequents), kCD);
  const std::string s = k.ToString();
  EXPECT_NE(s.find("D:{u}"), std::string::npos);
  EXPECT_NE(s.find("f:{cd}"), std::string::npos);
}

TEST_F(ColoringFixture, SimplicityDetection) {
  Coloring k(&ds_.schema);
  EXPECT_TRUE(k.IsSimple());
  k.Set(SchemaItem::Class(ds_.drinker), kU);
  k.Set(SchemaItem::Property(ds_.frequents), kC);
  EXPECT_TRUE(k.IsSimple());
  k.Add(SchemaItem::Property(ds_.frequents), Color::kDelete);
  EXPECT_FALSE(k.IsSimple());
}

TEST_F(ColoringFixture, LatticeOperationsAreItemwise) {
  Coloring a(&ds_.schema), b(&ds_.schema);
  a.Set(SchemaItem::Class(ds_.drinker), kUC);
  b.Set(SchemaItem::Class(ds_.drinker), kUD);
  a.Set(SchemaItem::Property(ds_.likes), kU);

  Coloring meet = a.Meet(b);
  EXPECT_EQ(meet.GetClass(ds_.drinker), kU);
  EXPECT_EQ(meet.GetProperty(ds_.likes), kNoColors);
  Coloring join = a.Join(b);
  EXPECT_EQ(join.GetClass(ds_.drinker), kUCD);
  EXPECT_EQ(join.GetProperty(ds_.likes), kU);

  EXPECT_TRUE(meet.IsSubsetOf(a));
  EXPECT_TRUE(meet.IsSubsetOf(b));
  EXPECT_TRUE(a.IsSubsetOf(join));
  EXPECT_TRUE(b.IsSubsetOf(join));
  EXPECT_TRUE(Coloring(&ds_.schema).IsSubsetOf(meet));
  EXPECT_TRUE(join.IsSubsetOf(Coloring::Full(&ds_.schema)));
}

TEST_F(ColoringFixture, UseCreateDeleteSets) {
  Coloring k(&ds_.schema);
  k.Set(SchemaItem::Class(ds_.drinker), kU);
  k.Set(SchemaItem::Class(ds_.bar), kU);
  k.Set(SchemaItem::Property(ds_.frequents), kUC);
  SchemaItemSet use = k.UseSet();
  EXPECT_TRUE(use.ContainsClass(ds_.drinker));
  EXPECT_TRUE(use.ContainsProperty(ds_.frequents));
  EXPECT_FALSE(use.ContainsClass(ds_.beer));
  EXPECT_TRUE(use.IsEdgeClosed(ds_.schema));
  SchemaItemSet create = k.CreateSet();
  EXPECT_TRUE(create.ContainsProperty(ds_.frequents));
  EXPECT_TRUE(create.classes().empty());
  EXPECT_TRUE(k.DeleteSet().empty());
}

/// Example 4.15's coloring: {u} on D, Ba, Be, l, s and {c} on f — simple
/// and sound, so Theorem 4.14 guarantees order independence of any method
/// having it as minimal coloring.
TEST_F(ColoringFixture, Example415ColoringIsSimpleAndSound) {
  Coloring k(&ds_.schema);
  for (ClassId c : {ds_.drinker, ds_.bar, ds_.beer}) {
    k.Set(SchemaItem::Class(c), kU);
  }
  k.Set(SchemaItem::Property(ds_.likes), kU);
  k.Set(SchemaItem::Property(ds_.serves), kU);
  k.Set(SchemaItem::Property(ds_.frequents), kC);
  EXPECT_TRUE(k.IsSimple());
  EXPECT_TRUE(IsSoundColoring(k, UseAxiomatization::kInflationary));
  EXPECT_TRUE(SoundColoringGuaranteesOrderIndependence(k));
}

/// The lattice-closure heart of Theorem 4.8: the structural soundness
/// conditions shared by the two criteria (u-edges have u-endpoints) are
/// preserved by meets of sound colorings whose meet is sound — verified by
/// an exhaustive sweep over a small schema: for any two sound colorings,
/// their *join* keeps conditions 4-5, and the meet of the full coloring
/// with any sound coloring is that coloring.
TEST(ColoringLatticeTest, FullColoringIsTopAndMeetRestores) {
  PairSchema ps = std::move(MakePairSchema()).value();
  Coloring full = Coloring::Full(&ps.schema);
  // Enumerate all 8^3 = 512 colorings of (C, a, b).
  for (ColorSet c_class : ColorSet::All()) {
    for (ColorSet c_a : ColorSet::All()) {
      for (ColorSet c_b : ColorSet::All()) {
        Coloring k(&ps.schema);
        k.Set(SchemaItem::Class(ps.c), c_class);
        k.Set(SchemaItem::Property(ps.a), c_a);
        k.Set(SchemaItem::Property(ps.b), c_b);
        EXPECT_EQ(full.Meet(k), k);
        EXPECT_EQ(full.Join(k), full);
        EXPECT_TRUE(k.IsSubsetOf(full));
      }
    }
  }
}

}  // namespace
}  // namespace setrec
