// Tests for the conjunctive-query containment machinery of Appendix A:
// translation from positive algebra, Chandra–Merlin homomorphisms, Klug's
// representative-set test for non-equalities (Theorem A.1), union
// containment (Sagiv–Yannakakis), and containment under dependencies
// (Lemma 5.13) — cross-validated against exhaustive evaluation on random
// databases.

#include <gtest/gtest.h>

#include "conjunctive/chase.h"
#include "conjunctive/containment.h"
#include "conjunctive/homomorphism.h"
#include "conjunctive/representative.h"
#include "conjunctive/translate.h"
#include "core/instance_generator.h"
#include "relational/builder.h"
#include "relational/evaluator.h"

namespace setrec {
namespace {

constexpr ClassId kP = 0;

ObjectId P(std::uint32_t i) { return ObjectId(kP, i); }

RelationScheme MakeScheme(std::vector<Attribute> attrs) {
  return std::move(RelationScheme::Make(std::move(attrs))).value();
}

/// A catalog with one binary relation E(x, y) over a single domain — the
/// classical graph setting for conjunctive-query theory.
Catalog GraphCatalog() {
  Catalog catalog;
  EXPECT_TRUE(
      catalog.AddRelation("E", MakeScheme({{"x", kP}, {"y", kP}})).ok());
  EXPECT_TRUE(catalog.AddRelation("V", MakeScheme({{"v", kP}})).ok());
  return catalog;
}

PositiveQuery Translate(const ExprPtr& e, const Catalog& catalog) {
  return std::move(TranslateToPositiveQuery(e, catalog)).value();
}

TEST(TranslateTest, RelationLeafAndSelections) {
  Catalog catalog = GraphCatalog();
  PositiveQuery q = Translate(ra::Rel("E"), catalog);
  ASSERT_EQ(q.disjuncts.size(), 1u);
  EXPECT_EQ(q.disjuncts[0].conjuncts().size(), 1u);
  EXPECT_EQ(q.disjuncts[0].summary().size(), 2u);

  // Self-loops: σ_{x=y}(E) unifies the variables.
  PositiveQuery loops = Translate(ra::SelectEq(ra::Rel("E"), "x", "y"),
                                  catalog);
  ASSERT_EQ(loops.disjuncts.size(), 1u);
  EXPECT_EQ(loops.disjuncts[0].num_vars(), 1u);

  // σ_{x≠y}σ_{x=y}(E) is unsatisfiable: the disjunct is dropped.
  PositiveQuery none = Translate(
      ra::SelectNeq(ra::SelectEq(ra::Rel("E"), "x", "y"), "x", "y"), catalog);
  EXPECT_TRUE(none.disjuncts.empty());

  // Unions concatenate, products multiply.
  ExprPtr u = ra::Union(ra::Rel("E"), ra::Rel("E"));
  EXPECT_EQ(Translate(u, catalog).disjuncts.size(), 2u);
  ExprPtr prod =
      ra::Product(u, ra::Rename(ra::Rename(u, "x", "x2"), "y", "y2"));
  EXPECT_EQ(Translate(prod, catalog).disjuncts.size(), 4u);

  // Difference is rejected (Definition 5.2).
  EXPECT_FALSE(
      TranslateToPositiveQuery(ra::Diff(ra::Rel("E"), ra::Rel("E")), catalog)
          .ok());
}

/// Translation preserves semantics: evaluating the positive query equals
/// evaluating the expression, on random graph databases.
class TranslationSemanticsTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TranslationSemanticsTest, QueryEvaluationMatchesAlgebra) {
  Catalog catalog = GraphCatalog();
  SplitMix64 rng(GetParam());
  Database db;
  Relation e(MakeScheme({{"x", kP}, {"y", kP}}));
  Relation v(MakeScheme({{"v", kP}}));
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(v.Insert(Tuple{P(i)}).ok());
  }
  const std::size_t edges = 2 + rng.UniformInt(6);
  for (std::size_t i = 0; i < edges; ++i) {
    ASSERT_TRUE(e.Insert(Tuple{P(static_cast<std::uint32_t>(rng.UniformInt(4))),
                               P(static_cast<std::uint32_t>(rng.UniformInt(4)))})
                    .ok());
  }
  db.Put("E", std::move(e));
  db.Put("V", std::move(v));

  // Paths of length 2 with distinct endpoints, plus self-loop vertices.
  ExprPtr e2 = ra::Rename(ra::Rename(ra::Rel("E"), "x", "x2"), "y", "y2");
  ExprPtr paths = ra::Project(
      ra::SelectNeq(ra::SelectEq(ra::Product(ra::Rel("E"), e2), "y", "x2"),
                    "x", "y2"),
      {"x"});
  ExprPtr loops = ra::Project(ra::SelectEq(ra::Rel("E"), "x", "y"), {"x"});
  ExprPtr expr = ra::Union(paths, loops);

  Relation direct = std::move(Evaluate(expr, db)).value();
  PositiveQuery q = Translate(expr, GraphCatalog());
  Relation via_query = std::move(EvaluatePositiveQuery(q, db)).value();
  EXPECT_EQ(direct, via_query);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TranslationSemanticsTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(HomomorphismTest, ChandraMerlinClassics) {
  // q_path(x) :- E(x,y), E(y,z)   vs   q_loop(x) :- E(x,x).
  ConjunctiveQuery path;
  VarId x = path.NewVar(kP), y = path.NewVar(kP), z = path.NewVar(kP);
  path.AddConjunct("E", {x, y});
  path.AddConjunct("E", {y, z});
  path.set_summary({x});

  ConjunctiveQuery loop;
  VarId w = loop.NewVar(kP);
  loop.AddConjunct("E", {w, w});
  loop.set_summary({w});

  // hom path → loop exists (collapse): so loop ⊆ path.
  EXPECT_TRUE(std::move(HasHomomorphism(path, loop, false)).value());
  // hom loop → path does not: path ⊄ loop.
  EXPECT_FALSE(std::move(HasHomomorphism(loop, path, false)).value());
}

TEST(KlugTest, NonEqualityBreaksTheHomomorphismTheorem) {
  // Klug's phenomenon: with ≠, containment cannot be decided by one
  // canonical database. q1(x) :- E(x,y). q2(x) :- E(x,y), y≠x... q1 ⊄ q2
  // (loops), but the homomorphism q2 → q1 exists if ≠ is ignored.
  Catalog catalog = GraphCatalog();
  ExprPtr q1e = ra::Project(ra::Rel("E"), {"x"});
  ExprPtr q2e = ra::Project(ra::SelectNeq(ra::Rel("E"), "x", "y"), {"x"});
  PositiveQuery q1 = Translate(q1e, catalog);
  PositiveQuery q2 = Translate(q2e, catalog);
  DependencySet none;
  EXPECT_FALSE(std::move(ContainedUnder(q1, q2, none, catalog)).value());
  EXPECT_TRUE(std::move(ContainedUnder(q2, q1, none, catalog)).value());

  // The representative-set counterexample: the valuation collapsing x and y
  // (a loop) satisfies q1 but not q2.
  auto result = std::move(CheckContainment(q1, q2, none, catalog)).value();
  ASSERT_TRUE(result.counterexample.has_value());
  const Relation* edges = std::move(result.counterexample->Find("E")).value();
  ASSERT_EQ(edges->size(), 1u);
  EXPECT_EQ(edges->tuples().begin()->at(0), edges->tuples().begin()->at(1));
}

TEST(KlugTest, RepresentativeValuationCounts) {
  // n same-domain unconstrained variables yield Bell(n) partitions.
  ConjunctiveQuery q;
  VarId a = q.NewVar(kP), b = q.NewVar(kP), c = q.NewVar(kP);
  q.AddConjunct("V", {a});
  q.AddConjunct("V", {b});
  q.AddConjunct("V", {c});
  q.set_summary({a});
  EXPECT_EQ(CountRepresentativeValuations(q), 5u);  // Bell(3)

  // A non-equality removes the partitions merging that pair.
  q.AddNonEquality(a, b);
  EXPECT_EQ(CountRepresentativeValuations(q), 3u);

  // Different domains never merge.
  ConjunctiveQuery typed;
  VarId p = typed.NewVar(kP), r = typed.NewVar(1);
  typed.AddConjunct("V", {p});
  typed.AddConjunct("W", {r});
  typed.set_summary({p});
  EXPECT_EQ(CountRepresentativeValuations(typed), 1u);
}

TEST(UnionContainmentTest, SagivYannakakis) {
  Catalog catalog = GraphCatalog();
  DependencySet none;
  // E ⊆ E ∪ loops, and loops ⊆ E, but E ⊄ loops.
  ExprPtr all = ra::Rel("E");
  ExprPtr loops = ra::SelectEq(ra::Rel("E"), "x", "y");
  PositiveQuery q_all = Translate(all, catalog);
  PositiveQuery q_loops = Translate(loops, catalog);
  PositiveQuery q_union = Translate(ra::Union(all, loops), catalog);
  EXPECT_TRUE(std::move(ContainedUnder(q_all, q_union, none, catalog)).value());
  EXPECT_TRUE(
      std::move(ContainedUnder(q_loops, q_all, none, catalog)).value());
  EXPECT_FALSE(
      std::move(ContainedUnder(q_all, q_loops, none, catalog)).value());
  EXPECT_TRUE(
      std::move(EquivalentUnder(q_all, q_union, none, catalog)).value());
}

TEST(DependencyContainmentTest, FunctionalDependencyEnablesContainment) {
  // Under E: x→y, "two successors" implies they coincide:
  // q1() :- E(x,y1), E(x,y2), y1 ≠ y2 is unsatisfiable, hence contained in
  // anything — but only under the FD.
  Catalog catalog = GraphCatalog();
  ExprPtr e2 = ra::Rename(ra::Rename(ra::Rel("E"), "x", "x2"), "y", "y2");
  ExprPtr two = ra::Project(
      ra::SelectNeq(ra::SelectEq(ra::Product(ra::Rel("E"), e2), "x", "x2"),
                    "y", "y2"),
      std::vector<std::string>{});
  ExprPtr empty = ra::Project(
      ra::SelectNeq(ra::SelectEq(ra::Rel("E"), "x", "y"), "x", "y"),
      std::vector<std::string>{});
  PositiveQuery q_two = Translate(two, catalog);
  PositiveQuery q_empty = Translate(empty, catalog);
  ASSERT_TRUE(q_empty.disjuncts.empty());

  DependencySet none;
  EXPECT_FALSE(std::move(ContainedUnder(q_two, q_empty, none, catalog)).value());
  DependencySet fd;
  fd.fds.push_back(FunctionalDependency{"E", {"x"}, "y"});
  EXPECT_TRUE(std::move(ContainedUnder(q_two, q_empty, fd, catalog)).value());
}

TEST(DependencyContainmentTest, InclusionDependencyEnablesContainment) {
  // Under E[x] ⊆ V, π_x(E) ⊆ V holds.
  Catalog catalog = GraphCatalog();
  ExprPtr sources = ra::Rename(ra::Project(ra::Rel("E"), {"x"}), "x", "v");
  ExprPtr verts = ra::Rel("V");
  PositiveQuery q_src = Translate(sources, catalog);
  PositiveQuery q_v = Translate(verts, catalog);
  DependencySet none;
  EXPECT_FALSE(std::move(ContainedUnder(q_src, q_v, none, catalog)).value());
  DependencySet ind;
  ind.inds.push_back(InclusionDependency{"E", {"x"}, "V"});
  EXPECT_TRUE(std::move(ContainedUnder(q_src, q_v, ind, catalog)).value());
}

TEST(DependencyContainmentTest, FdFilterOnRepresentativeInstances) {
  // Completeness of the FD filter: under ∅→v (V is a singleton),
  // V × V ⊆ "the diagonal". Without the filter the valuation putting two
  // distinct values into V would wrongly refute containment.
  Catalog catalog = GraphCatalog();
  ExprPtr v2 = ra::Product(ra::Rel("V"), ra::Rename(ra::Rel("V"), "v", "v2"));
  ExprPtr diag = ra::SelectEq(v2, "v", "v2");
  PositiveQuery q_all = Translate(v2, catalog);
  PositiveQuery q_diag = Translate(diag, catalog);
  DependencySet singleton;
  singleton.fds.push_back(FunctionalDependency{"V", {}, "v"});
  EXPECT_TRUE(
      std::move(ContainedUnder(q_all, q_diag, singleton, catalog)).value());
  DependencySet none;
  EXPECT_FALSE(
      std::move(ContainedUnder(q_all, q_diag, none, catalog)).value());
}

TEST(SimplifyTest, PrunesSubsumedAndFalseDisjuncts) {
  Catalog catalog = GraphCatalog();
  // Union of E(x,y) and the self-loop query σ_{x=y}(E): the loop disjunct
  // maps homomorphically into... no — the general disjunct maps into the
  // loop one (loops are edges), so the loop disjunct is subsumed.
  ExprPtr all = ra::Rel("E");
  ExprPtr loops = ra::SelectEq(ra::Rel("E"), "x", "y");
  PositiveQuery u = Translate(ra::Union(all, loops), catalog);
  ASSERT_EQ(u.disjuncts.size(), 2u);
  PositiveQuery pruned = SimplifyPositiveQuery(u);
  EXPECT_EQ(pruned.disjuncts.size(), 1u);

  // Identical disjuncts collapse to one.
  PositiveQuery dup = Translate(ra::Union(all, all), catalog);
  EXPECT_EQ(SimplifyPositiveQuery(dup).disjuncts.size(), 1u);

  // Pruning preserves semantics under containment both ways.
  DependencySet none;
  EXPECT_TRUE(std::move(EquivalentUnder(u, pruned, none, catalog)).value());

  // A ≠-guarded disjunct is NOT subsumed by the plain one (the plain
  // disjunct's homomorphism cannot satisfy strictness), nor vice versa.
  PositiveQuery mixed = Translate(
      ra::Union(loops, ra::SelectNeq(ra::Rel("E"), "x", "y")), catalog);
  EXPECT_EQ(SimplifyPositiveQuery(mixed).disjuncts.size(), 2u);
}

/// Ground-truth sweep: the decision agrees with brute-force evaluation over
/// all small databases satisfying the dependencies.
class ContainmentGroundTruthTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ContainmentGroundTruthTest, AgreesWithExhaustiveSmallModels) {
  Catalog catalog = GraphCatalog();
  SplitMix64 rng(GetParam());

  // Random small positive expressions over E with selections/projections.
  auto random_query = [&]() -> ExprPtr {
    ExprPtr e2 = ra::Rename(ra::Rename(ra::Rel("E"), "x", "x2"), "y", "y2");
    ExprPtr base = ra::SelectEq(ra::Product(ra::Rel("E"), e2), "y", "x2");
    switch (rng.UniformInt(4)) {
      case 0:
        return ra::Project(base, {"x"});
      case 1:
        return ra::Project(ra::SelectNeq(base, "x", "y2"), {"x"});
      case 2:
        return ra::Project(ra::Rel("E"), {"x"});
      default:
        return ra::Union(ra::Project(ra::SelectEq(ra::Rel("E"), "x", "y"),
                                     {"x"}),
                         ra::Project(base, {"x"}));
    }
  };
  ExprPtr e1 = random_query();
  ExprPtr e2 = random_query();
  PositiveQuery q1 = Translate(e1, catalog);
  PositiveQuery q2 = Translate(e2, catalog);
  DependencySet none;
  auto verdict = std::move(CheckContainment(q1, q2, none, catalog)).value();

  if (!verdict.contained) {
    // A "not contained" verdict must come with a genuine counterexample:
    // evaluating both expressions on it exhibits a violating tuple.
    ASSERT_TRUE(verdict.counterexample.has_value());
    ASSERT_TRUE(verdict.counterexample_tuple.has_value());
    Relation r1 = std::move(Evaluate(e1, *verdict.counterexample)).value();
    Relation r2 = std::move(Evaluate(e2, *verdict.counterexample)).value();
    EXPECT_TRUE(r1.Contains(*verdict.counterexample_tuple));
    EXPECT_FALSE(r2.Contains(*verdict.counterexample_tuple));
  } else {
    // A "contained" verdict must hold on every graph over 3 vertices.
    for (std::uint32_t mask = 0; mask < 512; ++mask) {
      Database db;
      Relation v(MakeScheme({{"v", kP}}));
      for (std::uint32_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(v.Insert(Tuple{P(i)}).ok());
      }
      Relation e(MakeScheme({{"x", kP}, {"y", kP}}));
      for (std::uint32_t bit = 0; bit < 9; ++bit) {
        if (mask & (1u << bit)) {
          ASSERT_TRUE(e.Insert(Tuple{P(bit / 3), P(bit % 3)}).ok());
        }
      }
      db.Put("V", std::move(v));
      db.Put("E", std::move(e));
      Relation r1 = std::move(Evaluate(e1, db)).value();
      Relation r2 = std::move(Evaluate(e2, db)).value();
      for (const Tuple& t : r1) {
        ASSERT_TRUE(r2.Contains(t)) << "mask " << mask;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentGroundTruthTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace setrec
