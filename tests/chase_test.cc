// Tests for the typed chase (Appendix A): the fd rule (variable merging,
// distinguished-first ordering, the ⊥ contradiction case), the ind rule
// (full inclusion dependencies add conjuncts over existing variables),
// termination, the Church–Rosser property, and Lemma A.2 (Σ-equivalence of
// the chased query), the last as a randomized property.

#include <gtest/gtest.h>

#include "conjunctive/chase.h"
#include "conjunctive/homomorphism.h"
#include "core/instance_generator.h"
#include "relational/relation.h"

namespace setrec {
namespace {

constexpr ClassId kP = 0;

ObjectId P(std::uint32_t i) { return ObjectId(kP, i); }

RelationScheme MakeScheme(std::vector<Attribute> attrs) {
  return std::move(RelationScheme::Make(std::move(attrs))).value();
}

Catalog GraphCatalog() {
  Catalog catalog;
  EXPECT_TRUE(
      catalog.AddRelation("E", MakeScheme({{"x", kP}, {"y", kP}})).ok());
  EXPECT_TRUE(catalog.AddRelation("V", MakeScheme({{"v", kP}})).ok());
  return catalog;
}

TEST(ChaseTest, FdRuleMergesVariables) {
  // q(y1, y2) :- E(x, y1), E(x, y2) under E: x→y collapses y1 = y2.
  ConjunctiveQuery q;
  VarId x = q.NewVar(kP), y1 = q.NewVar(kP), y2 = q.NewVar(kP);
  q.AddConjunct("E", {x, y1});
  q.AddConjunct("E", {x, y2});
  q.set_summary({y1, y2});
  DependencySet deps;
  deps.fds.push_back(FunctionalDependency{"E", {"x"}, "y"});
  ConjunctiveQuery chased =
      std::move(ChaseQuery(q, deps, GraphCatalog())).value();
  ASSERT_FALSE(chased.trivially_false());
  EXPECT_EQ(chased.num_vars(), 2u);
  EXPECT_EQ(chased.conjuncts().size(), 1u);
  EXPECT_EQ(chased.summary()[0], chased.summary()[1]);
}

TEST(ChaseTest, FdRuleDetectsContradiction) {
  // Same query plus y1 ≠ y2: the chase must report ⊥.
  ConjunctiveQuery q;
  VarId x = q.NewVar(kP), y1 = q.NewVar(kP), y2 = q.NewVar(kP);
  q.AddConjunct("E", {x, y1});
  q.AddConjunct("E", {x, y2});
  q.AddNonEquality(y1, y2);
  q.set_summary({x});
  DependencySet deps;
  deps.fds.push_back(FunctionalDependency{"E", {"x"}, "y"});
  ConjunctiveQuery chased =
      std::move(ChaseQuery(q, deps, GraphCatalog())).value();
  EXPECT_TRUE(chased.trivially_false());
}

TEST(ChaseTest, EmptyLhsFdMergesEverything) {
  // ∅ → v over V: all V-variables merge (the Theorem 5.6 singleton trick).
  ConjunctiveQuery q;
  VarId a = q.NewVar(kP), b = q.NewVar(kP), c = q.NewVar(kP);
  q.AddConjunct("V", {a});
  q.AddConjunct("V", {b});
  q.AddConjunct("V", {c});
  q.set_summary({a});
  DependencySet deps;
  deps.fds.push_back(FunctionalDependency{"V", {}, "v"});
  ConjunctiveQuery chased =
      std::move(ChaseQuery(q, deps, GraphCatalog())).value();
  EXPECT_EQ(chased.num_vars(), 1u);
  EXPECT_EQ(chased.conjuncts().size(), 1u);
}

TEST(ChaseTest, IndRuleAddsConjunctsAndTerminates) {
  // E[x] ⊆ V and E[y] ⊆ V: each E conjunct spawns V conjuncts, then the
  // process stops (full inds add no fresh variables).
  ConjunctiveQuery q;
  VarId x = q.NewVar(kP), y = q.NewVar(kP);
  q.AddConjunct("E", {x, y});
  q.set_summary({x, y});
  DependencySet deps;
  deps.inds.push_back(InclusionDependency{"E", {"x"}, "V"});
  deps.inds.push_back(InclusionDependency{"E", {"y"}, "V"});
  ConjunctiveQuery chased =
      std::move(ChaseQuery(q, deps, GraphCatalog())).value();
  EXPECT_EQ(chased.conjuncts().size(), 3u);
  EXPECT_EQ(chased.num_vars(), 2u);
  // Idempotent: chasing again changes nothing.
  ConjunctiveQuery again =
      std::move(ChaseQuery(chased, deps, GraphCatalog())).value();
  EXPECT_EQ(again.conjuncts().size(), 3u);
}

TEST(ChaseTest, DistinguishedVariablesSurviveMerges) {
  // The fd rule keeps the least variable under the "distinguished first"
  // ordering; the summary variable must survive.
  ConjunctiveQuery q;
  VarId x = q.NewVar(kP), y_exist = q.NewVar(kP), y_dist = q.NewVar(kP);
  q.AddConjunct("E", {x, y_exist});
  q.AddConjunct("E", {x, y_dist});
  q.set_summary({y_dist});  // the *later* variable is distinguished
  DependencySet deps;
  deps.fds.push_back(FunctionalDependency{"E", {"x"}, "y"});
  ConjunctiveQuery chased =
      std::move(ChaseQuery(q, deps, GraphCatalog())).value();
  ASSERT_EQ(chased.summary().size(), 1u);
  // The summary variable still appears in the conjunct.
  ASSERT_EQ(chased.conjuncts().size(), 1u);
  EXPECT_EQ(chased.conjuncts().begin()->vars[1], chased.summary()[0]);
}

TEST(ChaseTest, ChurchRosserOnConjunctOrder) {
  // Building the same query with conjuncts in different insertion orders
  // yields identical chase results (after compaction).
  DependencySet deps;
  deps.fds.push_back(FunctionalDependency{"E", {"x"}, "y"});
  deps.inds.push_back(InclusionDependency{"E", {"y"}, "V"});

  ConjunctiveQuery q1;
  {
    VarId a = q1.NewVar(kP), b = q1.NewVar(kP), c = q1.NewVar(kP);
    q1.AddConjunct("E", {a, b});
    q1.AddConjunct("E", {a, c});
    q1.set_summary({a});
  }
  ConjunctiveQuery q2;
  {
    VarId a = q2.NewVar(kP), b = q2.NewVar(kP), c = q2.NewVar(kP);
    q2.AddConjunct("E", {a, c});
    q2.AddConjunct("E", {a, b});
    q2.set_summary({a});
  }
  ConjunctiveQuery c1 = std::move(ChaseQuery(q1, deps, GraphCatalog())).value();
  ConjunctiveQuery c2 = std::move(ChaseQuery(q2, deps, GraphCatalog())).value();
  EXPECT_EQ(c1.ToString(), c2.ToString());
}

/// Lemma A.2 as a property: q and chase(q) agree on every database that
/// satisfies Σ.
class ChaseEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ChaseEquivalenceTest, ChasedQueryIsSigmaEquivalent) {
  SplitMix64 rng(GetParam());
  Catalog catalog = GraphCatalog();
  DependencySet deps;
  deps.fds.push_back(FunctionalDependency{"E", {"x"}, "y"});
  deps.inds.push_back(InclusionDependency{"E", {"x"}, "V"});
  deps.inds.push_back(InclusionDependency{"E", {"y"}, "V"});

  // Random query: a small pattern of E-atoms over 4 variables with an
  // optional non-equality.
  ConjunctiveQuery q;
  std::vector<VarId> vars;
  for (int i = 0; i < 4; ++i) vars.push_back(q.NewVar(kP));
  // Keep the query safe: every variable occurs in some conjunct.
  for (VarId v : vars) q.AddConjunct("V", {v});
  const std::size_t atoms = 2 + rng.UniformInt(3);
  for (std::size_t i = 0; i < atoms; ++i) {
    q.AddConjunct("E", {vars[rng.UniformInt(4)], vars[rng.UniformInt(4)]});
  }
  if (rng.UniformInt(2) == 0) {
    q.AddNonEquality(vars[rng.UniformInt(4)], vars[rng.UniformInt(4)]);
  }
  q.set_summary({vars[0]});

  ConjunctiveQuery chased = std::move(ChaseQuery(q, deps, catalog)).value();

  // Random Σ-satisfying database: a function graph (x→f(x)) over 4 values.
  Database db;
  Relation v(MakeScheme({{"v", kP}}));
  Relation e(MakeScheme({{"x", kP}, {"y", kP}}));
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(v.Insert(Tuple{P(i)}).ok());
    if (rng.UniformInt(3) != 0) {  // partial function keeps it interesting
      ASSERT_TRUE(
          e.Insert(Tuple{P(i), P(static_cast<std::uint32_t>(rng.UniformInt(4)))})
              .ok());
    }
  }
  db.Put("V", std::move(v));
  db.Put("E", std::move(e));
  ASSERT_TRUE(std::move(SatisfiesAll(db, deps)).value());

  RelationScheme scheme = MakeScheme({{"x", kP}});
  Relation before = std::move(EvaluateConjunctiveQuery(q, scheme, db)).value();
  Relation after =
      std::move(EvaluateConjunctiveQuery(chased, scheme, db)).value();
  EXPECT_EQ(before, after);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaseEquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace setrec
