// Tests for the durability subsystem (store/): the checksummed WAL, the
// snapshot/checkpoint files, the retry schedule, and DurableStore's
// crash-consistency contract. The acceptance core is the recovery matrix:
// a commit killed at EVERY exec probe point, torn at EVERY byte of its WAL
// record, or hit by a partial fsync / silent bit flip, must recover to
// exactly the pre-statement or post-statement instance — never a hybrid —
// with the torn-tail cases recovering the longest valid prefix.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_injection.h"
#include "core/instance.h"
#include "core/schema.h"
#include "core/status.h"
#include "relational/builder.h"
#include "sql/engine.h"
#include "sql/table.h"
#include "store/durable_store.h"
#include "store/retry.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "text/printer.h"

namespace setrec {
namespace {

// -- Filesystem helpers ------------------------------------------------------

/// A fresh, empty directory unique to the running test (and `tag`, for tests
/// that need several stores).
std::string MakeTempDir(const std::string& tag) {
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "setrec_store_test" /
      (std::string(info->test_suite_name()) + "." + info->name() + "." + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::string WalFile(const std::string& dir) {
  return (std::filesystem::path(dir) / "wal.log").string();
}

std::string CommitFlightFile(const std::string& dir) {
  return (std::filesystem::path(dir) / "flight-commit.jsonl").string();
}

std::string RecoveryFlightFile(const std::string& dir) {
  return (std::filesystem::path(dir) / "flight-recovery.jsonl").string();
}

/// Asserts that `path` names a parseable flight-recorder dump: it exists,
/// its first line is the flight header, every line is one JSON object, and
/// no raw control character leaked through the escaper.
void AssertFlightDump(const std::string& path) {
  ASSERT_FALSE(path.empty()) << "no flight dump was referenced";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "flight dump missing: " << path;
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty()) << path;
    EXPECT_EQ(line.front(), '{') << path << ": " << line;
    EXPECT_EQ(line.back(), '}') << path << ": " << line;
    for (const char c : line) {
      ASSERT_GE(static_cast<unsigned char>(c), 0x20u)
          << "raw control character in flight dump " << path;
    }
    if (lines == 0) {
      EXPECT_EQ(line.rfind("{\"type\":\"flight\",\"reason\":\"", 0), 0u)
          << path << " does not start with the flight header: " << line;
    }
    ++lines;
  }
  // Header plus at least one event (the store always records the commit or
  // recovery that triggered the dump).
  EXPECT_GE(lines, 2u) << path << " holds no events";
}

// -- CRC ---------------------------------------------------------------------

TEST(Crc32Test, MatchesKnownVectorsAndChains) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xcbf43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Chaining is equivalent to one pass over the concatenation.
  EXPECT_EQ(Crc32("6789", Crc32("12345")), Crc32("123456789"));
  // Any single-bit flip changes the checksum.
  std::string data = "the quick brown fox";
  const std::uint32_t clean = Crc32(data);
  data[5] ^= 0x10;
  EXPECT_NE(Crc32(data), clean);
}

// -- WAL reader/writer -------------------------------------------------------

const std::vector<std::string> kPayloads = {"alpha", "beta payload",
                                            "gamma gamma gamma"};

/// Writes kPayloads as records 1..3 and returns the pristine replay.
WalReplay WriteThreeRecords(const std::string& path) {
  WalWriter writer = std::move(WalWriter::Open(path, 0, 1)).value();
  for (const std::string& p : kPayloads) {
    EXPECT_TRUE(writer.Append(p).ok());
  }
  EXPECT_TRUE(writer.Sync().ok());
  writer.Close();
  return std::move(ReadWal(path)).value();
}

TEST(WalTest, RoundTripAndMissingFile) {
  const std::string dir = MakeTempDir("wal");
  const WalReplay replay = WriteThreeRecords(WalFile(dir));
  ASSERT_EQ(replay.records.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(replay.records[i].sequence, i + 1);
    EXPECT_EQ(replay.records[i].payload, kPayloads[i]);
  }
  EXPECT_FALSE(replay.torn_tail);
  EXPECT_EQ(replay.valid_bytes, replay.total_bytes);
  EXPECT_EQ(replay.dropped_bytes(), 0u);
  EXPECT_EQ(replay.record_ends.size(), 3u);
  EXPECT_EQ(replay.record_ends.back(), replay.total_bytes);

  // A missing file is an empty OK replay, not an error.
  Result<WalReplay> missing = ReadWal(WalFile(dir) + ".nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_TRUE(missing->records.empty());
  EXPECT_FALSE(missing->torn_tail);
}

TEST(WalTest, ZeroLengthAndMissingLogsAreCleanEmptyReplays) {
  const std::string dir = MakeTempDir("wal");
  // Missing-but-expected: a store that never committed has no log at all.
  WalReplay missing = std::move(ReadWal(WalFile(dir))).value();
  EXPECT_FALSE(missing.file_present);
  EXPECT_TRUE(missing.records.empty());
  EXPECT_FALSE(missing.torn_tail);
  EXPECT_EQ(missing.total_bytes, 0u);
  EXPECT_EQ(missing.valid_bytes, 0u);

  // Zero-length: exactly what a crash between file creation and the first
  // append leaves behind. Clean, not a torn tail.
  WriteFileBytes(WalFile(dir), "");
  WalReplay empty = std::move(ReadWal(WalFile(dir))).value();
  EXPECT_TRUE(empty.file_present);
  EXPECT_TRUE(empty.records.empty());
  EXPECT_FALSE(empty.torn_tail);
  EXPECT_TRUE(empty.tail_reason.empty());
  EXPECT_EQ(empty.total_bytes, 0u);
  EXPECT_EQ(empty.dropped_bytes(), 0u);
}

TEST(WalTest, TruncationAtEveryByteRecoversTheLongestValidPrefix) {
  const std::string dir = MakeTempDir("wal");
  const WalReplay pristine = WriteThreeRecords(WalFile(dir));
  const std::string bytes = ReadFileBytes(WalFile(dir));
  ASSERT_EQ(bytes.size(), pristine.total_bytes);

  const std::string torn_path = WalFile(dir) + ".torn";
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    WriteFileBytes(torn_path, bytes.substr(0, len));
    Result<WalReplay> r = ReadWal(torn_path);
    ASSERT_TRUE(r.ok()) << "len " << len;
    // Expected: every record that ends at or before the cut survives.
    std::size_t expect = 0;
    while (expect < pristine.record_ends.size() &&
           pristine.record_ends[expect] <= len) {
      ++expect;
    }
    const std::uint64_t expect_valid =
        expect == 0 ? 0 : pristine.record_ends[expect - 1];
    EXPECT_EQ(r->records.size(), expect) << "len " << len;
    EXPECT_EQ(r->valid_bytes, expect_valid) << "len " << len;
    EXPECT_EQ(r->torn_tail, len != expect_valid) << "len " << len;
    EXPECT_EQ(r->dropped_bytes(), len - expect_valid) << "len " << len;
    if (r->torn_tail) {
      EXPECT_TRUE(r->tail_reason == "short header" ||
                  r->tail_reason == "short record")
          << "len " << len << ": " << r->tail_reason;
    }
  }
}

TEST(WalTest, BitFlipAnywhereDropsTheRecordAndItsSuffix) {
  const std::string dir = MakeTempDir("wal");
  const WalReplay pristine = WriteThreeRecords(WalFile(dir));
  const std::string bytes = ReadFileBytes(WalFile(dir));

  const std::string flipped_path = WalFile(dir) + ".flipped";
  for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupted = bytes;
    corrupted[pos] ^= 0x01;
    WriteFileBytes(flipped_path, corrupted);
    Result<WalReplay> r = ReadWal(flipped_path);
    ASSERT_TRUE(r.ok()) << "pos " << pos;
    // The record containing the flipped byte — and everything after it — is
    // dropped; everything before it survives untouched.
    std::size_t victim = 0;
    while (pristine.record_ends[victim] <= pos) ++victim;
    EXPECT_EQ(r->records.size(), victim) << "pos " << pos;
    EXPECT_TRUE(r->torn_tail) << "pos " << pos;
    for (std::size_t i = 0; i < r->records.size(); ++i) {
      EXPECT_EQ(r->records[i].payload, kPayloads[i]) << "pos " << pos;
    }
  }
}

TEST(WalTest, SequenceBreakTerminatesReplay) {
  const std::string dir = MakeTempDir("wal");
  const std::string path = WalFile(dir);
  {
    WalWriter w = std::move(WalWriter::Open(path, 0, 1)).value();
    ASSERT_TRUE(w.Append("one").ok());
    ASSERT_TRUE(w.Sync().ok());
  }
  {
    // A second writer stamped with a gap: record sequences 1 then 7.
    const std::uint64_t end =
        std::filesystem::file_size(std::filesystem::path(path));
    WalWriter w = std::move(WalWriter::Open(path, end, 7)).value();
    ASSERT_TRUE(w.Append("seven").ok());
    ASSERT_TRUE(w.Sync().ok());
  }
  const WalReplay r = std::move(ReadWal(path)).value();
  ASSERT_EQ(r.records.size(), 1u);
  EXPECT_EQ(r.records[0].payload, "one");
  EXPECT_TRUE(r.torn_tail);
  EXPECT_EQ(r.tail_reason, "sequence break");
  EXPECT_GT(r.dropped_bytes(), 0u);
}

TEST(WalTest, ReopenTruncatesTheTornTailBeforeAppending) {
  const std::string dir = MakeTempDir("wal");
  const std::string path = WalFile(dir);
  const WalReplay pristine = WriteThreeRecords(path);
  // Tear the file mid-record-3.
  const std::string bytes = ReadFileBytes(path);
  WriteFileBytes(path, bytes.substr(0, pristine.record_ends[1] + 5));

  const WalReplay torn = std::move(ReadWal(path)).value();
  ASSERT_EQ(torn.records.size(), 2u);
  ASSERT_TRUE(torn.torn_tail);

  // Reopening at the valid prefix drops the tail; the next append continues
  // the sequence cleanly.
  WalWriter w = std::move(WalWriter::Open(path, torn.valid_bytes,
                                          torn.records.back().sequence + 1))
                    .value();
  Result<std::uint64_t> seq = w.Append("delta");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 3u);
  ASSERT_TRUE(w.Sync().ok());
  w.Close();

  const WalReplay healed = std::move(ReadWal(path)).value();
  ASSERT_EQ(healed.records.size(), 3u);
  EXPECT_FALSE(healed.torn_tail);
  EXPECT_EQ(healed.records[2].payload, "delta");
}

// -- WAL writer under injected storage faults --------------------------------

TEST(WalWriterFaultTest, TornWritePersistsThePrefixAndBreaksTheWriter) {
  const std::string dir = MakeTempDir("wal");
  const std::string path = WalFile(dir);
  FaultInjector inj = FaultInjector::TornWriteAt(1, 7);
  WalWriter w = std::move(WalWriter::Open(path, 0, 1, &inj)).value();
  Result<std::uint64_t> r = w.Append("doomed payload");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_TRUE(w.broken());
  EXPECT_EQ(inj.storage_ops_seen(), 1u);
  EXPECT_EQ(inj.storage_faults_fired(), 1u);
  // The writer is poisoned: every further operation refuses.
  EXPECT_EQ(w.Append("more").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(w.Sync().code(), StatusCode::kFailedPrecondition);
  w.Close();
  // Exactly the torn prefix reached the medium; replay drops it as a tail.
  EXPECT_EQ(ReadFileBytes(path).size(), 7u);
  const WalReplay replay = std::move(ReadWal(path)).value();
  EXPECT_TRUE(replay.records.empty());
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.tail_reason, "short header");
}

TEST(WalWriterFaultTest, PartialFsyncDropsTheUnsyncedTail) {
  const std::string dir = MakeTempDir("wal");
  const std::string path = WalFile(dir);
  // Ops: append(1)=1, sync=2, append(2)=3, sync=4 <- fires.
  FaultInjector inj = FaultInjector::PartialFsyncAt(4);
  WalWriter w = std::move(WalWriter::Open(path, 0, 1, &inj)).value();
  ASSERT_TRUE(w.Append("first").ok());
  ASSERT_TRUE(w.Sync().ok());
  ASSERT_TRUE(w.Append("second").ok());
  Status s = w.Sync();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(w.broken());
  w.Close();
  // Record 1 was synced and survives; record 2 never reached the medium.
  const WalReplay replay = std::move(ReadWal(path)).value();
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].payload, "first");
  EXPECT_FALSE(replay.torn_tail);  // truncation fell exactly on a boundary
}

TEST(WalWriterFaultTest, BitFlipSucceedsSilentlyAndOnlyTheReaderDetects) {
  const std::string dir = MakeTempDir("wal");
  const std::string path = WalFile(dir);
  FaultInjector inj = FaultInjector::BitFlipAt(1, 20, 0x04);
  WalWriter w = std::move(WalWriter::Open(path, 0, 1, &inj)).value();
  // The write path reports success — the corruption is silent.
  ASSERT_TRUE(w.Append("payload under the flip").ok());
  ASSERT_TRUE(w.Sync().ok());
  EXPECT_FALSE(w.broken());
  w.Close();
  const WalReplay replay = std::move(ReadWal(path)).value();
  EXPECT_TRUE(replay.records.empty());
  EXPECT_TRUE(replay.torn_tail);
  EXPECT_EQ(replay.tail_reason, "bad crc");
}

// -- Snapshots ---------------------------------------------------------------

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = schema_.AddClass("A").value();
    b_ = schema_.AddClass("B").value();
    f_ = schema_.AddProperty("f", a_, b_).value();
  }

  Instance MakeInstance() const {
    Instance inst(&schema_);
    EXPECT_TRUE(inst.AddObject(ObjectId(a_, 1)).ok());
    EXPECT_TRUE(inst.AddObject(ObjectId(a_, 2)).ok());
    EXPECT_TRUE(inst.AddObject(ObjectId(b_, 5)).ok());
    EXPECT_TRUE(inst.AddEdge(ObjectId(a_, 1), f_, ObjectId(b_, 5)).ok());
    return inst;
  }

  Schema schema_;
  ClassId a_ = 0, b_ = 0;
  PropertyId f_ = 0;
};

TEST_F(SnapshotTest, RoundTripPreservesInstanceAndSequence) {
  const std::string dir = MakeTempDir("snap");
  const std::string path = (std::filesystem::path(dir) / "s.snap").string();
  const Instance inst = MakeInstance();
  ASSERT_TRUE(WriteSnapshot(path, inst, 7).ok());
  Result<SnapshotData> r = ReadSnapshot(path, &schema_);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->sequence, 7u);
  EXPECT_TRUE(r->instance == inst);
}

TEST_F(SnapshotTest, MissingIsNotFoundAndEveryDefectIsCorruptedLog) {
  const std::string dir = MakeTempDir("snap");
  const std::string path = (std::filesystem::path(dir) / "s.snap").string();
  EXPECT_EQ(ReadSnapshot(path, &schema_).status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(WriteSnapshot(path, MakeInstance(), 7).ok());
  const std::string bytes = ReadFileBytes(path);

  // Bit rot anywhere in the body.
  std::string flipped = bytes;
  flipped[bytes.size() - 3] ^= 0x01;
  WriteFileBytes(path, flipped);
  EXPECT_EQ(ReadSnapshot(path, &schema_).status().code(),
            StatusCode::kCorruptedLog);

  // A torn (truncated) snapshot.
  WriteFileBytes(path, bytes.substr(0, bytes.size() / 2));
  EXPECT_EQ(ReadSnapshot(path, &schema_).status().code(),
            StatusCode::kCorruptedLog);

  // A foreign file.
  WriteFileBytes(path, "not a snapshot at all\n");
  EXPECT_EQ(ReadSnapshot(path, &schema_).status().code(),
            StatusCode::kCorruptedLog);

  // The intact bytes still read back fine.
  WriteFileBytes(path, bytes);
  EXPECT_TRUE(ReadSnapshot(path, &schema_).ok());
}

// -- Retry schedule ----------------------------------------------------------

TEST(RetryScheduleTest, OnlyRetryableCodesAreRetried) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  for (const Status& s :
       {Status::Internal("x"), Status::InvalidArgument("x"),
        Status::Cancelled("x"), Status::CorruptedLog("x"),
        Status::FailedPrecondition("x")}) {
    RetrySchedule schedule(policy);
    EXPECT_FALSE(schedule.ShouldRetry(s)) << s.ToString();
  }
  for (const Status& s :
       {Status::ResourceExhausted("x"), Status::DeadlineExceeded("x")}) {
    RetrySchedule schedule(policy);
    EXPECT_TRUE(schedule.ShouldRetry(s)) << s.ToString();
  }
}

TEST(RetryScheduleTest, ConsumesAttemptsAndStops) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetrySchedule schedule(policy);
  const Status transient = Status::ResourceExhausted("budget");
  EXPECT_TRUE(schedule.ShouldRetry(transient));   // attempt 2 granted
  EXPECT_TRUE(schedule.ShouldRetry(transient));   // attempt 3 granted
  EXPECT_FALSE(schedule.ShouldRetry(transient));  // out of attempts
  EXPECT_EQ(schedule.attempts_used(), 3u);

  RetryPolicy once;
  once.max_attempts = 1;
  RetrySchedule none(once);
  EXPECT_FALSE(none.ShouldRetry(transient));
}

TEST(RetryScheduleTest, DelaysAreDeterministicBoundedAndJittered) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_delay = std::chrono::milliseconds(1);
  policy.max_delay = std::chrono::milliseconds(8);
  policy.multiplier = 2.0;
  policy.jitter_seed = 42;

  auto delays = [&policy] {
    RetrySchedule schedule(policy);
    std::vector<std::chrono::nanoseconds> out;
    for (int i = 0; i < 9; ++i) out.push_back(schedule.NextDelay());
    return out;
  };
  const auto a = delays();
  EXPECT_EQ(a, delays());  // bit-identical for a fixed seed

  // Attempt k's uncapped base is 1ms * 2^(k-1), capped at 8ms; jitter keeps
  // the delay within [base/2, base).
  std::int64_t base_ns = 1'000'000;
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_GE(a[k].count(), base_ns / 2) << "attempt " << k;
    EXPECT_LT(a[k].count(), base_ns) << "attempt " << k;
    base_ns = std::min<std::int64_t>(base_ns * 2, 8'000'000);
  }

  RetryPolicy other = policy;
  other.jitter_seed = 43;
  RetrySchedule different(other);
  std::vector<std::chrono::nanoseconds> b;
  for (int i = 0; i < 9; ++i) b.push_back(different.NextDelay());
  EXPECT_NE(a, b);  // the seed actually feeds the jitter
}

TEST(RetryScheduleTest, DisablingJitterYieldsTheExactExponentialLadder) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.base_delay = std::chrono::milliseconds(1);
  policy.max_delay = std::chrono::milliseconds(8);
  policy.multiplier = 2.0;
  policy.jitter = false;
  policy.jitter_seed = 42;

  auto delays = [](const RetryPolicy& p) {
    RetrySchedule schedule(p);
    std::vector<std::chrono::nanoseconds> out;
    for (int i = 0; i < 6; ++i) out.push_back(schedule.NextDelay());
    return out;
  };
  // The exact capped exponential — no spread: 1, 2, 4, then pinned at 8.
  const std::vector<std::chrono::nanoseconds> expected = {
      std::chrono::milliseconds(1), std::chrono::milliseconds(2),
      std::chrono::milliseconds(4), std::chrono::milliseconds(8),
      std::chrono::milliseconds(8), std::chrono::milliseconds(8)};
  const auto a = delays(policy);
  EXPECT_EQ(a, expected);

  // With jitter off the seed is inert: schedules are seed-independent.
  RetryPolicy other = policy;
  other.jitter_seed = 43;
  EXPECT_EQ(delays(other), a);
}

TEST(RetryScheduleTest, ConcurrentConsumersShareOneDeterministicStream) {
  // The net client hands one schedule to many sessions that retry
  // independently: grants and jitter draws must interleave without races,
  // and for a fixed seed the *set* of delays handed out must be exactly the
  // single-threaded sequence — threads race for position in the stream, but
  // the stream itself is deterministic and nothing is lost or duplicated.
  RetryPolicy policy;
  policy.max_attempts = 49;  // 48 grants split across the workers
  policy.base_delay = std::chrono::milliseconds(1);
  policy.max_delay = std::chrono::milliseconds(8);
  policy.multiplier = 2.0;
  policy.jitter_seed = 1234;

  std::vector<std::chrono::nanoseconds> expected;
  {
    RetrySchedule reference(policy);
    const Status transient = Status::ResourceExhausted("budget");
    while (reference.ShouldRetry(transient)) {
      expected.push_back(reference.NextDelay());
    }
  }
  ASSERT_EQ(expected.size(), 48u);

  constexpr std::size_t kWorkers = 8;
  RetrySchedule shared(policy);
  std::vector<std::vector<std::chrono::nanoseconds>> drained(kWorkers);
  std::vector<std::thread> workers;
  for (std::size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&shared, &drained, w] {
      const Status transient = Status::ResourceExhausted("budget");
      while (shared.ShouldRetry(transient)) {
        drained[w].push_back(shared.NextDelay());
      }
    });
  }
  for (std::thread& w : workers) w.join();

  std::vector<std::chrono::nanoseconds> merged;
  for (const auto& d : drained) {
    merged.insert(merged.end(), d.begin(), d.end());
  }
  EXPECT_EQ(merged.size(), expected.size());
  std::sort(merged.begin(), merged.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(merged, expected);
  EXPECT_EQ(shared.attempts_used(), policy.max_attempts);
}

TEST(RetryScheduleTest, NormalizeRetryPolicyClampsPathologicalConfigs) {
  RetryPolicy bad;
  bad.max_attempts = 0;
  bad.base_delay = std::chrono::milliseconds(-5);
  bad.max_delay = std::chrono::milliseconds(-7);
  bad.multiplier = 0.25;
  const RetryPolicy fixed = NormalizeRetryPolicy(bad);
  EXPECT_EQ(fixed.max_attempts, 1u);  // the initial attempt always runs
  EXPECT_EQ(fixed.base_delay.count(), 0);
  EXPECT_EQ(fixed.max_delay.count(), 0);
  EXPECT_EQ(fixed.multiplier, 1.0);  // backoff never shrinks

  // A cap below the base is raised to the base, never the other way: the
  // configured floor wins over the miswritten ceiling.
  RetryPolicy inverted;
  inverted.base_delay = std::chrono::milliseconds(4);
  inverted.max_delay = std::chrono::milliseconds(1);
  const RetryPolicy raised = NormalizeRetryPolicy(inverted);
  EXPECT_EQ(raised.base_delay, std::chrono::milliseconds(4));
  EXPECT_EQ(raised.max_delay, std::chrono::milliseconds(4));

  // NaN multipliers degrade to a constant schedule instead of poisoning
  // every comparison downstream.
  RetryPolicy nan_mult;
  nan_mult.multiplier = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(NormalizeRetryPolicy(nan_mult).multiplier, 1.0);

  // RetrySchedule normalizes on construction: a zero-attempt policy still
  // accounts for the initial attempt and grants nothing.
  RetrySchedule none(bad);
  EXPECT_FALSE(none.ShouldRetry(Status::ResourceExhausted("x")));
  EXPECT_EQ(none.attempts_used(), 1u);

  // ... and a shrinking multiplier under an inverted cap flattens into a
  // constant 4ms ladder instead of decaying toward zero.
  RetryPolicy shrink = inverted;
  shrink.max_attempts = 4;
  shrink.multiplier = 0.5;
  shrink.jitter = false;
  RetrySchedule flat(shrink);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(flat.NextDelay(), std::chrono::milliseconds(4)) << i;
  }
}

// -- DurableStore: the simple A/B/f workload ---------------------------------

class DurableStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = schema_.AddClass("A").value();
    b_ = schema_.AddClass("B").value();
    f_ = schema_.AddProperty("f", a_, b_).value();
    // Expected states: states_[k] is the instance after step k; states_[0]
    // is empty. Every step has a non-empty delta.
    Instance state(&schema_);
    states_.push_back(state);
    for (std::uint32_t k = 1; k <= kSteps; ++k) {
      ASSERT_TRUE(ApplyStep(state, k).ok());
      states_.push_back(state);
    }
  }

  /// One deterministic commit's worth of mutation: adds an A/B pair and an
  /// edge, retires the previous A object (cascading its edge).
  Status ApplyStep(Instance& inst, std::uint32_t k) const {
    SETREC_RETURN_IF_ERROR(inst.AddObject(ObjectId(a_, k)));
    SETREC_RETURN_IF_ERROR(inst.AddObject(ObjectId(b_, k % 3)));
    SETREC_RETURN_IF_ERROR(
        inst.AddEdge(ObjectId(a_, k), f_, ObjectId(b_, k % 3)));
    if (k > 1) {
      SETREC_RETURN_IF_ERROR(inst.RemoveObject(ObjectId(a_, k - 1)));
    }
    return Status::OK();
  }

  /// Commits step k through the store's Mutate statement.
  Status CommitStep(DurableStore& store, std::uint32_t k) const {
    return store.Mutate([this, k](Instance& inst, ExecContext&) {
      return ApplyStep(inst, k);
    });
  }

  /// Runs steps 1..upto against a freshly opened store in `dir`.
  std::unique_ptr<DurableStore> OpenAndRun(const std::string& dir,
                                           std::uint32_t upto,
                                           DurableStoreOptions options = {}) {
    auto store =
        std::move(DurableStore::Open(dir, &schema_, options)).value();
    for (std::uint32_t k = 1; k <= upto; ++k) {
      EXPECT_TRUE(CommitStep(*store, k).ok()) << "step " << k;
    }
    return store;
  }

  /// Reopens `dir` with no injector and returns the recovered state.
  Instance Recover(const std::string& dir, RecoveryReport* report = nullptr) {
    auto store =
        std::move(DurableStore::Open(dir, &schema_, {}, report)).value();
    return store->SnapshotState();
  }

  static constexpr std::uint32_t kSteps = 5;

  Schema schema_;
  ClassId a_ = 0, b_ = 0;
  PropertyId f_ = 0;
  std::vector<Instance> states_;
};

TEST_F(DurableStoreTest, CommitsReplayExactlyOnRecovery) {
  const std::string dir = MakeTempDir("store");
  {
    auto store = OpenAndRun(dir, kSteps);
    EXPECT_TRUE(store->instance() == states_[kSteps]);
    EXPECT_EQ(store->last_sequence(), kSteps);
    EXPECT_FALSE(store->broken());
  }
  RecoveryReport report;
  const Instance recovered = Recover(dir, &report);
  EXPECT_TRUE(recovered == states_[kSteps]);
  EXPECT_FALSE(report.snapshot_loaded);
  EXPECT_EQ(report.replayed_records, kSteps);
  EXPECT_EQ(report.last_sequence, kSteps);
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ(report.dropped_bytes, 0u);
}

TEST_F(DurableStoreTest, NoOpAndFailedStatementsLeaveNoRecord) {
  const std::string dir = MakeTempDir("store");
  auto store = OpenAndRun(dir, 2);
  const std::uint64_t seq = store->last_sequence();

  // A statement that changes nothing is acknowledged without a record.
  EXPECT_TRUE(
      store->Mutate([](Instance&, ExecContext&) { return Status::OK(); })
          .ok());
  EXPECT_EQ(store->last_sequence(), seq);

  // A failing statement neither logs nor mutates.
  Status s = store->Mutate([this](Instance& inst, ExecContext&) {
    (void)inst.AddObject(ObjectId(a_, 99));
    return Status::Internal("deliberate");
  });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(store->last_sequence(), seq);
  EXPECT_TRUE(store->instance() == states_[2]);
  store.reset();
  EXPECT_TRUE(Recover(dir) == states_[2]);
}

TEST_F(DurableStoreTest, AutoCheckpointTruncatesTheWalAndPrunesSnapshots) {
  const std::string dir = MakeTempDir("store");
  DurableStoreOptions options;
  options.snapshot_every_n_commits = 2;
  options.keep_snapshots = 2;
  { auto store = OpenAndRun(dir, kSteps, options); }

  // Checkpoints fired after commits 2 and 4; the WAL holds only record 5.
  const WalReplay replay = std::move(ReadWal(WalFile(dir))).value();
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0].sequence, kSteps);

  std::size_t snapshot_files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    snapshot_files +=
        entry.path().extension() == ".snap" ? std::size_t{1} : 0;
  }
  EXPECT_EQ(snapshot_files, 2u);  // keep_snapshots honored

  RecoveryReport report;
  EXPECT_TRUE(Recover(dir, &report) == states_[kSteps]);
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(report.snapshot_sequence, 4u);
  EXPECT_EQ(report.replayed_records, 1u);
  EXPECT_EQ(report.last_sequence, kSteps);
}

TEST_F(DurableStoreTest, RecoveryFallsBackAcrossCorruptAndMissingSnapshots) {
  const std::string dir = MakeTempDir("store");
  DurableStoreOptions options;
  // Keep the full log so older snapshots (and even no snapshot) can still
  // bridge to the present.
  options.truncate_wal_on_checkpoint = false;
  options.snapshot_every_n_commits = 2;
  options.keep_snapshots = 99;
  { auto store = OpenAndRun(dir, kSteps, options); }

  std::vector<std::string> snapshots;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".snap") {
      snapshots.push_back(entry.path().string());
    }
  }
  ASSERT_EQ(snapshots.size(), 2u);  // after commits 2 and 4

  // Corrupt the newest snapshot: recovery skips it, uses the older one, and
  // still lands on the final state via the longer replay.
  std::sort(snapshots.begin(), snapshots.end());
  const std::string newest = snapshots.back();
  std::string bytes = ReadFileBytes(newest);
  bytes[bytes.size() / 2] ^= 0x01;
  WriteFileBytes(newest, bytes);

  RecoveryReport report;
  EXPECT_TRUE(Recover(dir, &report) == states_[kSteps]);
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(report.snapshots_skipped, 1u);
  EXPECT_EQ(report.snapshot_sequence, 2u);
  EXPECT_EQ(report.replayed_records, kSteps - 2);

  // Destroy every snapshot: recovery degrades to empty + full replay.
  for (const std::string& path : snapshots) {
    std::filesystem::remove(path);
  }
  RecoveryReport bare;
  EXPECT_TRUE(Recover(dir, &bare) == states_[kSteps]);
  EXPECT_FALSE(bare.snapshot_loaded);
  EXPECT_EQ(bare.replayed_records, kSteps);
}

TEST_F(DurableStoreTest, ExplicitCheckpointSurvivesRecovery) {
  const std::string dir = MakeTempDir("store");
  {
    auto store = OpenAndRun(dir, 3);
    ASSERT_TRUE(store->Checkpoint().ok());
    ASSERT_TRUE(CommitStep(*store, 4).ok());
  }
  RecoveryReport report;
  EXPECT_TRUE(Recover(dir, &report) == states_[4]);
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(report.snapshot_sequence, 3u);
  EXPECT_EQ(report.replayed_records, 1u);
}

// -- The recovery matrix (acceptance) ----------------------------------------

/// Truncating the WAL at EVERY byte yields exactly states_[r], where r is
/// the number of whole records below the cut — commit boundaries and only
/// commit boundaries are the recoverable states (never a hybrid).
TEST_F(DurableStoreTest, RecoveryMatrixTornTailAtEveryByte) {
  const std::string dir = MakeTempDir("full");
  { auto store = OpenAndRun(dir, kSteps); }
  const WalReplay pristine = std::move(ReadWal(WalFile(dir))).value();
  ASSERT_EQ(pristine.records.size(), kSteps);
  const std::string bytes = ReadFileBytes(WalFile(dir));

  const std::string torn_dir = MakeTempDir("torn");
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    std::filesystem::remove_all(torn_dir);
    std::filesystem::create_directories(torn_dir);
    WriteFileBytes(WalFile(torn_dir), bytes.substr(0, len));

    std::size_t r = 0;
    while (r < pristine.record_ends.size() &&
           pristine.record_ends[r] <= len) {
      ++r;
    }
    RecoveryReport report;
    const Instance recovered = Recover(torn_dir, &report);
    EXPECT_TRUE(recovered == states_[r])
        << "cut at byte " << len << " recovered a state that is neither the "
        << "pre- nor the post-commit instance of record " << r + 1;
    EXPECT_EQ(report.replayed_records, r) << "cut at byte " << len;
    const std::uint64_t valid = r == 0 ? 0 : pristine.record_ends[r - 1];
    EXPECT_EQ(report.torn_tail, len != valid) << "cut at byte " << len;
    EXPECT_EQ(report.dropped_bytes, len - valid) << "cut at byte " << len;
    // Every torn recovery leaves a flight dump behind and points at it.
    if (report.torn_tail) {
      EXPECT_EQ(report.flight_dump_path, RecoveryFlightFile(torn_dir))
          << "cut at byte " << len;
      // The full parse check once per record suffices; the path/existence
      // check above runs at every byte.
      if (r < pristine.record_ends.size() &&
          len + 1 == pristine.record_ends[r]) {
        AssertFlightDump(report.flight_dump_path);
      }
    } else {
      EXPECT_TRUE(report.flight_dump_path.empty()) << "cut at byte " << len;
    }
  }
}

/// Kills the final commit by tearing its WAL record at EVERY byte offset.
/// The in-memory state must roll back to the pre-statement instance, the
/// store must refuse further commits, and recovery must return exactly the
/// pre-statement state.
TEST_F(DurableStoreTest, RecoveryMatrixTornWriteAtEveryOffsetOfTheCommit) {
  // The record the final commit writes: 16-byte header + the delta text.
  const std::string payload =
      DeltaToText(DiffInstances(states_[kSteps - 1], states_[kSteps]),
                  schema_);
  const std::size_t record_size = 16 + payload.size();
  // Storage ops consumed by the first kSteps-1 commits: append + sync each.
  const std::uint64_t ops_before = 2 * (kSteps - 1);

  for (std::size_t offset = 0; offset <= record_size; ++offset) {
    const std::string dir = MakeTempDir("o" + std::to_string(offset));
    FaultInjector inj = FaultInjector::TornWriteAt(ops_before + 1, offset);
    DurableStoreOptions options;
    options.injector = &inj;
    auto store = OpenAndRun(dir, kSteps - 1, options);
    ASSERT_TRUE(store->instance() == states_[kSteps - 1]);

    Status s = CommitStep(*store, kSteps);
    ASSERT_FALSE(s.ok()) << "offset " << offset;
    // The engine restored the pre-statement snapshot; the store is poisoned.
    EXPECT_TRUE(store->instance() == states_[kSteps - 1])
        << "offset " << offset;
    EXPECT_TRUE(store->broken()) << "offset " << offset;
    EXPECT_EQ(CommitStep(*store, kSteps).code(),
              StatusCode::kFailedPrecondition)
        << "offset " << offset;
    store.reset();

    // The terminal storage fault dumped the flight recorder next to the
    // WAL before the error surfaced.
    AssertFlightDump(CommitFlightFile(dir));

    RecoveryReport report;
    const Instance recovered = Recover(dir, &report);
    if (offset == record_size) {
      // The "crash after the write, before the ack" corner: the record is
      // fully durable, so recovery surfaces the unacknowledged commit —
      // still exactly a statement boundary, never a hybrid.
      EXPECT_TRUE(recovered == states_[kSteps]) << "offset " << offset;
      EXPECT_EQ(report.replayed_records, kSteps);
      EXPECT_FALSE(report.torn_tail);
      // A clean recovery after a commit-time fault points at the dump that
      // commit left behind.
      EXPECT_EQ(report.flight_dump_path, CommitFlightFile(dir));
    } else {
      EXPECT_TRUE(recovered == states_[kSteps - 1])
          << "offset " << offset << ": recovery returned a torn hybrid";
      EXPECT_EQ(report.replayed_records, kSteps - 1) << "offset " << offset;
      // A zero-byte tear leaves the file exactly at the previous boundary.
      EXPECT_EQ(report.torn_tail, offset != 0) << "offset " << offset;
      EXPECT_EQ(report.dropped_bytes, offset) << "offset " << offset;
      EXPECT_EQ(report.flight_dump_path, offset != 0
                                             ? RecoveryFlightFile(dir)
                                             : CommitFlightFile(dir))
          << "offset " << offset;
    }
  }
}

TEST_F(DurableStoreTest, RecoveryMatrixPartialFsyncVetoesTheCommit) {
  const std::string dir = MakeTempDir("store");
  // The final commit's sync is storage op 2*(kSteps-1) + 2.
  FaultInjector inj = FaultInjector::PartialFsyncAt(2 * (kSteps - 1) + 2);
  DurableStoreOptions options;
  options.injector = &inj;
  auto store = OpenAndRun(dir, kSteps - 1, options);

  Status s = CommitStep(*store, kSteps);
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(store->instance() == states_[kSteps - 1]);
  EXPECT_TRUE(store->broken());
  store.reset();
  AssertFlightDump(CommitFlightFile(dir));

  RecoveryReport report;
  EXPECT_TRUE(Recover(dir, &report) == states_[kSteps - 1]);
  EXPECT_EQ(report.replayed_records, kSteps - 1);
  EXPECT_FALSE(report.torn_tail);  // the dropped tail was a whole record
  EXPECT_EQ(report.flight_dump_path, CommitFlightFile(dir));
}

/// A bit flip is the one storage fault the writer cannot see: the commit IS
/// acknowledged, and only recovery discovers (via the CRC) that the medium
/// lied. The recovered state is the pre-statement instance and the report
/// says bytes were dropped — the audit trail for the lost ack.
TEST_F(DurableStoreTest, RecoveryMatrixBitFlipLosesTheAckedCommitDetectably) {
  const std::string dir = MakeTempDir("store");
  FaultInjector inj =
      FaultInjector::BitFlipAt(2 * (kSteps - 1) + 1, /*byte_offset=*/20);
  DurableStoreOptions options;
  options.injector = &inj;
  auto store = OpenAndRun(dir, kSteps - 1, options);

  // The final commit succeeds from the writer's point of view.
  ASSERT_TRUE(CommitStep(*store, kSteps).ok());
  EXPECT_TRUE(store->instance() == states_[kSteps]);
  EXPECT_FALSE(store->broken());
  store.reset();

  RecoveryReport report;
  EXPECT_TRUE(Recover(dir, &report) == states_[kSteps - 1]);
  EXPECT_EQ(report.replayed_records, kSteps - 1);
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.detail, "bad crc");
  EXPECT_GT(report.dropped_bytes, 0u);
  // The writer never saw the fault, so there is no commit dump — the
  // recovery anomaly wrote its own and the report references it.
  EXPECT_EQ(report.flight_dump_path, RecoveryFlightFile(dir));
  AssertFlightDump(report.flight_dump_path);
}

/// Recovery during recovery: Open itself killed at EVERY cooperative probe
/// the replay traverses — one per replayed record plus the positioning probe
/// just before the writer touches the directory. A crashed recovery must
/// leave the log byte-identical, so a second, clean recovery reaches the
/// same committed prefix as if the first had never run.
TEST_F(DurableStoreTest, RecoveryMatrixCrashDuringReplayRecoversTheSamePrefix) {
  const std::string dir = MakeTempDir("store");
  { auto store = OpenAndRun(dir, kSteps); }

  // Observe run: enumerate the probes one full recovery traverses.
  FaultInjector observer;
  observer.set_recording(true);
  DurableStoreOptions oopt;
  oopt.injector = &observer;
  {
    auto store = std::move(DurableStore::Open(dir, &schema_, oopt)).value();
    EXPECT_TRUE(store->instance() == states_[kSteps]);
  }
  const std::uint64_t probes = observer.probes_seen();
  const std::vector<std::string> names = observer.recorded_probes();
  EXPECT_EQ(std::count(names.begin(), names.end(), "store/recovery/replay"),
            static_cast<std::ptrdiff_t>(kSteps));
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.back(), "store/recovery/position");
  ASSERT_GE(probes, kSteps + 1);

  for (std::uint64_t n = 1; n <= probes; ++n) {
    FaultInjector inj = FaultInjector::FireAtNthProbe(n);
    DurableStoreOptions options;
    options.injector = &inj;
    RecoveryReport report;
    auto crashed = DurableStore::Open(dir, &schema_, options, &report);
    ASSERT_FALSE(crashed.ok()) << "probe " << n;
    EXPECT_EQ(crashed.status().code(), StatusCode::kInternal)
        << "probe " << n << ": " << crashed.status().ToString();

    // The interrupted recovery wrote nothing: the second recovery replays
    // the identical committed prefix.
    RecoveryReport clean;
    EXPECT_TRUE(Recover(dir, &clean) == states_[kSteps]) << "probe " << n;
    EXPECT_EQ(clean.replayed_records, kSteps) << "probe " << n;
    EXPECT_FALSE(clean.torn_tail) << "probe " << n;
  }
}

/// The same, on a store whose previous life ended in a crash: the WAL is cut
/// mid-record, and the recovery of THAT is itself crashed at every probe.
/// Both layers of failure must still land on the longest valid prefix.
TEST_F(DurableStoreTest, RecoveryMatrixCrashWhileRecoveringATornLog) {
  const std::string dir = MakeTempDir("store");
  { auto store = OpenAndRun(dir, kSteps); }
  const WalReplay pristine = std::move(ReadWal(WalFile(dir))).value();
  ASSERT_EQ(pristine.records.size(), kSteps);
  // Cut inside the final record: 3 whole records + half of the fourth...
  const std::size_t cut =
      (pristine.record_ends[kSteps - 2] + pristine.record_ends[kSteps - 1]) /
      2;
  const std::string bytes = ReadFileBytes(WalFile(dir));

  // The tear is re-inflicted before each round (a clean recovery between
  // rounds truncates it away). Most crashed Opens happen before the writer
  // truncates, so the follow-up recovery sees the tear again; the final
  // probe ordinal ("wal/truncate-dirsync") fires *after* the truncation, so
  // there the follow-up sees an already-clean log. Either way the recovered
  // state must be the committed prefix — that is the actual contract; the
  // torn_tail flag just has to agree with what is physically on disk. The
  // loop ends at the first probe ordinal past what a torn recovery
  // traverses.
  std::uint64_t n = 0;
  while (true) {
    ++n;
    WriteFileBytes(WalFile(dir), bytes.substr(0, cut));
    FaultInjector inj = FaultInjector::FireAtNthProbe(n);
    DurableStoreOptions options;
    options.injector = &inj;
    auto crashed = DurableStore::Open(dir, &schema_, options);
    if (crashed.ok()) break;  // n exceeded the probe count: ran to completion
    EXPECT_EQ(crashed.status().code(), StatusCode::kInternal) << "probe " << n;

    const WalReplay after_crash =
        std::move(ReadWal(WalFile(dir))).value();
    RecoveryReport clean;
    EXPECT_TRUE(Recover(dir, &clean) == states_[kSteps - 1]) << "probe " << n;
    EXPECT_EQ(clean.replayed_records, kSteps - 1) << "probe " << n;
    EXPECT_EQ(clean.torn_tail, after_crash.torn_tail) << "probe " << n;
  }
  // At least one replay probe per surviving record plus the position probe
  // were each crashed once.
  EXPECT_GE(n, kSteps);
}

TEST_F(DurableStoreTest, ZeroLengthOrMissingWalRecoversWithACleanReport) {
  const std::string dir = MakeTempDir("store");
  // Never-written store: no log at all. Clean report, empty instance.
  RecoveryReport fresh;
  EXPECT_TRUE(Recover(dir, &fresh) == states_[0]);
  EXPECT_FALSE(fresh.torn_tail);
  EXPECT_EQ(fresh.replayed_records, 0u);
  EXPECT_EQ(fresh.dropped_bytes, 0u);
  EXPECT_EQ(fresh.last_sequence, 0u);
  EXPECT_TRUE(fresh.flight_dump_path.empty()) << fresh.flight_dump_path;

  // Zero-length log — a crash between open and the first commit. Still a
  // clean empty recovery, not a torn tail or an anomaly dump.
  WriteFileBytes(WalFile(dir), "");
  RecoveryReport empty;
  EXPECT_TRUE(Recover(dir, &empty) == states_[0]);
  EXPECT_FALSE(empty.torn_tail);
  EXPECT_EQ(empty.dropped_bytes, 0u);
  EXPECT_EQ(empty.last_sequence, 0u);
  EXPECT_TRUE(empty.flight_dump_path.empty()) << empty.flight_dump_path;
}

TEST_F(DurableStoreTest, RecoveryMatrixCrashAtEveryCheckpointProbe) {
  // A checkpoint is publish-then-truncate: snapshot tmp-write, fsync,
  // rename, directory fsync ("snapshot/dirsync"), then WAL truncation and
  // its own directory barrier ("wal/truncate-dirsync"). Crash at EVERY
  // probe inside that window — most pointedly between the rename and the
  // dir-fsync — and the reopened store must hold every committed step.
  FaultInjector observer;
  observer.set_recording(true);
  std::uint64_t window = 0;
  std::size_t commit_probes = 0;
  {
    const std::string dir = MakeTempDir("ckpt-observe");
    DurableStoreOptions options;
    options.injector = &observer;
    auto store = OpenAndRun(dir, kSteps, options);
    const std::uint64_t before = observer.probes_seen();
    commit_probes = observer.recorded_probes().size();
    ASSERT_TRUE(store->Checkpoint().ok());
    window = observer.probes_seen() - before;
  }
  ASSERT_GT(window, 0u);
  const std::vector<std::string> names = observer.recorded_probes();
  const auto begin =
      names.begin() + static_cast<std::ptrdiff_t>(commit_probes);
  EXPECT_NE(std::find(begin, names.end(), "snapshot/dirsync"), names.end());
  EXPECT_NE(std::find(begin, names.end(), "wal/truncate-dirsync"),
            names.end());

  for (std::uint64_t k = 1; k <= window; ++k) {
    const std::string dir = MakeTempDir("ckpt" + std::to_string(k));
    FaultInjector injector;  // observe-only while the commits run
    DurableStoreOptions options;
    options.injector = &injector;
    {
      auto store = OpenAndRun(dir, kSteps, options);
      injector = FaultInjector::FireAtNthProbe(k);
      EXPECT_FALSE(store->Checkpoint().ok()) << "probe " << k;
    }  // crash: the store is dropped mid-checkpoint
    RecoveryReport report;
    EXPECT_TRUE(Recover(dir, &report) == states_[kSteps]) << "probe " << k;
    EXPECT_EQ(report.last_sequence, kSteps) << "probe " << k;
    EXPECT_FALSE(report.torn_tail) << "probe " << k;
  }
}

// -- DurableStore over the SQL engine (payroll workload) ---------------------

class DurablePayrollTest : public ::testing::Test {
 protected:
  void SetUp() override { ps_ = std::move(MakePayrollSchema()).value(); }

  /// The Section 7 receiver query "select EmpId, New from Employee, NewSal
  /// where Salary = Old".
  ExprPtr SalaryUpdateQuery() const {
    return ra::Project(
        ra::JoinEq(ra::Rel("EmpSalary"),
                   ra::Project(ra::JoinEq(ra::Rel("NSOld"),
                                          ra::Rename(ra::Rel("NSNew"), "NS",
                                                     "NS2"),
                                          "NS", "NS2"),
                               {"Old", "New"}),
                   "Salary", "Old"),
        {"Emp", "New"});
  }

  Instance BuildDb() const {
    std::vector<EmployeeRow> employees = {
        {1, 100, std::nullopt}, {2, 200, std::nullopt}, {3, 100, std::nullopt}};
    std::vector<NewSalRow> raises = {{100, 150}, {200, 250}};
    return std::move(BuildPayrollInstance(ps_, employees, {{100, 300}}, raises))
        .value();
  }

  /// Seeds a fresh store with the payroll tables (commit 1).
  Status Seed(DurableStore& store) const {
    const Instance db = BuildDb();
    return store.Mutate([&db](Instance& inst, ExecContext&) {
      inst = db;
      return Status::OK();
    });
  }

  PayrollSchema ps_;
};

TEST_F(DurablePayrollTest, SetOrientedStatementsCommitAndRecover) {
  const std::string dir = MakeTempDir("payroll");
  const Instance seeded = BuildDb();
  Instance expected(&ps_.schema);
  {
    auto store =
        std::move(DurableStore::Open(dir, &ps_.schema)).value();
    ASSERT_TRUE(Seed(*store).ok());
    ASSERT_TRUE(store->Update(ps_.salary, SalaryUpdateQuery()).ok());
    // After the raise nobody's salary is in Fire anymore, so this DELETE is
    // a committed no-op: acknowledged, but no WAL record written.
    ASSERT_TRUE(store->Delete(ps_.emp, SalaryInFire(ps_)).ok());
    expected = store->SnapshotState();
    EXPECT_FALSE(expected == seeded);
    EXPECT_EQ(store->last_sequence(), 2u);
  }
  RecoveryReport report;
  auto recovered =
      std::move(DurableStore::Open(dir, &ps_.schema, {}, &report)).value();
  EXPECT_TRUE(recovered->instance() == expected);
  EXPECT_EQ(report.replayed_records, 2u);

  // The recovered salaries are the Section 7 raises.
  auto salaries =
      std::move(ReadSalaries(ps_, recovered->instance())).value();
  ASSERT_EQ(salaries.size(), 3u);
  EXPECT_EQ(salaries[0], (std::pair<std::uint32_t, std::uint32_t>{1, 150}));
  EXPECT_EQ(salaries[1], (std::pair<std::uint32_t, std::uint32_t>{2, 250}));
  EXPECT_EQ(salaries[2], (std::pair<std::uint32_t, std::uint32_t>{3, 150}));
}

/// The acceptance matrix over *exec* probe points: kill the UPDATE commit at
/// every cooperative probe the statement traverses. Every kill must leave
/// both the live store and a recovered reopen at exactly the pre-statement
/// instance.
TEST_F(DurablePayrollTest, CrashAtEveryExecProbeRecoversThePreStatementState) {
  // Observe run: learn the probe ordinals the UPDATE spans.
  std::uint64_t probes_before = 0, probes_after = 0;
  Instance pre_statement(&ps_.schema);
  Instance post_statement(&ps_.schema);
  {
    const std::string dir = MakeTempDir("observe");
    FaultInjector observer;
    DurableStoreOptions options;
    options.injector = &observer;
    auto store =
        std::move(DurableStore::Open(dir, &ps_.schema, options)).value();
    ASSERT_TRUE(Seed(*store).ok());
    pre_statement = store->SnapshotState();
    probes_before = observer.probes_seen();
    ASSERT_TRUE(store->Update(ps_.salary, SalaryUpdateQuery()).ok());
    probes_after = observer.probes_seen();
    post_statement = store->SnapshotState();
  }
  ASSERT_GT(probes_after, probes_before);
  ASSERT_FALSE(post_statement == pre_statement);

  for (std::uint64_t k = probes_before + 1; k <= probes_after; ++k) {
    const std::string dir = MakeTempDir("probe" + std::to_string(k));
    FaultInjector inj = FaultInjector::FireAtNthProbe(k);
    DurableStoreOptions options;
    options.injector = &inj;
    auto store =
        std::move(DurableStore::Open(dir, &ps_.schema, options)).value();
    ASSERT_TRUE(Seed(*store).ok()) << "probe " << k;

    Status s = store->Update(ps_.salary, SalaryUpdateQuery());
    ASSERT_FALSE(s.ok()) << "probe " << k;
    EXPECT_EQ(s.code(), StatusCode::kInternal) << "probe " << k;
    // An exec fault is not a storage fault: the store stays usable...
    EXPECT_FALSE(store->broken()) << "probe " << k;
    // ...and the live state rolled back to the pre-statement instance.
    EXPECT_TRUE(store->SnapshotState() == pre_statement)
        << "partial mutation survived a fault at probe " << k;
    store.reset();

    // The non-OK terminal status dumped the flight recorder.
    AssertFlightDump(CommitFlightFile(dir));

    // Recovery agrees: nothing of the killed statement was logged, and the
    // report references the commit-time dump.
    RecoveryReport report;
    auto reopened =
        std::move(DurableStore::Open(dir, &ps_.schema, {}, &report)).value();
    EXPECT_TRUE(reopened->instance() == pre_statement)
        << "recovery leaked a torn hybrid at probe " << k;
    EXPECT_EQ(report.flight_dump_path, CommitFlightFile(dir)) << "probe " << k;

    // And the statement still works after recovery.
    ASSERT_TRUE(reopened->Update(ps_.salary, SalaryUpdateQuery()).ok())
        << "probe " << k;
    EXPECT_TRUE(reopened->instance() == post_statement) << "probe " << k;
  }
}

TEST_F(DurablePayrollTest, RetryableGovernanceFaultIsRetriedToSuccess) {
  const std::string dir = MakeTempDir("retry");
  // Fire a transient kResourceExhausted somewhere inside the UPDATE. The
  // injector's counter keeps advancing across attempts, so the fault fires
  // exactly once and the second attempt sails through.
  FaultInjector inj =
      FaultInjector::FireAtNthProbe(3, StatusCode::kResourceExhausted);
  DurableStoreOptions options;
  options.injector = &inj;
  options.retry.max_attempts = 3;
  options.retry.base_delay = std::chrono::nanoseconds(0);
  options.retry.jitter_seed = 7;
  auto store =
      std::move(DurableStore::Open(dir, &ps_.schema, options)).value();
  ASSERT_TRUE(Seed(*store).ok());

  ASSERT_TRUE(store->Update(ps_.salary, SalaryUpdateQuery()).ok());
  EXPECT_EQ(inj.faults_fired(), 1u);
  const Instance committed = store->SnapshotState();
  store.reset();
  auto reopened = std::move(DurableStore::Open(dir, &ps_.schema)).value();
  EXPECT_TRUE(reopened->instance() == committed);
}

TEST_F(DurablePayrollTest, RetryDisabledFailsOnTheTransientFault) {
  const std::string dir = MakeTempDir("noretry");
  FaultInjector inj =
      FaultInjector::FireAtNthProbe(3, StatusCode::kResourceExhausted);
  DurableStoreOptions options;
  options.injector = &inj;  // default policy: max_attempts = 1
  auto store =
      std::move(DurableStore::Open(dir, &ps_.schema, options)).value();
  ASSERT_TRUE(Seed(*store).ok());
  const Instance seeded = store->SnapshotState();

  Status s = store->Update(ps_.salary, SalaryUpdateQuery());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(store->SnapshotState() == seeded);
}

// -- Concurrency: commits racing a background checkpoint thread --------------

TEST_F(DurableStoreTest, BackgroundCheckpointsRaceCommitsSafely) {
  const std::string dir = MakeTempDir("race");
  // A shared observe-only injector: its atomic counters are hammered from
  // both threads (the commit path's exec context and the WAL writer).
  FaultInjector observer;
  DurableStoreOptions options;
  options.injector = &observer;
  options.keep_snapshots = 2;
  auto store =
      std::move(DurableStore::Open(dir, &schema_, options)).value();

  constexpr std::uint32_t kCommits = 24;
  Instance expected(&schema_);
  for (std::uint32_t k = 1; k <= kCommits; ++k) {
    ASSERT_TRUE(ApplyStep(expected, k).ok());
  }

  std::atomic<bool> done{false};
  std::thread checkpointer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      Status s = store->Checkpoint();
      ASSERT_TRUE(s.ok()) << s.ToString();
    }
  });
  for (std::uint32_t k = 1; k <= kCommits; ++k) {
    ASSERT_TRUE(CommitStep(*store, k).ok()) << "step " << k;
  }
  done.store(true, std::memory_order_relaxed);
  checkpointer.join();

  EXPECT_TRUE(store->SnapshotState() == expected);
  EXPECT_EQ(store->last_sequence(), kCommits);
  store.reset();
  EXPECT_TRUE(Recover(dir) == expected);
}

}  // namespace
}  // namespace setrec
