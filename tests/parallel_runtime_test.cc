// Tests for the multi-core execution runtime: the ThreadPool, budget
// sharing across ExecContext::Fork() families, the hashed relational
// kernels, the partitioned parallel join probe, and — the load-bearing
// property — bit-identical determinism of ParallelApply across worker
// counts (the sharded evaluation computes exactly the self-slices of each
// shard, so merging shards reproduces the single-threaded result).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "algebraic/method_library.h"
#include "algebraic/parallel.h"
#include "core/instance_generator.h"
#include "core/thread_pool.h"
#include "relational/builder.h"
#include "relational/evaluator.h"
#include "sql/table.h"
#include "text/printer.h"

namespace setrec {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  constexpr std::size_t kTasks = 257;  // more tasks than workers
  std::vector<std::atomic<int>> hits(kTasks);
  pool.ParallelFor(kTasks, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.ParallelFor(10, [&](std::size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 55u) << "round " << round;
  }
}

TEST(ThreadPoolTest, DegenerateBatchesRunInline) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "no tasks to run"; });
  std::atomic<int> ran{0};
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ran.fetch_add(1);
  });
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, SingleWorkerPoolIsSequential) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.ParallelFor(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, DefaultWorkerCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultWorkerCount(), 1u);
}

// ---------------------------------------------------------------------------
// ExecContext::Fork — one budget, many threads
// ---------------------------------------------------------------------------

TEST(ExecContextForkTest, ChildrenChargeTheParentsStepBudgetExactly) {
  ExecContext ctx{ExecContext::StepBudget(10)};
  ExecContext a = ctx.Fork();
  ExecContext b = ctx.Fork();
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(a.CheckPoint("test/a").ok());
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(b.CheckPoint("test/b").ok());
  // The 11th step — from any family member — trips the cap.
  EXPECT_EQ(ctx.CheckPoint("test/parent").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.steps(), 11u);  // counters are family-global
  EXPECT_EQ(a.steps(), 11u);
}

TEST(ExecContextForkTest, RowBudgetIsSharedAcrossTheFamily) {
  ExecContext::Limits limits;
  limits.max_rows = 100;
  ExecContext ctx{limits};
  ExecContext a = ctx.Fork();
  ExecContext b = ctx.Fork();
  EXPECT_TRUE(a.ChargeRows(60, "test/rows").ok());
  EXPECT_TRUE(b.ChargeRows(40, "test/rows").ok());
  EXPECT_EQ(b.ChargeRows(1, "test/rows").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.rows(), 101u);
}

TEST(ExecContextForkTest, MemoryChargesAndReleasesArePooled) {
  ExecContext ctx;
  ExecContext a = ctx.Fork();
  ExecContext b = ctx.Fork();
  EXPECT_TRUE(a.ChargeMemory(1000, "test/mem").ok());
  EXPECT_TRUE(b.ChargeMemory(500, "test/mem").ok());
  EXPECT_EQ(ctx.memory_in_use(), 1500u);
  EXPECT_EQ(ctx.memory_high_water(), 1500u);
  b.ReleaseMemory(500);
  a.ReleaseMemory(1000);
  EXPECT_EQ(ctx.memory_in_use(), 0u);
  EXPECT_EQ(ctx.memory_high_water(), 1500u);  // high water survives release
  // Over-release clamps at zero instead of wrapping.
  a.ReleaseMemory(1);
  EXPECT_EQ(ctx.memory_in_use(), 0u);
}

TEST(ExecContextForkTest, CancellationPropagatesAcrossTheFamily) {
  ExecContext ctx;
  ExecContext a = ctx.Fork();
  ExecContext b = ctx.Fork();
  EXPECT_TRUE(b.CheckPoint("test/pre").ok());
  a.RequestCancel();
  EXPECT_EQ(b.CheckPoint("test/post").code(), StatusCode::kCancelled);
  EXPECT_EQ(ctx.CheckPoint("test/post").code(), StatusCode::kCancelled);
  EXPECT_TRUE(ctx.cancel_requested());
}

TEST(ExecContextForkTest, ForkPreservesCountersAccruedBeforeTheFork) {
  ExecContext ctx{ExecContext::StepBudget(5)};
  EXPECT_TRUE(ctx.CheckPoint("test/pre").ok());
  EXPECT_TRUE(ctx.CheckPoint("test/pre").ok());
  ExecContext child = ctx.Fork();  // migrates steps_ == 2 into the family
  EXPECT_EQ(child.steps(), 2u);
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(child.CheckPoint("test/c").ok());
  EXPECT_EQ(ctx.CheckPoint("test/parent").code(),
            StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Hashed relational kernels
// ---------------------------------------------------------------------------

RelationScheme MakeScheme(std::vector<Attribute> attrs) {
  return std::move(RelationScheme::Make(std::move(attrs))).value();
}

constexpr ClassId kP = 0;
constexpr ClassId kQ = 1;
ObjectId P(std::uint32_t i) { return ObjectId(kP, i); }
ObjectId Q(std::uint32_t i) { return ObjectId(kQ, i); }

TEST(HashedRelationTest, TupleHashAgreesWithEquality) {
  TupleHash h;
  EXPECT_EQ(h(Tuple{P(1), Q(2)}), h(Tuple{P(1), Q(2)}));
  EXPECT_NE(h(Tuple{P(1), Q(2)}), h(Tuple{Q(2), P(1)}));  // order matters
  EXPECT_NE(h(Tuple{P(1)}), h(Tuple{P(1), P(1)}));        // arity matters
}

TEST(HashedRelationTest, SortedTuplesEnumeratesCanonicalOrder) {
  Relation r(MakeScheme({{"x", kP}, {"y", kQ}}));
  ASSERT_TRUE(r.Insert(Tuple{P(2), Q(0)}).ok());
  ASSERT_TRUE(r.Insert(Tuple{P(0), Q(1)}).ok());
  ASSERT_TRUE(r.Insert(Tuple{P(0), Q(0)}).ok());
  std::vector<const Tuple*> sorted = r.SortedTuples();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(*sorted[0], (Tuple{P(0), Q(0)}));
  EXPECT_EQ(*sorted[1], (Tuple{P(0), Q(1)}));
  EXPECT_EQ(*sorted[2], (Tuple{P(2), Q(0)}));
}

TEST(HashedRelationTest, InsertValidatedSkipsDomainChecks) {
  Relation r(MakeScheme({{"x", kP}}));
  r.Reserve(2);
  r.InsertValidated(Tuple{P(7)});
  r.InsertValidated(Tuple{P(7)});  // duplicate is still a set no-op
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Tuple{P(7)}));
}

TEST(HashedRelationTest, DatabaseEqualityIsDeepAfterSharedStorage) {
  Database a;
  Database b;
  Relation r(MakeScheme({{"x", kP}}));
  ASSERT_TRUE(r.Insert(Tuple{P(1)}).ok());
  a.Put("R", Relation(r));
  b.Put("R", std::move(r));
  EXPECT_TRUE(a == b);  // same content, distinct shared_ptrs
  Database c = a;       // shallow copy shares storage
  EXPECT_TRUE(a == c);
}

// ---------------------------------------------------------------------------
// Partitioned parallel join probe
// ---------------------------------------------------------------------------

TEST(ParallelProbeTest, PartitionedProbeMatchesSequentialEvaluation) {
  // Probe side larger than kParallelProbeThreshold so the partitioned path
  // actually engages.
  const std::size_t n = Evaluator::kParallelProbeThreshold + 513;
  Database db;
  Relation r(MakeScheme({{"x", kP}, {"y", kQ}}));
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(r.Insert(Tuple{P(i), Q(i % 97)}).ok());
  }
  db.Put("R", std::move(r));
  Relation s(MakeScheme({{"y2", kQ}, {"z", kP}}));
  for (std::uint32_t j = 0; j < 97; ++j) {
    ASSERT_TRUE(s.Insert(Tuple{Q(j), P(j % 5)}).ok());
  }
  db.Put("S", std::move(s));

  ExprPtr join = Expr::SelectEq(
      Expr::Product(Expr::Relation("R"), Expr::Relation("S")), "y", "y2");

  ExecContext seq_ctx;
  Evaluator sequential(&db, seq_ctx);
  Relation expected = std::move(sequential.Eval(join)).value();
  EXPECT_EQ(expected.size(), n);

  ThreadPool pool(4);
  ExecContext par_ctx;
  Evaluator parallel(&db, par_ctx, &pool);
  Relation actual = std::move(parallel.Eval(join)).value();
  EXPECT_TRUE(expected == actual);
  // Both evaluations charged the same number of join rows.
  EXPECT_EQ(seq_ctx.rows(), par_ctx.rows());
}

TEST(ParallelProbeTest, RowBudgetHoldsExactlyAcrossPartitions) {
  const std::size_t n = Evaluator::kParallelProbeThreshold + 1;
  Database db;
  Relation r(MakeScheme({{"x", kP}, {"y", kQ}}));
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(r.Insert(Tuple{P(i), Q(0)}).ok());
  }
  db.Put("R", std::move(r));
  Relation s(MakeScheme({{"y2", kQ}}));
  ASSERT_TRUE(s.Insert(Tuple{Q(0)}).ok());
  db.Put("S", std::move(s));

  ExprPtr join = Expr::SelectEq(
      Expr::Product(Expr::Relation("R"), Expr::Relation("S")), "y", "y2");

  ExecContext::Limits limits;
  limits.max_rows = n / 2;  // trips mid-probe, inside some partition
  ExecContext ctx{limits};
  ThreadPool pool(4);
  Evaluator ev(&db, ctx, &pool);
  EXPECT_EQ(ev.Eval(join).status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// ParallelApply determinism — the tentpole property
// ---------------------------------------------------------------------------

/// Applies `method` to (instance, receivers) at several worker counts and
/// asserts all the results are bit-identical (content equality AND the
/// canonical text serialization, which pins down edge-for-edge identity).
void ExpectWorkerCountInvariant(const AlgebraicUpdateMethod& method,
                                const Instance& instance,
                                std::span<const Receiver> receivers,
                                ThreadPool* pool) {
  Result<Instance> base =
      ParallelApply(method, instance, receivers, ParallelOptions{1, nullptr});
  ASSERT_TRUE(base.ok()) << base.status().message();
  const std::string base_text = InstanceToText(*base);
  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    Result<Instance> sharded = ParallelApply(
        method, instance, receivers, ParallelOptions{workers, pool});
    ASSERT_TRUE(sharded.ok()) << sharded.status().message();
    EXPECT_EQ(*base, *sharded) << method.name() << " with " << workers
                               << " workers";
    EXPECT_EQ(base_text, InstanceToText(*sharded))
        << method.name() << " with " << workers << " workers";
  }
}

TEST(ParallelApplyDeterminismTest, PayrollWorkloadIsWorkerCountInvariant) {
  // The Section 7 payroll update: every employee re-salaried through
  // NewSal. Receivers share no receiving objects, so sharding is free to
  // cut anywhere; 8 workers over 100 employees exercises uneven shards.
  PayrollSchema schema = std::move(MakePayrollSchema()).value();
  std::vector<EmployeeRow> employees;
  std::vector<NewSalRow> raises;
  for (std::uint32_t i = 0; i < 100; ++i) {
    employees.push_back(EmployeeRow{i, 1000 + (i % 16), std::nullopt});
  }
  for (std::uint32_t s = 0; s < 16; ++s) {
    raises.push_back(NewSalRow{1000 + s, 2000 + s});
  }
  Instance instance =
      std::move(BuildPayrollInstance(schema, employees, {}, raises)).value();
  auto method = std::move(MakeSalaryFromNewSal(schema)).value();
  std::vector<Receiver> receivers;
  const auto salaries = std::move(ReadSalaries(schema, instance)).value();
  for (auto [id, salary] : salaries) {
    receivers.push_back(Receiver::Unchecked(
        {ObjectId(schema.emp, id), ObjectId(schema.val, salary)}));
  }
  ASSERT_GE(receivers.size(), 100u);
  ThreadPool pool(4);
  ExpectWorkerCountInvariant(*method, instance, receivers, &pool);
}

class RandomizedDeterminismTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedDeterminismTest, RandomReceiverSetsAreWorkerCountInvariant) {
  // Arbitrary receiver sets — NOT key sets — so receivers sharing a
  // receiving object with different arguments land in the corpus. Those
  // interact through π_{self,arg}(rec) and are exactly the case the
  // shard-boundary rule (never split a self-run) exists for.
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  InstanceGenerator gen(&ds.schema, GetParam());
  InstanceGenerator::Options options;
  options.min_objects_per_class = 3;
  options.max_objects_per_class = 8;
  options.edge_probability = 0.4;
  Instance instance = gen.RandomInstance(options);

  std::vector<std::unique_ptr<AlgebraicUpdateMethod>> methods;
  methods.push_back(std::move(MakeAddBar(ds)).value());
  methods.push_back(std::move(MakeFavoriteBar(ds)).value());
  methods.push_back(std::move(MakeDeleteBar(ds)).value());
  methods.push_back(std::move(MakeLikesServesBar(ds)).value());

  ThreadPool pool(4);
  for (const auto& method : methods) {
    std::vector<Receiver> receivers =
        gen.RandomReceiverSet(instance, method->signature(), 12);
    if (receivers.empty()) continue;
    ExpectWorkerCountInvariant(*method, instance, receivers, &pool);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedDeterminismTest,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(ParallelApplyDeterminismTest, TransientPoolMatchesBorrowedPool) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  InstanceGenerator gen(&ds.schema, 99);
  InstanceGenerator::Options options;
  options.min_objects_per_class = 4;
  options.max_objects_per_class = 6;
  Instance instance = gen.RandomInstance(options);
  auto method = std::move(MakeAddBar(ds)).value();
  std::vector<Receiver> receivers =
      gen.RandomReceiverSet(instance, method->signature(), 8);
  ASSERT_FALSE(receivers.empty());

  Result<Instance> seq =
      ParallelApply(*method, instance, receivers, ParallelOptions{1, nullptr});
  ASSERT_TRUE(seq.ok());
  // options.pool == nullptr with num_workers > 1 spawns a transient pool.
  Result<Instance> transient =
      ParallelApply(*method, instance, receivers, ParallelOptions{3, nullptr});
  ASSERT_TRUE(transient.ok());
  EXPECT_EQ(*seq, *transient);
}

TEST(ParallelApplyGovernanceTest, BudgetExhaustionMidFanOutLeavesInputAlone) {
  PayrollSchema schema = std::move(MakePayrollSchema()).value();
  std::vector<EmployeeRow> employees;
  std::vector<NewSalRow> raises;
  for (std::uint32_t i = 0; i < 64; ++i) {
    employees.push_back(EmployeeRow{i, 1000 + (i % 8), std::nullopt});
  }
  for (std::uint32_t s = 0; s < 8; ++s) {
    raises.push_back(NewSalRow{1000 + s, 2000 + s});
  }
  Instance instance =
      std::move(BuildPayrollInstance(schema, employees, {}, raises)).value();
  const Instance snapshot = instance;
  auto method = std::move(MakeSalaryFromNewSal(schema)).value();
  std::vector<Receiver> receivers;
  const auto salaries = std::move(ReadSalaries(schema, instance)).value();
  for (auto [id, salary] : salaries) {
    receivers.push_back(Receiver::Unchecked(
        {ObjectId(schema.emp, id), ObjectId(schema.val, salary)}));
  }

  // First measure the unrestricted cost, then set a budget that trips
  // mid-evaluation (after validation, inside the sharded fan-out).
  ThreadPool pool(4);
  ExecContext free_ctx;
  ASSERT_TRUE(ParallelApply(*method, instance, receivers,
                            ParallelOptions{4, &pool}, free_ctx)
                  .ok());
  const std::uint64_t full_cost = free_ctx.steps();
  ASSERT_GT(full_cost, 200u);

  ExecContext tight{ExecContext::StepBudget(full_cost / 2)};
  Result<Instance> out = ParallelApply(*method, instance, receivers,
                                       ParallelOptions{4, &pool}, tight);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
  // The input instance is untouched — governance failures never corrupt.
  EXPECT_EQ(instance, snapshot);
  EXPECT_EQ(InstanceToText(instance), InstanceToText(snapshot));
}

TEST(ParallelApplyGovernanceTest, CancellationAbortsTheFanOut) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  InstanceGenerator gen(&ds.schema, 7);
  InstanceGenerator::Options options;
  options.min_objects_per_class = 4;
  options.max_objects_per_class = 6;
  Instance instance = gen.RandomInstance(options);
  auto method = std::move(MakeAddBar(ds)).value();
  std::vector<Receiver> receivers =
      gen.RandomReceiverSet(instance, method->signature(), 8);
  ASSERT_FALSE(receivers.empty());

  ThreadPool pool(2);
  ExecContext ctx;
  ctx.RequestCancel();
  Result<Instance> out = ParallelApply(*method, instance, receivers,
                                       ParallelOptions{2, &pool}, ctx);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace setrec
