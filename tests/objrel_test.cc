// Tests for the object-relational encoding (Section 5.1, Proposition 5.1):
// the encode/decode round trip, the induced dependencies, and queries over
// encoded instances.

#include <gtest/gtest.h>

#include "algebraic/method_library.h"
#include "core/instance_generator.h"
#include "objrel/encoding.h"
#include "relational/builder.h"
#include "relational/evaluator.h"

namespace setrec {
namespace {

TEST(EncodingTest, CatalogShapesFollowTheSchema) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  Catalog catalog = std::move(EncodeCatalog(ds.schema)).value();
  // Unary class relations D, Ba, Be; binary property relations Df, Dl, Bas.
  EXPECT_EQ(catalog.Names(),
            (std::vector<std::string>{"Ba", "Bas", "Be", "D", "Df", "Dl"}));
  const RelationScheme* df = std::move(catalog.Find("Df")).value();
  ASSERT_EQ(df->arity(), 2u);
  EXPECT_EQ(df->attribute(0).name, "D");
  EXPECT_EQ(df->attribute(0).domain, ds.drinker);
  EXPECT_EQ(df->attribute(1).name, "f");
  EXPECT_EQ(df->attribute(1).domain, ds.bar);
}

TEST(EncodingTest, NameCollisionsAreRejected) {
  Schema schema;
  ClassId a = std::move(schema.AddClass("A")).value();
  ClassId ab = std::move(schema.AddClass("AB")).value();
  // A+"BC" collides with AB+"C".
  ASSERT_TRUE(schema.AddProperty("BC", a, a).ok());
  ASSERT_TRUE(schema.AddProperty("C", ab, a).ok());
  EXPECT_EQ(EncodeCatalog(schema).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EncodingTest, InducedDependenciesAreExactlyThePaperList) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  DependencySet deps = InducedDependencies(ds.schema);
  // Two full INDs per edge, one disjointness per class pair.
  EXPECT_EQ(deps.inds.size(), 6u);
  EXPECT_EQ(deps.disjointness.size(), 3u);
  EXPECT_TRUE(deps.fds.empty());
  EXPECT_EQ(deps.inds[0].from_relation, "Df");
  EXPECT_EQ(deps.inds[0].to_relation, "D");
  EXPECT_EQ(deps.inds[1].from_relation, "Df");
  EXPECT_EQ(deps.inds[1].to_relation, "Ba");
}

/// Proposition 5.1 as a property: encode/decode is the identity, and every
/// encoded instance satisfies the induced dependencies.
class RoundTripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripTest, EncodeDecodeIsIdentityAndDependenciesHold) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  InstanceGenerator gen(&ds.schema, GetParam());
  InstanceGenerator::Options options;
  options.min_objects_per_class = 0;
  options.max_objects_per_class = 5;
  options.edge_probability = 0.4;
  Instance instance = gen.RandomInstance(options);

  Database db = std::move(EncodeInstance(instance)).value();
  EXPECT_TRUE(
      std::move(SatisfiesAll(db, InducedDependencies(ds.schema))).value());
  Instance decoded = std::move(DecodeInstance(db, ds.schema)).value();
  EXPECT_EQ(decoded, instance);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(EncodingTest, DecodeRejectsDanglingTuples) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  Instance instance(&ds.schema);
  const ObjectId d(ds.drinker, 0);
  const ObjectId b(ds.bar, 0);
  ASSERT_TRUE(instance.AddObject(d).ok());
  ASSERT_TRUE(instance.AddObject(b).ok());
  ASSERT_TRUE(instance.AddEdge(d, ds.frequents, b).ok());
  Database db = std::move(EncodeInstance(instance)).value();

  // Break the inclusion dependency: drop Ba's only object from its class
  // relation while keeping the Df tuple.
  Relation empty_bar(std::move(db.Find("Ba")).value()->scheme());
  db.Put("Ba", std::move(empty_bar));
  EXPECT_FALSE(
      std::move(SatisfiesAll(db, InducedDependencies(ds.schema))).value());
  EXPECT_FALSE(DecodeInstance(db, ds.schema).ok());
}

TEST(EncodingTest, QueriesOverEncodedInstances) {
  // The paper's Section 5.1 example query shape: bars frequented by a
  // drinker that serve a beer the drinker likes.
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  Instance instance(&ds.schema);
  const ObjectId d(ds.drinker, 0);
  const ObjectId b0(ds.bar, 0), b1(ds.bar, 1);
  const ObjectId beer(ds.beer, 0);
  for (ObjectId o : {d}) ASSERT_TRUE(instance.AddObject(o).ok());
  for (ObjectId o : {b0, b1}) ASSERT_TRUE(instance.AddObject(o).ok());
  ASSERT_TRUE(instance.AddObject(beer).ok());
  ASSERT_TRUE(instance.AddEdge(d, ds.frequents, b0).ok());
  ASSERT_TRUE(instance.AddEdge(d, ds.frequents, b1).ok());
  ASSERT_TRUE(instance.AddEdge(d, ds.likes, beer).ok());
  ASSERT_TRUE(instance.AddEdge(b1, ds.serves, beer).ok());

  Database db = std::move(EncodeInstance(instance)).value();
  // Df ⋈_{D=D2} ρ(Dl), then match the frequented bar against Bas on both
  // the bar and the liked beer.
  ExprPtr dl2 = ra::Rename(ra::Rel("Dl"), "D", "D2");
  ExprPtr join1 = ra::JoinEq(ra::Rel("Df"), dl2, "D", "D2");
  ExprPtr bas2 = ra::Rename(ra::Rel("Bas"), "Ba", "Ba2");
  ExprPtr join2 = ra::SelectEq(ra::SelectEq(ra::Product(join1, bas2), "f",
                                            "Ba2"),
                               "l", "s");
  Relation result =
      std::move(Evaluate(ra::Project(join2, {"f"}), db)).value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result.Contains(Tuple{b1}));
}

}  // namespace
}  // namespace setrec
