// Tests for the explainable-execution layer: EXPLAIN operator trees (golden
// texts pinned below), EXPLAIN ANALYZE with its worker-count-invariant
// logical counters (the acceptance property: bit-identical at 1/2/8 workers
// on the payroll workload and the 16-seed randomized corpus), and decision
// certificates with their JSONL / text renderings.

#include "obs/explain.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "algebraic/method_library.h"
#include "algebraic/order_independence.h"
#include "core/instance_generator.h"
#include "core/thread_pool.h"
#include "relational/builder.h"
#include "sql/improve.h"
#include "sql/table.h"
#include "text/printer.h"

namespace setrec {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Serializes everything *logical* about an analyzed plan — per-node rows,
/// build/probe counts and memo hits in preorder, plus the logical counter
/// map — and nothing temporal. Two runs agree exactly when these strings
/// are equal; this is the "bit-identical at any worker count" check.
void AppendLogicalStats(const PlanNode& node, std::string& out) {
  out += node.op + "[" + node.detail + "]" + node.scheme +
         " rows=" + std::to_string(node.actual_rows) +
         " build=" + std::to_string(node.build_rows) +
         " probes=" + std::to_string(node.probe_rows) +
         " hits=" + std::to_string(node.cache_hits) + "\n";
  for (const PlanNode& child : node.children) {
    AppendLogicalStats(child, out);
  }
}

std::string LogicalFingerprint(const ExplainPlan& plan) {
  std::string out;
  for (const PlanNode& root : plan.roots) AppendLogicalStats(root, out);
  for (const auto& [name, value] : plan.counters) {
    out += name + "=" + std::to_string(value) + "\n";
  }
  return out;
}

/// A line of JSONL is usable when it is one object per line with no raw
/// control characters — the property the JsonEscape funnel guarantees.
void ExpectJsonObjectLine(const std::string& line) {
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  for (const char c : line) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control character in JSONL line: " << line;
  }
}

// ---------------------------------------------------------------------------
// EXPLAIN golden plans
// ---------------------------------------------------------------------------

TEST(ExplainExpressionTest, JoinChainConditionsAreClassified) {
  // A four-condition σ-chain over a product renders as the single fused
  // HashJoin the evaluator executes, with each condition in its role: the
  // cross equality is the hash key, per-side conditions become build/probe
  // filters, and the cross non-equality is residual.
  Catalog catalog;
  const ClassId k = 1;
  ASSERT_TRUE(catalog
                  .AddRelation("R", std::move(RelationScheme::Make(
                                                  {{"a", k}, {"b", k}}))
                                        .value())
                  .ok());
  ASSERT_TRUE(catalog
                  .AddRelation("S", std::move(RelationScheme::Make(
                                                  {{"c", k}, {"d", k}}))
                                        .value())
                  .ok());
  ExprPtr chain = ra::SelectEq(
      ra::SelectNeq(
          ra::SelectEq(
              ra::SelectNeq(ra::Product(ra::Rel("R"), ra::Rel("S")), "a",
                            "b"),
              "c", "d"),
          "a", "d"),
      "a", "c");
  ExplainPlan plan =
      std::move(ExplainExpression(chain, catalog)).value();
  ASSERT_EQ(plan.roots.size(), 1u);
  const PlanNode& join = plan.roots[0];
  EXPECT_EQ(join.op, "HashJoin");
  EXPECT_EQ(join.detail,
            "keys: a=c; probe filter: a≠b; build filter: c=d; residual: a≠d");
  EXPECT_EQ(join.scheme, "(a, b, c, d)");
  ASSERT_EQ(join.children.size(), 2u);
  EXPECT_EQ(join.children[0].op, "Scan R");
  EXPECT_EQ(join.children[1].op, "Scan S");
  EXPECT_FALSE(plan.analyzed);
  EXPECT_TRUE(plan.counters.empty());
}

TEST(ExplainExpressionTest, UnknownRelationFailsLikeInferScheme) {
  Catalog catalog;
  EXPECT_FALSE(ExplainExpression(ra::Rel("Nope"), catalog).ok());
}

class ExplainPayrollTest : public ::testing::Test {
 protected:
  void SetUp() override { ps_ = std::move(MakePayrollSchema()).value(); }

  /// The Section 7 receiver query of update (B): "select EmpId, New from
  /// Employee, NewSal where Salary = Old".
  ExprPtr SalaryUpdateQuery() const {
    return ra::Project(
        ra::JoinEq(ra::Rel("EmpSalary"),
                   ra::Project(ra::JoinEq(ra::Rel("NSOld"),
                                          ra::Rename(ra::Rel("NSNew"), "NS",
                                                     "NS2"),
                                          "NS", "NS2"),
                               {"Old", "New"}),
                   "Salary", "Old"),
        {"Emp", "New"});
  }

  Instance SmallDb() const {
    std::vector<EmployeeRow> employees = {{1, 100, std::nullopt},
                                          {2, 200, std::nullopt},
                                          {3, 100, std::nullopt}};
    std::vector<NewSalRow> raises = {{100, 150}, {200, 250}};
    return std::move(BuildPayrollInstance(ps_, employees, {}, raises))
        .value();
  }

  /// The parallel_runtime_test payroll workload: 100 employees over 16
  /// salary levels, each re-salaried through NewSal.
  Instance LargeDb() const {
    std::vector<EmployeeRow> employees;
    std::vector<NewSalRow> raises;
    for (std::uint32_t i = 0; i < 100; ++i) {
      employees.push_back(EmployeeRow{i, 1000 + (i % 16), std::nullopt});
    }
    for (std::uint32_t s = 0; s < 16; ++s) {
      raises.push_back(NewSalRow{1000 + s, 2000 + s});
    }
    return std::move(BuildPayrollInstance(ps_, employees, {}, raises))
        .value();
  }

  std::vector<Receiver> SalaryReceivers(const Instance& instance) const {
    std::vector<Receiver> receivers;
    const auto salaries = std::move(ReadSalaries(ps_, instance)).value();
    for (auto [id, salary] : salaries) {
      receivers.push_back(Receiver::Unchecked(
          {ObjectId(ps_.emp, id), ObjectId(ps_.val, salary)}));
    }
    return receivers;
  }

  PayrollSchema ps_;
};

TEST_F(ExplainPayrollTest, GoldenSetOrientedUpdateB) {
  const Instance db = SmallDb();
  ExplainPlan plan = std::move(ExplainSetOrientedUpdate(
                                   db, ps_.salary, SalaryUpdateQuery(),
                                   /*analyze=*/false))
                         .value();
  EXPECT_EQ(plan.ToText(),
            "EXPLAIN: set-oriented UPDATE Salary\n"
            "ReceiverQuery [phase 1: evaluated against the pre-statement "
            "state] :: (Emp, New)\n"
            "  -> Project [Emp, New] :: (Emp, New)\n"
            "     -> HashJoin [keys: Salary=Old] :: (Emp, Salary, Old, "
            "New)\n"
            "        -> Scan EmpSalary :: (Emp, Salary)\n"
            "        -> Project [Old, New] :: (Old, New)\n"
            "           -> HashJoin [keys: NS=NS2] :: (NS, Old, NS2, New)\n"
            "              -> Scan NSOld :: (NS, Old)\n"
            "              -> Rename [NS→NS2] :: (NS2, New)\n"
            "                 -> Scan NSNew :: (NS, New)\n"
            "Apply [Salary := arg1 over the receiver key set] :: "
            "(Emp, New)\n")
      << plan.ToText();
}

TEST_F(ExplainPayrollTest, GoldenManagerTwoPhaseQuery) {
  // The end-of-Section-7 improvement of the order-dependent manager
  // variant (C): ImproveCursorUpdate derives the two-phase receiver query
  // that evaluates everything against the pre-statement state. Its plan is
  // the second pinned SQL scenario.
  auto method = std::move(MakeSalaryFromManagersNewSal(ps_)).value();
  ExprPtr mgr_new = std::move(ImproveCursorUpdate(
                                  *method,
                                  /*rec_source=*/
                                  ra::Rename(ra::Project(ra::Rel("Emp"),
                                                         {"Emp"}),
                                             "Emp", "self"),
                                  /*verify=*/false))
                        .value()
                        .receiver_query;
  const Instance db = SmallDb();
  ExplainPlan plan = std::move(ExplainSetOrientedUpdate(
                                   db, ps_.salary, mgr_new,
                                   /*analyze=*/false))
                         .value();
  const std::string text = plan.ToText();
  EXPECT_EQ(text, R"golden(EXPLAIN: set-oriented UPDATE Salary
ReceiverQuery [phase 1: evaluated against the pre-statement state] :: (self, New)
  -> Project [self, New] :: (self, New)
     -> Select [Sal2=Old] :: (self, Emp, Manager, Emp2, Sal2, Old, New)
        -> Project [self, Emp, Manager, Emp2, Sal2, Old, New] :: (self, Emp, Manager, Emp2, Sal2, Old, New)
           -> HashJoin [keys: self=self§] :: (self, Emp, Manager, Emp2, Sal2, self§, Old, New)
              -> Select [Manager=Emp2] :: (self, Emp, Manager, Emp2, Sal2)
                 -> Project [self, Emp, Manager, Emp2, Sal2] :: (self, Emp, Manager, Emp2, Sal2)
                    -> HashJoin [keys: self=self§] :: (self, Emp, Manager, self§, Emp2, Sal2)
                       -> Select [self=Emp] :: (self, Emp, Manager)
                          -> Project [self, Emp, Manager] :: (self, Emp, Manager)
                             -> HashJoin [keys: self=self§] :: (self, self§, Emp, Manager)
                                -> Project [self] :: (self)
                                   -> Rename [Emp→self] :: (self)
                                      -> Project [Emp] :: (Emp)
                                         -> Scan Emp :: (Emp)
                                -> Rename [self→self§] :: (self§, Emp, Manager)
                                   -> Product :: (self, Emp, Manager)
                                      -> Project [self] :: (self)
                                         -> Rename [Emp→self] :: (self)
                                            -> Project [Emp] :: (Emp)
                                               -> Scan Emp :: (Emp)
                                      -> Scan EmpManager :: (Emp, Manager)
                       -> Rename [self→self§] :: (self§, Emp2, Sal2)
                          -> Rename [Salary→Sal2] :: (self, Emp2, Sal2)
                             -> Rename [Emp→Emp2] :: (self, Emp2, Salary)
                                -> Product :: (self, Emp, Salary)
                                   -> Project [self] :: (self)
                                      -> Rename [Emp→self] :: (self)
                                         -> Project [Emp] :: (Emp)
                                            -> Scan Emp :: (Emp)
                                   -> Scan EmpSalary :: (Emp, Salary)
              -> Rename [self→self§] :: (self§, Old, New)
                 -> Project [self, Old, New] :: (self, Old, New)
                    -> Select [NS=NS2] :: (self, NS, Old, NS2, New)
                       -> Project [self, NS, Old, NS2, New] :: (self, NS, Old, NS2, New)
                          -> HashJoin [keys: self=self§] :: (self, NS, Old, self§, NS2, New)
                             -> Product :: (self, NS, Old)
                                -> Project [self] :: (self)
                                   -> Rename [Emp→self] :: (self)
                                      -> Project [Emp] :: (Emp)
                                         -> Scan Emp :: (Emp)
                                -> Scan NSOld :: (NS, Old)
                             -> Rename [self→self§] :: (self§, NS2, New)
                                -> Rename [NS→NS2] :: (self, NS2, New)
                                   -> Product :: (self, NS, New)
                                      -> Project [self] :: (self)
                                         -> Rename [Emp→self] :: (self)
                                            -> Project [Emp] :: (Emp)
                                               -> Scan Emp :: (Emp)
                                      -> Scan NSNew :: (NS, New)
Apply [Salary := arg1 over the receiver key set] :: (self, New)
)golden");
}

TEST_F(ExplainPayrollTest, GoldenParallelApplyPipeline) {
  // The par(E) pipeline (Definition 6.1) of the payroll workload's method:
  // one ParStatement per update statement, the rec relation joined in.
  auto method = std::move(MakeSalaryFromNewSal(ps_)).value();
  ExplainPlan plan = std::move(ExplainParallelApply(*method, SmallDb(), {},
                                                    /*analyze=*/false))
                         .value();
  const std::string text = plan.ToText();
  EXPECT_EQ(plan.roots.size(), method->statements().size());
  ASSERT_FALSE(plan.roots.empty());
  EXPECT_EQ(plan.roots[0].op, "ParStatement");
  EXPECT_EQ(plan.roots[0].detail, "Salary := par(E)");
  // The pipeline reads rec — the receiver relation is what par(E) adds.
  EXPECT_NE(text.find("Scan rec"), std::string::npos) << text;
  // Deterministic: rendering twice pins the same golden text.
  ExplainPlan again = std::move(ExplainParallelApply(*method, SmallDb(), {},
                                                     /*analyze=*/false))
                          .value();
  EXPECT_EQ(text, again.ToText());
}

TEST_F(ExplainPayrollTest, ToJsonIsOneParseableLine) {
  const Instance db = SmallDb();
  ExplainPlan plan = std::move(ExplainSetOrientedUpdate(
                                   db, ps_.salary, SalaryUpdateQuery(),
                                   /*analyze=*/false))
                         .value();
  const std::string json = plan.ToJson();
  ExpectJsonObjectLine(json);
  EXPECT_NE(json.find("\"op\":\"HashJoin\""), std::string::npos);
  EXPECT_NE(json.find("\"analyzed\":false"), std::string::npos);
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE — logical counters, worker-count invariance
// ---------------------------------------------------------------------------

TEST_F(ExplainPayrollTest, AnalyzeSetOrientedUpdateReportsTheRun) {
  const Instance db = LargeDb();
  const std::string before = InstanceToText(db);
  ExplainPlan plan = std::move(ExplainSetOrientedUpdate(
                                   db, ps_.salary, SalaryUpdateQuery(),
                                   /*analyze=*/true))
                         .value();
  // ANALYZE ran on a scratch copy; the caller's instance is untouched.
  EXPECT_EQ(InstanceToText(db), before);

  EXPECT_TRUE(plan.analyzed);
  ASSERT_EQ(plan.roots.size(), 2u);
  const PlanNode& query = plan.roots[0];
  const PlanNode& apply = plan.roots[1];
  EXPECT_TRUE(query.analyzed);
  EXPECT_EQ(query.actual_rows, 100u);  // one (EmpId, New) row per employee
  EXPECT_TRUE(apply.analyzed);
  EXPECT_EQ(apply.actual_rows, 100u);  // one receiver per row

  // The fused join's counts surfaced on its node and in the counter map.
  const PlanNode& join = query.children[0].children[0];
  ASSERT_EQ(join.op, "HashJoin");
  EXPECT_TRUE(join.analyzed);
  EXPECT_EQ(join.probe_rows, 100u);  // probe side: EmpSalary
  EXPECT_EQ(join.build_rows, 16u);   // build side: the (Old, New) pairs
  EXPECT_EQ(plan.counters.at("sequential.receivers"), 100u);
  // The set-oriented path applies sequentially; the dependency-graph
  // counter belongs to the parallel runtime and stays zero here.
  EXPECT_EQ(plan.counters.at("apply.edges"), 0u);
  EXPECT_GT(plan.counters.at("evaluator.rows"), 0u);
  EXPECT_GT(plan.counters.at("evaluator.join_probes"), 0u);
  EXPECT_GT(plan.counters.at("evaluator.join_build_rows"), 0u);
  // Every logical counter is present (zero-valued ones included).
  for (const std::string& name : LogicalCounterNames()) {
    EXPECT_EQ(plan.counters.count(name), 1u) << name;
  }
}

TEST_F(ExplainPayrollTest, AnalyzeCountersAreWorkerCountInvariant) {
  const Instance db = LargeDb();
  auto method = std::move(MakeSalaryFromNewSal(ps_)).value();
  const std::vector<Receiver> receivers = SalaryReceivers(db);
  ASSERT_GE(receivers.size(), 100u);

  ExplainPlan base = std::move(ExplainParallelApply(*method, db, receivers,
                                                    /*analyze=*/true))
                         .value();
  EXPECT_GT(base.counters.at("evaluator.rows"), 0u);
  const std::string fingerprint = LogicalFingerprint(base);

  ThreadPool pool(4);
  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    ExecOptions options;
    options.num_workers = workers;
    options.pool = &pool;
    ExplainPlan sharded =
        std::move(ExplainParallelApply(*method, db, receivers,
                                       /*analyze=*/true, options))
            .value();
    EXPECT_EQ(fingerprint, LogicalFingerprint(sharded))
        << "logical counters drifted at " << workers << " workers";
  }

  // The same invariance through the set-oriented UPDATE entry point.
  ExplainPlan update_base =
      std::move(ExplainSetOrientedUpdate(db, ps_.salary, SalaryUpdateQuery(),
                                         /*analyze=*/true))
          .value();
  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    ExecOptions options;
    options.num_workers = workers;
    options.pool = &pool;
    ExplainPlan sharded = std::move(ExplainSetOrientedUpdate(
                                        db, ps_.salary, SalaryUpdateQuery(),
                                        /*analyze=*/true, options))
                              .value();
    EXPECT_EQ(LogicalFingerprint(update_base), LogicalFingerprint(sharded))
        << "UPDATE counters drifted at " << workers << " workers";
  }
}

TEST(ExplainAnalyzeTest, PartitionedProbeKeepsLogicalCountsExact) {
  // A probe side large enough to cross the evaluator's parallel-probe
  // threshold, so the 8-worker run genuinely partitions the probe — and
  // must still charge exactly the same logical counts as the sequential
  // one (evaluator.probe_partitions, deliberately *not* logical, is the
  // counter that differs).
  const ClassId k = 1;
  Relation r(std::move(RelationScheme::Make({{"a", k}, {"b", k}})).value());
  for (std::uint32_t i = 0; i < 2048; ++i) {
    ASSERT_TRUE(r.Insert(Tuple({ObjectId(k, i), ObjectId(k, i % 64)})).ok());
  }
  Relation s(std::move(RelationScheme::Make({{"c", k}, {"d", k}})).value());
  for (std::uint32_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(
        s.Insert(Tuple({ObjectId(k, i), ObjectId(k, 4096 + i)})).ok());
  }
  Database db;
  db.Put("R", std::move(r));
  db.Put("S", std::move(s));
  const ExprPtr join = ra::JoinEq(ra::Rel("R"), ra::Rel("S"), "b", "c");

  ExplainPlan base = std::move(ExplainExpressionAnalyze(join, db)).value();
  ASSERT_EQ(base.roots.size(), 1u);
  EXPECT_EQ(base.roots[0].op, "HashJoin");
  EXPECT_EQ(base.roots[0].probe_rows, 2048u);
  EXPECT_EQ(base.roots[0].build_rows, 64u);
  EXPECT_EQ(base.roots[0].actual_rows, 2048u);
  EXPECT_EQ(base.counters.at("evaluator.join_probes"), 2048u);
  EXPECT_EQ(base.counters.at("evaluator.join_build_rows"), 64u);

  ThreadPool pool(8);
  ExecOptions options;
  options.num_workers = 8;
  options.pool = &pool;
  ExplainPlan parallel =
      std::move(ExplainExpressionAnalyze(join, db, options)).value();
  EXPECT_EQ(LogicalFingerprint(base), LogicalFingerprint(parallel));
}

/// The 16-seed corpus of parallel_runtime_test, re-run through EXPLAIN
/// ANALYZE: for every drinkers method and random receiver set, the logical
/// fingerprint at 2 and 8 workers equals the single-worker one.
class ExplainSeededCorpusTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExplainSeededCorpusTest, CountersAreWorkerCountInvariant) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  InstanceGenerator gen(&ds.schema, GetParam());
  InstanceGenerator::Options options;
  options.min_objects_per_class = 3;
  options.max_objects_per_class = 8;
  options.edge_probability = 0.4;
  Instance instance = gen.RandomInstance(options);

  std::vector<std::unique_ptr<AlgebraicUpdateMethod>> methods;
  methods.push_back(std::move(MakeAddBar(ds)).value());
  methods.push_back(std::move(MakeFavoriteBar(ds)).value());
  methods.push_back(std::move(MakeDeleteBar(ds)).value());
  methods.push_back(std::move(MakeLikesServesBar(ds)).value());

  ThreadPool pool(4);
  for (const auto& method : methods) {
    std::vector<Receiver> receivers =
        gen.RandomReceiverSet(instance, method->signature(), 12);
    if (receivers.empty()) continue;
    ExplainPlan base = std::move(ExplainParallelApply(*method, instance,
                                                      receivers,
                                                      /*analyze=*/true))
                           .value();
    const std::string fingerprint = LogicalFingerprint(base);
    for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
      ExecOptions opts;
      opts.num_workers = workers;
      opts.pool = &pool;
      ExplainPlan sharded =
          std::move(ExplainParallelApply(*method, instance, receivers,
                                         /*analyze=*/true, opts))
              .value();
      EXPECT_EQ(fingerprint, LogicalFingerprint(sharded))
          << method->name() << " drifted at " << workers << " workers";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExplainSeededCorpusTest,
                         ::testing::Range<std::uint64_t>(1, 17));

// ---------------------------------------------------------------------------
// Decision certificates
// ---------------------------------------------------------------------------

TEST(CertificateTest, AddBarCertificateRecordsEveryContainedTest) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto add_bar = std::move(MakeAddBar(ds)).value();
  DecisionCertificate cert =
      std::move(DecideOrderIndependenceCertified(
                    *add_bar, OrderIndependenceKind::kAbsolute))
          .value();
  EXPECT_TRUE(cert.order_independent);
  EXPECT_EQ(cert.method_name, add_bar->name());
  // Two directions per updated property, all contained, each with its
  // budget accounting.
  ASSERT_EQ(cert.tests.size(), 2 * cert.report.properties.size());
  ASSERT_FALSE(cert.tests.empty());
  for (std::size_t i = 0; i < cert.tests.size(); ++i) {
    const ContainmentCertificate& t = cert.tests[i];
    EXPECT_EQ(t.direction, i % 2 == 0 ? "tt⊆ts" : "ts⊆tt");
    EXPECT_TRUE(t.contained);
    EXPECT_TRUE(t.counterexample.empty());
    EXPECT_GE(t.containment_tests, 1u);
    EXPECT_GT(t.steps, 0u);
  }
  // The certified verdict agrees with the plain decision procedure.
  EXPECT_TRUE(std::move(DecideOrderIndependence(
                            *add_bar, OrderIndependenceKind::kAbsolute))
                  .value());
}

TEST(CertificateTest, FavoriteBarRefutationNamesItsCounterexample) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto favorite = std::move(MakeFavoriteBar(ds)).value();
  DecisionCertificate cert =
      std::move(DecideOrderIndependenceCertified(
                    *favorite, OrderIndependenceKind::kAbsolute))
          .value();
  EXPECT_FALSE(cert.order_independent);
  bool refuted = false;
  for (const ContainmentCertificate& t : cert.tests) {
    if (t.contained) {
      EXPECT_TRUE(t.counterexample.empty());
      continue;
    }
    refuted = true;
    // The refutation carries the witness and the canonical database.
    EXPECT_NE(t.counterexample.find("witness"), std::string::npos)
        << t.counterexample;
    EXPECT_NE(t.counterexample.find("canonical database"), std::string::npos);
  }
  EXPECT_TRUE(refuted);

  // Key-order independence of the same method holds, and its certificate
  // says so with every test contained.
  DecisionCertificate key_cert =
      std::move(DecideOrderIndependenceCertified(
                    *favorite, OrderIndependenceKind::kKeyOrder))
          .value();
  EXPECT_TRUE(key_cert.order_independent);
  for (const ContainmentCertificate& t : key_cert.tests) {
    EXPECT_TRUE(t.contained);
  }
}

TEST(CertificateTest, JsonlAndTextRenderingsAreParseable) {
  DrinkersSchema ds = std::move(MakeDrinkersSchema()).value();
  auto favorite = std::move(MakeFavoriteBar(ds)).value();
  DecisionCertificate cert =
      std::move(DecideOrderIndependenceCertified(
                    *favorite, OrderIndependenceKind::kAbsolute))
          .value();

  std::ostringstream out;
  WriteCertificateJsonl(cert, out);
  std::istringstream lines(out.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ExpectJsonObjectLine(line);
    if (count == 0) {
      EXPECT_NE(line.find("\"type\":\"decision-certificate\""),
                std::string::npos);
      EXPECT_NE(line.find("\"order_independent\":false"), std::string::npos);
      EXPECT_NE(line.find("\"kind\":\"absolute\""), std::string::npos);
    } else {
      EXPECT_NE(line.find("\"type\":\"containment-test\""),
                std::string::npos);
    }
    ++count;
  }
  EXPECT_EQ(count, 1 + cert.tests.size());

  const std::string text = CertificateToText(cert);
  EXPECT_NE(text.find("NOT ORDER INDEPENDENT"), std::string::npos);
  EXPECT_NE(text.find("REFUTED"), std::string::npos);
  EXPECT_NE(text.find(favorite->name()), std::string::npos);
}

TEST(CertificateTest, NonPositiveMethodsAreRejected) {
  // The footnote-8 parity gadget uses difference, so Theorem 5.12's
  // decision procedure (and hence its certificate) does not apply.
  PairSchema s = std::move(MakePairSchema()).value();
  auto parity = std::move(MakeParityMethod(s)).value();
  ASSERT_FALSE(parity->IsPositiveMethod());
  EXPECT_EQ(DecideOrderIndependenceCertified(
                *parity, OrderIndependenceKind::kAbsolute)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace setrec
