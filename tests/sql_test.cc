// Section 7 end to end: cursor-based vs set-oriented DELETE and UPDATE over
// the Employee/Fire/NewSal tables, the coloring explanation of which cursor
// programs are safe, and the Theorem 6.5 code-improvement tool.

#include <gtest/gtest.h>

#include "algebraic/order_independence.h"
#include "relational/builder.h"
#include "algebraic/parallel.h"
#include "coloring/inference.h"
#include "coloring/soundness.h"
#include "sql/engine.h"
#include "sql/improve.h"
#include "sql/table.h"

namespace setrec {
namespace {

class PayrollFixture : public ::testing::Test {
 protected:
  void SetUp() override { ps_ = std::move(MakePayrollSchema()).value(); }

  PayrollSchema ps_;
};

TEST_F(PayrollFixture, BuildAndReadBack) {
  std::vector<EmployeeRow> employees = {
      {1, 100, std::nullopt}, {2, 200, 1}, {3, 100, 1}};
  std::vector<std::uint32_t> fire = {200};
  std::vector<NewSalRow> raises = {{100, 150}};
  Instance db = std::move(BuildPayrollInstance(ps_, employees, fire, raises))
                    .value();
  auto salaries = std::move(ReadSalaries(ps_, db)).value();
  EXPECT_EQ(salaries,
            (std::vector<std::pair<std::uint32_t, std::uint32_t>>{
                {1, 100}, {2, 200}, {3, 100}}));
  EXPECT_EQ(EmployeeIds(ps_, db).size(), 3u);
  // Bad manager reference is rejected.
  std::vector<EmployeeRow> broken = {{1, 100, 42}};
  EXPECT_FALSE(BuildPayrollInstance(ps_, broken, {}, {}).ok());
}

TEST_F(PayrollFixture, SimpleDeleteIsOrderIndependent) {
  // "delete from Employee where Salary in table Fire": the cursor form is
  // order independent (Employee is only deleted, never used — a simple
  // deflationary coloring, Theorem 4.23), and agrees with the set-oriented
  // two-phase form.
  std::vector<EmployeeRow> employees = {
      {1, 100, std::nullopt}, {2, 200, std::nullopt}, {3, 100, std::nullopt},
      {4, 300, std::nullopt}};
  Instance db =
      std::move(BuildPayrollInstance(ps_, employees, {{100, 300}}, {}))
          .value();
  RowPredicate pred = SalaryInFire(ps_);
  auto report =
      std::move(TestCursorDeleteOrders(db, ps_.emp, pred)).value();
  EXPECT_TRUE(report.order_independent);
  Instance set_oriented =
      std::move(SetOrientedDelete(db, ps_.emp, pred)).value();
  ASSERT_TRUE(report.first.has_value());
  EXPECT_EQ(*report.first, set_oriented);
  EXPECT_EQ(EmployeeIds(ps_, set_oriented),
            (std::vector<std::uint32_t>{2}));
}

TEST_F(PayrollFixture, ManagerDeleteCursorIsWrong) {
  // "delete employees whose manager's salary is in Fire": the cursor form
  // is order dependent — an employee survives when their manager was
  // deleted before being inspected. The set-oriented form stays correct.
  // Chain: 3 -> 2 -> 1, with 1's and 2's salaries in Fire.
  std::vector<EmployeeRow> employees = {
      {1, 100, std::nullopt}, {2, 200, 1}, {3, 300, 2}};
  Instance db =
      std::move(BuildPayrollInstance(ps_, employees, {{100, 200}}, {}))
          .value();
  RowPredicate pred = ManagerSalaryInFire(ps_);
  auto report =
      std::move(TestCursorDeleteOrders(db, ps_.emp, pred)).value();
  EXPECT_FALSE(report.order_independent);

  Instance set_oriented =
      std::move(SetOrientedDelete(db, ps_.emp, pred)).value();
  // Both 2 (manager 1, salary 100 ∈ Fire) and 3 (manager 2, salary 200 ∈
  // Fire) are identified against the input and deleted; employee 1 stays.
  EXPECT_EQ(EmployeeIds(ps_, set_oriented),
            (std::vector<std::uint32_t>{1}));
  // Some cursor order disagrees: visiting 2 before 3 removes 2, after
  // which 3's manager no longer exists and 3 survives.
  ASSERT_TRUE(report.disagreement.has_value());
  EXPECT_FALSE(*report.first == *report.disagreement);
}

TEST_F(PayrollFixture, UpdateBViaCursorMatchesSetOrientedA) {
  // Updates (A)/(B): set each salary per NewSal. (B') is key-order
  // independent (Prop 5.8: it reads only NewSal), so cursor order does not
  // matter and the result matches the improved set-oriented form.
  std::vector<EmployeeRow> employees = {
      {1, 100, std::nullopt}, {2, 200, std::nullopt}, {3, 100, std::nullopt}};
  std::vector<NewSalRow> raises = {{100, 150}, {200, 250}};
  Instance db = std::move(BuildPayrollInstance(ps_, employees, {}, raises))
                    .value();
  auto method = std::move(MakeSalaryFromNewSal(ps_)).value();
  EXPECT_TRUE(SatisfiesUpdateIsolationCondition(*method));
  EXPECT_TRUE(std::move(DecideOrderIndependence(
                            *method, OrderIndependenceKind::kKeyOrder))
                  .value());

  // The cursor's key set: {[e, Salary(e)]}.
  std::vector<Receiver> receivers;
  const auto current_salaries = std::move(ReadSalaries(ps_, db)).value();
  for (auto [id, salary] : current_salaries) {
    receivers.push_back(Receiver::Unchecked(
        {ObjectId(ps_.emp, id), ObjectId(ps_.val, salary)}));
  }
  ASSERT_TRUE(IsKeySet(receivers));
  Instance cursor = std::move(CursorUpdate(*method, db, receivers)).value();
  auto expected = std::vector<std::pair<std::uint32_t, std::uint32_t>>{
      {1, 150}, {2, 250}, {3, 150}};
  EXPECT_EQ(std::move(ReadSalaries(ps_, cursor)).value(), expected);

  // Reversed order gives the same outcome (key-order independence).
  std::vector<Receiver> reversed(receivers.rbegin(), receivers.rend());
  Instance cursor_rev =
      std::move(CursorUpdate(*method, db, reversed)).value();
  EXPECT_EQ(cursor, cursor_rev);

  // Theorem 6.5: parallel application coincides on the key set.
  Instance parallel = std::move(ParallelApply(*method, db, receivers))
                          .value();
  EXPECT_EQ(parallel, cursor);
}

TEST_F(PayrollFixture, UpdateCManagerVariantIsOrderDependent) {
  // Update (C): give each employee the manager's new salary. Reads
  // EmpSalary which it updates: order dependent, caught both by Prop 5.8
  // and by the decision procedure, and demonstrated semantically.
  auto method = std::move(MakeSalaryFromManagersNewSal(ps_)).value();
  EXPECT_FALSE(SatisfiesUpdateIsolationCondition(*method));
  ASSERT_TRUE(method->IsPositiveMethod());
  EXPECT_FALSE(std::move(DecideOrderIndependence(
                             *method, OrderIndependenceKind::kKeyOrder))
                   .value());

  // Chain 2 -> 1 (2's manager is 1): updating 1 first changes what 2 sees.
  std::vector<EmployeeRow> employees = {{1, 100, 2}, {2, 200, 1}};
  std::vector<NewSalRow> raises = {{100, 150}, {200, 250}, {150, 175},
                                   {250, 275}};
  Instance db = std::move(BuildPayrollInstance(ps_, employees, {}, raises))
                    .value();
  Receiver e1 = Receiver::Unchecked({ObjectId(ps_.emp, 1)});
  Receiver e2 = Receiver::Unchecked({ObjectId(ps_.emp, 2)});
  std::vector<Receiver> ab = {e1, e2}, ba = {e2, e1};
  Instance iab = std::move(CursorUpdate(*method, db, ab)).value();
  Instance iba = std::move(CursorUpdate(*method, db, ba)).value();
  EXPECT_FALSE(iab == iba);

  // The correct two-phase form: compute (EmpId, New) pairs first, then
  // assign — the set-oriented statement (C'')'s semantics.
  ExprPtr mgr_new = std::move(ImproveCursorUpdate(*method,
                                                  /*rec_source=*/
                                                  ra::Rename(
                                                      ra::Project(
                                                          ra::Rel("Emp"),
                                                          {"Emp"}),
                                                      "Emp", "self"),
                                                  /*verify=*/false))
                        .value()
                        .receiver_query;
  Instance two_phase =
      std::move(SetOrientedUpdate(db, ps_.salary, mgr_new)).value();
  auto salaries = std::move(ReadSalaries(ps_, two_phase)).value();
  // Both computed against the input: 1's manager (2, salary 200) → 250;
  // 2's manager (1, salary 100) → 150.
  EXPECT_EQ(salaries, (std::vector<std::pair<std::uint32_t, std::uint32_t>>{
                          {1, 250}, {2, 150}}));
}

TEST_F(PayrollFixture, ImproveCursorUpdateEmitsTheSetOrientedForm) {
  // The end-of-Section-7 derivation: improving cursor update (B) emits a
  // query equivalent to "select EmpId, New from Employee, NewSal where
  // Salary = Old", and executing it equals the cursor program.
  std::vector<EmployeeRow> employees = {
      {1, 100, std::nullopt}, {2, 200, std::nullopt}, {3, 100, std::nullopt}};
  std::vector<NewSalRow> raises = {{100, 150}, {200, 250}};
  Instance db = std::move(BuildPayrollInstance(ps_, employees, {}, raises))
                    .value();
  auto method = std::move(MakeSalaryFromNewSal(ps_)).value();

  // rec = Employee keyed by salary: ρ(EmpSalary) with (self, arg1) names.
  ExprPtr rec_source = ra::Rename(
      ra::Rename(ra::Rel("EmpSalary"), "Emp", "self"), "Salary", "arg1");
  ImprovedUpdate improved =
      std::move(ImproveCursorUpdate(*method, rec_source, /*verify=*/true))
          .value();
  Instance via_improved =
      std::move(ApplyImprovedUpdate(improved, db)).value();

  std::vector<Receiver> receivers;
  const auto current_salaries = std::move(ReadSalaries(ps_, db)).value();
  for (auto [id, salary] : current_salaries) {
    receivers.push_back(Receiver::Unchecked(
        {ObjectId(ps_.emp, id), ObjectId(ps_.val, salary)}));
  }
  Instance via_cursor =
      std::move(CursorUpdate(*method, db, receivers)).value();
  EXPECT_EQ(via_improved, via_cursor);

  // Improvement refuses order-dependent cursor programs.
  auto manager_method =
      std::move(MakeSalaryFromManagersNewSal(ps_)).value();
  ExprPtr emp_rec =
      ra::Rename(ra::Project(ra::Rel("Emp"), {"Emp"}), "Emp", "self");
  EXPECT_EQ(ImproveCursorUpdate(*manager_method, emp_rec, /*verify=*/true)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(PayrollFixture, SetOrientedUpdateRejectsNonKeyQueries) {
  std::vector<EmployeeRow> employees = {{1, 100, std::nullopt}};
  std::vector<NewSalRow> raises = {{100, 150}, {100, 175}};
  Instance db = std::move(BuildPayrollInstance(ps_, employees, {}, raises))
                    .value();
  // Employee 1 matches two new salaries: not a key set.
  ExprPtr query = ra::Project(
      ra::JoinEq(ra::Rel("EmpSalary"),
                 ra::Project(ra::JoinEq(ra::Rel("NSOld"),
                                        ra::Rename(ra::Rel("NSNew"), "NS",
                                                   "NS2"),
                                        "NS", "NS2"),
                             {"Old", "New"}),
                 "Salary", "Old"),
      {"Emp", "New"});
  EXPECT_EQ(SetOrientedUpdate(db, ps_.salary, query).status().code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace setrec
