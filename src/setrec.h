#ifndef SETREC_SETREC_H_
#define SETREC_SETREC_H_

/// Umbrella header: the whole public surface of the setrec engine in one
/// include. Subsystem headers remain individually includable (and are what
/// the engine's own code uses); this header exists for applications and
/// examples, which usually want "the library", not a curated subset.
///
/// Layering (each group depends only on the ones above it):
///
///   obs/        tracing spans + metrics (zero dependencies)
///   core/       schema, instances, receivers, methods, ExecContext,
///               ExecOptions, sequential application
///   relational/ relational algebra: schemes, relations, expressions,
///               evaluator
///   objrel/     object-relational encoding (Section 4)
///   conjunctive/ conjunctive/positive queries, homomorphisms, chase,
///               containment (Section 5 machinery)
///   algebraic/  algebraic update methods, the order-independence decision
///               procedure (Theorem 5.12), par(E) and ParallelApply
///               (Section 6)
///   coloring/   the coloring soundness framework
///   incremental/ delta-driven materialized receiver views with
///               demand-driven invalidation
///   sql/        SQL-style statements: cursor vs set-oriented semantics
///               (Section 7)
///   text/       parsing and printing of instances and deltas
///   store/      crash-consistent durability: WAL, snapshots, DurableStore

// Observability.
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"

// Core model and execution governance.
#include "core/combination.h"
#include "core/exec_backend.h"
#include "core/exec_context.h"
#include "core/exec_options.h"
#include "core/fault_injection.h"
#include "core/ids.h"
#include "core/instance.h"
#include "core/instance_generator.h"
#include "core/partial_instance.h"
#include "core/printer.h"
#include "core/receiver.h"
#include "core/schema.h"
#include "core/sequential.h"
#include "core/status.h"
#include "core/thread_pool.h"
#include "core/update_method.h"

// Relational algebra.
#include "relational/builder.h"
#include "relational/dependencies.h"
#include "relational/evaluator.h"
#include "relational/expression.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/vectorized/batch.h"
#include "relational/vectorized/engine.h"
#include "relational/vectorized/kernels.h"

// Object-relational encoding.
#include "objrel/encoding.h"

// Conjunctive-query machinery.
#include "conjunctive/chase.h"
#include "conjunctive/conjunctive_query.h"
#include "conjunctive/containment.h"
#include "conjunctive/homomorphism.h"
#include "conjunctive/representative.h"
#include "conjunctive/translate.h"

// Algebraic methods, decision procedure, parallel application.
#include "algebraic/algebraic_method.h"
#include "algebraic/gadgets.h"
#include "algebraic/method_library.h"
#include "algebraic/order_independence.h"
#include "algebraic/parallel.h"
#include "algebraic/update_expression.h"

// Coloring framework.
#include "coloring/coloring.h"
#include "coloring/counterexamples.h"
#include "coloring/inference.h"
#include "coloring/soundness.h"
#include "coloring/witness.h"

// Incremental view maintenance.
#include "incremental/view_cache.h"

// SQL-style statements.
#include "sql/engine.h"
#include "sql/improve.h"
#include "sql/table.h"

// Text round-tripping.
#include "text/parser.h"
#include "text/printer.h"

// Durability.
#include "store/durable_store.h"
#include "store/retry.h"
#include "store/snapshot.h"
#include "store/wal.h"

#endif  // SETREC_SETREC_H_
