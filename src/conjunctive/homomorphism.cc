#include "conjunctive/homomorphism.h"

#include <algorithm>
#include <functional>

namespace setrec {

namespace {

/// Backtracking search for valuations of `query` into `database` extending
/// `binding` (nullopt = unbound). Invokes `on_solution` for every satisfying
/// valuation; stops early when it returns false. Returns an error only on
/// structural problems (missing relation, arity mismatch, unsafe variable).
Status SearchValuations(
    const ConjunctiveQuery& query, const Database& database,
    std::vector<std::optional<ObjectId>> binding,
    const std::function<bool(const std::vector<std::optional<ObjectId>>&)>&
        on_solution,
    ExecContext& ctx) {
  if (query.trivially_false()) return Status::OK();

  std::vector<const Conjunct*> conjuncts;
  // Candidate tuples per conjunct, in canonical (sorted) order: relations
  // iterate in hash order, but which satisfying valuation is *found first*
  // must not depend on it — witnesses and counterexamples are reported to
  // users and asserted by tests.
  std::vector<std::vector<const Tuple*>> relations;
  std::vector<bool> covered(query.num_vars(), false);
  for (const Conjunct& c : query.conjuncts()) {
    SETREC_ASSIGN_OR_RETURN(const Relation* rel, database.Find(c.relation));
    if (rel->scheme().arity() != c.vars.size()) {
      return Status::InvalidArgument("conjunct arity mismatch for relation " +
                                     c.relation);
    }
    conjuncts.push_back(&c);
    relations.push_back(rel->SortedTuples());
    for (VarId v : c.vars) covered[v] = true;
  }
  for (VarId v = 0; v < query.num_vars(); ++v) {
    if (!covered[v] && !binding[v].has_value()) {
      return Status::InvalidArgument(
          "unsafe conjunctive query: variable occurs in no conjunct");
    }
  }

  const auto& neqs = query.non_equalities();
  auto neq_ok = [&](const std::vector<std::optional<ObjectId>>& b) {
    for (const auto& [x, y] : neqs) {
      if (b[x].has_value() && b[y].has_value() && *b[x] == *b[y]) {
        return false;
      }
    }
    return true;
  };

  MetricsRegistry* metrics = ctx.metrics();
  bool keep_going = true;
  Status governed = Status::OK();
  std::function<void(std::size_t)> recurse = [&](std::size_t i) {
    if (!keep_going) return;
    governed = ctx.CheckPoint("homomorphism/valuation-node");
    if (!governed.ok()) {
      keep_going = false;
      return;
    }
    if (i == conjuncts.size()) {
      keep_going = on_solution(binding);
      return;
    }
    const Conjunct& c = *conjuncts[i];
    for (const Tuple* tp : relations[i]) {
      const Tuple& t = *tp;
      if (metrics != nullptr) metrics->engine.hom_candidates.Add(1);
      // Try to unify c.vars with t.
      std::vector<std::pair<VarId, ObjectId>> newly_bound;
      bool ok = true;
      for (std::size_t k = 0; k < c.vars.size(); ++k) {
        const VarId v = c.vars[k];
        const ObjectId val = t.at(k);
        if (val.class_id() != query.var_domain(v)) {
          ok = false;
          break;
        }
        if (binding[v].has_value()) {
          if (!(*binding[v] == val)) {
            ok = false;
            break;
          }
        } else {
          binding[v] = val;
          newly_bound.emplace_back(v, val);
        }
      }
      if (ok && neq_ok(binding)) {
        recurse(i + 1);
      } else if (metrics != nullptr) {
        metrics->engine.hom_pruned.Add(1);
      }
      for (const auto& [v, val] : newly_bound) binding[v] = std::nullopt;
      if (!keep_going) return;
    }
  };
  recurse(0);
  return governed;
}

}  // namespace

Result<Relation> EvaluateConjunctiveQuery(const ConjunctiveQuery& query,
                                          const RelationScheme& scheme,
                                          const Database& database,
                                          ExecContext& ctx) {
  Relation out(scheme);
  if (query.trivially_false()) return out;
  if (scheme.arity() != query.summary().size()) {
    return Status::InvalidArgument("scheme arity does not match summary");
  }
  TraceSpan span = StartSpan(ctx, "homomorphism/evaluate-cq");
  Status collect_status = Status::OK();
  Status s = SearchValuations(
      query, database,
      std::vector<std::optional<ObjectId>>(query.num_vars()),
      [&](const std::vector<std::optional<ObjectId>>& b) {
        std::vector<ObjectId> values;
        values.reserve(query.summary().size());
        for (VarId v : query.summary()) values.push_back(*b[v]);
        Status insert = out.Insert(Tuple(std::move(values)));
        if (!insert.ok()) {
          collect_status = insert;
          return false;
        }
        return true;
      },
      ctx);
  SETREC_RETURN_IF_ERROR(s);
  SETREC_RETURN_IF_ERROR(collect_status);
  return out;
}

Result<bool> TupleInConjunctiveQuery(const ConjunctiveQuery& query,
                                     const Tuple& s,
                                     const Database& database,
                                     ExecContext& ctx) {
  if (query.trivially_false()) return false;
  if (s.arity() != query.summary().size()) {
    return Status::InvalidArgument("tuple arity does not match summary");
  }
  TraceSpan span = StartSpan(ctx, "homomorphism/membership");
  std::vector<std::optional<ObjectId>> binding(query.num_vars());
  for (std::size_t i = 0; i < s.arity(); ++i) {
    const VarId v = query.summary()[i];
    if (s.at(i).class_id() != query.var_domain(v)) return false;
    if (binding[v].has_value() && !(*binding[v] == s.at(i))) return false;
    binding[v] = s.at(i);
  }
  bool found = false;
  SETREC_RETURN_IF_ERROR(SearchValuations(
      query, database, std::move(binding),
      [&](const std::vector<std::optional<ObjectId>>&) {
        found = true;
        return false;  // stop at first witness
      },
      ctx));
  return found;
}

Result<bool> TupleInPositiveQuery(const PositiveQuery& query, const Tuple& s,
                                  const Database& database, ExecContext& ctx) {
  for (const ConjunctiveQuery& q : query.disjuncts) {
    SETREC_ASSIGN_OR_RETURN(bool in,
                            TupleInConjunctiveQuery(q, s, database, ctx));
    if (in) return true;
  }
  return false;
}

Result<Relation> EvaluatePositiveQuery(const PositiveQuery& query,
                                       const Database& database,
                                       ExecContext& ctx) {
  Relation out(query.scheme);
  for (const ConjunctiveQuery& q : query.disjuncts) {
    SETREC_ASSIGN_OR_RETURN(Relation r,
                            EvaluateConjunctiveQuery(q, query.scheme,
                                                     database, ctx));
    for (const Tuple& t : r) SETREC_RETURN_IF_ERROR(out.Insert(t));
  }
  return out;
}

Result<bool> HasHomomorphism(const ConjunctiveQuery& from,
                             const ConjunctiveQuery& to, bool strict_neq,
                             ExecContext& ctx) {
  if (from.trivially_false()) return true;  // ⊥ maps anywhere vacuously
  if (to.trivially_false()) return false;
  if (from.summary().size() != to.summary().size()) {
    return Status::InvalidArgument("summary arities differ");
  }
  TraceSpan span = StartSpan(ctx, "homomorphism/search");
  MetricsRegistry* metrics = ctx.metrics();
  // ψ maps from-vars to to-vars; pin the summary.
  constexpr VarId kUnbound = static_cast<VarId>(-1);
  std::vector<VarId> psi(from.num_vars(), kUnbound);
  for (std::size_t i = 0; i < from.summary().size(); ++i) {
    const VarId f = from.summary()[i];
    const VarId t = to.summary()[i];
    if (from.var_domain(f) != to.var_domain(t)) return false;
    if (psi[f] != kUnbound && psi[f] != t) return false;
    psi[f] = t;
  }
  std::vector<const Conjunct*> fc;
  for (const Conjunct& c : from.conjuncts()) fc.push_back(&c);

  auto neq_ok = [&]() {
    for (const auto& [a, b] : from.non_equalities()) {
      if (psi[a] == kUnbound || psi[b] == kUnbound) continue;
      if (psi[a] == psi[b]) return false;
      if (strict_neq) {
        auto lo = std::min(psi[a], psi[b]);
        auto hi = std::max(psi[a], psi[b]);
        if (!to.non_equalities().contains({lo, hi})) return false;
      }
    }
    return true;
  };

  Status governed = Status::OK();
  std::function<bool(std::size_t)> recurse = [&](std::size_t i) -> bool {
    governed = ctx.CheckPoint("homomorphism/map-node");
    if (!governed.ok()) return false;
    if (i == fc.size()) return neq_ok();
    const Conjunct& c = *fc[i];
    for (const Conjunct& target : to.conjuncts()) {
      if (target.relation != c.relation ||
          target.vars.size() != c.vars.size()) {
        continue;
      }
      if (metrics != nullptr) metrics->engine.hom_candidates.Add(1);
      std::vector<VarId> touched;
      bool ok = true;
      for (std::size_t k = 0; k < c.vars.size(); ++k) {
        const VarId f = c.vars[k];
        const VarId t = target.vars[k];
        if (psi[f] == kUnbound) {
          if (from.var_domain(f) != to.var_domain(t)) {
            ok = false;
            break;
          }
          psi[f] = t;
          touched.push_back(f);
        } else if (psi[f] != t) {
          ok = false;
          break;
        }
      }
      if (ok && neq_ok() && recurse(i + 1)) return true;
      if (!governed.ok()) return false;
      if (metrics != nullptr) metrics->engine.hom_pruned.Add(1);
      for (VarId f : touched) psi[f] = kUnbound;
    }
    return false;
  };
  const bool found = recurse(0);
  SETREC_RETURN_IF_ERROR(governed);
  return found;
}

}  // namespace setrec
