#ifndef SETREC_CONJUNCTIVE_HOMOMORPHISM_H_
#define SETREC_CONJUNCTIVE_HOMOMORPHISM_H_

#include <optional>
#include <vector>

#include "conjunctive/conjunctive_query.h"
#include "core/exec_context.h"
#include "relational/relation.h"

namespace setrec {

// All searches in this header are worst-case exponential backtracking; each
// explored node is an ExecContext checkpoint, so budgets/deadlines/
// cancellation unwind them cleanly with a typed Status.

/// Evaluates a conjunctive query over a database by backtracking search for
/// satisfying valuations ("typed valuations" in Appendix A): every conjunct
/// must map to a database tuple and every non-equality must hold. The query
/// must be *safe* — every variable occurs in some conjunct — which all
/// queries produced by TranslateToPositiveQuery are. Returns the set of
/// summary tuples. `scheme` gives the output relation scheme.
Result<Relation> EvaluateConjunctiveQuery(const ConjunctiveQuery& query,
                                          const RelationScheme& scheme,
                                          const Database& database,
                                          ExecContext& ctx =
                                              ExecContext::Default());

/// Membership test s ∈ q(I) without materializing q(I): binds the summary
/// variables to `s` first, then searches for an extension. This is the inner
/// loop of the Klug containment test (Theorem A.1).
Result<bool> TupleInConjunctiveQuery(const ConjunctiveQuery& query,
                                     const Tuple& s, const Database& database,
                                     ExecContext& ctx =
                                         ExecContext::Default());

/// Membership in a positive query: s ∈ Q(I) iff s ∈ q'(I) for some disjunct
/// q' (Sagiv–Yannakakis).
Result<bool> TupleInPositiveQuery(const PositiveQuery& query, const Tuple& s,
                                  const Database& database,
                                  ExecContext& ctx = ExecContext::Default());

/// Evaluates a positive query (union of its disjuncts' results).
Result<Relation> EvaluatePositiveQuery(const PositiveQuery& query,
                                       const Database& database,
                                       ExecContext& ctx =
                                           ExecContext::Default());

/// Classical homomorphism test (Chandra–Merlin): is there a mapping ψ from
/// `from`'s variables to `to`'s variables with ψ(conjuncts(from)) ⊆
/// conjuncts(to) and ψ(summary(from)) = summary(to)? For equality
/// conjunctive queries this holds iff `to` ⊆ `from` (the Homomorphism
/// Theorem); with non-equalities it is sufficient for containment only, which
/// is why the general test goes through representative instances instead.
/// Non-equalities of `from` must be respected: ψ may not merge ≠-constrained
/// variables, and every image pair must be ≠-entailed... — this predicate
/// checks the purely structural condition on conjuncts and summaries and
/// additionally requires ψ to map `from`'s non-equality pairs to pairs that
/// are either distinct-and-≠-constrained in `to` or syntactically distinct
/// when `strict_neq` is false.
Result<bool> HasHomomorphism(const ConjunctiveQuery& from,
                             const ConjunctiveQuery& to, bool strict_neq,
                             ExecContext& ctx = ExecContext::Default());

}  // namespace setrec

#endif  // SETREC_CONJUNCTIVE_HOMOMORPHISM_H_
