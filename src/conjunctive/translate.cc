#include "conjunctive/translate.h"

#include <algorithm>
#include <utility>

namespace setrec {

namespace {

/// Recursive worker: returns the disjunct list; result schemes are computed
/// by InferScheme at the top level (the recursion re-derives summaries
/// positionally, which is enough).
Result<std::vector<ConjunctiveQuery>> Translate(const ExprPtr& expr,
                                                const Catalog& catalog) {
  switch (expr->op()) {
    case Expr::Op::kRelation: {
      SETREC_ASSIGN_OR_RETURN(const RelationScheme* scheme,
                              catalog.Find(expr->relation_name()));
      ConjunctiveQuery q;
      std::vector<VarId> vars;
      vars.reserve(scheme->arity());
      for (const Attribute& a : scheme->attributes()) {
        vars.push_back(q.NewVar(a.domain));
      }
      q.AddConjunct(expr->relation_name(), vars);
      q.set_summary(std::move(vars));
      return std::vector<ConjunctiveQuery>{std::move(q)};
    }
    case Expr::Op::kDifference:
      return Status::InvalidArgument(
          "difference is not part of the positive algebra (Definition 5.2)");
    case Expr::Op::kUnion: {
      SETREC_ASSIGN_OR_RETURN(std::vector<ConjunctiveQuery> l,
                              Translate(expr->left(), catalog));
      SETREC_ASSIGN_OR_RETURN(std::vector<ConjunctiveQuery> r,
                              Translate(expr->right(), catalog));
      for (ConjunctiveQuery& q : r) l.push_back(std::move(q));
      return l;
    }
    case Expr::Op::kProduct: {
      SETREC_ASSIGN_OR_RETURN(std::vector<ConjunctiveQuery> l,
                              Translate(expr->left(), catalog));
      SETREC_ASSIGN_OR_RETURN(std::vector<ConjunctiveQuery> r,
                              Translate(expr->right(), catalog));
      std::vector<ConjunctiveQuery> out;
      out.reserve(l.size() * r.size());
      for (const ConjunctiveQuery& ql : l) {
        for (const ConjunctiveQuery& qr : r) {
          ConjunctiveQuery q = ql;
          q.Absorb(qr);  // concatenates summaries
          if (!q.trivially_false()) out.push_back(std::move(q));
        }
      }
      return out;
    }
    case Expr::Op::kSelectEq:
    case Expr::Op::kSelectNeq: {
      SETREC_ASSIGN_OR_RETURN(std::vector<ConjunctiveQuery> children,
                              Translate(expr->child(), catalog));
      SETREC_ASSIGN_OR_RETURN(RelationScheme scheme,
                              InferScheme(*expr->child(), catalog));
      SETREC_ASSIGN_OR_RETURN(std::size_t ia, scheme.IndexOf(expr->attr_a()));
      SETREC_ASSIGN_OR_RETURN(std::size_t ib, scheme.IndexOf(expr->attr_b()));
      std::vector<ConjunctiveQuery> out;
      for (ConjunctiveQuery& q : children) {
        const VarId va = q.summary()[ia];
        const VarId vb = q.summary()[ib];
        if (expr->op() == Expr::Op::kSelectEq) {
          q.SubstituteVar(std::max(va, vb), std::min(va, vb));
        } else {
          q.AddNonEquality(va, vb);
        }
        if (!q.trivially_false()) out.push_back(std::move(q));
      }
      return out;
    }
    case Expr::Op::kProject: {
      SETREC_ASSIGN_OR_RETURN(std::vector<ConjunctiveQuery> children,
                              Translate(expr->child(), catalog));
      SETREC_ASSIGN_OR_RETURN(RelationScheme scheme,
                              InferScheme(*expr->child(), catalog));
      std::vector<std::size_t> indices;
      for (const std::string& name : expr->projection()) {
        SETREC_ASSIGN_OR_RETURN(std::size_t i, scheme.IndexOf(name));
        indices.push_back(i);
      }
      for (ConjunctiveQuery& q : children) {
        std::vector<VarId> new_summary;
        new_summary.reserve(indices.size());
        for (std::size_t i : indices) new_summary.push_back(q.summary()[i]);
        q.set_summary(std::move(new_summary));
      }
      return children;
    }
    case Expr::Op::kRename:
      // Renaming does not change variables, only the output attribute name,
      // which lives in the scheme computed at the top level.
      return Translate(expr->child(), catalog);
  }
  return Status::Internal("unknown expression operator");
}

}  // namespace

Result<PositiveQuery> TranslateToPositiveQuery(const ExprPtr& expr,
                                               const Catalog& catalog) {
  SETREC_ASSIGN_OR_RETURN(RelationScheme scheme, InferScheme(*expr, catalog));
  SETREC_ASSIGN_OR_RETURN(std::vector<ConjunctiveQuery> disjuncts,
                          Translate(expr, catalog));
  for (ConjunctiveQuery& q : disjuncts) q.Compact();
  return PositiveQuery{std::move(scheme), std::move(disjuncts)};
}

}  // namespace setrec
