#ifndef SETREC_CONJUNCTIVE_REPRESENTATIVE_H_
#define SETREC_CONJUNCTIVE_REPRESENTATIVE_H_

#include <functional>
#include <utility>
#include <vector>

#include "conjunctive/conjunctive_query.h"
#include "core/exec_context.h"
#include "relational/relation.h"

namespace setrec {

/// Klug's representative valuations (Appendix A / Theorem A.1). Two
/// non-equality-preserving valuations are equivalent when they identify the
/// same pairs of variables; a representative per equivalence class can be
/// described by a partition of the query's variables into blocks, where
///   * only variables of the same domain may share a block (typed
///     valuations over disjoint domains), and
///   * ≠-constrained variables never share a block.
///
/// `block_of[v]` gives the block index of variable v; blocks are numbered
/// globally, so distinct blocks receive distinct canonical values.

/// Enumerates every representative partition, invoking `fn` with the
/// block_of vector; stops early when fn returns false. The number of
/// partitions is a product of (restricted) Bell numbers per domain — small
/// thanks to typing, but still exponential; callers should chase and compact
/// queries first (the ∅→self FDs of the Theorem 5.6 reduction collapse many
/// variables). Every explored partition node is a `ctx` checkpoint; on
/// budget/deadline exhaustion or cancellation the enumeration unwinds and
/// the governance Status is returned.
Status ForEachRepresentativeValuation(
    const ConjunctiveQuery& query,
    const std::function<bool(const std::vector<VarId>& block_of)>& fn,
    ExecContext& ctx = ExecContext::Default());

/// Counts the representative valuations of `query` (bench support).
std::size_t CountRepresentativeValuations(const ConjunctiveQuery& query);

/// A canonical ("magic") instance for a query under a representative
/// partition, together with the image of the summary.
struct CanonicalInstance {
  Database database;
  Tuple summary;
};

/// Builds θ(c(query)) as a Database covering *all* relations of `catalog`
/// (unreferenced ones are empty), with variable v valued as
/// ObjectId(domain(v), block_of[v]).
Result<CanonicalInstance> BuildCanonicalInstance(
    const ConjunctiveQuery& query, const std::vector<VarId>& block_of,
    const Catalog& catalog);

}  // namespace setrec

#endif  // SETREC_CONJUNCTIVE_REPRESENTATIVE_H_
