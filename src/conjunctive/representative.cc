#include "conjunctive/representative.h"

#include <vector>

namespace setrec {

Status ForEachRepresentativeValuation(
    const ConjunctiveQuery& query,
    const std::function<bool(const std::vector<VarId>& block_of)>& fn,
    ExecContext& ctx) {
  const std::size_t n = query.num_vars();
  std::vector<VarId> block_of(n, 0);
  // blocks[i] = (domain, members) of block i, for blocks created so far.
  std::vector<ClassId> block_domain;
  std::vector<std::vector<VarId>> block_members;

  const auto& neqs = query.non_equalities();
  auto conflicts = [&](VarId v, std::size_t block) {
    for (VarId member : block_members[block]) {
      const auto lo = std::min(member, v);
      const auto hi = std::max(member, v);
      if (neqs.contains({lo, hi})) return true;
    }
    return false;
  };

  bool keep_going = true;
  Status governed = Status::OK();
  std::function<void(VarId)> recurse = [&](VarId v) {
    if (!keep_going) return;
    governed = ctx.CheckPoint("representative/valuation");
    if (!governed.ok()) {
      keep_going = false;
      return;
    }
    if (v == n) {
      keep_going = fn(block_of);
      return;
    }
    const ClassId domain = query.var_domain(v);
    // Join an existing compatible block...
    for (std::size_t b = 0; b < block_domain.size(); ++b) {
      if (block_domain[b] != domain || conflicts(v, b)) continue;
      block_of[v] = static_cast<VarId>(b);
      block_members[b].push_back(v);
      recurse(v + 1);
      block_members[b].pop_back();
      if (!keep_going) return;
    }
    // ...or open a fresh block.
    block_of[v] = static_cast<VarId>(block_domain.size());
    block_domain.push_back(domain);
    block_members.push_back({v});
    recurse(v + 1);
    block_domain.pop_back();
    block_members.pop_back();
  };
  recurse(0);
  return governed;
}

std::size_t CountRepresentativeValuations(const ConjunctiveQuery& query) {
  std::size_t count = 0;
  // The default (permissive) context never fires, so the Status is always OK.
  Status s =
      ForEachRepresentativeValuation(query, [&](const std::vector<VarId>&) {
        ++count;
        return true;
      });
  (void)s;
  return count;
}

Result<CanonicalInstance> BuildCanonicalInstance(
    const ConjunctiveQuery& query, const std::vector<VarId>& block_of,
    const Catalog& catalog) {
  Database db;
  for (const std::string& name : catalog.Names()) {
    SETREC_ASSIGN_OR_RETURN(const RelationScheme* scheme, catalog.Find(name));
    db.Put(name, Relation(*scheme));
  }
  auto value_of = [&](VarId v) {
    return ObjectId(query.var_domain(v), block_of[v]);
  };
  for (const Conjunct& c : query.conjuncts()) {
    SETREC_ASSIGN_OR_RETURN(const Relation* existing, db.Find(c.relation));
    Relation rel = *existing;
    std::vector<ObjectId> values;
    values.reserve(c.vars.size());
    for (VarId v : c.vars) values.push_back(value_of(v));
    SETREC_RETURN_IF_ERROR(rel.Insert(Tuple(std::move(values))));
    db.Put(c.relation, std::move(rel));
  }
  std::vector<ObjectId> summary_values;
  summary_values.reserve(query.summary().size());
  for (VarId v : query.summary()) summary_values.push_back(value_of(v));
  return CanonicalInstance{std::move(db), Tuple(std::move(summary_values))};
}

}  // namespace setrec
