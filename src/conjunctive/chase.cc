#include "conjunctive/chase.h"

#include <algorithm>
#include <vector>

namespace setrec {

namespace {

/// Ordering for the fd rule: distinguished variables precede undistinguished
/// ones (Appendix A fixes a total order < on V_d ∪ V_u with V_d first), ties
/// by id. Returns true when a < b.
bool VarLess(const ConjunctiveQuery& q, VarId a, VarId b) {
  const bool da = q.IsDistinguished(a);
  const bool db = q.IsDistinguished(b);
  if (da != db) return da;
  return a < b;
}

/// Resolves the positional indices of the fd's attributes in the relation
/// scheme.
struct FdIndices {
  std::vector<std::size_t> lhs;
  std::size_t rhs;
};

Result<FdIndices> ResolveFd(const FunctionalDependency& fd,
                            const Catalog& catalog) {
  SETREC_ASSIGN_OR_RETURN(const RelationScheme* scheme,
                          catalog.Find(fd.relation));
  FdIndices out;
  for (const std::string& a : fd.lhs) {
    SETREC_ASSIGN_OR_RETURN(std::size_t i, scheme->IndexOf(a));
    out.lhs.push_back(i);
  }
  SETREC_ASSIGN_OR_RETURN(out.rhs, scheme->IndexOf(fd.rhs));
  return out;
}

Result<std::vector<std::size_t>> ResolveInd(const InclusionDependency& ind,
                                            const Catalog& catalog) {
  SETREC_ASSIGN_OR_RETURN(const RelationScheme* from,
                          catalog.Find(ind.from_relation));
  SETREC_ASSIGN_OR_RETURN(const RelationScheme* to,
                          catalog.Find(ind.to_relation));
  if (ind.from_attrs.size() != to->arity()) {
    return Status::InvalidArgument(
        "full inclusion dependency must cover the whole target scheme: " +
        ind.from_relation + " ⊆ " + ind.to_relation);
  }
  std::vector<std::size_t> idx;
  for (const std::string& a : ind.from_attrs) {
    SETREC_ASSIGN_OR_RETURN(std::size_t i, from->IndexOf(a));
    idx.push_back(i);
  }
  return idx;
}

}  // namespace

Result<ConjunctiveQuery> ChaseQuery(ConjunctiveQuery query,
                                    const DependencySet& deps,
                                    const Catalog& catalog, ExecContext& ctx) {
  if (query.trivially_false()) return query;
  TraceSpan span = StartSpan(ctx, "chase/query");
  MetricsRegistry* metrics = ctx.metrics();

  // Pre-resolve attribute positions once.
  std::vector<FdIndices> fd_idx;
  fd_idx.reserve(deps.fds.size());
  for (const auto& fd : deps.fds) {
    SETREC_ASSIGN_OR_RETURN(FdIndices idx, ResolveFd(fd, catalog));
    fd_idx.push_back(std::move(idx));
  }
  std::vector<std::vector<std::size_t>> ind_idx;
  ind_idx.reserve(deps.inds.size());
  for (const auto& ind : deps.inds) {
    SETREC_ASSIGN_OR_RETURN(std::vector<std::size_t> idx,
                            ResolveInd(ind, catalog));
    ind_idx.push_back(std::move(idx));
  }

  bool changed = true;
  while (changed && !query.trivially_false()) {
    SETREC_RETURN_IF_ERROR(ctx.CheckPoint("chase/round"));
    if (metrics != nullptr) metrics->engine.chase_rounds.Add(1);
    changed = false;

    // fd rule.
    for (std::size_t d = 0; d < deps.fds.size() && !changed; ++d) {
      const auto& fd = deps.fds[d];
      const auto& idx = fd_idx[d];
      std::vector<const Conjunct*> rel_conjuncts;
      for (const Conjunct& c : query.conjuncts()) {
        if (c.relation == fd.relation) rel_conjuncts.push_back(&c);
      }
      for (std::size_t i = 0; i < rel_conjuncts.size() && !changed; ++i) {
        for (std::size_t j = i + 1; j < rel_conjuncts.size() && !changed;
             ++j) {
          SETREC_RETURN_IF_ERROR(ctx.CheckPoint("chase/fd-pair"));
          const Conjunct& u = *rel_conjuncts[i];
          const Conjunct& v = *rel_conjuncts[j];
          bool lhs_equal = true;
          for (std::size_t k : idx.lhs) {
            if (u.vars[k] != v.vars[k]) {
              lhs_equal = false;
              break;
            }
          }
          if (!lhs_equal) continue;
          const VarId a = u.vars[idx.rhs];
          const VarId b = v.vars[idx.rhs];
          if (a == b) continue;
          const VarId keep = VarLess(query, a, b) ? a : b;
          const VarId drop = keep == a ? b : a;
          // SubstituteVar marks the query ⊥ when a non-equality collapses,
          // which is the chase's contradiction case.
          query.SubstituteVar(drop, keep);
          if (metrics != nullptr) metrics->engine.chase_fd_merges.Add(1);
          changed = true;
        }
      }
    }
    if (changed || query.trivially_false()) continue;

    // ind rule.
    for (std::size_t d = 0; d < deps.inds.size() && !changed; ++d) {
      const auto& ind = deps.inds[d];
      const auto& idx = ind_idx[d];
      std::vector<Conjunct> to_add;
      for (const Conjunct& c : query.conjuncts()) {
        if (c.relation != ind.from_relation) continue;
        SETREC_RETURN_IF_ERROR(ctx.CheckPoint("chase/ind-candidate"));
        std::vector<VarId> vars;
        vars.reserve(idx.size());
        for (std::size_t k : idx) vars.push_back(c.vars[k]);
        Conjunct candidate{ind.to_relation, std::move(vars)};
        if (!query.conjuncts().contains(candidate)) {
          to_add.push_back(std::move(candidate));
        }
      }
      for (Conjunct& c : to_add) {
        query.AddConjunct(c.relation, std::move(c.vars));
        if (metrics != nullptr) metrics->engine.chase_ind_additions.Add(1);
        changed = true;
      }
    }
  }

  query.Compact();
  return query;
}

}  // namespace setrec
