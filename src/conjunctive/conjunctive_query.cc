#include "conjunctive/conjunctive_query.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

namespace setrec {

VarId ConjunctiveQuery::NewVar(ClassId domain) {
  var_domains_.push_back(domain);
  return static_cast<VarId>(var_domains_.size() - 1);
}

void ConjunctiveQuery::AddConjunct(std::string relation,
                                   std::vector<VarId> vars) {
  for (VarId v : vars) {
    assert(v < var_domains_.size());
    (void)v;
  }
  conjuncts_.insert(Conjunct{std::move(relation), std::move(vars)});
}

void ConjunctiveQuery::AddNonEquality(VarId a, VarId b) {
  assert(a < var_domains_.size() && b < var_domains_.size());
  if (a == b) {
    trivially_false_ = true;
    return;
  }
  if (var_domains_[a] != var_domains_[b]) return;  // vacuously true
  if (a > b) std::swap(a, b);
  non_equalities_.emplace(a, b);
}

bool ConjunctiveQuery::IsDistinguished(VarId v) const {
  return std::find(summary_.begin(), summary_.end(), v) != summary_.end();
}

void ConjunctiveQuery::SubstituteVar(VarId from, VarId to) {
  if (from == to) return;
  for (VarId& v : summary_) {
    if (v == from) v = to;
  }
  std::set<Conjunct> new_conjuncts;
  for (Conjunct c : conjuncts_) {
    for (VarId& v : c.vars) {
      if (v == from) v = to;
    }
    new_conjuncts.insert(std::move(c));
  }
  conjuncts_ = std::move(new_conjuncts);
  std::set<std::pair<VarId, VarId>> new_neq;
  for (auto [a, b] : non_equalities_) {
    if (a == from) a = to;
    if (b == from) b = to;
    if (a == b) {
      trivially_false_ = true;
      return;
    }
    if (a > b) std::swap(a, b);
    new_neq.emplace(a, b);
  }
  non_equalities_ = std::move(new_neq);
}

void ConjunctiveQuery::Compact() {
  std::map<VarId, VarId> remap;
  std::vector<ClassId> new_domains;
  auto touch = [&](VarId v) {
    auto [it, inserted] = remap.emplace(
        v, static_cast<VarId>(new_domains.size()));
    if (inserted) new_domains.push_back(var_domains_[v]);
    return it->second;
  };
  for (VarId& v : summary_) v = touch(v);
  std::set<Conjunct> new_conjuncts;
  for (Conjunct c : conjuncts_) {
    for (VarId& v : c.vars) v = touch(v);
    new_conjuncts.insert(std::move(c));
  }
  std::set<std::pair<VarId, VarId>> new_neq;
  for (auto [a, b] : non_equalities_) {
    // Drop non-equalities over variables that vanished from conjuncts and
    // summary? They cannot vanish: substitution rewrites them. Touch both.
    VarId na = touch(a);
    VarId nb = touch(b);
    if (na > nb) std::swap(na, nb);
    new_neq.emplace(na, nb);
  }
  conjuncts_ = std::move(new_conjuncts);
  non_equalities_ = std::move(new_neq);
  var_domains_ = std::move(new_domains);
}

VarId ConjunctiveQuery::Absorb(const ConjunctiveQuery& other) {
  const VarId offset = static_cast<VarId>(var_domains_.size());
  var_domains_.insert(var_domains_.end(), other.var_domains_.begin(),
                      other.var_domains_.end());
  for (Conjunct c : other.conjuncts_) {
    for (VarId& v : c.vars) v = v + offset;
    conjuncts_.insert(std::move(c));
  }
  for (auto [a, b] : other.non_equalities_) {
    non_equalities_.emplace(a + offset, b + offset);
  }
  for (VarId v : other.summary_) summary_.push_back(v + offset);
  if (other.trivially_false_) trivially_false_ = true;
  return offset;
}

std::string ConjunctiveQuery::ToString() const {
  std::ostringstream out;
  if (trivially_false_) return "⊥";
  out << "ans(";
  for (std::size_t i = 0; i < summary_.size(); ++i) {
    if (i > 0) out << ",";
    out << "x" << summary_[i];
  }
  out << ") :- ";
  bool first = true;
  for (const Conjunct& c : conjuncts_) {
    if (!first) out << ", ";
    first = false;
    out << c.relation << "(";
    for (std::size_t i = 0; i < c.vars.size(); ++i) {
      if (i > 0) out << ",";
      out << "x" << c.vars[i];
    }
    out << ")";
  }
  for (const auto& [a, b] : non_equalities_) {
    if (!first) out << ", ";
    first = false;
    out << "x" << a << "≠x" << b;
  }
  return out.str();
}

}  // namespace setrec
