#include "conjunctive/containment.h"

#include "conjunctive/chase.h"
#include "conjunctive/homomorphism.h"

namespace setrec {

PositiveQuery SimplifyPositiveQuery(PositiveQuery query, ExecContext& ctx) {
  std::vector<ConjunctiveQuery> live;
  for (ConjunctiveQuery& q : query.disjuncts) {
    if (!q.trivially_false()) live.push_back(std::move(q));
  }
  std::vector<bool> alive(live.size(), true);
  for (std::size_t j = 0; j < live.size(); ++j) {
    for (std::size_t i = 0; i < live.size() && alive[j]; ++i) {
      if (i == j || !alive[i]) continue;
      // A failed (or governance-interrupted) subsumption test just leaves
      // the disjunct unpruned — conservative and sound.
      Result<bool> hom = HasHomomorphism(live[i], live[j],
                                         /*strict_neq=*/true, ctx);
      if (hom.ok() && *hom) alive[j] = false;
    }
  }
  PositiveQuery out{std::move(query.scheme), {}};
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (alive[i]) out.disjuncts.push_back(std::move(live[i]));
  }
  return out;
}

Result<ContainmentResult> CheckContainment(const PositiveQuery& q1_in,
                                           const PositiveQuery& q2_in,
                                           const DependencySet& deps,
                                           const Catalog& catalog,
                                           bool simplify, ExecContext& ctx) {
  if (!(q1_in.scheme == q2_in.scheme)) {
    return Status::InvalidArgument(
        "containment requires identical result schemes");
  }
  TraceSpan span = StartSpan(ctx, "containment/check");
  if (ctx.metrics() != nullptr) {
    ctx.metrics()->engine.containment_tests.Add(1);
  }
  const PositiveQuery q1 =
      simplify ? SimplifyPositiveQuery(q1_in, ctx) : q1_in;
  const PositiveQuery q2 =
      simplify ? SimplifyPositiveQuery(q2_in, ctx) : q2_in;
  ContainmentResult result;
  for (const ConjunctiveQuery& disjunct : q1.disjuncts) {
    SETREC_ASSIGN_OR_RETURN(ConjunctiveQuery chased,
                            ChaseQuery(disjunct, deps, catalog, ctx));
    if (chased.trivially_false()) continue;  // unsatisfiable under Σ

    Status inner_status = Status::OK();
    bool found_counterexample = false;
    Status enumerated = ForEachRepresentativeValuation(
        chased, [&](const std::vector<VarId>& block_of) {
          Result<CanonicalInstance> canon =
              BuildCanonicalInstance(chased, block_of, catalog);
          if (!canon.ok()) {
            inner_status = canon.status();
            return false;
          }
          // Skip canonical instances violating the FDs: they denote no legal
          // database (see header comment). INDs and disjointness hold by
          // construction.
          for (const FunctionalDependency& fd : deps.fds) {
            Result<bool> sat = Satisfies(canon->database, fd);
            if (!sat.ok()) {
              inner_status = sat.status();
              return false;
            }
            if (!*sat) return true;  // continue with next valuation
          }
          Result<bool> member =
              TupleInPositiveQuery(q2, canon->summary, canon->database, ctx);
          if (!member.ok()) {
            inner_status = member.status();
            return false;
          }
          if (!*member) {
            found_counterexample = true;
            result.counterexample = std::move(canon->database);
            result.counterexample_tuple = std::move(canon->summary);
            return false;
          }
          return true;
        },
        ctx);
    SETREC_RETURN_IF_ERROR(enumerated);
    SETREC_RETURN_IF_ERROR(inner_status);
    if (found_counterexample) {
      result.contained = false;
      return result;
    }
  }
  result.contained = true;
  return result;
}

Result<bool> ContainedUnder(const PositiveQuery& q1, const PositiveQuery& q2,
                            const DependencySet& deps, const Catalog& catalog,
                            ExecContext& ctx) {
  SETREC_ASSIGN_OR_RETURN(
      ContainmentResult r,
      CheckContainment(q1, q2, deps, catalog, /*simplify=*/true, ctx));
  return r.contained;
}

Result<bool> EquivalentUnder(const PositiveQuery& q1, const PositiveQuery& q2,
                             const DependencySet& deps,
                             const Catalog& catalog, ExecContext& ctx) {
  SETREC_ASSIGN_OR_RETURN(bool a, ContainedUnder(q1, q2, deps, catalog, ctx));
  if (!a) return false;
  return ContainedUnder(q2, q1, deps, catalog, ctx);
}

}  // namespace setrec
