#ifndef SETREC_CONJUNCTIVE_CHASE_H_
#define SETREC_CONJUNCTIVE_CHASE_H_

#include "conjunctive/conjunctive_query.h"
#include "core/exec_context.h"
#include "relational/dependencies.h"
#include "relational/schema.h"

namespace setrec {

/// The typed chase of a conjunctive query with respect to functional and
/// full inclusion dependencies (Appendix A):
///
///   fd rule  — for σ = R : X → A and conjuncts R(u), R(v) with u[X] = v[X]
///              but u[A] ≠ v[A], substitute the larger variable by the least
///              one under the ordering that puts distinguished variables
///              first. If the two variables are ≠-constrained the query
///              becomes ⊥ (trivially false).
///   ind rule — for σ = R[X] ⊆ S and a conjunct R(u), add the conjunct
///              S(u[X]) when missing.
///
/// The process always terminates for this dependency class (full inds add
/// conjuncts over existing variables only; fd steps strictly reduce the
/// number of distinct variables) and is Church–Rosser, so the result is
/// canonical. By Lemma A.2 the chased query is Σ-equivalent to the input.
///
/// Disjointness dependencies need no rule: the typed variable model makes
/// them unviolable.
///
/// The result is compacted (contiguous variable ids); summary positions are
/// preserved.
///
/// Every chase round and every fd-pair / ind-candidate scan is a `ctx`
/// checkpoint, so a step budget or deadline bounds the (polynomial but
/// potentially large) fixpoint with a typed kResourceExhausted /
/// kDeadlineExceeded instead of an unbounded stall.
Result<ConjunctiveQuery> ChaseQuery(ConjunctiveQuery query,
                                    const DependencySet& deps,
                                    const Catalog& catalog,
                                    ExecContext& ctx = ExecContext::Default());

}  // namespace setrec

#endif  // SETREC_CONJUNCTIVE_CHASE_H_
