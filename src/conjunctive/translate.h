#ifndef SETREC_CONJUNCTIVE_TRANSLATE_H_
#define SETREC_CONJUNCTIVE_TRANSLATE_H_

#include "conjunctive/conjunctive_query.h"
#include "relational/expression.h"

namespace setrec {

/// Translates a *positive* relational algebra expression (Definition 5.2)
/// into an equivalent positive query — a union of conjunctive queries with
/// non-equalities (Appendix A). The translation is the standard one:
///
///   relation R        → one CQ with a single conjunct over fresh variables;
///   union             → concatenation of disjunct lists;
///   product           → pairwise disjoint-variable merge of disjuncts;
///   σ_{a=b}           → unify the two summary variables;
///   σ_{a≠b}           → add a non-equality (dropping the disjunct when both
///                       attributes already share a variable);
///   projection        → shrink the summary (dropped variables stay
///                       existential);
///   renaming          → rename the output attribute only.
///
/// Trivially false disjuncts are dropped. Fails with InvalidArgument if the
/// expression uses difference or does not type-check against `catalog`.
Result<PositiveQuery> TranslateToPositiveQuery(const ExprPtr& expr,
                                               const Catalog& catalog);

}  // namespace setrec

#endif  // SETREC_CONJUNCTIVE_TRANSLATE_H_
