#ifndef SETREC_CONJUNCTIVE_CONJUNCTIVE_QUERY_H_
#define SETREC_CONJUNCTIVE_CONJUNCTIVE_QUERY_H_

#include <compare>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/ids.h"
#include "core/status.h"
#include "relational/schema.h"

namespace setrec {

/// Index of a variable within one ConjunctiveQuery.
using VarId = std::uint32_t;

/// One literal R(z1, ..., zh) of a conjunctive query (Appendix A).
struct Conjunct {
  std::string relation;
  std::vector<VarId> vars;

  friend auto operator<=>(const Conjunct&, const Conjunct&) = default;
};

/// A typed conjunctive query with non-equalities (Appendix A): a summary of
/// distinguished variables, a set of conjuncts, and a set of non-equalities
/// z_i ≠ z_j between variables of the same domain. Variables carry a class
/// domain; variables of different domains are never compared or unified,
/// which is how the disjointness dependencies of Section 5.1 are enforced.
///
/// A query may become *trivially false* (the paper's ⊥): adding z ≠ z, or
/// having an fd chase step demand the merge of ≠-constrained variables,
/// marks the query unsatisfiable.
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  /// Creates a fresh variable of the given domain.
  VarId NewVar(ClassId domain);

  std::size_t num_vars() const { return var_domains_.size(); }
  ClassId var_domain(VarId v) const { return var_domains_[v]; }

  /// Appends a conjunct. Variable ids must be valid; arity/domain agreement
  /// with a catalog is checked by callers that have one (see translate.h).
  void AddConjunct(std::string relation, std::vector<VarId> vars);

  /// Adds the non-equality a ≠ b. If a == b, the query becomes trivially
  /// false. Cross-domain non-equalities are vacuous (they always hold) and
  /// are dropped.
  void AddNonEquality(VarId a, VarId b);

  void set_summary(std::vector<VarId> summary) {
    summary_ = std::move(summary);
  }
  const std::vector<VarId>& summary() const { return summary_; }

  const std::set<Conjunct>& conjuncts() const { return conjuncts_; }
  const std::set<std::pair<VarId, VarId>>& non_equalities() const {
    return non_equalities_;
  }

  bool trivially_false() const { return trivially_false_; }
  void MarkTriviallyFalse() { trivially_false_ = true; }

  /// True when `v` occurs in the summary (a distinguished variable).
  bool IsDistinguished(VarId v) const;

  /// Applies the substitution that maps `from` to `to` everywhere (conjuncts,
  /// non-equalities, summary). Used by selection-equality translation and by
  /// the fd chase rule. May mark the query trivially false when a
  /// non-equality collapses.
  void SubstituteVar(VarId from, VarId to);

  /// Renumbers variables so that ids are contiguous and only used variables
  /// remain; returns the old→new mapping size. Purely cosmetic compaction
  /// after chases; callers holding VarIds must re-derive them.
  void Compact();

  /// Merges `other` into this query with disjoint variables; returns the
  /// offset added to `other`'s variable ids. Summaries are concatenated.
  VarId Absorb(const ConjunctiveQuery& other);

  /// Human-readable rendering for diagnostics, e.g.
  /// "ans(x0,x1) :- Df(x0,x2), self(x0), x1≠x2".
  std::string ToString() const;

 private:
  std::vector<ClassId> var_domains_;
  std::vector<VarId> summary_;
  std::set<Conjunct> conjuncts_;
  std::set<std::pair<VarId, VarId>> non_equalities_;
  bool trivially_false_ = false;
};

/// A positive query (Appendix A): a finite union of conjunctive queries over
/// the same result scheme. An empty disjunct list denotes the empty query.
struct PositiveQuery {
  RelationScheme scheme;
  std::vector<ConjunctiveQuery> disjuncts;
};

}  // namespace setrec

#endif  // SETREC_CONJUNCTIVE_CONJUNCTIVE_QUERY_H_
