#ifndef SETREC_CONJUNCTIVE_CONTAINMENT_H_
#define SETREC_CONJUNCTIVE_CONTAINMENT_H_

#include <optional>

#include "conjunctive/conjunctive_query.h"
#include "conjunctive/representative.h"
#include "core/exec_context.h"
#include "relational/dependencies.h"

namespace setrec {

/// Outcome of a containment test, with a counterexample when it fails: a
/// database satisfying the dependencies on which some tuple is produced by
/// the left query but not the right one.
struct ContainmentResult {
  bool contained = false;
  std::optional<Database> counterexample;
  std::optional<Tuple> counterexample_tuple;
};

/// Decides q1 ⊆_Σ q2 for positive queries under functional and full
/// inclusion dependencies (Lemma 5.13). The procedure combines the three
/// classical ingredients exactly as Appendix A does:
///
///   1. union (Sagiv–Yannakakis): test each disjunct of q1 separately;
///   2. dependencies (Johnson–Klug, Lemma A.3): chase the disjunct first;
///   3. non-equalities (Klug, Theorem A.1): enumerate representative
///      valuations of the chased disjunct and test membership of the summary
///      image in q2 on each canonical instance.
///
/// One refinement is needed for completeness: a representative valuation may
/// merge the left-hand sides of a functional dependency without merging its
/// right-hand side; such a canonical instance violates Σ, denotes no legal
/// database, and must be skipped. (Full inclusion dependencies hold in every
/// canonical instance by chase construction, and disjointness holds by
/// typing, so only the FDs need this filter.)
///
/// Both inputs are first run through SimplifyPositiveQuery unless
/// `simplify` is false (exposed for the ablation benchmark — the Theorem
/// 5.6 reduction produces unions with heavily subsumed branches, and
/// pruning them shrinks both the outer disjunct loop and the inner
/// membership tests).
///
/// The chase, the representative-valuation enumeration, and the inner
/// membership searches all run under `ctx`; with a step budget or deadline
/// the worst-case-exponential procedure returns kResourceExhausted /
/// kDeadlineExceeded instead of running away.
Result<ContainmentResult> CheckContainment(const PositiveQuery& q1,
                                           const PositiveQuery& q2,
                                           const DependencySet& deps,
                                           const Catalog& catalog,
                                           bool simplify = true,
                                           ExecContext& ctx =
                                               ExecContext::Default());

/// Semantic-preserving pruning of a union of conjunctive queries:
/// trivially-false disjuncts are dropped, and a disjunct q_j is dropped
/// whenever another live disjunct q_i maps homomorphically into it with
/// summaries aligned and every non-equality of q_i landing on a
/// ≠-constrained pair of q_j — the Chandra–Merlin condition, which remains
/// *sufficient* for q_j ⊆ q_i in the presence of non-equalities (and
/// subsumption composes, so pruning in one pass is sound).
///
/// Simplification is an optimization only, so governance errors inside a
/// subsumption test simply leave that disjunct unpruned (conservative and
/// sound) rather than failing the caller.
PositiveQuery SimplifyPositiveQuery(PositiveQuery query,
                                    ExecContext& ctx = ExecContext::Default());

/// Convenience: the boolean verdict of CheckContainment.
Result<bool> ContainedUnder(const PositiveQuery& q1, const PositiveQuery& q2,
                            const DependencySet& deps, const Catalog& catalog,
                            ExecContext& ctx = ExecContext::Default());

/// q1 ≡_Σ q2 (mutual containment).
Result<bool> EquivalentUnder(const PositiveQuery& q1, const PositiveQuery& q2,
                             const DependencySet& deps,
                             const Catalog& catalog,
                             ExecContext& ctx = ExecContext::Default());

}  // namespace setrec

#endif  // SETREC_CONJUNCTIVE_CONTAINMENT_H_
