#include "coloring/counterexamples.h"

#include <algorithm>

namespace setrec {

namespace {

/// Fresh (absent) objects of class `cls`, chosen deterministically *above*
/// every present index so the method stays a function of the instance and
/// never resurrects a previously deleted object.
std::vector<ObjectId> FreshObjects(const Instance& instance, ClassId cls,
                                   std::size_t count) {
  std::uint32_t candidate = 0;
  for (ObjectId o : instance.objects(cls)) {
    candidate = std::max(candidate, o.index() + 1);
  }
  std::vector<ObjectId> out;
  while (out.size() < count) out.push_back(ObjectId(cls, candidate++));
  return out;
}

Result<Instance> TwoObjectInstance(const Schema* schema, ClassId r) {
  Instance instance(schema);
  SETREC_RETURN_IF_ERROR(instance.AddObject(ObjectId(r, 0)));
  SETREC_RETURN_IF_ERROR(instance.AddObject(ObjectId(r, 1)));
  return instance;
}

}  // namespace

Result<Counterexample> MakeCounterexample(const Schema* schema,
                                          CounterexampleCase which,
                                          SchemaItem item) {
  const bool node_case = which == CounterexampleCase::kNodeUD ||
                         which == CounterexampleCase::kNodeUCD ||
                         which == CounterexampleCase::kNodeUC;
  if (node_case != item.is_class()) {
    return Status::InvalidArgument(
        "node cases need a class item, edge cases a property item");
  }

  Counterexample out{nullptr, Instance(schema), {}};

  if (node_case) {
    const ClassId r = item.id();
    if (!schema->HasClass(r)) {
      return Status::InvalidArgument("unknown class");
    }
    MethodSignature signature({r, r});
    switch (which) {
      case CounterexampleCase::kNodeUD:
        out.method = MakeMethod(
            signature, "ce_node_ud",
            [r](const Instance& in, const Receiver& t) -> Result<Instance> {
              Instance next = in;
              if (in.objects(r).size() == 2) {
                SETREC_RETURN_IF_ERROR(
                    next.RemoveObject(t.receiving_object()));
              }
              return next;
            });
        break;
      case CounterexampleCase::kNodeUCD:
        out.method = MakeMethod(
            signature, "ce_node_ucd",
            [r](const Instance& in, const Receiver& t) -> Result<Instance> {
              Instance next = in;
              if (in.objects(r).size() == 2) {
                SETREC_RETURN_IF_ERROR(
                    next.RemoveObject(t.receiving_object()));
              } else {
                for (ObjectId o : FreshObjects(in, r, 2)) {
                  SETREC_RETURN_IF_ERROR(next.AddObject(o));
                }
              }
              return next;
            });
        break;
      case CounterexampleCase::kNodeUC:
        out.method = MakeMethod(
            signature, "ce_node_uc",
            [r](const Instance& in, const Receiver& t) -> Result<Instance> {
              Instance next = in;
              if (in.objects(r).size() != 2) return next;
              const std::size_t count =
                  t.receiving_object() == ObjectId(r, 0) ? 2 : 1;
              for (ObjectId o : FreshObjects(in, r, count)) {
                SETREC_RETURN_IF_ERROR(next.AddObject(o));
              }
              return next;
            });
        break;
      default:
        return Status::Internal("unreachable");
    }
    SETREC_ASSIGN_OR_RETURN(out.instance, TwoObjectInstance(schema, r));
    // The diagonal pairs {[n,n], [m,m]} of the proof's receiver square:
    // with the full product every enumeration eventually hits a receiver
    // mentioning a deleted object, making all orders undefined (which
    // footnote 2 counts as agreement); the diagonal pair keeps both orders
    // defined and disagreeing.
    for (std::uint32_t i = 0; i < 2; ++i) {
      out.receivers.push_back(
          Receiver::Unchecked({ObjectId(r, i), ObjectId(r, i)}));
    }
    return out;
  }

  // Edge cases over (R, a, A).
  const PropertyId a = item.id();
  if (!schema->HasProperty(a)) {
    return Status::InvalidArgument("unknown property");
  }
  const Schema::PropertyDef& def = schema->property(a);
  const ClassId r = def.source;
  const ClassId cls_a = def.target;
  MethodSignature signature({r, cls_a});

  auto delete_other_a_edges = [a](Instance& next, ObjectId self,
                                  ObjectId arg) {
    std::vector<std::pair<ObjectId, ObjectId>> to_delete;
    for (const auto& [src, dst] : next.edges(a)) {
      if (!(src == self && dst == arg)) to_delete.emplace_back(src, dst);
    }
    for (const auto& [src, dst] : to_delete) {
      Status s = next.RemoveEdge(src, a, dst);
      (void)s;
    }
  };

  switch (which) {
    case CounterexampleCase::kEdgeUD:
      out.method = MakeMethod(
          signature, "ce_edge_ud",
          [a, delete_other_a_edges](const Instance& in,
                                    const Receiver& t) -> Result<Instance> {
            Instance next = in;
            if (in.HasEdge(t.receiving_object(), a, t.arg(0))) {
              delete_other_a_edges(next, t.receiving_object(), t.arg(0));
            }
            return next;
          });
      break;
    case CounterexampleCase::kEdgeUCD:
      out.method = MakeMethod(
          signature, "ce_edge_ucd",
          [a, delete_other_a_edges](const Instance& in,
                                    const Receiver& t) -> Result<Instance> {
            Instance next = in;
            if (!in.HasEdge(t.receiving_object(), a, t.arg(0))) {
              SETREC_RETURN_IF_ERROR(
                  next.AddEdge(t.receiving_object(), a, t.arg(0)));
            }
            delete_other_a_edges(next, t.receiving_object(), t.arg(0));
            return next;
          });
      break;
    case CounterexampleCase::kEdgeUC:
      out.method = MakeMethod(
          signature, "ce_edge_uc",
          [a](const Instance& in, const Receiver& t) -> Result<Instance> {
            Instance next = in;
            if (in.edges(a).empty()) {
              SETREC_RETURN_IF_ERROR(
                  next.AddEdge(t.receiving_object(), a, t.arg(0)));
            }
            return next;
          });
      break;
    default:
      return Status::Internal("unreachable");
  }

  // Demonstration instance: two R-objects and one A-object; for the
  // deletion-flavoured cases both R-objects point at the A-object.
  Instance instance(schema);
  const ObjectId n(r, 0);
  const ObjectId n2(r, 1);
  const ObjectId m(cls_a, cls_a == r ? 2 : 0);
  SETREC_RETURN_IF_ERROR(instance.AddObject(n));
  SETREC_RETURN_IF_ERROR(instance.AddObject(n2));
  SETREC_RETURN_IF_ERROR(instance.AddObject(m));
  if (which != CounterexampleCase::kEdgeUC) {
    SETREC_RETURN_IF_ERROR(instance.AddEdge(n, a, m));
    SETREC_RETURN_IF_ERROR(instance.AddEdge(n2, a, m));
    out.receivers.push_back(Receiver::Unchecked({n, m}));
    out.receivers.push_back(Receiver::Unchecked({n2, m}));
  } else {
    out.receivers.push_back(Receiver::Unchecked({n, m}));
    out.receivers.push_back(Receiver::Unchecked({n2, m}));
  }
  out.instance = std::move(instance);
  return out;
}

}  // namespace setrec
