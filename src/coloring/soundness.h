#ifndef SETREC_COLORING_SOUNDNESS_H_
#define SETREC_COLORING_SOUNDNESS_H_

#include <string>
#include <vector>

#include "coloring/coloring.h"

namespace setrec {

/// The two axiomatizations of "using information of a type" studied in
/// Section 4. They are each other's dual: under the inflationary one
/// (Definition 4.7) deleting implies using (Lemma 4.11); under the
/// deflationary one (Definition 4.16) creating implies using (Lemma 4.20).
enum class UseAxiomatization {
  kInflationary,  // Definition 4.7:  M(I,t) = G(M(I|U, t) ∪ (I − I|U))
  kDeflationary,  // Definition 4.16: M(G(I−{x}), t) = G(M(I,t) − {x})
};

/// A soundness check outcome with human-readable violation descriptions.
struct SoundnessReport {
  bool sound = false;
  std::vector<std::string> violations;
};

/// Checks whether a coloring is sound — i.e. the minimal coloring of *some*
/// update method (Definition 4.12) — under the chosen axiomatization, by the
/// exact structural criteria the paper proves:
///
/// Proposition 4.13 (inflationary):
///   (1) node d ⇒ node u; edge d ⇒ edge u or an incident node d;
///   (2) edge c ⇒ both incident nodes u or c;
///   (3) node B d ⇒ every incident edge colored neither d nor u has its
///       other endpoint colored u;
///   (4) at least one node u;
///   (5) edge u ⇒ both incident nodes u.
///
/// Proposition 4.22 (deflationary):
///   (1) node c ⇒ node u; edge c ⇒ edge u or an incident node c;
///   (2) node B d ⇒ every incident edge is colored u or c, or its other
///       endpoint is colored u;
///   (3) at least one node u;
///   (4) edge u ⇒ both incident nodes u.
SoundnessReport CheckSoundness(const Coloring& coloring,
                               UseAxiomatization axiomatization);

/// Convenience wrapper around CheckSoundness.
bool IsSoundColoring(const Coloring& coloring,
                     UseAxiomatization axiomatization);

/// The Theorem 4.14 / Theorem 4.23 verdict for a *sound* coloring κ: all
/// update methods having κ as minimal coloring are order independent iff κ
/// is simple. (For unsound colorings the question is vacuous — no method has
/// them as minimal coloring.)
bool SoundColoringGuaranteesOrderIndependence(const Coloring& coloring);

/// Lemma 4.11 / 4.20 corollaries: a method whose minimal coloring is simple
/// is inflationary (I ⊆ M(I,t), Proposition 4.10) under the inflationary
/// axiomatization, and deflationary (M(I,t) ⊆ I, Proposition 4.19) under the
/// deflationary one. This predicate states which containment a simple sound
/// coloring implies; returns the strings "inflationary"/"deflationary" for
/// reporting.
const char* UniformBehaviourOfSimpleColorings(UseAxiomatization ax);

}  // namespace setrec

#endif  // SETREC_COLORING_SOUNDNESS_H_
