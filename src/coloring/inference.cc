#include "coloring/inference.h"

#include <optional>

#include "core/partial_instance.h"
#include "objrel/encoding.h"

namespace setrec {

namespace {

/// Applies the method, mapping Diverges (and receiver invalidity) to
/// "undefined". Other errors propagate.
Result<std::optional<Instance>> TryApply(const UpdateMethod& method,
                                         const Instance& instance,
                                         const Receiver& receiver) {
  Result<Instance> r = method.Apply(instance, receiver);
  if (r.ok()) return std::optional<Instance>(std::move(r).value());
  if (r.status().code() == StatusCode::kDiverges ||
      r.status().code() == StatusCode::kFailedPrecondition) {
    return std::optional<Instance>();
  }
  return r.status();
}

/// Item-wise difference a − b, recorded as colors on `target`.
void RecordDifference(const Instance& a, const Instance& b, Color color,
                      Coloring& target) {
  const Schema& schema = a.schema();
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    for (ObjectId o : a.objects(c)) {
      if (!b.HasObject(o)) target.Add(SchemaItem::Class(c), color);
    }
  }
  for (PropertyId p = 0; p < schema.num_properties(); ++p) {
    for (const auto& [src, dst] : a.edges(p)) {
      if (!b.HasEdge(src, p, dst)) target.Add(SchemaItem::Property(p), color);
    }
  }
}

}  // namespace

Result<Coloring> ObserveCreateDelete(
    const UpdateMethod& method, const Schema& schema,
    const ColoringValidationOptions& options) {
  Coloring observed(&schema);
  InstanceGenerator gen(&schema, options.seed);
  for (int trial = 0; trial < options.trials; ++trial) {
    Instance instance = gen.RandomInstance(options.generator);
    std::vector<Receiver> receivers = gen.RandomReceiverSet(
        instance, method.signature(), options.max_receivers_per_instance);
    for (const Receiver& t : receivers) {
      SETREC_ASSIGN_OR_RETURN(std::optional<Instance> result,
                              TryApply(method, instance, t));
      if (!result.has_value()) continue;
      RecordDifference(*result, instance, Color::kCreate, observed);
      RecordDifference(instance, *result, Color::kDelete, observed);
    }
  }
  return observed;
}

Result<bool> ValidateUseSet(const UpdateMethod& method, const Schema& schema,
                            const SchemaItemSet& use_set,
                            UseAxiomatization axiomatization,
                            const ColoringValidationOptions& options) {
  if (!use_set.IsEdgeClosed(schema)) {
    return Status::InvalidArgument(
        "use set must contain the incident classes of its properties");
  }
  for (std::size_t i = 0; i < method.signature().size(); ++i) {
    if (!use_set.ContainsClass(method.signature().class_at(i))) {
      return Status::InvalidArgument(
          "use set must contain every signature class");
    }
  }

  InstanceGenerator gen(&schema, options.seed);
  for (int trial = 0; trial < options.trials; ++trial) {
    Instance instance = gen.RandomInstance(options.generator);
    std::vector<Receiver> receivers = gen.RandomReceiverSet(
        instance, method.signature(), options.max_receivers_per_instance);
    for (const Receiver& t : receivers) {
      SETREC_ASSIGN_OR_RETURN(std::optional<Instance> full,
                              TryApply(method, instance, t));
      if (axiomatization == UseAxiomatization::kInflationary) {
        // M(I,t) =? G(M(I|X, t) ∪ (I − I|X)).
        PartialInstance restricted =
            PartialInstance::Restrict(instance, use_set);
        Instance restricted_instance = restricted.G();
        SETREC_ASSIGN_OR_RETURN(
            std::optional<Instance> partial,
            TryApply(method, restricted_instance, t));
        if (full.has_value() != partial.has_value()) return false;
        if (!full.has_value()) continue;
        PartialInstance rest =
            PartialInstance::FromInstance(instance).Difference(restricted);
        Instance rhs =
            PartialInstance::FromInstance(*partial).Union(rest).G();
        if (!(*full == rhs)) return false;
      } else {
        // For every item x with label outside X:
        // M(G(I−{x}), t) =? G(M(I,t) − {x}).
        std::vector<PartialInstance> removals;
        for (ClassId c = 0; c < schema.num_classes(); ++c) {
          if (use_set.ContainsClass(c)) continue;
          for (ObjectId o : instance.objects(c)) {
            PartialInstance x(&schema);
            SETREC_RETURN_IF_ERROR(x.AddObject(o));
            removals.push_back(std::move(x));
          }
        }
        for (PropertyId p = 0; p < schema.num_properties(); ++p) {
          if (use_set.ContainsProperty(p)) continue;
          for (const auto& [src, dst] : instance.edges(p)) {
            PartialInstance x(&schema);
            SETREC_RETURN_IF_ERROR(x.AddEdge(src, p, dst));
            removals.push_back(std::move(x));
          }
        }
        for (const PartialInstance& x : removals) {
          Instance without =
              PartialInstance::FromInstance(instance).Difference(x).G();
          SETREC_ASSIGN_OR_RETURN(std::optional<Instance> left,
                                  TryApply(method, without, t));
          std::optional<Instance> right;
          if (full.has_value()) {
            right = PartialInstance::FromInstance(*full).Difference(x).G();
          }
          if (left.has_value() != right.has_value()) return false;
          if (left.has_value() && !(*left == *right)) return false;
        }
      }
    }
  }
  return true;
}

Result<ColoringValidation> ValidateColoringClaim(
    const UpdateMethod& method, const Schema& schema, const Coloring& coloring,
    UseAxiomatization axiomatization,
    const ColoringValidationOptions& options) {
  ColoringValidation v;
  // Conditions 1-2 of Theorem 4.8: observed creations/deletions covered.
  SETREC_ASSIGN_OR_RETURN(Coloring observed,
                          ObserveCreateDelete(method, schema, options));
  for (SchemaItem item : schema.AllItems()) {
    const std::string name = item.is_class()
                                 ? schema.class_name(item.id())
                                 : schema.property(item.id()).name;
    if (observed.Get(item).Has(Color::kCreate) &&
        !coloring.Get(item).Has(Color::kCreate)) {
      v.issues.push_back("method creates " + name + " but it lacks color c");
    }
    if (observed.Get(item).Has(Color::kDelete) &&
        !coloring.Get(item).Has(Color::kDelete)) {
      v.issues.push_back("method deletes " + name + " but it lacks color d");
    }
  }
  // Condition 4: signature classes colored u.
  for (std::size_t i = 0; i < method.signature().size(); ++i) {
    const ClassId c = method.signature().class_at(i);
    if (!coloring.GetClass(c).Has(Color::kUse)) {
      v.issues.push_back("signature class " + schema.class_name(c) +
                         " is not colored u");
    }
  }
  // Condition 5: u-edges have u-endpoints.
  for (PropertyId p = 0; p < schema.num_properties(); ++p) {
    if (!coloring.GetProperty(p).Has(Color::kUse)) continue;
    const Schema::PropertyDef& def = schema.property(p);
    if (!coloring.GetClass(def.source).Has(Color::kUse) ||
        !coloring.GetClass(def.target).Has(Color::kUse)) {
      v.issues.push_back("u-edge " + def.name + " has a non-u endpoint");
    }
  }
  // Condition 3: the use-set axiom, tested on samples.
  if (v.issues.empty()) {
    SETREC_ASSIGN_OR_RETURN(
        bool use_ok, ValidateUseSet(method, schema, coloring.UseSet(),
                                    axiomatization, options));
    if (!use_ok) {
      v.issues.push_back(
          "the use-set axiom fails on a sampled instance (condition 3)");
    }
  }
  v.consistent = v.issues.empty();
  return v;
}

Coloring SyntacticColoring(const AlgebraicUpdateMethod& method) {
  const Schema& schema = *method.context().schema;
  Coloring coloring(&schema);
  // Signature classes are used.
  for (std::size_t i = 0; i < method.signature().size(); ++i) {
    coloring.Add(SchemaItem::Class(method.signature().class_at(i)),
                 Color::kUse);
  }
  for (const UpdateStatement& s : method.statements()) {
    // Replacement may both create and delete a-edges.
    coloring.Add(SchemaItem::Property(s.property), Color::kCreate);
    coloring.Add(SchemaItem::Property(s.property), Color::kDelete);
    for (const std::string& rel : ReferencedRelations(*s.expression)) {
      // Map relation names back to schema items; self/argi name signature
      // classes, which are already u.
      for (ClassId c = 0; c < schema.num_classes(); ++c) {
        if (schema.class_name(c) == rel) {
          coloring.Add(SchemaItem::Class(c), Color::kUse);
        }
      }
      for (PropertyId p = 0; p < schema.num_properties(); ++p) {
        if (PropertyRelationName(schema, p) == rel) {
          coloring.Add(SchemaItem::Property(p), Color::kUse);
        }
      }
    }
  }
  // Close u under edge incidence (condition 5) and color d-edges' sources u
  // (Lemma 4.11: the receiving class is already u).
  for (PropertyId p = 0; p < schema.num_properties(); ++p) {
    if (coloring.GetProperty(p).Has(Color::kUse)) {
      const Schema::PropertyDef& def = schema.property(p);
      coloring.Add(SchemaItem::Class(def.source), Color::kUse);
      coloring.Add(SchemaItem::Class(def.target), Color::kUse);
    }
  }
  return coloring;
}

}  // namespace setrec
