#ifndef SETREC_COLORING_COLORING_H_
#define SETREC_COLORING_COLORING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/ids.h"
#include "core/item_set.h"
#include "core/schema.h"

namespace setrec {

/// The three update-behaviour annotations of Section 4: an update may use,
/// create, or delete information of a schema item's type.
enum class Color : std::uint8_t {
  kUse = 1 << 0,
  kCreate = 1 << 1,
  kDelete = 1 << 2,
};

/// A subset of {u, c, d}.
class ColorSet {
 public:
  constexpr ColorSet() : bits_(0) {}
  constexpr ColorSet(std::initializer_list<Color> colors) : bits_(0) {
    for (Color c : colors) bits_ |= static_cast<std::uint8_t>(c);
  }

  constexpr bool Has(Color c) const {
    return (bits_ & static_cast<std::uint8_t>(c)) != 0;
  }
  constexpr ColorSet With(Color c) const {
    ColorSet out = *this;
    out.bits_ |= static_cast<std::uint8_t>(c);
    return out;
  }
  constexpr ColorSet Without(Color c) const {
    ColorSet out = *this;
    out.bits_ &= static_cast<std::uint8_t>(~static_cast<std::uint8_t>(c));
    return out;
  }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr int size() const {
    return (bits_ & 1) + ((bits_ >> 1) & 1) + ((bits_ >> 2) & 1);
  }
  constexpr bool IsSubsetOf(ColorSet other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  constexpr ColorSet Meet(ColorSet other) const {
    ColorSet out;
    out.bits_ = bits_ & other.bits_;
    return out;
  }
  constexpr ColorSet Join(ColorSet other) const {
    ColorSet out;
    out.bits_ = bits_ | other.bits_;
    return out;
  }

  /// "ucd" subset rendering, "∅" when empty.
  std::string ToString() const;

  friend constexpr bool operator==(ColorSet, ColorSet) = default;

  /// All 8 subsets, for exhaustive sweeps.
  static std::vector<ColorSet> All();

 private:
  std::uint8_t bits_;
};

inline constexpr ColorSet kNoColors{};
inline constexpr ColorSet kU{Color::kUse};
inline constexpr ColorSet kC{Color::kCreate};
inline constexpr ColorSet kD{Color::kDelete};
inline constexpr ColorSet kUC{Color::kUse, Color::kCreate};
inline constexpr ColorSet kUD{Color::kUse, Color::kDelete};
inline constexpr ColorSet kCD{Color::kCreate, Color::kDelete};
inline constexpr ColorSet kUCD{Color::kUse, Color::kCreate, Color::kDelete};

/// A coloring of a schema (Definition 4.6): a function assigning each schema
/// item a subset of {u, c, d}. Colorings over the same schema form a lattice
/// under item-wise inclusion (used in the proof of Theorem 4.8).
class Coloring {
 public:
  /// The empty coloring of `schema` (all items uncolored). The schema must
  /// outlive the coloring.
  explicit Coloring(const Schema* schema);

  const Schema& schema() const { return *schema_; }

  ColorSet Get(SchemaItem item) const;
  ColorSet GetClass(ClassId c) const { return Get(SchemaItem::Class(c)); }
  ColorSet GetProperty(PropertyId p) const {
    return Get(SchemaItem::Property(p));
  }

  void Set(SchemaItem item, ColorSet colors);
  void Add(SchemaItem item, Color color);

  /// Simple (Definition 4.9): every item has at most one color.
  bool IsSimple() const;

  /// The set U of items colored u.
  SchemaItemSet UseSet() const;
  /// Items colored c / d.
  SchemaItemSet CreateSet() const;
  SchemaItemSet DeleteSet() const;

  /// Item-wise lattice operations and comparison (κ ⊑ κ').
  Coloring Meet(const Coloring& other) const;
  Coloring Join(const Coloring& other) const;
  bool IsSubsetOf(const Coloring& other) const;

  /// The full coloring assigning {u,c,d} everywhere (top of the lattice).
  static Coloring Full(const Schema* schema);

  /// "D:{u} Ba:{u} f:{c} ..." rendering with schema names.
  std::string ToString() const;

  friend bool operator==(const Coloring& a, const Coloring& b) {
    return a.schema_ == b.schema_ && a.assignment_ == b.assignment_;
  }

 private:
  const Schema* schema_;
  std::vector<ColorSet> assignment_;  // classes then properties, by AllItems
  std::size_t IndexOf(SchemaItem item) const;
};

}  // namespace setrec

#endif  // SETREC_COLORING_COLORING_H_
