#ifndef SETREC_COLORING_COUNTEREXAMPLES_H_
#define SETREC_COLORING_COUNTEREXAMPLES_H_

#include <memory>
#include <vector>

#include "coloring/coloring.h"
#include "core/receiver.h"
#include "core/update_method.h"

namespace setrec {

/// The six order-*dependent* method families from the only-if direction of
/// Theorem 4.14 (reused verbatim by Theorem 4.23). Each family corresponds
/// to one way a sound coloring can fail to be simple: a node colored {u,d},
/// {u,c,d} or {u,c}, or an edge colored {u,d}, {u,c,d} or {u,c}.
enum class CounterexampleCase {
  kNodeUD,   // (1) if |class R| = 2, delete the receiving object
  kNodeUCD,  // (2) as (1), but add two fresh R-objects when the test fails
  kNodeUC,   // (3) if |class R| = 2: add two fresh objects when the receiver
             //     is the designated object, else one
  kEdgeUD,   // (4) if (self, a, arg) present, delete all other a-edges
  kEdgeUCD,  // (5) as (4), but when absent, add it and delete all others
  kEdgeUC,   // (6) if there are no a-edges at all, add (self, a, arg)
};

/// A counterexample package: the method plus the paper's demonstration
/// instance and receiver set on which the two orders of application provably
/// disagree.
struct Counterexample {
  std::unique_ptr<UpdateMethod> method;
  Instance instance;
  std::vector<Receiver> receivers;
};

/// Builds the counterexample for a node case over class `r` (signature
/// [R, R]) or an edge case over property `a` (signature [R, A] where the
/// edge is (R, a, A)). The demonstration instance follows the proof:
/// node cases use the two-object instance {n, m} with receivers
/// {n,m} × {n,m}; kEdgeUD/kEdgeUCD use R → A ← R with receivers
/// {[n,m] : (n,a,m) ∈ I}; kEdgeUC uses two R-objects, one A-object and all
/// receivers.
Result<Counterexample> MakeCounterexample(const Schema* schema,
                                          CounterexampleCase which,
                                          SchemaItem item);

}  // namespace setrec

#endif  // SETREC_COLORING_COUNTEREXAMPLES_H_
