#include "coloring/witness.h"

#include <map>
#include <set>

namespace setrec {

WitnessObjects::WitnessObjects(const Schema& schema) {
  std::vector<std::uint32_t> next(schema.num_classes(), 3);  // 0..2 reserved
  for (PropertyId e = 0; e < schema.num_properties(); ++e) {
    const Schema::PropertyDef& def = schema.property(e);
    edge1_.push_back(ObjectId(def.source, next[def.source]++));
    edge2_.push_back(ObjectId(def.target, next[def.target]++));
    edge3_.push_back(ObjectId(def.source, next[def.source]++));
    edge4_.push_back(ObjectId(def.target, next[def.target]++));
  }
}

namespace {

bool HasU(ColorSet c) { return c.Has(Color::kUse); }
bool HasC(ColorSet c) { return c.Has(Color::kCreate); }
bool HasD(ColorSet c) { return c.Has(Color::kDelete); }

/// Static analysis of which schema items the witness actions *test* (branch
/// on the presence of). Exactly-{u} items not in these sets receive the
/// divergence guard.
struct TestedItems {
  std::set<ClassId> classes;
  std::set<PropertyId> properties;
};

/// Tests performed by a provisional node deletion of an X-object (shared by
/// both axiomatizations; the caller restricts when it is invoked).
void ProvisionalDeleteTests(const Schema& schema, const Coloring& k, ClassId x,
                            UseAxiomatization ax, TestedItems& tested) {
  for (PropertyId f : schema.IncidentProperties(x)) {
    ColorSet fc = k.GetProperty(f);
    const Schema::PropertyDef& def = schema.property(f);
    const ClassId other = def.source == x ? def.target : def.source;
    if (HasD(fc)) continue;
    if (HasU(fc)) {
      tested.properties.insert(f);
    } else if (ax == UseAxiomatization::kDeflationary && HasC(fc) &&
               !HasU(k.GetClass(other))) {
      // The Unimplemented corner; flagged at construction time.
    } else {
      tested.classes.insert(other);
    }
  }
}

TestedItems ComputeTestedItems(const Schema& schema, const Coloring& k,
                               UseAxiomatization ax) {
  TestedItems tested;
  const bool infl = ax == UseAxiomatization::kInflationary;
  for (ClassId x = 0; x < schema.num_classes(); ++x) {
    ColorSet cs = k.GetClass(x);
    if (infl) {
      if (HasC(cs) && HasU(cs)) tested.classes.insert(x);  // tests o_u^X
      if (HasD(cs) && HasU(cs)) ProvisionalDeleteTests(schema, k, x, ax, tested);
    } else {
      if (HasC(cs)) tested.classes.insert(x);  // tests o_c^X (Example 4.21)
      if (HasD(cs)) {
        if (HasU(cs)) tested.classes.insert(x);  // gated on o_u^X
        ProvisionalDeleteTests(schema, k, x, ax, tested);
      }
    }
  }
  for (PropertyId e = 0; e < schema.num_properties(); ++e) {
    ColorSet cs = k.GetProperty(e);
    const Schema::PropertyDef& def = schema.property(e);
    if (HasC(cs)) {
      // Provisional edge creation branches on endpoint presence whenever the
      // endpoint is not itself created.
      if (infl || HasU(cs)) {
        if (!HasC(k.GetClass(def.source))) tested.classes.insert(def.source);
        if (!HasC(k.GetClass(def.target))) tested.classes.insert(def.target);
      }
      if (HasU(cs)) tested.properties.insert(e);  // tests (o3, e, o4)
    }
    if (!infl && HasD(cs) && HasU(cs) && !HasC(cs)) {
      tested.properties.insert(e);  // deflationary {u,d}: gated removal
    }
    if (infl && HasD(cs) && !HasU(cs)) {
      // inflationary edge {d}/{c,d}: provisional deletion of an endpoint.
      const ClassId victim =
          HasD(k.GetClass(def.source)) ? def.source : def.target;
      ProvisionalDeleteTests(schema, k, victim, ax, tested);
    }
  }
  return tested;
}

/// The witness method. Tests are evaluated against the *input* instance;
/// mutations are accumulated onto a copy, so the actions of different items
/// (which involve pairwise distinct fixed objects) commute, and the
/// create/remove pair of a {c,d,u} edge acts as a presence toggle.
class WitnessMethod final : public UpdateMethod {
 public:
  WitnessMethod(const Schema* schema, Coloring coloring,
                UseAxiomatization ax, MethodSignature signature)
      : UpdateMethod(std::move(signature), "witness"),
        schema_(schema),
        coloring_(std::move(coloring)),
        ax_(ax),
        objects_(*schema),
        tested_(ComputeTestedItems(*schema, coloring_, ax)) {}

  Result<Instance> Apply(const Instance& in,
                         const Receiver& receiver) const override {
    SETREC_RETURN_IF_ERROR(CheckReceiver(in, receiver));
    const Schema& schema = *schema_;
    const bool infl = ax_ == UseAxiomatization::kInflationary;

    // Divergence guards for untested exactly-{u} items.
    for (ClassId x = 0; x < schema.num_classes(); ++x) {
      if (coloring_.GetClass(x) == kU && !tested_.classes.contains(x) &&
          !in.HasObject(objects_.NodeU(x))) {
        return Status::Diverges("missing designated u-object of class " +
                                schema.class_name(x));
      }
    }
    for (PropertyId e = 0; e < schema.num_properties(); ++e) {
      if (coloring_.GetProperty(e) == kU && !tested_.properties.contains(e) &&
          !in.HasEdge(objects_.Edge1(e), e, objects_.Edge2(e))) {
        return Status::Diverges("missing designated u-edge " +
                                schema.property(e).name);
      }
    }

    Instance out = in;
    // Node actions.
    for (ClassId x = 0; x < schema.num_classes(); ++x) {
      ColorSet cs = coloring_.GetClass(x);
      if (infl) {
        if (HasC(cs) && !HasU(cs)) {
          SETREC_RETURN_IF_ERROR(out.AddObject(objects_.NodeC(x)));
        } else if (HasC(cs) && HasU(cs)) {
          if (in.HasObject(objects_.NodeU(x))) {
            SETREC_RETURN_IF_ERROR(out.AddObject(objects_.NodeC(x)));
          }
        }
        if (HasD(cs) && HasU(cs)) {
          SETREC_RETURN_IF_ERROR(ProvisionalDeleteNode(in, out, x,
                                                       objects_.NodeD(x)));
        }
      } else {
        if (HasC(cs)) {
          // Example 4.21: add o_c^X when absent, plus the edges of any
          // incident {c}-but-not-{u} properties to all present other-side
          // objects.
          if (!in.HasObject(objects_.NodeC(x))) {
            SETREC_RETURN_IF_ERROR(out.AddObject(objects_.NodeC(x)));
            SETREC_RETURN_IF_ERROR(AddLocalCreationEdges(in, out, x));
          }
        }
        if (HasD(cs)) {
          bool gate = true;
          if (HasU(cs)) gate = in.HasObject(objects_.NodeU(x));
          if (gate) {
            SETREC_RETURN_IF_ERROR(ProvisionalDeleteNode(in, out, x,
                                                         objects_.NodeD(x)));
          }
        }
      }
    }
    // Edge actions.
    for (PropertyId e = 0; e < schema.num_properties(); ++e) {
      ColorSet cs = coloring_.GetProperty(e);
      const Schema::PropertyDef& def = schema.property(e);
      if (infl) {
        if (HasC(cs) && !HasU(cs)) {
          SETREC_RETURN_IF_ERROR(ProvisionalCreateEdge(in, out, e));
        } else if (HasC(cs) && HasU(cs) && !HasD(cs)) {
          if (in.HasEdge(objects_.Edge3(e), e, objects_.Edge4(e))) {
            SETREC_RETURN_IF_ERROR(ProvisionalCreateEdge(in, out, e));
          }
        } else if (HasC(cs) && HasU(cs) && HasD(cs)) {
          SETREC_RETURN_IF_ERROR(ProvisionalCreateEdge(in, out, e));
        }
        if (HasD(cs) && !HasU(cs)) {
          const ClassId victim =
              HasD(coloring_.GetClass(def.source)) ? def.source : def.target;
          const ObjectId o = victim == def.source ? objects_.Edge1(e)
                                                  : objects_.Edge2(e);
          SETREC_RETURN_IF_ERROR(ProvisionalDeleteNode(in, out, victim, o));
        } else if (HasD(cs) && HasU(cs)) {
          // Gated on the *input* so that the {c,d,u} create/remove pair
          // toggles presence instead of the removal always winning.
          if (in.HasEdge(objects_.Edge1(e), e, objects_.Edge2(e))) {
            SETREC_RETURN_IF_ERROR(
                out.RemoveEdge(objects_.Edge1(e), e, objects_.Edge2(e)));
          }
        }
      } else {
        // Deflationary. Pure-{c} creation is handled by the incident
        // created node's action (AddLocalCreationEdges).
        if (HasC(cs) && HasU(cs)) {
          if (in.HasEdge(objects_.Edge3(e), e, objects_.Edge4(e))) {
            SETREC_RETURN_IF_ERROR(ProvisionalCreateEdge(in, out, e));
          }
        }
        if (HasD(cs)) {
          bool gate = true;
          if (HasU(cs) && !HasC(cs)) {
            gate = in.HasEdge(objects_.Edge3(e), e, objects_.Edge4(e));
          }
          if (gate && in.HasEdge(objects_.Edge1(e), e, objects_.Edge2(e))) {
            SETREC_RETURN_IF_ERROR(
                out.RemoveEdge(objects_.Edge1(e), e, objects_.Edge2(e)));
          }
        }
      }
    }
    return out;
  }

 private:
  /// Deletes `victim` (class x) and its incident edges unless a presence
  /// test succeeds (proof of Proposition 4.13, case {d,u}).
  Status ProvisionalDeleteNode(const Instance& in, Instance& out, ClassId x,
                               ObjectId victim) const {
    if (!in.HasObject(victim)) return Status::OK();
    for (PropertyId f : schema_->IncidentProperties(x)) {
      ColorSet fc = coloring_.GetProperty(f);
      const Schema::PropertyDef& def = schema_->property(f);
      const ClassId other = def.source == x ? def.target : def.source;
      if (HasD(fc)) continue;
      if (HasU(fc)) {
        // Any f-edge incident to the victim blocks the deletion.
        for (const auto& [src, dst] : in.edges(f)) {
          if (src == victim || dst == victim) return Status::OK();
        }
      } else {
        // Any object of the other class blocks the deletion.
        if (!in.objects(other).empty()) return Status::OK();
      }
    }
    return out.RemoveObject(victim);
  }

  /// Adds (o1, e, o2) together with missing endpoints, except when an
  /// endpoint is absent and its class is not colored c (proof of Proposition
  /// 4.13, edge case {c}).
  Status ProvisionalCreateEdge(const Instance& in, Instance& out,
                               PropertyId e) const {
    const Schema::PropertyDef& def = schema_->property(e);
    const ObjectId o1 = objects_.Edge1(e);
    const ObjectId o2 = objects_.Edge2(e);
    if (!in.HasObject(o1) && !HasC(coloring_.GetClass(def.source))) {
      return Status::OK();
    }
    if (!in.HasObject(o2) && !HasC(coloring_.GetClass(def.target))) {
      return Status::OK();
    }
    SETREC_RETURN_IF_ERROR(out.AddObject(o1));
    SETREC_RETURN_IF_ERROR(out.AddObject(o2));
    return out.AddEdge(o1, e, o2);
  }

  /// Deflationary Example 4.21: when the created node o_c^X appears, every
  /// incident property colored c but not u gains edges from/to all present
  /// objects of the other class.
  Status AddLocalCreationEdges(const Instance& in, Instance& out,
                               ClassId x) const {
    for (PropertyId f : schema_->IncidentProperties(x)) {
      ColorSet fc = coloring_.GetProperty(f);
      if (!HasC(fc) || HasU(fc)) continue;
      const Schema::PropertyDef& def = schema_->property(f);
      if (def.source == x) {
        for (ObjectId b : in.objects(def.target)) {
          SETREC_RETURN_IF_ERROR(out.AddObject(b));
          SETREC_RETURN_IF_ERROR(out.AddEdge(objects_.NodeC(x), f, b));
        }
      }
      if (def.target == x) {
        for (ObjectId a : in.objects(def.source)) {
          SETREC_RETURN_IF_ERROR(out.AddObject(a));
          SETREC_RETURN_IF_ERROR(out.AddEdge(a, f, objects_.NodeC(x)));
        }
      }
    }
    return Status::OK();
  }

  const Schema* schema_;
  Coloring coloring_;
  UseAxiomatization ax_;
  WitnessObjects objects_;
  TestedItems tested_;
};

}  // namespace

Result<std::unique_ptr<UpdateMethod>> MakeWitnessMethod(
    const Schema* schema, const Coloring& coloring,
    UseAxiomatization axiomatization) {
  SoundnessReport report = CheckSoundness(coloring, axiomatization);
  if (!report.sound) {
    std::string msg = "coloring is not sound:";
    for (const std::string& v : report.violations) msg += " " + v + ";";
    return Status::InvalidArgument(std::move(msg));
  }
  if (axiomatization == UseAxiomatization::kDeflationary) {
    // The corner the paper only sketches: a d-node with an incident edge
    // colored exactly {c} whose other endpoint is not u.
    for (ClassId x = 0; x < schema->num_classes(); ++x) {
      if (!coloring.GetClass(x).Has(Color::kDelete)) continue;
      for (PropertyId f : schema->IncidentProperties(x)) {
        ColorSet fc = coloring.GetProperty(f);
        const Schema::PropertyDef& def = schema->property(f);
        const ClassId other = def.source == x ? def.target : def.source;
        if (fc.Has(Color::kCreate) && !fc.Has(Color::kUse) &&
            !fc.Has(Color::kDelete) &&
            !coloring.GetClass(other).Has(Color::kUse)) {
          return Status::Unimplemented(
              "deflationary witness for a d-node with a pure-{c} incident "
              "edge whose other endpoint is not u");
        }
      }
    }
  }
  // Signature [X] for the least u-colored node (soundness guarantees one).
  ClassId receiving = 0;
  for (ClassId x = 0; x < schema->num_classes(); ++x) {
    if (coloring.GetClass(x).Has(Color::kUse)) {
      receiving = x;
      break;
    }
  }
  return std::unique_ptr<UpdateMethod>(
      new WitnessMethod(schema, coloring, axiomatization,
                        MethodSignature({receiving})));
}

}  // namespace setrec
