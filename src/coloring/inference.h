#ifndef SETREC_COLORING_INFERENCE_H_
#define SETREC_COLORING_INFERENCE_H_

#include <string>
#include <vector>

#include "algebraic/algebraic_method.h"
#include "coloring/coloring.h"
#include "coloring/soundness.h"
#include "core/instance_generator.h"
#include "core/update_method.h"

namespace setrec {

/// Empirical analysis of update behaviour. The minimal coloring of a method
/// is a semantic property and undecidable in general (Section 4), so these
/// functions are refutation-based: a reported violation is a proof, a clean
/// pass is only evidence.
struct ColoringValidationOptions {
  std::uint64_t seed = 1;
  int trials = 24;
  InstanceGenerator::Options generator;
  /// Also try instances seeded with the witness objects' id range (the
  /// interesting fixed objects live at small indices, which the generator
  /// covers by default).
  std::size_t max_receivers_per_instance = 4;
};

/// Runs the method on random (I, t) samples and records which item types
/// were observed being created or deleted (Definition 4.2). The u colors of
/// the result are always empty — use is not observable from input/output
/// pairs alone.
Result<Coloring> ObserveCreateDelete(const UpdateMethod& method,
                                     const Schema& schema,
                                     const ColoringValidationOptions& options);

/// Tests the chosen "uses only information of type X" axiom on random
/// samples:
///   inflationary (Def 4.7):  M(I,t) = G(M(I|X, t) ∪ (I − I|X));
///   deflationary (Def 4.16): M(G(I−{x}), t) = G(M(I,t) − {x}) for every
///                            item x of I whose label is not in X.
/// Requires X to be edge-closed and to contain the signature classes.
/// Divergence is treated as undefinedness: both sides must diverge together.
Result<bool> ValidateUseSet(const UpdateMethod& method, const Schema& schema,
                            const SchemaItemSet& use_set,
                            UseAxiomatization axiomatization,
                            const ColoringValidationOptions& options);

/// Checks every testable condition of Theorem 4.8 / 4.18 for the claim
/// "`coloring` is a coloring of `method`" (not necessarily minimal):
/// observed creations/deletions are covered by c/d colors, signature classes
/// are colored u, u-edges have u-endpoints, and the use-set axiom holds on
/// samples.
struct ColoringValidation {
  bool consistent = false;
  std::vector<std::string> issues;
};
Result<ColoringValidation> ValidateColoringClaim(
    const UpdateMethod& method, const Schema& schema, const Coloring& coloring,
    UseAxiomatization axiomatization,
    const ColoringValidationOptions& options);

/// A syntactic (conservative) coloring for an algebraic method: every
/// updated property is colored {c,d} (replacement may create and delete
/// edges), every relation an update expression reads is colored u, the
/// signature classes are colored u, and u is closed under edge incidence.
/// This over-approximates the minimal coloring; it is the static-analysis
/// counterpart the Section 7 SQL discussion applies to cursor updates.
Coloring SyntacticColoring(const AlgebraicUpdateMethod& method);

}  // namespace setrec

#endif  // SETREC_COLORING_INFERENCE_H_
