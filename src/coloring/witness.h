#ifndef SETREC_COLORING_WITNESS_H_
#define SETREC_COLORING_WITNESS_H_

#include <memory>

#include "coloring/coloring.h"
#include "coloring/soundness.h"
#include "core/update_method.h"

namespace setrec {

/// The fixed objects the witness constructions of Propositions 4.13/4.22
/// manipulate: for each class X three distinct objects o_c^X, o_d^X, o_u^X,
/// and for each schema edge e = (A, e, B) four further objects o_1^e, o_3^e
/// of type A and o_2^e, o_4^e of type B — all pairwise distinct within their
/// classes.
class WitnessObjects {
 public:
  explicit WitnessObjects(const Schema& schema);

  ObjectId NodeC(ClassId x) const { return ObjectId(x, 0); }
  ObjectId NodeD(ClassId x) const { return ObjectId(x, 1); }
  ObjectId NodeU(ClassId x) const { return ObjectId(x, 2); }
  ObjectId Edge1(PropertyId e) const { return edge1_[e]; }  // type A
  ObjectId Edge2(PropertyId e) const { return edge2_[e]; }  // type B
  ObjectId Edge3(PropertyId e) const { return edge3_[e]; }  // type A
  ObjectId Edge4(PropertyId e) const { return edge4_[e]; }  // type B

 private:
  std::vector<ObjectId> edge1_, edge2_, edge3_, edge4_;
};

/// Builds the update method the constructive proof of Proposition 4.13
/// (inflationary axiomatization) or its dual (Proposition 4.22, deflationary)
/// associates with a sound coloring κ: a method whose minimal coloring is κ.
/// Its behaviour is receiver-independent; the signature is [X] for the first
/// node colored u. Items colored exactly {u} that no other action tests get
/// a divergence guard: the method returns a `Diverges` status (modelling the
/// proof's infinite loop) when the designated u-item is absent.
///
/// Fails with InvalidArgument when κ is not sound under `axiomatization`.
/// The deflationary construction leaves one corner Unimplemented (a d-node
/// with an incident edge colored exactly {c} whose other endpoint is not u);
/// the paper only sketches this case via Example 4.21.
Result<std::unique_ptr<UpdateMethod>> MakeWitnessMethod(
    const Schema* schema, const Coloring& coloring,
    UseAxiomatization axiomatization);

}  // namespace setrec

#endif  // SETREC_COLORING_WITNESS_H_
