#include "coloring/soundness.h"

#include <sstream>

namespace setrec {

namespace {

void CheckInflationary(const Coloring& k, SoundnessReport& report) {
  const Schema& schema = k.schema();
  // (1) node d ⇒ node u.
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    ColorSet cs = k.GetClass(c);
    if (cs.Has(Color::kDelete) && !cs.Has(Color::kUse)) {
      report.violations.push_back("node " + schema.class_name(c) +
                                  " colored d but not u (Lemma 4.11)");
    }
  }
  for (PropertyId p = 0; p < schema.num_properties(); ++p) {
    const Schema::PropertyDef& def = schema.property(p);
    ColorSet cs = k.GetProperty(p);
    // (1) edge d ⇒ edge u or an incident node d.
    if (cs.Has(Color::kDelete) && !cs.Has(Color::kUse) &&
        !k.GetClass(def.source).Has(Color::kDelete) &&
        !k.GetClass(def.target).Has(Color::kDelete)) {
      report.violations.push_back(
          "edge " + def.name +
          " colored d but neither u nor incident to a d node (Lemma 4.11)");
    }
    // (2) edge c ⇒ incident nodes u or c.
    if (cs.Has(Color::kCreate)) {
      for (ClassId endpoint : {def.source, def.target}) {
        ColorSet ec = k.GetClass(endpoint);
        if (!ec.Has(Color::kUse) && !ec.Has(Color::kCreate)) {
          report.violations.push_back(
              "edge " + def.name + " colored c but endpoint " +
              schema.class_name(endpoint) +
              " is neither u nor c (Prop 4.13(2))");
        }
      }
    }
    // (5) edge u ⇒ incident nodes u.
    if (cs.Has(Color::kUse)) {
      for (ClassId endpoint : {def.source, def.target}) {
        if (!k.GetClass(endpoint).Has(Color::kUse)) {
          report.violations.push_back("edge " + def.name +
                                      " colored u but endpoint " +
                                      schema.class_name(endpoint) +
                                      " is not u (Prop 4.13(5))");
        }
      }
    }
  }
  // (3) node B d ⇒ incident edges neither d nor u force other endpoint u.
  for (ClassId b = 0; b < schema.num_classes(); ++b) {
    if (!k.GetClass(b).Has(Color::kDelete)) continue;
    for (PropertyId p : schema.IncidentProperties(b)) {
      ColorSet pc = k.GetProperty(p);
      if (pc.Has(Color::kDelete) || pc.Has(Color::kUse)) continue;
      const Schema::PropertyDef& def = schema.property(p);
      const ClassId other = def.source == b ? def.target : def.source;
      if (!k.GetClass(other).Has(Color::kUse)) {
        report.violations.push_back(
            "node " + schema.class_name(b) + " colored d; incident edge " +
            def.name + " is neither d nor u, yet " + schema.class_name(other) +
            " is not u (Prop 4.13(3))");
      }
    }
  }
  // (4) at least one node u.
  bool any_u = false;
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    if (k.GetClass(c).Has(Color::kUse)) any_u = true;
  }
  if (!any_u) {
    report.violations.push_back(
        "no node colored u (Prop 4.13(4): a method signature exists)");
  }
}

void CheckDeflationary(const Coloring& k, SoundnessReport& report) {
  const Schema& schema = k.schema();
  // (1) node c ⇒ node u.
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    ColorSet cs = k.GetClass(c);
    if (cs.Has(Color::kCreate) && !cs.Has(Color::kUse)) {
      report.violations.push_back("node " + schema.class_name(c) +
                                  " colored c but not u (Lemma 4.20)");
    }
  }
  for (PropertyId p = 0; p < schema.num_properties(); ++p) {
    const Schema::PropertyDef& def = schema.property(p);
    ColorSet cs = k.GetProperty(p);
    // (1) edge c ⇒ edge u or an incident node c.
    if (cs.Has(Color::kCreate) && !cs.Has(Color::kUse) &&
        !k.GetClass(def.source).Has(Color::kCreate) &&
        !k.GetClass(def.target).Has(Color::kCreate)) {
      report.violations.push_back(
          "edge " + def.name +
          " colored c but neither u nor incident to a c node (Lemma 4.20)");
    }
    // (4) edge u ⇒ incident nodes u.
    if (cs.Has(Color::kUse)) {
      for (ClassId endpoint : {def.source, def.target}) {
        if (!k.GetClass(endpoint).Has(Color::kUse)) {
          report.violations.push_back("edge " + def.name +
                                      " colored u but endpoint " +
                                      schema.class_name(endpoint) +
                                      " is not u (Prop 4.22(4))");
        }
      }
    }
  }
  // (2) node d ⇒ incident edges u or c, or other endpoint u.
  for (ClassId b = 0; b < schema.num_classes(); ++b) {
    if (!k.GetClass(b).Has(Color::kDelete)) continue;
    for (PropertyId p : schema.IncidentProperties(b)) {
      ColorSet pc = k.GetProperty(p);
      if (pc.Has(Color::kUse) || pc.Has(Color::kCreate)) continue;
      const Schema::PropertyDef& def = schema.property(p);
      const ClassId other = def.source == b ? def.target : def.source;
      if (!k.GetClass(other).Has(Color::kUse)) {
        report.violations.push_back(
            "node " + schema.class_name(b) + " colored d; incident edge " +
            def.name + " is neither u nor c, yet " + schema.class_name(other) +
            " is not u (Prop 4.22(2))");
      }
    }
  }
  // (3) at least one node u.
  bool any_u = false;
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    if (k.GetClass(c).Has(Color::kUse)) any_u = true;
  }
  if (!any_u) {
    report.violations.push_back("no node colored u (Prop 4.22(3))");
  }
}

}  // namespace

SoundnessReport CheckSoundness(const Coloring& coloring,
                               UseAxiomatization axiomatization) {
  SoundnessReport report;
  if (axiomatization == UseAxiomatization::kInflationary) {
    CheckInflationary(coloring, report);
  } else {
    CheckDeflationary(coloring, report);
  }
  report.sound = report.violations.empty();
  return report;
}

bool IsSoundColoring(const Coloring& coloring,
                     UseAxiomatization axiomatization) {
  return CheckSoundness(coloring, axiomatization).sound;
}

bool SoundColoringGuaranteesOrderIndependence(const Coloring& coloring) {
  return coloring.IsSimple();
}

const char* UniformBehaviourOfSimpleColorings(UseAxiomatization ax) {
  return ax == UseAxiomatization::kInflationary ? "inflationary"
                                                : "deflationary";
}

}  // namespace setrec
