#include "coloring/coloring.h"

#include <cassert>
#include <sstream>

namespace setrec {

std::string ColorSet::ToString() const {
  if (empty()) return "∅";
  std::string out;
  if (Has(Color::kUse)) out += 'u';
  if (Has(Color::kCreate)) out += 'c';
  if (Has(Color::kDelete)) out += 'd';
  return out;
}

std::vector<ColorSet> ColorSet::All() {
  return {kNoColors, kU, kC, kD, kUC, kUD, kCD, kUCD};
}

Coloring::Coloring(const Schema* schema)
    : schema_(schema),
      assignment_(schema->num_classes() + schema->num_properties()) {
  assert(schema != nullptr);
}

std::size_t Coloring::IndexOf(SchemaItem item) const {
  if (item.is_class()) {
    assert(item.id() < schema_->num_classes());
    return item.id();
  }
  assert(item.id() < schema_->num_properties());
  return schema_->num_classes() + item.id();
}

ColorSet Coloring::Get(SchemaItem item) const {
  return assignment_[IndexOf(item)];
}

void Coloring::Set(SchemaItem item, ColorSet colors) {
  assignment_[IndexOf(item)] = colors;
}

void Coloring::Add(SchemaItem item, Color color) {
  assignment_[IndexOf(item)] = assignment_[IndexOf(item)].With(color);
}

bool Coloring::IsSimple() const {
  for (ColorSet c : assignment_) {
    if (c.size() > 1) return false;
  }
  return true;
}

SchemaItemSet Coloring::UseSet() const {
  SchemaItemSet out;
  for (SchemaItem item : schema_->AllItems()) {
    if (Get(item).Has(Color::kUse)) out.Insert(item);
  }
  return out;
}

SchemaItemSet Coloring::CreateSet() const {
  SchemaItemSet out;
  for (SchemaItem item : schema_->AllItems()) {
    if (Get(item).Has(Color::kCreate)) out.Insert(item);
  }
  return out;
}

SchemaItemSet Coloring::DeleteSet() const {
  SchemaItemSet out;
  for (SchemaItem item : schema_->AllItems()) {
    if (Get(item).Has(Color::kDelete)) out.Insert(item);
  }
  return out;
}

Coloring Coloring::Meet(const Coloring& other) const {
  assert(schema_ == other.schema_);
  Coloring out(schema_);
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    out.assignment_[i] = assignment_[i].Meet(other.assignment_[i]);
  }
  return out;
}

Coloring Coloring::Join(const Coloring& other) const {
  assert(schema_ == other.schema_);
  Coloring out(schema_);
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    out.assignment_[i] = assignment_[i].Join(other.assignment_[i]);
  }
  return out;
}

bool Coloring::IsSubsetOf(const Coloring& other) const {
  assert(schema_ == other.schema_);
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    if (!assignment_[i].IsSubsetOf(other.assignment_[i])) return false;
  }
  return true;
}

Coloring Coloring::Full(const Schema* schema) {
  Coloring out(schema);
  for (ColorSet& c : out.assignment_) c = kUCD;
  return out;
}

std::string Coloring::ToString() const {
  std::ostringstream out;
  bool first = true;
  for (ClassId c = 0; c < schema_->num_classes(); ++c) {
    if (!first) out << " ";
    first = false;
    out << schema_->class_name(c) << ":{" << GetClass(c).ToString() << "}";
  }
  for (PropertyId p = 0; p < schema_->num_properties(); ++p) {
    if (!first) out << " ";
    first = false;
    out << schema_->property(p).name << ":{" << GetProperty(p).ToString()
        << "}";
  }
  return out.str();
}

}  // namespace setrec
