#ifndef SETREC_OBS_METRICS_H_
#define SETREC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>

namespace setrec {

/// Monotonic event count. All operations are relaxed atomics: metrics are
/// statistics, not synchronization.
class Counter {
 public:
  void Add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written instantaneous value.
class Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Power-of-two bucketed histogram of non-negative samples (bucket i counts
/// samples in [2^(i-1), 2^i), bucket 0 counts zeros and ones). Fixed-size
/// and lock-free, so Observe is safe from any thread.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void Observe(std::uint64_t v) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Estimates the q-th quantile (0 < q <= 1) from the pow2 buckets: the
  /// bucket holding the ceil(q*count)-th smallest sample answers with its
  /// midpoint (bucket 0 — zeros and ones — answers 1). The estimate is off
  /// by at most a factor of two, which is exactly the precision a
  /// latency-tail export needs; it is deterministic for a fixed sample
  /// multiset, so tests pin exact values. Returns 0 on an empty histogram.
  std::uint64_t Quantile(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0;
    std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(n) + 0.999999999);
    if (rank < 1) rank = 1;
    if (rank > n) rank = n;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += bucket(b);
      if (seen >= rank) {
        if (b == 0) return 1;
        const std::uint64_t lo = std::uint64_t{1} << b;
        const std::uint64_t hi =
            b == kBuckets - 1 ? ~std::uint64_t{0} : (lo << 1) - 1;
        return lo + (hi - lo) / 2;
      }
    }
    return ~std::uint64_t{0};  // unreachable: seen reaches count()
  }

  static std::size_t BucketOf(std::uint64_t v) {
    std::size_t b = 0;
    while (v > 1) {
      v >>= 1;
      ++b;
    }
    return b;
  }

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
};

/// A registry of named counters/gauges/histograms. The engine's well-known
/// instruments live as plain members of `engine` — hot loops reach them with
/// one pointer indirection and no name lookup — and are also registered in
/// the named map, so snapshots and exports see one uniform namespace.
/// Dynamically named instruments are created on first use and live for the
/// registry's lifetime (returned references are stable).
///
/// Thread safety: instrument updates are lock-free atomics; name lookup
/// takes the registry mutex (resolve once, then hold the reference).
class MetricsRegistry {
 public:
  /// The engine's fixed instruments (registered names in parentheses).
  struct Engine {
    Counter chase_rounds;          // chase.rounds
    Counter chase_fd_merges;       // chase.fd_merges
    Counter chase_ind_additions;   // chase.ind_additions
    Counter hom_candidates;        // homomorphism.candidates
    Counter hom_pruned;            // homomorphism.pruned
    Counter containment_tests;     // containment.tests
    Counter eval_rows;             // evaluator.rows
    Counter eval_join_probes;      // evaluator.join_probes
    Counter eval_join_build_rows;  // evaluator.join_build_rows
    Counter eval_probe_partitions; // evaluator.probe_partitions
    Counter sequential_receivers;  // sequential.receivers
    Counter parallel_shards;       // parallel.shards
    Counter apply_edges;           // apply.edges
    Counter wal_appends;           // wal.appends
    Counter wal_bytes;             // wal.bytes
    Counter wal_fsyncs;            // wal.fsyncs
    Counter store_commits;         // store.commits
    Counter store_checkpoints;     // store.checkpoints
    Counter incremental_hits;          // incremental.hits
    Counter incremental_refreshes;     // incremental.refreshes
    Counter incremental_fallbacks;     // incremental.fallbacks
    Counter incremental_invalidations; // incremental.invalidations
    Counter incremental_delta_rows;    // incremental.delta_rows
    Histogram shard_merge_ns;      // parallel.shard_merge_ns
    Histogram commit_ns;           // store.commit_ns
    Histogram incremental_refresh_ns;  // incremental.refresh_ns
  };

  MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Engine engine;

  /// Get-or-create by name; the reference stays valid for the registry's
  /// lifetime. Looking up a name registered to another instrument kind
  /// creates a distinct instrument suffixed by kind in snapshots.
  Counter& CounterNamed(std::string_view name);
  Gauge& GaugeNamed(std::string_view name);
  Histogram& HistogramNamed(std::string_view name);

  /// Get-or-create one labeled series of `name` — the per-tenant
  /// instruments the network service keys by user-controlled tenant ids.
  /// The label *value* is stored escaped (EscapeLabelValue), so arbitrary
  /// bytes — including `\`, `"` and newline — produce distinct, well-formed
  /// series; the label key is code-controlled and must already be a legal
  /// identifier. Series render as `name{key="value"}` in WriteText and as
  /// proper Prometheus labels in WritePrometheus.
  Counter& CounterLabeled(std::string_view name, std::string_view label_key,
                          std::string_view label_value);
  Gauge& GaugeLabeled(std::string_view name, std::string_view label_key,
                      std::string_view label_value);
  Histogram& HistogramLabeled(std::string_view name,
                              std::string_view label_key,
                              std::string_view label_value);

  struct HistogramSnapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// Pow2-bucket tail estimates (Histogram::Quantile): the p50/p99/p999
    /// every histogram exports through WriteText, the stats op and
    /// WritePrometheus.
    std::uint64_t p50 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t p999 = 0;
  };
  /// Keys are *series* names: a plain instrument name, or
  /// `name{key="value"}` for labeled series (value already escaped).
  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// `name value` lines, sorted by name. Histograms expand to _count/_sum/
  /// _p50/_p99/_p999 lines; for labeled series the suffix lands on the name,
  /// before the label braces (`name_p99{tenant="x"} 7`).
  void WriteText(std::ostream& out) const;

  /// Prometheus text exposition (version 0.0.4): every instrument name is
  /// prefixed `setrec_` and sanitized ('.' and other non-[a-zA-Z0-9_] bytes
  /// become '_'); label values pass through escaped (EscapeLabelValue —
  /// tenant ids are user-controlled bytes). Counters get `# TYPE ...
  /// counter`, gauges `gauge`, and histograms are exposed as summaries:
  /// `{quantile="0.5|0.99|0.999"}` lines estimated from the pow2 buckets,
  /// then `_count`/`_sum`. One TYPE line per metric name covers all its
  /// labeled series. The format is pinned by a unit test; scrape endpoints
  /// may serve it verbatim.
  void WritePrometheus(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter*, std::less<>> counters_;
  std::map<std::string, Gauge*, std::less<>> gauges_;
  std::map<std::string, Histogram*, std::less<>> histograms_;
  // Owned storage for dynamically named instruments (deque: stable refs).
  std::deque<Counter> owned_counters_;
  std::deque<Gauge> owned_gauges_;
  std::deque<Histogram> owned_histograms_;
};

/// Prometheus label-value escaping: `\` → `\\`, `"` → `\"`, newline →
/// `\n`. The one funnel every user-controlled label value (tenant ids)
/// passes through before it can reach an exposition line — pinned and
/// fuzzed by the telemetry tests.
std::string EscapeLabelValue(std::string_view value);

}  // namespace setrec

#endif  // SETREC_OBS_METRICS_H_
