#include "obs/trace.h"

#include <algorithm>
#include <iomanip>
#include <set>
#include <unordered_map>

#include "obs/json_escape.h"

namespace setrec {

namespace {

/// Process-unique tracer serials; never reused, so a stale thread-local
/// cache entry for a destroyed tracer can never match a live one.
std::atomic<std::uint64_t> g_next_tracer_serial{1};

/// Per-thread cache of (tracer serial → buffer). Entries for destroyed
/// tracers go stale but never match again; the vector stays tiny because a
/// process creates few tracers.
struct TlsEntry {
  std::uint64_t serial;
  void* log;
};
thread_local std::vector<TlsEntry> t_tracer_logs;

std::atomic<std::uint32_t> g_next_tid{1};
std::uint32_t ThisThreadId() {
  thread_local std::uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

// -- ScopedTraceContext ------------------------------------------------------

ScopedTraceContext::ScopedTraceContext(Tracer* tracer, const TraceContext& ctx)
    : tracer_(ctx.active() ? tracer : nullptr) {
  if (tracer_ == nullptr) return;
  Tracer::ThreadLog* log = tracer_->LogForThisThread();
  saved_ = log->ctx;
  log->ctx = ctx;
}

ScopedTraceContext::~ScopedTraceContext() {
  if (tracer_ == nullptr) return;
  tracer_->LogForThisThread()->ctx = saved_;
}

// -- TraceSpan ---------------------------------------------------------------

TraceSpan::TraceSpan(Tracer* tracer, const char* name,
                     std::uint64_t parent_hint, std::uint64_t trace_hint)
    : tracer_(tracer), name_(name) {
  if (tracer_ == nullptr) return;
  Tracer::ThreadLog* log = tracer_->LogForThisThread();
  if (log->open.empty()) {
    parent_ = parent_hint;
    trace_id_ = log->ctx.active() ? log->ctx.trace_id : trace_hint;
  } else {
    parent_ = log->open.back().id;
    // An installed context wins over inheritance: the request boundary on a
    // session thread sits *under* the long-lived session span, and its
    // spans must join the request's remote family, not the session's.
    trace_id_ =
        log->ctx.active() ? log->ctx.trace_id : log->open.back().trace_id;
  }
  // The span that first joins a remote family (its enclosing span, if any,
  // is not part of it) records the cross-process edge.
  if (log->ctx.active() && trace_id_ == log->ctx.trace_id &&
      (log->open.empty() || log->open.back().trace_id != trace_id_)) {
    remote_parent_ = log->ctx.parent_span;
  }
  id_ = tracer_->next_id_.fetch_add(1, std::memory_order_relaxed);
  log->open.push_back(Tracer::OpenSpan{id_, trace_id_});
  start_ns_ = tracer_->NowNs();
}

void TraceSpan::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  const std::uint64_t end_ns = tracer->NowNs();

  Tracer::ThreadLog* log = tracer->LogForThisThread();
  // RAII guards unwind LIFO; tolerate out-of-order ends from moved spans.
  if (!log->open.empty() && log->open.back().id == id_) {
    log->open.pop_back();
  } else {
    auto it = std::find_if(log->open.begin(), log->open.end(),
                           [this](const Tracer::OpenSpan& open) {
                             return open.id == id_;
                           });
    if (it != log->open.end()) log->open.erase(it);
  }

  SpanEvent event;
  event.name = name_;
  event.id = id_;
  event.parent = parent_;
  event.trace_id = trace_id_;
  event.remote_parent = remote_parent_;
  event.tid = log->tid;
  event.start_ns = start_ns_;
  event.dur_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;

  std::lock_guard<std::mutex> lock(log->mu);
  StageStats& agg = log->aggregates[name_];
  agg.count += 1;
  agg.total_ns += event.dur_ns;
  if (log->events.size() < Tracer::kMaxEventsPerThread) {
    log->events.push_back(event);
  } else {
    ++log->dropped;
  }
}

// -- Tracer ------------------------------------------------------------------

Tracer::Tracer()
    : serial_(g_next_tracer_serial.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer::ThreadLog* Tracer::LogForThisThread() {
  for (const TlsEntry& entry : t_tracer_logs) {
    if (entry.serial == serial_) return static_cast<ThreadLog*>(entry.log);
  }
  auto log = std::make_unique<ThreadLog>();
  log->tid = ThisThreadId();
  ThreadLog* raw = log.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    logs_.push_back(std::move(log));
  }
  t_tracer_logs.push_back(TlsEntry{serial_, raw});
  return raw;
}

const Tracer::ThreadLog* Tracer::LogForThisThreadIfAny() const {
  for (const TlsEntry& entry : t_tracer_logs) {
    if (entry.serial == serial_) {
      return static_cast<const ThreadLog*>(entry.log);
    }
  }
  return nullptr;
}

std::uint64_t Tracer::CurrentSpanId() const {
  const ThreadLog* log = LogForThisThreadIfAny();
  return log == nullptr || log->open.empty() ? 0 : log->open.back().id;
}

std::uint64_t Tracer::CurrentTraceId() const {
  const ThreadLog* log = LogForThisThreadIfAny();
  if (log == nullptr) return 0;
  if (log->ctx.active()) return log->ctx.trace_id;
  return log->open.empty() ? 0 : log->open.back().trace_id;
}

std::vector<SpanEvent> Tracer::Events() const {
  std::vector<SpanEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    out.insert(out.end(), log->events.begin(), log->events.end());
  }
  std::sort(out.begin(), out.end(), [](const SpanEvent& a, const SpanEvent& b) {
    if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
    return a.id < b.id;
  });
  return out;
}

std::map<std::string, StageStats> Tracer::StageTotals() const {
  std::map<std::string, StageStats> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    for (const auto& [name, agg] : log->aggregates) {
      StageStats& merged = out[name];
      merged.count += agg.count;
      merged.total_ns += agg.total_ns;
    }
  }
  return out;
}

namespace {

/// Shared core of TreeSignature / TreeSignatureForTrace: canonical string
/// for the span forest in `events`, timestamps erased, identical sibling
/// (and root) subtrees deduplicated.
std::string SignatureOf(const std::vector<SpanEvent>& events) {
  std::unordered_map<std::uint64_t, std::vector<const SpanEvent*>> children;
  std::unordered_map<std::uint64_t, const SpanEvent*> by_id;
  for (const SpanEvent& e : events) by_id.emplace(e.id, &e);
  std::vector<const SpanEvent*> roots;
  for (const SpanEvent& e : events) {
    // A parent that was itself dropped from the raw buffer promotes its
    // children to roots — the signature degrades, it never dangles.
    if (e.parent != 0 && by_id.count(e.parent) != 0) {
      children[e.parent].push_back(&e);
    } else {
      roots.push_back(&e);
    }
  }
  // Recursion depth equals span nesting depth (shallow by construction).
  auto sig = [&](auto&& self, const SpanEvent& e) -> std::string {
    std::set<std::string> kids;
    for (const SpanEvent* c : children[e.id]) kids.insert(self(self, *c));
    std::string out = e.name;
    out += '{';
    bool first = true;
    for (const std::string& k : kids) {
      if (!first) out += ';';
      out += k;
      first = false;
    }
    out += '}';
    return out;
  };
  std::set<std::string> top;
  for (const SpanEvent* r : roots) top.insert(sig(sig, *r));
  std::string out;
  bool first = true;
  for (const std::string& s : top) {
    if (!first) out += ';';
    out += s;
    first = false;
  }
  return out;
}

}  // namespace

std::string Tracer::TreeSignature() const { return SignatureOf(Events()); }

std::string Tracer::TreeSignatureForTrace(std::uint64_t trace_id) const {
  std::vector<SpanEvent> family;
  for (const SpanEvent& e : Events()) {
    if (e.trace_id == trace_id) family.push_back(e);
  }
  return SignatureOf(family);
}

void Tracer::WriteChromeTrace(std::ostream& out) const {
  const std::vector<SpanEvent> events = Events();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":\"";
    JsonEscape(out, e.name);
    // chrome://tracing expects microsecond floats; keep ns resolution.
    out << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid << ",\"ts\":"
        << static_cast<double>(e.start_ns) / 1000.0
        << ",\"dur\":" << static_cast<double>(e.dur_ns) / 1000.0
        << ",\"args\":{\"id\":" << e.id << ",\"parent\":" << e.parent
        << ",\"trace_id\":" << e.trace_id
        << ",\"remote_parent\":" << e.remote_parent << "}}";
  }
  // The epoch (steady-clock ns at tracer construction) lets trace_merge.py
  // align traces from tracers born at different times on one machine: an
  // event's absolute time is epoch_steady_ns/1000 + ts.
  out << "\n],\"displayTimeUnit\":\"ns\",\"otherData\":{\"dropped_events\":"
      << dropped_events() << ",\"epoch_steady_ns\":"
      << std::chrono::duration_cast<std::chrono::nanoseconds>(
             epoch_.time_since_epoch())
             .count()
      << "}}\n";
}

void Tracer::WriteSummary(std::ostream& out) const {
  const std::map<std::string, StageStats> totals = StageTotals();
  std::vector<std::pair<std::string, StageStats>> rows(totals.begin(),
                                                       totals.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.total_ns != b.second.total_ns) {
      return a.second.total_ns > b.second.total_ns;
    }
    return a.first < b.first;
  });
  out << std::left << std::setw(36) << "stage" << std::right << std::setw(12)
      << "count" << std::setw(16) << "total_ms" << std::setw(16) << "mean_us"
      << "\n";
  for (const auto& [name, agg] : rows) {
    const double total_ms = static_cast<double>(agg.total_ns) / 1e6;
    const double mean_us =
        agg.count == 0
            ? 0.0
            : static_cast<double>(agg.total_ns) /
                  (1e3 * static_cast<double>(agg.count));
    out << std::left << std::setw(36) << name << std::right << std::setw(12)
        << agg.count << std::setw(16) << std::fixed << std::setprecision(3)
        << total_ms << std::setw(16) << mean_us << "\n";
  }
  if (dropped_events() != 0) {
    out << "(" << dropped_events()
        << " raw events dropped past the per-thread cap; totals include "
           "them)\n";
  }
}

std::uint64_t Tracer::dropped_events() const {
  std::uint64_t dropped = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    dropped += log->dropped;
  }
  return dropped;
}

std::uint64_t Tracer::total_spans() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& log : logs_) {
    std::lock_guard<std::mutex> log_lock(log->mu);
    for (const auto& [name, agg] : log->aggregates) total += agg.count;
  }
  return total;
}

}  // namespace setrec
