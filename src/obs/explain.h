#ifndef SETREC_OBS_EXPLAIN_H_
#define SETREC_OBS_EXPLAIN_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "algebraic/algebraic_method.h"
#include "core/exec_options.h"
#include "core/instance.h"
#include "core/receiver.h"
#include "obs/metrics.h"
#include "relational/expression.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace setrec {

/// One operator of a rendered plan. The tree mirrors what the evaluator
/// *executes*, not the raw syntax tree: a σ-chain over a Cartesian product
/// renders as the single HashJoin the evaluator fuses it into (with the
/// chain's conditions classified into keys and filters), because that is
/// the operator whose build/probe counts ANALYZE reports.
struct PlanNode {
  std::string op;      // "Scan Df", "HashJoin", "Project", "Union", ...
  std::string detail;  // operator-specific annotation (keys, filters, attrs)
  std::string scheme;  // rendered output scheme, e.g. "(self, f)"

  /// Execution statistics, meaningful only when `analyzed` (EXPLAIN
  /// ANALYZE). All counts except wall_ns are logical — identical at any
  /// worker count (see EvalNodeStats).
  bool analyzed = false;
  std::uint64_t actual_rows = 0;  // output rows
  std::uint64_t build_rows = 0;   // hash-join build-side insertions
  std::uint64_t probe_rows = 0;   // hash-join probe-side tuples
  std::uint64_t cache_hits = 0;   // memo hits (DAG-shaped expressions)
  std::uint64_t wall_ns = 0;      // inclusive wall time
  /// Which backend computed this operator on the analyzed run:
  /// "interpreter", "vectorized" or "bytecode" (see EvalNodeStats::backend).
  /// Empty for plain EXPLAIN and for synthetic (non-evaluator) nodes.
  std::string backend;

  std::vector<PlanNode> children;
};

/// A rendered EXPLAIN / EXPLAIN ANALYZE plan: one or more operator trees
/// (multi-phase statements render one root per phase) plus, for ANALYZE,
/// the logical engine counters the run charged.
struct ExplainPlan {
  std::string title;
  bool analyzed = false;
  std::vector<PlanNode> roots;
  /// Logical (worker-invariant) engine counters charged by the analyzed
  /// run; empty for plain EXPLAIN. See LogicalCounterNames().
  std::map<std::string, std::uint64_t> counters;

  /// pgsql-style indented text. Deterministic for plain EXPLAIN (golden
  /// tests pin it); ANALYZE lines carry wall times and are not golden.
  std::string ToText() const;
  /// One-line JSON object (strings escaped per obs/json_escape.h).
  std::string ToJson() const;
};

/// The engine counters that are *logical*: bit-identical at any worker
/// count for a deterministic run. Everything else the registry holds
/// (partition counts, shard counts, cache/wal/store traffic) depends on
/// scheduling and is deliberately excluded.
const std::vector<std::string>& LogicalCounterNames();

/// Filters a registry snapshot down to LogicalCounterNames().
std::map<std::string, std::uint64_t> LogicalCounters(
    const MetricsRegistry& metrics);

/// EXPLAIN: renders the operator tree of `expr` with output schemes
/// type-checked against `catalog`. Fails where InferScheme would.
Result<ExplainPlan> ExplainExpression(const ExprPtr& expr,
                                      const Catalog& catalog);

/// EXPLAIN ANALYZE: evaluates `expr` against `database` under the options'
/// sinks and annotates every operator with actual rows, join build/probe
/// counts, memo hits and wall time. When the effective context has no
/// metrics registry, a private one is used, so `counters` is always
/// populated.
Result<ExplainPlan> ExplainExpressionAnalyze(const ExprPtr& expr,
                                             const Database& database,
                                             const ExecOptions& options = {});

/// EXPLAIN [ANALYZE] for the Section 7 set-oriented UPDATE: renders the
/// two-phase pipeline — the receiver query evaluated against the
/// pre-statement state, then the key-order independent `a := arg1`
/// application. ANALYZE runs both phases (on a scratch copy; `instance` is
/// never mutated).
Result<ExplainPlan> ExplainSetOrientedUpdate(const Instance& instance,
                                             PropertyId property,
                                             const ExprPtr& receiver_query,
                                             bool analyze,
                                             const ExecOptions& options = {});

/// EXPLAIN [ANALYZE] for parallel application: renders the par(E) pipeline
/// of every statement of `method` (Definition 6.1) over the `rec` receiver
/// relation. ANALYZE instantiates rec with `receivers` over `instance` and
/// evaluates the pipelines exactly as the single-shard runtime would — the
/// logical counts equal any worker count's, which is the determinism
/// guarantee the tests pin.
Result<ExplainPlan> ExplainParallelApply(const AlgebraicUpdateMethod& method,
                                         const Instance& instance,
                                         std::span<const Receiver> receivers,
                                         bool analyze,
                                         const ExecOptions& options = {});

}  // namespace setrec

#endif  // SETREC_OBS_EXPLAIN_H_
