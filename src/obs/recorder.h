#ifndef SETREC_OBS_RECORDER_H_
#define SETREC_OBS_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace setrec {

/// An always-on flight recorder: a bounded ring buffer of recent engine
/// events per thread, cheap enough to leave running in production. Unlike
/// the Tracer (opt-in, unbounded aggregates, coherent-snapshot semantics),
/// the recorder answers one question after the fact: *what was the engine
/// doing just before it died?* It keeps only the last kEventsPerThread
/// events of each thread, overwriting the oldest in place — the steady-state
/// Record() path performs no allocation (the ring is preallocated when a
/// thread first touches the recorder) and takes one uncontended mutex.
///
/// Dump() emits the retained events, merged across threads in global record
/// order, as JSONL: one header object (reason, drop accounting), then one
/// object per event. Dumps are *redacted* by default: event names are static
/// engine strings and stay, but the free-form detail payload — which can
/// carry user data such as status messages naming relations and values — is
/// replaced by its FNV-1a hash and length, preserving the shape of the
/// record ("two failures with identical details") without the contents.
///
/// Thread safety: Record() may be called from any thread; Dump() from any
/// thread at any time (it locks each ring briefly). A dump taken while
/// other threads record is a best-effort snapshot, which is exactly the
/// contract of a flight recorder.
class FlightRecorder {
 public:
  /// Events retained per thread. 4096 × ~96 B ≈ 384 KiB per thread at the
  /// cap — bounded by construction, never growing with run length.
  static constexpr std::size_t kEventsPerThread = 4096;
  /// Inline payload bytes per event (longer details are truncated).
  static constexpr std::size_t kDetailBytes = 88;

  enum class EventKind : std::uint8_t {
    kSpan,    // a span started; a = parent hint (0 = none)
    kMetric,  // a metric was bumped; a = value
    kStatus,  // a non-OK status surfaced; a = status code
    kNote,    // free-form milestone (store sequence numbers, shard counts)
  };

  struct Event {
    EventKind kind = EventKind::kNote;
    /// Static string (literal or otherwise outliving the recorder).
    const char* name = nullptr;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint32_t tid = 0;
    /// Global record stamp: total order across threads for merged dumps.
    std::uint64_t seq = 0;
    std::uint64_t ts_ns = 0;
    /// Truncated inline payload, NUL-terminated.
    std::array<char, kDetailBytes> detail{};
  };

  FlightRecorder();
  ~FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder the engine records into by default ("always
  /// on"). Construct private recorders for tests that must not see each
  /// other's events.
  static FlightRecorder& Global();

  /// Appends one event to this thread's ring (overwriting the oldest past
  /// the cap). `name` must be a static string; `detail` is copied inline
  /// and truncated to kDetailBytes - 1.
  void Record(EventKind kind, const char* name, std::uint64_t a = 0,
              std::uint64_t b = 0, std::string_view detail = {});

  struct DumpOptions {
    /// Written into the dump header; say *why* this dump exists.
    std::string_view reason = "on-demand";
    /// Replace detail payloads by hash+length (see class comment).
    bool redact_details = true;
  };

  /// Writes the retained events as JSONL (header line first).
  void Dump(std::ostream& out, const DumpOptions& options) const;
  void Dump(std::ostream& out) const { Dump(out, DumpOptions()); }

  /// Dump() into `path` (truncating). Returns false when the file cannot
  /// be written. (No Status here: the recorder sits below core.)
  bool DumpToFile(const std::string& path, const DumpOptions& options) const;
  bool DumpToFile(const std::string& path) const {
    return DumpToFile(path, DumpOptions());
  }

  /// Total events ever recorded (kept + overwritten).
  std::uint64_t total_events() const;

  /// Events overwritten past the per-thread cap.
  std::uint64_t overwritten_events() const;

 private:
  struct Ring {
    /// Guards slots/count against a concurrent dump; the owning thread is
    /// the only writer.
    mutable std::mutex mu;
    std::vector<Event> slots;  // preallocated to kEventsPerThread
    std::uint64_t count = 0;   // total recorded on this thread
    std::uint32_t tid = 0;
  };

  Ring* RingForThisThread();

  const std::uint64_t serial_;
  const std::uint64_t epoch_ns_;
  std::atomic<std::uint64_t> next_seq_{1};
  mutable std::mutex mu_;  // guards rings_
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace setrec

#endif  // SETREC_OBS_RECORDER_H_
