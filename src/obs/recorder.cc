#include "obs/recorder.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "obs/json_escape.h"

namespace setrec {

namespace {

/// Process-unique recorder serials; never reused, so a stale thread-local
/// cache entry for a destroyed recorder can never match a live one (same
/// scheme as the Tracer's thread-log cache).
std::atomic<std::uint64_t> g_next_recorder_serial{1};

struct TlsEntry {
  std::uint64_t serial;
  void* ring;
};
thread_local std::vector<TlsEntry> t_recorder_rings;

std::atomic<std::uint32_t> g_next_tid{1};
std::uint32_t ThisThreadId() {
  thread_local std::uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* KindName(FlightRecorder::EventKind kind) {
  switch (kind) {
    case FlightRecorder::EventKind::kSpan:
      return "span";
    case FlightRecorder::EventKind::kMetric:
      return "metric";
    case FlightRecorder::EventKind::kStatus:
      return "status";
    case FlightRecorder::EventKind::kNote:
      return "note";
  }
  return "unknown";
}

/// FNV-1a, the redaction fingerprint: deterministic, so two events with the
/// same (hidden) detail are still recognizably equal in a redacted dump.
std::uint64_t Fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

FlightRecorder::FlightRecorder()
    : serial_(g_next_recorder_serial.fetch_add(1, std::memory_order_relaxed)),
      epoch_ns_(NowNs()) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // never destroyed
  return *recorder;
}

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  for (const TlsEntry& entry : t_recorder_rings) {
    if (entry.serial == serial_) return static_cast<Ring*>(entry.ring);
  }
  auto ring = std::make_unique<Ring>();
  ring->slots.resize(kEventsPerThread);  // the one allocation, at registration
  ring->tid = ThisThreadId();
  Ring* raw = ring.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings_.push_back(std::move(ring));
  }
  t_recorder_rings.push_back(TlsEntry{serial_, raw});
  return raw;
}

void FlightRecorder::Record(EventKind kind, const char* name, std::uint64_t a,
                            std::uint64_t b, std::string_view detail) {
  Ring* ring = RingForThisThread();
  Event event;
  event.kind = kind;
  event.name = name;
  event.a = a;
  event.b = b;
  event.tid = ring->tid;
  event.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  event.ts_ns = NowNs() - epoch_ns_;
  const std::size_t n = std::min(detail.size(), kDetailBytes - 1);
  if (n > 0) std::memcpy(event.detail.data(), detail.data(), n);
  event.detail[n] = '\0';

  std::lock_guard<std::mutex> lock(ring->mu);
  ring->slots[ring->count % kEventsPerThread] = event;
  ++ring->count;
}

void FlightRecorder::Dump(std::ostream& out,
                          const DumpOptions& options) const {
  // Snapshot every ring (each under its own lock, briefly), then merge by
  // the global sequence stamp.
  std::vector<Event> events;
  std::uint64_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      total += ring->count;
      const std::uint64_t kept =
          std::min<std::uint64_t>(ring->count, kEventsPerThread);
      for (std::uint64_t i = 0; i < kept; ++i) {
        events.push_back(ring->slots[(ring->count - kept + i) %
                                     kEventsPerThread]);
      }
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });

  out << "{\"type\":\"flight\",\"reason\":\"";
  JsonEscape(out, options.reason);
  out << "\",\"events\":" << events.size()
      << ",\"overwritten\":" << total - events.size()
      << ",\"redacted\":" << (options.redact_details ? "true" : "false")
      << "}\n";
  for (const Event& e : events) {
    out << "{\"seq\":" << e.seq << ",\"ts_ns\":" << e.ts_ns
        << ",\"tid\":" << e.tid << ",\"kind\":\"" << KindName(e.kind)
        << "\",\"name\":\"";
    JsonEscape(out, e.name != nullptr ? e.name : "");
    out << "\",\"a\":" << e.a << ",\"b\":" << e.b;
    const std::string_view detail(e.detail.data());
    if (!detail.empty()) {
      if (options.redact_details) {
        char fingerprint[32];
        std::snprintf(fingerprint, sizeof fingerprint, "%016llx",
                      static_cast<unsigned long long>(Fnv1a(detail)));
        out << ",\"detail_hash\":\"" << fingerprint
            << "\",\"detail_len\":" << detail.size();
      } else {
        out << ",\"detail\":\"";
        JsonEscape(out, detail);
        out << "\"";
      }
    }
    out << "}\n";
  }
}

bool FlightRecorder::DumpToFile(const std::string& path,
                                const DumpOptions& options) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  Dump(out, options);
  out.flush();
  return out.good();
}

std::uint64_t FlightRecorder::total_events() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->count;
  }
  return total;
}

std::uint64_t FlightRecorder::overwritten_events() const {
  std::uint64_t overwritten = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    if (ring->count > kEventsPerThread) {
      overwritten += ring->count - kEventsPerThread;
    }
  }
  return overwritten;
}

}  // namespace setrec
