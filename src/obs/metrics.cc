#include "obs/metrics.h"

namespace setrec {

MetricsRegistry::MetricsRegistry() {
  counters_.emplace("chase.rounds", &engine.chase_rounds);
  counters_.emplace("chase.fd_merges", &engine.chase_fd_merges);
  counters_.emplace("chase.ind_additions", &engine.chase_ind_additions);
  counters_.emplace("homomorphism.candidates", &engine.hom_candidates);
  counters_.emplace("homomorphism.pruned", &engine.hom_pruned);
  counters_.emplace("containment.tests", &engine.containment_tests);
  counters_.emplace("evaluator.rows", &engine.eval_rows);
  counters_.emplace("evaluator.join_probes", &engine.eval_join_probes);
  counters_.emplace("evaluator.join_build_rows",
                    &engine.eval_join_build_rows);
  counters_.emplace("evaluator.probe_partitions",
                    &engine.eval_probe_partitions);
  counters_.emplace("sequential.receivers", &engine.sequential_receivers);
  counters_.emplace("parallel.shards", &engine.parallel_shards);
  counters_.emplace("apply.edges", &engine.apply_edges);
  counters_.emplace("wal.appends", &engine.wal_appends);
  counters_.emplace("wal.bytes", &engine.wal_bytes);
  counters_.emplace("wal.fsyncs", &engine.wal_fsyncs);
  counters_.emplace("store.commits", &engine.store_commits);
  counters_.emplace("store.checkpoints", &engine.store_checkpoints);
  counters_.emplace("incremental.hits", &engine.incremental_hits);
  counters_.emplace("incremental.refreshes", &engine.incremental_refreshes);
  counters_.emplace("incremental.fallbacks", &engine.incremental_fallbacks);
  counters_.emplace("incremental.invalidations",
                    &engine.incremental_invalidations);
  counters_.emplace("incremental.delta_rows", &engine.incremental_delta_rows);
  histograms_.emplace("parallel.shard_merge_ns", &engine.shard_merge_ns);
  histograms_.emplace("store.commit_ns", &engine.commit_ns);
  histograms_.emplace("incremental.refresh_ns",
                      &engine.incremental_refresh_ns);
}

Counter& MetricsRegistry::CounterNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  Counter& c = owned_counters_.emplace_back();
  counters_.emplace(std::string(name), &c);
  return c;
}

Gauge& MetricsRegistry::GaugeNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  Gauge& g = owned_gauges_.emplace_back();
  gauges_.emplace(std::string(name), &g);
  return g;
}

Histogram& MetricsRegistry::HistogramNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  Histogram& h = owned_histograms_.emplace_back();
  histograms_.emplace(std::string(name), &h);
  return h;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] = HistogramSnapshot{h->count(), h->sum()};
  }
  return out;
}

namespace {

/// `setrec_` + name with every byte outside [a-zA-Z0-9_] replaced by '_'
/// (Prometheus metric-name charset; the engine's '.'-separated names map
/// onto it deterministically).
std::string PrometheusName(const std::string& name) {
  std::string out = "setrec_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

void MetricsRegistry::WritePrometheus(std::ostream& out) const {
  const Snapshot snap = TakeSnapshot();
  for (const auto& [name, v] : snap.counters) {
    const std::string p = PrometheusName(name);
    out << "# TYPE " << p << " counter\n" << p << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string p = PrometheusName(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << v << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = PrometheusName(name);
    out << "# TYPE " << p << " summary\n"
        << p << "_count " << h.count << "\n"
        << p << "_sum " << h.sum << "\n";
  }
}

void MetricsRegistry::WriteText(std::ostream& out) const {
  const Snapshot snap = TakeSnapshot();
  for (const auto& [name, v] : snap.counters) {
    out << name << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    out << name << " " << v << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    out << name << "_count " << h.count << "\n"
        << name << "_sum " << h.sum << "\n";
  }
}

}  // namespace setrec
