#include "obs/metrics.h"

#include <utility>

namespace setrec {

MetricsRegistry::MetricsRegistry() {
  counters_.emplace("chase.rounds", &engine.chase_rounds);
  counters_.emplace("chase.fd_merges", &engine.chase_fd_merges);
  counters_.emplace("chase.ind_additions", &engine.chase_ind_additions);
  counters_.emplace("homomorphism.candidates", &engine.hom_candidates);
  counters_.emplace("homomorphism.pruned", &engine.hom_pruned);
  counters_.emplace("containment.tests", &engine.containment_tests);
  counters_.emplace("evaluator.rows", &engine.eval_rows);
  counters_.emplace("evaluator.join_probes", &engine.eval_join_probes);
  counters_.emplace("evaluator.join_build_rows",
                    &engine.eval_join_build_rows);
  counters_.emplace("evaluator.probe_partitions",
                    &engine.eval_probe_partitions);
  counters_.emplace("sequential.receivers", &engine.sequential_receivers);
  counters_.emplace("parallel.shards", &engine.parallel_shards);
  counters_.emplace("apply.edges", &engine.apply_edges);
  counters_.emplace("wal.appends", &engine.wal_appends);
  counters_.emplace("wal.bytes", &engine.wal_bytes);
  counters_.emplace("wal.fsyncs", &engine.wal_fsyncs);
  counters_.emplace("store.commits", &engine.store_commits);
  counters_.emplace("store.checkpoints", &engine.store_checkpoints);
  counters_.emplace("incremental.hits", &engine.incremental_hits);
  counters_.emplace("incremental.refreshes", &engine.incremental_refreshes);
  counters_.emplace("incremental.fallbacks", &engine.incremental_fallbacks);
  counters_.emplace("incremental.invalidations",
                    &engine.incremental_invalidations);
  counters_.emplace("incremental.delta_rows", &engine.incremental_delta_rows);
  histograms_.emplace("parallel.shard_merge_ns", &engine.shard_merge_ns);
  histograms_.emplace("store.commit_ns", &engine.commit_ns);
  histograms_.emplace("incremental.refresh_ns",
                      &engine.incremental_refresh_ns);
}

namespace {

/// The series key a labeled instrument registers under: the value is
/// escaped *here*, at creation, so every export path sees well-formed
/// bytes and distinct raw values stay distinct series.
std::string SeriesKey(std::string_view name, std::string_view label_key,
                      std::string_view label_value) {
  std::string key(name);
  key.push_back('{');
  key.append(label_key);
  key.append("=\"");
  key.append(EscapeLabelValue(label_value));
  key.append("\"}");
  return key;
}

}  // namespace

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out.append("\\\\");
        break;
      case '"':
        out.append("\\\"");
        break;
      case '\n':
        out.append("\\n");
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Counter& MetricsRegistry::CounterNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  Counter& c = owned_counters_.emplace_back();
  counters_.emplace(std::string(name), &c);
  return c;
}

Counter& MetricsRegistry::CounterLabeled(std::string_view name,
                                         std::string_view label_key,
                                         std::string_view label_value) {
  return CounterNamed(SeriesKey(name, label_key, label_value));
}

Gauge& MetricsRegistry::GaugeLabeled(std::string_view name,
                                     std::string_view label_key,
                                     std::string_view label_value) {
  return GaugeNamed(SeriesKey(name, label_key, label_value));
}

Histogram& MetricsRegistry::HistogramLabeled(std::string_view name,
                                             std::string_view label_key,
                                             std::string_view label_value) {
  return HistogramNamed(SeriesKey(name, label_key, label_value));
}

Gauge& MetricsRegistry::GaugeNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  Gauge& g = owned_gauges_.emplace_back();
  gauges_.emplace(std::string(name), &g);
  return g;
}

Histogram& MetricsRegistry::HistogramNamed(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  Histogram& h = owned_histograms_.emplace_back();
  histograms_.emplace(std::string(name), &h);
  return h;
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    out.histograms[name] =
        HistogramSnapshot{h->count(),        h->sum(),
                          h->Quantile(0.50), h->Quantile(0.99),
                          h->Quantile(0.999)};
  }
  return out;
}

namespace {

/// Splits a series key into its instrument name and label braces:
/// `name{k="v"}` → {`name`, `{k="v"}`}; a plain name has empty labels.
std::pair<std::string_view, std::string_view> SplitSeries(
    const std::string& series) {
  const std::size_t brace = series.find('{');
  if (brace == std::string::npos) return {series, {}};
  return {std::string_view(series).substr(0, brace),
          std::string_view(series).substr(brace)};
}

/// `setrec_` + name with every byte outside [a-zA-Z0-9_] replaced by '_'
/// (Prometheus metric-name charset; the engine's '.'-separated names map
/// onto it deterministically). Labels are NOT sanitized through here —
/// their values carry escaped user bytes (EscapeLabelValue).
std::string PrometheusName(std::string_view name) {
  std::string out = "setrec_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// `{quantile="q"}` merged with any existing label braces:
/// `{k="v"}` + q → `{k="v",quantile="q"}`.
std::string WithQuantileLabel(std::string_view labels, const char* q) {
  std::string out;
  if (labels.empty()) {
    out = "{quantile=\"";
  } else {
    out.assign(labels.substr(0, labels.size() - 1));
    out.append(",quantile=\"");
  }
  out.append(q);
  out.append("\"}");
  return out;
}

/// Emits a TYPE line unless `last` already named this metric — the labeled
/// series of one name sort adjacently, so one TYPE line covers them all.
void TypeLine(std::ostream& out, const std::string& metric, const char* kind,
              std::string* last) {
  if (metric == *last) return;
  out << "# TYPE " << metric << " " << kind << "\n";
  *last = metric;
}

}  // namespace

void MetricsRegistry::WritePrometheus(std::ostream& out) const {
  const Snapshot snap = TakeSnapshot();
  std::string last_type;
  for (const auto& [series, v] : snap.counters) {
    const auto [name, labels] = SplitSeries(series);
    const std::string p = PrometheusName(name);
    TypeLine(out, p, "counter", &last_type);
    out << p << labels << " " << v << "\n";
  }
  for (const auto& [series, v] : snap.gauges) {
    const auto [name, labels] = SplitSeries(series);
    const std::string p = PrometheusName(name);
    TypeLine(out, p, "gauge", &last_type);
    out << p << labels << " " << v << "\n";
  }
  for (const auto& [series, h] : snap.histograms) {
    const auto [name, labels] = SplitSeries(series);
    const std::string p = PrometheusName(name);
    TypeLine(out, p, "summary", &last_type);
    out << p << WithQuantileLabel(labels, "0.5") << " " << h.p50 << "\n"
        << p << WithQuantileLabel(labels, "0.99") << " " << h.p99 << "\n"
        << p << WithQuantileLabel(labels, "0.999") << " " << h.p999 << "\n"
        << p << "_count" << labels << " " << h.count << "\n"
        << p << "_sum" << labels << " " << h.sum << "\n";
  }
}

void MetricsRegistry::WriteText(std::ostream& out) const {
  const Snapshot snap = TakeSnapshot();
  for (const auto& [series, v] : snap.counters) {
    out << series << " " << v << "\n";
  }
  for (const auto& [series, v] : snap.gauges) {
    out << series << " " << v << "\n";
  }
  for (const auto& [series, h] : snap.histograms) {
    const auto [name, labels] = SplitSeries(series);
    out << name << "_count" << labels << " " << h.count << "\n"
        << name << "_sum" << labels << " " << h.sum << "\n"
        << name << "_p50" << labels << " " << h.p50 << "\n"
        << name << "_p99" << labels << " " << h.p99 << "\n"
        << name << "_p999" << labels << " " << h.p999 << "\n";
  }
}

}  // namespace setrec
