#ifndef SETREC_OBS_TRACE_H_
#define SETREC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace setrec {

class Tracer;

/// Cross-process trace identity. A request family is named by a `trace_id`
/// minted once at the client; it travels in the frame header (net/frame.h)
/// and is adopted by every process the request touches, so spans recorded
/// by *different* Tracers (client, leader, follower) can be merged into one
/// timeline by tools/trace_merge.py. `parent_span` is the sender-side span
/// id the receiver's first span should hang under (recorded as
/// SpanEvent::remote_parent — span ids are only unique per process, so the
/// remote edge is annotation, not local parentage). `sampled` gates
/// propagation: an unsampled request travels with an empty context.
struct TraceContext {
  std::uint64_t trace_id = 0;  // 0 = untraced
  std::uint64_t parent_span = 0;
  bool sampled = false;

  bool active() const { return trace_id != 0 && sampled; }
};

/// Installs `ctx` as the calling thread's current trace context on `tracer`
/// for the guard's lifetime (restoring the previous context on exit).
/// While installed, every span started on this thread carries
/// ctx.trace_id, and the outermost such span records ctx.parent_span as
/// its remote parent. Null-tracer or inactive-context guards are inert.
class ScopedTraceContext {
 public:
  ScopedTraceContext() = default;
  ScopedTraceContext(Tracer* tracer, const TraceContext& ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  TraceContext saved_;
};

/// RAII span guard. A default-constructed or null-tracer span is inert: the
/// constructor is a single branch and the destructor a branch on a null
/// pointer, so instrumentation sites cost nothing measurable when no Tracer
/// is attached (the null-sink fast path the benches rely on).
///
/// Span names must be string literals (or otherwise outlive the Tracer);
/// they are stored by pointer, never copied.
class TraceSpan {
 public:
  TraceSpan() = default;

  /// Starts a span on `tracer` (no-op when null). The parent is the
  /// innermost span currently open on this thread; when the thread has no
  /// open span — the first span of a forked worker — `parent_hint` is used,
  /// which is how a fan-out's shard spans attach under the span that forked
  /// them (see ExecContext::Fork and StartSpan in core/exec_context.h).
  ///
  /// Trace identity: the thread's installed TraceContext wins (the request
  /// boundary — see ScopedTraceContext), else the innermost open span's
  /// trace id is inherited, else `trace_hint` (a forked worker carrying its
  /// family's id through ExecContext::trace_id()).
  TraceSpan(Tracer* tracer, const char* name, std::uint64_t parent_hint = 0,
            std::uint64_t trace_hint = 0);

  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan(TraceSpan&& other) noexcept
      : tracer_(other.tracer_),
        name_(other.name_),
        id_(other.id_),
        parent_(other.parent_),
        trace_id_(other.trace_id_),
        remote_parent_(other.remote_parent_),
        start_ns_(other.start_ns_) {
    other.tracer_ = nullptr;
  }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      name_ = other.name_;
      id_ = other.id_;
      parent_ = other.parent_;
      trace_id_ = other.trace_id_;
      remote_parent_ = other.remote_parent_;
      start_ns_ = other.start_ns_;
      other.tracer_ = nullptr;
    }
    return *this;
  }

  /// Ends the span now (idempotent; the destructor calls it).
  void End();

  bool active() const { return tracer_ != nullptr; }
  std::uint64_t id() const { return id_; }
  std::uint64_t trace_id() const { return trace_id_; }

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t trace_id_ = 0;
  std::uint64_t remote_parent_ = 0;
  std::uint64_t start_ns_ = 0;
};

/// One completed span. Times are nanoseconds since the Tracer's epoch
/// (construction time), so traces from one Tracer are directly comparable.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t id = 0;
  /// Id of the enclosing span (0 = root). Explicit parentage — not inferred
  /// from timestamps — is what keeps the span *tree* well defined when a
  /// fan-out runs children on pool threads.
  std::uint64_t parent = 0;
  /// The request family this span belongs to (0 = untraced). Adopted from
  /// the thread's installed TraceContext at the request boundary and
  /// inherited by every nested and forked span — the key trace_merge.py
  /// groups on.
  std::uint64_t trace_id = 0;
  /// The *sender-side* span id this span continues (0 = none): recorded
  /// only on the span that joins a remote trace (client span id on the
  /// server's request span, leader span id on a follower's replay span).
  /// Annotation, not parentage — span ids are per-process.
  std::uint64_t remote_parent = 0;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Aggregate of all spans sharing a name.
struct StageStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// Collects spans into per-thread buffers (one mutex acquisition per span
/// end, always uncontended because each buffer is written by exactly one
/// thread) and merges them at flush time. Raw events are capped per thread
/// (kMaxEventsPerThread); beyond the cap events are dropped from the raw
/// list but still folded into the per-stage aggregates, and the drop count
/// is reported — totals never silently lose time.
///
/// Exports: chrome://tracing JSON ("Complete" events; load via
/// chrome://tracing or ui.perfetto.dev), a text summary per stage, and a
/// worker-count-invariant tree signature for determinism tests.
///
/// Thread safety: spans may begin/end concurrently on any thread. The
/// flush-side readers (Events, StageTotals, Write*, TreeSignature) take the
/// same per-buffer locks, so they are safe to call at any time, but a
/// coherent snapshot requires the traced computation to have joined first.
class Tracer {
 public:
  /// Raw events kept per thread; aggregates are unbounded (tiny).
  static constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Innermost span currently open on the *calling* thread (0 = none).
  /// ExecContext::Fork captures this as the parent hint for worker threads.
  std::uint64_t CurrentSpanId() const;

  /// Trace id in effect on the *calling* thread: the installed
  /// TraceContext's id when one is active, else the innermost open span's
  /// (0 = untraced). ExecContext::Fork captures this so pool-thread spans
  /// stay in their request's family.
  std::uint64_t CurrentTraceId() const;

  /// All completed events, merged across threads, ordered by start time.
  std::vector<SpanEvent> Events() const;

  /// Per-stage aggregates (keyed by span name), merged across threads.
  std::map<std::string, StageStats> StageTotals() const;

  /// Canonical string for the span tree with timestamps erased and sibling
  /// subtrees deduplicated: `name{child;child;...}` with children sorted
  /// and uniqued. Dedup makes the signature invariant under the *multiplicity*
  /// of structurally identical siblings, which is exactly the degree of
  /// freedom sharding introduces — 1 shard span or 8 identical ones yield
  /// the same signature, so determinism tests can pin the tree across
  /// worker counts.
  std::string TreeSignature() const;

  /// TreeSignature restricted to the spans of one request family
  /// (SpanEvent::trace_id == trace_id). Spans whose parent lies outside the
  /// family (e.g. a request span under the long-lived session span) become
  /// roots, and — like the unrestricted signature — identical sibling and
  /// root subtrees dedup, so a retried-but-idempotent request family pins
  /// to the same signature whether the server executed it once or twice.
  /// The fault-sweep tests pin this across every frame-fault mode.
  std::string TreeSignatureForTrace(std::uint64_t trace_id) const;

  /// chrome://tracing "Complete" events JSON. Span nesting renders per
  /// thread track; the explicit parent id is carried in args.
  void WriteChromeTrace(std::ostream& out) const;

  /// Human-readable per-stage table, widest total first.
  void WriteSummary(std::ostream& out) const;

  /// Events dropped after a thread buffer filled (still aggregated).
  std::uint64_t dropped_events() const;

  /// Total completed spans (kept + dropped).
  std::uint64_t total_spans() const;

 private:
  friend class TraceSpan;
  friend class ScopedTraceContext;

  /// One open-span stack entry: the span id plus the trace id it carries,
  /// so nested spans inherit their family without a log lookup.
  struct OpenSpan {
    std::uint64_t id = 0;
    std::uint64_t trace_id = 0;
  };

  struct ThreadLog {
    /// Guards events/aggregates/dropped against a concurrent flush; the
    /// owning thread is the only writer.
    mutable std::mutex mu;
    std::vector<SpanEvent> events;
    std::map<const char*, StageStats> aggregates;
    std::uint64_t dropped = 0;
    /// Open-span stack; touched only by the owning thread, no lock needed.
    std::vector<OpenSpan> open;
    /// Trace context installed on the owning thread (ScopedTraceContext);
    /// owning-thread only, like `open`.
    TraceContext ctx;
    std::uint32_t tid = 0;
  };

  /// This thread's buffer, registering it on first use. Cached in
  /// thread-local storage keyed by the tracer's process-unique serial, so
  /// the steady-state cost is a short linear scan and no lock.
  ThreadLog* LogForThisThread();
  const ThreadLog* LogForThisThreadIfAny() const;

  std::uint64_t NowNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  const std::uint64_t serial_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mu_;  // guards logs_
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

}  // namespace setrec

#endif  // SETREC_OBS_TRACE_H_
