#ifndef SETREC_OBS_TRACE_H_
#define SETREC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace setrec {

class Tracer;

/// RAII span guard. A default-constructed or null-tracer span is inert: the
/// constructor is a single branch and the destructor a branch on a null
/// pointer, so instrumentation sites cost nothing measurable when no Tracer
/// is attached (the null-sink fast path the benches rely on).
///
/// Span names must be string literals (or otherwise outlive the Tracer);
/// they are stored by pointer, never copied.
class TraceSpan {
 public:
  TraceSpan() = default;

  /// Starts a span on `tracer` (no-op when null). The parent is the
  /// innermost span currently open on this thread; when the thread has no
  /// open span — the first span of a forked worker — `parent_hint` is used,
  /// which is how a fan-out's shard spans attach under the span that forked
  /// them (see ExecContext::Fork and StartSpan in core/exec_context.h).
  TraceSpan(Tracer* tracer, const char* name, std::uint64_t parent_hint = 0);

  ~TraceSpan() { End(); }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan(TraceSpan&& other) noexcept
      : tracer_(other.tracer_),
        name_(other.name_),
        id_(other.id_),
        parent_(other.parent_),
        start_ns_(other.start_ns_) {
    other.tracer_ = nullptr;
  }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      End();
      tracer_ = other.tracer_;
      name_ = other.name_;
      id_ = other.id_;
      parent_ = other.parent_;
      start_ns_ = other.start_ns_;
      other.tracer_ = nullptr;
    }
    return *this;
  }

  /// Ends the span now (idempotent; the destructor calls it).
  void End();

  bool active() const { return tracer_ != nullptr; }
  std::uint64_t id() const { return id_; }

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t id_ = 0;
  std::uint64_t parent_ = 0;
  std::uint64_t start_ns_ = 0;
};

/// One completed span. Times are nanoseconds since the Tracer's epoch
/// (construction time), so traces from one Tracer are directly comparable.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t id = 0;
  /// Id of the enclosing span (0 = root). Explicit parentage — not inferred
  /// from timestamps — is what keeps the span *tree* well defined when a
  /// fan-out runs children on pool threads.
  std::uint64_t parent = 0;
  std::uint32_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
};

/// Aggregate of all spans sharing a name.
struct StageStats {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
};

/// Collects spans into per-thread buffers (one mutex acquisition per span
/// end, always uncontended because each buffer is written by exactly one
/// thread) and merges them at flush time. Raw events are capped per thread
/// (kMaxEventsPerThread); beyond the cap events are dropped from the raw
/// list but still folded into the per-stage aggregates, and the drop count
/// is reported — totals never silently lose time.
///
/// Exports: chrome://tracing JSON ("Complete" events; load via
/// chrome://tracing or ui.perfetto.dev), a text summary per stage, and a
/// worker-count-invariant tree signature for determinism tests.
///
/// Thread safety: spans may begin/end concurrently on any thread. The
/// flush-side readers (Events, StageTotals, Write*, TreeSignature) take the
/// same per-buffer locks, so they are safe to call at any time, but a
/// coherent snapshot requires the traced computation to have joined first.
class Tracer {
 public:
  /// Raw events kept per thread; aggregates are unbounded (tiny).
  static constexpr std::size_t kMaxEventsPerThread = std::size_t{1} << 20;

  Tracer();
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Innermost span currently open on the *calling* thread (0 = none).
  /// ExecContext::Fork captures this as the parent hint for worker threads.
  std::uint64_t CurrentSpanId() const;

  /// All completed events, merged across threads, ordered by start time.
  std::vector<SpanEvent> Events() const;

  /// Per-stage aggregates (keyed by span name), merged across threads.
  std::map<std::string, StageStats> StageTotals() const;

  /// Canonical string for the span tree with timestamps erased and sibling
  /// subtrees deduplicated: `name{child;child;...}` with children sorted
  /// and uniqued. Dedup makes the signature invariant under the *multiplicity*
  /// of structurally identical siblings, which is exactly the degree of
  /// freedom sharding introduces — 1 shard span or 8 identical ones yield
  /// the same signature, so determinism tests can pin the tree across
  /// worker counts.
  std::string TreeSignature() const;

  /// chrome://tracing "Complete" events JSON. Span nesting renders per
  /// thread track; the explicit parent id is carried in args.
  void WriteChromeTrace(std::ostream& out) const;

  /// Human-readable per-stage table, widest total first.
  void WriteSummary(std::ostream& out) const;

  /// Events dropped after a thread buffer filled (still aggregated).
  std::uint64_t dropped_events() const;

  /// Total completed spans (kept + dropped).
  std::uint64_t total_spans() const;

 private:
  friend class TraceSpan;

  struct ThreadLog {
    /// Guards events/aggregates/dropped against a concurrent flush; the
    /// owning thread is the only writer.
    mutable std::mutex mu;
    std::vector<SpanEvent> events;
    std::map<const char*, StageStats> aggregates;
    std::uint64_t dropped = 0;
    /// Open-span stack; touched only by the owning thread, no lock needed.
    std::vector<std::uint64_t> open;
    std::uint32_t tid = 0;
  };

  /// This thread's buffer, registering it on first use. Cached in
  /// thread-local storage keyed by the tracer's process-unique serial, so
  /// the steady-state cost is a short linear scan and no lock.
  ThreadLog* LogForThisThread();
  const ThreadLog* LogForThisThreadIfAny() const;

  std::uint64_t NowNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  const std::uint64_t serial_;
  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mu_;  // guards logs_
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

}  // namespace setrec

#endif  // SETREC_OBS_TRACE_H_
