#include "obs/explain.h"

#include <chrono>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "algebraic/method_library.h"
#include "algebraic/parallel.h"
#include "core/sequential.h"
#include "obs/json_escape.h"
#include "objrel/encoding.h"
#include "relational/evaluator.h"
#include "sql/engine.h"

namespace setrec {

namespace {

std::string RenderScheme(const RelationScheme& scheme) {
  std::string out = "(";
  for (std::size_t i = 0; i < scheme.arity(); ++i) {
    if (i > 0) out += ", ";
    out += scheme.attribute(i).name;
  }
  out += ")";
  return out;
}

/// Copies the evaluator's per-node statistics (keyed by the expression node
/// the evaluator memoized under) onto a plan node.
void AttachStats(
    PlanNode& node, const Expr* key,
    const std::unordered_map<const Expr*, EvalNodeStats>* stats) {
  if (stats == nullptr) return;
  auto it = stats->find(key);
  if (it == stats->end()) return;  // never evaluated (guard short-circuit)
  node.analyzed = true;
  node.actual_rows = it->second.rows;
  node.build_rows = it->second.build_rows;
  node.probe_rows = it->second.probe_rows;
  node.cache_hits = it->second.cache_hits;
  node.wall_ns = it->second.wall_ns;
  node.backend = it->second.backend;
}

/// True when the node is a σ-chain whose bottom is a Cartesian product —
/// exactly the shape the evaluator fuses into a hash join.
bool IsJoinChain(const Expr& expr) {
  if (expr.op() != Expr::Op::kSelectEq && expr.op() != Expr::Op::kSelectNeq) {
    return false;
  }
  const Expr* node = &expr;
  while (node->op() == Expr::Op::kSelectEq ||
         node->op() == Expr::Op::kSelectNeq) {
    node = node->child().get();
  }
  return node->op() == Expr::Op::kProduct;
}

Result<PlanNode> BuildPlan(
    const ExprPtr& expr, const Catalog& catalog,
    const std::unordered_map<const Expr*, EvalNodeStats>* stats);

/// Renders the fused hash join for a σ-chain over a product, classifying
/// the chain's conditions exactly as the evaluator does: cross equalities
/// are hash keys, per-side conditions are build/probe filters, and cross
/// non-equalities are residual filters applied per match.
Result<PlanNode> BuildJoinPlan(
    const ExprPtr& top, const Catalog& catalog,
    const std::unordered_map<const Expr*, EvalNodeStats>* stats) {
  struct Condition {
    bool equal;
    std::string a, b;
  };
  std::vector<Condition> conditions;
  const Expr* node = top.get();
  while (node->op() == Expr::Op::kSelectEq ||
         node->op() == Expr::Op::kSelectNeq) {
    conditions.push_back(Condition{node->op() == Expr::Op::kSelectEq,
                                   node->attr_a(), node->attr_b()});
    node = node->child().get();
  }
  SETREC_ASSIGN_OR_RETURN(RelationScheme left_scheme,
                          InferScheme(*node->left(), catalog));
  SETREC_ASSIGN_OR_RETURN(RelationScheme scheme, InferScheme(*top, catalog));

  std::string keys, left_filters, right_filters, residual;
  auto append = [](std::string& to, const Condition& c) {
    if (!to.empty()) to += ", ";
    to += c.a + (c.equal ? "=" : "≠") + c.b;
  };
  for (const Condition& c : conditions) {
    const bool a_left = left_scheme.HasAttribute(c.a);
    const bool b_left = left_scheme.HasAttribute(c.b);
    if (a_left && b_left) {
      append(left_filters, c);
    } else if (!a_left && !b_left) {
      append(right_filters, c);
    } else if (c.equal) {
      append(keys, c);
    } else {
      append(residual, c);
    }
  }

  PlanNode join;
  join.op = "HashJoin";
  join.detail = "keys: " + (keys.empty() ? std::string("none (cross)") : keys);
  if (!left_filters.empty()) join.detail += "; probe filter: " + left_filters;
  if (!right_filters.empty()) join.detail += "; build filter: " + right_filters;
  if (!residual.empty()) join.detail += "; residual: " + residual;
  join.scheme = RenderScheme(scheme);
  // The evaluator records the whole chain's stats under the chain's top
  // node; the collapsed operators in between never evaluate separately.
  AttachStats(join, top.get(), stats);
  SETREC_ASSIGN_OR_RETURN(PlanNode left, BuildPlan(node->left(), catalog, stats));
  SETREC_ASSIGN_OR_RETURN(PlanNode right,
                          BuildPlan(node->right(), catalog, stats));
  join.children.push_back(std::move(left));
  join.children.push_back(std::move(right));
  return join;
}

Result<PlanNode> BuildPlan(
    const ExprPtr& expr, const Catalog& catalog,
    const std::unordered_map<const Expr*, EvalNodeStats>* stats) {
  if (IsJoinChain(*expr)) return BuildJoinPlan(expr, catalog, stats);

  PlanNode node;
  SETREC_ASSIGN_OR_RETURN(RelationScheme scheme, InferScheme(*expr, catalog));
  node.scheme = RenderScheme(scheme);
  AttachStats(node, expr.get(), stats);
  switch (expr->op()) {
    case Expr::Op::kRelation:
      node.op = "Scan " + expr->relation_name();
      return node;
    case Expr::Op::kUnion:
      node.op = "Union";
      break;
    case Expr::Op::kDifference:
      node.op = "Difference";
      break;
    case Expr::Op::kProduct: {
      node.op = "Product";
      for (const ExprPtr& side : {expr->left(), expr->right()}) {
        if (side->op() == Expr::Op::kProject && side->projection().empty()) {
          node.detail = "π∅-guarded";  // evaluator skips the other side
          break;                       // when the guard side is empty
        }
      }
      break;
    }
    case Expr::Op::kSelectEq:
    case Expr::Op::kSelectNeq: {
      node.op = "Select";
      node.detail = expr->attr_a() +
                    (expr->op() == Expr::Op::kSelectEq ? "=" : "≠") +
                    expr->attr_b();
      break;
    }
    case Expr::Op::kProject: {
      node.op = "Project";
      if (expr->projection().empty()) {
        node.detail = "∅";
      } else {
        for (const std::string& a : expr->projection()) {
          if (!node.detail.empty()) node.detail += ", ";
          node.detail += a;
        }
      }
      break;
    }
    case Expr::Op::kRename:
      node.op = "Rename";
      node.detail = expr->rename_from() + "→" + expr->rename_to();
      break;
  }
  if (expr->op() == Expr::Op::kUnion || expr->op() == Expr::Op::kDifference ||
      expr->op() == Expr::Op::kProduct) {
    SETREC_ASSIGN_OR_RETURN(PlanNode left,
                            BuildPlan(expr->left(), catalog, stats));
    SETREC_ASSIGN_OR_RETURN(PlanNode right,
                            BuildPlan(expr->right(), catalog, stats));
    node.children.push_back(std::move(left));
    node.children.push_back(std::move(right));
  } else {
    SETREC_ASSIGN_OR_RETURN(PlanNode child,
                            BuildPlan(expr->child(), catalog, stats));
    node.children.push_back(std::move(child));
  }
  return node;
}

std::string FormatNs(std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms",
                static_cast<double>(ns) / 1e6);
  return buf;
}

void RenderNode(const PlanNode& node, const std::string& indent, bool root,
                std::string& out) {
  out += indent;
  if (!root) out += "-> ";
  out += node.op;
  if (!node.detail.empty()) out += " [" + node.detail + "]";
  out += " :: " + node.scheme;
  if (node.analyzed) {
    out += " (rows=" + std::to_string(node.actual_rows);
    if (node.build_rows > 0 || node.probe_rows > 0) {
      out += " build=" + std::to_string(node.build_rows) +
             " probes=" + std::to_string(node.probe_rows);
    }
    if (node.cache_hits > 0) {
      out += " hits=" + std::to_string(node.cache_hits);
    }
    if (!node.backend.empty()) {
      out += " backend=" + node.backend;
    }
    out += " time=" + FormatNs(node.wall_ns) + ")";
  }
  out += "\n";
  const std::string child_indent = indent + (root ? "  " : "   ");
  for (const PlanNode& child : node.children) {
    RenderNode(child, child_indent, false, out);
  }
}

void NodeToJson(const PlanNode& node, std::ostream& out) {
  out << "{\"op\":" << JsonQuoted(node.op) << ",\"detail\":"
      << JsonQuoted(node.detail) << ",\"scheme\":" << JsonQuoted(node.scheme);
  if (node.analyzed) {
    out << ",\"rows\":" << node.actual_rows << ",\"build\":" << node.build_rows
        << ",\"probes\":" << node.probe_rows << ",\"cache_hits\":"
        << node.cache_hits << ",\"wall_ns\":" << node.wall_ns
        << ",\"backend\":" << JsonQuoted(node.backend);
  }
  out << ",\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out << ",";
    NodeToJson(node.children[i], out);
  }
  out << "]}";
}

/// A catalog over the database's actual relations (ANALYZE type-checks
/// against the data it ran on, not a separate schema).
Catalog DatabaseCatalog(const Database& database) {
  Catalog catalog;
  for (const std::string& name : database.Names()) {
    Result<const Relation*> rel = database.Find(name);
    if (rel.ok()) (void)catalog.AddRelation(name, (*rel)->scheme());
  }
  return catalog;
}

std::uint64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - since)
          .count());
}

}  // namespace

std::string ExplainPlan::ToText() const {
  std::string out = title + "\n";
  for (const PlanNode& root : roots) RenderNode(root, "", true, out);
  if (!counters.empty()) {
    out += "logical counters:\n";
    for (const auto& [name, value] : counters) {
      out += "  " + name + " = " + std::to_string(value) + "\n";
    }
  }
  return out;
}

std::string ExplainPlan::ToJson() const {
  std::ostringstream out;
  out << "{\"title\":" << JsonQuoted(title) << ",\"analyzed\":"
      << (analyzed ? "true" : "false") << ",\"roots\":[";
  for (std::size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) out << ",";
    NodeToJson(roots[i], out);
  }
  out << "],\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out << ",";
    first = false;
    out << JsonQuoted(name) << ":" << value;
  }
  out << "}}";
  return out.str();
}

const std::vector<std::string>& LogicalCounterNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "apply.edges",
      "chase.fd_merges",
      "chase.ind_additions",
      "chase.rounds",
      "containment.tests",
      "evaluator.join_build_rows",
      "evaluator.join_probes",
      "evaluator.rows",
      "homomorphism.candidates",
      "homomorphism.pruned",
      "sequential.receivers",
  };
  return *names;
}

std::map<std::string, std::uint64_t> LogicalCounters(
    const MetricsRegistry& metrics) {
  const MetricsRegistry::Snapshot snap = metrics.TakeSnapshot();
  std::map<std::string, std::uint64_t> out;
  for (const std::string& name : LogicalCounterNames()) {
    auto it = snap.counters.find(name);
    out[name] = it == snap.counters.end() ? 0 : it->second;
  }
  return out;
}

Result<ExplainPlan> ExplainExpression(const ExprPtr& expr,
                                      const Catalog& catalog) {
  ExplainPlan plan;
  plan.title = "EXPLAIN: " + ExprToString(*expr);
  SETREC_ASSIGN_OR_RETURN(PlanNode root, BuildPlan(expr, catalog, nullptr));
  plan.roots.push_back(std::move(root));
  return plan;
}

Result<ExplainPlan> ExplainExpressionAnalyze(const ExprPtr& expr,
                                             const Database& database,
                                             const ExecOptions& options) {
  MetricsRegistry local_metrics;
  ExecOptions opts = options;
  if (opts.metrics == nullptr) opts.metrics = &local_metrics;
  ExecScope scope(opts);
  Evaluator evaluator(&database, scope.ctx(), opts.pool);
  evaluator.set_backend(opts.backend);
  std::unordered_map<const Expr*, EvalNodeStats> stats;
  evaluator.set_node_stats(&stats);
  SETREC_RETURN_IF_ERROR(evaluator.Eval(expr).status());

  const Catalog catalog = DatabaseCatalog(database);
  ExplainPlan plan;
  plan.title = "EXPLAIN ANALYZE: " + ExprToString(*expr);
  plan.analyzed = true;
  SETREC_ASSIGN_OR_RETURN(PlanNode root, BuildPlan(expr, catalog, &stats));
  plan.roots.push_back(std::move(root));
  plan.counters = LogicalCounters(*scope.ctx().metrics());
  return plan;
}

Result<ExplainPlan> ExplainSetOrientedUpdate(const Instance& instance,
                                             PropertyId property,
                                             const ExprPtr& receiver_query,
                                             bool analyze,
                                             const ExecOptions& options) {
  const Schema& schema = instance.schema();
  SETREC_ASSIGN_OR_RETURN(std::unique_ptr<AlgebraicUpdateMethod> assign,
                          MakeAssignArgMethod(&schema, property));
  SETREC_ASSIGN_OR_RETURN(Catalog catalog, EncodeCatalog(schema));
  const std::string& prop_name = schema.property(property).name;

  ExplainPlan plan;
  plan.title = std::string(analyze ? "EXPLAIN ANALYZE" : "EXPLAIN") +
               ": set-oriented UPDATE " + prop_name;
  plan.analyzed = analyze;

  std::unordered_map<const Expr*, EvalNodeStats> stats;
  PlanNode apply;
  apply.op = "Apply";
  apply.detail = prop_name + " := arg1 over the receiver key set";

  if (analyze) {
    MetricsRegistry local_metrics;
    ExecOptions opts = options;
    if (opts.metrics == nullptr) opts.metrics = &local_metrics;
    ExecScope scope(opts);
    ExecContext& ctx = scope.ctx();

    // Phase one: evaluate the receiver query against the encoded input
    // state, collecting per-node statistics.
    SETREC_ASSIGN_OR_RETURN(Database db, EncodeInstance(instance));
    Evaluator evaluator(&db, ctx, opts.pool);
    evaluator.set_backend(opts.backend);
    evaluator.set_node_stats(&stats);
    SETREC_ASSIGN_OR_RETURN(Relation rows, evaluator.Eval(receiver_query));
    if (rows.scheme().arity() != assign->signature().size()) {
      return Status::InvalidArgument(
          "receiver query scheme does not match the update signature");
    }
    std::vector<Receiver> receivers;
    receivers.reserve(rows.size());
    for (const Tuple* t : rows.SortedTuples()) {
      SETREC_ASSIGN_OR_RETURN(
          Receiver r,
          Receiver::Make(assign->signature(), t->values(), instance));
      receivers.push_back(std::move(r));
    }
    if (!IsKeySet(receivers)) {
      return Status::FailedPrecondition(
          "set-oriented update would assign two values to one row; the "
          "receiver query must produce a key set");
    }

    // Phase two: apply to a scratch copy so the caller's instance is
    // untouched; the metrics registry picks up apply.edges and
    // sequential.receivers.
    const auto start = std::chrono::steady_clock::now();
    SETREC_RETURN_IF_ERROR(
        ApplySequence(*assign, instance, receivers, ctx).status());
    apply.analyzed = true;
    apply.actual_rows = receivers.size();
    apply.wall_ns = ElapsedNs(start);
    plan.counters = LogicalCounters(*ctx.metrics());
  }

  PlanNode phase1;
  phase1.op = "ReceiverQuery";
  phase1.detail = "phase 1: evaluated against the pre-statement state";
  SETREC_ASSIGN_OR_RETURN(
      PlanNode query_plan,
      BuildPlan(receiver_query, catalog, analyze ? &stats : nullptr));
  phase1.scheme = query_plan.scheme;
  if (analyze) {
    phase1.analyzed = query_plan.analyzed;
    phase1.actual_rows = query_plan.actual_rows;
    phase1.wall_ns = query_plan.wall_ns;
  }
  phase1.children.push_back(std::move(query_plan));
  apply.scheme = phase1.scheme;
  plan.roots.push_back(std::move(phase1));
  plan.roots.push_back(std::move(apply));
  return plan;
}

Result<ExplainPlan> ExplainParallelApply(const AlgebraicUpdateMethod& method,
                                         const Instance& instance,
                                         std::span<const Receiver> receivers,
                                         bool analyze,
                                         const ExecOptions& options) {
  const MethodContext& mctx = method.context();
  SETREC_ASSIGN_OR_RETURN(Catalog catalog, ParCatalog(mctx));

  ExplainPlan plan;
  plan.title = std::string(analyze ? "EXPLAIN ANALYZE" : "EXPLAIN") +
               ": parallel application of " +
               (method.name().empty() ? "method" : method.name());
  plan.analyzed = analyze;

  // One par(E) pipeline per statement (Definition 6.1).
  std::vector<std::pair<PropertyId, ExprPtr>> pipelines;
  pipelines.reserve(method.statements().size());
  for (const UpdateStatement& stmt : method.statements()) {
    SETREC_ASSIGN_OR_RETURN(ExprPtr par_expr,
                            ParTransform(stmt.expression, mctx));
    pipelines.emplace_back(stmt.property, par_expr);
  }

  std::unordered_map<const Expr*, EvalNodeStats> stats;
  if (analyze) {
    MetricsRegistry local_metrics;
    ExecOptions opts = options;
    if (opts.metrics == nullptr) opts.metrics = &local_metrics;
    ExecScope scope(opts);

    // Instantiate rec with the whole receiver set and evaluate every
    // pipeline — the single-shard runtime path, whose logical counts the
    // sharded runtime reproduces exactly.
    SETREC_ASSIGN_OR_RETURN(Database db, EncodeInstance(instance));
    SETREC_ASSIGN_OR_RETURN(RelationScheme rec_scheme,
                            RecScheme(mctx.signature));
    Relation rec(rec_scheme);
    rec.Reserve(receivers.size());
    for (const Receiver& t : receivers) {
      std::vector<ObjectId> values;
      values.reserve(t.size());
      for (std::size_t i = 0; i < t.size(); ++i) {
        values.push_back(t.object_at(i));
      }
      SETREC_RETURN_IF_ERROR(rec.Insert(Tuple(std::move(values))));
    }
    db.Put(kRecRelation, std::move(rec));
    Evaluator evaluator(&db, scope.ctx(), opts.pool);
    evaluator.set_backend(opts.backend);
    evaluator.set_node_stats(&stats);
    for (const auto& [property, par_expr] : pipelines) {
      SETREC_RETURN_IF_ERROR(evaluator.Eval(par_expr).status());
    }
    plan.counters = LogicalCounters(*scope.ctx().metrics());
  }

  for (const auto& [property, par_expr] : pipelines) {
    PlanNode root;
    root.op = "ParStatement";
    root.detail = mctx.schema->property(property).name + " := par(E)";
    SETREC_ASSIGN_OR_RETURN(
        PlanNode body,
        BuildPlan(par_expr, catalog, analyze ? &stats : nullptr));
    root.scheme = body.scheme;
    if (analyze) {
      root.analyzed = body.analyzed;
      root.actual_rows = body.actual_rows;
      root.wall_ns = body.wall_ns;
    }
    root.children.push_back(std::move(body));
    plan.roots.push_back(std::move(root));
  }
  return plan;
}

}  // namespace setrec
