#ifndef SETREC_OBS_JSON_ESCAPE_H_
#define SETREC_OBS_JSON_ESCAPE_H_

#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace setrec {

/// Writes `s` escaped for use inside a JSON string literal (RFC 8259):
/// quote, backslash, the short escapes \b \f \n \r \t, and \u00XX for every
/// other control character below 0x20. Bytes ≥ 0x80 pass through untouched
/// (the writers emit UTF-8, and JSON strings carry raw UTF-8 fine).
///
/// Every JSON writer in the tree (chrome-trace exporter, flight-recorder
/// dumps, decision certificates, bench artifacts) must go through this one
/// function — hand-rolled escaping is how span names with control characters
/// used to produce unparseable traces.
inline void JsonEscape(std::ostream& out, std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\b':
        out << "\\b";
        break;
      case '\f':
        out << "\\f";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default: {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          out << "\\u00" << kHex[(u >> 4) & 0xf] << kHex[u & 0xf];
        } else {
          out << c;
        }
      }
    }
  }
}

/// `s` escaped and wrapped in double quotes, as a string.
inline std::string JsonQuoted(std::string_view s) {
  std::ostringstream out;
  out << '"';
  JsonEscape(out, s);
  out << '"';
  return out.str();
}

}  // namespace setrec

#endif  // SETREC_OBS_JSON_ESCAPE_H_
