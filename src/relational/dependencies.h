#ifndef SETREC_RELATIONAL_DEPENDENCIES_H_
#define SETREC_RELATIONAL_DEPENDENCIES_H_

#include <string>
#include <vector>

#include "relational/relation.h"

namespace setrec {

/// A functional dependency R : X → A (Appendix A). X may be empty — the
/// Theorem 5.6 reduction uses ∅ → self to force the special receiver
/// relations to hold at most one tuple.
struct FunctionalDependency {
  std::string relation;
  std::vector<std::string> lhs;
  std::string rhs;
};

/// A *full* inclusion dependency R[A1...Ak] ⊆ S (Appendix A): the right-hand
/// side covers exactly the whole scheme of S in its natural attribute order,
/// so only the source-side attribute list is stored. The object-relational
/// encoding emits Ca[C] ⊆ C and Ca[a] ⊆ B for every schema edge (C, a, B).
struct InclusionDependency {
  std::string from_relation;
  std::vector<std::string> from_attrs;
  std::string to_relation;
};

/// A disjointness dependency C[C] ∩ C'[C'] = ∅ between two unary relations
/// (Section 5.1). In this library's typed model these hold structurally
/// (values carry their class); the explicit form exists for documentation
/// and for validating foreign data.
struct DisjointnessDependency {
  std::string relation_a;
  std::string relation_b;
};

/// The dependency set Σ under which expression equivalence is decided.
struct DependencySet {
  std::vector<FunctionalDependency> fds;
  std::vector<InclusionDependency> inds;
  std::vector<DisjointnessDependency> disjointness;
};

/// Checks whether `database` satisfies the given dependency. A missing
/// relation fails with NotFound; an ill-formed dependency (unknown
/// attribute, arity mismatch against the full-IND target) fails with
/// InvalidArgument.
Result<bool> Satisfies(const Database& database,
                       const FunctionalDependency& fd);
Result<bool> Satisfies(const Database& database,
                       const InclusionDependency& ind);
Result<bool> Satisfies(const Database& database,
                       const DisjointnessDependency& dd);

/// True when the database satisfies every dependency in the set.
Result<bool> SatisfiesAll(const Database& database, const DependencySet& deps);

}  // namespace setrec

#endif  // SETREC_RELATIONAL_DEPENDENCIES_H_
