#include "relational/builder.h"

#include <cassert>

namespace setrec::ra {

ExprPtr Rel(std::string name) { return Expr::Relation(std::move(name)); }

ExprPtr Union(ExprPtr l, ExprPtr r) {
  return Expr::Union(std::move(l), std::move(r));
}

ExprPtr Diff(ExprPtr l, ExprPtr r) {
  return Expr::Difference(std::move(l), std::move(r));
}

ExprPtr Product(ExprPtr l, ExprPtr r) {
  return Expr::Product(std::move(l), std::move(r));
}

ExprPtr SelectEq(ExprPtr e, std::string a, std::string b) {
  return Expr::SelectEq(std::move(e), std::move(a), std::move(b));
}

ExprPtr SelectNeq(ExprPtr e, std::string a, std::string b) {
  return Expr::SelectNeq(std::move(e), std::move(a), std::move(b));
}

ExprPtr Project(ExprPtr e, std::vector<std::string> attrs) {
  return Expr::Project(std::move(e), std::move(attrs));
}

ExprPtr Rename(ExprPtr e, std::string from, std::string to) {
  return Expr::Rename(std::move(e), std::move(from), std::move(to));
}

ExprPtr JoinEq(ExprPtr l, ExprPtr r, std::string a, std::string b) {
  return SelectEq(Product(std::move(l), std::move(r)), std::move(a),
                  std::move(b));
}

ExprPtr JoinNeq(ExprPtr l, ExprPtr r, std::string a, std::string b) {
  return SelectNeq(Product(std::move(l), std::move(r)), std::move(a),
                   std::move(b));
}

ExprPtr Guard(ExprPtr e) { return Project(std::move(e), {}); }

ExprPtr UnionAll(std::vector<ExprPtr> exprs) {
  assert(!exprs.empty());
  ExprPtr out = exprs[0];
  for (std::size_t i = 1; i < exprs.size(); ++i) {
    out = Union(std::move(out), exprs[i]);
  }
  return out;
}

ExprPtr ProductAll(std::vector<ExprPtr> exprs) {
  assert(!exprs.empty());
  ExprPtr out = exprs[0];
  for (std::size_t i = 1; i < exprs.size(); ++i) {
    out = Product(std::move(out), exprs[i]);
  }
  return out;
}

}  // namespace setrec::ra
