#ifndef SETREC_RELATIONAL_SCHEMA_H_
#define SETREC_RELATIONAL_SCHEMA_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/ids.h"
#include "core/status.h"

namespace setrec {

/// One attribute of a relation scheme: a name plus a class domain. The typed
/// relational model (Section 5.1 / Appendix A) associates every attribute
/// with one of a number of pairwise disjoint domains; here a domain is a
/// class of the object-base schema. Typing realizes the paper's disjointness
/// dependencies structurally.
struct Attribute {
  std::string name;
  ClassId domain;

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// An ordered relation scheme. Attribute names are unique within a scheme.
class RelationScheme {
 public:
  RelationScheme() = default;

  /// Builds a scheme; fails on duplicate attribute names.
  static Result<RelationScheme> Make(std::vector<Attribute> attributes);

  std::size_t arity() const { return attributes_.size(); }
  const Attribute& attribute(std::size_t i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  bool HasAttribute(std::string_view name) const;
  /// Positional index of the named attribute.
  Result<std::size_t> IndexOf(std::string_view name) const;

  friend bool operator==(const RelationScheme&, const RelationScheme&) =
      default;

 private:
  std::vector<Attribute> attributes_;
};

/// The catalog of a relational database schema: relation names with their
/// schemes. Built by the object-relational encoding (one unary scheme per
/// class, one binary scheme per property) and extended with the special
/// `self`/`arg_i`/`rec` relations by the update-method machinery.
class Catalog {
 public:
  Status AddRelation(std::string name, RelationScheme scheme);

  bool Has(std::string_view name) const;
  Result<const RelationScheme*> Find(std::string_view name) const;

  /// Relation names in deterministic (sorted) order.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, RelationScheme, std::less<>> relations_;
};

}  // namespace setrec

#endif  // SETREC_RELATIONAL_SCHEMA_H_
