#ifndef SETREC_RELATIONAL_EXPRESSION_H_
#define SETREC_RELATIONAL_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/schema.h"

namespace setrec {

class Expr;
/// Expressions are immutable and freely shared: substitution (used heavily
/// by the Theorem 5.6 reduction) builds DAGs, and the evaluator memoizes per
/// node, so a shared subexpression is computed once.
using ExprPtr = std::shared_ptr<const Expr>;

/// A relational algebra expression (Section 5.1): the standard algebra with
/// union, difference, Cartesian product, equality selection, projection and
/// renaming; the *positive* algebra (Definition 5.2) drops difference and
/// adds non-equality selection. Both selections are attribute-to-attribute
/// (the paper's algebra is constant-free).
class Expr {
 public:
  enum class Op {
    kRelation,   // named relation reference
    kUnion,      // left ∪ right (identical schemes)
    kDifference, // left − right (identical schemes); NOT positive
    kProduct,    // left × right (disjoint attribute names)
    kSelectEq,   // σ_{a=b}(child)
    kSelectNeq,  // σ_{a≠b}(child); positive-algebra extension
    kProject,    // π_{attrs}(child); attrs may be empty (π_∅ guard)
    kRename,     // ρ_{from→to}(child)
  };

  // Factories. These only assemble the tree; schemes are checked by
  // InferScheme against a catalog.
  static ExprPtr Relation(std::string name);
  static ExprPtr Union(ExprPtr left, ExprPtr right);
  static ExprPtr Difference(ExprPtr left, ExprPtr right);
  static ExprPtr Product(ExprPtr left, ExprPtr right);
  static ExprPtr SelectEq(ExprPtr child, std::string a, std::string b);
  static ExprPtr SelectNeq(ExprPtr child, std::string a, std::string b);
  static ExprPtr Project(ExprPtr child, std::vector<std::string> attrs);
  static ExprPtr Rename(ExprPtr child, std::string from, std::string to);

  Op op() const { return op_; }
  const std::string& relation_name() const { return relation_name_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  const ExprPtr& child() const { return left_; }
  const std::string& attr_a() const { return attr_a_; }
  const std::string& attr_b() const { return attr_b_; }
  const std::vector<std::string>& projection() const { return projection_; }
  const std::string& rename_from() const { return attr_a_; }
  const std::string& rename_to() const { return attr_b_; }

 private:
  explicit Expr(Op op) : op_(op) {}

  Op op_;
  std::string relation_name_;
  ExprPtr left_;
  ExprPtr right_;
  std::string attr_a_;
  std::string attr_b_;
  std::vector<std::string> projection_;
};

/// True when the expression lies in the positive algebra (Definition 5.2):
/// no difference operator anywhere.
bool IsPositive(const Expr& expr);

/// Names of all relations referenced by the expression, sorted and deduped.
std::vector<std::string> ReferencedRelations(const Expr& expr);

/// Validates the expression against `catalog` and computes its result
/// scheme: union/difference need identical schemes, product needs disjoint
/// attribute names, selections need both attributes present with equal
/// domains, projection needs distinct present attributes, renaming needs a
/// present source and a fresh target (domains are preserved automatically).
Result<RelationScheme> InferScheme(const Expr& expr, const Catalog& catalog);

/// Replaces every reference to relation `name` by `replacement` (used by the
/// Theorem 5.6 reduction, which substitutes E_b[t] for Cb). Shares untouched
/// subtrees.
ExprPtr SubstituteRelation(const ExprPtr& expr, const std::string& name,
                           const ExprPtr& replacement);

/// Renders the expression with conventional notation, e.g.
/// "π[f](σ[self=D](self × Df)) ∪ arg1".
std::string ExprToString(const Expr& expr);

}  // namespace setrec

#endif  // SETREC_RELATIONAL_EXPRESSION_H_
