#include "relational/evaluator.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <unordered_map>
#include <vector>

#include "relational/vectorized/engine.h"

namespace setrec {

Evaluator::Evaluator(const Database* database, ExecContext& ctx,
                     ThreadPool* pool)
    : database_(database), ctx_(&ctx), pool_(pool) {}

Evaluator::Evaluator(const Database* database, const ExecOptions& options)
    : database_(database), scope_(std::in_place, options) {
  ctx_ = &scope_->ctx();
  pool_ = options.pool;
  backend_ = options.backend;
}

Evaluator::~Evaluator() = default;

namespace {

/// Arity of a product/join output, for per-tuple memory accounting.
std::size_t out_arity(const Relation& l, const Relation& r) {
  return l.scheme().arity() + r.scheme().arity();
}

}  // namespace

Result<const Catalog*> Evaluator::DatabaseCatalog() {
  if (!catalog_.has_value()) {
    Catalog catalog;
    for (const std::string& name : database_->Names()) {
      SETREC_ASSIGN_OR_RETURN(const Relation* rel, database_->Find(name));
      SETREC_RETURN_IF_ERROR(catalog.AddRelation(name, rel->scheme()));
    }
    catalog_ = std::move(catalog);
  }
  return &*catalog_;
}

Result<Relation> Evaluator::Eval(const ExprPtr& expr) {
  // Compatibility wrapper: one copy out of the shared memo, for callers
  // that want an owned Relation. Read-only callers use EvalShared.
  SETREC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> result,
                          EvalShared(expr));
  return *result;
}

bool Evaluator::UseVectorized(const Expr& expr) {
  switch (backend_) {
    case ExecBackend::kInterpreter:
      return false;
    case ExecBackend::kVectorized:
      return vectorized::Covers(expr);
    case ExecBackend::kAuto:
      break;
  }
  if (!auto_vectorize_.has_value()) {
    // Latched once per evaluator: mixing backends within one evaluator
    // would split the result memo into two domains and skew the cache-hit
    // counters that EXPLAIN ANALYZE reports. A pool with real parallelism
    // keeps the interpreter so large joins retain the partitioned probe.
    const bool parallel = pool_ != nullptr && pool_->num_workers() > 1;
    auto_vectorize_ =
        !parallel && vectorized::EstimatedInputRows(expr, *database_) >=
                         kAutoVectorizeInputRows;
  }
  return *auto_vectorize_ && vectorized::Covers(expr);
}

Result<std::shared_ptr<const Relation>> Evaluator::EvalShared(
    const ExprPtr& expr) {
  if (UseVectorized(*expr)) {
    if (engine_ == nullptr) {
      engine_ = std::make_unique<vectorized::Engine>(database_, ctx_);
    }
    return engine_->Execute(expr, node_stats_);
  }
  auto it = cache_.find(expr.get());
  if (it != cache_.end()) {
    if (node_stats_ != nullptr) ++(*node_stats_)[expr.get()].cache_hits;
    return it->second;
  }
  if (node_stats_ == nullptr) {
    SETREC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> result,
                            EvalSharedUncached(*expr));
    cache_.emplace(expr.get(), result);
    return result;
  }
  const auto start = std::chrono::steady_clock::now();
  Result<std::shared_ptr<const Relation>> result = EvalSharedUncached(*expr);
  // Children evaluated inside EvalUncached already charged their own spans;
  // wall_ns is inclusive by design (EXPLAIN ANALYZE renders a tree, so the
  // reader sees child times indented under it).
  (*node_stats_)[expr.get()].wall_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (!result.ok()) return result;
  (*node_stats_)[expr.get()].rows = (*result)->size();
  cache_.emplace(expr.get(), *result);
  return result;
}

Result<std::shared_ptr<const Relation>> Evaluator::EvalSharedUncached(
    const Expr& expr) {
  if (expr.op() == Expr::Op::kRelation) {
    // Leaf: alias the Database's shared storage — no copy at all.
    return database_->FindShared(expr.relation_name());
  }
  SETREC_ASSIGN_OR_RETURN(Relation out, EvalUncached(expr));
  return std::make_shared<const Relation>(std::move(out));
}

Result<Relation> Evaluator::EvalUncached(const Expr& expr) {
  switch (expr.op()) {
    case Expr::Op::kRelation: {
      SETREC_ASSIGN_OR_RETURN(const Relation* rel,
                              database_->Find(expr.relation_name()));
      return *rel;
    }
    case Expr::Op::kUnion:
    case Expr::Op::kDifference: {
      SETREC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> lp,
                              EvalShared(expr.left()));
      SETREC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> rp,
                              EvalShared(expr.right()));
      const Relation& l = *lp;
      const Relation& r = *rp;
      if (!(l.scheme() == r.scheme())) {
        return Status::InvalidArgument(
            "union/difference operands must have identical schemes");
      }
      Relation out(l.scheme());
      if (expr.op() == Expr::Op::kUnion) {
        out.Reserve(l.size() + r.size());
        for (const Tuple& t : l) out.InsertValidated(t);
        for (const Tuple& t : r) out.InsertValidated(t);
      } else {
        out.Reserve(l.size());
        for (const Tuple& t : l) {
          if (!r.Contains(t)) out.InsertValidated(t);
        }
      }
      return out;
    }
    case Expr::Op::kProduct: {
      // Guard short-circuit: products with a nullary factor implement the
      // paper's if-then-else encoding (E × π_∅(...)). When the guard side
      // evaluates empty, the data of the other side is irrelevant — only
      // its scheme is needed, which the type-only path derives without
      // touching tuples.
      for (bool guard_on_left : {true, false}) {
        const ExprPtr& guard_ptr =
            guard_on_left ? expr.left() : expr.right();
        const ExprPtr& other_ptr =
            guard_on_left ? expr.right() : expr.left();
        if (guard_ptr->op() != Expr::Op::kProject ||
            !guard_ptr->projection().empty()) {
          continue;
        }
        SETREC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> guard,
                                EvalShared(guard_ptr));
        if (!guard->empty()) break;  // no saving; fall through to full eval
        SETREC_ASSIGN_OR_RETURN(const Catalog* catalog, DatabaseCatalog());
        SETREC_ASSIGN_OR_RETURN(RelationScheme other_scheme,
                                InferScheme(*other_ptr, *catalog));
        return Relation(std::move(other_scheme));
      }
      SETREC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> lp,
                              EvalShared(expr.left()));
      SETREC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> rp,
                              EvalShared(expr.right()));
      const Relation& l = *lp;
      const Relation& r = *rp;
      std::vector<Attribute> attrs = l.scheme().attributes();
      for (const Attribute& a : r.scheme().attributes()) {
        if (l.scheme().HasAttribute(a.name)) {
          return Status::InvalidArgument(
              "product operands share attribute name " + a.name);
        }
        attrs.push_back(a);
      }
      SETREC_ASSIGN_OR_RETURN(RelationScheme scheme,
                              RelationScheme::Make(std::move(attrs)));
      const std::uint64_t tuple_bytes =
          static_cast<std::uint64_t>(out_arity(l, r)) * sizeof(ObjectId);
      TraceSpan span = StartSpan(*ctx_, "evaluator/product");
      MetricsRegistry* metrics = ctx_->metrics();
      Relation out(std::move(scheme));
      for (const Tuple& lt : l) {
        for (const Tuple& rt : r) {
          SETREC_RETURN_IF_ERROR(ctx_->ChargeRows(1, "evaluator/product-row"));
          SETREC_RETURN_IF_ERROR(
              ctx_->ChargeMemory(tuple_bytes, "evaluator/product-row"));
          if (metrics != nullptr) metrics->engine.eval_rows.Add(1);
          out.InsertValidated(lt.Concat(rt));
        }
      }
      return out;
    }
    case Expr::Op::kSelectEq:
    case Expr::Op::kSelectNeq: {
      // Fuse σ-chains over a product into a hash join when possible.
      const Expr* bottom = &expr;
      while (bottom->op() == Expr::Op::kSelectEq ||
             bottom->op() == Expr::Op::kSelectNeq) {
        bottom = bottom->child().get();
      }
      if (bottom->op() == Expr::Op::kProduct) {
        return EvalSelectionChain(expr);
      }
      SETREC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> cp,
                              EvalShared(expr.child()));
      const Relation& c = *cp;
      SETREC_ASSIGN_OR_RETURN(std::size_t ia,
                              c.scheme().IndexOf(expr.attr_a()));
      SETREC_ASSIGN_OR_RETURN(std::size_t ib,
                              c.scheme().IndexOf(expr.attr_b()));
      if (c.scheme().attribute(ia).domain != c.scheme().attribute(ib).domain) {
        return Status::InvalidArgument(
            "selection compares attributes of different domains");
      }
      const bool want_equal = expr.op() == Expr::Op::kSelectEq;
      Relation out(c.scheme());
      for (const Tuple& t : c) {
        if ((t.at(ia) == t.at(ib)) == want_equal) {
          out.InsertValidated(t);
        }
      }
      return out;
    }
    case Expr::Op::kProject: {
      SETREC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> cp,
                              EvalShared(expr.child()));
      const Relation& c = *cp;
      std::vector<std::size_t> indices;
      std::vector<Attribute> attrs;
      std::set<std::string> seen;
      for (const std::string& name : expr.projection()) {
        if (!seen.insert(name).second) {
          return Status::InvalidArgument("duplicate projection attribute " +
                                         name);
        }
        SETREC_ASSIGN_OR_RETURN(std::size_t i, c.scheme().IndexOf(name));
        indices.push_back(i);
        attrs.push_back(c.scheme().attribute(i));
      }
      SETREC_ASSIGN_OR_RETURN(RelationScheme scheme,
                              RelationScheme::Make(std::move(attrs)));
      Relation out(std::move(scheme));
      out.Reserve(c.size());
      for (const Tuple& t : c) {
        out.InsertValidated(t.Project(indices));
      }
      return out;
    }
    case Expr::Op::kRename: {
      SETREC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> cp,
                              EvalShared(expr.child()));
      const Relation& c = *cp;
      SETREC_ASSIGN_OR_RETURN(std::size_t i,
                              c.scheme().IndexOf(expr.rename_from()));
      if (c.scheme().HasAttribute(expr.rename_to())) {
        return Status::InvalidArgument("rename target attribute " +
                                       expr.rename_to() + " already present");
      }
      std::vector<Attribute> attrs = c.scheme().attributes();
      attrs[i].name = expr.rename_to();
      SETREC_ASSIGN_OR_RETURN(RelationScheme scheme,
                              RelationScheme::Make(std::move(attrs)));
      Relation out(std::move(scheme));
      out.Reserve(c.size());
      for (const Tuple& t : c) out.InsertValidated(t);
      return out;
    }
  }
  return Status::Internal("unknown expression operator");
}

Result<Relation> Evaluator::EvalSelectionChain(const Expr& top) {
  TraceSpan join_span = StartSpan(*ctx_, "evaluator/join");
  // Collect the selection conditions down to the product.
  struct Condition {
    bool equal;
    std::string a;
    std::string b;
  };
  std::vector<Condition> conditions;
  const Expr* node = &top;
  while (node->op() == Expr::Op::kSelectEq ||
         node->op() == Expr::Op::kSelectNeq) {
    conditions.push_back(Condition{node->op() == Expr::Op::kSelectEq,
                                   node->attr_a(), node->attr_b()});
    node = node->child().get();
  }
  SETREC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> left_ptr,
                          EvalShared(node->left()));
  SETREC_ASSIGN_OR_RETURN(std::shared_ptr<const Relation> right_ptr,
                          EvalShared(node->right()));
  const Relation& left = *left_ptr;
  const Relation& right = *right_ptr;

  // Output scheme = product scheme.
  std::vector<Attribute> attrs = left.scheme().attributes();
  for (const Attribute& a : right.scheme().attributes()) {
    if (left.scheme().HasAttribute(a.name)) {
      return Status::InvalidArgument("product operands share attribute name " +
                                     a.name);
    }
    attrs.push_back(a);
  }
  SETREC_ASSIGN_OR_RETURN(RelationScheme scheme,
                          RelationScheme::Make(std::move(attrs)));

  // Classify conditions: per-side filters, cross equalities (join keys),
  // cross non-equalities (residual filters).
  const std::size_t lw = left.scheme().arity();
  struct Resolved {
    bool equal;
    bool a_left, b_left;
    std::size_t ia, ib;  // indices local to their side
  };
  std::vector<Resolved> local_left, local_right, cross;
  std::vector<std::pair<std::size_t, std::size_t>> join_keys;  // (l, r)
  for (const Condition& c : conditions) {
    SETREC_ASSIGN_OR_RETURN(std::size_t ga, scheme.IndexOf(c.a));
    SETREC_ASSIGN_OR_RETURN(std::size_t gb, scheme.IndexOf(c.b));
    if (scheme.attribute(ga).domain != scheme.attribute(gb).domain) {
      return Status::InvalidArgument(
          "selection compares attributes of different domains");
    }
    Resolved r;
    r.equal = c.equal;
    r.a_left = ga < lw;
    r.b_left = gb < lw;
    r.ia = r.a_left ? ga : ga - lw;
    r.ib = r.b_left ? gb : gb - lw;
    if (r.a_left && r.b_left) {
      local_left.push_back(r);
    } else if (!r.a_left && !r.b_left) {
      local_right.push_back(r);
    } else if (r.equal) {
      // Normalize to (left index, right index).
      join_keys.emplace_back(r.a_left ? r.ia : r.ib, r.a_left ? r.ib : r.ia);
    } else {
      cross.push_back(r);
    }
  }

  auto passes_local = [](const Tuple& t, const std::vector<Resolved>& cs) {
    for (const Resolved& c : cs) {
      if ((t.at(c.ia) == t.at(c.ib)) != c.equal) return false;
    }
    return true;
  };

  // Build the hash table on the right side, keyed by the join attributes.
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> index;
  {
    TraceSpan build_span = StartSpan(*ctx_, "evaluator/join-build");
    index.reserve(right.size());
    std::vector<std::size_t> right_key;
    right_key.reserve(join_keys.size());
    for (const auto& [l, r] : join_keys) right_key.push_back(r);
    std::uint64_t built = 0;
    for (const Tuple& t : right) {
      if (!passes_local(t, local_right)) continue;
      index[t.Project(right_key)].push_back(&t);
      ++built;
    }
    if (ctx_->metrics() != nullptr) {
      ctx_->metrics()->engine.eval_join_build_rows.Add(built);
    }
    if (node_stats_ != nullptr) (*node_stats_)[&top].build_rows += built;
  }

  std::vector<std::size_t> left_key;
  left_key.reserve(join_keys.size());
  for (const auto& [l, r] : join_keys) left_key.push_back(l);

  const std::uint64_t tuple_bytes =
      static_cast<std::uint64_t>(out_arity(left, right)) * sizeof(ObjectId);

  // Probes one left tuple against the index, appending matches to `rows`
  // and charging `ctx`. Shared by the sequential and partitioned paths.
  auto probe_one = [&](const Tuple& lt, ExecContext& ctx,
                       std::vector<Tuple>& rows) -> Status {
    if (!passes_local(lt, local_left)) return Status::OK();
    auto it = index.find(lt.Project(left_key));
    if (it == index.end()) return Status::OK();
    for (const Tuple* rt : it->second) {
      SETREC_RETURN_IF_ERROR(ctx.ChargeRows(1, "evaluator/join-row"));
      SETREC_RETURN_IF_ERROR(
          ctx.ChargeMemory(tuple_bytes, "evaluator/join-row"));
      bool ok = true;
      for (const Resolved& c : cross) {
        const ObjectId va = c.a_left ? lt.at(c.ia) : rt->at(c.ia);
        const ObjectId vb = c.b_left ? lt.at(c.ib) : rt->at(c.ib);
        if ((va == vb) != c.equal) {
          ok = false;
          break;
        }
      }
      if (ok) {
        if (ctx.metrics() != nullptr) ctx.metrics()->engine.eval_rows.Add(1);
        rows.push_back(lt.Concat(*rt));
      }
    }
    return Status::OK();
  };

  Relation out(std::move(scheme));
  TraceSpan probe_span = StartSpan(*ctx_, "evaluator/join-probe");
  // Probes are counted as probe-side tuples, not per-partition work items,
  // so the counter is identical at any worker count.
  if (ctx_->metrics() != nullptr) {
    ctx_->metrics()->engine.eval_join_probes.Add(left.size());
  }
  if (node_stats_ != nullptr) (*node_stats_)[&top].probe_rows += left.size();
  const bool partitioned = pool_ != nullptr && pool_->num_workers() > 1 &&
                           left.size() >= kParallelProbeThreshold &&
                           !index.empty();
  if (!partitioned) {
    std::vector<Tuple> rows;
    for (const Tuple& lt : left) {
      rows.clear();
      SETREC_RETURN_IF_ERROR(probe_one(lt, *ctx_, rows));
      for (Tuple& t : rows) out.InsertValidated(std::move(t));
    }
    return out;
  }

  // Partitioned probe: split the probe side into one contiguous slice per
  // worker, each charging a forked child of ctx_ (budgets stay globally
  // exact), then merge slice outputs in slice order. The output is a set,
  // so the merged relation is identical to the sequential probe's.
  std::vector<const Tuple*> probes;
  probes.reserve(left.size());
  for (const Tuple& t : left) probes.push_back(&t);
  const std::size_t num_parts =
      std::min(pool_->num_workers(),
               std::max<std::size_t>(1, probes.size() / 256));
  if (ctx_->metrics() != nullptr) {
    ctx_->metrics()->engine.eval_probe_partitions.Add(num_parts);
  }
  const std::size_t per_part = (probes.size() + num_parts - 1) / num_parts;
  struct Partition {
    Status status = Status::OK();
    std::vector<Tuple> rows;
  };
  std::vector<Partition> partitions(num_parts);
  std::vector<ExecContext> children;
  children.reserve(num_parts);
  for (std::size_t p = 0; p < num_parts; ++p) children.push_back(ctx_->Fork());
  pool_->ParallelFor(num_parts, [&](std::size_t p) {
    Partition& part = partitions[p];
    ExecContext& cctx = children[p];
    const std::size_t begin = p * per_part;
    const std::size_t end = std::min(begin + per_part, probes.size());
    for (std::size_t i = begin; i < end; ++i) {
      part.status = probe_one(*probes[i], cctx, part.rows);
      if (!part.status.ok()) return;
      // No explicit sibling cancellation: a tripped budget/deadline lives
      // in the shared state, so sibling partitions fail on their very next
      // charge anyway, and the parent context stays usable afterwards.
    }
  });
  for (const Partition& part : partitions) {
    SETREC_RETURN_IF_ERROR(part.status);
  }
  for (Partition& part : partitions) {
    for (Tuple& t : part.rows) out.InsertValidated(std::move(t));
  }
  return out;
}

Result<Relation> Evaluate(const ExprPtr& expr, const Database& database,
                          ExecContext& ctx) {
  Evaluator evaluator(&database, ctx);
  return evaluator.Eval(expr);
}

Result<Relation> Evaluate(const ExprPtr& expr, const Database& database,
                          const ExecOptions& options) {
  Evaluator evaluator(&database, options);
  return evaluator.Eval(expr);
}

}  // namespace setrec
