#ifndef SETREC_RELATIONAL_EVALUATOR_H_
#define SETREC_RELATIONAL_EVALUATOR_H_

#include <memory>
#include <optional>
#include <unordered_map>

#include "core/exec_backend.h"
#include "core/exec_context.h"
#include "core/exec_options.h"
#include "core/thread_pool.h"
#include "relational/expression.h"
#include "relational/relation.h"

namespace setrec {

namespace vectorized {
class Engine;
}  // namespace vectorized

/// Per-expression-node execution statistics, filled in when a sink map is
/// attached to the evaluator (the EXPLAIN ANALYZE path). Keyed by node
/// identity (`const Expr*`), matching the evaluator's memo cache: a node
/// evaluated once and reused records one evaluation plus cache_hits.
/// All fields are *logical* counts except wall_ns — they are identical at
/// any worker count, because join probes are counted as probe-side tuples
/// (not per-partition work items) and builds are single-threaded.
struct EvalNodeStats {
  std::uint64_t rows = 0;        // output rows of this node
  std::uint64_t build_rows = 0;  // hash-join build-side insertions
  std::uint64_t probe_rows = 0;  // hash-join probe-side tuples probed
  std::uint64_t cache_hits = 0;  // memo hits for this node
  std::uint64_t wall_ns = 0;     // time in this node, children included
  // Which backend computed this node: "interpreter" (tuple-at-a-time tree
  // walk), "vectorized" (columnar batch operator) or "bytecode" (fused
  // σ-chain compiled into the flat-program hash join). Purely descriptive —
  // every logical field above is backend-invariant. Static strings only.
  const char* backend = "interpreter";
};

/// Evaluates relational algebra expressions against a Database. The
/// evaluator memoizes results per expression node, so DAG-shaped expressions
/// (as produced by the Theorem 5.6 substitution and the par(E) rewriting)
/// evaluate each shared subexpression once. An Evaluator is bound to one
/// database snapshot; create a fresh one after any mutation.
///
/// Evaluation is governed by `ctx`: every join/product output row is charged
/// against the row budget and every materialized tuple against the memory
/// cap, so a runaway Cartesian product fails fast with kResourceExhausted
/// instead of exhausting the machine.
class Evaluator {
 public:
  /// Joins whose probe side has at least this many tuples are probed in
  /// parallel when a pool is attached (below it, partitioning overhead
  /// dominates).
  static constexpr std::size_t kParallelProbeThreshold = 1024;

  /// kAuto picks the vectorized backend only when the referenced base
  /// relations hold at least this many rows in total: below it, transposing
  /// inputs into columns costs more than batching saves.
  static constexpr std::size_t kAutoVectorizeInputRows = 4096;

  /// `pool`, when given (and sized > 1), parallelizes the probe phase of
  /// large hash joins: the probe side is partitioned across the workers,
  /// each partition charges a Fork() of `ctx` (so row/memory budgets stay
  /// exact globally), and partition outputs are merged in partition order —
  /// the result is identical to the sequential probe. The pool is borrowed,
  /// not owned.
  explicit Evaluator(const Database* database,
                     ExecContext& ctx = ExecContext::Default(),
                     ThreadPool* pool = nullptr);

  /// Unified form: resolves ExecOptions (context, observability sinks,
  /// probe-parallelism pool) for the evaluator's lifetime. The scope is
  /// held by the evaluator, so a borrowed context is restored when the
  /// evaluator is destroyed.
  Evaluator(const Database* database, const ExecOptions& options);

  // Constructors and destructor are out of line: the vectorized engine
  // member is incomplete here.
  ~Evaluator();

  /// Evaluates `expr`. Scheme checks are performed on the fly against the
  /// actual relations, so a standalone catalog is not required here.
  /// Returns a copy of the memoized result; callers that only read should
  /// prefer EvalShared.
  Result<Relation> Eval(const ExprPtr& expr);

  /// Evaluates `expr` and returns the memoized result behind shared
  /// immutable storage: repeat evaluations of the same node (and leaf
  /// relations, which alias the bound Database's storage) cost a hash
  /// lookup plus a refcount bump, never a deep copy.
  Result<std::shared_ptr<const Relation>> EvalShared(const ExprPtr& expr);

  /// Attaches a per-node statistics sink (borrowed; may be null to detach).
  /// While attached, every Eval records output rows, join build/probe
  /// counts, memo hits and wall time per expression node — the raw material
  /// for EXPLAIN ANALYZE. Adds a map lookup per node evaluation, nothing on
  /// the per-tuple path.
  void set_node_stats(std::unordered_map<const Expr*, EvalNodeStats>* sink) {
    node_stats_ = sink;
  }

  /// Selects the execution backend (core/exec_backend.h). Must be called
  /// before the first Eval: the kAuto decision latches on first use so that
  /// every expression this evaluator touches runs under one backend — the
  /// memo cache, and therefore the cache-hit counters, have one semantic
  /// domain. Results and logical counters are backend-invariant either way.
  void set_backend(ExecBackend backend) { backend_ = backend; }
  ExecBackend backend() const { return backend_; }

 private:
  Result<Relation> EvalUncached(const Expr& expr);
  Result<std::shared_ptr<const Relation>> EvalSharedUncached(const Expr& expr);

  /// Join fusion: evaluates a chain of selections over a Cartesian product
  /// as a hash join instead of materializing the product. The paper's
  /// expressions are built almost exclusively from theta-joins
  /// (σ_{aθb}(l × r)), and the par(E) rewriting multiplies every relation
  /// by π_self(rec), so without fusion intermediate results grow with the
  /// square of the receiver-set size.
  Result<Relation> EvalSelectionChain(const Expr& top);

  /// A lazily built catalog over the bound database's relations, used for
  /// type-only scheme inference (the guard short-circuit needs the scheme
  /// of a subexpression whose data it can skip). Fails if any relation's
  /// scheme cannot be registered (e.g. duplicate names with conflicting
  /// schemes) instead of silently serving a partial catalog.
  Result<const Catalog*> DatabaseCatalog();

  /// Whether `expr` should run on the compiled vectorized backend. Forced
  /// backends answer directly (kVectorized still requires coverage); kAuto
  /// latches its cost decision on the first call — a pool with real
  /// parallelism keeps the interpreter (its partitioned probe would be
  /// forfeited), otherwise vectorization wins once the referenced inputs
  /// reach kAutoVectorizeInputRows.
  bool UseVectorized(const Expr& expr);

  const Database* database_;
  std::optional<ExecScope> scope_;
  ExecContext* ctx_ = nullptr;
  ThreadPool* pool_ = nullptr;
  ExecBackend backend_ = ExecBackend::kAuto;
  std::optional<bool> auto_vectorize_;  // kAuto decision, latched
  std::unique_ptr<vectorized::Engine> engine_;  // lazily built
  std::optional<Catalog> catalog_;
  std::unordered_map<const Expr*, std::shared_ptr<const Relation>> cache_;
  std::unordered_map<const Expr*, EvalNodeStats>* node_stats_ = nullptr;
};

/// One-shot evaluation. The single ExecOptions entry point: backend
/// selection, governing context, observability sinks and the probe pool all
/// arrive through `options` (a default-constructed ExecOptions means
/// permissive, unobserved, single-threaded, kAuto backend).
Result<Relation> Evaluate(const ExprPtr& expr, const Database& database,
                          const ExecOptions& options = {});

/// Compatibility shim for borrowed-context callers; equivalent to passing
/// ExecOptions{.ctx = &ctx}. Prefer the ExecOptions form.
Result<Relation> Evaluate(const ExprPtr& expr, const Database& database,
                          ExecContext& ctx);

}  // namespace setrec

#endif  // SETREC_RELATIONAL_EVALUATOR_H_
