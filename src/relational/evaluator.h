#ifndef SETREC_RELATIONAL_EVALUATOR_H_
#define SETREC_RELATIONAL_EVALUATOR_H_

#include <optional>
#include <unordered_map>

#include "core/exec_context.h"
#include "relational/expression.h"
#include "relational/relation.h"

namespace setrec {

/// Evaluates relational algebra expressions against a Database. The
/// evaluator memoizes results per expression node, so DAG-shaped expressions
/// (as produced by the Theorem 5.6 substitution and the par(E) rewriting)
/// evaluate each shared subexpression once. An Evaluator is bound to one
/// database snapshot; create a fresh one after any mutation.
///
/// Evaluation is governed by `ctx`: every join/product output row is charged
/// against the row budget and every materialized tuple against the memory
/// cap, so a runaway Cartesian product fails fast with kResourceExhausted
/// instead of exhausting the machine.
class Evaluator {
 public:
  explicit Evaluator(const Database* database,
                     ExecContext& ctx = ExecContext::Default())
      : database_(database), ctx_(&ctx) {}

  /// Evaluates `expr`. Scheme checks are performed on the fly against the
  /// actual relations, so a standalone catalog is not required here.
  Result<Relation> Eval(const ExprPtr& expr);

 private:
  Result<Relation> EvalUncached(const Expr& expr);

  /// Join fusion: evaluates a chain of selections over a Cartesian product
  /// as a hash join instead of materializing the product. The paper's
  /// expressions are built almost exclusively from theta-joins
  /// (σ_{aθb}(l × r)), and the par(E) rewriting multiplies every relation
  /// by π_self(rec), so without fusion intermediate results grow with the
  /// square of the receiver-set size.
  Result<Relation> EvalSelectionChain(const Expr& top);

  /// A lazily built catalog over the bound database's relations, used for
  /// type-only scheme inference (the guard short-circuit needs the scheme
  /// of a subexpression whose data it can skip).
  const Catalog& DatabaseCatalog();

  const Database* database_;
  ExecContext* ctx_;
  std::optional<Catalog> catalog_;
  std::unordered_map<const Expr*, Relation> cache_;
};

/// One-shot convenience wrapper.
Result<Relation> Evaluate(const ExprPtr& expr, const Database& database,
                          ExecContext& ctx = ExecContext::Default());

}  // namespace setrec

#endif  // SETREC_RELATIONAL_EVALUATOR_H_
