#ifndef SETREC_RELATIONAL_RELATION_H_
#define SETREC_RELATIONAL_RELATION_H_

#include <map>
#include <set>
#include <string>
#include <string_view>

#include "relational/schema.h"
#include "relational/tuple.h"

namespace setrec {

/// A finite relation: a scheme plus a set of tuples over it. Insertions are
/// domain-checked (each value's class must equal the attribute's domain), so
/// a Relation is typed by construction.
class Relation {
 public:
  Relation() = default;
  explicit Relation(RelationScheme scheme) : scheme_(std::move(scheme)) {}

  const RelationScheme& scheme() const { return scheme_; }

  /// Inserts a tuple; fails on arity or domain mismatch. Duplicate inserts
  /// are OK no-ops (relations are sets).
  Status Insert(Tuple tuple);

  bool Contains(const Tuple& tuple) const { return tuples_.contains(tuple); }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const std::set<Tuple>& tuples() const { return tuples_; }
  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.scheme_ == b.scheme_ && a.tuples_ == b.tuples_;
  }

 private:
  RelationScheme scheme_;
  std::set<Tuple> tuples_;
};

/// A relational database instance: named relations. The object-relational
/// encoding produces one; update expressions are evaluated against one.
class Database {
 public:
  /// Installs (or replaces) a relation under `name`.
  void Put(std::string name, Relation relation);

  bool Has(std::string_view name) const;
  Result<const Relation*> Find(std::string_view name) const;

  /// Names in deterministic (sorted) order.
  std::vector<std::string> Names() const;

  friend bool operator==(const Database&, const Database&) = default;

 private:
  std::map<std::string, Relation, std::less<>> relations_;
};

}  // namespace setrec

#endif  // SETREC_RELATIONAL_RELATION_H_
