#ifndef SETREC_RELATIONAL_RELATION_H_
#define SETREC_RELATIONAL_RELATION_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"

namespace setrec {

/// A finite relation: a scheme plus a set of tuples over it. Insertions are
/// domain-checked (each value's class must equal the attribute's domain), so
/// a Relation is typed by construction.
///
/// Storage is a hash set (O(1) insert/lookup — relations are the hot-path
/// containers of the evaluator), so iteration order is unspecified.
/// Equality is content equality regardless of order. Consumers that need a
/// canonical order (deterministic enumeration, result reporting) go through
/// SortedTuples().
class Relation {
 public:
  using TupleSet = std::unordered_set<Tuple, TupleHash>;

  Relation() = default;
  explicit Relation(RelationScheme scheme) : scheme_(std::move(scheme)) {}

  // The sorted-view cache borrows pointers into tuples_, so it must never
  // travel with a copy (it would point into the *source*'s tuple set) and
  // is conservatively dropped on move too.
  Relation(const Relation& other)
      : scheme_(other.scheme_), tuples_(other.tuples_) {}
  Relation& operator=(const Relation& other) {
    if (this != &other) {
      scheme_ = other.scheme_;
      tuples_ = other.tuples_;
      InvalidateSortedCache();
    }
    return *this;
  }
  Relation(Relation&& other) noexcept
      : scheme_(std::move(other.scheme_)), tuples_(std::move(other.tuples_)) {}
  Relation& operator=(Relation&& other) noexcept {
    if (this != &other) {
      scheme_ = std::move(other.scheme_);
      tuples_ = std::move(other.tuples_);
      InvalidateSortedCache();
    }
    return *this;
  }

  const RelationScheme& scheme() const { return scheme_; }

  /// Inserts a tuple; fails on arity or domain mismatch. Duplicate inserts
  /// are OK no-ops (relations are sets).
  Status Insert(Tuple tuple);

  /// Inserts a tuple whose conformance to the scheme the caller has already
  /// proven (e.g. the evaluator: operator outputs are built from tuples of
  /// already-checked operands, so re-checking every domain in the inner
  /// join/product loops is pure overhead).
  void InsertValidated(Tuple tuple) {
    tuples_.insert(std::move(tuple));
    InvalidateSortedCache();
  }

  /// Bulk form of InsertValidated: consumes a whole batch of already-checked
  /// tuples and invalidates the sorted-view memo once per batch instead of
  /// once per tuple. The vectorized engine materializes operator outputs in
  /// kBatchWidth-row batches (relational/vectorized/batch.h), so per-tuple
  /// invalidation would touch the memo state rows-many times per result.
  /// The batch is left empty (tuples are moved out).
  void InsertValidatedBatch(std::vector<Tuple>& batch) {
    if (batch.empty()) return;
    tuples_.reserve(tuples_.size() + batch.size());
    for (Tuple& t : batch) tuples_.insert(std::move(t));
    batch.clear();
    InvalidateSortedCache();
  }

  /// How many times the sorted-view memo has been invalidated over this
  /// relation's lifetime — a diagnostic counter that makes the bulk-insert
  /// contract testable (one invalidation per InsertValidatedBatch call, one
  /// per single-tuple mutation). Copies and moved-to relations restart the
  /// count from their own first invalidation.
  std::uint64_t sorted_cache_invalidations() const {
    return sorted_invalidations_;
  }

  /// Removes a tuple; returns whether it was present. Like InsertValidated,
  /// no scheme check — a tuple of the wrong shape is simply absent.
  bool Erase(const Tuple& tuple) {
    bool erased = tuples_.erase(tuple) > 0;
    if (erased) InvalidateSortedCache();
    return erased;
  }

  /// Pre-sizes the hash table for `n` tuples.
  void Reserve(std::size_t n) { tuples_.reserve(n); }

  bool Contains(const Tuple& tuple) const { return tuples_.contains(tuple); }
  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const TupleSet& tuples() const { return tuples_; }
  auto begin() const { return tuples_.begin(); }
  auto end() const { return tuples_.end(); }

  /// Canonical (lexicographic) view of the tuples; the pointers borrow from
  /// this relation and are invalidated by any insert. The view is memoized:
  /// the first call after a mutation sorts, later calls copy the cached
  /// pointer vector. Memoization is thread-safe for concurrent const use
  /// (the parallel runtime's shards share base relations read-only).
  std::vector<const Tuple*> SortedTuples() const;

  friend bool operator==(const Relation& a, const Relation& b) {
    return a.scheme_ == b.scheme_ && a.tuples_ == b.tuples_;
  }

 private:
  void InvalidateSortedCache() {
    // Mutators run exclusively (they take `this` non-const), so no lock:
    // a concurrent SortedTuples() call would already be a data race on
    // tuples_ itself.
    sorted_valid_ = false;
    sorted_.clear();
    ++sorted_invalidations_;
  }

  RelationScheme scheme_;
  TupleSet tuples_;
  mutable std::mutex sorted_mu_;
  mutable std::vector<const Tuple*> sorted_;
  mutable bool sorted_valid_ = false;
  std::uint64_t sorted_invalidations_ = 0;
};

/// A relational database instance: named relations. The object-relational
/// encoding produces one; update expressions are evaluated against one.
///
/// Relations are held behind shared immutable storage, so copying a
/// Database is O(#relations) regardless of data size — the sharded
/// parallel-application runtime gives every worker its own Database (base
/// relations shared read-only, plus that worker's `rec` shard) without
/// duplicating the encoded instance. Put never mutates a stored relation in
/// place, which is what makes the sharing thread-safe.
class Database {
 public:
  /// Installs (or replaces) a relation under `name`.
  void Put(std::string name, Relation relation);

  /// Installs a relation that is already behind shared storage. Callers that
  /// assemble databases from relations they hold as shared_ptrs (the
  /// incremental view cache, the evaluator's memo) use this to avoid a deep
  /// copy; `relation` must not be null.
  void PutShared(std::string name, std::shared_ptr<const Relation> relation);

  bool Has(std::string_view name) const;
  Result<const Relation*> Find(std::string_view name) const;

  /// Like Find, but returns the shared handle, so callers can keep the
  /// relation alive independently of this Database (the evaluator's memo
  /// cache holds results this way, making cache hits O(1)).
  Result<std::shared_ptr<const Relation>> FindShared(
      std::string_view name) const;

  /// Names in deterministic (sorted) order.
  std::vector<std::string> Names() const;

  /// Deep content equality (shared storage is an implementation detail).
  friend bool operator==(const Database& a, const Database& b);

 private:
  std::map<std::string, std::shared_ptr<const Relation>, std::less<>>
      relations_;
};

}  // namespace setrec

#endif  // SETREC_RELATIONAL_RELATION_H_
