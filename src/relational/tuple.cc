#include "relational/tuple.h"

namespace setrec {

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<ObjectId> out;
  out.reserve(values_.size() + other.values_.size());
  out.insert(out.end(), values_.begin(), values_.end());
  out.insert(out.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(out));
}

Tuple Tuple::Project(std::span<const std::size_t> indices) const {
  std::vector<ObjectId> out;
  out.reserve(indices.size());
  for (std::size_t i : indices) out.push_back(values_[i]);
  return Tuple(std::move(out));
}

}  // namespace setrec
