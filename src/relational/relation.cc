#include "relational/relation.h"

#include <algorithm>

namespace setrec {

Status Relation::Insert(Tuple tuple) {
  if (tuple.arity() != scheme_.arity()) {
    return Status::InvalidArgument("tuple arity does not match scheme");
  }
  for (std::size_t i = 0; i < tuple.arity(); ++i) {
    if (tuple.at(i).class_id() != scheme_.attribute(i).domain) {
      return Status::InvalidArgument(
          "tuple value violates attribute domain at position " +
          std::to_string(i) + " (attribute " + scheme_.attribute(i).name +
          ")");
    }
  }
  tuples_.insert(std::move(tuple));
  InvalidateSortedCache();
  return Status::OK();
}

std::vector<const Tuple*> Relation::SortedTuples() const {
  std::lock_guard<std::mutex> lock(sorted_mu_);
  if (!sorted_valid_) {
    sorted_.clear();
    sorted_.reserve(tuples_.size());
    for (const Tuple& t : tuples_) sorted_.push_back(&t);
    std::sort(sorted_.begin(), sorted_.end(),
              [](const Tuple* a, const Tuple* b) { return *a < *b; });
    sorted_valid_ = true;
  }
  return sorted_;
}

void Database::Put(std::string name, Relation relation) {
  relations_.insert_or_assign(
      std::move(name), std::make_shared<const Relation>(std::move(relation)));
}

void Database::PutShared(std::string name,
                         std::shared_ptr<const Relation> relation) {
  relations_.insert_or_assign(std::move(name), std::move(relation));
}

bool Database::Has(std::string_view name) const {
  return relations_.find(name) != relations_.end();
}

Result<const Relation*> Database::Find(std::string_view name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named " + std::string(name));
  }
  return it->second.get();
}

Result<std::shared_ptr<const Relation>> Database::FindShared(
    std::string_view name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named " + std::string(name));
  }
  return it->second;
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

bool operator==(const Database& a, const Database& b) {
  if (a.relations_.size() != b.relations_.size()) return false;
  auto ita = a.relations_.begin();
  auto itb = b.relations_.begin();
  for (; ita != a.relations_.end(); ++ita, ++itb) {
    if (ita->first != itb->first) return false;
    if (ita->second == itb->second) continue;  // shared storage
    if (!(*ita->second == *itb->second)) return false;
  }
  return true;
}

}  // namespace setrec
