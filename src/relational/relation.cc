#include "relational/relation.h"

namespace setrec {

Status Relation::Insert(Tuple tuple) {
  if (tuple.arity() != scheme_.arity()) {
    return Status::InvalidArgument("tuple arity does not match scheme");
  }
  for (std::size_t i = 0; i < tuple.arity(); ++i) {
    if (tuple.at(i).class_id() != scheme_.attribute(i).domain) {
      return Status::InvalidArgument(
          "tuple value violates attribute domain at position " +
          std::to_string(i) + " (attribute " + scheme_.attribute(i).name +
          ")");
    }
  }
  tuples_.insert(std::move(tuple));
  return Status::OK();
}

void Database::Put(std::string name, Relation relation) {
  relations_.insert_or_assign(std::move(name), std::move(relation));
}

bool Database::Has(std::string_view name) const {
  return relations_.find(name) != relations_.end();
}

Result<const Relation*> Database::Find(std::string_view name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named " + std::string(name));
  }
  return &it->second;
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, rel] : relations_) out.push_back(name);
  return out;
}

}  // namespace setrec
