#ifndef SETREC_RELATIONAL_TUPLE_H_
#define SETREC_RELATIONAL_TUPLE_H_

#include <compare>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "core/ids.h"

namespace setrec {

/// A relational tuple. Values are ObjectIds: the relational representation
/// of an object base (Section 5.1) stores only objects, and every attribute
/// carries a class domain, so a tuple is a typed vector of object
/// identities. Nullary tuples (the single tuple of a 0-ary relation, used by
/// π_∅ guard expressions) are supported.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<ObjectId> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<ObjectId> values) : values_(values) {}

  std::size_t arity() const { return values_.size(); }
  ObjectId at(std::size_t i) const { return values_[i]; }
  const std::vector<ObjectId>& values() const { return values_; }

  /// Concatenation, used by Cartesian product.
  Tuple Concat(const Tuple& other) const;

  /// Projection onto the given positional indices, in the given order.
  Tuple Project(std::span<const std::size_t> indices) const;

  friend auto operator<=>(const Tuple&, const Tuple&) = default;

 private:
  std::vector<ObjectId> values_;
};

}  // namespace setrec

#endif  // SETREC_RELATIONAL_TUPLE_H_
