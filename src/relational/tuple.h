#ifndef SETREC_RELATIONAL_TUPLE_H_
#define SETREC_RELATIONAL_TUPLE_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "core/ids.h"

namespace setrec {

/// A relational tuple. Values are ObjectIds: the relational representation
/// of an object base (Section 5.1) stores only objects, and every attribute
/// carries a class domain, so a tuple is a typed vector of object
/// identities. Nullary tuples (the single tuple of a 0-ary relation, used by
/// π_∅ guard expressions) are supported.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<ObjectId> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<ObjectId> values) : values_(values) {}

  std::size_t arity() const { return values_.size(); }
  ObjectId at(std::size_t i) const { return values_[i]; }
  const std::vector<ObjectId>& values() const { return values_; }

  /// Concatenation, used by Cartesian product.
  Tuple Concat(const Tuple& other) const;

  /// Projection onto the given positional indices, in the given order.
  Tuple Project(std::span<const std::size_t> indices) const;

  friend auto operator<=>(const Tuple&, const Tuple&) = default;

 private:
  std::vector<ObjectId> values_;
};

/// Hash functor for the hashed relational kernels (Relation storage, join
/// indexes). Each ObjectId is packed into 64 bits, finalized with the
/// splitmix64 mixer, and folded in with a multiply-xor combine; seeding
/// with the arity separates the nullary tuple from empty prefixes.
struct TupleHash {
  std::size_t operator()(const Tuple& t) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ull ^ t.arity();
    for (const ObjectId& o : t.values()) {
      std::uint64_t v =
          (static_cast<std::uint64_t>(o.class_id()) << 32) | o.index();
      v ^= v >> 30;
      v *= 0xbf58476d1ce4e5b9ull;
      v ^= v >> 27;
      v *= 0x94d049bb133111ebull;
      v ^= v >> 31;
      h = (h ^ v) * 0x100000001b3ull;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace setrec

#endif  // SETREC_RELATIONAL_TUPLE_H_
