#include "relational/schema.h"

#include <set>
#include <utility>

namespace setrec {

Result<RelationScheme> RelationScheme::Make(
    std::vector<Attribute> attributes) {
  std::set<std::string_view> seen;
  for (const Attribute& a : attributes) {
    if (!seen.insert(a.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + a.name);
    }
  }
  RelationScheme scheme;
  scheme.attributes_ = std::move(attributes);
  return scheme;
}

bool RelationScheme::HasAttribute(std::string_view name) const {
  for (const Attribute& a : attributes_) {
    if (a.name == name) return true;
  }
  return false;
}

Result<std::size_t> RelationScheme::IndexOf(std::string_view name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return Status::NotFound("no attribute named " + std::string(name));
}

Status Catalog::AddRelation(std::string name, RelationScheme scheme) {
  if (name.empty()) {
    return Status::InvalidArgument("relation name must be non-empty");
  }
  auto [it, inserted] = relations_.emplace(std::move(name), std::move(scheme));
  if (!inserted) {
    return Status::AlreadyExists("duplicate relation name: " + it->first);
  }
  return Status::OK();
}

bool Catalog::Has(std::string_view name) const {
  return relations_.find(name) != relations_.end();
}

Result<const RelationScheme*> Catalog::Find(std::string_view name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("no relation named " + std::string(name));
  }
  return &it->second;
}

std::vector<std::string> Catalog::Names() const {
  std::vector<std::string> out;
  out.reserve(relations_.size());
  for (const auto& [name, scheme] : relations_) out.push_back(name);
  return out;
}

}  // namespace setrec
