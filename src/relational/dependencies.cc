#include "relational/dependencies.h"

#include <map>

namespace setrec {

Result<bool> Satisfies(const Database& database,
                       const FunctionalDependency& fd) {
  SETREC_ASSIGN_OR_RETURN(const Relation* rel, database.Find(fd.relation));
  std::vector<std::size_t> lhs;
  for (const std::string& a : fd.lhs) {
    SETREC_ASSIGN_OR_RETURN(std::size_t i, rel->scheme().IndexOf(a));
    lhs.push_back(i);
  }
  SETREC_ASSIGN_OR_RETURN(std::size_t rhs, rel->scheme().IndexOf(fd.rhs));

  std::map<Tuple, ObjectId> seen;
  for (const Tuple& t : *rel) {
    Tuple key = t.Project(lhs);
    auto [it, inserted] = seen.emplace(std::move(key), t.at(rhs));
    if (!inserted && !(it->second == t.at(rhs))) return false;
  }
  return true;
}

Result<bool> Satisfies(const Database& database,
                       const InclusionDependency& ind) {
  SETREC_ASSIGN_OR_RETURN(const Relation* from,
                          database.Find(ind.from_relation));
  SETREC_ASSIGN_OR_RETURN(const Relation* to, database.Find(ind.to_relation));
  if (ind.from_attrs.size() != to->scheme().arity()) {
    return Status::InvalidArgument(
        "full inclusion dependency must cover the whole target scheme");
  }
  std::vector<std::size_t> idx;
  for (const std::string& a : ind.from_attrs) {
    SETREC_ASSIGN_OR_RETURN(std::size_t i, from->scheme().IndexOf(a));
    idx.push_back(i);
  }
  for (const Tuple& t : *from) {
    if (!to->Contains(t.Project(idx))) return false;
  }
  return true;
}

Result<bool> Satisfies(const Database& database,
                       const DisjointnessDependency& dd) {
  SETREC_ASSIGN_OR_RETURN(const Relation* a, database.Find(dd.relation_a));
  SETREC_ASSIGN_OR_RETURN(const Relation* b, database.Find(dd.relation_b));
  if (a->scheme().arity() != 1 || b->scheme().arity() != 1) {
    return Status::InvalidArgument(
        "disjointness dependencies apply to unary relations");
  }
  for (const Tuple& t : *a) {
    if (b->Contains(t)) return false;
  }
  return true;
}

Result<bool> SatisfiesAll(const Database& database,
                          const DependencySet& deps) {
  for (const auto& fd : deps.fds) {
    SETREC_ASSIGN_OR_RETURN(bool ok, Satisfies(database, fd));
    if (!ok) return false;
  }
  for (const auto& ind : deps.inds) {
    SETREC_ASSIGN_OR_RETURN(bool ok, Satisfies(database, ind));
    if (!ok) return false;
  }
  for (const auto& dd : deps.disjointness) {
    SETREC_ASSIGN_OR_RETURN(bool ok, Satisfies(database, dd));
    if (!ok) return false;
  }
  return true;
}

}  // namespace setrec
