#include "relational/expression.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace setrec {

ExprPtr Expr::Relation(std::string name) {
  auto node = std::shared_ptr<Expr>(new Expr(Op::kRelation));
  node->relation_name_ = std::move(name);
  return node;
}

ExprPtr Expr::Union(ExprPtr left, ExprPtr right) {
  auto node = std::shared_ptr<Expr>(new Expr(Op::kUnion));
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

ExprPtr Expr::Difference(ExprPtr left, ExprPtr right) {
  auto node = std::shared_ptr<Expr>(new Expr(Op::kDifference));
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

ExprPtr Expr::Product(ExprPtr left, ExprPtr right) {
  auto node = std::shared_ptr<Expr>(new Expr(Op::kProduct));
  node->left_ = std::move(left);
  node->right_ = std::move(right);
  return node;
}

ExprPtr Expr::SelectEq(ExprPtr child, std::string a, std::string b) {
  auto node = std::shared_ptr<Expr>(new Expr(Op::kSelectEq));
  node->left_ = std::move(child);
  node->attr_a_ = std::move(a);
  node->attr_b_ = std::move(b);
  return node;
}

ExprPtr Expr::SelectNeq(ExprPtr child, std::string a, std::string b) {
  auto node = std::shared_ptr<Expr>(new Expr(Op::kSelectNeq));
  node->left_ = std::move(child);
  node->attr_a_ = std::move(a);
  node->attr_b_ = std::move(b);
  return node;
}

ExprPtr Expr::Project(ExprPtr child, std::vector<std::string> attrs) {
  auto node = std::shared_ptr<Expr>(new Expr(Op::kProject));
  node->left_ = std::move(child);
  node->projection_ = std::move(attrs);
  return node;
}

ExprPtr Expr::Rename(ExprPtr child, std::string from, std::string to) {
  auto node = std::shared_ptr<Expr>(new Expr(Op::kRename));
  node->left_ = std::move(child);
  node->attr_a_ = std::move(from);
  node->attr_b_ = std::move(to);
  return node;
}

bool IsPositive(const Expr& expr) {
  if (expr.op() == Expr::Op::kDifference) return false;
  if (expr.left() && !IsPositive(*expr.left())) return false;
  if (expr.right() && !IsPositive(*expr.right())) return false;
  return true;
}

namespace {
void CollectRelations(const Expr& expr, std::set<std::string>& out) {
  if (expr.op() == Expr::Op::kRelation) {
    out.insert(expr.relation_name());
    return;
  }
  if (expr.left()) CollectRelations(*expr.left(), out);
  if (expr.right()) CollectRelations(*expr.right(), out);
}
}  // namespace

std::vector<std::string> ReferencedRelations(const Expr& expr) {
  std::set<std::string> names;
  CollectRelations(expr, names);
  return {names.begin(), names.end()};
}

Result<RelationScheme> InferScheme(const Expr& expr, const Catalog& catalog) {
  switch (expr.op()) {
    case Expr::Op::kRelation: {
      SETREC_ASSIGN_OR_RETURN(const RelationScheme* scheme,
                              catalog.Find(expr.relation_name()));
      return *scheme;
    }
    case Expr::Op::kUnion:
    case Expr::Op::kDifference: {
      SETREC_ASSIGN_OR_RETURN(RelationScheme l,
                              InferScheme(*expr.left(), catalog));
      SETREC_ASSIGN_OR_RETURN(RelationScheme r,
                              InferScheme(*expr.right(), catalog));
      if (!(l == r)) {
        return Status::InvalidArgument(
            "union/difference operands must have identical schemes");
      }
      return l;
    }
    case Expr::Op::kProduct: {
      SETREC_ASSIGN_OR_RETURN(RelationScheme l,
                              InferScheme(*expr.left(), catalog));
      SETREC_ASSIGN_OR_RETURN(RelationScheme r,
                              InferScheme(*expr.right(), catalog));
      std::vector<Attribute> attrs = l.attributes();
      for (const Attribute& a : r.attributes()) {
        if (l.HasAttribute(a.name)) {
          return Status::InvalidArgument(
              "product operands share attribute name " + a.name +
              "; rename first");
        }
        attrs.push_back(a);
      }
      return RelationScheme::Make(std::move(attrs));
    }
    case Expr::Op::kSelectEq:
    case Expr::Op::kSelectNeq: {
      SETREC_ASSIGN_OR_RETURN(RelationScheme s,
                              InferScheme(*expr.child(), catalog));
      SETREC_ASSIGN_OR_RETURN(std::size_t ia, s.IndexOf(expr.attr_a()));
      SETREC_ASSIGN_OR_RETURN(std::size_t ib, s.IndexOf(expr.attr_b()));
      if (s.attribute(ia).domain != s.attribute(ib).domain) {
        return Status::InvalidArgument(
            "selection compares attributes of different domains: " +
            expr.attr_a() + " vs " + expr.attr_b());
      }
      return s;
    }
    case Expr::Op::kProject: {
      SETREC_ASSIGN_OR_RETURN(RelationScheme s,
                              InferScheme(*expr.child(), catalog));
      std::vector<Attribute> attrs;
      std::set<std::string> seen;
      for (const std::string& name : expr.projection()) {
        if (!seen.insert(name).second) {
          return Status::InvalidArgument("duplicate projection attribute " +
                                         name);
        }
        SETREC_ASSIGN_OR_RETURN(std::size_t i, s.IndexOf(name));
        attrs.push_back(s.attribute(i));
      }
      return RelationScheme::Make(std::move(attrs));
    }
    case Expr::Op::kRename: {
      SETREC_ASSIGN_OR_RETURN(RelationScheme s,
                              InferScheme(*expr.child(), catalog));
      SETREC_ASSIGN_OR_RETURN(std::size_t i, s.IndexOf(expr.rename_from()));
      if (s.HasAttribute(expr.rename_to())) {
        return Status::InvalidArgument("rename target attribute " +
                                       expr.rename_to() + " already present");
      }
      std::vector<Attribute> attrs = s.attributes();
      attrs[i].name = expr.rename_to();
      return RelationScheme::Make(std::move(attrs));
    }
  }
  return Status::Internal("unknown expression operator");
}

ExprPtr SubstituteRelation(const ExprPtr& expr, const std::string& name,
                           const ExprPtr& replacement) {
  switch (expr->op()) {
    case Expr::Op::kRelation:
      return expr->relation_name() == name ? replacement : expr;
    case Expr::Op::kUnion:
    case Expr::Op::kDifference:
    case Expr::Op::kProduct: {
      ExprPtr l = SubstituteRelation(expr->left(), name, replacement);
      ExprPtr r = SubstituteRelation(expr->right(), name, replacement);
      if (l == expr->left() && r == expr->right()) return expr;
      switch (expr->op()) {
        case Expr::Op::kUnion:
          return Expr::Union(std::move(l), std::move(r));
        case Expr::Op::kDifference:
          return Expr::Difference(std::move(l), std::move(r));
        default:
          return Expr::Product(std::move(l), std::move(r));
      }
    }
    case Expr::Op::kSelectEq:
    case Expr::Op::kSelectNeq: {
      ExprPtr c = SubstituteRelation(expr->child(), name, replacement);
      if (c == expr->child()) return expr;
      return expr->op() == Expr::Op::kSelectEq
                 ? Expr::SelectEq(std::move(c), expr->attr_a(), expr->attr_b())
                 : Expr::SelectNeq(std::move(c), expr->attr_a(),
                                   expr->attr_b());
    }
    case Expr::Op::kProject: {
      ExprPtr c = SubstituteRelation(expr->child(), name, replacement);
      if (c == expr->child()) return expr;
      return Expr::Project(std::move(c), expr->projection());
    }
    case Expr::Op::kRename: {
      ExprPtr c = SubstituteRelation(expr->child(), name, replacement);
      if (c == expr->child()) return expr;
      return Expr::Rename(std::move(c), expr->rename_from(),
                          expr->rename_to());
    }
  }
  return expr;
}

namespace {
void Print(const Expr& expr, std::ostringstream& out) {
  switch (expr.op()) {
    case Expr::Op::kRelation:
      out << expr.relation_name();
      return;
    case Expr::Op::kUnion:
      out << "(";
      Print(*expr.left(), out);
      out << " ∪ ";
      Print(*expr.right(), out);
      out << ")";
      return;
    case Expr::Op::kDifference:
      out << "(";
      Print(*expr.left(), out);
      out << " − ";
      Print(*expr.right(), out);
      out << ")";
      return;
    case Expr::Op::kProduct:
      out << "(";
      Print(*expr.left(), out);
      out << " × ";
      Print(*expr.right(), out);
      out << ")";
      return;
    case Expr::Op::kSelectEq:
    case Expr::Op::kSelectNeq:
      out << "σ[" << expr.attr_a()
          << (expr.op() == Expr::Op::kSelectEq ? "=" : "≠") << expr.attr_b()
          << "](";
      Print(*expr.child(), out);
      out << ")";
      return;
    case Expr::Op::kProject: {
      out << "π[";
      bool first = true;
      for (const std::string& a : expr.projection()) {
        if (!first) out << ",";
        out << a;
        first = false;
      }
      out << "](";
      Print(*expr.child(), out);
      out << ")";
      return;
    }
    case Expr::Op::kRename:
      out << "ρ[" << expr.rename_from() << "→" << expr.rename_to() << "](";
      Print(*expr.child(), out);
      out << ")";
      return;
  }
}
}  // namespace

std::string ExprToString(const Expr& expr) {
  std::ostringstream out;
  Print(expr, out);
  return out.str();
}

}  // namespace setrec
