#ifndef SETREC_RELATIONAL_VECTORIZED_ENGINE_H_
#define SETREC_RELATIONAL_VECTORIZED_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/exec_context.h"
#include "relational/evaluator.h"
#include "relational/expression.h"
#include "relational/relation.h"
#include "relational/vectorized/batch.h"

namespace setrec::vectorized {

/// True when every operator in `expr` has a vectorized implementation. All
/// eight algebra operators are covered today; the predicate is the seam that
/// lets future operators land interpreter-first and graduate later (the
/// evaluator falls back per expression when this returns false).
bool Covers(const Expr& expr);

/// Sum of the sizes of the base relations `expr` references (unknown names
/// count zero). The kAuto backend policy compares this against a threshold:
/// transposing inputs into columns is a per-evaluation cost that only pays
/// off once the batched kernels have enough rows to chew through.
std::size_t EstimatedInputRows(const Expr& expr, const Database& database);

/// One flat-bytecode instruction. A node's block is
///   kMemoCheck (hit: load result, count a cache hit, jump past the block)
///   ...child blocks...
///   one materializing instruction (finishes the node: stores the memo
///   entry, records EvalNodeStats, leaves the result in `dst`)
/// so the program replays exactly the interpreter's memoized DFS, including
/// its cache-hit counts, while the per-operator work runs columnwise.
struct Insn {
  enum class Op : std::uint8_t {
    kMemoCheck,   // if memo[origin]: dst = it, ++hits, jump `target`
    kMemoLoad,    // dst = memo[origin] (must exist), ++hits
    kJump,        // pc = target
    kJumpIfEmpty, // if regs[a] has no rows: pc = target (π_∅ guards)
    kLoad,        // dst = columnar form of base relation `name`
    kUnion,       // dst = regs[a] ∪ regs[b]
    kDifference,  // dst = regs[a] − regs[b]
    kProduct,     // dst = regs[a] × regs[b] (row-budget charged)
    kSelect,      // dst = σ_{ia θ ib}(regs[a])
    kProject,     // dst = π_{cols}(regs[a]), deduplicated
    kRename,      // dst = regs[a] under `scheme`
    kHashJoin,    // dst = fused σ-chain over regs[a] × regs[b]
    kMakeEmpty,   // dst = empty table over `scheme` (guard short-circuit)
  };

  /// One selection condition of a fused chain, resolved to side-local
  /// column indices at compile time.
  struct JoinCond {
    bool equal;
    bool a_left, b_left;
    std::uint32_t ia, ib;
  };

  Op op;
  const Expr* origin = nullptr;  // node this instruction belongs to
  std::uint32_t dst = 0, a = 0, b = 0;
  std::uint32_t target = 0;  // jump destination (instruction index)

  // Compile-time payloads (empty where not applicable).
  std::string name;                    // kLoad: relation name
  RelationScheme scheme;               // materializers: output scheme
  bool want_equal = false;             // kSelect
  std::uint32_t ia = 0, ib = 0;        // kSelect: column indices
  std::vector<std::uint32_t> cols;     // kProject: source columns
  std::vector<std::pair<std::uint32_t, std::uint32_t>> join_keys;  // (l, r)
  std::vector<JoinCond> local_left, local_right, cross;            // kHashJoin
};

/// A compiled expression: flat code plus the register budget. Holds the root
/// ExprPtr so node pointers baked into the code stay valid for the program's
/// lifetime.
struct Program {
  ExprPtr root;
  std::vector<Insn> code;
  std::uint32_t num_regs = 0;
};

/// The compiled vectorized backend. An Engine is bound to one Database
/// snapshot and one ExecContext, exactly like the Evaluator that owns it,
/// and replays the interpreter's observable contract: identical results,
/// identical error statuses for runtime failures, identical logical metrics
/// (evaluator.rows / join_probes / join_build_rows), identical memo
/// cache-hit counts and EvalNodeStats shape. Type errors are the one
/// deliberate divergence: compilation surfaces them before any charging.
///
/// Three caches with different lifetimes:
///  - programs_: per root node, survives ClearResultMemo (compile once),
///  - loads_:    transposed base relations by name, survives too,
///  - memo_:     per-node results — the analogue of the interpreter's memo;
///               ClearResultMemo drops it, forcing pure bytecode re-execution
///               (the "bytecode" mode of the differential tests and bench).
class Engine {
 public:
  Engine(const Database* database, ExecContext* ctx)
      : database_(database), ctx_(ctx) {}

  /// Compiles `root` (cached) and runs it. `stats` may be null; when given
  /// it receives the same per-node statistics the interpreter records.
  Result<std::shared_ptr<const Relation>> Execute(
      const ExprPtr& root,
      std::unordered_map<const Expr*, EvalNodeStats>* stats);

  /// Drops per-node results but keeps compiled programs and transposed base
  /// relations, so the next Execute measures pure batch execution.
  void ClearResultMemo() { memo_.clear(); }

 private:
  struct MemoEntry {
    std::shared_ptr<const ColumnTable> table;
    // Row form, materialized lazily (only the root of an Execute needs it;
    // interior results stay columnar). Leaf entries alias the Database's
    // shared storage, exactly like the interpreter's leaf memo.
    std::shared_ptr<const Relation> rel;
  };

  Result<ColumnTable> RunOp(
      const Insn& in,
      const std::vector<std::shared_ptr<const ColumnTable>>& regs);
  Result<ColumnTable> RunHashJoin(
      const Insn& in,
      const std::vector<std::shared_ptr<const ColumnTable>>& regs);

  const Database* database_;
  ExecContext* ctx_;
  // Stats sink of the Execute in flight (kHashJoin tallies build/probe rows
  // mid-operator, before its node finishes); null when stats are detached.
  std::unordered_map<const Expr*, EvalNodeStats>* join_stats_ = nullptr;
  std::unordered_map<const Expr*, Program> programs_;
  std::unordered_map<const Expr*, MemoEntry> memo_;
  std::unordered_map<std::string, std::shared_ptr<const ColumnTable>> loads_;
};

}  // namespace setrec::vectorized

#endif  // SETREC_RELATIONAL_VECTORIZED_ENGINE_H_
