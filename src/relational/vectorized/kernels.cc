#include "relational/vectorized/kernels.h"

#include <bit>
#include <utility>

namespace setrec::vectorized {

void HashRows(const ColumnTable& t, std::span<const std::uint32_t> cols,
              std::vector<std::uint64_t>& out) {
  out.assign(t.rows, 0x9e3779b97f4a7c15ull ^ cols.size());
  std::uint64_t* h = out.data();
  for (std::uint32_t c : cols) {
    const PackedValue* col = t.columns[c].data();
    for (std::size_t i = 0; i < t.rows; ++i) {
      h[i] = (h[i] ^ Mix64(col[i])) * 0x100000001b3ull;
    }
  }
}

void AndEqualityMask(const ColumnTable& t, std::uint32_t col_a,
                     std::uint32_t col_b, bool want_equal,
                     std::vector<std::uint8_t>& mask) {
  const PackedValue* a = t.columns[col_a].data();
  const PackedValue* b = t.columns[col_b].data();
  std::uint8_t* m = mask.data();
  const std::uint8_t want = want_equal ? 1 : 0;
  for (std::size_t i = 0; i < t.rows; ++i) {
    m[i] &= static_cast<std::uint8_t>((a[i] == b[i]) == want);
  }
}

std::vector<std::uint32_t> MaskToSelection(
    const std::vector<std::uint8_t>& mask) {
  std::vector<std::uint32_t> sel;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) sel.push_back(static_cast<std::uint32_t>(i));
  }
  return sel;
}

ColumnTable Gather(const ColumnTable& t, std::span<const std::uint32_t> cols,
                   std::span<const std::uint32_t> sel, RelationScheme scheme) {
  ColumnTable out = MakeTable(std::move(scheme), sel.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const PackedValue* src = t.columns[cols[c]].data();
    std::vector<PackedValue>& dst = out.columns[c];
    for (std::uint32_t r : sel) dst.push_back(src[r]);
  }
  out.rows = sel.size();
  return out;
}

RowHashTable::RowHashTable(const ColumnTable* table,
                           std::vector<std::uint32_t> key_cols)
    : table_(table), key_cols_(std::move(key_cols)) {}

void RowHashTable::Reserve(std::size_t n) {
  const std::size_t needed = std::bit_ceil(std::max<std::size_t>(n, 1) * 2);
  if (needed <= slots_.size()) return;
  std::vector<std::uint32_t> old = std::move(slots_);
  slots_.assign(needed, 0);
  mask_ = needed - 1;
  for (std::uint32_t head_plus1 : old) {
    if (head_plus1 == 0) continue;
    const std::uint32_t head = head_plus1 - 1;
    std::size_t slot = row_hash_[head] & mask_;
    while (slots_[slot] != 0) slot = (slot + 1) & mask_;
    slots_[slot] = head_plus1;
  }
}

bool RowHashTable::KeysEqual(std::uint32_t own_row, const ColumnTable& other,
                             std::span<const std::uint32_t> other_cols,
                             std::uint32_t other_row) const {
  for (std::size_t k = 0; k < key_cols_.size(); ++k) {
    if (table_->columns[key_cols_[k]][own_row] !=
        other.columns[other_cols[k]][other_row]) {
      return false;
    }
  }
  return true;
}

bool RowHashTable::Insert(std::uint32_t r, std::uint64_t h) {
  if (next_row_.size() <= r) next_row_.resize(r + 1, kNone);
  if (row_hash_.size() <= r) row_hash_.resize(r + 1, 0);
  row_hash_[r] = h;
  std::size_t slot = h & mask_;
  while (true) {
    const std::uint32_t head_plus1 = slots_[slot];
    if (head_plus1 == 0) {
      slots_[slot] = r + 1;
      next_row_[r] = kNone;
      return true;
    }
    const std::uint32_t head = head_plus1 - 1;
    if (row_hash_[head] == h &&
        KeysEqual(head, *table_, key_cols_, r)) {
      next_row_[r] = head;  // new head of the equal-key chain
      slots_[slot] = r + 1;
      return false;
    }
    slot = (slot + 1) & mask_;
  }
}

std::uint32_t RowHashTable::Find(const ColumnTable& probe,
                                 std::span<const std::uint32_t> probe_cols,
                                 std::uint32_t pr, std::uint64_t h) const {
  if (slots_.empty()) return kNone;
  std::size_t slot = h & mask_;
  while (true) {
    const std::uint32_t head_plus1 = slots_[slot];
    if (head_plus1 == 0) return kNone;
    const std::uint32_t head = head_plus1 - 1;
    if (row_hash_[head] == h && KeysEqual(head, probe, probe_cols, pr)) {
      return head;
    }
    slot = (slot + 1) & mask_;
  }
}

}  // namespace setrec::vectorized
