#include "relational/vectorized/engine.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <optional>
#include <set>
#include <unordered_set>

#include "relational/vectorized/kernels.h"

namespace setrec::vectorized {

namespace {

using Op = Insn::Op;
using Clock = std::chrono::steady_clock;

bool IsGuardShaped(const Expr& e) {
  return e.op() == Expr::Op::kProject && e.projection().empty();
}

std::vector<std::uint32_t> AllColumns(std::size_t arity) {
  std::vector<std::uint32_t> cols(arity);
  std::iota(cols.begin(), cols.end(), 0);
  return cols;
}

/// Lowers one expression DAG into a flat program. The compiler walks the DAG
/// in the interpreter's exact evaluation order and performs the same checks
/// with the same error strings, so an ill-typed expression fails identically
/// under either backend (the engine merely fails before charging budgets —
/// the documented divergence). Every repeated reference to a node becomes a
/// kMemoLoad, never a raw register reuse: a register defined inside a block
/// that an enclosing memo hit skipped would be stale, while the memo is
/// guaranteed populated for every non-conditional node emitted earlier.
class Compiler {
 public:
  explicit Compiler(const Database* database) : database_(database) {}

  Result<Program> Compile(const ExprPtr& root) {
    SETREC_RETURN_IF_ERROR(Emit(root).status());
    Program program;
    program.root = root;
    program.code = std::move(code_);
    program.num_regs = num_regs_;
    return program;
  }

 private:
  std::uint32_t NewReg() { return num_regs_++; }

  std::size_t Push(Insn in) {
    code_.push_back(std::move(in));
    return code_.size() - 1;
  }

  /// Emits the block computing `e` and returns its result register. The
  /// node's scheme is recorded in schemes_ as a side effect.
  Result<std::uint32_t> Emit(const ExprPtr& e) {
    const Expr* n = e.get();
    if (available_.contains(n)) {
      // Already computed unconditionally earlier in this program: at
      // runtime the memo provably holds it (a skipped ancestor implies the
      // ancestor's own memo hit, which implies this entry was stored on the
      // run that populated the ancestor). Mirrors an interpreter cache hit.
      Insn load;
      load.op = Op::kMemoLoad;
      load.origin = n;
      load.dst = NewReg();
      const std::uint32_t reg = load.dst;
      Push(std::move(load));
      return reg;
    }
    const std::uint32_t reg = NewReg();
    Insn check;
    check.op = Op::kMemoCheck;
    check.origin = n;
    check.dst = reg;
    const std::size_t check_idx = Push(std::move(check));
    RelationScheme scheme;
    switch (n->op()) {
      case Expr::Op::kRelation: {
        SETREC_ASSIGN_OR_RETURN(const Relation* rel,
                                database_->Find(n->relation_name()));
        scheme = rel->scheme();
        Insn in;
        in.op = Op::kLoad;
        in.origin = n;
        in.dst = reg;
        in.name = n->relation_name();
        in.scheme = scheme;
        Push(std::move(in));
        break;
      }
      case Expr::Op::kUnion:
      case Expr::Op::kDifference: {
        SETREC_ASSIGN_OR_RETURN(std::uint32_t l, Emit(n->left()));
        SETREC_ASSIGN_OR_RETURN(std::uint32_t r, Emit(n->right()));
        const RelationScheme& ls = schemes_.at(n->left().get());
        const RelationScheme& rs = schemes_.at(n->right().get());
        if (!(ls == rs)) {
          return Status::InvalidArgument(
              "union/difference operands must have identical schemes");
        }
        scheme = ls;
        Insn in;
        in.op = n->op() == Expr::Op::kUnion ? Op::kUnion : Op::kDifference;
        in.origin = n;
        in.dst = reg;
        in.a = l;
        in.b = r;
        in.scheme = scheme;
        Push(std::move(in));
        break;
      }
      case Expr::Op::kProduct: {
        SETREC_ASSIGN_OR_RETURN(scheme, EmitProduct(e, reg));
        break;
      }
      case Expr::Op::kSelectEq:
      case Expr::Op::kSelectNeq: {
        const Expr* bottom = n;
        while (bottom->op() == Expr::Op::kSelectEq ||
               bottom->op() == Expr::Op::kSelectNeq) {
          bottom = bottom->child().get();
        }
        if (bottom->op() == Expr::Op::kProduct) {
          SETREC_ASSIGN_OR_RETURN(scheme, EmitChain(e, reg));
          break;
        }
        SETREC_ASSIGN_OR_RETURN(std::uint32_t c, Emit(n->child()));
        const RelationScheme& cs = schemes_.at(n->child().get());
        SETREC_ASSIGN_OR_RETURN(std::size_t ia, cs.IndexOf(n->attr_a()));
        SETREC_ASSIGN_OR_RETURN(std::size_t ib, cs.IndexOf(n->attr_b()));
        if (cs.attribute(ia).domain != cs.attribute(ib).domain) {
          return Status::InvalidArgument(
              "selection compares attributes of different domains");
        }
        scheme = cs;
        Insn in;
        in.op = Op::kSelect;
        in.origin = n;
        in.dst = reg;
        in.a = c;
        in.want_equal = n->op() == Expr::Op::kSelectEq;
        in.ia = static_cast<std::uint32_t>(ia);
        in.ib = static_cast<std::uint32_t>(ib);
        in.scheme = scheme;
        Push(std::move(in));
        break;
      }
      case Expr::Op::kProject: {
        SETREC_ASSIGN_OR_RETURN(std::uint32_t c, Emit(n->child()));
        const RelationScheme& cs = schemes_.at(n->child().get());
        std::vector<std::uint32_t> cols;
        std::vector<Attribute> attrs;
        std::set<std::string> seen;
        for (const std::string& name : n->projection()) {
          if (!seen.insert(name).second) {
            return Status::InvalidArgument("duplicate projection attribute " +
                                           name);
          }
          SETREC_ASSIGN_OR_RETURN(std::size_t i, cs.IndexOf(name));
          cols.push_back(static_cast<std::uint32_t>(i));
          attrs.push_back(cs.attribute(i));
        }
        SETREC_ASSIGN_OR_RETURN(scheme, RelationScheme::Make(std::move(attrs)));
        Insn in;
        in.op = Op::kProject;
        in.origin = n;
        in.dst = reg;
        in.a = c;
        in.cols = std::move(cols);
        in.scheme = scheme;
        Push(std::move(in));
        break;
      }
      case Expr::Op::kRename: {
        SETREC_ASSIGN_OR_RETURN(std::uint32_t c, Emit(n->child()));
        const RelationScheme& cs = schemes_.at(n->child().get());
        SETREC_ASSIGN_OR_RETURN(std::size_t i, cs.IndexOf(n->rename_from()));
        if (cs.HasAttribute(n->rename_to())) {
          return Status::InvalidArgument("rename target attribute " +
                                         n->rename_to() + " already present");
        }
        std::vector<Attribute> attrs = cs.attributes();
        attrs[i].name = n->rename_to();
        SETREC_ASSIGN_OR_RETURN(scheme, RelationScheme::Make(std::move(attrs)));
        Insn in;
        in.op = Op::kRename;
        in.origin = n;
        in.dst = reg;
        in.a = c;
        in.scheme = scheme;
        Push(std::move(in));
        break;
      }
    }
    code_[check_idx].target = static_cast<std::uint32_t>(code_.size());
    available_.insert(n);
    if (!regions_.empty()) regions_.back().push_back(n);
    schemes_.insert_or_assign(n, scheme);
    return reg;
  }

  /// Product scheme in the interpreter's order, with its error string.
  Result<RelationScheme> ProductScheme(const RelationScheme& ls,
                                       const RelationScheme& rs) {
    std::vector<Attribute> attrs = ls.attributes();
    for (const Attribute& a : rs.attributes()) {
      if (ls.HasAttribute(a.name)) {
        return Status::InvalidArgument(
            "product operands share attribute name " + a.name);
      }
      attrs.push_back(a);
    }
    return RelationScheme::Make(std::move(attrs));
  }

  /// Bare product: lowers the interpreter's π_∅ guard short-circuit as a
  /// conditional branch. The guard side evaluates unconditionally; the other
  /// side's block sits on the guard-non-empty path only, so every node first
  /// lowered there is conditionally computed and loses availability once the
  /// branch closes (a later reference re-emits a full, memo-checked block —
  /// which at runtime replays exactly the interpreter's first-eval or
  /// cache-hit behavior for that node).
  Result<RelationScheme> EmitProduct(const ExprPtr& e, std::uint32_t reg) {
    const Expr* n = e.get();
    const bool left_guard = IsGuardShaped(*n->left());
    const bool right_guard = !left_guard && IsGuardShaped(*n->right());
    const bool guarded = left_guard || right_guard;
    std::size_t jie_idx = 0;
    if (guarded) {
      const ExprPtr& guard = left_guard ? n->left() : n->right();
      SETREC_ASSIGN_OR_RETURN(std::uint32_t greg, Emit(guard));
      Insn jie;
      jie.op = Op::kJumpIfEmpty;
      jie.a = greg;
      jie_idx = Push(std::move(jie));
      regions_.emplace_back();
    }
    // Full-evaluation path, in the interpreter's left-then-right order; the
    // guard side resolves to a kMemoLoad (its block ran just above), which
    // is precisely the interpreter's extra EvalShared cache hit.
    SETREC_ASSIGN_OR_RETURN(std::uint32_t l, Emit(n->left()));
    SETREC_ASSIGN_OR_RETURN(std::uint32_t r, Emit(n->right()));
    SETREC_ASSIGN_OR_RETURN(
        RelationScheme scheme,
        ProductScheme(schemes_.at(n->left().get()),
                      schemes_.at(n->right().get())));
    Insn prod;
    prod.op = Op::kProduct;
    prod.origin = n;
    prod.dst = reg;
    prod.a = l;
    prod.b = r;
    prod.scheme = scheme;
    Push(std::move(prod));
    if (guarded) {
      Insn jmp;
      jmp.op = Op::kJump;
      const std::size_t jmp_idx = Push(std::move(jmp));
      for (const Expr* x : regions_.back()) available_.erase(x);
      regions_.pop_back();
      code_[jie_idx].target = static_cast<std::uint32_t>(code_.size());
      // Guard empty: a type-only result. The guard contributes no
      // attributes, so the product scheme *is* the other side's scheme.
      Insn mk;
      mk.op = Op::kMakeEmpty;
      mk.origin = n;
      mk.dst = reg;
      mk.scheme = scheme;
      Push(std::move(mk));
      code_[jmp_idx].target = static_cast<std::uint32_t>(code_.size());
    }
    return scheme;
  }

  /// σ-chain over a product: the whole chain lowers to one kHashJoin owned
  /// by the top node. Interior selections and the product never become
  /// blocks (no memo entries, no stats), matching EvalSelectionChain.
  Result<RelationScheme> EmitChain(const ExprPtr& e, std::uint32_t reg) {
    struct Cond {
      bool equal;
      const std::string* a;
      const std::string* b;
    };
    std::vector<Cond> conditions;
    const Expr* node = e.get();
    while (node->op() == Expr::Op::kSelectEq ||
           node->op() == Expr::Op::kSelectNeq) {
      conditions.push_back(Cond{node->op() == Expr::Op::kSelectEq,
                                &node->attr_a(), &node->attr_b()});
      node = node->child().get();
    }
    SETREC_ASSIGN_OR_RETURN(std::uint32_t l, Emit(node->left()));
    SETREC_ASSIGN_OR_RETURN(std::uint32_t r, Emit(node->right()));
    const RelationScheme& ls = schemes_.at(node->left().get());
    SETREC_ASSIGN_OR_RETURN(
        RelationScheme scheme,
        ProductScheme(ls, schemes_.at(node->right().get())));
    const std::size_t lw = ls.arity();
    Insn join;
    join.op = Op::kHashJoin;
    join.origin = e.get();
    join.dst = reg;
    join.a = l;
    join.b = r;
    join.scheme = scheme;
    for (const Cond& c : conditions) {
      SETREC_ASSIGN_OR_RETURN(std::size_t ga, scheme.IndexOf(*c.a));
      SETREC_ASSIGN_OR_RETURN(std::size_t gb, scheme.IndexOf(*c.b));
      if (scheme.attribute(ga).domain != scheme.attribute(gb).domain) {
        return Status::InvalidArgument(
            "selection compares attributes of different domains");
      }
      Insn::JoinCond rc;
      rc.equal = c.equal;
      rc.a_left = ga < lw;
      rc.b_left = gb < lw;
      rc.ia = static_cast<std::uint32_t>(rc.a_left ? ga : ga - lw);
      rc.ib = static_cast<std::uint32_t>(rc.b_left ? gb : gb - lw);
      if (rc.a_left && rc.b_left) {
        join.local_left.push_back(rc);
      } else if (!rc.a_left && !rc.b_left) {
        join.local_right.push_back(rc);
      } else if (rc.equal) {
        join.join_keys.emplace_back(rc.a_left ? rc.ia : rc.ib,
                                    rc.a_left ? rc.ib : rc.ia);
      } else {
        join.cross.push_back(rc);
      }
    }
    Push(std::move(join));
    return scheme;
  }

  const Database* database_;
  std::vector<Insn> code_;
  std::uint32_t num_regs_ = 0;
  std::unordered_map<const Expr*, RelationScheme> schemes_;
  std::unordered_set<const Expr*> available_;
  std::vector<std::vector<const Expr*>> regions_;
};

}  // namespace

bool Covers(const Expr& expr) {
  switch (expr.op()) {
    case Expr::Op::kRelation:
      return true;
    case Expr::Op::kUnion:
    case Expr::Op::kDifference:
    case Expr::Op::kProduct:
      return Covers(*expr.left()) && Covers(*expr.right());
    case Expr::Op::kSelectEq:
    case Expr::Op::kSelectNeq:
    case Expr::Op::kProject:
    case Expr::Op::kRename:
      return Covers(*expr.child());
  }
  return false;
}

std::size_t EstimatedInputRows(const Expr& expr, const Database& database) {
  std::size_t total = 0;
  for (const std::string& name : ReferencedRelations(expr)) {
    Result<const Relation*> rel = database.Find(name);
    if (rel.ok()) total += (*rel)->size();
  }
  return total;
}

Result<std::shared_ptr<const Relation>> Engine::Execute(
    const ExprPtr& root,
    std::unordered_map<const Expr*, EvalNodeStats>* stats) {
  auto pit = programs_.find(root.get());
  if (pit == programs_.end()) {
    Compiler compiler(database_);
    SETREC_ASSIGN_OR_RETURN(Program program, compiler.Compile(root));
    pit = programs_.emplace(root.get(), std::move(program)).first;
  }
  const Program& program = pit->second;
  join_stats_ = stats;

  std::vector<std::shared_ptr<const ColumnTable>> regs(program.num_regs);
  // Open per-node timers, parent below child (pushed on memo miss, popped by
  // the node's materializer), giving the interpreter's inclusive wall_ns.
  std::vector<std::pair<const Expr*, Clock::time_point>> open;
  auto fail = [&](Status status) {
    if (stats != nullptr) {
      const Clock::time_point now = Clock::now();
      for (const auto& [origin, start] : open) {
        (*stats)[origin].wall_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now - start)
                .count());
      }
    }
    return status;
  };
  auto finish = [&](const Insn& in, std::shared_ptr<const ColumnTable> table,
                    std::shared_ptr<const Relation> rel) {
    regs[in.dst] = table;
    if (stats != nullptr) {
      EvalNodeStats& s = (*stats)[in.origin];
      s.rows = table->rows;
      s.backend = in.op == Op::kHashJoin ? "bytecode" : "vectorized";
      if (!open.empty() && open.back().first == in.origin) {
        s.wall_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - open.back().second)
                .count());
        open.pop_back();
      }
    }
    memo_[in.origin] = MemoEntry{std::move(table), std::move(rel)};
  };

  std::size_t pc = 0;
  while (pc < program.code.size()) {
    const Insn& in = program.code[pc];
    switch (in.op) {
      case Op::kMemoCheck: {
        auto m = memo_.find(in.origin);
        if (m != memo_.end()) {
          regs[in.dst] = m->second.table;
          if (stats != nullptr) ++(*stats)[in.origin].cache_hits;
          pc = in.target;
          continue;
        }
        if (stats != nullptr) open.emplace_back(in.origin, Clock::now());
        break;
      }
      case Op::kMemoLoad: {
        auto m = memo_.find(in.origin);
        if (m == memo_.end()) {
          return fail(Status::Internal("vectorized memo missing an operand"));
        }
        regs[in.dst] = m->second.table;
        if (stats != nullptr) ++(*stats)[in.origin].cache_hits;
        break;
      }
      case Op::kJump:
        pc = in.target;
        continue;
      case Op::kJumpIfEmpty:
        if (regs[in.a]->rows == 0) {
          pc = in.target;
          continue;
        }
        break;
      case Op::kLoad: {
        Result<std::shared_ptr<const Relation>> rel =
            database_->FindShared(in.name);
        if (!rel.ok()) return fail(rel.status());
        std::shared_ptr<const ColumnTable> table;
        auto lit = loads_.find(in.name);
        if (lit != loads_.end()) {
          table = lit->second;
        } else {
          table = std::make_shared<const ColumnTable>(FromRelation(**rel));
          loads_.emplace(in.name, table);
        }
        finish(in, std::move(table), std::move(*rel));
        break;
      }
      default: {
        Result<ColumnTable> out = RunOp(in, regs);
        if (!out.ok()) return fail(out.status());
        finish(in, std::make_shared<const ColumnTable>(std::move(*out)),
               nullptr);
        break;
      }
    }
    ++pc;
  }

  MemoEntry& entry = memo_[program.root.get()];
  if (entry.table == nullptr) {
    return Status::Internal("vectorized program produced no result");
  }
  if (entry.rel == nullptr) {
    entry.rel = std::make_shared<const Relation>(ToRelation(*entry.table));
  }
  return entry.rel;
}

Result<ColumnTable> Engine::RunOp(
    const Insn& in,
    const std::vector<std::shared_ptr<const ColumnTable>>& regs) {
  switch (in.op) {
    case Op::kMakeEmpty:
      return MakeTable(in.scheme);
    case Op::kRename: {
      const ColumnTable& c = *regs[in.a];
      ColumnTable out;
      out.scheme = in.scheme;
      out.columns = c.columns;
      out.rows = c.rows;
      return out;
    }
    case Op::kSelect: {
      const ColumnTable& c = *regs[in.a];
      std::vector<std::uint8_t> mask(c.rows, 1);
      AndEqualityMask(c, in.ia, in.ib, in.want_equal, mask);
      const std::vector<std::uint32_t> sel = MaskToSelection(mask);
      return Gather(c, AllColumns(c.arity()), sel, in.scheme);
    }
    case Op::kProject: {
      const ColumnTable& c = *regs[in.a];
      ColumnTable out = MakeTable(in.scheme);
      const std::vector<std::uint32_t> out_cols = AllColumns(out.arity());
      RowHashTable dedup(&out, out_cols);
      dedup.Reserve(c.rows);
      std::vector<std::uint64_t> h;
      HashRows(c, in.cols, h);
      for (std::size_t i = 0; i < c.rows; ++i) {
        if (dedup.Find(c, in.cols, static_cast<std::uint32_t>(i), h[i]) !=
            RowHashTable::kNone) {
          continue;
        }
        for (std::size_t k = 0; k < out_cols.size(); ++k) {
          out.columns[k].push_back(c.columns[in.cols[k]][i]);
        }
        ++out.rows;
        dedup.Insert(static_cast<std::uint32_t>(out.rows - 1), h[i]);
      }
      return out;
    }
    case Op::kUnion: {
      const ColumnTable& l = *regs[in.a];
      const ColumnTable& r = *regs[in.b];
      ColumnTable out;
      out.scheme = in.scheme;
      out.columns = l.columns;
      out.rows = l.rows;
      const std::vector<std::uint32_t> all = AllColumns(out.arity());
      RowHashTable dedup(&out, all);
      dedup.Reserve(l.rows + r.rows);
      std::vector<std::uint64_t> h;
      HashRows(out, all, h);
      for (std::size_t i = 0; i < l.rows; ++i) {
        dedup.Insert(static_cast<std::uint32_t>(i), h[i]);
      }
      HashRows(r, all, h);
      for (std::size_t i = 0; i < r.rows; ++i) {
        if (dedup.Find(r, all, static_cast<std::uint32_t>(i), h[i]) !=
            RowHashTable::kNone) {
          continue;
        }
        for (std::size_t c = 0; c < out.columns.size(); ++c) {
          out.columns[c].push_back(r.columns[c][i]);
        }
        ++out.rows;
        dedup.Insert(static_cast<std::uint32_t>(out.rows - 1), h[i]);
      }
      return out;
    }
    case Op::kDifference: {
      const ColumnTable& l = *regs[in.a];
      const ColumnTable& r = *regs[in.b];
      const std::vector<std::uint32_t> all = AllColumns(l.arity());
      RowHashTable index(&r, all);
      index.Reserve(r.rows);
      std::vector<std::uint64_t> h;
      HashRows(r, all, h);
      for (std::size_t i = 0; i < r.rows; ++i) {
        index.Insert(static_cast<std::uint32_t>(i), h[i]);
      }
      HashRows(l, all, h);
      std::vector<std::uint32_t> sel;
      for (std::size_t i = 0; i < l.rows; ++i) {
        if (index.Find(l, all, static_cast<std::uint32_t>(i), h[i]) ==
            RowHashTable::kNone) {
          sel.push_back(static_cast<std::uint32_t>(i));
        }
      }
      return Gather(l, all, sel, in.scheme);
    }
    case Op::kProduct: {
      const ColumnTable& l = *regs[in.a];
      const ColumnTable& r = *regs[in.b];
      const std::uint64_t tuple_bytes =
          static_cast<std::uint64_t>(in.scheme.arity()) * sizeof(ObjectId);
      TraceSpan span = StartSpan(*ctx_, "evaluator/product");
      MetricsRegistry* metrics = ctx_->metrics();
      ColumnTable out = MakeTable(in.scheme);
      const std::size_t la = l.arity(), ra = r.arity();
      for (std::size_t i = 0; i < l.rows; ++i) {
        std::size_t j = 0;
        while (j < r.rows) {
          const std::size_t n = std::min(kBatchWidth, r.rows - j);
          SETREC_RETURN_IF_ERROR(ctx_->ChargeRows(n, "evaluator/product-row"));
          SETREC_RETURN_IF_ERROR(
              ctx_->ChargeMemory(n * tuple_bytes, "evaluator/product-row"));
          if (metrics != nullptr) metrics->engine.eval_rows.Add(n);
          for (std::size_t c = 0; c < la; ++c) {
            out.columns[c].insert(out.columns[c].end(), n, l.columns[c][i]);
          }
          for (std::size_t c = 0; c < ra; ++c) {
            const PackedValue* src = r.columns[c].data();
            out.columns[la + c].insert(out.columns[la + c].end(), src + j,
                                       src + j + n);
          }
          out.rows += n;
          j += n;
        }
      }
      return out;
    }
    case Op::kHashJoin:
      return RunHashJoin(in, regs);
    case Op::kMemoCheck:
    case Op::kMemoLoad:
    case Op::kJump:
    case Op::kJumpIfEmpty:
    case Op::kLoad:
      break;
  }
  return Status::Internal("unexpected vectorized instruction");
}

Result<ColumnTable> Engine::RunHashJoin(
    const Insn& in,
    const std::vector<std::shared_ptr<const ColumnTable>>& regs) {
  const ColumnTable& left = *regs[in.a];
  const ColumnTable& right = *regs[in.b];
  TraceSpan join_span = StartSpan(*ctx_, "evaluator/join");
  MetricsRegistry* metrics = ctx_->metrics();
  const std::size_t la = left.arity(), ra = right.arity();
  const std::uint64_t tuple_bytes =
      static_cast<std::uint64_t>(in.scheme.arity()) * sizeof(ObjectId);
  std::vector<std::uint32_t> left_keys, right_keys;
  left_keys.reserve(in.join_keys.size());
  right_keys.reserve(in.join_keys.size());
  for (const auto& [l, r] : in.join_keys) {
    left_keys.push_back(l);
    right_keys.push_back(r);
  }

  // Build: filter the right side with its local conditions, gather the
  // survivors into a dense build table, index it by the join keys. The
  // insertion count is the interpreter's build_rows.
  ColumnTable build;
  std::optional<RowHashTable> index;
  {
    TraceSpan build_span = StartSpan(*ctx_, "evaluator/join-build");
    std::vector<std::uint8_t> mask(right.rows, 1);
    for (const Insn::JoinCond& c : in.local_right) {
      AndEqualityMask(right, c.ia, c.ib, c.equal, mask);
    }
    const std::vector<std::uint32_t> sel = MaskToSelection(mask);
    build = Gather(right, AllColumns(ra), sel, right.scheme);
    index.emplace(&build, right_keys);
    index->Reserve(build.rows);
    std::vector<std::uint64_t> bh;
    HashRows(build, right_keys, bh);
    for (std::size_t i = 0; i < build.rows; ++i) {
      index->Insert(static_cast<std::uint32_t>(i), bh[i]);
    }
    if (metrics != nullptr) {
      metrics->engine.eval_join_build_rows.Add(build.rows);
    }
    if (join_stats_ != nullptr) {
      (*join_stats_)[in.origin].build_rows += build.rows;
    }
  }

  // Probe: every left row counts as a probe (worker- and backend-invariant);
  // key-matched pairs are charged in batches before residual cross
  // conditions run, exactly the interpreter's per-pair charging order.
  ColumnTable out = MakeTable(in.scheme);
  TraceSpan probe_span = StartSpan(*ctx_, "evaluator/join-probe");
  if (metrics != nullptr) metrics->engine.eval_join_probes.Add(left.rows);
  if (join_stats_ != nullptr) {
    (*join_stats_)[in.origin].probe_rows += left.rows;
  }
  std::vector<std::uint8_t> lmask(left.rows, 1);
  for (const Insn::JoinCond& c : in.local_left) {
    AndEqualityMask(left, c.ia, c.ib, c.equal, lmask);
  }
  std::vector<std::uint64_t> lh;
  HashRows(left, left_keys, lh);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(kBatchWidth);
  auto flush = [&]() -> Status {
    if (pairs.empty()) return Status::OK();
    const std::uint64_t n = pairs.size();
    SETREC_RETURN_IF_ERROR(ctx_->ChargeRows(n, "evaluator/join-row"));
    SETREC_RETURN_IF_ERROR(
        ctx_->ChargeMemory(n * tuple_bytes, "evaluator/join-row"));
    std::uint64_t kept = 0;
    for (const auto& [li, ri] : pairs) {
      bool ok = true;
      for (const Insn::JoinCond& c : in.cross) {
        const PackedValue va =
            c.a_left ? left.columns[c.ia][li] : build.columns[c.ia][ri];
        const PackedValue vb =
            c.b_left ? left.columns[c.ib][li] : build.columns[c.ib][ri];
        if ((va == vb) != c.equal) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      ++kept;
      for (std::size_t c = 0; c < la; ++c) {
        out.columns[c].push_back(left.columns[c][li]);
      }
      for (std::size_t c = 0; c < ra; ++c) {
        out.columns[la + c].push_back(build.columns[c][ri]);
      }
      ++out.rows;
    }
    if (metrics != nullptr && kept > 0) metrics->engine.eval_rows.Add(kept);
    pairs.clear();
    return Status::OK();
  };
  for (std::size_t li = 0; li < left.rows; ++li) {
    if (!lmask[li]) continue;
    std::uint32_t row =
        index->Find(left, left_keys, static_cast<std::uint32_t>(li), lh[li]);
    while (row != RowHashTable::kNone) {
      pairs.emplace_back(static_cast<std::uint32_t>(li), row);
      if (pairs.size() == kBatchWidth) SETREC_RETURN_IF_ERROR(flush());
      row = index->NextInChain(row);
    }
  }
  SETREC_RETURN_IF_ERROR(flush());
  return out;
}

}  // namespace setrec::vectorized
