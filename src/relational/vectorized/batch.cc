#include "relational/vectorized/batch.h"

#include <algorithm>
#include <utility>

namespace setrec::vectorized {

ColumnTable MakeTable(RelationScheme scheme, std::size_t reserve_rows) {
  ColumnTable t;
  t.scheme = std::move(scheme);
  t.columns.resize(t.scheme.arity());
  if (reserve_rows > 0) {
    for (std::vector<PackedValue>& col : t.columns) col.reserve(reserve_rows);
  }
  return t;
}

ColumnTable FromRelation(const Relation& relation) {
  ColumnTable t = MakeTable(relation.scheme(), relation.size());
  const std::size_t arity = t.arity();
  for (const Tuple& tuple : relation) {
    for (std::size_t a = 0; a < arity; ++a) {
      t.columns[a].push_back(Pack(tuple.at(a)));
    }
  }
  t.rows = relation.size();
  return t;
}

Relation ToRelation(const ColumnTable& table) {
  Relation out(table.scheme);
  out.Reserve(table.rows);
  const std::size_t arity = table.arity();
  std::vector<Tuple> batch;
  batch.reserve(std::min(table.rows, kBatchWidth));
  for (std::size_t r = 0; r < table.rows; ++r) {
    std::vector<ObjectId> values;
    values.reserve(arity);
    for (std::size_t a = 0; a < arity; ++a) {
      values.push_back(Unpack(table.columns[a][r]));
    }
    batch.emplace_back(std::move(values));
    if (batch.size() == kBatchWidth) out.InsertValidatedBatch(batch);
  }
  out.InsertValidatedBatch(batch);
  return out;
}

}  // namespace setrec::vectorized
