#ifndef SETREC_RELATIONAL_VECTORIZED_BATCH_H_
#define SETREC_RELATIONAL_VECTORIZED_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/ids.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace setrec::vectorized {

/// Rows processed per dispatch-loop batch: large enough that per-batch
/// overhead (budget charges, virtual-free inner loops) amortizes, small
/// enough that a batch of packed values stays cache-resident.
inline constexpr std::size_t kBatchWidth = 1024;

/// One packed tuple value. Every attribute value is an ObjectId — the
/// paper's relational representation stores only object surrogates — and an
/// ObjectId is (class, index), so a value packs losslessly into 64 bits.
/// Packing is order-preserving per class, and the class tag occupies the
/// high half, so equality of packed values is exactly ObjectId equality.
using PackedValue = std::uint64_t;

inline constexpr PackedValue Pack(ObjectId o) {
  return (static_cast<std::uint64_t>(o.class_id()) << 32) | o.index();
}

inline constexpr ObjectId Unpack(PackedValue v) {
  return ObjectId(static_cast<ClassId>(v >> 32),
                  static_cast<std::uint32_t>(v));
}

/// Structure-of-arrays tuple storage: one contiguous vector of packed
/// values per attribute, all of length `rows`. Nullary relations (the π_∅
/// guard results) are represented by zero columns and rows ∈ {0, 1}, so
/// `rows` is explicit rather than derived from a column. Row order is an
/// implementation detail, exactly as the row engine's hash-set iteration
/// order is; set semantics are restored at the Relation boundary.
struct ColumnTable {
  RelationScheme scheme;
  std::vector<std::vector<PackedValue>> columns;
  std::size_t rows = 0;

  std::size_t arity() const { return scheme.arity(); }
};

/// An empty table over `scheme` with one (pre-sized) column per attribute.
ColumnTable MakeTable(RelationScheme scheme, std::size_t reserve_rows = 0);

/// Transposes a row relation into columnar form. O(rows × arity).
ColumnTable FromRelation(const Relation& relation);

/// Transposes back into a row relation, inserting in kBatchWidth-sized
/// validated batches (the table's rows are known to conform to its scheme,
/// and batching keeps the sorted-view memo invalidation per batch).
Relation ToRelation(const ColumnTable& table);

}  // namespace setrec::vectorized

#endif  // SETREC_RELATIONAL_VECTORIZED_BATCH_H_
