#ifndef SETREC_RELATIONAL_VECTORIZED_KERNELS_H_
#define SETREC_RELATIONAL_VECTORIZED_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "relational/vectorized/batch.h"

namespace setrec::vectorized {

/// The splitmix64 finalizer — the same mixer TupleHash uses, applied here
/// to packed values in tight columnwise loops the compiler can vectorize.
inline std::uint64_t Mix64(std::uint64_t v) {
  v ^= v >> 30;
  v *= 0xbf58476d1ce4e5b9ull;
  v ^= v >> 27;
  v *= 0x94d049bb133111ebull;
  v ^= v >> 31;
  return v;
}

/// Batch hash kernel: out[i] = hash of row i's values in the `cols` columns
/// of `t`, for every row. One pass per column over a contiguous array of
/// packed values (seed ^ arity, then fold each mixed value in with a
/// multiply-xor combine — the TupleHash recipe, column-at-a-time).
void HashRows(const ColumnTable& t, std::span<const std::uint32_t> cols,
              std::vector<std::uint64_t>& out);

/// Batch filter kernel: mask[i] &= ((col_a[i] == col_b[i]) == want_equal).
/// Callers start from an all-ones mask and fold one call per condition.
void AndEqualityMask(const ColumnTable& t, std::uint32_t col_a,
                     std::uint32_t col_b, bool want_equal,
                     std::vector<std::uint8_t>& mask);

/// Row indices with a non-zero mask byte, in row order.
std::vector<std::uint32_t> MaskToSelection(
    const std::vector<std::uint8_t>& mask);

/// Gathers `sel` rows of the `cols` columns of `t` into a fresh table over
/// `scheme` (which must have cols.size() attributes, domains matching).
ColumnTable Gather(const ColumnTable& t, std::span<const std::uint32_t> cols,
                   std::span<const std::uint32_t> sel, RelationScheme scheme);

/// Open-addressing hash index (linear probing, power-of-two capacity) over
/// the rows of one ColumnTable, keyed by a column subset. Distinct keys own
/// one slot; rows with equal keys chain through a per-row next list. The
/// table borrows `table` and reads its columns on every compare, so the
/// table may keep growing (appends only) while the index is live.
class RowHashTable {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  RowHashTable(const ColumnTable* table, std::vector<std::uint32_t> key_cols);

  /// Pre-sizes for `n` insertions. Must be called (with the total row
  /// count) before the first Insert; the capacity never shrinks.
  void Reserve(std::size_t n);

  /// Inserts row `r` with its precomputed key hash `h`. Returns true when
  /// the key was not yet present (the dedup signal for set-semantics
  /// outputs); an equal-keyed row chains behind the new head.
  bool Insert(std::uint32_t r, std::uint64_t h);

  /// Head row of the chain whose key equals the `probe_cols` values of row
  /// `pr` in `probe` (hash `h`), or kNone.
  std::uint32_t Find(const ColumnTable& probe,
                     std::span<const std::uint32_t> probe_cols,
                     std::uint32_t pr, std::uint64_t h) const;

  /// Next row in the equal-key chain, or kNone.
  std::uint32_t NextInChain(std::uint32_t r) const { return next_row_[r]; }

 private:
  bool KeysEqual(std::uint32_t own_row, const ColumnTable& other,
                 std::span<const std::uint32_t> other_cols,
                 std::uint32_t other_row) const;

  const ColumnTable* table_;
  std::vector<std::uint32_t> key_cols_;
  std::vector<std::uint32_t> slots_;     // head row + 1; 0 = empty
  std::vector<std::uint32_t> next_row_;  // same-key chain links
  std::vector<std::uint64_t> row_hash_;  // insert-time hashes (fast compare)
  std::size_t mask_ = 0;
};

}  // namespace setrec::vectorized

#endif  // SETREC_RELATIONAL_VECTORIZED_KERNELS_H_
