#ifndef SETREC_RELATIONAL_BUILDER_H_
#define SETREC_RELATIONAL_BUILDER_H_

#include <string>
#include <vector>

#include "relational/expression.h"

namespace setrec::ra {

/// Terse builders for relational algebra expressions, plus the derived
/// operators the paper uses freely (theta-joins as abbreviations of product,
/// selection and renaming; the π_∅ "guard" trick from the proof of Theorem
/// 5.6). Example, Example 5.5's add_bar:
///
///   auto e = ra::Union(
///       ra::Project(ra::JoinNeq(ra::Rel("self"), ra::Rel("Df"),
///                               "self", "D"), {"f"}),
///       ra::Rel("arg1"));

ExprPtr Rel(std::string name);
ExprPtr Union(ExprPtr l, ExprPtr r);
ExprPtr Diff(ExprPtr l, ExprPtr r);
ExprPtr Product(ExprPtr l, ExprPtr r);
ExprPtr SelectEq(ExprPtr e, std::string a, std::string b);
ExprPtr SelectNeq(ExprPtr e, std::string a, std::string b);
ExprPtr Project(ExprPtr e, std::vector<std::string> attrs);
ExprPtr Rename(ExprPtr e, std::string from, std::string to);

/// Theta-join l ⋈_{a=b} r, an abbreviation for σ_{a=b}(l × r).
ExprPtr JoinEq(ExprPtr l, ExprPtr r, std::string a, std::string b);
/// Theta-join l ⋈_{a≠b} r, an abbreviation for σ_{a≠b}(l × r).
ExprPtr JoinNeq(ExprPtr l, ExprPtr r, std::string a, std::string b);

/// π_∅(e): the nullary guard. Evaluates to {()} iff e is non-empty and to ∅
/// otherwise; multiplying an expression by a guard conditions it on the
/// guard's truth (the trick from the proof of Theorem 5.6).
ExprPtr Guard(ExprPtr e);

/// Folds a non-empty list with union.
ExprPtr UnionAll(std::vector<ExprPtr> exprs);

/// Folds a non-empty list with product.
ExprPtr ProductAll(std::vector<ExprPtr> exprs);

}  // namespace setrec::ra

#endif  // SETREC_RELATIONAL_BUILDER_H_
