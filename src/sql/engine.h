#ifndef SETREC_SQL_ENGINE_H_
#define SETREC_SQL_ENGINE_H_

#include <functional>
#include <optional>
#include <span>

#include "algebraic/method_library.h"
#include "core/exec_context.h"
#include "core/exec_options.h"  // CommitHook lives here now
#include "core/instance.h"

namespace setrec {

/// A row predicate for DELETE statements, evaluated against the *current*
/// instance state (which is what makes cursor semantics order-sensitive).
using RowPredicate =
    std::function<Result<bool>(const Instance&, ObjectId row)>;

/// Cursor-based DELETE (Section 7): visits the rows of `cls` in `order`
/// (default: sorted), re-evaluates `pred` against the evolving instance and
/// removes a satisfying row (with its incident edges) immediately, before
/// inspecting the next row.
Result<Instance> CursorDelete(const Instance& instance, ClassId cls,
                              const RowPredicate& pred,
                              std::span<const ObjectId> order = {},
                              ExecContext& ctx = ExecContext::Default());

/// Set-oriented DELETE: first identifies every row satisfying `pred` against
/// the *input* instance, then removes them all together — the two-phase
/// semantics of the standalone SQL statement.
Result<Instance> SetOrientedDelete(const Instance& instance, ClassId cls,
                                   const RowPredicate& pred,
                                   ExecContext& ctx = ExecContext::Default());

/// In-place set-oriented DELETE with all-or-nothing semantics: snapshots the
/// instance, removes the doomed rows incrementally, and restores the
/// snapshot on ANY failure (governance, injected fault, or structural
/// error), so a failed statement leaves `instance` bit-identical to its
/// pre-statement state.
Status SetOrientedDeleteInPlace(Instance& instance, ClassId cls,
                                const RowPredicate& pred,
                                ExecContext& ctx = ExecContext::Default(),
                                const CommitHook& commit_hook = {});

/// Unified form: ExecOptions carries the context, the observability sinks,
/// and the commit hook in one struct. Prefer this overload.
Status SetOrientedDeleteInPlace(Instance& instance, ClassId cls,
                                const RowPredicate& pred,
                                const ExecOptions& options);

/// Runs CursorDelete under every permutation of the rows (bounded by
/// `max_rows`!) and reports whether all outcomes agree; when they do not,
/// `disagreement` holds a second outcome differing from `first`.
struct CursorOrderReport {
  bool order_independent = false;
  std::optional<Instance> first;
  std::optional<Instance> disagreement;
};
Result<CursorOrderReport> TestCursorDeleteOrders(
    const Instance& instance, ClassId cls, const RowPredicate& pred,
    std::size_t max_rows = 6, ExecContext& ctx = ExecContext::Default());

/// Section 7 predicates over the payroll tables.
/// "Salary in table Fire" — used by the correct cursor delete.
RowPredicate SalaryInFire(const PayrollSchema& schema);
/// "exists E1 with E1.EmpId = Manager and E1.Salary in table Fire" — the
/// manager variant whose cursor form is order dependent (an employee
/// survives when their manager was visited and deleted first).
RowPredicate ManagerSalaryInFire(const PayrollSchema& schema);

/// Cursor-based UPDATE: sequential application of `method` to the receiver
/// list in the given order (update (B)/(C) of Section 7 are instances of
/// this with the library methods).
Result<Instance> CursorUpdate(const AlgebraicUpdateMethod& method,
                              const Instance& instance,
                              std::span<const Receiver> order,
                              ExecContext& ctx = ExecContext::Default());

/// The trivial modification update "a := arg1" of type [C, B] that underlies
/// every set-oriented UPDATE statement (Section 7): key-order independent by
/// Proposition 5.8.
Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeAssignArgMethod(
    const Schema* schema, PropertyId property);

/// Set-oriented UPDATE: computes the receiver key set with `receiver_query`
/// against the input instance (phase one), then applies `a := arg1` to it
/// (phase two). `receiver_query`'s scheme must be (receiving class, target
/// class of `property`).
Result<Instance> SetOrientedUpdate(const Instance& instance,
                                   PropertyId property,
                                   const ExprPtr& receiver_query,
                                   ExecContext& ctx = ExecContext::Default());

/// In-place set-oriented UPDATE with all-or-nothing semantics: computes the
/// receiver key set (phase one), snapshots the instance, and applies the
/// edge rewrites incrementally (phase two). On ANY failure — a governance
/// stop, an injected fault at any probe point, or a structural error — the
/// snapshot is restored before the error returns, so `instance` is
/// bit-identical to its pre-statement state.
Status SetOrientedUpdateInPlace(Instance& instance, PropertyId property,
                                const ExprPtr& receiver_query,
                                ExecContext& ctx = ExecContext::Default(),
                                const CommitHook& commit_hook = {});

/// As above, but additionally serving phase one from — and publishing the
/// committed delta to — an incremental view cache (the
/// ExecOptions::view_cache contract; see incremental/view_cache.h). Any
/// cache error falls back to from-scratch receiver evaluation. `view_cache`
/// may be null, which is exactly the overload above.
Status SetOrientedUpdateInPlace(Instance& instance, PropertyId property,
                                const ExprPtr& receiver_query,
                                ExecContext& ctx,
                                const CommitHook& commit_hook,
                                DeltaSink* view_cache);

/// Unified form: ExecOptions carries the context, the observability sinks,
/// and the commit hook in one struct. Prefer this overload.
Status SetOrientedUpdateInPlace(Instance& instance, PropertyId property,
                                const ExprPtr& receiver_query,
                                const ExecOptions& options);

}  // namespace setrec

#endif  // SETREC_SQL_ENGINE_H_
