#include "sql/improve.h"

#include "algebraic/order_independence.h"
#include "algebraic/parallel.h"
#include "sql/engine.h"

namespace setrec {

Result<ImprovedUpdate> ImproveCursorUpdate(const AlgebraicUpdateMethod& method,
                                           const ExprPtr& rec_source,
                                           bool verify) {
  if (method.statements().size() != 1) {
    return Status::InvalidArgument(
        "the improvement tool handles single-statement methods");
  }
  const MethodContext& ctx = method.context();
  // rec_source must have exactly rec's scheme.
  SETREC_ASSIGN_OR_RETURN(RelationScheme expected, RecScheme(ctx.signature));
  SETREC_ASSIGN_OR_RETURN(Catalog object_catalog, EncodeCatalog(*ctx.schema));
  SETREC_ASSIGN_OR_RETURN(RelationScheme actual,
                          InferScheme(*rec_source, object_catalog));
  if (!(actual == expected)) {
    return Status::InvalidArgument(
        "rec_source scheme must be (self, arg1, ..., argk) with the "
        "signature's domains");
  }
  if (verify) {
    SETREC_ASSIGN_OR_RETURN(
        bool key_oi,
        DecideOrderIndependence(method, OrderIndependenceKind::kKeyOrder));
    if (!key_oi) {
      return Status::FailedPrecondition(
          "cursor program is not key-order independent; the set-oriented "
          "form would change its semantics (Theorem 6.5 does not apply)");
    }
  }
  const UpdateStatement& statement = method.statements()[0];
  SETREC_ASSIGN_OR_RETURN(ExprPtr par_expr,
                          ParTransform(statement.expression, ctx));
  ExprPtr query = SubstituteRelation(par_expr, kRecRelation, rec_source);
  return ImprovedUpdate{std::move(query), statement.property};
}

Result<Instance> ApplyImprovedUpdate(const ImprovedUpdate& improved,
                                     const Instance& instance) {
  return SetOrientedUpdate(instance, improved.property,
                           improved.receiver_query);
}

}  // namespace setrec
