#include "sql/table.h"

#include <algorithm>
#include <set>

namespace setrec {

Result<Instance> BuildPayrollInstance(const PayrollSchema& schema,
                                      std::span<const EmployeeRow> employees,
                                      std::span<const std::uint32_t> fire,
                                      std::span<const NewSalRow> new_sal) {
  Instance instance(&schema.schema);
  // Materialize the amount domain.
  std::set<std::uint32_t> amounts;
  for (const EmployeeRow& e : employees) amounts.insert(e.salary);
  for (std::uint32_t amount : fire) amounts.insert(amount);
  for (const NewSalRow& row : new_sal) {
    amounts.insert(row.old_salary);
    amounts.insert(row.new_salary);
  }
  for (std::uint32_t amount : amounts) {
    SETREC_RETURN_IF_ERROR(instance.AddObject(ObjectId(schema.val, amount)));
  }
  // Employees with salaries.
  for (const EmployeeRow& e : employees) {
    SETREC_RETURN_IF_ERROR(instance.AddObject(ObjectId(schema.emp, e.id)));
  }
  for (const EmployeeRow& e : employees) {
    SETREC_RETURN_IF_ERROR(instance.AddEdge(ObjectId(schema.emp, e.id),
                                            schema.salary,
                                            ObjectId(schema.val, e.salary)));
    if (e.manager.has_value()) {
      if (!instance.HasObject(ObjectId(schema.emp, *e.manager))) {
        return Status::InvalidArgument("manager id " +
                                       std::to_string(*e.manager) +
                                       " names no employee");
      }
      SETREC_RETURN_IF_ERROR(
          instance.AddEdge(ObjectId(schema.emp, e.id), schema.manager,
                           ObjectId(schema.emp, *e.manager)));
    }
  }
  // Fire rows.
  std::uint32_t fire_row = 0;
  for (std::uint32_t amount : fire) {
    const ObjectId row(schema.fire, fire_row++);
    SETREC_RETURN_IF_ERROR(instance.AddObject(row));
    SETREC_RETURN_IF_ERROR(
        instance.AddEdge(row, schema.fire_amt, ObjectId(schema.val, amount)));
  }
  // NewSal rows.
  std::uint32_t ns_row = 0;
  for (const NewSalRow& r : new_sal) {
    const ObjectId row(schema.ns, ns_row++);
    SETREC_RETURN_IF_ERROR(instance.AddObject(row));
    SETREC_RETURN_IF_ERROR(instance.AddEdge(
        row, schema.old_amt, ObjectId(schema.val, r.old_salary)));
    SETREC_RETURN_IF_ERROR(instance.AddEdge(
        row, schema.new_amt, ObjectId(schema.val, r.new_salary)));
  }
  return instance;
}

Result<std::vector<std::pair<std::uint32_t, std::uint32_t>>> ReadSalaries(
    const PayrollSchema& schema, const Instance& instance) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out;
  for (ObjectId emp : instance.objects(schema.emp)) {
    std::vector<ObjectId> salaries = instance.Targets(emp, schema.salary);
    if (salaries.size() != 1) {
      return Status::InvalidArgument(
          "employee " + std::to_string(emp.index()) + " has " +
          std::to_string(salaries.size()) + " salary edges");
    }
    out.emplace_back(emp.index(), salaries[0].index());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> EmployeeIds(const PayrollSchema& schema,
                                       const Instance& instance) {
  std::vector<std::uint32_t> out;
  for (ObjectId emp : instance.objects(schema.emp)) {
    out.push_back(emp.index());
  }
  return out;
}

}  // namespace setrec
