#ifndef SETREC_SQL_TABLE_H_
#define SETREC_SQL_TABLE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "algebraic/method_library.h"
#include "core/instance.h"

namespace setrec {

/// Section 7 interprets classical relations as object bases: a tuple of
/// relation R is an object of type R, an attribute is a property, and a
/// foreign key is an object-valued property. These helpers build and read
/// the Employee / Fire / NewSal tables of Section 7 over the PayrollSchema.
/// Amounts are objects of the Val class whose *index* is the amount, so the
/// mapping between "salary 100" and its object is the identity.

struct EmployeeRow {
  std::uint32_t id;
  std::uint32_t salary;
  std::optional<std::uint32_t> manager;  // employee id
};

/// One NewSal(Old, New) row.
struct NewSalRow {
  std::uint32_t old_salary;
  std::uint32_t new_salary;
};

/// Builds the object-base instance holding the three tables. Every amount
/// mentioned anywhere is materialized as a Val object (the amount domain the
/// paper calls "the class D we would use to represent the type of this
/// property").
Result<Instance> BuildPayrollInstance(const PayrollSchema& schema,
                                      std::span<const EmployeeRow> employees,
                                      std::span<const std::uint32_t> fire,
                                      std::span<const NewSalRow> new_sal);

/// Reads back (employee id, salary) pairs, sorted by id. Employees with no
/// or multiple salary edges are reported with InvalidArgument.
Result<std::vector<std::pair<std::uint32_t, std::uint32_t>>> ReadSalaries(
    const PayrollSchema& schema, const Instance& instance);

/// Employee ids present, sorted.
std::vector<std::uint32_t> EmployeeIds(const PayrollSchema& schema,
                                       const Instance& instance);

}  // namespace setrec

#endif  // SETREC_SQL_TABLE_H_
