#ifndef SETREC_SQL_IMPROVE_H_
#define SETREC_SQL_IMPROVE_H_

#include "algebraic/algebraic_method.h"

namespace setrec {

/// The Theorem 6.5 "code improvement" tool sketched at the end of Section 7:
/// given a cursor-based update program — a key-order-independent algebraic
/// method with a single statement a := E, applied to the key set described
/// by `rec_source` — it emits the equivalent *set-oriented* statement: a
/// single query computing the receiver key set for the trivial update
/// a := arg1, obtained as par(E) with the rec relation replaced by
/// `rec_source`. The set-oriented form evaluates one optimizable query
/// instead of one query per row.
struct ImprovedUpdate {
  /// Evaluates (against the encoded instance) to the key set
  /// {(receiving object, new value)}; scheme (self, a).
  ExprPtr receiver_query;
  PropertyId property;
};

/// `rec_source` must be an expression over the object relations whose
/// scheme is rec's scheme (attributes self, arg1, ..., argk with the
/// signature's domains) — e.g. ρ_{Emp→self}ρ_{Salary→arg1}(EmpSalary) for
/// Section 7's update (B). With `verify` set, the method's key-order
/// independence is first established with the Theorem 5.12 decision
/// procedure (requires a positive method); improving an order-dependent
/// cursor program would silently change its semantics, so verification
/// failure is an error.
Result<ImprovedUpdate> ImproveCursorUpdate(const AlgebraicUpdateMethod& method,
                                           const ExprPtr& rec_source,
                                           bool verify = true);

/// Executes the improved form: phase one evaluates receiver_query, phase two
/// applies a := arg1 (SetOrientedUpdate).
Result<Instance> ApplyImprovedUpdate(const ImprovedUpdate& improved,
                                     const Instance& instance);

}  // namespace setrec

#endif  // SETREC_SQL_IMPROVE_H_
