#include "sql/engine.h"

#include <algorithm>
#include <numeric>

#include "core/sequential.h"
#include "incremental/view_cache.h"

namespace setrec {

Result<Instance> CursorDelete(const Instance& instance, ClassId cls,
                              const RowPredicate& pred,
                              std::span<const ObjectId> order,
                              ExecContext& ctx) {
  TraceSpan span = StartSpan(ctx, "sql/cursor-delete");
  std::vector<ObjectId> rows(order.begin(), order.end());
  if (rows.empty()) {
    rows.assign(instance.objects(cls).begin(), instance.objects(cls).end());
  }
  Instance current = instance;
  for (ObjectId row : rows) {
    SETREC_RETURN_IF_ERROR(ctx.CheckPoint("sql/cursor-delete/row"));
    if (!current.HasObject(row)) continue;  // already deleted by a cascade
    SETREC_ASSIGN_OR_RETURN(bool doomed, pred(current, row));
    if (doomed) SETREC_RETURN_IF_ERROR(current.RemoveObject(row));
  }
  return current;
}

Result<Instance> SetOrientedDelete(const Instance& instance, ClassId cls,
                                   const RowPredicate& pred,
                                   ExecContext& ctx) {
  Instance out = instance;
  SETREC_RETURN_IF_ERROR(SetOrientedDeleteInPlace(out, cls, pred, ctx));
  return out;
}

Status SetOrientedDeleteInPlace(Instance& instance, ClassId cls,
                                const RowPredicate& pred, ExecContext& ctx,
                                const CommitHook& commit_hook) {
  TraceSpan span = StartSpan(ctx, "sql/set-delete");
  // Phase one: identify every doomed row against the input state. No
  // mutation has happened yet, so errors here need no rollback.
  std::vector<ObjectId> doomed;
  for (ObjectId row : instance.objects(cls)) {
    SETREC_RETURN_IF_ERROR(ctx.CheckPoint("sql/delete/scan"));
    SETREC_ASSIGN_OR_RETURN(bool d, pred(instance, row));
    if (d) doomed.push_back(row);
  }
  // Phase two: remove them all together, all-or-nothing. The commit hook is
  // part of the statement: a veto (e.g. a WAL write failure) unwinds exactly
  // like an in-memory fault.
  Instance snapshot = instance;
  Status applied = [&]() -> Status {
    for (ObjectId row : doomed) {
      SETREC_RETURN_IF_ERROR(ctx.CheckPoint("sql/delete/row"));
      SETREC_RETURN_IF_ERROR(instance.RemoveObject(row));
    }
    if (commit_hook) SETREC_RETURN_IF_ERROR(commit_hook(snapshot, instance));
    return Status::OK();
  }();
  if (!applied.ok()) {
    instance = std::move(snapshot);
    return applied;
  }
  return Status::OK();
}

Result<CursorOrderReport> TestCursorDeleteOrders(const Instance& instance,
                                                 ClassId cls,
                                                 const RowPredicate& pred,
                                                 std::size_t max_rows,
                                                 ExecContext& ctx) {
  std::vector<ObjectId> rows(instance.objects(cls).begin(),
                             instance.objects(cls).end());
  if (rows.size() > max_rows) {
    return Status::InvalidArgument(
        "too many rows for an exhaustive permutation test");
  }
  CursorOrderReport report;
  std::vector<std::size_t> perm(rows.size());
  std::iota(perm.begin(), perm.end(), 0);
  do {
    SETREC_RETURN_IF_ERROR(ctx.CheckPoint("sql/cursor-delete/permutation"));
    std::vector<ObjectId> order;
    order.reserve(rows.size());
    for (std::size_t i : perm) order.push_back(rows[i]);
    SETREC_ASSIGN_OR_RETURN(Instance outcome,
                            CursorDelete(instance, cls, pred, order, ctx));
    if (!report.first.has_value()) {
      report.first = std::move(outcome);
    } else if (!(*report.first == outcome)) {
      report.order_independent = false;
      report.disagreement = std::move(outcome);
      return report;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  report.order_independent = true;
  return report;
}

RowPredicate SalaryInFire(const PayrollSchema& schema) {
  return [&schema](const Instance& db, ObjectId row) -> Result<bool> {
    for (ObjectId salary : db.Targets(row, schema.salary)) {
      for (const auto& [fire_row, amount] : db.edges(schema.fire_amt)) {
        if (amount == salary && db.HasObject(fire_row)) return true;
      }
    }
    return false;
  };
}

RowPredicate ManagerSalaryInFire(const PayrollSchema& schema) {
  RowPredicate direct = SalaryInFire(schema);
  return [&schema, direct](const Instance& db, ObjectId row) -> Result<bool> {
    for (ObjectId manager : db.Targets(row, schema.manager)) {
      if (!db.HasObject(manager)) continue;
      SETREC_ASSIGN_OR_RETURN(bool fired, direct(db, manager));
      if (fired) return true;
    }
    return false;
  };
}

Result<Instance> CursorUpdate(const AlgebraicUpdateMethod& method,
                              const Instance& instance,
                              std::span<const Receiver> order,
                              ExecContext& ctx) {
  TraceSpan span = StartSpan(ctx, "sql/cursor-update");
  return ApplySequence(method, instance, order, ctx);
}

Result<std::unique_ptr<AlgebraicUpdateMethod>> MakeAssignArgMethod(
    const Schema* schema, PropertyId property) {
  if (!schema->HasProperty(property)) {
    return Status::InvalidArgument("unknown property");
  }
  const Schema::PropertyDef& def = schema->property(property);
  return AlgebraicUpdateMethod::Make(
      schema, MethodSignature({def.source, def.target}),
      "assign_" + def.name,
      {UpdateStatement{property, Expr::Relation("arg1")}});
}

Result<Instance> SetOrientedUpdate(const Instance& instance,
                                   PropertyId property,
                                   const ExprPtr& receiver_query,
                                   ExecContext& ctx) {
  const Schema* schema = &instance.schema();
  SETREC_ASSIGN_OR_RETURN(std::unique_ptr<AlgebraicUpdateMethod> assign,
                          MakeAssignArgMethod(schema, property));
  // Phase one: compute the receiver set against the input instance.
  SETREC_ASSIGN_OR_RETURN(
      std::vector<Receiver> receivers,
      ReceiversFromQuery(receiver_query, instance, assign->signature(), ctx));
  if (!IsKeySet(receivers)) {
    return Status::FailedPrecondition(
        "set-oriented update would assign two values to one row; the "
        "receiver query must produce a key set");
  }
  // Phase two: apply the trivial key-order independent update.
  return ApplySequence(*assign, instance, receivers, ctx);
}

namespace {

/// Shared body of the two public SetOrientedUpdateInPlace overloads. When
/// `sink` is a ViewCache, phase one reads the receiver set out of the cache
/// (incrementally maintained) instead of evaluating from scratch, falling
/// back to ReceiversFromQuery on any cache error; either way a successful
/// commit publishes its delta to the sink. The caller is responsible for
/// having fed the cache every prior mutation of `instance` — the per-row
/// validity check below still rejects receivers that do not exist in the
/// instance, but cannot detect a stale-but-valid receiver set.
Status SetOrientedUpdateImpl(Instance& instance, PropertyId property,
                             const ExprPtr& receiver_query, ExecContext& ctx,
                             const CommitHook& commit_hook, DeltaSink* sink) {
  TraceSpan span = StartSpan(ctx, "sql/set-update");
  const Schema* schema = &instance.schema();
  SETREC_ASSIGN_OR_RETURN(std::unique_ptr<AlgebraicUpdateMethod> assign,
                          MakeAssignArgMethod(schema, property));
  // Phase one: compute the receiver key set against the input state. No
  // mutation has happened yet, so errors here need no rollback.
  std::vector<Receiver> receivers;
  bool from_cache = false;
  if (ViewCache* cache = sink != nullptr ? sink->AsViewCache() : nullptr) {
    Result<std::vector<Receiver>> cached =
        ReceiversFromView(*cache, receiver_query, assign->signature(), &ctx);
    if (cached.ok()) {
      receivers = std::move(cached).value();
      from_cache = true;
    } else if (IsGovernanceError(cached.status())) {
      // A deadline/budget/cancellation stop is not a cache miss: the answer
      // was not computed and a from-scratch retry would blow the same
      // budget. Propagate, exactly like the uncached path would.
      return cached.status();
    }
  }
  if (!from_cache) {
    SETREC_ASSIGN_OR_RETURN(
        receivers, ReceiversFromQuery(receiver_query, instance,
                                      assign->signature(), ctx));
  }
  if (!IsKeySet(receivers)) {
    return Status::FailedPrecondition(
        "set-oriented update would assign two values to one row; the "
        "receiver query must produce a key set");
  }
  // Phase two: rewrite the a-edges row by row, all-or-nothing. Because the
  // receiver set is a key set, "a := arg1" amounts to replacing each
  // receiving row's a-edges by the single queried target.
  Instance snapshot = instance;
  Status applied = [&]() -> Status {
    for (const Receiver& t : receivers) {
      SETREC_RETURN_IF_ERROR(ctx.CheckPoint("sql/update/receiver"));
      if (!t.IsValidOver(assign->signature(), instance)) {
        return Status::FailedPrecondition(
            "receiver not valid over the instance");
      }
      const ObjectId row = t.receiving_object();
      SETREC_RETURN_IF_ERROR(instance.ClearEdgesFrom(row, property));
      SETREC_RETURN_IF_ERROR(ctx.CheckPoint("sql/update/edge"));
      SETREC_RETURN_IF_ERROR(instance.AddEdge(row, property, t.object_at(1)));
    }
    if (commit_hook) SETREC_RETURN_IF_ERROR(commit_hook(snapshot, instance));
    return Status::OK();
  }();
  if (!applied.ok()) {
    instance = std::move(snapshot);
    return applied;
  }
  if (sink != nullptr) {
    // Post-commit, advisory: the sink fails closed on its own when it
    // cannot absorb the delta.
    (void)sink->ApplyDelta(DiffInstances(snapshot, instance));
  }
  return Status::OK();
}

}  // namespace

Status SetOrientedUpdateInPlace(Instance& instance, PropertyId property,
                                const ExprPtr& receiver_query, ExecContext& ctx,
                                const CommitHook& commit_hook) {
  return SetOrientedUpdateImpl(instance, property, receiver_query, ctx,
                               commit_hook, /*sink=*/nullptr);
}

Status SetOrientedUpdateInPlace(Instance& instance, PropertyId property,
                                const ExprPtr& receiver_query, ExecContext& ctx,
                                const CommitHook& commit_hook,
                                DeltaSink* view_cache) {
  return SetOrientedUpdateImpl(instance, property, receiver_query, ctx,
                               commit_hook, view_cache);
}

Status SetOrientedDeleteInPlace(Instance& instance, ClassId cls,
                                const RowPredicate& pred,
                                const ExecOptions& options) {
  ExecScope scope(options);
  // Deletes have no receiver-query phase to serve from the cache, but their
  // effects must still reach it or dependent views go permanently stale.
  // The in-place API destroys the before-state, so publication rides the
  // commit hook, which sees both states; it runs after the caller's own
  // hook accepted the commit (a veto publishes nothing).
  CommitHook hook = options.commit_hook;
  if (DeltaSink* sink = options.view_cache; sink != nullptr) {
    hook = [inner = std::move(hook), sink](const Instance& before,
                                           const Instance& after) -> Status {
      if (inner) SETREC_RETURN_IF_ERROR(inner(before, after));
      (void)sink->ApplyDelta(DiffInstances(before, after));
      return Status::OK();
    };
  }
  return SetOrientedDeleteInPlace(instance, cls, pred, scope.ctx(), hook);
}

Status SetOrientedUpdateInPlace(Instance& instance, PropertyId property,
                                const ExprPtr& receiver_query,
                                const ExecOptions& options) {
  ExecScope scope(options);
  return SetOrientedUpdateImpl(instance, property, receiver_query, scope.ctx(),
                               options.commit_hook, options.view_cache);
}

}  // namespace setrec
