#include "text/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "relational/builder.h"

namespace setrec {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokenKind {
  kIdentifier,
  kInteger,
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kLBrace,    // {
  kRBrace,    // }
  kComma,
  kSemicolon,
  kColon,
  kArrow,     // ->
  kAssign,    // :=
  kEquals,    // =
  kNotEquals, // !=
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;
  int line;
  int column;
};

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kInteger: return "integer";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kAssign: return "':='";
    case TokenKind::kEquals: return "'='";
    case TokenKind::kNotEquals: return "'!='";
    case TokenKind::kEnd: return "end of input";
  }
  return "token";
}

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  int line = 1, column = 1;
  std::size_t i = 0;
  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < text.size() && text[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  while (i < text.size()) {
    const char c = text[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      while (i < text.size() && text[i] != '\n') advance(1);
      continue;
    }
    const int tok_line = line, tok_col = column;
    auto push = [&](TokenKind kind, std::string tok_text, std::size_t len) {
      tokens.push_back(Token{kind, std::move(tok_text), tok_line, tok_col});
      advance(len);
    };
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[j])) ||
              text[j] == '_' || text[j] == '\'')) {
        ++j;
      }
      push(TokenKind::kIdentifier, std::string(text.substr(i, j - i)), j - i);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      push(TokenKind::kInteger, std::string(text.substr(i, j - i)), j - i);
      continue;
    }
    if (c == '-' && i + 1 < text.size() && text[i + 1] == '>') {
      push(TokenKind::kArrow, "->", 2);
      continue;
    }
    if (c == ':' && i + 1 < text.size() && text[i + 1] == '=') {
      push(TokenKind::kAssign, ":=", 2);
      continue;
    }
    if (c == '!' && i + 1 < text.size() && text[i + 1] == '=') {
      push(TokenKind::kNotEquals, "!=", 2);
      continue;
    }
    switch (c) {
      case '(': push(TokenKind::kLParen, "(", 1); continue;
      case ')': push(TokenKind::kRParen, ")", 1); continue;
      case '[': push(TokenKind::kLBracket, "[", 1); continue;
      case ']': push(TokenKind::kRBracket, "]", 1); continue;
      case '{': push(TokenKind::kLBrace, "{", 1); continue;
      case '}': push(TokenKind::kRBrace, "}", 1); continue;
      case ',': push(TokenKind::kComma, ",", 1); continue;
      case ';': push(TokenKind::kSemicolon, ";", 1); continue;
      case ':': push(TokenKind::kColon, ":", 1); continue;
      case '=': push(TokenKind::kEquals, "=", 1); continue;
      default:
        return Status::InvalidArgument(
            "unexpected character '" + std::string(1, c) + "' at " +
            std::to_string(line) + ":" + std::to_string(column));
    }
  }
  tokens.push_back(Token{TokenKind::kEnd, "", line, column});
  return tokens;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  bool At(TokenKind kind) const { return Peek().kind == kind; }
  bool AtKeyword(std::string_view word) const {
    return At(TokenKind::kIdentifier) && Peek().text == word;
  }
  /// Never advances past the sentinel kEnd token, so Peek() stays valid no
  /// matter how a caller mixes Take/Expect on truncated input.
  Token Take() {
    Token t = tokens_[pos_];
    if (t.kind != TokenKind::kEnd) ++pos_;
    return t;
  }

  Status Error(const std::string& what) const {
    const Token& t = Peek();
    return Status::InvalidArgument(
        what + " at " + std::to_string(t.line) + ":" +
        std::to_string(t.column) + " (found " +
        (t.kind == TokenKind::kIdentifier || t.kind == TokenKind::kInteger
             ? "'" + t.text + "'"
             : TokenKindName(t.kind)) +
        ")");
  }

  Result<Token> Expect(TokenKind kind) {
    if (!At(kind)) {
      return Error(std::string("expected ") + TokenKindName(kind));
    }
    return Take();
  }

  Status ExpectKeyword(std::string_view word) {
    if (!AtKeyword(word)) {
      return Error("expected '" + std::string(word) + "'");
    }
    Take();
    return Status::OK();
  }

  Result<std::string> Identifier(const char* what) {
    if (!At(TokenKind::kIdentifier)) {
      return Error(std::string("expected ") + what);
    }
    return Take().text;
  }

  /// Overflow-checked: a literal that does not fit uint32 is a parse error,
  /// not an exception or a silent wrap (std::stoul throws on huge input).
  Result<std::uint32_t> Integer() {
    if (!At(TokenKind::kInteger)) {
      return Error("expected integer");
    }
    Token t = Take();
    std::uint64_t value = 0;
    for (char c : t.text) {
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
      if (value > 0xffffffffULL) {
        return Status::InvalidArgument(
            "integer literal out of range at " + std::to_string(t.line) +
            ":" + std::to_string(t.column));
      }
    }
    return static_cast<std::uint32_t>(value);
  }

  /// expr (see header grammar). Nesting depth is bounded so adversarial or
  /// corrupted input degrades to a typed error instead of exhausting the
  /// call stack.
  Result<ExprPtr> Expression() {
    if (++depth_ > kMaxExpressionDepth) {
      --depth_;
      return Error("expression nesting exceeds depth limit");
    }
    Result<ExprPtr> out = ExpressionImpl();
    --depth_;
    return out;
  }

  Result<ExprPtr> ExpressionImpl() {
    SETREC_ASSIGN_OR_RETURN(std::string head, Identifier("expression"));
    if (head == "union" || head == "diff" || head == "product") {
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
      SETREC_ASSIGN_OR_RETURN(ExprPtr l, Expression());
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kComma).status());
      SETREC_ASSIGN_OR_RETURN(ExprPtr r, Expression());
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
      if (head == "union") return ra::Union(std::move(l), std::move(r));
      if (head == "diff") return ra::Diff(std::move(l), std::move(r));
      return ra::Product(std::move(l), std::move(r));
    }
    if (head == "project") {
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kLBracket).status());
      std::vector<std::string> attrs;
      while (!At(TokenKind::kRBracket)) {
        if (!attrs.empty()) {
          SETREC_RETURN_IF_ERROR(Expect(TokenKind::kComma).status());
        }
        SETREC_ASSIGN_OR_RETURN(std::string attr, Identifier("attribute"));
        attrs.push_back(std::move(attr));
      }
      Take();  // ]
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
      SETREC_ASSIGN_OR_RETURN(ExprPtr child, Expression());
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
      return ra::Project(std::move(child), std::move(attrs));
    }
    if (head == "select" || head == "join") {
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kLBracket).status());
      SETREC_ASSIGN_OR_RETURN(std::string a, Identifier("attribute"));
      bool equal = true;
      if (At(TokenKind::kEquals)) {
        Take();
      } else if (At(TokenKind::kNotEquals)) {
        Take();
        equal = false;
      } else {
        return Error("expected '=' or '!='");
      }
      SETREC_ASSIGN_OR_RETURN(std::string b, Identifier("attribute"));
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kRBracket).status());
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
      SETREC_ASSIGN_OR_RETURN(ExprPtr l, Expression());
      if (head == "select") {
        SETREC_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
        return equal ? ra::SelectEq(std::move(l), std::move(a), std::move(b))
                     : ra::SelectNeq(std::move(l), std::move(a),
                                     std::move(b));
      }
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kComma).status());
      SETREC_ASSIGN_OR_RETURN(ExprPtr r, Expression());
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
      return equal ? ra::JoinEq(std::move(l), std::move(r), std::move(a),
                                std::move(b))
                   : ra::JoinNeq(std::move(l), std::move(r), std::move(a),
                                 std::move(b));
    }
    if (head == "rename") {
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kLBracket).status());
      SETREC_ASSIGN_OR_RETURN(std::string from, Identifier("attribute"));
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kArrow).status());
      SETREC_ASSIGN_OR_RETURN(std::string to, Identifier("attribute"));
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kRBracket).status());
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
      SETREC_ASSIGN_OR_RETURN(ExprPtr child, Expression());
      SETREC_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
      return ra::Rename(std::move(child), std::move(from), std::move(to));
    }
    // Plain relation reference.
    return ra::Rel(std::move(head));
  }

  /// ClassName(index) object literal.
  Result<ObjectId> Object(const Schema& schema) {
    SETREC_ASSIGN_OR_RETURN(std::string cls, Identifier("class name"));
    SETREC_ASSIGN_OR_RETURN(ClassId class_id, schema.FindClass(cls));
    SETREC_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
    SETREC_ASSIGN_OR_RETURN(std::uint32_t index, Integer());
    SETREC_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    return ObjectId(class_id, index);
  }

 private:
  /// Deep enough for any printed expression we emit; shallow enough that the
  /// recursive-descent parser cannot blow the stack on hostile input.
  static constexpr int kMaxExpressionDepth = 200;

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<std::unique_ptr<Schema>> ParseSchema(std::string_view text) {
  SETREC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  SETREC_RETURN_IF_ERROR(p.ExpectKeyword("schema"));
  SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kLBrace).status());
  auto schema = std::make_unique<Schema>();
  while (!p.At(TokenKind::kRBrace)) {
    if (p.AtKeyword("class")) {
      p.Take();
      SETREC_ASSIGN_OR_RETURN(std::string name, p.Identifier("class name"));
      SETREC_RETURN_IF_ERROR(schema->AddClass(std::move(name)).status());
    } else if (p.AtKeyword("property")) {
      p.Take();
      SETREC_ASSIGN_OR_RETURN(std::string name,
                              p.Identifier("property name"));
      SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kColon).status());
      SETREC_ASSIGN_OR_RETURN(std::string src, p.Identifier("class name"));
      SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kArrow).status());
      SETREC_ASSIGN_OR_RETURN(std::string dst, p.Identifier("class name"));
      SETREC_ASSIGN_OR_RETURN(ClassId src_id, schema->FindClass(src));
      SETREC_ASSIGN_OR_RETURN(ClassId dst_id, schema->FindClass(dst));
      SETREC_RETURN_IF_ERROR(
          schema->AddProperty(std::move(name), src_id, dst_id).status());
    } else {
      return p.Error("expected 'class' or 'property'");
    }
    SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kSemicolon).status());
  }
  p.Take();  // }
  SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kEnd).status());
  return schema;
}

Result<Instance> ParseInstance(std::string_view text, const Schema* schema) {
  SETREC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  SETREC_RETURN_IF_ERROR(p.ExpectKeyword("instance"));
  SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kLBrace).status());
  Instance instance(schema);
  while (!p.At(TokenKind::kRBrace)) {
    if (p.AtKeyword("object")) {
      p.Take();
      SETREC_ASSIGN_OR_RETURN(ObjectId o, p.Object(*schema));
      SETREC_RETURN_IF_ERROR(instance.AddObject(o));
    } else if (p.AtKeyword("edge")) {
      p.Take();
      SETREC_ASSIGN_OR_RETURN(ObjectId src, p.Object(*schema));
      SETREC_ASSIGN_OR_RETURN(std::string prop,
                              p.Identifier("property name"));
      SETREC_ASSIGN_OR_RETURN(PropertyId property,
                              schema->FindProperty(prop));
      SETREC_ASSIGN_OR_RETURN(ObjectId dst, p.Object(*schema));
      SETREC_RETURN_IF_ERROR(instance.AddEdge(src, property, dst));
    } else {
      return p.Error("expected 'object' or 'edge'");
    }
    SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kSemicolon).status());
  }
  p.Take();  // }
  SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kEnd).status());
  return instance;
}

Result<InstanceDelta> ParseDelta(std::string_view text, const Schema* schema) {
  SETREC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  SETREC_RETURN_IF_ERROR(p.ExpectKeyword("delta"));
  SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kLBrace).status());
  InstanceDelta delta;
  while (!p.At(TokenKind::kRBrace)) {
    bool add;
    if (p.AtKeyword("add")) {
      add = true;
    } else if (p.AtKeyword("del")) {
      add = false;
    } else {
      return p.Error("expected 'add' or 'del'");
    }
    p.Take();
    if (p.AtKeyword("object")) {
      p.Take();
      SETREC_ASSIGN_OR_RETURN(ObjectId o, p.Object(*schema));
      (add ? delta.added_objects : delta.removed_objects).push_back(o);
    } else if (p.AtKeyword("edge")) {
      p.Take();
      SETREC_ASSIGN_OR_RETURN(ObjectId src, p.Object(*schema));
      SETREC_ASSIGN_OR_RETURN(std::string prop, p.Identifier("property name"));
      SETREC_ASSIGN_OR_RETURN(PropertyId property, schema->FindProperty(prop));
      SETREC_ASSIGN_OR_RETURN(ObjectId dst, p.Object(*schema));
      (add ? delta.added_edges : delta.removed_edges)
          .push_back(Edge{src, property, dst});
    } else {
      return p.Error("expected 'object' or 'edge'");
    }
    SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kSemicolon).status());
  }
  p.Take();  // }
  SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kEnd).status());
  return delta;
}

Result<ExprPtr> ParseExpression(std::string_view text) {
  SETREC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  SETREC_ASSIGN_OR_RETURN(ExprPtr expr, p.Expression());
  SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kEnd).status());
  return expr;
}

Result<std::unique_ptr<AlgebraicUpdateMethod>> ParseMethod(
    std::string_view text, const Schema* schema) {
  SETREC_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(text));
  Parser p(std::move(tokens));
  SETREC_RETURN_IF_ERROR(p.ExpectKeyword("method"));
  SETREC_ASSIGN_OR_RETURN(std::string name, p.Identifier("method name"));
  SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kLBracket).status());
  std::vector<ClassId> signature;
  while (!p.At(TokenKind::kRBracket)) {
    if (!signature.empty()) {
      SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kComma).status());
    }
    SETREC_ASSIGN_OR_RETURN(std::string cls, p.Identifier("class name"));
    SETREC_ASSIGN_OR_RETURN(ClassId class_id, schema->FindClass(cls));
    signature.push_back(class_id);
  }
  p.Take();  // ]
  if (signature.empty()) {
    return Status::InvalidArgument(
        "a method signature is a non-empty tuple (Definition 2.4)");
  }
  SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kLBrace).status());
  std::vector<UpdateStatement> statements;
  while (!p.At(TokenKind::kRBrace)) {
    SETREC_ASSIGN_OR_RETURN(std::string prop, p.Identifier("property name"));
    SETREC_ASSIGN_OR_RETURN(PropertyId property, schema->FindProperty(prop));
    SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kAssign).status());
    SETREC_ASSIGN_OR_RETURN(ExprPtr expr, p.Expression());
    SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kSemicolon).status());
    statements.push_back(UpdateStatement{property, std::move(expr)});
  }
  p.Take();  // }
  SETREC_RETURN_IF_ERROR(p.Expect(TokenKind::kEnd).status());
  return AlgebraicUpdateMethod::Make(schema, MethodSignature(signature),
                                     std::move(name), std::move(statements));
}

}  // namespace setrec
