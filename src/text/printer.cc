#include "text/printer.h"

#include <sstream>

namespace setrec {

namespace {

void PrintExpr(const Expr& expr, std::ostringstream& out) {
  switch (expr.op()) {
    case Expr::Op::kRelation:
      out << expr.relation_name();
      return;
    case Expr::Op::kUnion:
    case Expr::Op::kDifference:
    case Expr::Op::kProduct:
      out << (expr.op() == Expr::Op::kUnion
                  ? "union"
                  : expr.op() == Expr::Op::kDifference ? "diff" : "product")
          << "(";
      PrintExpr(*expr.left(), out);
      out << ", ";
      PrintExpr(*expr.right(), out);
      out << ")";
      return;
    case Expr::Op::kSelectEq:
    case Expr::Op::kSelectNeq:
      out << "select[" << expr.attr_a()
          << (expr.op() == Expr::Op::kSelectEq ? " = " : " != ")
          << expr.attr_b() << "](";
      PrintExpr(*expr.child(), out);
      out << ")";
      return;
    case Expr::Op::kProject: {
      out << "project[";
      bool first = true;
      for (const std::string& a : expr.projection()) {
        if (!first) out << ", ";
        out << a;
        first = false;
      }
      out << "](";
      PrintExpr(*expr.child(), out);
      out << ")";
      return;
    }
    case Expr::Op::kRename:
      out << "rename[" << expr.rename_from() << " -> " << expr.rename_to()
          << "](";
      PrintExpr(*expr.child(), out);
      out << ")";
      return;
  }
}

void PrintObject(const Schema& schema, ObjectId o, std::ostringstream& out) {
  out << schema.class_name(o.class_id()) << "(" << o.index() << ")";
}

}  // namespace

std::string SchemaToText(const Schema& schema) {
  std::ostringstream out;
  out << "schema {\n";
  for (ClassId c = 0; c < schema.num_classes(); ++c) {
    out << "  class " << schema.class_name(c) << ";\n";
  }
  for (PropertyId p = 0; p < schema.num_properties(); ++p) {
    const Schema::PropertyDef& def = schema.property(p);
    out << "  property " << def.name << " : " << schema.class_name(def.source)
        << " -> " << schema.class_name(def.target) << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string InstanceToText(const Instance& instance) {
  const Schema& schema = instance.schema();
  std::ostringstream out;
  out << "instance {\n";
  for (ObjectId o : instance.AllObjects()) {
    out << "  object ";
    PrintObject(schema, o, out);
    out << ";\n";
  }
  for (const Edge& e : instance.AllEdges()) {
    out << "  edge ";
    PrintObject(schema, e.source, out);
    out << " " << schema.property(e.property).name << " ";
    PrintObject(schema, e.target, out);
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

std::string DeltaToText(const InstanceDelta& delta, const Schema& schema) {
  std::ostringstream out;
  out << "delta {\n";
  auto print_edge = [&](const char* verb, const Edge& e) {
    out << "  " << verb << " edge ";
    PrintObject(schema, e.source, out);
    out << " " << schema.property(e.property).name << " ";
    PrintObject(schema, e.target, out);
    out << ";\n";
  };
  auto print_object = [&](const char* verb, ObjectId o) {
    out << "  " << verb << " object ";
    PrintObject(schema, o, out);
    out << ";\n";
  };
  // Redo order: del edges, del objects, add objects, add edges.
  for (const Edge& e : delta.removed_edges) print_edge("del", e);
  for (ObjectId o : delta.removed_objects) print_object("del", o);
  for (ObjectId o : delta.added_objects) print_object("add", o);
  for (const Edge& e : delta.added_edges) print_edge("add", e);
  out << "}\n";
  return out.str();
}

std::string ExprToText(const Expr& expr) {
  std::ostringstream out;
  PrintExpr(expr, out);
  return out.str();
}

std::string MethodToText(const AlgebraicUpdateMethod& method) {
  const Schema& schema = *method.context().schema;
  std::ostringstream out;
  out << "method " << (method.name().empty() ? "anonymous" : method.name())
      << " [";
  for (std::size_t i = 0; i < method.signature().size(); ++i) {
    if (i > 0) out << ", ";
    out << schema.class_name(method.signature().class_at(i));
  }
  out << "] {\n";
  for (const UpdateStatement& s : method.statements()) {
    out << "  " << schema.property(s.property).name << " := "
        << ExprToText(*s.expression) << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace setrec
