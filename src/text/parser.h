#ifndef SETREC_TEXT_PARSER_H_
#define SETREC_TEXT_PARSER_H_

#include <memory>
#include <string_view>

#include "algebraic/algebraic_method.h"
#include "core/instance.h"
#include "core/schema.h"

namespace setrec {

/// A small text front-end so schemas, instances, update expressions and
/// algebraic methods can live in files instead of C++ builders. The syntax
/// mirrors the library's structure one-to-one:
///
///   schema {
///     class D; class Ba; class Be;
///     property f : D -> Ba;
///     property l : D -> Be;
///     property s : Ba -> Be;
///   }
///
///   instance {
///     object D(1); object Ba(1); object Ba(2); object Ba(3);
///     edge D(1) f Ba(1);
///     edge D(1) f Ba(2);
///   }
///
///   method add_bar [D, Ba] {
///     f := union(project[f](join[self = D](self, Df)),
///                rename[arg1 -> f](arg1));
///   }
///
/// Expressions are call-style (no precedence rules to remember):
///   union(e, e) | diff(e, e) | product(e, e)
///   | project[a, b, ...](e)      — project[](e) is the nullary guard π_∅
///   | select[a = b](e) | select[a != b](e)
///   | rename[a -> b](e)
///   | join[a = b](l, r) | join[a != b](l, r)   — θ-join sugar
///   | RelationName
///
/// `//` comments run to end of line. All parse errors carry line:column.

/// Parses a `schema { ... }` block.
Result<std::unique_ptr<Schema>> ParseSchema(std::string_view text);

/// Parses an `instance { ... }` block over `schema`. Object literals are
/// written ClassName(index).
Result<Instance> ParseInstance(std::string_view text, const Schema* schema);

/// Parses a bare expression (no surrounding block).
Result<ExprPtr> ParseExpression(std::string_view text);

/// Parses a `method name [C0, C1, ...] { a := expr; ... }` block over
/// `schema`, validating it as an algebraic update method (Definition 5.4).
Result<std::unique_ptr<AlgebraicUpdateMethod>> ParseMethod(
    std::string_view text, const Schema* schema);

/// Parses a `delta { add|del object|edge ...; }` block over `schema` (the
/// WAL record payload format, see DeltaToText). Statements are collected in
/// the order written; the delta is *not* applied. Every malformed or
/// truncated input returns a typed error — recovery replay depends on this
/// never crashing or hanging.
Result<InstanceDelta> ParseDelta(std::string_view text, const Schema* schema);

}  // namespace setrec

#endif  // SETREC_TEXT_PARSER_H_
