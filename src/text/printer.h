#ifndef SETREC_TEXT_PRINTER_H_
#define SETREC_TEXT_PRINTER_H_

#include <string>

#include "algebraic/algebraic_method.h"
#include "core/instance.h"
#include "core/schema.h"

namespace setrec {

/// Emitters for the text format of text/parser.h. Every emitter produces
/// input the corresponding parser accepts, and the round trip is exact:
///   ParseSchema(SchemaToText(s))       reproduces s,
///   ParseInstance(InstanceToText(i))   reproduces i,
///   ParseExpression(ExprToText(e))     reproduces e structurally,
///   ParseMethod(MethodToText(m))       reproduces m's statements.
/// (Property-tested in tests/text_test.cc.)

std::string SchemaToText(const Schema& schema);
std::string InstanceToText(const Instance& instance);
std::string ExprToText(const Expr& expr);
std::string MethodToText(const AlgebraicUpdateMethod& method);

/// Canonical text form of an instance delta (WAL record payloads, see
/// store/wal.h). Statements appear in redo order:
///
///   delta {
///     del edge D(1) f Ba(2);
///     del object Ba(2);
///     add object Ba(3);
///     add edge D(1) f Ba(3);
///   }
///
/// ParseDelta(DeltaToText(d, s), &s) reproduces d exactly.
std::string DeltaToText(const InstanceDelta& delta, const Schema& schema);

}  // namespace setrec

#endif  // SETREC_TEXT_PRINTER_H_
