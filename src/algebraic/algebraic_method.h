#ifndef SETREC_ALGEBRAIC_ALGEBRAIC_METHOD_H_
#define SETREC_ALGEBRAIC_ALGEBRAIC_METHOD_H_

#include <memory>
#include <string>
#include <vector>

#include "algebraic/update_expression.h"
#include "core/update_method.h"

namespace setrec {

/// One algebraic update statement `a := E` (Definition 5.4(3)).
struct UpdateStatement {
  PropertyId property;
  ExprPtr expression;
};

/// An algebraic update method (Definition 5.4(4)): a set of update
/// statements over distinct properties of the receiving class. Applying it
/// to (I, t) replaces, for each statement a := E, all a-edges leaving the
/// receiving object by edges to the elements of E(I, t) (Definition
/// 5.4(5)). Such methods never create or remove objects — only properties of
/// the receiving object change.
class AlgebraicUpdateMethod final : public UpdateMethod {
 public:
  /// Validates all statements (properties of the receiving class, unary
  /// expressions of the right domain, at most one statement per property).
  static Result<std::unique_ptr<AlgebraicUpdateMethod>> Make(
      const Schema* schema, MethodSignature signature, std::string name,
      std::vector<UpdateStatement> statements);

  Result<Instance> Apply(const Instance& instance,
                         const Receiver& receiver) const override;

  const std::vector<UpdateStatement>& statements() const {
    return statements_;
  }
  const MethodContext& context() const { return context_; }

  /// True when all update expressions are positive (Definition 5.10).
  bool IsPositiveMethod() const;

  /// The set of property ids this method updates (the paper's set A).
  std::vector<PropertyId> UpdatedProperties() const;

  /// Renders as "name[σ] { a := E; ... }".
  std::string ToString() const;

 private:
  AlgebraicUpdateMethod(MethodContext context, std::string name,
                        std::vector<UpdateStatement> statements);

  MethodContext context_;
  std::vector<UpdateStatement> statements_;
};

}  // namespace setrec

#endif  // SETREC_ALGEBRAIC_ALGEBRAIC_METHOD_H_
