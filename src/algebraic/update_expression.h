#ifndef SETREC_ALGEBRAIC_UPDATE_EXPRESSION_H_
#define SETREC_ALGEBRAIC_UPDATE_EXPRESSION_H_

#include <string>

#include "core/receiver.h"
#include "core/schema.h"
#include "objrel/encoding.h"
#include "relational/dependencies.h"
#include "relational/expression.h"
#include "relational/relation.h"
#include "relational/schema.h"

namespace setrec {

/// Names of the special unary relation schemes of Definition 5.4: `self`
/// holds the receiving object, `arg1`, ..., `argk` hold the arguments. The
/// Theorem 5.6 reduction additionally uses primed copies (`self'`, `arg1'`,
/// ...) for the second receiver.
inline constexpr const char kSelfRelation[] = "self";

/// "arg1", "arg2", ... (1-based, as in the paper).
std::string ArgRelationName(std::size_t i);

/// "self'" / "arg1'" etc.
std::string PrimedName(const std::string& name);

/// Everything an update expression of type σ is interpreted against:
/// the object-relational catalog extended with the receiver relations, and
/// the dependencies Σ that legal interpretations satisfy:
///   * the induced inclusion/disjointness dependencies of the encoding;
///   * self[self] ⊆ C0 and argi[argi] ⊆ Ci — receivers are objects *in* the
///     instance (Definition 2.5);
///   * the functional dependencies ∅ → self and ∅ → argi forcing the
///     receiver relations to hold at most one tuple (proof of Theorem 5.6);
/// `reduction_catalog`/`reduction_deps` add the primed copies used when two
/// receivers are composed.
struct MethodContext {
  const Schema* schema = nullptr;
  MethodSignature signature{std::vector<ClassId>{0}};
  Catalog catalog;
  DependencySet deps;
  Catalog reduction_catalog;
  DependencySet reduction_deps;
};

/// Builds the context for update expressions of type `signature` over
/// `schema`.
Result<MethodContext> BuildMethodContext(const Schema* schema,
                                         const MethodSignature& signature);

/// Installs the singleton receiver relations into `db`: self = {o0},
/// argi = {oi} (primed names when `primed`). Definition 5.4(2).
Status InstallReceiverRelations(Database& db, const MethodContext& context,
                                const Receiver& receiver, bool primed);

/// Validates an update expression for a statement `a := E` (Definition
/// 5.4(3)): E must be a unary expression over the context catalog whose
/// domain is the target class of property `a`, which must be a property of
/// the receiving class. In this typed model E(I, t) ⊆ B(I) then holds
/// automatically (every class-B value occurring in an encoded relation is an
/// object of B(I)), so well-definedness needs no runtime clamp.
Status ValidateUpdateExpression(const MethodContext& context,
                                PropertyId property, const ExprPtr& expr);

}  // namespace setrec

#endif  // SETREC_ALGEBRAIC_UPDATE_EXPRESSION_H_
