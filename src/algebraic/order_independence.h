#ifndef SETREC_ALGEBRAIC_ORDER_INDEPENDENCE_H_
#define SETREC_ALGEBRAIC_ORDER_INDEPENDENCE_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "algebraic/algebraic_method.h"
#include "core/exec_context.h"
#include "core/exec_options.h"
#include "core/instance_generator.h"
#include "core/sequential.h"

namespace setrec {

/// Which notion of Section 3 is being decided. Query-order independence is
/// not decidable by the Lemma 3.3 pair reduction (Proposition 5.14), so it
/// has no entry here; see tests/query_order_test for its counterexamples.
enum class OrderIndependenceKind { kAbsolute, kKeyOrder };

/// The pair of expressions the Theorem 5.6 reduction produces for one
/// updated property a: E_a[tt'] and E_a[t't] describe the contents of the
/// relation Ca after applying the method to two symbolic receivers in the
/// two orders, multiplied by the validity guard (receivers present,
/// singleton, and distinct — with argument distinctness omitted for the
/// key-order variant, where only the receiving objects must differ).
struct ReductionExpressions {
  PropertyId property;
  ExprPtr e_tt;  // E_a[t t'] · guard
  ExprPtr e_ts;  // E_a[t' t] · guard
};

/// Builds the Theorem 5.6 reduction for every statement of `method`. Works
/// for arbitrary (also non-positive) algebraic methods — the reduction
/// itself is syntactic; only the *decision* step needs positivity.
Result<std::vector<ReductionExpressions>> BuildOrderIndependenceReduction(
    const AlgebraicUpdateMethod& method, OrderIndependenceKind kind);

/// Decides (key-)order independence of a *positive* algebraic method
/// (Theorem 5.12): builds the reduction, translates both sides of every
/// property's pair into positive queries, and tests equivalence under the
/// functional, inclusion and disjointness dependencies of the method
/// context (Lemma 5.13). Fails with InvalidArgument on non-positive methods
/// — the problem is undecidable there (Corollary 5.7); use
/// SearchOrderDependenceWitness for refutation instead.
///
/// The underlying containment tests run under `ctx`; with a step budget or
/// deadline the call returns kResourceExhausted / kDeadlineExceeded. Use
/// DecideOrderIndependenceBounded for the three-valued wrapper that turns
/// those into a sound kUnknown verdict.
Result<bool> DecideOrderIndependence(const AlgebraicUpdateMethod& method,
                                     OrderIndependenceKind kind,
                                     ExecContext& ctx =
                                         ExecContext::Default());

/// Unified form over ExecOptions (context + observability sinks).
Result<bool> DecideOrderIndependence(const AlgebraicUpdateMethod& method,
                                     OrderIndependenceKind kind,
                                     const ExecOptions& options);

/// Three-valued verdict for the bounded decision procedure. kUnknown means
/// "not decided within the budget" — it is sound to treat such a method as
/// potentially order dependent, never as independent.
enum class OrderIndependenceVerdict { kIndependent, kDependent, kUnknown };

/// Runs DecideOrderIndependence under `ctx` and degrades retryable
/// governance failures (step budget, deadline, row/memory caps) to
/// kUnknown instead of an error. Cancellation and genuine errors still
/// propagate: a cancelled run decided nothing and should not be reported as
/// a verdict.
Result<OrderIndependenceVerdict> DecideOrderIndependenceBounded(
    const AlgebraicUpdateMethod& method, OrderIndependenceKind kind,
    ExecContext& ctx = ExecContext::Default());

/// Unified form over ExecOptions (context + observability sinks).
Result<OrderIndependenceVerdict> DecideOrderIndependenceBounded(
    const AlgebraicUpdateMethod& method, OrderIndependenceKind kind,
    const ExecOptions& options);

/// A detailed account of one decision run: per updated property, the union
/// widths of the two reduction sides before and after disjunct-subsumption
/// pruning, and the equivalence verdict. The widths are the decision
/// procedure's dominant cost driver (bench_decision charts them).
struct DecisionReport {
  bool order_independent = false;
  struct PropertyDetail {
    PropertyId property = 0;
    std::size_t raw_disjuncts_tt = 0;
    std::size_t raw_disjuncts_ts = 0;
    std::size_t pruned_disjuncts_tt = 0;
    std::size_t pruned_disjuncts_ts = 0;
    bool equivalent = false;
  };
  std::vector<PropertyDetail> properties;
};

/// Like DecideOrderIndependence but evaluates every property (no early
/// exit) and reports the reduction statistics.
Result<DecisionReport> DecideOrderIndependenceDetailed(
    const AlgebraicUpdateMethod& method, OrderIndependenceKind kind,
    ExecContext& ctx = ExecContext::Default());

/// Unified form over ExecOptions (context + observability sinks).
Result<DecisionReport> DecideOrderIndependenceDetailed(
    const AlgebraicUpdateMethod& method, OrderIndependenceKind kind,
    const ExecOptions& options);

/// Provenance of one containment test the decision procedure attempted: the
/// direction, the verdict, the budget it spent (context steps plus the
/// logical engine counters the chase/homomorphism machinery charged), and —
/// when containment fails — the refuting canonical database and witness
/// tuple, rendered deterministically.
struct ContainmentCertificate {
  PropertyId property = 0;
  std::string property_name;
  std::string direction;  // "tt⊆ts" or "ts⊆tt"
  bool contained = false;
  /// ExecContext steps charged by this test alone (delta).
  std::uint64_t steps = 0;
  /// Logical counter deltas for this test alone.
  std::uint64_t containment_tests = 0;
  std::uint64_t chase_rounds = 0;
  std::uint64_t hom_candidates = 0;
  /// Rendered refutation (empty when contained): the canonical database on
  /// which the left query produces the witness tuple but the right query
  /// does not.
  std::string counterexample;
};

/// A decision run with its full audit trail: the Detailed report's disjunct
/// statistics plus one ContainmentCertificate per containment direction
/// attempted. Every test is recorded — including the ones after a failure —
/// so a "not order independent" verdict always names the refuted direction
/// and its counterexample.
struct DecisionCertificate {
  bool order_independent = false;
  OrderIndependenceKind kind = OrderIndependenceKind::kAbsolute;
  std::string method_name;
  DecisionReport report;
  std::vector<ContainmentCertificate> tests;
};

/// Like DecideOrderIndependenceDetailed, but runs the two containment
/// directions of every property separately and records a certificate for
/// each. When the effective context has no metrics registry, a private one
/// captures the per-test counter deltas, so certificates are always
/// populated.
Result<DecisionCertificate> DecideOrderIndependenceCertified(
    const AlgebraicUpdateMethod& method, OrderIndependenceKind kind,
    const ExecOptions& options = {});

/// Machine-readable JSONL: one header object (verdict, method, kind), then
/// one object per containment test. Strings are escaped per
/// obs/json_escape.h; the output is deterministic for a deterministic run
/// except for nothing — no timestamps are recorded.
void WriteCertificateJsonl(const DecisionCertificate& certificate,
                           std::ostream& out);

/// Human-readable rendering of the same record.
std::string CertificateToText(const DecisionCertificate& certificate);

/// Proposition 5.8's sufficient syntactic condition for key-order
/// independence: no update expression of the method accesses any relation Ca
/// corresponding to a property the method updates. (Sufficient only: add_bar
/// violates it yet is order independent, Example 5.9.)
bool SatisfiesUpdateIsolationCondition(const AlgebraicUpdateMethod& method);

/// A concrete refutation of order independence: an instance and two
/// receivers whose two application orders disagree.
struct OrderDependenceWitness {
  Instance instance;
  Receiver first;
  Receiver second;
};

/// Randomized refuter for the general, undecidable case (Corollary 5.7):
/// samples `trials` random instances and tests all receiver pairs (by Lemma
/// 3.3, pairs suffice for the global property). Returns a witness if order
/// dependence is detected; nullopt is *not* a proof of independence. With
/// `key_pairs_only`, only pairs with distinct receiving objects are tried
/// (refuting key-order independence).
Result<std::optional<OrderDependenceWitness>> SearchOrderDependenceWitness(
    const UpdateMethod& method, const Schema& schema, std::uint64_t seed,
    int trials, const InstanceGenerator::Options& options,
    bool key_pairs_only = false, ExecContext& ctx = ExecContext::Default());

/// A refutation of Q-order independence: an instance whose full receiver
/// set Q(I) admits two disagreeing enumerations (witnessed inside
/// `outcome`). Lemma 3.3 fails for query-order independence (Proposition
/// 5.14), so the search enumerates whole receiver sets, not pairs.
struct QueryOrderDependenceWitness {
  Instance instance;
  OrderIndependenceOutcome outcome;
};

/// Randomized refuter for Q-order independence (the decidability of which
/// is the paper's open problem): samples instances, computes T = Q(I) with
/// `query` (result scheme must match the method signature), and runs the
/// exhaustive permutation test on T whenever |T| ≤ max_set_size (larger
/// sets are skipped). nullopt refutes nothing.
Result<std::optional<QueryOrderDependenceWitness>>
SearchQueryOrderDependenceWitness(const UpdateMethod& method,
                                  const ExprPtr& query, const Schema& schema,
                                  std::uint64_t seed, int trials,
                                  const InstanceGenerator::Options& options,
                                  std::size_t max_set_size = 5,
                                  ExecContext& ctx = ExecContext::Default());

}  // namespace setrec

#endif  // SETREC_ALGEBRAIC_ORDER_INDEPENDENCE_H_
