#ifndef SETREC_ALGEBRAIC_PARALLEL_H_
#define SETREC_ALGEBRAIC_PARALLEL_H_

#include <span>

#include "algebraic/algebraic_method.h"
#include "core/exec_context.h"
#include "core/exec_options.h"
#include "core/thread_pool.h"

namespace setrec {

/// Name of the receiver-set relation of Section 6, with scheme
/// self arg1 ... argk.
inline constexpr const char kRecRelation[] = "rec";

/// The scheme of `rec` for a signature: attributes self, arg1, ..., argk
/// with the signature's class domains.
Result<RelationScheme> RecScheme(const MethodSignature& signature);

/// The catalog against which par(E) expressions type-check: the method
/// catalog minus the singleton receiver relations, plus `rec`.
Result<Catalog> ParCatalog(const MethodContext& context);

/// The par(E) rewriting (Definition 6.1): produces a relational algebra
/// expression over the object relations plus `rec` such that
/// par(E)(I, T) = ∪_{t∈T} {t(self)} × E(I, t) whenever T is a key set
/// (Lemma 6.7). The rewriting keeps a copy of the receiving object threaded
/// through the whole evaluation:
///   * every object relation R becomes π_self(rec) × R;
///   * self becomes π_self(rec), arg_i becomes π_{self,arg_i}(rec);
///   * every projection also retains self;
///   * every Cartesian product becomes a natural join on self.
/// The result scheme is E's scheme with self prepended. Renaming self is
/// not supported (and never needed — the attribute is reserved).
Result<ExprPtr> ParTransform(const ExprPtr& expr, const MethodContext& context);

/// Execution options for the multi-core parallel-application runtime.
struct ParallelOptions {
  /// Number of receiver shards evaluated concurrently. 1 (the default)
  /// reproduces the classic path: one rec relation, one par(E) evaluation
  /// per statement, on the calling thread.
  std::size_t num_workers = 1;
  /// Pool to run the shards on (borrowed, not owned). When null and
  /// num_workers > 1, a transient pool of num_workers threads is spawned
  /// for the call — attach a long-lived pool to amortize thread startup.
  ThreadPool* pool = nullptr;
  /// Evaluation backend for the per-shard par(E) pipelines
  /// (core/exec_backend.h). Shard results — and the logical evaluator
  /// counters — are backend-invariant, like they are worker-count-invariant.
  ExecBackend backend = ExecBackend::kAuto;
};

/// Parallel application M_par(I, T) (Definition 6.2): instantiates rec with
/// the whole receiver set at once, evaluates one par(E) expression per
/// statement, and replaces, for every receiving object occurring in T, its
/// a-edges by the objects par(E) links to it. Every receiver must be valid
/// over `instance`. Duplicate receivers are deduplicated (T is a set).
/// The par(E) evaluations and the edge-replacement loops run under `ctx`
/// (row/memory budgets apply to the joins the rewriting introduces).
///
/// With options.num_workers > 1, the receiver set is partitioned into
/// contiguous shards of the canonical enumeration — never splitting
/// receivers that share a receiving object — and the par(E) pipelines of
/// the shards are evaluated concurrently, each charging a Fork() of `ctx`
/// so budgets hold exactly across the fan-out. Every par(E) operator acts
/// slice-wise on the reserved `self` attribute (leaves restrict rec by
/// self, products join on self, projections retain self), so a shard
/// computes exactly the self-slices of its receivers and the merged result
/// is *identical* to the single-shard evaluation — results are
/// deterministic and independent of worker count, which the determinism
/// tests pin down bit-for-bit. Edge replacements are merged in canonical
/// receiver order on the calling thread.
Result<Instance> ParallelApply(const AlgebraicUpdateMethod& method,
                               const Instance& instance,
                               std::span<const Receiver> receivers,
                               const ParallelOptions& options,
                               ExecContext& ctx = ExecContext::Default());

/// Unified entry point: ExecOptions carries the governing context, the
/// observability sinks, and the multi-core knobs (num_workers/pool) in one
/// struct. Prefer this overload; the ParallelOptions form above is the
/// compat shim predating ExecOptions.
Result<Instance> ParallelApply(const AlgebraicUpdateMethod& method,
                               const Instance& instance,
                               std::span<const Receiver> receivers,
                               const ExecOptions& options);

/// Classic single-threaded entry point (options = 1 worker).
Result<Instance> ParallelApply(const AlgebraicUpdateMethod& method,
                               const Instance& instance,
                               std::span<const Receiver> receivers,
                               ExecContext& ctx = ExecContext::Default());

}  // namespace setrec

#endif  // SETREC_ALGEBRAIC_PARALLEL_H_
